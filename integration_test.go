package subdex_test

// Cross-dataset integration tests: run full guided sessions on all three
// generated databases and check the system-wide invariants that no single
// package test can see — display arity, utility ordering and bounds, seen-
// set growth, description validity along recommended paths, and summary
// consistency.

import (
	"testing"

	"subdex"
)

func allDatasets(t *testing.T) map[string]*subdex.DB {
	t.Helper()
	dbs := make(map[string]*subdex.DB)
	var err error
	if dbs["movielens"], err = subdex.GenerateMovielens(subdex.GenConfig{Scale: 0.05, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if dbs["yelp"], err = subdex.GenerateYelp(subdex.GenConfig{Scale: 0.01, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	if dbs["hotels"], err = subdex.GenerateHotels(subdex.GenConfig{Scale: 0.05, Seed: 2}); err != nil {
		t.Fatal(err)
	}
	return dbs
}

func TestGuidedSessionInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("full sessions are slow")
	}
	const steps = 3
	for name, db := range allDatasets(t) {
		name, db := name, db
		t.Run(name, func(t *testing.T) {
			cfg := subdex.DefaultConfig()
			cfg.RecSampleSize = 300
			ex, err := subdex.NewExplorer(db, cfg)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := subdex.NewSession(ex, subdex.RecommendationPowered, subdex.Everything())
			if err != nil {
				t.Fatal(err)
			}
			seenBefore := 0
			for s := 0; s < steps; s++ {
				res, err := sess.Step()
				if err != nil {
					t.Fatalf("step %d: %v", s+1, err)
				}
				// Display arity: k maps whenever at least k candidates exist.
				if len(res.Maps) == 0 {
					t.Fatalf("step %d: empty display", s+1)
				}
				if len(res.Maps) > cfg.K {
					t.Fatalf("step %d: %d maps exceed k=%d", s+1, len(res.Maps), cfg.K)
				}
				// Utilities: aligned, descending, within [0, 1].
				if len(res.Utilities) != len(res.Maps) {
					t.Fatalf("step %d: utilities misaligned", s+1)
				}
				for i, u := range res.Utilities {
					if u < 0 || u > 1+1e-9 {
						t.Fatalf("step %d: utility %v out of range", s+1, u)
					}
					if i > 0 && u > res.Utilities[i-1]+1e-9 {
						t.Fatalf("step %d: utilities not descending", s+1)
					}
				}
				// Maps describe the current selection.
				for _, rm := range res.Maps {
					if !rm.Desc.Equal(res.Desc) {
						t.Fatalf("step %d: map built for %s, step is %s", s+1, rm.Desc, res.Desc)
					}
					if rm.TotalRecords == 0 {
						t.Fatalf("step %d: empty rating map displayed", s+1)
					}
				}
				// Seen set grows by exactly the displayed maps.
				if got := sess.Seen().Total(); got != seenBefore+len(res.Maps) {
					t.Fatalf("step %d: seen %d, want %d", s+1, got, seenBefore+len(res.Maps))
				}
				seenBefore = sess.Seen().Total()
				// Recommendations: sorted, non-negative, targets valid and
				// within edit distance 2 of the current selection.
				for i, rec := range res.Recommendations {
					if rec.Utility < 0 {
						t.Fatalf("step %d: negative rec utility", s+1)
					}
					if i > 0 && rec.Utility > res.Recommendations[i-1].Utility+1e-9 {
						t.Fatalf("step %d: recs not sorted", s+1)
					}
					if d := res.Desc.EditDistance(rec.Op.Target); d == 0 || d > 2 {
						t.Fatalf("step %d: rec at edit distance %d", s+1, d)
					}
				}
				if len(res.Recommendations) > 0 {
					if err := sess.ApplyRecommendation(0); err != nil {
						t.Fatalf("step %d: apply: %v", s+1, err)
					}
				}
			}
			sum := sess.Summarize()
			if sum.Steps != steps {
				t.Fatalf("summary steps = %d, want %d", sum.Steps, steps)
			}
			if sum.TotalUtility <= 0 {
				t.Fatal("summary utility must be positive")
			}
		})
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full sessions are slow")
	}
	// Two identically seeded end-to-end runs must produce identical paths:
	// generation, engine, pruning, diversity selection and recommendation
	// ranking are all deterministic.
	run := func() []string {
		db, err := subdex.GenerateYelp(subdex.GenConfig{Scale: 0.01, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		cfg := subdex.DefaultConfig()
		cfg.RecSampleSize = 300
		cfg.RecWorkers = 4 // parallel evaluation must not break determinism
		ex, err := subdex.NewExplorer(db, cfg)
		if err != nil {
			t.Fatal(err)
		}
		sess, err := subdex.NewSession(ex, subdex.FullyAutomated, subdex.Everything())
		if err != nil {
			t.Fatal(err)
		}
		steps, err := sess.Auto(3)
		if err != nil {
			t.Fatal(err)
		}
		var path []string
		for _, st := range steps {
			path = append(path, st.Desc.String())
			for _, rm := range st.Maps {
				path = append(path, rm.Side.String()+"."+rm.Attr+"/"+rm.DimName)
			}
		}
		return path
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("path lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("paths diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
