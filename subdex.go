// Package subdex is the public API of this SubDEx reproduction: a framework
// for Subjective Data Exploration (SDE) after Amer-Yahia, Milo & Youngmann,
// "Exploring Ratings in Subjective Databases" (SIGMOD 2021; demonstrated at
// ICDE 2021 as SubDEx).
//
// A subjective database is a triple ⟨Items, Reviewers, Ratings⟩. SubDEx
// lets an analyst explore it in guided multi-step sessions: at every step
// the current reviewer/item selection is aggregated into a small set of
// useful and diverse rating maps (histograms of rating scores grouped by
// one attribute), and the system can recommend the most promising next
// filter/generalize operations.
//
// Quick start:
//
//	db, _ := subdex.GenerateYelp(subdex.GenConfig{Scale: 0.01})
//	ex, _ := subdex.NewExplorer(db, subdex.DefaultConfig())
//	sess, _ := subdex.NewSession(ex, subdex.RecommendationPowered, subdex.Everything())
//	step, _ := sess.Step()
//	for _, rm := range step.Maps {
//	    fmt.Println(ex.RenderMap(rm))
//	}
//	_ = sess.ApplyRecommendation(0)
package subdex

import (
	"context"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/diversity"
	"subdex/internal/engine"
	"subdex/internal/gen"
	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Re-exported core types. The facade keeps downstream imports to a single
// package while the implementation stays modular under internal/.
type (
	// DB is a subjective database ⟨Items, Reviewers, Ratings⟩.
	DB = dataset.DB
	// Config carries the system parameters (k, o, l, engine knobs).
	Config = core.Config
	// Explorer is the SDE engine over one database.
	Explorer = core.Explorer
	// Session is one multi-step exploration.
	Session = core.Session
	// StepResult is a step's display: maps, utilities, recommendations.
	StepResult = core.StepResult
	// StepProfile is a step's EXPLAIN record: phase timings, scan and
	// prune counts, cache outcome, and the trace ID the step ran under.
	StepProfile = core.StepProfile
	// EngineProfile is the engine half of a StepProfile.
	EngineProfile = engine.Profile
	// Recommendation is a ranked next-step operation.
	Recommendation = core.Recommendation
	// Mode selects User-Driven, Recommendation-Powered or Fully-Automated.
	Mode = core.Mode
	// Description is a conjunctive attribute-value selection.
	Description = query.Description
	// Selector is one attribute-value pair of a Description.
	Selector = query.Selector
	// Operation is a filter/generalize/change exploration operation.
	Operation = query.Operation
	// RatingMap is a grouped, aggregated view of a rating group.
	RatingMap = ratingmap.RatingMap
	// GenConfig parameterizes the synthetic dataset generators.
	GenConfig = gen.Config
	// IrregularGroup is Scenario I ground truth (planted all-ones group).
	IrregularGroup = gen.IrregularGroup
	// Insight is Scenario II ground truth (planted extreme subgroup).
	Insight = gen.Insight
	// EngineConfig tunes the phase/pruning machinery.
	EngineConfig = engine.Config
	// UtilityConfig tunes interestingness scoring.
	UtilityConfig = ratingmap.UtilityConfig
	// Registry is a metrics registry (counters, gauges, histograms) with
	// a Prometheus text encoder; attach one to an Explorer via
	// Explorer.Instrument to collect engine telemetry.
	Registry = obs.Registry
	// SpanSink receives finished span trees; install one on a context
	// with WithSpanSink so Session.StepCtx records a per-step span tree.
	SpanSink = obs.SpanSink
)

// Exploration modes (§3.3).
const (
	UserDriven            = core.UserDriven
	RecommendationPowered = core.RecommendationPowered
	FullyAutomated        = core.FullyAutomated
)

// Table sides for selectors.
const (
	ReviewerSide = query.ReviewerSide
	ItemSide     = query.ItemSide
)

// Pruning strategies for EngineConfig.
const (
	PruneNone = engine.PruneNone
	PruneCI   = engine.PruneCI
	PruneMAB  = engine.PruneMAB
	PruneBoth = engine.PruneBoth
)

// DefaultConfig returns the paper's Table 3 defaults: k=3 rating maps, o=3
// recommendations, pruning-diversity factor l=3, 10 phases, both pruning
// schemes.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewExplorer builds an SDE engine over a frozen database.
func NewExplorer(db *DB, cfg Config) (*Explorer, error) { return core.NewExplorer(db, cfg) }

// NewSession starts an exploration session in the given mode from the
// given selection.
func NewSession(ex *Explorer, mode Mode, start Description) (*Session, error) {
	return core.NewSession(ex, mode, start)
}

// Everything is the selection of the entire database.
func Everything() Description { return query.Description{} }

// Where builds a selection from attribute-value pairs.
func Where(selectors ...Selector) (Description, error) { return query.NewDescription(selectors...) }

// Parse parses an advanced-screen SQL predicate such as
// "reviewers.age_group = 'young' AND items.city = 'NYC'" against the
// explorer's schemas.
func Parse(ex *Explorer, predicate string) (Description, error) {
	return ex.ParseDescription(predicate)
}

// EMD is the default Earth Mover's Distance between rating maps.
var EMD = diversity.EMD

// NewRegistry returns an empty metrics registry for Explorer.Instrument.
func NewRegistry() *Registry { return obs.NewRegistry() }

// WithSpanSink installs a span sink on a context; exploration calls made
// with that context (Session.StepCtx, Explorer.RMSetCtx) then emit span
// trees to it. obs.NewRingSink(n) is a ready-made bounded sink.
func WithSpanSink(ctx context.Context, sink SpanSink) context.Context {
	return obs.WithSink(ctx, sink)
}

// GenerateMovielens builds the MovieLens-100K-shaped synthetic database
// (Table 2 row 1). Scale 1.0 is paper size; smaller scales shrink it.
func GenerateMovielens(cfg GenConfig) (*DB, error) { return gen.Movielens(cfg) }

// GenerateYelp builds the Yelp-restaurants-shaped synthetic database
// (Table 2 row 2) with 4 rating dimensions.
func GenerateYelp(cfg GenConfig) (*DB, error) { return gen.Yelp(cfg) }

// GenerateHotels builds the Hotel-Reviews-shaped synthetic database
// (Table 2 row 3).
func GenerateHotels(cfg GenConfig) (*DB, error) { return gen.Hotels(cfg) }

// PlantIrregularGroups mutates a database to contain the Scenario I
// workload: perSide irregular groups on each of the reviewer and item
// sides, each covering at least minEntities entities, returning the ground
// truth.
func PlantIrregularGroups(db *DB, seed int64, perSide, minEntities int) ([]IrregularGroup, error) {
	return gen.PlantIrregularGroups(db, seed, perSide, minEntities)
}

// MovielensInsights and YelpInsights return the Scenario II planted-insight
// sets; pass gen.InsightBiases(...) through GenConfig.ForcedBiases when
// generating to plant them.
func MovielensInsights() []Insight { return gen.MovielensInsights() }

// YelpInsights returns the Yelp Scenario II insight set.
func YelpInsights() []Insight { return gen.YelpInsights() }

// InsightBiases converts insights into the forced generation biases that
// plant them.
func InsightBiases(insights []Insight) []gen.ForcedBias { return gen.InsightBiases(insights) }

// SaveDir / LoadDir persist a database as CSV files in a directory.
func SaveDir(db *DB, dir string) error { return dataset.SaveDir(db, dir) }

// LoadDir loads a database saved by SaveDir. kinds declares multi-valued
// attributes (attribute name → dataset.MultiValued).
func LoadDir(dir, name string, kinds map[string]dataset.Kind) (*DB, error) {
	return dataset.LoadDir(dir, name, kinds)
}
