// Command subdexworker serves cluster partition scans over one frozen
// copy of a dataset — the worker half of the distributed engine. A
// coordinator-enabled subdexd (see its -cluster-workers flag) ships
// record ranges here and merges the checksummed partial-accumulator
// frames deterministically, so a 3-node cluster answers bit-identically
// to a single process.
//
//	subdexworker -generate yelp -scale 0.05 -seed 7 -addr :9101
//
// The worker must be configured identically to the coordinator —
// same dataset flags, same -k/-o/-l — because both sides compare
// engine-config fingerprints and refuse to mix (409 on mismatch).
// The worker prints its fingerprint at boot for eyeballing.
//
// Surface: POST /cluster/scan, GET /healthz, GET /metrics
// (subdex_cluster_worker_*), and with -debug-addr a private pprof
// listener. Shuts down gracefully on SIGINT/SIGTERM.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"subdex"
	"subdex/internal/cluster"
	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/obs"
)

func main() {
	var (
		data     = flag.String("data", "", "CSV directory written by datagen")
		generate = flag.String("generate", "", "generate a synthetic dataset: demo | movielens | yelp | hotels")
		scale    = flag.Float64("scale", 0.05, "scale for -generate")
		seed     = flag.Int64("seed", 1, "seed for -generate")
		addr     = flag.String("addr", ":9101", "listen address")
		k        = flag.Int("k", 3, "rating maps per step (must match the coordinator)")
		o        = flag.Int("o", 3, "recommendations per step (must match the coordinator)")
		l        = flag.Int("l", 3, "pruning-diversity factor (must match the coordinator)")
		scanW    = flag.Int("scan-workers", runtime.NumCPU(), "sharded-scan parallelism per request")
		debug    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		drain    = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain timeout")
	)
	flag.Parse()

	db, err := loadDB(*data, *generate, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexworker:", err)
		os.Exit(1)
	}
	cfg := subdex.DefaultConfig()
	cfg.K, cfg.O, cfg.L = *k, *o, *l
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexworker:", err)
		os.Exit(1)
	}
	reg := obs.NewRegistry()
	worker := cluster.NewWorker(ex, cluster.WorkerOptions{
		Registry:    reg,
		ScanWorkers: *scanW,
	})
	s := db.Stats()
	fmt.Printf("subdexworker: serving %s (%d ratings) on %s\n", s.Name, s.NumRatings, *addr)
	fmt.Printf("subdexworker: engine fingerprint %s\n", worker.Fingerprint())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           worker.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 2)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	var debugSrv *http.Server
	if *debug != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		debugSrv = &http.Server{Addr: *debug, Handler: mux, ReadHeaderTimeout: 5 * time.Second}
		fmt.Printf("subdexworker: pprof on http://%s/debug/pprof/\n", *debug)
		go func() {
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errCh <- fmt.Errorf("debug listener: %w", err)
			}
		}()
	}

	select {
	case <-ctx.Done():
		fmt.Println("subdexworker: shutdown signal received, draining...")
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "subdexworker:", err)
		os.Exit(1)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "subdexworker: shutdown:", err)
		os.Exit(1)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	fmt.Println("subdexworker: bye")
}

func loadDB(data, generate string, scale float64, seed int64) (*subdex.DB, error) {
	switch {
	case data != "":
		kinds := map[string]dataset.Kind{
			"genre": dataset.MultiValued, "cuisine": dataset.MultiValued,
			"amenity": dataset.MultiValued,
		}
		return subdex.LoadDir(data, "loaded", kinds)
	case generate != "":
		cfg := gen.Config{Seed: seed, Scale: scale}
		switch generate {
		case "demo":
			return gen.Demo(cfg)
		case "movielens":
			return gen.Movielens(cfg)
		case "yelp":
			return gen.Yelp(cfg)
		case "hotels":
			return gen.Hotels(cfg)
		}
		return nil, fmt.Errorf("unknown dataset %q", generate)
	default:
		return nil, fmt.Errorf("one of -data or -generate is required")
	}
}
