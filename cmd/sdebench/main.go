// Command sdebench regenerates the paper's evaluation artifacts. Each
// experiment id corresponds to one table or figure of §5 (see DESIGN.md for
// the per-experiment index):
//
//	sdebench -list
//	sdebench -run fig7 -scale 0.05 -subjects 30
//	sdebench -run all -scale 0.02
//
// Scale 1.0 reproduces the paper's dataset sizes; the default keeps a full
// run affordable on a laptop while preserving every reported shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"subdex/internal/experiments"
)

func main() {
	var (
		run      = flag.String("run", "", "experiment id to run, or 'all'")
		list     = flag.Bool("list", false, "list available experiments")
		scale    = flag.Float64("scale", 0.05, "dataset scale (1.0 = paper size)")
		seed     = flag.Int64("seed", 1, "generation and simulation seed")
		subjects = flag.Int("subjects", 30, "simulated subjects per treatment cell")
		benchout = flag.String("benchout", "BENCH_engine.json", "output path for machine-readable bench artifacts")
	)
	flag.Parse()

	if *list || *run == "" {
		fmt.Println("Available experiments:")
		for _, e := range experiments.All() {
			fmt.Printf("  %-9s %s\n", e.ID, e.Title)
		}
		if *run == "" {
			fmt.Println("\nUse -run <id> or -run all.")
		}
		return
	}

	params := experiments.Params{
		Scale:    *scale,
		Seed:     *seed,
		Subjects: *subjects,
		Out:      os.Stdout,
		BenchOut: *benchout,
	}

	var toRun []experiments.Experiment
	if *run == "all" {
		toRun = experiments.All()
	} else {
		e, ok := experiments.Lookup(*run)
		if !ok {
			fmt.Fprintf(os.Stderr, "sdebench: unknown experiment %q (use -list)\n", *run)
			os.Exit(2)
		}
		toRun = []experiments.Experiment{e}
	}

	for _, e := range toRun {
		start := time.Now()
		if err := e.Run(params); err != nil {
			fmt.Fprintf(os.Stderr, "sdebench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %v]\n", e.ID, time.Since(start).Round(time.Millisecond))
	}
}
