// Command subdexvet is SubDEx's project-invariant checker: a
// multichecker over the seven analyzers that encode the disciplines
// hand-review kept re-catching in PRs 1–8 (see internal/analysis/...).
// The PR 9 additions (lockorder, walcheck, goleak) are inter-procedural:
// they compose per-function summaries across packages through the vetx
// fact files, so running under `go vet -vettool` gives the same global
// verdicts as the standalone driver.
//
// Run it standalone over the module:
//
//	go run ./cmd/subdexvet ./...
//
// or as a vet tool, which lets cmd/go cache results per package:
//
//	go build -o bin/subdexvet ./cmd/subdexvet
//	go vet -vettool=$PWD/bin/subdexvet ./...
//
// Exit status: 0 clean, 1 driver error, 2 findings.
package main

import (
	"subdex/internal/analysis/ctxflow"
	"subdex/internal/analysis/detorder"
	"subdex/internal/analysis/framework"
	"subdex/internal/analysis/goleak"
	"subdex/internal/analysis/lockblock"
	"subdex/internal/analysis/lockorder"
	"subdex/internal/analysis/obsmetrics"
	"subdex/internal/analysis/walcheck"
)

func main() {
	framework.Main([]*framework.Analyzer{
		obsmetrics.Analyzer,
		ctxflow.Analyzer,
		detorder.Analyzer,
		lockblock.Analyzer,
		lockorder.Analyzer,
		walcheck.Analyzer,
		goleak.Analyzer,
	})
}
