// Command subdexvet is SubDEx's project-invariant checker: a
// multichecker over the four analyzers that encode the disciplines
// hand-review kept re-catching in PRs 1–3 (see internal/analysis/...).
//
// Run it standalone over the module:
//
//	go run ./cmd/subdexvet ./...
//
// or as a vet tool, which lets cmd/go cache results per package:
//
//	go build -o bin/subdexvet ./cmd/subdexvet
//	go vet -vettool=$PWD/bin/subdexvet ./...
//
// Exit status: 0 clean, 1 driver error, 2 findings.
package main

import (
	"subdex/internal/analysis/ctxflow"
	"subdex/internal/analysis/detorder"
	"subdex/internal/analysis/framework"
	"subdex/internal/analysis/lockblock"
	"subdex/internal/analysis/obsmetrics"
)

func main() {
	framework.Main([]*framework.Analyzer{
		obsmetrics.Analyzer,
		ctxflow.Analyzer,
		detorder.Analyzer,
		lockblock.Analyzer,
	})
}
