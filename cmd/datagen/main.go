// Command datagen generates the synthetic subjective databases used by this
// reproduction (Movielens-, Yelp-, and Hotel-Reviews-shaped; see Table 2 and
// the substitution notes in DESIGN.md) and writes them as CSV directories
// loadable by the subdex library and CLI.
//
//	datagen -dataset yelp -scale 0.1 -out ./data/yelp
//	datagen -dataset movielens -plant-irregular 2 -out ./data/ml
package main

import (
	"flag"
	"fmt"
	"os"

	"subdex/internal/dataset"
	"subdex/internal/gen"
)

func main() {
	var (
		ds        = flag.String("dataset", "yelp", "dataset to generate: movielens | yelp | hotels")
		scale     = flag.Float64("scale", 1.0, "scale factor (1.0 = paper size, Table 2)")
		seed      = flag.Int64("seed", 1, "generation seed")
		out       = flag.String("out", "", "output directory (required)")
		irregular = flag.Int("plant-irregular", 0, "plant N irregular groups per side (Scenario I)")
		insights  = flag.Bool("plant-insights", false, "plant the Scenario II insight set")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		os.Exit(2)
	}

	cfg := gen.Config{Seed: *seed, Scale: *scale}
	var ins []gen.Insight
	if *insights {
		switch *ds {
		case "movielens":
			ins = gen.MovielensInsights()
		case "yelp":
			ins = gen.YelpInsights()
		default:
			fmt.Fprintf(os.Stderr, "datagen: no insight set defined for %q\n", *ds)
			os.Exit(2)
		}
		cfg.ForcedBiases = gen.InsightBiases(ins)
	}

	var db *dataset.DB
	var err error
	switch *ds {
	case "movielens":
		db, err = gen.Movielens(cfg)
	case "yelp":
		db, err = gen.Yelp(cfg)
	case "hotels":
		db, err = gen.Hotels(cfg)
	default:
		fmt.Fprintf(os.Stderr, "datagen: unknown dataset %q\n", *ds)
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}

	if *irregular > 0 {
		groups, err := gen.PlantIrregularGroups(db, *seed+11, *irregular, 5)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Println("planted irregular groups (ground truth):")
		for _, g := range groups {
			fmt.Println(" ", g)
		}
	}
	for _, in := range ins {
		ok, err := gen.VerifyInsight(db, in, 10)
		if err != nil {
			fmt.Fprintln(os.Stderr, "datagen:", err)
			os.Exit(1)
		}
		fmt.Printf("insight %s holds in generated data: %v\n", in.ID, ok)
	}

	if err := dataset.SaveDir(db, *out); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
	s := db.Stats()
	fmt.Printf("wrote %s: %d reviewers, %d items, %d ratings, %d dimensions -> %s\n",
		s.Name, s.NumReviewers, s.NumItems, s.NumRatings, s.NumDimensions, *out)
}
