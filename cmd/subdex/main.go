// Command subdex is an interactive terminal explorer for subjective
// databases — the CLI counterpart of the paper's HTML UI (Figure 5). It
// loads a CSV database (or generates a synthetic one), then runs a
// read-eval-print exploration session:
//
//	subdex -generate yelp -scale 0.02
//	subdex -data ./data/yelp -mode rp
//
// At each step the current rating group's top rating maps are rendered; in
// guided modes the top next-step recommendations follow. Commands:
//
//	filter <table>.<attr> = '<value>'   drill down
//	drop <table>.<attr>                 roll up one selector
//	where <SQL predicate>               jump to a selection (advanced screen)
//	rec <n>                             apply recommendation n
//	auto <m>                            run m fully-automated steps
//	back                                return to the previous selection
//	why <n>                             explain why map n was selected
//	explain                             profile the last step (phases, prunes, cache)
//	save <file>                         write the session trace as JSONL
//	vega <n> <file>                     export map n as a Vega-Lite spec
//	metrics                             dump engine telemetry (Prometheus text)
//	show                                re-display the current step
//	reset                               back to the whole database
//	quit
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"subdex"
	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/trace"
)

// metricsReg is the CLI's telemetry registry, dumped by `metrics`.
var metricsReg *subdex.Registry

func main() {
	var (
		data     = flag.String("data", "", "CSV directory written by datagen")
		generate = flag.String("generate", "", "generate a synthetic dataset: movielens | yelp | hotels")
		scale    = flag.Float64("scale", 0.02, "scale for -generate")
		seed     = flag.Int64("seed", 1, "seed for -generate")
		mode     = flag.String("mode", "rp", "exploration mode: ud | rp | fa")
		k        = flag.Int("k", 3, "rating maps per step")
		o        = flag.Int("o", 3, "recommendations per step")
		l        = flag.Int("l", 3, "pruning-diversity factor")
	)
	flag.Parse()

	db, err := loadDB(*data, *generate, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdex:", err)
		os.Exit(1)
	}

	cfg := subdex.DefaultConfig()
	cfg.K, cfg.O, cfg.L = *k, *o, *l
	ex, err := subdex.NewExplorer(db, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdex:", err)
		os.Exit(1)
	}
	// Collect engine telemetry for the `metrics` command.
	metricsReg = subdex.NewRegistry()
	ex.Instrument(metricsReg)

	var m subdex.Mode
	switch *mode {
	case "ud":
		m = subdex.UserDriven
	case "rp":
		m = subdex.RecommendationPowered
	case "fa":
		m = subdex.FullyAutomated
	default:
		fmt.Fprintf(os.Stderr, "subdex: unknown mode %q\n", *mode)
		os.Exit(2)
	}
	sess, err := subdex.NewSession(ex, m, subdex.Everything())
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdex:", err)
		os.Exit(1)
	}

	s := db.Stats()
	fmt.Printf("SubDEx — %s: %d reviewers, %d items, %d ratings, %d rating dimensions. Mode: %s.\n",
		s.Name, s.NumReviewers, s.NumItems, s.NumRatings, s.NumDimensions, m)
	fmt.Println("Type 'help' for commands.")

	display(ex, sess)
	in := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for in.Scan() {
		line := strings.TrimSpace(in.Text())
		if line != "" {
			if quit := handle(ex, sess, line); quit {
				return
			}
		}
		fmt.Print("> ")
	}
}

func criterionName(c int) string {
	names := []string{"conciseness", "agreement", "self-peculiarity", "global-peculiarity"}
	if c < len(names) {
		return names[c]
	}
	return "?"
}

func loadDB(data, generate string, scale float64, seed int64) (*subdex.DB, error) {
	switch {
	case data != "":
		// Multi-valued attribute declarations for the shipped datasets.
		kinds := map[string]dataset.Kind{
			"genre": dataset.MultiValued, "cuisine": dataset.MultiValued,
			"amenity": dataset.MultiValued,
		}
		return subdex.LoadDir(data, "loaded", kinds)
	case generate != "":
		cfg := gen.Config{Seed: seed, Scale: scale}
		switch generate {
		case "movielens":
			return gen.Movielens(cfg)
		case "yelp":
			return gen.Yelp(cfg)
		case "hotels":
			return gen.Hotels(cfg)
		}
		return nil, fmt.Errorf("unknown dataset %q", generate)
	default:
		return nil, fmt.Errorf("one of -data or -generate is required")
	}
}

// display runs one step and renders it.
func display(ex *subdex.Explorer, sess *subdex.Session) {
	step, err := sess.Step()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("\nSelection: %s  (%d records, %d reviewers, %d items)\n",
		step.Desc, step.GroupSize, step.NumMatched.Reviewers, step.NumMatched.Items)
	for i, rm := range step.Maps {
		fmt.Printf("\n[map %d, utility %.3f]\n%s", i+1, step.Utilities[i], ex.RenderMap(rm))
	}
	if len(step.Recommendations) > 0 {
		fmt.Println("\nRecommended next steps:")
		for i, rec := range step.Recommendations {
			fmt.Printf("  %d. (%.3f) %s\n", i+1, rec.Utility, rec.Op)
		}
	}
	fmt.Printf("\n[step %d | generated in %v, recommendations in %v | pruned %d+%d of %d candidates]\n",
		sess.NumSteps(), step.GenDuration.Round(1e6), step.RecDuration.Round(1e6),
		step.PrunedCI, step.PrunedMAB, step.Considered)
}

// handle executes one REPL command; returns true to quit.
func handle(ex *subdex.Explorer, sess *subdex.Session, line string) bool {
	fields := strings.Fields(line)
	cmd := strings.ToLower(fields[0])
	rest := strings.TrimSpace(line[len(fields[0]):])
	switch cmd {
	case "quit", "exit", "q":
		return true
	case "help":
		fmt.Println("commands: filter <t>.<a> = '<v>' | drop <t>.<a> | where <predicate> | rec <n> | auto <m> | back | why <n> | explain | save <file> | vega <n> <file> | metrics | show | reset | quit")
	case "explain":
		steps := sess.Steps()
		if len(steps) == 0 {
			fmt.Println("no step to explain yet")
			return false
		}
		printProfile(os.Stdout, steps[len(steps)-1].Profile)
	case "metrics":
		// Dump the session's accumulated telemetry in Prometheus text
		// format — the same shape subdexd serves at /metrics.
		if err := metricsReg.WritePrometheus(os.Stdout); err != nil {
			fmt.Println("error:", err)
		}
	case "show":
		display(ex, sess)
	case "reset":
		if err := sess.ApplyDescription(subdex.Everything()); err != nil {
			fmt.Println("error:", err)
			return false
		}
		display(ex, sess)
	case "vega":
		args := strings.Fields(rest)
		steps := sess.Steps()
		if len(args) != 2 || len(steps) == 0 {
			fmt.Println("usage: vega <map number> <file>")
			return false
		}
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 1 || n > len(steps[len(steps)-1].Maps) {
			fmt.Println("usage: vega <map number> <file>")
			return false
		}
		rm := steps[len(steps)-1].Maps[n-1]
		spec, err := rm.VegaLiteSpec(ex.DictFor(rm))
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := os.WriteFile(args[1], spec, 0o644); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("wrote Vega-Lite spec for map %d to %s\n", n, args[1])
	case "save":
		path := strings.TrimSpace(rest)
		if path == "" {
			fmt.Println("usage: save <file>")
			return false
		}
		if err := trace.FromSession(sess).Save(path); err != nil {
			fmt.Println("error:", err)
			return false
		}
		fmt.Printf("wrote %d steps to %s\n", sess.NumSteps(), path)
	case "back":
		if !sess.Back() {
			fmt.Println("nothing to go back to")
			return false
		}
		display(ex, sess)
	case "why":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		steps := sess.Steps()
		if err != nil || n < 1 || len(steps) == 0 || n > len(steps[len(steps)-1].Maps) {
			fmt.Println("usage: why <map number from the last step>")
			return false
		}
		rm := steps[len(steps)-1].Maps[n-1]
		scores, winner := ex.ExplainMap(rm, sess.Seen())
		fmt.Printf("map %d (%s.%s by %s) is shown because of its %s:\n", n, rm.Side, rm.Attr, rm.DimName, winner)
		for c := 0; c < len(scores); c++ {
			marker := "  "
			if c == int(winner) {
				marker = "->"
			}
			fmt.Printf(" %s %-20v %.3f\n", marker, criterionName(c), scores[c])
		}
	case "where", "filter":
		pred := rest
		if cmd == "filter" {
			// filter extends the current selection.
			cur := sess.Current().String()
			if cur != "TRUE" {
				pred = cur + " AND " + rest
			}
		}
		d, err := ex.ParseDescription(pred)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := sess.ApplyDescription(d); err != nil {
			fmt.Println("error:", err)
			return false
		}
		display(ex, sess)
	case "drop":
		name := strings.TrimSpace(rest)
		table, attr, ok := strings.Cut(name, ".")
		if !ok {
			fmt.Println("usage: drop <table>.<attr>")
			return false
		}
		side := query.ReviewerSide
		if strings.HasPrefix(strings.ToLower(table), "item") {
			side = query.ItemSide
		}
		cur := sess.Current()
		v, bound := cur.ValueOf(side, attr)
		if !bound {
			fmt.Printf("attribute %s is not bound\n", name)
			return false
		}
		d, err := cur.Without(query.Selector{Side: side, Attr: attr, Value: v})
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		if err := sess.ApplyDescription(d); err != nil {
			fmt.Println("error:", err)
			return false
		}
		display(ex, sess)
	case "rec":
		n, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || n < 1 {
			fmt.Println("usage: rec <n>")
			return false
		}
		if err := sess.ApplyRecommendation(n - 1); err != nil {
			fmt.Println("error:", err)
			return false
		}
		display(ex, sess)
	case "auto":
		m, err := strconv.Atoi(strings.TrimSpace(rest))
		if err != nil || m < 1 {
			fmt.Println("usage: auto <m>")
			return false
		}
		steps, err := sess.Auto(m)
		if err != nil {
			fmt.Println("error:", err)
			return false
		}
		for _, st := range steps {
			fmt.Printf("auto step: %s (%d records, utility %.2f)\n", st.Desc, st.GroupSize, st.TotalUtility())
		}
	default:
		fmt.Printf("unknown command %q (try 'help')\n", cmd)
	}
	return false
}
