package main

import (
	"fmt"
	"io"

	"subdex"
)

// printProfile pretty-prints a step's EXPLAIN record: where the time
// went (generation vs recommendations, per engine phase), what the
// engine scanned and pruned, whether the accumulator cache served the
// step, and — when the step was cut short — why.
func printProfile(w io.Writer, p *subdex.StepProfile) {
	if p == nil {
		fmt.Fprintln(w, "no profile recorded for the last step")
		return
	}
	fmt.Fprintf(w, "step profile — %s (mode %s)\n", p.Selection, p.Mode)
	if p.TraceID != "" {
		fmt.Fprintf(w, "  trace:           %s\n", p.TraceID)
	}
	fmt.Fprintf(w, "  generation:      %.2fms   recommendations: %.2fms (%d candidates)\n",
		p.GenMS, p.RecMS, p.RecCandidates)
	fmt.Fprintf(w, "  group records:   %d\n", p.GroupSize)
	e := p.Engine
	if e == nil {
		// A cached or degenerate step may carry no engine breakdown.
		fmt.Fprintf(w, "  records folded:  %d\n", p.RecordsProcessed)
	} else {
		fmt.Fprintf(w, "  cache:           %s   workers: %d   shards: %d\n",
			e.Cache, e.Workers, e.Shards)
		fmt.Fprintf(w, "  records scanned: %d of %d\n", e.RecordsScanned, e.GroupRecords)
		fmt.Fprintf(w, "  candidates:      %d considered, pruned %d by CI + %d by MAB\n",
			e.Considered, e.PrunedCI, e.PrunedMAB)
		for _, ph := range e.Phases {
			fmt.Fprintf(w, "  phase %-2d         %8.2fms  %7d records  %3d alive  pruned %d+%d\n",
				ph.Phase, ph.DurationMS, ph.Records, ph.Alive, ph.PrunedCI, ph.PrunedMAB)
		}
		fmt.Fprintf(w, "  finalize:        %.2fms   engine total: %.2fms\n", e.FinalizeMS, e.TotalMS)
	}
	if p.RecommendationsSkipped {
		fmt.Fprintln(w, "  recommendations skipped (step deadline)")
	}
	if p.Degraded {
		reason := p.DegradedReason
		if reason == "" {
			reason = "deadline"
		}
		fmt.Fprintf(w, "  DEGRADED: anytime result (%s)\n", reason)
	}
}
