package main

import (
	"strings"
	"testing"

	"subdex"
	"subdex/internal/gen"
)

// TestPrintProfile drives one real step and checks the EXPLAIN rendering
// carries the load-bearing lines (timings, cache outcome, candidates).
func TestPrintProfile(t *testing.T) {
	db, err := gen.Demo(gen.Config{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := subdex.NewExplorer(db, subdex.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := subdex.NewSession(ex, subdex.RecommendationPowered, subdex.Everything())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Step(); err != nil {
		t.Fatal(err)
	}
	steps := sess.Steps()
	p := steps[len(steps)-1].Profile
	if p == nil {
		t.Fatal("step produced no profile")
	}
	var b strings.Builder
	printProfile(&b, p)
	out := b.String()
	for _, want := range []string{"step profile", "generation:", "cache:", "candidates:", "considered"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "DEGRADED") {
		t.Errorf("undegraded step rendered as degraded:\n%s", out)
	}

	var nb strings.Builder
	printProfile(&nb, nil)
	if !strings.Contains(nb.String(), "no profile") {
		t.Errorf("nil profile rendering: %q", nb.String())
	}

	var db2 strings.Builder
	printProfile(&db2, &subdex.StepProfile{Degraded: true, DegradedReason: "deadline_mid_estimate"})
	if !strings.Contains(db2.String(), "deadline_mid_estimate") {
		t.Errorf("degraded reason not rendered: %q", db2.String())
	}
}
