// Command subdexd serves the SDE engine over HTTP — the backend the paper's
// HTML5 UI (Figure 5) talks to. Sessions are created and driven with JSON:
//
//	subdexd -generate yelp -scale 0.05 -addr :8080
//
//	curl -X POST localhost:8080/sessions -d '{"mode":"rp"}'
//	curl localhost:8080/sessions/1/step
//	curl -X POST localhost:8080/sessions/1/apply -d '{"recommendation":1}'
//	curl -X POST localhost:8080/sessions/1/apply -d '{"predicate":"items.cuisine = '\''japanese'\''"}'
//	curl localhost:8080/sessions/1/summary
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"

	"subdex"
	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/server"
)

func main() {
	var (
		data     = flag.String("data", "", "CSV directory written by datagen")
		generate = flag.String("generate", "", "generate a synthetic dataset: movielens | yelp | hotels")
		scale    = flag.Float64("scale", 0.05, "scale for -generate")
		seed     = flag.Int64("seed", 1, "seed for -generate")
		addr     = flag.String("addr", ":8080", "listen address")
		k        = flag.Int("k", 3, "rating maps per step")
		o        = flag.Int("o", 3, "recommendations per step")
		l        = flag.Int("l", 3, "pruning-diversity factor")
	)
	flag.Parse()

	db, err := loadDB(*data, *generate, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexd:", err)
		os.Exit(1)
	}
	cfg := subdex.DefaultConfig()
	cfg.K, cfg.O, cfg.L = *k, *o, *l

	srv, err := server.New(db, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexd:", err)
		os.Exit(1)
	}
	s := db.Stats()
	fmt.Printf("subdexd: serving %s (%d reviewers, %d items, %d ratings) on %s\n",
		s.Name, s.NumReviewers, s.NumItems, s.NumRatings, *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintln(os.Stderr, "subdexd:", err)
		os.Exit(1)
	}
}

func loadDB(data, generate string, scale float64, seed int64) (*subdex.DB, error) {
	switch {
	case data != "":
		kinds := map[string]dataset.Kind{
			"genre": dataset.MultiValued, "cuisine": dataset.MultiValued,
			"amenity": dataset.MultiValued,
		}
		return subdex.LoadDir(data, "loaded", kinds)
	case generate != "":
		cfg := gen.Config{Seed: seed, Scale: scale}
		switch generate {
		case "movielens":
			return gen.Movielens(cfg)
		case "yelp":
			return gen.Yelp(cfg)
		case "hotels":
			return gen.Hotels(cfg)
		}
		return nil, fmt.Errorf("unknown dataset %q", generate)
	default:
		return nil, fmt.Errorf("one of -data or -generate is required")
	}
}
