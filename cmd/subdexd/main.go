// Command subdexd serves the SDE engine over HTTP — the backend the paper's
// HTML5 UI (Figure 5) talks to. Sessions are created and driven with JSON:
//
//	subdexd -generate yelp -scale 0.05 -addr :8080
//
//	curl -X POST localhost:8080/sessions -d '{"mode":"rp"}'
//	curl localhost:8080/sessions/1/step
//	curl -X POST localhost:8080/sessions/1/apply -d '{"recommendation":1}'
//	curl -X POST localhost:8080/sessions/1/apply -d '{"predicate":"items.cuisine = '\''japanese'\''"}'
//	curl localhost:8080/sessions/1/summary
//	curl localhost:8080/metrics
//	curl localhost:8080/debug/spans
//	curl localhost:8080/debug/flightrecorder?trace=<id>
//
// With -debug-addr, net/http/pprof is served on a separate listener
// (kept off the public address on purpose):
//
//	subdexd -generate yelp -addr :8080 -debug-addr localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining in-flight
// requests for up to -shutdown-timeout.
//
// Robustness knobs: -step-timeout bounds each step's compute (past the
// first engine phase the step degrades to an anytime result with
// "degraded": true; before it the request answers 504), -max-sessions
// caps live sessions (429 + Retry-After on breach), and -session-ttl
// evicts idle sessions. The listener itself runs with read-header, read
// and idle timeouts so stalled clients cannot pin connections.
//
// With -session-dir, sessions are durable: every applied operation is
// appended to a crash-safe write-ahead log under that directory before
// the response is sent, a restarted daemon replays the log through the
// engine and resumes every session exactly (same ids, same step
// digests), and the idle janitor sheds sessions to the store instead of
// destroying them — the next request restores them transparently:
//
//	subdexd -generate yelp -scale 0.05 -addr :8080 -session-dir /var/lib/subdex
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"subdex"
	"subdex/internal/cluster"
	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/obs"
	"subdex/internal/server"
	"subdex/internal/sessionstore"
)

func main() {
	var (
		data     = flag.String("data", "", "CSV directory written by datagen")
		generate = flag.String("generate", "", "generate a synthetic dataset: demo | movielens | yelp | hotels")
		scale    = flag.Float64("scale", 0.05, "scale for -generate")
		seed     = flag.Int64("seed", 1, "seed for -generate")
		addr     = flag.String("addr", ":8080", "listen address")
		k        = flag.Int("k", 3, "rating maps per step")
		o        = flag.Int("o", 3, "recommendations per step")
		l        = flag.Int("l", 3, "pruning-diversity factor")
		debug    = flag.String("debug-addr", "", "serve net/http/pprof on this address (empty = disabled)")
		drain    = flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain timeout")

		stepTimeout = flag.Duration("step-timeout", 0,
			"per-step compute deadline; past the first phase boundary the step degrades to an anytime result, before it the request answers 504 (0 = unlimited)")
		maxSessions = flag.Int("max-sessions", 0,
			"admission cap on live sessions; breaches answer 429 with Retry-After (0 = unlimited)")
		sessionTTL = flag.Duration("session-ttl", 0,
			"evict sessions idle longer than this (0 = never)")
		flightDir = flag.String("flight-dir", "",
			"directory for flight-recorder dumps on 5xx responses and degraded steps; the live ring is always served at /debug/flightrecorder (empty = dumps disabled)")
		sessionDir = flag.String("session-dir", "",
			"directory for the durable session store (write-ahead log + snapshots); on boot every stored session is replayed through the engine and resumed exactly, and idle sessions are shed here instead of destroyed (empty = sessions are process-lifetime only)")

		clusterWorkers = flag.String("cluster-workers", "",
			"comma-separated subdexworker base URLs; when set, engine scans are partitioned across the workers and merged deterministically (bit-identical to single-node), with lost partitions degrading to anytime results")
		clusterPartitions = flag.Int("cluster-partitions", 0,
			"scan partitions per cluster scan (0 = one per worker)")
		clusterTimeout = flag.Duration("cluster-timeout", 0,
			"per-partition worker RPC deadline (0 = coordinator default)")
		clusterRetries = flag.Int("cluster-retries", 0,
			"retry attempts per partition on other workers (0 = coordinator default: workers-1)")
	)
	flag.Parse()

	db, err := loadDB(*data, *generate, *scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexd:", err)
		os.Exit(1)
	}
	cfg := subdex.DefaultConfig()
	cfg.K, cfg.O, cfg.L = *k, *o, *l
	cfg.StepTimeout = *stepTimeout

	var store sessionstore.Store
	if *sessionDir != "" {
		fs, err := sessionstore.Open(*sessionDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "subdexd:", err)
			os.Exit(1)
		}
		defer fs.Close()
		if rec := fs.Recovery(); rec.Records > 0 || rec.Truncated {
			fmt.Printf("subdexd: session store %s: %d records replayed, %d sessions recovered", *sessionDir, rec.Records, rec.Sessions)
			if rec.Truncated {
				fmt.Printf(" (corrupt tail truncated at byte %d: %s)", rec.TruncatedAt, rec.Reason)
			}
			fmt.Println()
		}
		store = fs
	}
	// With -cluster-workers, engine scans run distributed: a coordinator
	// partitions record ranges across the workers and merges their
	// checksummed partial frames in deterministic partition order. The
	// coordinator and server share one registry so a single /metrics
	// scrape covers subdex_cluster_* and the HTTP surface.
	var reg *obs.Registry
	if *clusterWorkers != "" {
		reg = obs.NewRegistry()
		workers := strings.Split(*clusterWorkers, ",")
		for i := range workers {
			workers[i] = strings.TrimSpace(workers[i])
		}
		coord, err := cluster.NewCoordinator(context.Background(), db, cluster.CoordinatorConfig{
			Workers:          workers,
			Partitions:       *clusterPartitions,
			PartitionTimeout: *clusterTimeout,
			Retries:          *clusterRetries,
			Registry:         reg,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "subdexd:", err)
			os.Exit(1)
		}
		defer coord.Close()
		cfg.Scanner = coord
		fmt.Printf("subdexd: distributed scans across %d workers\n", len(workers))
	}
	srv, err := server.NewWithOptions(db, cfg, server.Options{
		MaxSessions: *maxSessions,
		SessionTTL:  *sessionTTL,
		FlightDir:   *flightDir,
		Store:       store,
		Registry:    reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "subdexd:", err)
		os.Exit(1)
	}
	defer srv.Close()
	s := db.Stats()
	fmt.Printf("subdexd: serving %s (%d reviewers, %d items, %d ratings) on %s\n",
		s.Name, s.NumReviewers, s.NumItems, s.NumRatings, *addr)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Hardened listener: slow or stalled clients cannot hold connections
	// (and their goroutines) open indefinitely. WriteTimeout is left
	// unset on purpose — legitimate steps may run long when no
	// -step-timeout is configured; response lifetime is bounded by the
	// step deadline instead.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       120 * time.Second,
	}
	errCh := make(chan error, 2)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
		}
	}()

	var debugSrv *http.Server
	if *debug != "" {
		debugSrv = &http.Server{Addr: *debug, Handler: debugMux(),
			ReadHeaderTimeout: 5 * time.Second}
		fmt.Printf("subdexd: pprof on http://%s/debug/pprof/\n", *debug)
		go func() {
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errCh <- fmt.Errorf("debug listener: %w", err)
			}
		}()
	}

	select {
	case <-ctx.Done():
		fmt.Println("subdexd: shutdown signal received, draining...")
	case err := <-errCh:
		fmt.Fprintln(os.Stderr, "subdexd:", err)
		os.Exit(1)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "subdexd: shutdown:", err)
		os.Exit(1)
	}
	if debugSrv != nil {
		_ = debugSrv.Shutdown(shutdownCtx)
	}
	fmt.Println("subdexd: bye")
}

// debugMux wires the net/http/pprof handlers onto a private mux, so the
// profiling surface never rides the public address.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func loadDB(data, generate string, scale float64, seed int64) (*subdex.DB, error) {
	switch {
	case data != "":
		kinds := map[string]dataset.Kind{
			"genre": dataset.MultiValued, "cuisine": dataset.MultiValued,
			"amenity": dataset.MultiValued,
		}
		return subdex.LoadDir(data, "loaded", kinds)
	case generate != "":
		cfg := gen.Config{Seed: seed, Scale: scale}
		switch generate {
		case "demo":
			return gen.Demo(cfg)
		case "movielens":
			return gen.Movielens(cfg)
		case "yelp":
			return gen.Yelp(cfg)
		case "hotels":
			return gen.Hotels(cfg)
		}
		return nil, fmt.Errorf("unknown dataset %q", generate)
	default:
		return nil, fmt.Errorf("one of -data or -generate is required")
	}
}
