package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"subdex/internal/core"
	"subdex/internal/workload"
)

func TestParseSessionMode(t *testing.T) {
	for token, want := range map[string]core.Mode{
		"ud": core.UserDriven, "rp": core.RecommendationPowered, "fa": core.FullyAutomated,
	} {
		got, err := parseSessionMode(token)
		if err != nil || got != want {
			t.Errorf("parseSessionMode(%q) = %v, %v", token, got, err)
		}
	}
	if _, err := parseSessionMode("nope"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestAssertSLOs(t *testing.T) {
	rep := &benchReport{Steps: 10, P95Ms: 50, P99Ms: 90, ErrRate: 0.1, DegradedRate: 0.2}
	checks, pass := assertSLOs(options{sloMinSteps: 1, sloP95: 100 * time.Millisecond,
		sloErrRate: -1, sloDegRate: -1}, rep)
	if !pass || len(checks) != 2 {
		t.Fatalf("lenient SLOs failed: pass=%v checks=%+v", pass, checks)
	}
	checks, pass = assertSLOs(options{sloMinSteps: 1, sloP99: 50 * time.Millisecond,
		sloErrRate: 0, sloDegRate: -1}, rep)
	if pass {
		t.Fatalf("strict SLOs passed: %+v", checks)
	}
	if got := describeBreaches(checks); got == "" {
		t.Error("describeBreaches empty for failing checks")
	}
	// A zero error-rate limit must still be an active check.
	found := false
	for _, c := range checks {
		if c.Name == "error_rate" && !c.Pass {
			found = true
		}
	}
	if !found {
		t.Errorf("error_rate limit 0 not enforced: %+v", checks)
	}
}

func TestFaultHook(t *testing.T) {
	if faultHook(0, time.Millisecond) != nil {
		t.Error("faultHook(0) should disable injection")
	}
	hook := faultHook(1, time.Millisecond)
	if hook == nil {
		t.Fatal("faultHook(1) returned nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	hook(ctx, 0) // cancelled context: returns without the full stall
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("hook ignored context cancellation (%v)", elapsed)
	}
}

func TestReportRates(t *testing.T) {
	res := &workload.Result{Steps: 8, Degraded: 2, Wall: time.Second}
	res.Errors.Busy = 2
	s, err := workload.ParseMetrics(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	rep := report(options{generate: "demo", scale: 1, seed: 1, users: 4,
		sloMinSteps: 1, sloErrRate: -1, sloDegRate: -1}, "inproc", res, s)
	if rep.StepsPerS != 8 {
		t.Errorf("throughput: want 8, got %v", rep.StepsPerS)
	}
	if rep.DegradedRate != 0.25 {
		t.Errorf("degraded rate: want 0.25, got %v", rep.DegradedRate)
	}
	if rep.ErrRate != 0.2 { // 2 errors over 10 operations
		t.Errorf("error rate: want 0.2, got %v", rep.ErrRate)
	}
	if !rep.SLOPass {
		t.Errorf("min_steps should pass with 8 steps: %+v", rep.SLOChecks)
	}
}
