package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"subdex/internal/core"
	"subdex/internal/workload"
)

func TestParseSessionMode(t *testing.T) {
	for token, want := range map[string]core.Mode{
		"ud": core.UserDriven, "rp": core.RecommendationPowered, "fa": core.FullyAutomated,
	} {
		got, err := parseSessionMode(token)
		if err != nil || got != want {
			t.Errorf("parseSessionMode(%q) = %v, %v", token, got, err)
		}
	}
	if _, err := parseSessionMode("nope"); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestAssertSLOs(t *testing.T) {
	rep := &benchReport{Steps: 10, P95Ms: 50, P99Ms: 90, ErrRate: 0.1, DegradedRate: 0.2}
	checks, pass := assertSLOs(options{sloMinSteps: 1, sloP95: 100 * time.Millisecond,
		sloErrRate: -1, sloDegRate: -1}, rep)
	if !pass || len(checks) != 2 {
		t.Fatalf("lenient SLOs failed: pass=%v checks=%+v", pass, checks)
	}
	checks, pass = assertSLOs(options{sloMinSteps: 1, sloP99: 50 * time.Millisecond,
		sloErrRate: 0, sloDegRate: -1}, rep)
	if pass {
		t.Fatalf("strict SLOs passed: %+v", checks)
	}
	if got := describeBreaches(checks); got == "" {
		t.Error("describeBreaches empty for failing checks")
	}
	// A zero error-rate limit must still be an active check.
	found := false
	for _, c := range checks {
		if c.Name == "error_rate" && !c.Pass {
			found = true
		}
	}
	if !found {
		t.Errorf("error_rate limit 0 not enforced: %+v", checks)
	}
}

func TestFaultHook(t *testing.T) {
	if faultHook(0, time.Millisecond) != nil {
		t.Error("faultHook(0) should disable injection")
	}
	hook := faultHook(1, time.Millisecond)
	if hook == nil {
		t.Fatal("faultHook(1) returned nil")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	hook(ctx, 0) // cancelled context: returns without the full stall
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("hook ignored context cancellation (%v)", elapsed)
	}
}

func TestReportRates(t *testing.T) {
	res := &workload.Result{Steps: 8, Degraded: 2, Wall: time.Second}
	res.Errors.Busy = 2
	s, err := workload.ParseMetrics(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	rep := report(options{generate: "demo", scale: 1, seed: 1, users: 4,
		sloMinSteps: 1, sloErrRate: -1, sloDegRate: -1}, "inproc", res, s)
	if rep.StepsPerS != 8 {
		t.Errorf("throughput: want 8, got %v", rep.StepsPerS)
	}
	if rep.DegradedRate != 0.25 {
		t.Errorf("degraded rate: want 0.25, got %v", rep.DegradedRate)
	}
	if rep.ErrRate != 0.2 { // 2 errors over 10 operations
		t.Errorf("error rate: want 0.2, got %v", rep.ErrRate)
	}
	if !rep.SLOPass {
		t.Errorf("min_steps should pass with 8 steps: %+v", rep.SLOChecks)
	}
}

// TestRunSLOBreachDumpsFlightRecorder induces an SLO breach end to end
// and requires exactly one rate-limited flight-recorder dump under
// -flight-dir, wide events with trace IDs inside it, and a bench
// artifact carrying exemplars that resolve the slowest steps.
func TestRunSLOBreachDumpsFlightRecorder(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "BENCH_serving.json")
	o := options{
		generate: "demo", scale: 1, seed: 1, mode: "inproc", sessionMode: "rp",
		users: 2, steps: 3,
		sloErrRate: -1, sloDegRate: -1,
		sloMinSteps: 1 << 30, // unreachable: a guaranteed breach
		benchout:    bench,
		flightDir:   dir,
		exemplars:   3,
	}
	err := run(context.Background(), o)
	if err == nil || !strings.Contains(err.Error(), "SLO breach") {
		t.Fatalf("expected SLO breach error, got %v", err)
	}

	dumps, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 {
		t.Fatalf("expected exactly one flight-recorder dump, got %v", dumps)
	}
	raw, err := os.ReadFile(dumps[0])
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) < 2 {
		t.Fatalf("dump has no events beyond the header:\n%s", raw)
	}
	if !strings.Contains(lines[0], `"slo_breach"`) {
		t.Fatalf("dump header missing reason: %s", lines[0])
	}
	var ev map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &ev); err != nil {
		t.Fatalf("dump event not JSON: %v", err)
	}
	if tid, _ := ev["trace_id"].(string); tid == "" {
		t.Fatalf("dump event carries no trace_id: %s", lines[1])
	}

	var rep benchReport
	raw, err = os.ReadFile(bench)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Exemplars) == 0 {
		t.Fatal("bench artifact carries no exemplars")
	}
	for _, e := range rep.Exemplars {
		if e.TraceID == "" || e.Profile == nil {
			t.Fatalf("exemplar missing trace ID or profile: %+v", e)
		}
	}
	if rep.FlightDump != dumps[0] {
		t.Fatalf("bench artifact flight_dump %q != dump %q", rep.FlightDump, dumps[0])
	}
	if rep.GoVersion == "" || rep.Version == "" || rep.Commit == "" {
		t.Fatalf("bench artifact missing build info: %+v", rep)
	}
}

// TestRunTargetRejectsFlightDir pins the flag validation: -flight-dir
// dumps a self-hosted recorder and cannot apply to an external target.
func TestRunTargetRejectsFlightDir(t *testing.T) {
	err := run(context.Background(), options{
		generate: "demo", scale: 1, seed: 1, sessionMode: "rp",
		target: "http://127.0.0.1:1", flightDir: t.TempDir(),
	})
	if err == nil || !strings.Contains(err.Error(), "flight-dir") {
		t.Fatalf("expected -flight-dir usage error, got %v", err)
	}
	var ue usageError
	if !errorsAs(err, &ue) {
		t.Fatalf("expected usage error, got %v", err)
	}
}
