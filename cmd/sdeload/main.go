// Command sdeload is the serving-layer load and soak generator: it ramps
// a population of seeded simulated explorers (internal/workload) against
// either an in-process explorer, a self-hosted HTTP server, or a remote
// -target, scrapes the observability registry for latency quantiles and
// error/degradation counts, asserts SLOs, and writes a machine-readable
// BENCH_serving.json artifact.
//
//	sdeload -generate demo -users 32 -steps 8
//	sdeload -generate yelp -scale 0.05 -mode http -users 64 -duration 30s -ramp 5s
//	sdeload -target http://localhost:8080 -users 16 -duration 1m -think 200ms
//	sdeload -generate demo -users 8 -step-timeout 5ms -fault-every 3 -fault-delay 10ms
//	sdeload -soak-kill -generate yelp -scale 0.05 -seed 7 -users 8 -steps 10
//
// -soak-kill is the durability soak: it runs the workload against a
// self-hosted child server backed by a write-ahead session store,
// SIGKILLs the child mid-run, restarts it on the same address and
// store directory, and fails unless every user's golden trace is
// byte-identical to an uninterrupted run, at least one session was
// recovered by WAL replay, and the durable run's p99 session-route
// latency stays within -wal-overhead of a store-less baseline.
//
// Every run with the same -seed replays the same population paths (think
// pacing and fault injection never perturb which operations a user
// draws), so a soak failure is replayable at full fidelity.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"sync/atomic"
	"time"

	"subdex/internal/buildinfo"
	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/engine"
	"subdex/internal/gen"
	"subdex/internal/obs"
	"subdex/internal/server"
	"subdex/internal/workload"
)

func main() {
	var (
		generate = flag.String("generate", "demo", "dataset to generate: demo | movielens | yelp | hotels")
		scale    = flag.Float64("scale", 1.0, "dataset scale for -generate")
		seed     = flag.Int64("seed", 1, "seed for generation and user decision streams")
		mode     = flag.String("mode", "inproc", "driving mode: inproc | http")
		target   = flag.String("target", "", "load an external server at this base URL instead of self-hosting (scrapes <target>/metrics)")

		users       = flag.Int("users", 8, "concurrent simulated users")
		steps       = flag.Int("steps", 0, "step budget per user (0: 8, or unlimited under -duration)")
		duration    = flag.Duration("duration", 0, "wall-clock bound for the whole run (soak mode)")
		ramp        = flag.Duration("ramp", 0, "stagger user starts across this interval")
		think       = flag.Duration("think", 0, "mean think time between operations (exponential, capped at 4x)")
		mixFlag     = flag.String("mix", "", "operation mix, e.g. recommend=0.55,drill=0.25,back=0.15,auto=0.05")
		autoLen     = flag.Int("auto-len", 3, "auto-pilot burst length")
		sessionMode = flag.String("session-mode", "rp", "exploration mode: ud | rp | fa")
		predicate   = flag.String("predicate", "", "starting selection predicate")

		stepTimeout = flag.Duration("step-timeout", 0, "per-step compute deadline (0: unlimited; steps past the first phase degrade instead of failing)")
		maxSessions = flag.Int("max-sessions", 0, "admission cap on live sessions (0: unlimited; http/inproc self-host only)")
		faultEvery  = flag.Int("fault-every", 0, "inject a fault into every Nth engine phase (0: no faults)")
		faultDelay  = flag.Duration("fault-delay", 5*time.Millisecond, "stall injected by -fault-every faults")

		sloP95      = flag.Duration("slo-p95", 0, "fail if p95 step latency exceeds this (0: unchecked)")
		sloP99      = flag.Duration("slo-p99", 0, "fail if p99 step latency exceeds this (0: unchecked)")
		sloErrRate  = flag.Float64("slo-error-rate", -1, "fail if (busy+admission+timeout+other)/ops exceeds this fraction (negative: unchecked)")
		sloDegRate  = flag.Float64("slo-degraded-rate", -1, "fail if degraded/steps exceeds this fraction (negative: unchecked)")
		sloMinSteps = flag.Int("slo-min-steps", 1, "fail if the population executed fewer total steps than this")

		benchout  = flag.String("benchout", "BENCH_serving.json", "output path for the machine-readable bench artifact ('' disables)")
		flightDir = flag.String("flight-dir", "", "directory for flight-recorder dumps on SLO breach ('' disables; self-hosted modes only)")
		exemplars = flag.Int("exemplars", 5, "record the K slowest steps' trace IDs and EXPLAIN profiles as exemplars (0 disables)")

		soakKill = flag.Bool("soak-kill", false,
			"run the kill-and-resume durability soak: self-host a child server with a durable session store, SIGKILL it mid-run, restart it on the same address and store, and assert zero golden-trace divergence plus SLOs over the merged lifetimes")
		killFrac = flag.Float64("kill-frac", 0.5,
			"fraction of the population step budget after which -soak-kill fires the SIGKILL")
		walOverhead = flag.Float64("wal-overhead", 0.10,
			"fail -soak-kill if the durable run's p99 session-route latency exceeds the baseline's by more than this fraction")
		sessionDir = flag.String("session-dir", "",
			"session store directory for -soak-kill (default: a temp dir, removed on pass, kept on failure)")

		clusterSoak = flag.Bool("cluster-soak", false,
			"run the distributed-engine soak: self-host -cluster-nodes scan-worker processes, drive the workload against a single-node server and a coordinator-backed one, and assert byte-identical golden traces, digest-identical scans, and the scan speedup")
		clusterNodes = flag.Int("cluster-nodes", 3,
			"worker process count for -cluster-soak")
		scanSpeedupMin = flag.Float64("scan-speedup-min", -1,
			"fail -cluster-soak if the distributed whole-database scan is not at least this many times faster than the single-thread scan (negative = auto: 1.0 on multi-core hosts; 0.5 on a single-core host, where parallel speedup is unattainable and the assertion degrades to bounded overhead)")

		childServe = flag.Bool("child-serve", false, "internal: serve as the -soak-kill child server process")
		childAddr  = flag.String("child-addr", "", "internal: child listen address (-child-serve and -cluster-worker)")
		childWork  = flag.Bool("cluster-worker", false, "internal: serve as a -cluster-soak scan-worker process")
	)
	flag.Parse()
	if err := run(context.Background(), options{
		generate: *generate, scale: *scale, seed: *seed,
		mode: *mode, target: *target,
		users: *users, steps: *steps, duration: *duration, ramp: *ramp,
		think: *think, mix: *mixFlag, autoLen: *autoLen,
		sessionMode: *sessionMode, predicate: *predicate,
		stepTimeout: *stepTimeout, maxSessions: *maxSessions,
		faultEvery: *faultEvery, faultDelay: *faultDelay,
		sloP95: *sloP95, sloP99: *sloP99,
		sloErrRate: *sloErrRate, sloDegRate: *sloDegRate, sloMinSteps: *sloMinSteps,
		benchout: *benchout, flightDir: *flightDir, exemplars: *exemplars,
		soakKill: *soakKill, killFrac: *killFrac, walOverhead: *walOverhead,
		sessionDir: *sessionDir, childServe: *childServe, childAddr: *childAddr,
		clusterSoak: *clusterSoak, clusterNodes: *clusterNodes,
		scanSpeedupMin: *scanSpeedupMin, clusterWorker: *childWork,
	}); err != nil {
		code := 1
		var ue usageError
		if errorsAs(err, &ue) {
			code = 2
		}
		fmt.Fprintf(os.Stderr, "sdeload: %v\n", err)
		os.Exit(code)
	}
}

// usageError marks configuration-level failures (exit code 2, like flag
// parse errors) as opposed to run or SLO failures (exit code 1).
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// errorsAs is a tiny local alias so the main flow reads linearly.
func errorsAs(err error, target *usageError) bool {
	u, ok := err.(usageError)
	if ok {
		*target = u
	}
	return ok
}

// options carries the parsed flag set.
type options struct {
	generate    string
	scale       float64
	seed        int64
	mode        string
	target      string
	users       int
	steps       int
	duration    time.Duration
	ramp        time.Duration
	think       time.Duration
	mix         string
	autoLen     int
	sessionMode string
	predicate   string
	stepTimeout time.Duration
	maxSessions int
	faultEvery  int
	faultDelay  time.Duration
	sloP95      time.Duration
	sloP99      time.Duration
	sloErrRate  float64
	sloDegRate  float64
	sloMinSteps int
	benchout    string
	flightDir   string
	exemplars   int
	soakKill    bool
	killFrac    float64
	walOverhead float64
	sessionDir  string
	childServe  bool
	childAddr   string

	clusterSoak    bool
	clusterNodes   int
	scanSpeedupMin float64
	clusterWorker  bool
}

// benchReport is the BENCH_serving.json artifact.
type benchReport struct {
	Bench     string  `json:"bench"`
	Dataset   string  `json:"dataset"`
	Scale     float64 `json:"scale"`
	Seed      int64   `json:"seed"`
	Mode      string  `json:"mode"`
	Users     int     `json:"users"`
	WallSecs  float64 `json:"wall_seconds"`
	Steps     int     `json:"steps"`
	StepsPerS float64 `json:"throughput_steps_per_sec"`

	P50Ms float64 `json:"step_latency_p50_ms"`
	P95Ms float64 `json:"step_latency_p95_ms"`
	P99Ms float64 `json:"step_latency_p99_ms"`

	Degraded     int     `json:"degraded_steps"`
	DegradedRate float64 `json:"degraded_rate"`

	Busy      int     `json:"errors_busy_409"`
	Admission int     `json:"errors_admission_429"`
	Timeout   int     `json:"errors_timeout_504"`
	Other     int     `json:"errors_other"`
	ErrRate   float64 `json:"error_rate"`

	FaultEvery int        `json:"fault_every,omitempty"`
	SLOChecks  []sloCheck `json:"slo_checks,omitempty"`
	SLOPass    bool       `json:"slo_pass"`

	// Exemplars are the run's K slowest step calls, each carrying the
	// trace ID that resolves it against /debug/spans?trace= and
	// /debug/flightrecorder?trace= and its EXPLAIN profile.
	Exemplars []workload.Exemplar `json:"exemplars,omitempty"`
	// FlightDump is the path of the flight-recorder dump an SLO breach
	// produced, when -flight-dir was set.
	FlightDump string `json:"flight_dump,omitempty"`

	// Recovery is the kill-and-resume soak's extra section (-soak-kill
	// runs only).
	Recovery *recoveryReport `json:"recovery,omitempty"`

	// Cluster is the distributed-engine soak's extra section
	// (-cluster-soak runs only).
	Cluster *clusterReport `json:"cluster,omitempty"`

	// Version, Commit, and GoVersion identify the binary that produced
	// the artifact (mirroring the subdex_build_info gauge).
	Version   string `json:"version"`
	Commit    string `json:"commit"`
	GoVersion string `json:"go_version"`
}

// sloCheck records one asserted objective.
type sloCheck struct {
	Name  string  `json:"name"`
	Limit float64 `json:"limit"`
	Got   float64 `json:"got"`
	Pass  bool    `json:"pass"`
}

func run(ctx context.Context, o options) error {
	if o.childServe {
		return runChildServe(o)
	}
	if o.clusterWorker {
		return runChildWorker(o)
	}
	if o.soakKill {
		return runSoakKill(ctx, o)
	}
	if o.clusterSoak {
		return runClusterSoak(ctx, o)
	}
	sessMode, err := parseSessionMode(o.sessionMode)
	if err != nil {
		return err
	}
	mix, err := workload.ParseMix(o.mix)
	if err != nil {
		return usageError{err.Error()}
	}
	cfg := workload.Config{
		Users:        o.users,
		Seed:         o.seed,
		StepsPerUser: o.steps,
		Duration:     o.duration,
		Ramp:         o.ramp,
		Think:        o.think,
		Mix:          mix,
		AutoLen:      o.autoLen,
		Mode:         sessMode,
		Predicate:    o.predicate,
		ExemplarK:    o.exemplars,
	}

	var (
		factory  workload.ClientFactory
		snapshot func() (*workload.Scrape, error)
		before   *workload.Scrape
		modeName = o.mode
		// flight is the recorder an SLO breach dumps: the server's in http
		// mode (its ring holds the per-step wide events), a client-side one
		// in inproc mode.
		flight *obs.FlightRecorder
	)
	switch {
	case o.target != "":
		if o.faultEvery > 0 || o.maxSessions > 0 || o.stepTimeout > 0 {
			return usageError{"-fault-every/-max-sessions/-step-timeout configure a self-hosted engine and cannot apply to an external -target"}
		}
		if o.flightDir != "" {
			return usageError{"-flight-dir dumps a self-hosted engine's flight recorder and cannot apply to an external -target"}
		}
		modeName = "target"
		factory = workload.HTTPFactory(o.target, nil, sessMode, o.predicate)
		url := o.target + "/metrics"
		snapshot = func() (*workload.Scrape, error) { return workload.FetchMetrics(ctx, nil, url) }
		if before, err = snapshot(); err != nil {
			return fmt.Errorf("pre-run scrape of %s: %w", url, err)
		}
	default:
		db, err := buildDataset(o)
		if err != nil {
			return err
		}
		coreCfg := core.Config{
			StepTimeout: o.stepTimeout,
			Engine:      engine.Config{PhaseHook: faultHook(o.faultEvery, o.faultDelay)},
		}
		switch o.mode {
		case "inproc":
			if o.maxSessions > 0 {
				return usageError{"-max-sessions is admission control on the HTTP session layer; use -mode http"}
			}
			ex, err := core.NewExplorer(db, coreCfg)
			if err != nil {
				return err
			}
			reg := obs.NewRegistry()
			ex.Instrument(reg)
			if o.flightDir != "" {
				flight = obs.NewFlightRecorder(obs.FlightOptions{Dir: o.flightDir, Name: "sdeload"})
				cfg.Flight = flight
			}
			factory = workload.InprocFactory(ex, sessMode, o.predicate)
			snapshot = registrySnapshot(reg)
		case "http":
			srv, err := server.NewWithOptions(db, coreCfg,
				server.Options{MaxSessions: o.maxSessions, FlightDir: o.flightDir})
			if err != nil {
				return err
			}
			flight = srv.Flight()
			defer srv.Close()
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				return err
			}
			hs := &http.Server{Handler: srv.Handler()}
			go func() { _ = hs.Serve(ln) }()
			defer hs.Close()
			base := "http://" + ln.Addr().String()
			fmt.Printf("serving %s on %s\n", db.Name, base)
			factory = workload.HTTPFactory(base, nil, sessMode, o.predicate)
			snapshot = registrySnapshot(srv.Registry())
		default:
			return usageError{fmt.Sprintf("unknown -mode %q (want inproc or http)", o.mode)}
		}
	}

	res, err := workload.Run(ctx, cfg, factory)
	if err != nil {
		return err
	}
	after, err := snapshot()
	if err != nil {
		return fmt.Errorf("post-run scrape: %w", err)
	}
	if before != nil {
		after = after.Delta(before)
	}

	rep := report(o, modeName, res, after)
	if !rep.SLOPass && flight.DumpsEnabled() {
		// One rate-limited dump per breach: the recent ring (the slow or
		// failing steps, wide events with trace IDs) plus a goroutine/heap
		// snapshot land under -flight-dir for post-mortem.
		if path, dumped, err := flight.Trigger("slo_breach"); err != nil {
			fmt.Fprintf(os.Stderr, "sdeload: flight-recorder dump failed: %v\n", err)
		} else if dumped {
			rep.FlightDump = path
		}
	}
	render(os.Stdout, res, rep)
	if o.benchout != "" {
		if err := writeBench(o.benchout, rep); err != nil {
			return err
		}
	}
	if fails := res.Failures(); len(fails) != 0 {
		n := len(fails)
		if n > 3 {
			fails = fails[:3]
		}
		return fmt.Errorf("%d user(s) failed terminally, e.g. %q", n, fails[0])
	}
	if !rep.SLOPass {
		return fmt.Errorf("SLO breach: %s", describeBreaches(rep.SLOChecks))
	}
	return nil
}

// writeBench serializes the bench artifact.
func writeBench(path string, rep *benchReport) error {
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// buildDataset generates the configured synthetic dataset.
func buildDataset(o options) (*dataset.DB, error) {
	cfg := gen.Config{Seed: o.seed, Scale: o.scale}
	switch o.generate {
	case "demo":
		return gen.Demo(cfg)
	case "movielens":
		return gen.Movielens(cfg)
	case "yelp":
		return gen.Yelp(cfg)
	case "hotels":
		return gen.Hotels(cfg)
	}
	return nil, usageError{fmt.Sprintf("unknown -generate %q (want demo, movielens, yelp, or hotels)", o.generate)}
}

// parseSessionMode maps the wire token to a core.Mode.
func parseSessionMode(s string) (core.Mode, error) {
	switch s {
	case "ud":
		return core.UserDriven, nil
	case "rp":
		return core.RecommendationPowered, nil
	case "fa":
		return core.FullyAutomated, nil
	}
	return 0, usageError{fmt.Sprintf("unknown -session-mode %q (want ud, rp, or fa)", s)}
}

// faultHook builds the engine fault injector: every Nth phase entry
// stalls for delay, honoring the phase context so deadline-cut steps
// degrade exactly like production stalls (GC pauses, noisy neighbors)
// would. A zero n disables injection.
func faultHook(n int, delay time.Duration) func(ctx context.Context, phase int) {
	if n <= 0 || delay <= 0 {
		return nil
	}
	// The hook fires on engine worker goroutines; approximate spacing is
	// all fault injection needs. An atomic keeps the race detector quiet.
	var calls atomic.Int64
	return func(ctx context.Context, _ int) {
		if calls.Add(1)%int64(n) != 0 {
			return
		}
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
}

// registrySnapshot scrapes an in-process registry through the same text
// exposition a remote /metrics serves, so every mode reads identical
// metric shapes.
func registrySnapshot(reg *obs.Registry) func() (*workload.Scrape, error) {
	return func() (*workload.Scrape, error) {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			return nil, err
		}
		return workload.ParseMetrics(&buf)
	}
}

// report assembles the bench artifact from runner results and the
// scraped engine metrics.
func report(o options, modeName string, res *workload.Result, s *workload.Scrape) *benchReport {
	rep := &benchReport{
		Bench:    "serving",
		Dataset:  o.generate,
		Scale:    o.scale,
		Seed:     o.seed,
		Mode:     modeName,
		Users:    o.users,
		WallSecs: res.Wall.Seconds(),
		Steps:    res.Steps,
		Degraded: res.Degraded,

		Busy:      res.Errors.Busy,
		Admission: res.Errors.Admission,
		Timeout:   res.Errors.Timeout,
		Other:     res.Errors.Other,

		FaultEvery: o.faultEvery,
		Exemplars:  res.Exemplars,
	}
	info := buildinfo.Get()
	rep.Version, rep.Commit, rep.GoVersion = info.Version, info.Commit, info.GoVersion
	if res.Wall > 0 {
		rep.StepsPerS = float64(res.Steps) / res.Wall.Seconds()
	}
	if h := s.Histogram("subdex_step_duration_seconds"); h != nil {
		rep.P50Ms = h.Quantile(0.50) * 1000
		rep.P95Ms = h.Quantile(0.95) * 1000
		rep.P99Ms = h.Quantile(0.99) * 1000
	}
	if res.Steps > 0 {
		rep.DegradedRate = float64(res.Degraded) / float64(res.Steps)
	}
	if ops := res.Steps + res.Errors.Total(); ops > 0 {
		rep.ErrRate = float64(res.Errors.Total()) / float64(ops)
	}
	rep.SLOChecks, rep.SLOPass = assertSLOs(o, rep)
	return rep
}

// assertSLOs evaluates every configured objective.
func assertSLOs(o options, rep *benchReport) ([]sloCheck, bool) {
	var checks []sloCheck
	add := func(name string, limit, got float64) {
		checks = append(checks, sloCheck{Name: name, Limit: limit, Got: got, Pass: got <= limit})
	}
	if o.sloMinSteps > 0 {
		checks = append(checks, sloCheck{
			Name: "min_steps", Limit: float64(o.sloMinSteps), Got: float64(rep.Steps),
			Pass: rep.Steps >= o.sloMinSteps,
		})
	}
	if o.sloP95 > 0 {
		add("p95_ms", float64(o.sloP95)/float64(time.Millisecond), rep.P95Ms)
	}
	if o.sloP99 > 0 {
		add("p99_ms", float64(o.sloP99)/float64(time.Millisecond), rep.P99Ms)
	}
	if o.sloErrRate >= 0 {
		add("error_rate", o.sloErrRate, rep.ErrRate)
	}
	if o.sloDegRate >= 0 {
		add("degraded_rate", o.sloDegRate, rep.DegradedRate)
	}
	pass := true
	for _, c := range checks {
		pass = pass && c.Pass
	}
	return checks, pass
}

// describeBreaches renders the failed checks.
func describeBreaches(checks []sloCheck) string {
	out := ""
	for _, c := range checks {
		if c.Pass {
			continue
		}
		if out != "" {
			out += ", "
		}
		out += fmt.Sprintf("%s got %.4g limit %.4g", c.Name, c.Got, c.Limit)
	}
	return out
}

// render prints the human-readable summary.
func render(w *os.File, res *workload.Result, rep *benchReport) {
	fmt.Fprintf(w, "%d users, %d steps in %.2fs (%.1f steps/s)\n",
		rep.Users, rep.Steps, rep.WallSecs, rep.StepsPerS)
	fmt.Fprintf(w, "step latency p50=%.2fms p95=%.2fms p99=%.2fms\n",
		rep.P50Ms, rep.P95Ms, rep.P99Ms)
	fmt.Fprintf(w, "degraded %d (%.2f%%)  errors busy=%d admission=%d timeout=%d other=%d (%.2f%%)\n",
		rep.Degraded, 100*rep.DegradedRate,
		rep.Busy, rep.Admission, rep.Timeout, rep.Other, 100*rep.ErrRate)
	for _, c := range rep.SLOChecks {
		verdict := "ok"
		if !c.Pass {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "slo %-14s limit %.4g got %.4g  %s\n", c.Name, c.Limit, c.Got, verdict)
	}
	if len(rep.Exemplars) > 0 {
		e := rep.Exemplars[0]
		fmt.Fprintf(w, "slowest step: user %d step %d %s %.2fms trace %s\n",
			e.User, e.Step, e.Op, e.DurationMS, e.TraceID)
	}
	if rep.FlightDump != "" {
		fmt.Fprintf(w, "flight-recorder dump: %s\n", rep.FlightDump)
	}
	if n := len(res.Failures()); n > 0 {
		fmt.Fprintf(w, "terminal failures: %d\n", n)
	}
}
