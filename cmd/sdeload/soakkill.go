// The kill-and-resume durability soak (-soak-kill): sdeload re-executes
// itself as a child server with a durable session store, SIGKILLs it
// mid-run, restarts it on the same address and store directory, and lets
// the workload's retrying clients ride the outage. The proof obligations:
//
//   - Zero golden-trace divergence: every user's recorded walk in the
//     killed-and-recovered run is byte-identical to the same seed's walk
//     against an uninterrupted baseline server. This exercises the whole
//     exactly-once chain — log-before-respond on the server, op-id dedup
//     on retry, deterministic WAL replay on boot.
//   - SLOs hold over the merged run (both process lifetimes' metrics
//     summed with Scrape.Merge).
//   - The WAL's write-path cost stays within -wal-overhead of the
//     baseline's p99 session-route latency.
package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strconv"
	"time"

	"subdex/internal/core"
	"subdex/internal/engine"
	"subdex/internal/server"
	"subdex/internal/sessionstore"
	"subdex/internal/workload"
)

// sessionRouteSeries is the exact scraped series of the session-action
// route's latency histogram — the one that includes the WAL append+fsync
// a durable step pays, which the engine-level step histogram does not.
const sessionRouteSeries = `subdex_http_request_duration_seconds{route="/sessions/{id}"}`

// soakRetry is the transport retry policy soak clients run with: enough
// doubling-backoff attempts to ride a child restart (dataset rebuild +
// WAL replay) without giving up.
var soakRetry = workload.Retry{Attempts: 14, Backoff: 100 * time.Millisecond}

// recoveryReport is the benchReport section the soak adds.
type recoveryReport struct {
	BaselineP99Ms float64 `json:"baseline_p99_ms"`
	DurableP99Ms  float64 `json:"durable_p99_ms"`
	// WALOverhead is durable/baseline - 1 on the session-route p99.
	WALOverhead      float64 `json:"wal_overhead"`
	WALOverheadLimit float64 `json:"wal_overhead_limit"`
	// GoldenSteps is the number of byte-compared golden records;
	// GoldenDivergences must be zero.
	GoldenSteps       int `json:"golden_steps"`
	GoldenDivergences int `json:"golden_divergences"`
	// SessionsRecovered and ReplayRecords come from the restarted
	// lifetime's recovery counters; Truncations counts corrupt-tail cuts.
	SessionsRecovered float64 `json:"sessions_recovered"`
	ReplayRecords     float64 `json:"wal_replay_records"`
	Truncations       float64 `json:"wal_truncations"`
	// KilledAtSteps is the population step count observed just before the
	// SIGKILL fired.
	KilledAtSteps int    `json:"killed_at_steps"`
	SessionDir    string `json:"session_dir"`
}

// runChildServe is the hidden child mode: build the dataset, open the
// store when -session-dir is set, and serve until killed. The parent
// detects readiness by polling /metrics, so nothing is printed on a
// protocol; the child's only contract is the listen address it was given.
func runChildServe(o options) error {
	db, err := buildDataset(o)
	if err != nil {
		return err
	}
	var store sessionstore.Store
	if o.sessionDir != "" {
		fs, err := sessionstore.Open(o.sessionDir)
		if err != nil {
			return err
		}
		defer fs.Close()
		store = fs
	}
	coreCfg := core.Config{
		StepTimeout: o.stepTimeout,
		Engine:      engine.Config{PhaseHook: faultHook(o.faultEvery, o.faultDelay)},
	}
	srv, err := server.NewWithOptions(db, coreCfg, server.Options{Store: store})
	if err != nil {
		return err
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", o.childAddr)
	if err != nil {
		return err
	}
	fmt.Printf("sdeload child: serving %s on %s (session-dir %q)\n", db.Name, ln.Addr(), o.sessionDir)
	return (&http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 5 * time.Second}).Serve(ln)
}

// runSoakKill orchestrates the two phases and the assertions.
func runSoakKill(ctx context.Context, o options) error {
	if o.target != "" {
		return usageError{"-soak-kill self-hosts its servers and cannot apply to an external -target"}
	}
	if o.mode != "inproc" && o.mode != "http" {
		return usageError{fmt.Sprintf("unknown -mode %q", o.mode)}
	}
	if o.duration > 0 {
		return usageError{"-soak-kill needs a fixed step budget for golden comparison; use -steps, not -duration"}
	}
	if o.faultEvery > 0 || o.stepTimeout > 0 {
		// Degraded and fault-cut steps depend on wall-clock phase timing,
		// which would make the baseline and durable walks legitimately
		// diverge — the soak proves recovery, not anytime behavior.
		return usageError{"-soak-kill requires deterministic steps; drop -fault-every and -step-timeout"}
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	sessMode, err := parseSessionMode(o.sessionMode)
	if err != nil {
		return err
	}
	mix, err := workload.ParseMix(o.mix)
	if err != nil {
		return usageError{err.Error()}
	}
	steps := o.steps
	if steps <= 0 {
		steps = 8
	}
	cfg := workload.Config{
		Users: o.users, Seed: o.seed, StepsPerUser: steps,
		Ramp: o.ramp, Think: o.think, Mix: mix, AutoLen: o.autoLen,
		Mode: sessMode, Predicate: o.predicate,
		Record: true, ExemplarK: o.exemplars,
	}
	dir := o.sessionDir
	if dir == "" {
		if dir, err = os.MkdirTemp("", "sdeload-soak-*"); err != nil {
			return err
		}
	}

	factory := func(base string) workload.ClientFactory {
		return workload.HTTPRetryFactory(base, nil, sessMode, o.predicate, soakRetry)
	}

	// Phase A: uninterrupted baseline, no store. Its golden traces are the
	// ground truth and its latency histogram the WAL-overhead denominator.
	fmt.Println("soak-kill phase A: baseline (no session store)")
	addrA, err := pickAddr()
	if err != nil {
		return err
	}
	baseA, childA, err := startChild(ctx, exe, o, addrA, "")
	if err != nil {
		return err
	}
	resA, err := workload.Run(ctx, cfg, factory(baseA))
	if err != nil {
		childA.kill()
		return err
	}
	scrapeA, err := workload.FetchMetrics(ctx, nil, baseA+"/metrics")
	childA.kill()
	if err != nil {
		return fmt.Errorf("baseline scrape: %w", err)
	}
	if fails := resA.Failures(); len(fails) != 0 {
		return fmt.Errorf("baseline run failed: %d user(s), e.g. %q", len(fails), fails[0])
	}

	// Phase B: durable server, SIGKILL at -kill-frac of the step budget,
	// restart on the same address and store, clients retry through.
	fmt.Printf("soak-kill phase B: durable server (session-dir %s), kill at %.0f%% of %d steps\n",
		dir, 100*o.killFrac, o.users*steps)
	addrB, err := pickAddr()
	if err != nil {
		return err
	}
	baseB, childB, err := startChild(ctx, exe, o, addrB, dir)
	if err != nil {
		return err
	}
	resCh := make(chan *workload.Result, 1)
	errCh := make(chan error, 1)
	go func() {
		res, err := workload.Run(ctx, cfg, factory(baseB))
		if err != nil {
			errCh <- err
			return
		}
		resCh <- res
	}()
	killAt := int(o.killFrac * float64(o.users*steps))
	if killAt < 1 {
		killAt = 1
	}
	preKill, killedAt, err := awaitSteps(ctx, baseB, killAt, resCh, errCh)
	if err != nil {
		childB.kill()
		return err
	}
	var resB *workload.Result
	if preKill != nil {
		fmt.Printf("soak-kill: SIGKILL after %d steps, restarting\n", killedAt)
		childB.kill()
		// Same address: the retrying clients reconnect to the recovered
		// server without reconfiguration, exactly like a production
		// restart behind a stable endpoint.
		if _, childB, err = startChild(ctx, exe, o, addrB, dir); err != nil {
			return err
		}
	} else {
		// The workload finished before the threshold — a configuration
		// problem (budget too small for the kill fraction), not a pass.
		childB.kill()
		return usageError{fmt.Sprintf("workload finished before the kill threshold (%d steps); raise -steps or lower -kill-frac", killAt)}
	}
	select {
	case resB = <-resCh:
	case err := <-errCh:
		childB.kill()
		return err
	case <-ctx.Done():
		childB.kill()
		return ctx.Err()
	}
	scrapeB2, err := workload.FetchMetrics(ctx, nil, baseB+"/metrics")
	childB.kill()
	if err != nil {
		return fmt.Errorf("post-recovery scrape: %w", err)
	}
	merged := preKill.Merge(scrapeB2)
	if fails := resB.Failures(); len(fails) != 0 {
		return fmt.Errorf("durable run failed: %d user(s), e.g. %q (session-dir kept at %s)", len(fails), fails[0], dir)
	}

	// Assertions: golden byte-identity, recovery actually happened, WAL
	// overhead bounded, SLOs over the merged lifetimes.
	goldenSteps, divergences := compareGolden(resA, resB)
	rec := &recoveryReport{
		WALOverheadLimit:  o.walOverhead,
		GoldenSteps:       goldenSteps,
		GoldenDivergences: len(divergences),
		SessionsRecovered: scrapeB2.Sum("subdex_sessions_recovered_total"),
		ReplayRecords:     scrapeB2.Sum("subdex_wal_replay_records_total"),
		Truncations:       merged.Sum("subdex_wal_truncations_total"),
		KilledAtSteps:     killedAt,
		SessionDir:        dir,
	}
	if hA := scrapeA.Histogram(sessionRouteSeries); hA != nil {
		rec.BaselineP99Ms = hA.Quantile(0.99) * 1000
	}
	if hB := merged.Histogram(sessionRouteSeries); hB != nil {
		rec.DurableP99Ms = hB.Quantile(0.99) * 1000
	}
	if rec.BaselineP99Ms > 0 {
		rec.WALOverhead = rec.DurableP99Ms/rec.BaselineP99Ms - 1
	}

	rep := report(o, "soak-kill", resB, merged)
	rep.Recovery = rec
	rep.SLOChecks = append(rep.SLOChecks, soakChecks(rec)...)
	for _, c := range rep.SLOChecks {
		rep.SLOPass = rep.SLOPass && c.Pass
	}
	render(os.Stdout, resB, rep)
	if o.benchout != "" {
		if err := writeBench(o.benchout, rep); err != nil {
			return err
		}
	}
	if len(divergences) > 0 {
		max := len(divergences)
		if max > 8 {
			divergences = divergences[:8]
		}
		for _, d := range divergences {
			fmt.Fprintln(os.Stderr, "golden divergence:", d)
		}
		return fmt.Errorf("recovered run diverged from baseline in %d place(s) (session-dir kept at %s)", max, dir)
	}
	if !rep.SLOPass {
		return fmt.Errorf("SLO breach: %s (session-dir kept at %s)", describeBreaches(rep.SLOChecks), dir)
	}
	if o.sessionDir == "" {
		os.RemoveAll(dir) // temp dir, and every assertion passed
	}
	fmt.Printf("soak-kill pass: %d golden steps byte-identical across kill+restart, %0.f sessions recovered, wal p99 overhead %+.1f%%\n",
		goldenSteps, rec.SessionsRecovered, 100*rec.WALOverhead)
	return nil
}

// soakChecks renders the soak's extra objectives as SLO rows so they ride
// the same reporting and pass/fail machinery.
func soakChecks(rec *recoveryReport) []sloCheck {
	checks := []sloCheck{
		{Name: "golden_divergences", Limit: 0, Got: float64(rec.GoldenDivergences),
			Pass: rec.GoldenDivergences == 0},
		{Name: "sessions_recovered_min", Limit: 1, Got: rec.SessionsRecovered,
			Pass: rec.SessionsRecovered >= 1},
		{Name: "wal_replay_records_min", Limit: 1, Got: rec.ReplayRecords,
			Pass: rec.ReplayRecords >= 1},
	}
	if rec.BaselineP99Ms > 0 {
		checks = append(checks, sloCheck{Name: "wal_overhead", Limit: rec.WALOverheadLimit,
			Got: rec.WALOverhead, Pass: rec.WALOverhead <= rec.WALOverheadLimit})
	}
	return checks
}

// compareGolden byte-compares the two runs user by user and returns the
// total record count plus human-readable divergences (empty on identity).
func compareGolden(base, got *workload.Result) (int, []string) {
	var total int
	var out []string
	n := len(base.Users)
	if len(got.Users) < n {
		n = len(got.Users)
	}
	for i := 0; i < n; i++ {
		want, have := base.Users[i].Records, got.Users[i].Records
		total += len(want)
		wb, err1 := workload.MarshalGolden(want)
		gb, err2 := workload.MarshalGolden(have)
		if err1 != nil || err2 != nil {
			out = append(out, fmt.Sprintf("user %d: marshal failed: %v %v", i, err1, err2))
			continue
		}
		if bytes.Equal(wb, gb) {
			continue
		}
		for _, d := range workload.DiffRecords(want, have) {
			out = append(out, fmt.Sprintf("user %d: %s", i, d))
		}
	}
	return total, out
}

// awaitSteps polls the child's /metrics until the population has executed
// at least want steps (per subdex_steps_total), then returns the final
// pre-kill scrape. A result arriving first returns (nil, steps, nil) —
// the workload outran the threshold.
func awaitSteps(ctx context.Context, base string, want int, resCh chan *workload.Result, errCh chan error) (*workload.Scrape, int, error) {
	t := time.NewTicker(25 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return nil, 0, ctx.Err()
		case err := <-errCh:
			return nil, 0, err
		case res := <-resCh:
			resCh <- res // put it back for the caller
			return nil, res.Steps, nil
		case <-t.C:
		}
		s, err := workload.FetchMetrics(ctx, nil, base+"/metrics")
		if err != nil {
			continue // transient: the child may still be binding
		}
		steps := int(s.Sum("subdex_steps_total"))
		if steps >= want {
			return s, steps, nil
		}
	}
}

// child is one spawned server process.
type child struct{ cmd *exec.Cmd }

// kill SIGKILLs the child and reaps it. Idempotent enough for the soak's
// error paths: a second kill of a reaped process is a no-op error.
func (c *child) kill() {
	if c == nil || c.cmd == nil || c.cmd.Process == nil {
		return
	}
	_ = c.cmd.Process.Kill()
	_, _ = c.cmd.Process.Wait()
}

// startChild spawns this binary in child-serve mode on addr and waits
// for readiness. A restart passes its predecessor's address so retrying
// clients reconnect without reconfiguration.
func startChild(ctx context.Context, exe string, o options, addr, dir string) (string, *child, error) {
	args := []string{
		"-child-serve", "-child-addr", addr,
		"-generate", o.generate,
		"-scale", strconv.FormatFloat(o.scale, 'g', -1, 64),
		"-seed", strconv.FormatInt(o.seed, 10),
		"-session-dir", dir,
	}
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	base := "http://" + addr
	if err := waitReady(ctx, base); err != nil {
		c := &child{cmd: cmd}
		c.kill()
		return "", nil, fmt.Errorf("child server on %s never became ready: %w", addr, err)
	}
	return base, &child{cmd: cmd}, nil
}

// pickAddr reserves a loopback port by binding and releasing it, so a
// restarted child can listen on the address its predecessor used.
func pickAddr() (string, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", err
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr, nil
}

// waitReady polls /healthz until the child answers (a restarted child
// replays its WAL through the engine before serving, so this also covers
// recovery time).
func waitReady(ctx context.Context, base string) error {
	deadline := time.Now().Add(60 * time.Second)
	var lastErr error = errors.New("not attempted")
	for time.Now().Before(deadline) {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return err
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(50 * time.Millisecond)
	}
	return lastErr
}
