// The distributed-engine soak (-cluster-soak): sdeload re-executes
// itself as N scan-worker processes, runs the workload twice over the
// same dataset — phase A against a plain single-process server, phase B
// against a server whose engine scans are partitioned across the worker
// fleet by a cluster coordinator — and byte-compares every user's
// recorded walk across the phases. The proof obligations:
//
//   - Zero golden-trace divergence: distribution is a scheduling choice;
//     a coordinator-backed server must answer byte-identically to a
//     single process, step for step.
//   - Digest-identical direct scans: the headline TopMaps digest of the
//     whole-database group matches between a 1-thread local scan and the
//     distributed scan, on every bench iteration.
//   - Scan speedup: the distributed scan beats the single-thread scan
//     (the cluster's reason to exist), asserted as an SLO row.
//   - No partitions lost: the run was healthy, so anytime degradation
//     never triggered (subdex_cluster_partitions_lost_total == 0).
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"time"

	"subdex/internal/cluster"
	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/engine"
	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
	"subdex/internal/server"
	"subdex/internal/workload"
)

// clusterScanIters is how many timed TopMaps iterations each bench arm
// runs; the minimum wins (steady-state, not cold-cache, is the claim).
const clusterScanIters = 5

// clusterReport is the benchReport section the cluster soak adds.
type clusterReport struct {
	Nodes int `json:"nodes"`
	// CPUs is the host's core count — the speedup ceiling context: all
	// soak processes share one machine, so an N-worker cluster cannot
	// beat a local scan by more than the cores available (and cannot
	// beat it at all on one core).
	CPUs int `json:"cpus"`
	// GoldenSteps is the number of byte-compared workload records across
	// phase A and B; GoldenDivergences must be zero.
	GoldenSteps       int `json:"golden_steps"`
	GoldenDivergences int `json:"golden_divergences"`
	// DigestsIdentical is true when every bench iteration's distributed
	// TopMaps digest matched the single-thread scan's.
	DigestsIdentical bool `json:"digests_identical"`
	// SingleScanMs / ClusterScanMs are the best whole-database TopMaps
	// times (PruneNone, so the scan dominates); ScanSpeedup is their
	// ratio.
	SingleScanMs  float64 `json:"single_scan_ms"`
	ClusterScanMs float64 `json:"cluster_scan_ms"`
	ScanSpeedup   float64 `json:"scan_speedup"`
	// SingleNsPerStep / ClusterNsPerStep compare the two workload phases
	// end to end (HTTP session steps, not raw scans).
	SingleNsPerStep  float64 `json:"single_ns_per_step"`
	ClusterNsPerStep float64 `json:"cluster_ns_per_step"`
	// PartitionsLost comes from the coordinator registry after phase B.
	PartitionsLost float64 `json:"partitions_lost"`
	Retries        float64 `json:"cluster_retries"`
}

// runChildWorker is the hidden worker mode: build the dataset and serve
// cluster partition scans until killed.
func runChildWorker(o options) error {
	db, err := buildDataset(o)
	if err != nil {
		return err
	}
	ex, err := core.NewExplorer(db, core.Config{})
	if err != nil {
		return err
	}
	w := cluster.NewWorker(ex, cluster.WorkerOptions{Registry: obs.NewRegistry()})
	ln, err := net.Listen("tcp", o.childAddr)
	if err != nil {
		return err
	}
	fmt.Printf("sdeload worker: serving %s scans on %s (fingerprint %s)\n",
		db.Name, ln.Addr(), w.Fingerprint())
	return (&http.Server{Handler: w.Handler(), ReadHeaderTimeout: 5 * time.Second}).Serve(ln)
}

// startWorker spawns this binary in cluster-worker mode and waits for
// its health endpoint.
func startWorker(ctx context.Context, exe string, o options, addr string) (string, *child, error) {
	args := []string{
		"-cluster-worker", "-child-addr", addr,
		"-generate", o.generate,
		"-scale", strconv.FormatFloat(o.scale, 'g', -1, 64),
		"-seed", strconv.FormatInt(o.seed, 10),
	}
	cmd := exec.Command(exe, args...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return "", nil, err
	}
	base := "http://" + addr
	if err := waitReady(ctx, base); err != nil {
		c := &child{cmd: cmd}
		c.kill()
		return "", nil, fmt.Errorf("worker on %s never became ready: %w", addr, err)
	}
	return base, &child{cmd: cmd}, nil
}

// serveLocal hosts a server on a loopback listener for one phase.
func serveLocal(srv *server.Server) (string, func(), error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go func() { _ = hs.Serve(ln) }()
	stop := func() { hs.Close(); srv.Close() }
	return "http://" + ln.Addr().String(), stop, nil
}

// runClusterSoak orchestrates the two phases, the scan bench, and the
// assertions.
func runClusterSoak(ctx context.Context, o options) error {
	if o.target != "" {
		return usageError{"-cluster-soak self-hosts its servers and cannot apply to an external -target"}
	}
	if o.duration > 0 {
		return usageError{"-cluster-soak needs a fixed step budget for golden comparison; use -steps, not -duration"}
	}
	if o.faultEvery > 0 || o.stepTimeout > 0 {
		return usageError{"-cluster-soak requires deterministic steps; drop -fault-every and -step-timeout"}
	}
	if o.clusterNodes < 1 {
		return usageError{"-cluster-nodes must be at least 1"}
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	sessMode, err := parseSessionMode(o.sessionMode)
	if err != nil {
		return err
	}
	mix, err := workload.ParseMix(o.mix)
	if err != nil {
		return usageError{err.Error()}
	}
	steps := o.steps
	if steps <= 0 {
		steps = 8
	}
	cfg := workload.Config{
		Users: o.users, Seed: o.seed, StepsPerUser: steps,
		Ramp: o.ramp, Think: o.think, Mix: mix, AutoLen: o.autoLen,
		Mode: sessMode, Predicate: o.predicate,
		Record: true, ExemplarK: o.exemplars,
	}
	db, err := buildDataset(o)
	if err != nil {
		return err
	}

	// Worker fleet: one child process per node, each holding its own
	// frozen copy of the dataset.
	fmt.Printf("cluster-soak: starting %d scan workers\n", o.clusterNodes)
	workers := make([]string, o.clusterNodes)
	for i := range workers {
		addr, err := pickAddr()
		if err != nil {
			return err
		}
		base, c, err := startWorker(ctx, exe, o, addr)
		if err != nil {
			return err
		}
		defer c.kill()
		workers[i] = base
	}

	// Phase A: plain single-process server.
	fmt.Println("cluster-soak phase A: single-node baseline")
	srvA, err := server.New(db, core.Config{})
	if err != nil {
		return err
	}
	baseA, stopA, err := serveLocal(srvA)
	if err != nil {
		srvA.Close()
		return err
	}
	startA := time.Now()
	resA, err := workload.Run(ctx, cfg, workload.HTTPFactory(baseA, nil, sessMode, o.predicate))
	wallA := time.Since(startA)
	stopA()
	if err != nil {
		return err
	}
	if fails := resA.Failures(); len(fails) != 0 {
		return fmt.Errorf("baseline run failed: %d user(s), e.g. %q", len(fails), fails[0])
	}

	// Phase B: coordinator-backed server over the worker fleet, sharing
	// one registry so the final scrape carries subdex_cluster_*.
	fmt.Printf("cluster-soak phase B: coordinator over %d workers\n", o.clusterNodes)
	reg := obs.NewRegistry()
	coord, err := cluster.NewCoordinator(context.Background(), db, cluster.CoordinatorConfig{
		Workers:  workers,
		Registry: reg,
	})
	if err != nil {
		return err
	}
	defer coord.Close()
	srvB, err := server.NewWithOptions(db, core.Config{Scanner: coord}, server.Options{Registry: reg})
	if err != nil {
		return err
	}
	baseB, stopB, err := serveLocal(srvB)
	if err != nil {
		srvB.Close()
		return err
	}
	startB := time.Now()
	resB, err := workload.Run(ctx, cfg, workload.HTTPFactory(baseB, nil, sessMode, o.predicate))
	wallB := time.Since(startB)
	if err != nil {
		stopB()
		return err
	}
	scrapeB, err := workload.FetchMetrics(ctx, nil, baseB+"/metrics")
	stopB()
	if err != nil {
		return fmt.Errorf("phase B scrape: %w", err)
	}
	if fails := resB.Failures(); len(fails) != 0 {
		return fmt.Errorf("cluster run failed: %d user(s), e.g. %q", len(fails), fails[0])
	}

	// Direct scan bench: whole-database group, every candidate key,
	// PruneNone so the scan dominates. The single arm runs the local
	// sharded scan at Workers=1 (one process, one thread — the honest
	// "one node" baseline); the cluster arm fans the same scan across the
	// worker fleet.
	goldenSteps, divergences := compareGolden(resA, resB)
	cr, err := clusterScanBench(ctx, db, coord, o.clusterNodes)
	if err != nil {
		return err
	}
	cr.GoldenSteps, cr.GoldenDivergences = goldenSteps, len(divergences)
	if resA.Steps > 0 {
		cr.SingleNsPerStep = float64(wallA.Nanoseconds()) / float64(resA.Steps)
	}
	if resB.Steps > 0 {
		cr.ClusterNsPerStep = float64(wallB.Nanoseconds()) / float64(resB.Steps)
	}
	cr.PartitionsLost = scrapeB.Sum("subdex_cluster_partitions_lost_total")
	cr.Retries = scrapeB.Sum("subdex_cluster_retries_total")

	speedupMin := o.scanSpeedupMin
	if speedupMin < 0 {
		if runtime.NumCPU() > 1 {
			speedupMin = 1.0
		} else {
			// One core: the worker fleet time-slices the same CPU the
			// local scan uses, so a parallel speedup is physically
			// unattainable and the assertion degrades to bounded
			// distribution overhead.
			speedupMin = 0.5
			fmt.Println("cluster-soak: single-CPU host, asserting bounded overhead (speedup >= 0.5x) instead of parallel speedup")
		}
	}
	rep := report(o, "cluster-soak", resB, scrapeB)
	rep.Cluster = cr
	rep.SLOChecks = append(rep.SLOChecks, clusterChecks(cr, speedupMin)...)
	for _, c := range rep.SLOChecks {
		rep.SLOPass = rep.SLOPass && c.Pass
	}
	render(os.Stdout, resB, rep)
	if o.benchout != "" {
		if err := writeBench(o.benchout, rep); err != nil {
			return err
		}
	}
	if len(divergences) > 0 {
		max := len(divergences)
		if max > 8 {
			divergences = divergences[:8]
		}
		for _, d := range divergences {
			fmt.Fprintln(os.Stderr, "golden divergence:", d)
		}
		return fmt.Errorf("distributed run diverged from single-node baseline in %d place(s)", max)
	}
	if !rep.SLOPass {
		return fmt.Errorf("SLO breach: %s", describeBreaches(rep.SLOChecks))
	}
	fmt.Printf("cluster-soak pass: %d golden steps byte-identical across %d nodes, scan speedup %.2fx\n",
		goldenSteps, o.clusterNodes, cr.ScanSpeedup)
	return nil
}

// clusterScanBench times the whole-database TopMaps on both arms and
// checks digest identity on every iteration.
func clusterScanBench(ctx context.Context, db *dataset.DB, coord *cluster.Coordinator, nodes int) (*clusterReport, error) {
	qe, err := query.NewEngine(db)
	if err != nil {
		return nil, err
	}
	group, err := qe.Materialize(query.Description{})
	if err != nil {
		return nil, err
	}
	gLocal := engine.NewGenerator(db)
	keys := gLocal.Candidates(qe, query.Description{})
	gDist := engine.NewGenerator(db)
	gDist.Scanner = coord

	cfg := engine.DefaultConfig()
	cfg.Pruning = engine.PruneNone
	cfg.Workers = 1 // single arm: one thread, the one-node baseline

	cr := &clusterReport{Nodes: nodes, CPUs: runtime.NumCPU(), DigestsIdentical: true}
	single, clustered := time.Duration(0), time.Duration(0)
	for i := 0; i < clusterScanIters; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t0 := time.Now()
		resL, err := gLocal.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
		if err != nil {
			return nil, err
		}
		dL := time.Since(t0)
		t0 = time.Now()
		resD, err := gDist.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
		if err != nil {
			return nil, err
		}
		dD := time.Since(t0)
		if resD.Degraded {
			return nil, fmt.Errorf("bench iteration %d: distributed scan degraded", i)
		}
		if ratingmap.DigestMaps(resL.Maps) != ratingmap.DigestMaps(resD.Maps) {
			cr.DigestsIdentical = false
		}
		if i == 0 || dL < single {
			single = dL
		}
		if i == 0 || dD < clustered {
			clustered = dD
		}
	}
	cr.SingleScanMs = float64(single.Microseconds()) / 1000
	cr.ClusterScanMs = float64(clustered.Microseconds()) / 1000
	if clustered > 0 {
		cr.ScanSpeedup = float64(single) / float64(clustered)
	}
	return cr, nil
}

// clusterChecks renders the soak's objectives as SLO rows.
func clusterChecks(cr *clusterReport, speedupMin float64) []sloCheck {
	boolGot := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	return []sloCheck{
		{Name: "golden_divergences", Limit: 0, Got: float64(cr.GoldenDivergences),
			Pass: cr.GoldenDivergences == 0},
		{Name: "digests_identical", Limit: 1, Got: boolGot(cr.DigestsIdentical),
			Pass: cr.DigestsIdentical},
		{Name: "scan_speedup_min", Limit: speedupMin, Got: cr.ScanSpeedup,
			Pass: cr.ScanSpeedup >= speedupMin},
		{Name: "partitions_lost", Limit: 0, Got: cr.PartitionsLost,
			Pass: cr.PartitionsLost == 0},
	}
}
