package subdex_test

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), each delegating to the corresponding experiment in
// internal/experiments at a bench-friendly scale, plus micro-benchmarks of
// the load-bearing primitives (group materialization, top-map generation
// under each pruning scheme, GMM selection, recommendation building).
//
// Regenerate the actual paper artifacts with `go run ./cmd/sdebench -run
// all -scale 0.2`; these benches exist so `go test -bench=.` exercises
// every experiment code path and tracks their cost over time.

import (
	"io"
	"sync"
	"testing"

	"subdex"
	"subdex/internal/core"
	"subdex/internal/diversity"
	"subdex/internal/engine"
	"subdex/internal/experiments"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
	"subdex/internal/sentiment"
)

// benchParams is the shared experiment scale for table/figure benches:
// large enough to exercise the pruning machinery, small enough for -bench.
func benchParams() experiments.Params {
	return experiments.Params{Scale: 0.02, Seed: 1, Subjects: 3, Out: io.Discard}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := experiments.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	p := benchParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact -----------------------------------

func BenchmarkTable2DatasetGeneration(b *testing.B)       { runExperiment(b, "table2") }
func BenchmarkFig7GuidanceStudy(b *testing.B)             { runExperiment(b, "fig7") }
func BenchmarkFig8RecallVsSteps(b *testing.B)             { runExperiment(b, "fig8") }
func BenchmarkTable4RecommendationQuality(b *testing.B)   { runExperiment(b, "table4") }
func BenchmarkTable5UtilityDiversity(b *testing.B)        { runExperiment(b, "table5") }
func BenchmarkTable6UtilityVsDiversityPaths(b *testing.B) { runExperiment(b, "table6") }
func BenchmarkFig9DimensionWeights(b *testing.B)          { runExperiment(b, "fig9") }
func BenchmarkAblationUtilityCriteria(b *testing.B)       { runExperiment(b, "ablation") }
func BenchmarkFig10aDatabaseSize(b *testing.B)            { runExperiment(b, "fig10a") }
func BenchmarkFig10bNumAttributes(b *testing.B)           { runExperiment(b, "fig10b") }
func BenchmarkFig10cNumValues(b *testing.B)               { runExperiment(b, "fig10c") }
func BenchmarkFig11aNumRatingMaps(b *testing.B)           { runExperiment(b, "fig11a") }
func BenchmarkFig11bNumRecommendations(b *testing.B)      { runExperiment(b, "fig11b") }
func BenchmarkFig11cPruningDiversityFactor(b *testing.B)  { runExperiment(b, "fig11c") }

// --- Micro-benchmarks of the primitives ---------------------------------

var (
	benchDBOnce sync.Once
	benchDB     *subdex.DB
)

func sharedDB(b *testing.B) *subdex.DB {
	benchDBOnce.Do(func() {
		db, err := gen.Yelp(gen.Config{Seed: 1, Scale: 0.1})
		if err != nil {
			panic(err)
		}
		benchDB = db
	})
	return benchDB
}

func BenchmarkMaterializeRoot(b *testing.B) {
	db := sharedDB(b)
	qe, err := query.NewEngine(db)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qe.Materialize(query.Description{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaterializeSelective(b *testing.B) {
	db := sharedDB(b)
	qe, err := query.NewEngine(db)
	if err != nil {
		b.Fatal(err)
	}
	d := query.MustDescription(
		query.Selector{Side: query.ReviewerSide, Attr: "age_group", Value: "young"},
		query.Selector{Side: query.ItemSide, Attr: "price_range", Value: "$$"},
	)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qe.Materialize(d); err != nil {
			b.Fatal(err)
		}
	}
}

func benchTopMaps(b *testing.B, pruning engine.Pruning) {
	db := sharedDB(b)
	qe, _ := query.NewEngine(db)
	group, _ := qe.Materialize(query.Description{})
	g := engine.NewGenerator(db)
	cands := g.Candidates(qe, query.Description{})
	seen := ratingmap.NewSeenSet()
	cfg := engine.DefaultConfig()
	cfg.Pruning = pruning
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopMaps(group, cands, seen, 9, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTopMapsNoPruning(b *testing.B) { benchTopMaps(b, engine.PruneNone) }
func BenchmarkTopMapsCI(b *testing.B)        { benchTopMaps(b, engine.PruneCI) }
func BenchmarkTopMapsMAB(b *testing.B)       { benchTopMaps(b, engine.PruneMAB) }
func BenchmarkTopMapsBoth(b *testing.B)      { benchTopMaps(b, engine.PruneBoth) }

func BenchmarkRMSetSelection(b *testing.B) {
	db := sharedDB(b)
	ex, err := core.NewExplorer(db, core.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	seen := ratingmap.NewSeenSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.RMSet(query.Description{}, seen); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGMMSelection(b *testing.B) {
	db := sharedDB(b)
	qe, _ := query.NewEngine(db)
	group, _ := qe.Materialize(query.Description{})
	g := engine.NewGenerator(db)
	cands := g.Candidates(qe, query.Description{})
	res, err := g.TopMaps(group, cands, ratingmap.NewSeenSet(), 30, engine.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		diversity.SelectDiverse(res.Maps, 3, diversity.EMDWithAttribute)
	}
}

func BenchmarkRecommendationBuilding(b *testing.B) {
	db := sharedDB(b)
	cfg := core.DefaultConfig()
	cfg.Limits.MaxCandidates = 40
	cfg.RecSampleSize = 500
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		b.Fatal(err)
	}
	seen := ratingmap.NewSeenSet()
	res, err := ex.RMSet(query.Description{}, seen)
	if err != nil {
		b.Fatal(err)
	}
	rb := core.RecommendationBuilder{Ex: ex}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := rb.Recommend(query.Description{}, res.Maps, seen, 3); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCriteriaEstimate(b *testing.B) {
	db := sharedDB(b)
	qe, _ := query.NewEngine(db)
	group, _ := qe.Materialize(query.Description{})
	builder := ratingmap.Builder{DB: db}
	keys := engine.NewGenerator(db).Candidates(qe, query.Description{})
	acc := builder.NewAccumulator(query.Description{}, keys)
	acc.Update(group.Records)
	seen := ratingmap.NewSeenSet()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, k := range keys {
			if _, ok := acc.CriteriaEstimate(k, seen, 1); !ok {
				b.Fatal("estimate failed")
			}
		}
	}
}

func BenchmarkSentimentExtraction(b *testing.B) {
	corpus := gen.GenerateReviews(3, 200, []string{"food", "service", "ambiance"})
	ext := sentiment.Extractor{Keywords: sentiment.DefaultRestaurantKeywords()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, text := range corpus.Texts {
			ext.Scores(text, 5)
		}
	}
}
