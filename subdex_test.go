package subdex_test

import (
	"testing"

	"subdex"
	"subdex/internal/dataset"
)

// TestEndToEndGuidedSession drives the public API the way the quickstart
// does: generate, explore, recommend, follow, persist, reload.
func TestEndToEndGuidedSession(t *testing.T) {
	db, err := subdex.GenerateYelp(subdex.GenConfig{Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := subdex.NewExplorer(db, subdex.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sess, err := subdex.NewSession(ex, subdex.RecommendationPowered, subdex.Everything())
	if err != nil {
		t.Fatal(err)
	}
	step, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(step.Maps) != 3 {
		t.Fatalf("maps = %d, want 3 (Table 3 default)", len(step.Maps))
	}
	if len(step.Recommendations) == 0 {
		t.Fatal("guided mode must produce recommendations")
	}
	if err := sess.ApplyRecommendation(0); err != nil {
		t.Fatal(err)
	}
	step2, err := sess.Step()
	if err != nil {
		t.Fatal(err)
	}
	if step2.Desc.IsEmpty() {
		t.Fatal("the session did not move")
	}
	if out := ex.RenderMap(step2.Maps[0]); out == "" {
		t.Fatal("rendering failed")
	}
}

func TestFacadeParse(t *testing.T) {
	db, err := subdex.GenerateMovielens(subdex.GenConfig{Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := subdex.NewExplorer(db, subdex.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d, err := subdex.Parse(ex, "reviewers.gender = 'F' AND items.era = 'modern'")
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("parsed %d selectors", d.Len())
	}
	if _, err := subdex.Parse(ex, "garbage ==="); err == nil {
		t.Fatal("bad predicate must fail")
	}
}

func TestFacadeWhere(t *testing.T) {
	d, err := subdex.Where(subdex.Selector{Side: subdex.ReviewerSide, Attr: "gender", Value: "F"})
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatal("Where failed")
	}
	if !subdex.Everything().IsEmpty() {
		t.Fatal("Everything must be the universal selection")
	}
}

func TestFacadeSaveLoad(t *testing.T) {
	db, err := subdex.GenerateHotels(subdex.GenConfig{Scale: 0.02, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := subdex.SaveDir(db, dir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := subdex.LoadDir(dir, "hotels", map[string]dataset.Kind{"amenity": dataset.MultiValued})
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Ratings.Len() != db.Ratings.Len() {
		t.Fatal("reload changed record count")
	}
}

func TestFacadeInsightsAndPlanting(t *testing.T) {
	ins := subdex.YelpInsights()
	if len(ins) != 5 || len(subdex.MovielensInsights()) != 5 {
		t.Fatal("insight sets must have 5 entries each (paper §5.2)")
	}
	biases := subdex.InsightBiases(ins)
	if len(biases) != 5 {
		t.Fatal("biases arity")
	}
	db, err := subdex.GenerateMovielens(subdex.GenConfig{Scale: 0.05, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := subdex.PlantIrregularGroups(db, 9, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
}

func TestFullyAutomatedModePublic(t *testing.T) {
	db, err := subdex.GenerateYelp(subdex.GenConfig{Scale: 0.01, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	cfg := subdex.DefaultConfig()
	cfg.RecSampleSize = 300
	ex, err := subdex.NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := subdex.NewSession(ex, subdex.FullyAutomated, subdex.Everything())
	if err != nil {
		t.Fatal(err)
	}
	steps, err := sess.Auto(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) == 0 {
		t.Fatal("no steps executed")
	}
}
