module subdex

go 1.22
