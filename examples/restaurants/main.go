// Restaurants: Mary's three-step exploration from the paper's introduction
// (Figure 1), scripted against the synthetic Yelp-shaped database. Mary is a
// social scientist studying New York restaurants: she starts from all
// reviewers, drills into young adults, then into young female adults, using
// the advanced screen's SQL predicates.
package main

import (
	"fmt"
	"log"

	"subdex"
)

func main() {
	db, err := subdex.GenerateYelp(subdex.GenConfig{Scale: 0.05, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	ex, err := subdex.NewExplorer(db, subdex.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sess, err := subdex.NewSession(ex, subdex.UserDriven, subdex.Everything())
	if err != nil {
		log.Fatal(err)
	}

	show := func(title string) {
		step, err := sess.Step()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n===== %s =====\nselection: %s (%d records, %d reviewers, %d restaurants)\n",
			title, step.Desc, step.GroupSize, step.NumMatched.Reviewers, step.NumMatched.Items)
		for i, rm := range step.Maps {
			fmt.Printf("\n[map %d | utility %.3f | diversity of set %.3f]\n%s",
				i+1, step.Utilities[i], step.AvgDiversity, ex.RenderMap(rm))
		}
	}

	jump := func(predicate string) {
		d, err := subdex.Parse(ex, predicate)
		if err != nil {
			log.Fatal(err)
		}
		if err := sess.ApplyDescription(d); err != nil {
			log.Fatal(err)
		}
	}

	// Step I: overall view of all reviewers and restaurants.
	show("Step I — all reviewers")

	// Step II: drill into young reviewers (Mary is a young adult).
	jump("reviewers.age_group = 'young'")
	show("Step II — young reviewers")

	// Step III: drill further into young female reviewers.
	jump("reviewers.age_group = 'young' AND reviewers.gender = 'female'")
	show("Step III — young female reviewers")

	sum := sess.Summarize()
	fmt.Printf("\nexploration summary: %d steps, %d distinct attributes shown, total utility %.2f\n",
		sum.Steps, sum.DistinctAttributes, sum.TotalUtility)
}
