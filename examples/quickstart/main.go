// Quickstart: generate a small subjective database, open a guided
// exploration session, inspect the displayed rating maps, and follow a
// recommendation — the smallest end-to-end use of the subdex API.
package main

import (
	"fmt"
	"log"

	"subdex"
)

func main() {
	// A Yelp-shaped database at 2% of the paper's size: ~3k reviewers, 12
	// restaurants, ~4k rating records on 4 dimensions.
	db, err := subdex.GenerateYelp(subdex.GenConfig{Scale: 0.02, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	s := db.Stats()
	fmt.Printf("database: %d reviewers, %d items, %d ratings, %d rating dimensions\n",
		s.NumReviewers, s.NumItems, s.NumRatings, s.NumDimensions)

	ex, err := subdex.NewExplorer(db, subdex.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sess, err := subdex.NewSession(ex, subdex.RecommendationPowered, subdex.Everything())
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: the whole database, summarized as 3 useful + diverse rating maps.
	step, err := sess.Step()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstep 1 — selection %s (%d records)\n", step.Desc, step.GroupSize)
	for i, rm := range step.Maps {
		fmt.Printf("\nrating map %d (utility %.3f):\n%s", i+1, step.Utilities[i], ex.RenderMap(rm))
	}
	fmt.Println("\nrecommended next steps:")
	for i, rec := range step.Recommendations {
		fmt.Printf("  %d. (%.3f) %s\n", i+1, rec.Utility, rec.Op)
	}

	// Follow the top recommendation and look again.
	if err := sess.ApplyRecommendation(0); err != nil {
		log.Fatal(err)
	}
	step2, err := sess.Step()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstep 2 — selection %s (%d records), top map:\n%s",
		step2.Desc, step2.GroupSize, ex.RenderMap(step2.Maps[0]))
}
