// Reviews: the rating-extraction pipeline of §5.1. The paper derived Yelp's
// food/service/ambiance rating dimensions from free-text reviews: extract
// every phrase around a dimension keyword (window of 5 words), score it with
// VADER, and average per dimension. This example generates synthetic review
// text from known latent scores, runs the extraction, and reports how well
// the derived ratings track the latent truth.
package main

import (
	"fmt"

	"subdex/internal/gen"
	"subdex/internal/sentiment"
	"subdex/internal/stats"
)

func main() {
	dims := []string{"food", "service", "ambiance"}
	corpus := gen.GenerateReviews(2024, 200, dims)
	extractor := sentiment.Extractor{Keywords: sentiment.DefaultRestaurantKeywords()}

	fmt.Println("sample review and extraction:")
	fmt.Printf("  text: %q\n", corpus.Texts[0])
	scores, found := extractor.Scores(corpus.Texts[0], 5)
	for _, d := range dims {
		if found[d] {
			fmt.Printf("  %-8s latent %d -> extracted %d\n", d, corpus.Truth[0][d], scores[d])
		}
	}

	// Aggregate agreement across the corpus.
	exact, close, total := 0, 0, 0
	var latents, extracted []float64
	var confusion [6][6]int
	for i, text := range corpus.Texts {
		scores, found := extractor.Scores(text, 5)
		for _, d := range dims {
			if !found[d] {
				continue
			}
			latent, got := corpus.Truth[i][d], scores[d]
			confusion[latent][got]++
			total++
			latents = append(latents, float64(latent))
			extracted = append(extracted, float64(got))
			if got == latent {
				exact++
			}
			if got-latent <= 1 && latent-got <= 1 {
				close++
			}
		}
	}
	fmt.Printf("\nextraction quality over %d dimension scores:\n", total)
	fmt.Printf("  exact match:  %.1f%%\n", 100*float64(exact)/float64(total))
	fmt.Printf("  within ±1:    %.1f%%\n", 100*float64(close)/float64(total))
	fmt.Printf("  Spearman rho: %.3f\n", stats.SpearmanRho(latents, extracted))

	fmt.Println("\nconfusion (rows: latent, cols: extracted):")
	fmt.Print("     ")
	for c := 1; c <= 5; c++ {
		fmt.Printf("%5d", c)
	}
	fmt.Println()
	for r := 1; r <= 5; r++ {
		fmt.Printf("  %d: ", r)
		for c := 1; c <= 5; c++ {
			fmt.Printf("%5d", confusion[r][c])
		}
		fmt.Println()
	}
}
