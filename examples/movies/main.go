// Movies: Fully-Automated exploration of a MovieLens-shaped database with a
// planted data-quality problem. An irregular group — a random 2-3
// attribute-value reviewer/item group whose ratings were all forced to 1 —
// is hidden in the data (the paper's Scenario I); the Fully-Automated mode
// then explores on its own, and this example shows how the generated path
// homes in on the anomaly.
package main

import (
	"fmt"
	"log"

	"subdex"
)

func main() {
	db, err := subdex.GenerateMovielens(subdex.GenConfig{Scale: 0.2, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	groups, err := subdex.PlantIrregularGroups(db, 23, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("planted ground truth (what the explorer does not know):")
	for _, g := range groups {
		fmt.Println("  ", g)
	}

	ex, err := subdex.NewExplorer(db, subdex.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sess, err := subdex.NewSession(ex, subdex.FullyAutomated, subdex.Everything())
	if err != nil {
		log.Fatal(err)
	}

	steps, err := sess.Auto(7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nFully-Automated exploration path:")
	for i, st := range steps {
		fmt.Printf("\nstep %d: %s (%d records)\n", i+1, st.Desc, st.GroupSize)
		// Show the top map and flag all-ones bars — the irregular signature.
		rm := st.Maps[0]
		fmt.Print(ex.RenderMap(rm))
		for _, sg := range rm.Subgroups {
			if sg.N >= 3 && sg.AvgScore() <= 1.05 {
				fmt.Printf("  ^^ suspicious all-ones bar (%d records)\n", sg.N)
			}
		}
	}
}
