package baselines

import (
	"subdex/internal/dataset"
	"subdex/internal/query"
)

// Qagview reimplements the diverse top-aggregate summarizer of Wen et al.
// [58] as a next-action recommender: a k-cluster summary of the rating
// group where each cluster is a pattern (attribute-value conjunction over
// the joined table), the summary covers at least CoverageThreshold of the
// records, and any two chosen patterns differ in at least D
// attribute-values. Per the paper's setup (§5.1) every record has value 1,
// the coverage threshold is |g_R|/2, and D = 2.
type Qagview struct {
	// D is the minimum pairwise pattern distance (default 2).
	D int
	// CoverageFraction is the fraction of the group the summary must cover
	// (default 0.5, the paper's |g_R|/2).
	CoverageFraction float64
	// TopSingles bounds the candidate universe (default 40).
	TopSingles int
	// MaxPairs bounds pattern length (default 2).
	MaxPairs int
}

// Name identifies the baseline in experiment tables.
func (q *Qagview) Name() string { return "Qagview" }

func (q *Qagview) d() int {
	if q.D > 0 {
		return q.D
	}
	return 2
}

func (q *Qagview) coverage() float64 {
	if q.CoverageFraction > 0 {
		return q.CoverageFraction
	}
	return 0.5
}

func (q *Qagview) topSingles() int {
	if q.TopSingles > 0 {
		return q.TopSingles
	}
	return 40
}

func (q *Qagview) maxPairs() int {
	if q.MaxPairs > 0 {
		return q.MaxPairs
	}
	return 2
}

// patternDistance counts attribute-value pairs present in exactly one of
// the two patterns (symmetric difference), the D measure of [58].
func patternDistance(a, b []int32) int {
	inA := make(map[int32]bool, len(a))
	for _, x := range a {
		inA[x] = true
	}
	d := 0
	for _, x := range b {
		if inA[x] {
			delete(inA, x)
		} else {
			d++
		}
	}
	return d + len(inA)
}

// Recommend returns up to k drill-down operations forming a diverse summary
// of the current rating group: greedily add the pattern with maximal
// marginal coverage whose distance to every chosen pattern is at least D,
// stopping when k patterns are chosen or the coverage threshold is met and
// no candidate fits.
func (q *Qagview) Recommend(db *dataset.DB, cur query.Description, records []int32, k int) ([]query.Operation, error) {
	ci := buildCoverageIndex(db, cur, records)
	singles := ci.topPairs(q.topSingles())

	var candidates []rule
	for _, id := range singles {
		candidates = append(candidates, rule{pairIDs: []int32{id}, covered: ci.coveredBy([]int32{id})})
	}
	if q.maxPairs() >= 2 {
		for i := 0; i < len(singles); i++ {
			for j := i + 1; j < len(singles); j++ {
				a, b := ci.pairs[singles[i]], ci.pairs[singles[j]]
				if a.side == b.side && a.attr == b.attr {
					continue
				}
				ids := []int32{singles[i], singles[j]}
				cov := ci.coveredBy(ids)
				if len(cov) == 0 {
					continue
				}
				candidates = append(candidates, rule{pairIDs: ids, covered: cov})
			}
		}
	}

	needCover := int(q.coverage() * float64(len(records)))
	coveredSoFar := make([]bool, len(records))
	totalCovered := 0
	var chosen []rule
	var ops []query.Operation
	usedTargets := make(map[string]bool)

	for len(ops) < k {
		bestIdx, bestMarginal := -1, 0
		for i, c := range candidates {
			ok := true
			for _, ch := range chosen {
				if patternDistance(c.pairIDs, ch.pairIDs) < q.d() {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			marginal := 0
			for _, ri := range c.covered {
				if !coveredSoFar[ri] {
					marginal++
				}
			}
			if marginal > bestMarginal {
				bestIdx, bestMarginal = i, marginal
			}
		}
		if bestIdx < 0 {
			break
		}
		best := candidates[bestIdx]
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		op, ok := ci.operationFor(cur, best.pairIDs)
		if !ok || usedTargets[op.Target.Key()] {
			continue
		}
		usedTargets[op.Target.Key()] = true
		chosen = append(chosen, best)
		for _, ri := range best.covered {
			if !coveredSoFar[ri] {
				coveredSoFar[ri] = true
				totalCovered++
			}
		}
		ops = append(ops, op)
		if totalCovered >= needCover && len(ops) >= k {
			break
		}
	}
	return ops, nil
}
