package baselines

import (
	"testing"

	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/query"
)

func baseDB(t testing.TB) *dataset.DB {
	t.Helper()
	db, err := gen.Yelp(gen.Config{Seed: 4, Scale: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func allRecords(db *dataset.DB) []int32 {
	rs := make([]int32, db.Ratings.Len())
	for i := range rs {
		rs[i] = int32(i)
	}
	return rs
}

func TestCoverageIndex(t *testing.T) {
	db := baseDB(t)
	recs := allRecords(db)
	ci := buildCoverageIndex(db, query.Description{}, recs)
	if len(ci.pairs) == 0 {
		t.Fatal("no pairs discovered")
	}
	// The most-covering single pair must cover at most all records and at
	// least |records| / (max cardinality) records.
	top := ci.topPairs(1)
	if ci.count[top[0]] <= 0 || ci.count[top[0]] > len(recs) {
		t.Fatalf("top pair count %d out of range", ci.count[top[0]])
	}
	// Bound attributes are excluded from the index.
	bound := query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "male"})
	ci2 := buildCoverageIndex(db, bound, recs)
	for _, p := range ci2.pairs {
		if p.side == query.ReviewerSide && p.attr == "gender" {
			t.Fatal("bound attribute leaked into candidate pairs")
		}
	}
}

func TestCoverageConjunction(t *testing.T) {
	db := baseDB(t)
	recs := allRecords(db)
	ci := buildCoverageIndex(db, query.Description{}, recs)
	singles := ci.topPairs(5)
	if len(singles) < 2 {
		t.Skip("not enough pairs")
	}
	a, b := singles[0], singles[1]
	both := ci.coveredBy([]int32{a, b})
	onlyA := ci.coveredBy([]int32{a})
	if len(both) > len(onlyA) {
		t.Fatal("conjunction cannot cover more than a conjunct")
	}
}

func TestSDDOnlyDrillsDown(t *testing.T) {
	db := baseDB(t)
	sdd := &SmartDrillDown{}
	cur := query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "female"})
	qe, err := query.NewEngine(db)
	if err != nil {
		t.Fatal(err)
	}
	g, err := qe.Materialize(cur)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := sdd.Recommend(db, cur, g.Records, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("SDD returned no rules")
	}
	for _, op := range ops {
		if op.Kind != query.Filter {
			t.Errorf("SDD produced a %v operation; it can only drill down", op.Kind)
		}
		// Target must be a strict superset of cur's selectors.
		for _, s := range cur.Selectors() {
			if !op.Target.Has(s) {
				t.Errorf("SDD dropped selector %s", s)
			}
		}
		if op.Target.Len() <= cur.Len() {
			t.Error("SDD target must add selectors")
		}
	}
}

func TestSDDRulesAreDeduplicated(t *testing.T) {
	db := baseDB(t)
	sdd := &SmartDrillDown{}
	ops, err := sdd.Recommend(db, query.Description{}, allRecords(db), 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, op := range ops {
		k := op.Target.Key()
		if seen[k] {
			t.Fatalf("duplicate rule %s", op.Target)
		}
		seen[k] = true
	}
}

func TestSDDMarginalCoverage(t *testing.T) {
	// The greedy must not pick two rules covering the same records when a
	// disjoint alternative exists: verified indirectly by checking the
	// union coverage strictly grows across the rule list.
	db := baseDB(t)
	sdd := &SmartDrillDown{}
	recs := allRecords(db)
	ops, err := sdd.Recommend(db, query.Description{}, recs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) < 2 {
		t.Skip("not enough rules")
	}
	qe, _ := query.NewEngine(db)
	covered := map[int32]bool{}
	prev := 0
	for _, op := range ops {
		g, err := qe.Materialize(op.Target)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range g.Records {
			covered[r] = true
		}
		if len(covered) <= prev {
			t.Fatalf("rule %s added no marginal coverage", op)
		}
		prev = len(covered)
	}
}

func TestQagviewDiversityConstraint(t *testing.T) {
	db := baseDB(t)
	qv := &Qagview{}
	ops, err := qv.Recommend(db, query.Description{}, allRecords(db), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("Qagview returned nothing")
	}
	// All clusters must be drill-downs and pairwise differ in ≥ D
	// attribute-values.
	for i := range ops {
		if ops[i].Kind != query.Filter {
			t.Errorf("Qagview produced %v; it can only drill down", ops[i].Kind)
		}
		for j := i + 1; j < len(ops); j++ {
			if d := ops[i].Target.EditDistance(ops[j].Target); d < 2 {
				t.Errorf("clusters %d and %d differ in %d pairs, want ≥ 2", i, j, d)
			}
		}
	}
}

func TestQagviewCoverage(t *testing.T) {
	db := baseDB(t)
	qv := &Qagview{}
	recs := allRecords(db)
	ops, err := qv.Recommend(db, query.Description{}, recs, 6)
	if err != nil {
		t.Fatal(err)
	}
	qe, _ := query.NewEngine(db)
	covered := map[int32]bool{}
	for _, op := range ops {
		g, err := qe.Materialize(op.Target)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range g.Records {
			covered[r] = true
		}
	}
	// With 6 clusters of top-covering patterns, coverage should reach the
	// |g_R|/2 threshold on this data.
	if len(covered) < len(recs)/2 {
		t.Errorf("summary covers %d of %d records, want ≥ half", len(covered), len(recs))
	}
}

func TestPatternDistance(t *testing.T) {
	if d := patternDistance([]int32{1, 2}, []int32{1, 2}); d != 0 {
		t.Errorf("identical patterns distance = %d", d)
	}
	if d := patternDistance([]int32{1, 2}, []int32{1, 3}); d != 2 {
		t.Errorf("one swap distance = %d, want 2", d)
	}
	if d := patternDistance([]int32{1}, []int32{1, 2}); d != 1 {
		t.Errorf("superset distance = %d, want 1", d)
	}
	if d := patternDistance(nil, []int32{5}); d != 1 {
		t.Errorf("empty vs single = %d, want 1", d)
	}
}

func TestEmptyGroupBehaviour(t *testing.T) {
	db := baseDB(t)
	sdd := &SmartDrillDown{}
	qv := &Qagview{}
	if ops, err := sdd.Recommend(db, query.Description{}, nil, 3); err != nil || len(ops) != 0 {
		t.Errorf("SDD on empty group: ops=%v err=%v", ops, err)
	}
	if ops, err := qv.Recommend(db, query.Description{}, nil, 3); err != nil || len(ops) != 0 {
		t.Errorf("Qagview on empty group: ops=%v err=%v", ops, err)
	}
}

func TestSortRulesBySpecificity(t *testing.T) {
	rules := []rule{
		{pairIDs: []int32{1}, covered: []int32{1, 2, 3}},
		{pairIDs: []int32{1, 2}, covered: []int32{1}},
		{pairIDs: []int32{3}, covered: []int32{1, 2}},
	}
	sortRulesBySpecificity(rules)
	if len(rules[0].pairIDs) != 2 {
		t.Error("longest rule must sort first")
	}
	if len(rules[1].covered) != 3 {
		t.Error("ties break by coverage")
	}
}
