package baselines

import (
	"sort"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// SmartDrillDown reimplements the interesting-rule-list operator of
// Joglekar et al. [35] as a next-action recommender. A rule is a
// conjunction of attribute-value pairs over the joined table; a k-rule list
// is interesting when (1) rules cover a large fraction of the group, (2)
// rules are specific (bind several attributes), and (3) rules are diverse
// (marginal coverage: records already covered by chosen rules contribute
// nothing). The greedy score of a candidate rule given the chosen list is
//
//	score(r | chosen) = marginalCoverage(r) × (W + |r|)
//
// with W the weight balancing coverage against specificity ([35] uses a
// per-non-⋆ attribute weight).
type SmartDrillDown struct {
	// W balances coverage vs. specificity; 0 selects the default 1.
	W float64
	// MaxPairs bounds rule length (default 2, matching the paper's ≤2-pair
	// candidate operations so the comparison is fair).
	MaxPairs int
	// TopSingles bounds the candidate universe to the most-covering single
	// pairs before composing longer rules (default 40).
	TopSingles int
}

// Name identifies the baseline in experiment tables.
func (s *SmartDrillDown) Name() string { return "SDD" }

func (s *SmartDrillDown) w() float64 {
	if s.W > 0 {
		return s.W
	}
	return 1
}

func (s *SmartDrillDown) maxPairs() int {
	if s.MaxPairs > 0 {
		return s.MaxPairs
	}
	return 2
}

func (s *SmartDrillDown) topSingles() int {
	if s.TopSingles > 0 {
		return s.TopSingles
	}
	return 40
}

// Recommend returns k drill-down operations: the greedy interesting rule
// list of the current rating group.
func (s *SmartDrillDown) Recommend(db *dataset.DB, cur query.Description, records []int32, k int) ([]query.Operation, error) {
	ci := buildCoverageIndex(db, cur, records)
	singles := ci.topPairs(s.topSingles())

	// Candidate rules: single pairs and pairs of pairs (bounded).
	var candidates []rule
	for _, id := range singles {
		candidates = append(candidates, rule{pairIDs: []int32{id}, covered: ci.coveredBy([]int32{id})})
	}
	if s.maxPairs() >= 2 {
		for i := 0; i < len(singles); i++ {
			for j := i + 1; j < len(singles); j++ {
				a, b := ci.pairs[singles[i]], ci.pairs[singles[j]]
				if a.side == b.side && a.attr == b.attr {
					continue // two values of one attribute never co-occur usefully
				}
				ids := []int32{singles[i], singles[j]}
				cov := ci.coveredBy(ids)
				if len(cov) == 0 {
					continue
				}
				candidates = append(candidates, rule{pairIDs: ids, covered: cov})
			}
		}
	}

	coveredSoFar := make([]bool, len(records))
	var ops []query.Operation
	usedTargets := make(map[string]bool)
	for len(ops) < k && len(candidates) > 0 {
		bestIdx, bestScore := -1, 0.0
		for i, c := range candidates {
			marginal := 0
			for _, ri := range c.covered {
				if !coveredSoFar[ri] {
					marginal++
				}
			}
			score := float64(marginal) * (s.w() + float64(len(c.pairIDs)))
			if score > bestScore {
				bestIdx, bestScore = i, score
			}
		}
		if bestIdx < 0 {
			break
		}
		best := candidates[bestIdx]
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		op, ok := ci.operationFor(cur, best.pairIDs)
		if !ok || usedTargets[op.Target.Key()] {
			continue
		}
		usedTargets[op.Target.Key()] = true
		for _, ri := range best.covered {
			coveredSoFar[ri] = true
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// sortRulesBySpecificity orders rules longest-first then by coverage; used
// by tests to assert the specificity preference.
func sortRulesBySpecificity(rules []rule) {
	sort.SliceStable(rules, func(i, j int) bool {
		if len(rules[i].pairIDs) != len(rules[j].pairIDs) {
			return len(rules[i].pairIDs) > len(rules[j].pairIDs)
		}
		return len(rules[i].covered) > len(rules[j].covered)
	})
}
