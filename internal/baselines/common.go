// Package baselines implements the two state-of-the-art next-action
// recommenders SubDEx is compared against in Table 4 (§5.1):
//
//   - Smart Drill-Down (Joglekar, Garcia-Molina & Parameswaran [35]): an
//     interactive operator returning a k-size rule list of "interesting"
//     parts of a table, scored by coverage, specificity, and diversity.
//   - Qagview (Wen, Zhu, Roy & Yang [58]): a k-cluster diverse summary of a
//     query result, covering at least a threshold of the records with
//     clusters that differ pairwise in at least D attribute-values.
//
// Following the paper's setup, the reviewer, item and rating tables are
// joined, so every rule/cluster is a simultaneous selection over reviewer
// and item attributes — and, crucially, both baselines can only produce
// drill-down (subset) operations, never roll-ups, which is what Table 4
// exposes.
package baselines

import (
	"sort"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// pair is one (side, attribute, value) cell of the joined table.
type pair struct {
	side  query.Side
	attr  string
	value dataset.ValueID
}

// coverageIndex counts, over the records of a rating group, how many
// records carry each attribute-value pair of the joined table, and keeps
// per-record pair lists for marginal-coverage computation.
type coverageIndex struct {
	db      *dataset.DB
	records []int32
	// pairsOf[i] lists the pair ids of record i (indexes into pairs).
	pairsOf [][]int32
	pairs   []pair
	count   []int
	pairID  map[pair]int32
}

// buildCoverageIndex scans the group once, materializing the pair universe.
// Attributes already bound by the current description are excluded: both
// baselines extend the current selection.
func buildCoverageIndex(db *dataset.DB, cur query.Description, records []int32) *coverageIndex {
	ci := &coverageIndex{db: db, records: records, pairID: make(map[pair]int32)}
	ci.pairsOf = make([][]int32, len(records))

	add := func(rec int, p pair) {
		id, ok := ci.pairID[p]
		if !ok {
			id = int32(len(ci.pairs))
			ci.pairID[p] = id
			ci.pairs = append(ci.pairs, p)
			ci.count = append(ci.count, 0)
		}
		ci.count[id]++
		ci.pairsOf[rec] = append(ci.pairsOf[rec], id)
	}

	scan := func(side query.Side, t *dataset.EntityTable, rowOf []int32) {
		for a := 0; a < t.Schema.Len(); a++ {
			name := t.Schema.At(a).Name
			if cur.BindsAttr(side, name) {
				continue
			}
			kind := t.Schema.At(a).Kind
			for ri, r := range records {
				row := int(rowOf[r])
				switch kind {
				case dataset.Atomic:
					if v := t.AtomicValue(a, row); v != dataset.MissingValue {
						add(ri, pair{side, name, v})
					}
				case dataset.MultiValued:
					for _, v := range t.MultiValues(a, row) {
						add(ri, pair{side, name, v})
					}
				}
			}
		}
	}
	scan(query.ReviewerSide, db.Reviewers, db.Ratings.Reviewer)
	scan(query.ItemSide, db.Items, db.Ratings.Item)
	return ci
}

// topPairs returns the n most-covering pair ids.
func (ci *coverageIndex) topPairs(n int) []int32 {
	ids := make([]int32, len(ci.pairs))
	for i := range ids {
		ids[i] = int32(i)
	}
	sort.Slice(ids, func(a, b int) bool { return ci.count[ids[a]] > ci.count[ids[b]] })
	if n > 0 && len(ids) > n {
		ids = ids[:n]
	}
	return ids
}

// valueLabel resolves a pair's value string.
func (ci *coverageIndex) valueLabel(p pair) string {
	var t *dataset.EntityTable
	if p.side == query.ReviewerSide {
		t = ci.db.Reviewers
	} else {
		t = ci.db.Items
	}
	return t.DictByName(p.attr).Value(p.value)
}

// selector converts a pair into a query selector.
func (ci *coverageIndex) selector(p pair) query.Selector {
	return query.Selector{Side: p.side, Attr: p.attr, Value: ci.valueLabel(p)}
}

// rule is a conjunction of pairs with its covered record set.
type rule struct {
	pairIDs []int32
	covered []int32 // record indexes (into ci.records)
}

// coveredBy computes the record indexes covered by a pair conjunction.
func (ci *coverageIndex) coveredBy(pairIDs []int32) []int32 {
	want := make(map[int32]bool, len(pairIDs))
	for _, id := range pairIDs {
		want[id] = true
	}
	var out []int32
	for ri, ps := range ci.pairsOf {
		n := 0
		for _, id := range ps {
			if want[id] {
				n++
			}
		}
		if n == len(pairIDs) {
			out = append(out, int32(ri))
		}
	}
	return out
}

// operationFor converts a rule into a drill-down operation on cur. Rules
// whose pairs collide with cur's bound attributes return ok=false.
func (ci *coverageIndex) operationFor(cur query.Description, pairIDs []int32) (query.Operation, bool) {
	target := cur
	var added *query.Selector
	for _, id := range pairIDs {
		sel := ci.selector(ci.pairs[id])
		t, err := target.With(sel)
		if err != nil {
			return query.Operation{}, false
		}
		target = t
		if added == nil {
			s := sel
			added = &s
		}
	}
	return query.Operation{Kind: query.Filter, Target: target, Added: added}, true
}
