package stats

import (
	"math"
	"math/rand"
	"testing"
)

// randDist draws a random valid distribution of the given support size;
// occasionally degenerate (a point mass) to exercise boundary shapes.
func randDist(rng *rand.Rand, n int) Distribution {
	counts := make([]int, n)
	if rng.Intn(8) == 0 {
		counts[rng.Intn(n)] = 1 + rng.Intn(50)
	} else {
		for i := range counts {
			counts[i] = rng.Intn(20)
		}
		counts[rng.Intn(n)]++ // never all-zero
	}
	return NewDistributionFromCounts(counts)
}

// TestPropertyCIShrinksMonotonically: the Hoeffding-Serfling half-width
// must shrink monotonically as the scan consumes more of the population,
// and collapse exactly to 0 when the sample exhausts it — the property
// that makes late-phase pruning decisive.
func TestPropertyCIShrinksMonotonically(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(100_000)
		delta := []float64{0.01, 0.05, 0.1, 0.25}[rng.Intn(4)]
		prev := math.Inf(1)
		// Walk m over an increasing random sample of [1, n].
		m := 0
		for m < n {
			m += 1 + rng.Intn(n/10+1)
			if m > n {
				m = n
			}
			r := HoeffdingSerflingRadius(m, n, delta)
			if r < 0 || math.IsNaN(r) {
				t.Fatalf("radius(m=%d,n=%d,δ=%g) = %g", m, n, delta, r)
			}
			if r > prev+1e-12 {
				t.Fatalf("radius grew: m=%d n=%d δ=%g: %g > %g", m, n, delta, r, prev)
			}
			prev = r
		}
		if r := HoeffdingSerflingRadius(n, n, delta); r != 0 {
			t.Fatalf("exhausted population must have radius 0, got %g", r)
		}
		// Tighter confidence (larger delta) must not widen the interval.
		m = 1 + rng.Intn(n)
		if HoeffdingSerflingRadius(m, n, 0.25) > HoeffdingSerflingRadius(m, n, 0.01)+1e-12 {
			t.Fatalf("radius not monotone in delta at m=%d n=%d", m, n)
		}
	}
}

// TestPropertyDistanceMetricAxioms: TVD and EMD on random histograms must
// satisfy the metric axioms — non-negativity, identity of indiscernibles,
// symmetry, and the triangle inequality — plus their tight range bounds
// (TVD and normalized EMD in [0,1]; raw EMD at most n−1 on n buckets).
func TestPropertyDistanceMetricAxioms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type metric struct {
		name string
		fn   func(p, q Distribution) float64
		max  func(n int) float64 // tight upper bound on an n-bucket domain
	}
	metrics := []metric{
		{"TVD", MustTotalVariation, func(int) float64 { return 1 }},
		{"EMD", MustEarthMovers, func(n int) float64 { return float64(n - 1) }},
		{"nEMD", func(p, q Distribution) float64 {
			d, err := NormalizedEarthMovers(p, q)
			if err != nil {
				panic(err)
			}
			return d
		}, func(int) float64 { return 1 }},
	}
	const eps = 1e-12
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(9)
		p, q, r := randDist(rng, n), randDist(rng, n), randDist(rng, n)
		for _, m := range metrics {
			dpq, dqp := m.fn(p, q), m.fn(q, p)
			if dpq < 0 || dpq > m.max(n)+eps || math.IsNaN(dpq) {
				t.Fatalf("%s out of range: %g", m.name, dpq)
			}
			if math.Abs(dpq-dqp) > eps {
				t.Fatalf("%s asymmetric: d(p,q)=%g d(q,p)=%g", m.name, dpq, dqp)
			}
			if d := m.fn(p, p); d > eps {
				t.Fatalf("%s identity violated: d(p,p)=%g", m.name, d)
			}
			if dpq+m.fn(q, r)+eps < m.fn(p, r) {
				t.Fatalf("%s triangle inequality violated: d(p,r)=%g > d(p,q)+d(q,r)=%g",
					m.name, m.fn(p, r), dpq+m.fn(q, r))
			}
		}
		// KL: non-negative, zero iff p == q (checked on identical inputs).
		kl, err := KLDivergence(p, p)
		if err != nil || math.Abs(kl) > eps {
			t.Fatalf("KL(p,p) = %g, %v", kl, err)
		}
		if kl, err := KLDivergence(p, q); err == nil && kl < -eps {
			t.Fatalf("KL negative: %g", kl)
		}
	}
}

// TestPropertyRunningMergeEqualsAddN: the Running moments used by phase
// merging must satisfy Merge(a, b) == AddN over the concatenation — the
// stats-layer analog of the accumulator-merge identity.
func TestPropertyRunningMergeEqualsAddN(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 300; trial++ {
		xs := make([]float64, 1+rng.Intn(200))
		for i := range xs {
			xs[i] = rng.Float64() * 10
		}
		cut := rng.Intn(len(xs) + 1)
		var whole, a, b Running
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:cut] {
			a.Add(x)
		}
		for _, x := range xs[cut:] {
			b.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			t.Fatalf("N %d vs %d", a.N(), whole.N())
		}
		if math.Abs(a.Mean()-whole.Mean()) > 1e-9 || math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
			t.Fatalf("merge drifted: mean %g vs %g, var %g vs %g",
				a.Mean(), whole.Mean(), a.Variance(), whole.Variance())
		}
	}
}
