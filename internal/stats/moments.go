package stats

import (
	"math"
	"sort"
)

// Running accumulates streaming mean and variance using Welford's algorithm.
// It backs the engine's phase-based partial results: each phase feeds another
// fraction of the rating group in, and the current mean utility and its
// confidence interval are read off without re-scanning earlier fractions.
type Running struct {
	n    int
	mean float64
	m2   float64
}

// Add feeds one observation.
func (r *Running) Add(x float64) {
	r.n++
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// AddN feeds the same observation n times (used when a batch shares a value).
func (r *Running) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		r.Add(x)
	}
}

// Merge folds another accumulator into r (parallel reduction), using the
// Chan et al. pairwise update.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	r.mean += delta * float64(o.n) / float64(n)
	r.m2 += o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	r.n = n
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the running mean (0 when empty).
func (r *Running) Mean() float64 { return r.mean }

// Variance returns the population variance (0 when fewer than 2 samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// SampleVariance returns the unbiased sample variance (0 when n < 2).
func (r *Running) SampleVariance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs; it returns (0,0) for empty
// input.
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// MinMaxNormalize rescales xs in place into [0,1]. Constant inputs map to a
// vector of 0.5, matching the normalization convention of Somech et al. [51]
// used by the paper for putting interestingness criteria on a common scale.
func MinMaxNormalize(xs []float64) {
	lo, hi := MinMax(xs)
	if hi-lo < 1e-12 {
		for i := range xs {
			xs[i] = 0.5
		}
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - lo) / (hi - lo)
	}
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// SpearmanRho computes Spearman's rank correlation between two paired
// samples, with average ranks for ties. It returns 0 for degenerate inputs
// (fewer than 2 pairs or zero rank variance). The sentiment pipeline uses
// it to quantify how faithfully extracted ratings track latent scores.
func SpearmanRho(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0
	}
	rx := ranks(xs)
	ry := ranks(ys)
	mx, my := Mean(rx), Mean(ry)
	var num, dx, dy float64
	for i := range rx {
		a := rx[i] - mx
		b := ry[i] - my
		num += a * b
		dx += a * a
		dy += b * b
	}
	if dx == 0 || dy == 0 {
		return 0
	}
	return num / math.Sqrt(dx*dy)
}

// ranks assigns average ranks (1-based) with tie handling.
func ranks(xs []float64) []float64 {
	type iv struct {
		v float64
		i int
	}
	sorted := make([]iv, len(xs))
	for i, v := range xs {
		sorted[i] = iv{v, i}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].v < sorted[b].v })
	out := make([]float64, len(xs))
	for i := 0; i < len(sorted); {
		j := i
		for j+1 < len(sorted) && sorted[j+1].v == sorted[i].v {
			j++
		}
		avgRank := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[sorted[k].i] = avgRank
		}
		i = j + 1
	}
	return out
}
