// Package stats provides the statistical substrate of SubDEx: probability
// distributions over discrete rating scales, distance measures between them
// (total variation, Kullback-Leibler, Earth Mover's), streaming moments,
// worst-case confidence intervals derived from the Hoeffding-Serfling
// inequality for sampling without replacement, and a one-way ANOVA used by
// the simulated user study.
package stats

import (
	"fmt"
	"math"
)

// Distribution is a probability distribution over an ordered discrete domain,
// typically a rating scale {1..m} where index i holds the probability of
// rating value i+1. A Distribution is valid when its entries are non-negative
// and sum to 1 (within a small tolerance); use Normalize to construct one
// from raw counts.
type Distribution []float64

// NewDistributionFromCounts converts a histogram of counts into a probability
// distribution. A zero histogram yields the uniform distribution, which is
// the convention used throughout the engine for empty subgroups so that
// distance computations remain well-defined.
func NewDistributionFromCounts(counts []int) Distribution {
	d := make(Distribution, len(counts))
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		for i := range d {
			d[i] = 1 / float64(len(d))
		}
		return d
	}
	for i, c := range counts {
		d[i] = float64(c) / float64(total)
	}
	return d
}

// Normalize scales the distribution in place so it sums to one. A zero vector
// becomes uniform.
func (d Distribution) Normalize() {
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum == 0 {
		for i := range d {
			d[i] = 1 / float64(len(d))
		}
		return
	}
	for i := range d {
		d[i] /= sum
	}
}

// IsValid reports whether d is a proper probability distribution: entries in
// [0,1] summing to 1 within tolerance.
func (d Distribution) IsValid() bool {
	if len(d) == 0 {
		return false
	}
	sum := 0.0
	for _, v := range d {
		if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
			return false
		}
		sum += v
	}
	return math.Abs(sum-1) < 1e-6
}

// Mean returns the expected rating value assuming the domain is {1..len(d)}.
func (d Distribution) Mean() float64 {
	mean := 0.0
	for i, p := range d {
		mean += float64(i+1) * p
	}
	return mean
}

// Variance returns the variance of the rating value under d, with the domain
// {1..len(d)}.
func (d Distribution) Variance() float64 {
	mean := d.Mean()
	v := 0.0
	for i, p := range d {
		diff := float64(i+1) - mean
		v += p * diff * diff
	}
	return v
}

// StdDev returns the standard deviation of the rating value under d.
func (d Distribution) StdDev() float64 { return math.Sqrt(d.Variance()) }

// Clone returns an independent copy of d.
func (d Distribution) Clone() Distribution {
	c := make(Distribution, len(d))
	copy(c, d)
	return c
}

// TotalVariation returns the total variation distance between two
// distributions over the same domain: ½ Σ |p_i − q_i|, in [0,1]. This is the
// peculiarity measure of the paper (§4.1).
func TotalVariation(p, q Distribution) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: total variation of mismatched domains %d vs %d", len(p), len(q))
	}
	sum := 0.0
	for i := range p {
		sum += math.Abs(p[i] - q[i])
	}
	return sum / 2, nil
}

// MustTotalVariation is TotalVariation for callers that have already
// established domain agreement; it panics on mismatch.
func MustTotalVariation(p, q Distribution) float64 {
	d, err := TotalVariation(p, q)
	if err != nil {
		panic(err)
	}
	return d
}

// KLDivergence returns the Kullback-Leibler divergence D(p‖q) in nats, the
// alternative peculiarity measure mentioned in §4.1. Terms where p_i = 0
// contribute zero; terms where p_i > 0 and q_i = 0 are smoothed with epsilon
// so exploratory comparisons of sparse histograms never return +Inf.
func KLDivergence(p, q Distribution) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: KL divergence of mismatched domains %d vs %d", len(p), len(q))
	}
	const eps = 1e-10
	sum := 0.0
	for i := range p {
		if p[i] == 0 {
			continue
		}
		qi := q[i]
		if qi < eps {
			qi = eps
		}
		sum += p[i] * math.Log(p[i]/qi)
	}
	if sum < 0 { // guard tiny negative rounding
		sum = 0
	}
	return sum, nil
}

// EarthMovers returns the Earth Mover's Distance between two distributions
// over the same ordered 1-D domain with unit ground distance between adjacent
// rating values. On the line, EMD has the closed form Σ |CDF_p(i) − CDF_q(i)|.
// The paper adopts EMD as the rating-map distance (§3.2.4) because it
// respects the ordering of the rating scale, unlike TVD.
func EarthMovers(p, q Distribution) (float64, error) {
	if len(p) != len(q) {
		return 0, fmt.Errorf("stats: EMD of mismatched domains %d vs %d", len(p), len(q))
	}
	cum := 0.0
	total := 0.0
	for i := range p {
		cum += p[i] - q[i]
		total += math.Abs(cum)
	}
	return total, nil
}

// MustEarthMovers is EarthMovers with a panic on domain mismatch.
func MustEarthMovers(p, q Distribution) float64 {
	d, err := EarthMovers(p, q)
	if err != nil {
		panic(err)
	}
	return d
}

// NormalizedEarthMovers rescales EMD into [0,1] by dividing by the maximum
// possible EMD on the domain (all mass at opposite endpoints = len-1).
func NormalizedEarthMovers(p, q Distribution) (float64, error) {
	d, err := EarthMovers(p, q)
	if err != nil {
		return 0, err
	}
	if len(p) <= 1 {
		return 0, nil
	}
	return d / float64(len(p)-1), nil
}

// OutlierScore is the Outlier Function peculiarity alternative referenced in
// §4.1: the largest absolute z-score of any bucket of p relative to the
// bucket-wise mean and standard deviation of the reference distribution set.
func OutlierScore(p Distribution, refs []Distribution) float64 {
	if len(refs) == 0 || len(p) == 0 {
		return 0
	}
	maxZ := 0.0
	for i := range p {
		mean, sd := 0.0, 0.0
		n := 0
		for _, r := range refs {
			if i < len(r) {
				mean += r[i]
				n++
			}
		}
		if n == 0 {
			continue
		}
		mean /= float64(n)
		for _, r := range refs {
			if i < len(r) {
				d := r[i] - mean
				sd += d * d
			}
		}
		sd = math.Sqrt(sd / float64(n))
		if sd < 1e-9 {
			sd = 1e-9
		}
		if z := math.Abs(p[i]-mean) / sd; z > maxZ {
			maxZ = z
		}
	}
	return maxZ
}
