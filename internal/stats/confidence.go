package stats

import (
	"fmt"
	"math"
)

// Interval is a closed confidence interval [Lo, Hi] around an estimate. The
// pruning machinery of Algorithm 3 manipulates one Interval per
// interestingness criterion and collapses them into a single interval per
// rating map.
type Interval struct {
	Lo, Hi float64
}

// Width returns Hi − Lo.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// Contains reports whether x lies inside the interval.
func (iv Interval) Contains(x float64) bool { return x >= iv.Lo && x <= iv.Hi }

// Below reports whether iv lies entirely below other (iv.Hi < other.Lo):
// the dominance relation used to discard non-promising criteria and to prune
// rating maps in Algorithm 3.
func (iv Interval) Below(other Interval) bool { return iv.Hi < other.Lo }

// Intersects reports whether the two intervals overlap.
func (iv Interval) Intersects(other Interval) bool {
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Scale multiplies both bounds by w ≥ 0, the dimension weight applied in
// lines 10-11 of Algorithm 3.
func (iv Interval) Scale(w float64) Interval {
	return Interval{Lo: iv.Lo * w, Hi: iv.Hi * w}
}

// Clamp restricts the interval to [lo, hi].
func (iv Interval) Clamp(lo, hi float64) Interval {
	return Interval{Lo: Clamp(iv.Lo, lo, hi), Hi: Clamp(iv.Hi, lo, hi)}
}

func (iv Interval) String() string { return fmt.Sprintf("[%.4f, %.4f]", iv.Lo, iv.Hi) }

// HoeffdingSerflingRadius returns the half-width of a (1−delta) worst-case
// confidence interval for the mean of m samples drawn without replacement
// from a finite population of size n whose values lie in [0,1]. This is the
// bound of Serfling [48] used by SeeDB [54] and adopted by SubDEx: after
// processing m of n records,
//
//	radius = sqrt( (1 − (m−1)/n) · (2·ln(1/delta)) / (2m) )
//
// The (1 − (m−1)/n) factor is the without-replacement correction that drives
// the radius to 0 as the sample exhausts the population, which is what makes
// late-phase pruning decisive.
func HoeffdingSerflingRadius(m, n int, delta float64) float64 {
	if m <= 0 || n <= 0 {
		return math.Inf(1)
	}
	if m >= n {
		return 0
	}
	if delta <= 0 || delta >= 1 {
		delta = 0.05
	}
	correction := 1 - float64(m-1)/float64(n)
	return math.Sqrt(correction * 2 * math.Log(1/delta) / (2 * float64(m)))
}

// HoeffdingSerflingInterval builds the worst-case confidence interval around
// a running mean of values in [0,1] after m of n records, clamped to [0,1].
func HoeffdingSerflingInterval(mean float64, m, n int, delta float64) Interval {
	r := HoeffdingSerflingRadius(m, n, delta)
	return Interval{Lo: mean - r, Hi: mean + r}.Clamp(0, 1)
}

// ANOVAResult carries the outcome of a one-way analysis of variance: the F
// statistic, its degrees of freedom, and an approximate p-value. The paper
// uses one-way ANOVA at p < .05 to verify that treatment subgroups do not
// differ significantly (§5.2.1 footnotes 4-6).
type ANOVAResult struct {
	F        float64
	DFBetwen int
	DFWithin int
	P        float64
}

// Significant reports whether the groups differ at the given alpha.
func (a ANOVAResult) Significant(alpha float64) bool { return a.P < alpha }

// OneWayANOVA runs a one-way ANOVA over the given groups of observations.
// Groups with fewer than one observation are ignored; if fewer than two
// non-empty groups remain, or the within-group variance is zero, a degenerate
// result with P = 1 is returned.
func OneWayANOVA(groups [][]float64) ANOVAResult {
	var valid [][]float64
	total := 0
	grand := 0.0
	for _, g := range groups {
		if len(g) > 0 {
			valid = append(valid, g)
			total += len(g)
			for _, x := range g {
				grand += x
			}
		}
	}
	k := len(valid)
	if k < 2 || total <= k {
		return ANOVAResult{P: 1}
	}
	grand /= float64(total)

	ssb, ssw := 0.0, 0.0
	for _, g := range valid {
		m := Mean(g)
		d := m - grand
		ssb += float64(len(g)) * d * d
		for _, x := range g {
			e := x - m
			ssw += e * e
		}
	}
	dfb := k - 1
	dfw := total - k
	if ssw < 1e-12 {
		if ssb < 1e-12 {
			return ANOVAResult{DFBetwen: dfb, DFWithin: dfw, P: 1}
		}
		return ANOVAResult{F: math.Inf(1), DFBetwen: dfb, DFWithin: dfw, P: 0}
	}
	f := (ssb / float64(dfb)) / (ssw / float64(dfw))
	return ANOVAResult{F: f, DFBetwen: dfb, DFWithin: dfw, P: FDistSF(f, dfb, dfw)}
}

// FDistSF returns the survival function P(F > f) of the F distribution with
// (d1, d2) degrees of freedom, computed via the regularized incomplete beta
// function.
func FDistSF(f float64, d1, d2 int) float64 {
	if f <= 0 {
		return 1
	}
	x := float64(d2) / (float64(d2) + float64(d1)*f)
	return RegularizedIncompleteBeta(float64(d2)/2, float64(d1)/2, x)
}

// RegularizedIncompleteBeta computes I_x(a, b) using the continued-fraction
// expansion (Numerical Recipes style), accurate enough for p-value use.
func RegularizedIncompleteBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(lbeta + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		m2 := 2 * m
		aa := float64(m) * (b - float64(m)) * x / ((qam + float64(m2)) * (a + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + float64(m)) * (qab + float64(m)) * x / ((a + float64(m2)) * (qap + float64(m2)))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}
