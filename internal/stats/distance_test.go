package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// randomDistribution builds a valid distribution of the given length from a
// rand source, for property tests.
func randomDistribution(rng *rand.Rand, n int) Distribution {
	d := make(Distribution, n)
	for i := range d {
		d[i] = rng.Float64()
	}
	d.Normalize()
	return d
}

func TestNewDistributionFromCounts(t *testing.T) {
	d := NewDistributionFromCounts([]int{1, 2, 3, 4})
	if !d.IsValid() {
		t.Fatalf("distribution invalid: %v", d)
	}
	if !almostEqual(d[0], 0.1, 1e-12) || !almostEqual(d[3], 0.4, 1e-12) {
		t.Fatalf("unexpected probabilities: %v", d)
	}
}

func TestNewDistributionFromZeroCounts(t *testing.T) {
	d := NewDistributionFromCounts([]int{0, 0, 0, 0, 0})
	if !d.IsValid() {
		t.Fatalf("zero counts must yield a valid (uniform) distribution, got %v", d)
	}
	for _, p := range d {
		if !almostEqual(p, 0.2, 1e-12) {
			t.Fatalf("expected uniform, got %v", d)
		}
	}
}

func TestNormalizeZeroVector(t *testing.T) {
	d := Distribution{0, 0, 0}
	d.Normalize()
	if !d.IsValid() {
		t.Fatalf("normalized zero vector invalid: %v", d)
	}
}

func TestDistributionMeanVariance(t *testing.T) {
	// All mass at rating 3 on a 1..5 scale.
	d := Distribution{0, 0, 1, 0, 0}
	if got := d.Mean(); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := d.Variance(); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Variance = %v, want 0", got)
	}
	// Half at 1, half at 5: mean 3, variance 4.
	d = Distribution{0.5, 0, 0, 0, 0.5}
	if got := d.Mean(); !almostEqual(got, 3, 1e-12) {
		t.Errorf("Mean = %v, want 3", got)
	}
	if got := d.Variance(); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
}

func TestTotalVariationKnownValues(t *testing.T) {
	p := Distribution{1, 0}
	q := Distribution{0, 1}
	if d, _ := TotalVariation(p, q); !almostEqual(d, 1, 1e-12) {
		t.Errorf("TVD of disjoint = %v, want 1", d)
	}
	if d, _ := TotalVariation(p, p); !almostEqual(d, 0, 1e-12) {
		t.Errorf("TVD of identical = %v, want 0", d)
	}
}

func TestTotalVariationMismatch(t *testing.T) {
	if _, err := TotalVariation(Distribution{1}, Distribution{0.5, 0.5}); err == nil {
		t.Fatal("expected error for mismatched domains")
	}
}

func TestTVDMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomDistribution(r, 5)
		q := randomDistribution(r, 5)
		w := randomDistribution(r, 5)
		dpq := MustTotalVariation(p, q)
		dqp := MustTotalVariation(q, p)
		dpw := MustTotalVariation(p, w)
		dwq := MustTotalVariation(w, q)
		// symmetry, range, identity, triangle inequality
		return almostEqual(dpq, dqp, 1e-12) &&
			dpq >= 0 && dpq <= 1+1e-12 &&
			MustTotalVariation(p, p) < 1e-12 &&
			dpq <= dpw+dwq+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEMDKnownValues(t *testing.T) {
	// Moving all mass by one bucket costs 1.
	p := Distribution{1, 0, 0}
	q := Distribution{0, 1, 0}
	if d, _ := EarthMovers(p, q); !almostEqual(d, 1, 1e-12) {
		t.Errorf("EMD = %v, want 1", d)
	}
	// Endpoint to endpoint on a 5-point scale costs 4.
	p = Distribution{1, 0, 0, 0, 0}
	q = Distribution{0, 0, 0, 0, 1}
	if d, _ := EarthMovers(p, q); !almostEqual(d, 4, 1e-12) {
		t.Errorf("EMD endpoints = %v, want 4", d)
	}
	if d, _ := NormalizedEarthMovers(p, q); !almostEqual(d, 1, 1e-12) {
		t.Errorf("normalized EMD endpoints = %v, want 1", d)
	}
}

func TestEMDRespectsOrdering(t *testing.T) {
	// EMD must grow with displacement distance; TVD cannot tell these apart.
	base := Distribution{1, 0, 0, 0, 0}
	near := Distribution{0, 1, 0, 0, 0}
	far := Distribution{0, 0, 0, 0, 1}
	dNear := MustEarthMovers(base, near)
	dFar := MustEarthMovers(base, far)
	if dFar <= dNear {
		t.Errorf("EMD far (%v) should exceed near (%v)", dFar, dNear)
	}
	tvdNear := MustTotalVariation(base, near)
	tvdFar := MustTotalVariation(base, far)
	if !almostEqual(tvdNear, tvdFar, 1e-12) {
		t.Errorf("TVD should not distinguish displacement: %v vs %v", tvdNear, tvdFar)
	}
}

func TestEMDMetricProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomDistribution(r, 5)
		q := randomDistribution(r, 5)
		w := randomDistribution(r, 5)
		dpq := MustEarthMovers(p, q)
		dqp := MustEarthMovers(q, p)
		dpw := MustEarthMovers(p, w)
		dwq := MustEarthMovers(w, q)
		return almostEqual(dpq, dqp, 1e-9) &&
			dpq >= -1e-12 &&
			MustEarthMovers(p, p) < 1e-12 &&
			dpq <= dpw+dwq+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestKLDivergence(t *testing.T) {
	p := Distribution{0.5, 0.5}
	if d, _ := KLDivergence(p, p); !almostEqual(d, 0, 1e-9) {
		t.Errorf("KL(p,p) = %v, want 0", d)
	}
	q := Distribution{0.9, 0.1}
	d1, _ := KLDivergence(p, q)
	if d1 <= 0 {
		t.Errorf("KL of different distributions should be positive, got %v", d1)
	}
	// Zero target mass must not produce +Inf thanks to smoothing.
	q = Distribution{1, 0}
	d2, _ := KLDivergence(p, q)
	if math.IsInf(d2, 1) || math.IsNaN(d2) {
		t.Errorf("smoothed KL should be finite, got %v", d2)
	}
}

func TestKLNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := randomDistribution(r, 6)
		q := randomDistribution(r, 6)
		d, err := KLDivergence(p, q)
		return err == nil && d >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestOutlierScore(t *testing.T) {
	refs := []Distribution{
		{0.2, 0.2, 0.2, 0.2, 0.2},
		{0.21, 0.19, 0.2, 0.2, 0.2},
		{0.19, 0.21, 0.2, 0.2, 0.2},
	}
	inlier := Distribution{0.2, 0.2, 0.2, 0.2, 0.2}
	outlier := Distribution{0.9, 0.025, 0.025, 0.025, 0.025}
	if OutlierScore(outlier, refs) <= OutlierScore(inlier, refs) {
		t.Error("outlier should score higher than inlier")
	}
	if OutlierScore(inlier, nil) != 0 {
		t.Error("no references should score 0")
	}
}

func TestCloneIndependence(t *testing.T) {
	d := Distribution{0.3, 0.7}
	c := d.Clone()
	c[0] = 0.9
	if d[0] != 0.3 {
		t.Error("Clone must not share storage")
	}
}
