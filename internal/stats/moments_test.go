package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(100)
		xs := make([]float64, n)
		var run Running
		for i := range xs {
			xs[i] = r.NormFloat64()*3 + 1
			run.Add(xs[i])
		}
		return run.N() == n &&
			almostEqual(run.Mean(), Mean(xs), 1e-9) &&
			almostEqual(run.StdDev(), StdDev(xs), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRunningMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var a, b, all Running
		for i := 0; i < 50; i++ {
			x := r.Float64() * 10
			all.Add(x)
			if i%2 == 0 {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Variance(), all.Variance(), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestRunningMergeEmpty(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 2 || !almostEqual(a.Mean(), 2, 1e-12) {
		t.Errorf("merge with empty changed state: n=%d mean=%v", a.N(), a.Mean())
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || !almostEqual(b.Mean(), 2, 1e-12) {
		t.Errorf("merge into empty: n=%d mean=%v", b.N(), b.Mean())
	}
}

func TestRunningAddN(t *testing.T) {
	var a, b Running
	for i := 0; i < 5; i++ {
		a.Add(2.5)
	}
	b.AddN(2.5, 5)
	if a.N() != b.N() || !almostEqual(a.Mean(), b.Mean(), 1e-12) {
		t.Error("AddN must match repeated Add")
	}
}

func TestSampleVariance(t *testing.T) {
	var r Running
	r.Add(1)
	if r.SampleVariance() != 0 {
		t.Error("sample variance of n=1 must be 0")
	}
	r.Add(3)
	if !almostEqual(r.SampleVariance(), 2, 1e-12) { // ((1-2)²+(3-2)²)/(2-1)
		t.Errorf("sample variance = %v, want 2", r.SampleVariance())
	}
}

func TestMinMaxNormalize(t *testing.T) {
	xs := []float64{2, 4, 6}
	MinMaxNormalize(xs)
	want := []float64{0, 0.5, 1}
	for i := range xs {
		if !almostEqual(xs[i], want[i], 1e-12) {
			t.Errorf("normalized[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	// Constant input maps to 0.5 per [51]'s convention.
	cs := []float64{3, 3, 3}
	MinMaxNormalize(cs)
	for _, v := range cs {
		if v != 0.5 {
			t.Errorf("constant input should normalize to 0.5, got %v", v)
		}
	}
}

func TestMinMaxNormalizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+r.Intn(30))
		for i := range xs {
			xs[i] = r.NormFloat64() * 100
		}
		MinMaxNormalize(xs)
		for _, v := range xs {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestMinMaxEmpty(t *testing.T) {
	lo, hi := MinMax(nil)
	if lo != 0 || hi != 0 {
		t.Errorf("MinMax(nil) = %v,%v", lo, hi)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 {
		t.Error("Mean/StdDev of empty must be 0")
	}
}

func TestSpearmanRho(t *testing.T) {
	// Perfect monotone relationship.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{10, 20, 30, 40, 50}
	if got := SpearmanRho(xs, ys); !almostEqual(got, 1, 1e-12) {
		t.Errorf("perfect positive rho = %v", got)
	}
	// Perfect inverse.
	rev := []float64{50, 40, 30, 20, 10}
	if got := SpearmanRho(xs, rev); !almostEqual(got, -1, 1e-12) {
		t.Errorf("perfect negative rho = %v", got)
	}
	// Nonlinear but monotone: still 1 (rank-based).
	exp := []float64{1, 4, 9, 16, 25}
	if got := SpearmanRho(xs, exp); !almostEqual(got, 1, 1e-12) {
		t.Errorf("monotone nonlinear rho = %v", got)
	}
	// Degenerate inputs.
	if SpearmanRho(nil, nil) != 0 || SpearmanRho([]float64{1}, []float64{2}) != 0 {
		t.Error("degenerate inputs must give 0")
	}
	if SpearmanRho([]float64{1, 1, 1}, []float64{1, 2, 3}) != 0 {
		t.Error("zero variance must give 0")
	}
	// Ties get average ranks; correlation stays within [-1, 1].
	tied := []float64{1, 1, 2, 2, 3}
	if got := SpearmanRho(tied, ys); got < 0.8 || got > 1 {
		t.Errorf("tied rho = %v", got)
	}
}

func TestRanks(t *testing.T) {
	r := ranks([]float64{10, 30, 20, 30})
	// 10 -> 1, 20 -> 2, the two 30s share (3+4)/2 = 3.5.
	want := []float64{1, 3.5, 2, 3.5}
	for i := range want {
		if !almostEqual(r[i], want[i], 1e-12) {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}
