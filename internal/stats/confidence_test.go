package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHoeffdingSerflingRadius(t *testing.T) {
	// Radius shrinks as more of the population is processed.
	n := 10000
	prev := math.Inf(1)
	for _, m := range []int{100, 1000, 5000, 9000, 9999} {
		r := HoeffdingSerflingRadius(m, n, 0.05)
		if r >= prev {
			t.Errorf("radius should shrink: m=%d r=%v prev=%v", m, r, prev)
		}
		if r < 0 {
			t.Errorf("radius negative at m=%d: %v", m, r)
		}
		prev = r
	}
	// Exhausted population: exact mean.
	if r := HoeffdingSerflingRadius(n, n, 0.05); r != 0 {
		t.Errorf("full population radius = %v, want 0", r)
	}
	// No samples: unbounded.
	if r := HoeffdingSerflingRadius(0, n, 0.05); !math.IsInf(r, 1) {
		t.Errorf("zero samples radius = %v, want +Inf", r)
	}
}

func TestHoeffdingSerflingCoverage(t *testing.T) {
	// Empirical check: the worst-case interval must cover the true mean in
	// (much) more than 1-delta of trials for bounded populations.
	rng := rand.New(rand.NewSource(42))
	const n = 2000
	pop := make([]float64, n)
	trueMean := 0.0
	for i := range pop {
		pop[i] = rng.Float64()
		trueMean += pop[i]
	}
	trueMean /= n

	const trials = 300
	const m = 200
	const delta = 0.1
	covered := 0
	for trial := 0; trial < trials; trial++ {
		perm := rng.Perm(n)
		sum := 0.0
		for i := 0; i < m; i++ {
			sum += pop[perm[i]]
		}
		iv := HoeffdingSerflingInterval(sum/m, m, n, delta)
		if iv.Contains(trueMean) {
			covered++
		}
	}
	if frac := float64(covered) / trials; frac < 1-delta {
		t.Errorf("coverage %.3f below 1-delta = %.2f", frac, 1-delta)
	}
}

func TestIntervalOperations(t *testing.T) {
	a := Interval{Lo: 0.1, Hi: 0.3}
	b := Interval{Lo: 0.4, Hi: 0.6}
	c := Interval{Lo: 0.25, Hi: 0.5}
	if !a.Below(b) {
		t.Error("a should be entirely below b")
	}
	if a.Below(c) {
		t.Error("a overlaps c; Below must be false")
	}
	if !a.Intersects(c) || !c.Intersects(b) || a.Intersects(b) {
		t.Error("intersection relations wrong")
	}
	if got := a.Scale(2); got.Lo != 0.2 || !almostEqual(got.Hi, 0.6, 1e-12) {
		t.Errorf("Scale: got %v", got)
	}
	if got := b.Clamp(0, 0.5); got.Hi != 0.5 {
		t.Errorf("Clamp: got %v", got)
	}
	if a.Width() != 0.2 && !almostEqual(a.Width(), 0.2, 1e-12) {
		t.Errorf("Width: got %v", a.Width())
	}
}

func TestOneWayANOVAIdenticalGroups(t *testing.T) {
	g := []float64{1, 2, 3, 4, 5}
	res := OneWayANOVA([][]float64{g, g, g})
	if res.Significant(0.05) {
		t.Errorf("identical groups must not be significant: %+v", res)
	}
}

func TestOneWayANOVADifferentGroups(t *testing.T) {
	a := []float64{1, 1.1, 0.9, 1.05, 0.95, 1.0, 1.02}
	b := []float64{5, 5.1, 4.9, 5.05, 4.95, 5.0, 5.02}
	res := OneWayANOVA([][]float64{a, b})
	if !res.Significant(0.01) {
		t.Errorf("clearly different groups must be significant: %+v", res)
	}
	if res.F <= 1 {
		t.Errorf("F should be large, got %v", res.F)
	}
}

func TestOneWayANOVAKnownValue(t *testing.T) {
	// Classic example with a hand-computable F statistic.
	a := []float64{6, 8, 4, 5, 3, 4}
	b := []float64{8, 12, 9, 11, 6, 8}
	c := []float64{13, 9, 11, 8, 7, 12}
	res := OneWayANOVA([][]float64{a, b, c})
	// Grand mean 8; SSB = 84, SSW = 68; F = (84/2)/(68/15) = 9.264...
	if !almostEqual(res.F, 9.264705882, 1e-6) {
		t.Errorf("F = %v, want 9.2647", res.F)
	}
	if res.DFBetwen != 2 || res.DFWithin != 15 {
		t.Errorf("df = (%d,%d), want (2,15)", res.DFBetwen, res.DFWithin)
	}
	// p ≈ 0.0024 for F(2,15) = 9.26.
	if res.P < 0.001 || res.P > 0.005 {
		t.Errorf("p = %v, want ≈ 0.0024", res.P)
	}
}

func TestOneWayANOVADegenerate(t *testing.T) {
	if res := OneWayANOVA(nil); res.P != 1 {
		t.Errorf("nil groups: p = %v, want 1", res.P)
	}
	if res := OneWayANOVA([][]float64{{1, 2, 3}}); res.P != 1 {
		t.Errorf("single group: p = %v, want 1", res.P)
	}
	// Zero within-group variance but different means: infinitely significant.
	res := OneWayANOVA([][]float64{{1, 1}, {2, 2}})
	if res.P != 0 {
		t.Errorf("separated constant groups: p = %v, want 0", res.P)
	}
	// All constant and equal.
	res = OneWayANOVA([][]float64{{1, 1}, {1, 1}})
	if res.P != 1 {
		t.Errorf("identical constant groups: p = %v, want 1", res.P)
	}
}

func TestRegularizedIncompleteBeta(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		if got := RegularizedIncompleteBeta(1, 1, x); !almostEqual(got, x, 1e-9) {
			t.Errorf("I_%v(1,1) = %v, want %v", x, got, x)
		}
	}
	// Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		a := 0.5 + 5*r.Float64()
		b := 0.5 + 5*r.Float64()
		x := r.Float64()
		return almostEqual(RegularizedIncompleteBeta(a, b, x), 1-RegularizedIncompleteBeta(b, a, 1-x), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFDistSF(t *testing.T) {
	if got := FDistSF(0, 3, 10); got != 1 {
		t.Errorf("P(F>0) = %v, want 1", got)
	}
	// Monotone decreasing in f.
	prev := 1.0
	for _, f := range []float64{0.5, 1, 2, 4, 8} {
		p := FDistSF(f, 3, 10)
		if p > prev {
			t.Errorf("survival function must decrease: f=%v p=%v prev=%v", f, p, prev)
		}
		prev = p
	}
	// Known quantile: P(F(1,10) > 4.96) ≈ 0.05.
	if p := FDistSF(4.96, 1, 10); math.Abs(p-0.05) > 0.005 {
		t.Errorf("P(F(1,10)>4.96) = %v, want ≈ 0.05", p)
	}
}
