package engine

import (
	"context"
	"errors"
	"testing"

	"subdex/internal/bandit"
	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// engineDB generates a moderately sized synthetic database once per test
// binary (generation dominates test time otherwise).
func engineDB(t testing.TB) *dataset.DB {
	t.Helper()
	db, err := gen.Yelp(gen.Config{Seed: 5, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func rootGroup(t testing.TB, db *dataset.DB) (*query.Engine, *query.RatingGroup) {
	t.Helper()
	qe, err := query.NewEngine(db)
	if err != nil {
		t.Fatal(err)
	}
	g, err := qe.Materialize(query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	return qe, g
}

func TestCandidatesEnumeration(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, _ := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	// 24 attributes × 4 dimensions = 96 candidates at the root.
	if len(cands) != 96 {
		t.Fatalf("candidates = %d, want 96", len(cands))
	}
	// Binding an attribute removes its 4 dimension-candidates.
	bound := query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "gender", Value: "male"})
	if got := len(g.Candidates(qe, bound)); got != 92 {
		t.Fatalf("bound candidates = %d, want 92", got)
	}
}

func TestTopMapsUnprunedRanking(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	seen := ratingmap.NewSeenSet()

	cfg := DefaultConfig()
	cfg.Pruning = PruneNone
	res, err := g.TopMaps(group, cands, seen, 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maps) != 9 || len(res.Utilities) != 9 {
		t.Fatalf("got %d maps, want 9", len(res.Maps))
	}
	for i := 1; i < len(res.Utilities); i++ {
		if res.Utilities[i] > res.Utilities[i-1]+1e-12 {
			t.Fatalf("utilities not descending at %d: %v", i, res.Utilities)
		}
	}
	if res.Considered != len(cands) {
		t.Errorf("Considered = %d, want %d", res.Considered, len(cands))
	}
	if res.PrunedCI != 0 || res.PrunedMAB != 0 {
		t.Errorf("no pruning expected: %d, %d", res.PrunedCI, res.PrunedMAB)
	}
}

func TestTopMapsKPrimeValidation(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	if _, err := g.TopMaps(group, cands, ratingmap.NewSeenSet(), 0, DefaultConfig()); err == nil {
		t.Fatal("kPrime=0 must be rejected")
	}
}

func TestTopMapsEmptyCandidates(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	_, group := rootGroup(t, db)
	res, err := g.TopMaps(group, nil, ratingmap.NewSeenSet(), 3, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Maps) != 0 {
		t.Fatal("no candidates must yield no maps")
	}
}

// TestPrunedAgreesWithExactTopK is the core correctness property of the
// pruning machinery: the pruned top-k' must w.h.p. overlap the exact top-k'
// heavily. We demand at least 2/3 overlap of the top 9 (the schemes are
// probabilistic by design).
func TestPrunedAgreesWithExactTopK(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	seen := ratingmap.NewSeenSet()

	exactCfg := DefaultConfig()
	exactCfg.Pruning = PruneNone
	exact, err := g.TopMaps(group, cands, seen, 9, exactCfg)
	if err != nil {
		t.Fatal(err)
	}
	exactSet := map[ratingmap.Key]bool{}
	for _, rm := range exact.Maps {
		exactSet[rm.Key] = true
	}

	for _, pr := range []Pruning{PruneCI, PruneMAB, PruneBoth} {
		cfg := DefaultConfig()
		cfg.Pruning = pr
		cfg.MinPhaseRecords = 100 // force the phased path
		res, err := g.TopMaps(group, cands, seen, 9, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Maps) != 9 {
			t.Fatalf("%v: got %d maps", pr, len(res.Maps))
		}
		overlap := 0
		for _, rm := range res.Maps {
			if exactSet[rm.Key] {
				overlap++
			}
		}
		if overlap < 6 {
			t.Errorf("%v: only %d/9 of the exact top-k retained", pr, overlap)
		}
		if pr != PruneNone && res.PrunedCI+res.PrunedMAB == 0 {
			t.Errorf("%v: expected some pruning on %d candidates", pr, len(cands))
		}
	}
}

func TestTopMapsParallelEqualsSequential(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	seen := ratingmap.NewSeenSet()

	seq := DefaultConfig()
	seq.Pruning = PruneNone
	seq.Workers = 1
	par := seq
	par.Workers = 4

	a, err := g.TopMaps(group, cands, seen, 9, seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := g.TopMaps(group, cands, seen, 9, par)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Maps {
		if a.Maps[i].Key != b.Maps[i].Key {
			t.Fatalf("parallel result diverges at %d: %v vs %v", i, a.Maps[i].Key, b.Maps[i].Key)
		}
	}
}

func TestCIPruneDominance(t *testing.T) {
	// Two candidates with far-apart means: at a late phase (tight radius),
	// the weak one must be pruned; at an early phase (wide radius), not.
	mk := func(mean float64) estimateEntry {
		return estimateEntry{scores: ratingmap.Scores{mean, mean, mean, mean}, weight: 1}
	}
	est := map[int]estimateEntry{0: mk(0.9), 1: mk(0.85), 2: mk(0.1)}
	late := ciPrune(est, 9000, 10000, 2, 0.05, nil)
	if len(late) != 1 || late[0] != 2 {
		t.Errorf("late-phase prune = %v, want [2]", late)
	}
	early := ciPrune(est, 10, 10000, 2, 0.05, nil)
	if len(early) != 0 {
		t.Errorf("early-phase prune = %v, want none (radius too wide)", early)
	}
}

func TestCIPruneRespectsAcceptedArms(t *testing.T) {
	// An arm accepted by the bandit must not be CI-pruned even if its
	// interval falls below.
	mk := func(mean float64) estimateEntry {
		return estimateEntry{scores: ratingmap.Scores{mean, mean, mean, mean}, weight: 1}
	}
	est := map[int]estimateEntry{0: mk(0.9), 1: mk(0.85), 2: mk(0.1)}
	sar, _ := bandit.NewSAR([]int{0, 1, 2}, 2)
	sar.SetMean(2, 0.99)
	sar.SetMean(0, 0.5)
	sar.SetMean(1, 0.2)
	sar.Step() // accepts arm 2 (highest mean, large gap)
	pruned := ciPrune(est, 9000, 10000, 2, 0.05, sar)
	for _, idx := range pruned {
		if idx == 2 {
			t.Fatal("accepted arm was CI-pruned")
		}
	}
}

func TestMinPhaseRecordsSkipsPhases(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, _ := rootGroup(t, db)
	// A tiny group must take the single-pass path: no pruning counters.
	desc := query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "membership", Value: "elite"})
	group, err := qe.Materialize(desc)
	if err != nil {
		t.Fatal(err)
	}
	if group.Len() >= DefaultConfig().MinPhaseRecords {
		t.Skip("group unexpectedly large")
	}
	cands := g.Candidates(qe, desc)
	res, err := g.TopMaps(group, cands, ratingmap.NewSeenSet(), 9, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedCI != 0 || res.PrunedMAB != 0 {
		t.Error("small groups must skip phased pruning")
	}
}

// TestPhasedCoversAllRecords verifies the phase loop feeds every record
// exactly once: the surviving top map's record count must equal the
// single-pass count for the same key.
func TestPhasedCoversAllRecords(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	seen := ratingmap.NewSeenSet()

	cfg := DefaultConfig()
	cfg.MinPhaseRecords = 100
	res, err := g.TopMaps(group, cands, seen, 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := ratingmap.Builder{DB: db}
	for _, rm := range res.Maps {
		ref := b.Build(query.Description{}, group.Records, []ratingmap.Key{rm.Key})[0]
		if rm.TotalRecords != ref.TotalRecords {
			t.Fatalf("key %v: phased total %d vs exact %d", rm.Key, rm.TotalRecords, ref.TotalRecords)
		}
	}
}

// TestTopMapsDegradedAtPhaseBoundaries cancels the context at successive
// phase boundaries (via the PhaseHook fault-injection seam) and asserts
// the anytime contract: no error, Degraded set, RecordsProcessed equal to
// the exact record prefix of the completed phases, and a usable ranked
// result finalized over that prefix.
func TestTopMapsDegradedAtPhaseBoundaries(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	n := len(group.Records)

	for _, cancelAt := range []int{1, 2, 3, 5} {
		ctx, cancel := context.WithCancel(context.Background())
		cfg := DefaultConfig()
		cfg.Pruning = PruneCI // CI-only: no bandit early-exit below the boundary under test
		cfg.MinPhaseRecords = 100
		cfg.PhaseHook = func(_ context.Context, phase int) {
			if phase == cancelAt {
				cancel()
			}
		}
		res, err := g.TopMapsCtx(ctx, group, cands, ratingmap.NewSeenSet(), 9, cfg)
		cancel()
		if err != nil {
			t.Fatalf("cancel at phase %d: %v", cancelAt, err)
		}
		if !res.Degraded {
			t.Errorf("cancel at phase %d: result not marked degraded", cancelAt)
		}
		want := cancelAt * n / cfg.Phases
		if res.RecordsProcessed != want {
			t.Errorf("cancel at phase %d: RecordsProcessed = %d, want %d",
				cancelAt, res.RecordsProcessed, want)
		}
		if len(res.Maps) == 0 || len(res.Maps) > 9 {
			t.Errorf("cancel at phase %d: got %d maps, want 1..9", cancelAt, len(res.Maps))
		}
		for i := 1; i < len(res.Utilities); i++ {
			if res.Utilities[i] > res.Utilities[i-1]+1e-12 {
				t.Errorf("cancel at phase %d: degraded utilities not descending", cancelAt)
			}
		}
	}
}

// TestTopMapsCancelledBeforeFirstPhase asserts the failure half of the
// contract: cancellation before any phase boundary returns ctx.Err() on
// both the phased and the single-pass path.
func TestTopMapsCancelledBeforeFirstPhase(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	phased := DefaultConfig()
	phased.MinPhaseRecords = 100
	if _, err := g.TopMapsCtx(ctx, group, cands, ratingmap.NewSeenSet(), 9, phased); !errors.Is(err, context.Canceled) {
		t.Fatalf("phased: err = %v, want context.Canceled", err)
	}

	single := DefaultConfig()
	single.Pruning = PruneNone // forces the single-pass path
	if _, err := g.TopMapsCtx(ctx, group, cands, ratingmap.NewSeenSet(), 9, single); !errors.Is(err, context.Canceled) {
		t.Fatalf("single-pass: err = %v, want context.Canceled", err)
	}
}

// TestTopMapsCompleteScanNotDegraded pins the no-deadline behaviour: a
// run under a live context reports a full scan and no degradation.
func TestTopMapsCompleteScanNotDegraded(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})
	cfg := DefaultConfig()
	cfg.MinPhaseRecords = 100
	hooked := 0
	cfg.PhaseHook = func(context.Context, int) { hooked++ }
	res, err := g.TopMapsCtx(context.Background(), group, cands, ratingmap.NewSeenSet(), 9, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded {
		t.Error("complete scan marked degraded")
	}
	if res.RecordsProcessed != len(group.Records) {
		t.Errorf("RecordsProcessed = %d, want %d", res.RecordsProcessed, len(group.Records))
	}
	if hooked == 0 {
		t.Error("phase hook never invoked")
	}
}

func TestPruningStringer(t *testing.T) {
	for p, want := range map[Pruning]string{
		PruneNone: "none", PruneCI: "ci", PruneMAB: "mab", PruneBoth: "ci+mab",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}
