package engine

// Differential test harness for the sharded parallel accumulation path
// and the cross-step accumulator cache. The strategy is classic
// differential testing: an independent, slow, obviously-correct
// single-threaded reference implementation recomputes every candidate's
// subgroup histograms by brute force, and randomized datasets (seeded,
// table-driven across sizes, shard counts and worker counts — including
// workers=1 and workers much larger than the record count) assert that
// the production sharded-merge scan is EXACTLY equal on histogram counts
// and within 1e-12 on derived float moments. Anything less than exact
// equality on counts is a bug: all accumulator state is integer counts
// and merging is addition.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"subdex/internal/dataset"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// buildRandomDB constructs a small synthetic subjective database with
// atomic and multi-valued attributes on both sides, missing attribute
// values, and missing scores — every branch of the accumulation hot loop.
func buildRandomDB(t testing.TB, rng *rand.Rand, nRev, nItem, nRec int) *dataset.DB {
	t.Helper()
	revSchema := dataset.MustSchema(
		dataset.Attribute{Name: "gender", Kind: dataset.Atomic},
		dataset.Attribute{Name: "age", Kind: dataset.Atomic},
		dataset.Attribute{Name: "tags", Kind: dataset.MultiValued},
	)
	itemSchema := dataset.MustSchema(
		dataset.Attribute{Name: "city", Kind: dataset.Atomic},
		dataset.Attribute{Name: "cuisine", Kind: dataset.MultiValued},
	)
	reviewers := dataset.NewEntityTable("reviewers", revSchema)
	items := dataset.NewEntityTable("items", itemSchema)

	genders := []string{"male", "female", "nonbinary", ""} // "" = missing
	ages := []string{"young", "mid", "old"}
	tags := []string{"foodie", "local", "critic", "tourist"}
	cities := []string{"nyc", "sf", "austin", ""}
	cuisines := []string{"thai", "bbq", "diner", "vegan", "pizza"}

	for u := 0; u < nRev; u++ {
		vals := map[string]string{
			"gender": genders[rng.Intn(len(genders))],
			"age":    ages[rng.Intn(len(ages))],
		}
		var tg []string
		for _, tag := range tags {
			if rng.Intn(3) == 0 {
				tg = append(tg, tag)
			}
		}
		if _, err := reviewers.AppendRow(fmt.Sprintf("u%d", u), vals,
			map[string][]string{"tags": tg}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nItem; i++ {
		vals := map[string]string{"city": cities[rng.Intn(len(cities))]}
		var cs []string
		for _, c := range cuisines {
			if rng.Intn(3) == 0 {
				cs = append(cs, c)
			}
		}
		if _, err := items.AppendRow(fmt.Sprintf("i%d", i), vals,
			map[string][]string{"cuisine": cs}); err != nil {
			t.Fatal(err)
		}
	}

	ratings, err := dataset.NewRatingTable(
		dataset.Dimension{Name: "overall", Scale: 5},
		dataset.Dimension{Name: "value", Scale: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nRec; r++ {
		scores := []dataset.Score{
			dataset.Score(rng.Intn(6)), // 0 = missing
			dataset.Score(rng.Intn(4)),
		}
		if err := ratings.Append(rng.Intn(nRev), rng.Intn(nItem), scores); err != nil {
			t.Fatal(err)
		}
	}
	db := dataset.NewDB("diff", reviewers, items, ratings)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

// allCandidates enumerates every (side, attribute, dimension) key.
func allCandidates(db *dataset.DB) []ratingmap.Key {
	var keys []ratingmap.Key
	for _, side := range []query.Side{query.ReviewerSide, query.ItemSide} {
		var t *dataset.EntityTable
		if side == query.ReviewerSide {
			t = db.Reviewers
		} else {
			t = db.Items
		}
		for a := 0; a < t.Schema.Len(); a++ {
			for d := range db.Ratings.Dimensions {
				keys = append(keys, ratingmap.Key{Side: side, Attr: t.Schema.At(a).Name, Dim: d})
			}
		}
	}
	return keys
}

// referenceHistograms is the slow, single-threaded, obviously-correct
// accumulator: for every candidate key it walks the record list one
// record at a time and tallies value→histogram with map bookkeeping —
// no sharing, no dense arrays, no merging. It deliberately re-derives
// the grouping semantics (atomic vs multi-valued, missing attribute
// values, missing scores) from the dataset API rather than reusing any
// ratingmap code.
func referenceHistograms(db *dataset.DB, records []int32, keys []ratingmap.Key) map[ratingmap.Key]map[dataset.ValueID][]int {
	out := make(map[ratingmap.Key]map[dataset.ValueID][]int, len(keys))
	for _, k := range keys {
		hist := make(map[dataset.ValueID][]int)
		var t *dataset.EntityTable
		var rowOf []int32
		if k.Side == query.ReviewerSide {
			t = db.Reviewers
			rowOf = db.Ratings.Reviewer
		} else {
			t = db.Items
			rowOf = db.Ratings.Item
		}
		a := t.Schema.Index(k.Attr)
		scale := db.Ratings.Dimensions[k.Dim].Scale
		add := func(v dataset.ValueID, s dataset.Score) {
			if s == 0 {
				return
			}
			h := hist[v]
			if h == nil {
				h = make([]int, scale)
				hist[v] = h
			}
			h[s-1]++
		}
		for _, r := range records {
			row := int(rowOf[r])
			s := db.Ratings.Scores[k.Dim][r]
			switch t.Schema.At(a).Kind {
			case dataset.Atomic:
				v := t.AtomicValue(a, row)
				if v == dataset.MissingValue {
					continue
				}
				add(v, s)
			case dataset.MultiValued:
				for _, v := range t.MultiValues(a, row) {
					add(v, s)
				}
			}
		}
		out[k] = hist
	}
	return out
}

// assertAccMatchesReference compares every candidate's snapshot against
// the reference: exact histogram counts, and derived float moments
// (average score, standard deviation) within 1e-12.
func assertAccMatchesReference(t *testing.T, acc *ratingmap.Accumulator,
	ref map[ratingmap.Key]map[dataset.ValueID][]int, keys []ratingmap.Key) {
	t.Helper()
	for _, k := range keys {
		rm := acc.Snapshot(k)
		if rm == nil {
			t.Fatalf("%v: no snapshot", k)
		}
		want := ref[k]
		if len(rm.Subgroups) != len(want) {
			t.Fatalf("%v: %d subgroups, reference has %d", k, len(rm.Subgroups), len(want))
		}
		totalRecords := 0
		for _, sg := range rm.Subgroups {
			wh, ok := want[sg.Value]
			if !ok {
				t.Fatalf("%v: unexpected subgroup value %d", k, sg.Value)
			}
			if len(sg.Counts) != len(wh) {
				t.Fatalf("%v value %d: scale %d vs %d", k, sg.Value, len(sg.Counts), len(wh))
			}
			n := 0
			for s := range wh {
				if sg.Counts[s] != wh[s] {
					t.Fatalf("%v value %d score %d: count %d, reference %d",
						k, sg.Value, s+1, sg.Counts[s], wh[s])
				}
				n += wh[s]
			}
			if sg.N != n {
				t.Fatalf("%v value %d: N=%d, reference %d", k, sg.Value, sg.N, n)
			}
			totalRecords += n

			// Float moments: reference recomputes them naively in float64.
			refSum, refSq := 0.0, 0.0
			for s, c := range wh {
				refSum += float64(s+1) * float64(c)
				refSq += float64(s+1) * float64(s+1) * float64(c)
			}
			refAvg := refSum / float64(n)
			refVar := refSq/float64(n) - refAvg*refAvg
			if refVar < 0 {
				refVar = 0
			}
			if d := math.Abs(sg.AvgScore() - refAvg); d > 1e-12 {
				t.Fatalf("%v value %d: avg %g vs reference %g (Δ=%g)",
					k, sg.Value, sg.AvgScore(), refAvg, d)
			}
			if d := math.Abs(sg.StdDev() - math.Sqrt(refVar)); d > 1e-9 {
				t.Fatalf("%v value %d: sd %g vs reference %g (Δ=%g)",
					k, sg.Value, sg.StdDev(), math.Sqrt(refVar), d)
			}
		}
		if rm.TotalRecords != totalRecords {
			t.Fatalf("%v: TotalRecords=%d, reference %d", k, rm.TotalRecords, totalRecords)
		}
		if got := acc.NumRecords(k); got != totalRecords {
			t.Fatalf("%v: NumRecords=%d, reference %d", k, got, totalRecords)
		}
	}
}

// TestDifferentialShardedAccumulation is the main harness: >1000
// randomized (dataset, worker-count, shard-floor) cases comparing the
// sharded parallel scan against both the sequential production scan and
// the independent reference.
func TestDifferentialShardedAccumulation(t *testing.T) {
	type shape struct{ nRev, nItem, nRec int }
	shapes := []shape{
		{1, 1, 1},
		{3, 2, 7},
		{5, 4, 40},
		{12, 9, 150},
		{25, 30, 400},
	}
	// workersFor includes the degenerate and adversarial pool sizes: 1
	// (sequential), 2..8, a count far above the record count, and 0/-1
	// (must behave like 1).
	workersFor := func(nRec int) []int {
		return []int{-1, 0, 1, 2, 3, 4, 7, 8, nRec + 13, 10 * nRec}
	}
	cases := 0
	for seed := int64(0); seed < 25; seed++ {
		for si, sh := range shapes {
			rng := rand.New(rand.NewSource(seed*1000 + int64(si)))
			db := buildRandomDB(t, rng, sh.nRev, sh.nItem, sh.nRec)
			keys := allCandidates(db)
			desc := query.Description{}
			records := make([]int32, db.Ratings.Len())
			for i := range records {
				records[i] = int32(i)
			}
			// Also exercise a strict random subset (the sampled-group path).
			subset := records[:0:0]
			for _, r := range records {
				if rng.Intn(3) > 0 {
					subset = append(subset, r)
				}
			}
			g := NewGenerator(db)
			for _, recs := range [][]int32{records, subset} {
				ref := referenceHistograms(db, recs, keys)
				seq := g.Builder.NewAccumulator(desc, keys)
				seq.Update(recs)
				seqDigest := snapshotDigest(seq, keys)
				// The default builder scans through the fused columnar
				// kernel; the map-based reference path must produce a
				// bit-identical digest on every record set.
				mapB := ratingmap.Builder{DB: db, DisableKernel: true}
				mapAcc := mapB.NewAccumulator(desc, keys)
				mapAcc.Update(recs)
				if d := snapshotDigest(mapAcc, keys); d != seqDigest {
					t.Fatalf("seed=%d shape=%v: kernel digest differs from map-based reference path",
						seed, sh)
				}
				for _, workers := range workersFor(len(recs)) {
					for _, minPerShard := range []int{1, 3, 64} {
						acc := g.Builder.NewAccumulator(desc, keys)
						g.accumulate(acc, recs, workers, minPerShard)
						assertAccMatchesReference(t, acc, ref, keys)
						if d := snapshotDigest(acc, keys); d != seqDigest {
							t.Fatalf("seed=%d shape=%v workers=%d minPerShard=%d: sharded digest differs from sequential",
								seed, sh, workers, minPerShard)
						}
						cases++
					}
				}
			}
		}
	}
	if cases < 1000 {
		t.Fatalf("harness ran only %d cases, want ≥ 1000", cases)
	}
	t.Logf("differential harness: %d randomized cases", cases)
}

// snapshotDigest digests every candidate's materialized state.
func snapshotDigest(acc *ratingmap.Accumulator, keys []ratingmap.Key) string {
	maps := make([]*ratingmap.RatingMap, 0, len(keys))
	for _, k := range keys {
		maps = append(maps, acc.Snapshot(k))
	}
	return ratingmap.DigestMaps(maps)
}

// TestDifferentialMergeAssociativity splits a record range at every
// boundary of a coarse grid, accumulates the pieces independently, and
// merges them in order: the result must equal the one-shot scan exactly.
func TestDifferentialMergeAssociativity(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	db := buildRandomDB(t, rng, 10, 8, 200)
	keys := allCandidates(db)
	g := NewGenerator(db)
	records := make([]int32, db.Ratings.Len())
	for i := range records {
		records[i] = int32(i)
	}
	whole := g.Builder.NewAccumulator(query.Description{}, keys)
	whole.Update(records)
	want := snapshotDigest(whole, keys)

	for pieces := 2; pieces <= 7; pieces++ {
		merged := g.Builder.NewAccumulator(query.Description{}, keys)
		for p := 0; p < pieces; p++ {
			lo := p * len(records) / pieces
			hi := (p + 1) * len(records) / pieces
			part := g.Builder.NewAccumulator(query.Description{}, keys)
			part.Update(records[lo:hi])
			merged.Merge(part)
		}
		if got := snapshotDigest(merged, keys); got != want {
			t.Fatalf("pieces=%d: merged digest differs from one-shot scan", pieces)
		}
	}
}

// TestDifferentialTopMapsParallelVsSequential runs the full TopMaps
// pipeline (not just the scan) with Workers=1 and Workers=8 on identical
// inputs: maps, utilities and counters must match bit-for-bit.
func TestDifferentialTopMapsParallelVsSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	db := buildRandomDB(t, rng, 30, 25, 3000)
	keys := allCandidates(db)
	g := NewGenerator(db)
	group := wholeGroup(t, db)

	run := func(workers int) *Result {
		cfg := DefaultConfig()
		cfg.Pruning = PruneNone
		cfg.Workers = workers
		res, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, par := run(1), run(8)
	if ratingmap.DigestMaps(seq.Maps) != ratingmap.DigestMaps(par.Maps) {
		t.Fatal("parallel TopMaps maps differ from sequential")
	}
	if len(seq.Utilities) != len(par.Utilities) {
		t.Fatalf("utility count %d vs %d", len(seq.Utilities), len(par.Utilities))
	}
	for i := range seq.Utilities {
		if seq.Utilities[i] != par.Utilities[i] {
			t.Fatalf("utility[%d]: %g vs %g", i, seq.Utilities[i], par.Utilities[i])
		}
	}
}

func wholeGroup(t testing.TB, db *dataset.DB) *query.RatingGroup {
	t.Helper()
	qe, err := query.NewEngine(db)
	if err != nil {
		t.Fatal(err)
	}
	group, err := qe.Materialize(query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	return group
}

// TestDifferentialCacheHitExactness: with a cache installed, a second
// TopMaps call on the same inputs must (a) hit, (b) return a Result
// identical to the uncached call, and (c) match a cache-less generator.
func TestDifferentialCacheHitExactness(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db := buildRandomDB(t, rng, 20, 15, 2500)
	keys := allCandidates(db)
	group := wholeGroup(t, db)

	cfg := DefaultConfig()
	cfg.Pruning = PruneNone
	cfg.Workers = 4

	plain := NewGenerator(db)
	want, err := plain.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}

	cached := NewGenerator(db)
	cached.Cache = NewTopMapsCache(1 << 20)
	first, err := cached.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cached.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := cached.Cache.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("cache stats = %+v, want 1 hit / 1 miss", st)
	}
	for name, got := range map[string]*Result{"first": first, "second": second} {
		if ratingmap.DigestMaps(got.Maps) != ratingmap.DigestMaps(want.Maps) {
			t.Fatalf("%s: maps differ from cache-less generator", name)
		}
		for i := range want.Utilities {
			if got.Utilities[i] != want.Utilities[i] {
				t.Fatalf("%s: utility[%d] %g vs %g", name, i, got.Utilities[i], want.Utilities[i])
			}
		}
		if got.RecordsProcessed != want.RecordsProcessed || got.Degraded != want.Degraded {
			t.Fatalf("%s: counters differ: %+v vs %+v", name, got, want)
		}
	}
}

// TestDifferentialCacheSeenSetFreshness guards the cache's central
// correctness claim: hits re-finalize against the CURRENT seen set, so a
// history accumulated between two identical steps must change the
// ranking exactly as it would without a cache.
func TestDifferentialCacheSeenSetFreshness(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	db := buildRandomDB(t, rng, 20, 15, 2000)
	keys := allCandidates(db)
	group := wholeGroup(t, db)

	cfg := DefaultConfig()
	cfg.Pruning = PruneNone

	runPair := func(g *Generator) (*Result, *Result) {
		seen := ratingmap.NewSeenSet()
		a, err := g.TopMaps(group, keys, seen, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, rm := range a.Maps {
			seen.Add(rm)
		}
		b, err := g.TopMaps(group, keys, seen, 4, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return a, b
	}

	plain := NewGenerator(db)
	wantA, wantB := runPair(plain)
	withCache := NewGenerator(db)
	withCache.Cache = NewTopMapsCache(1 << 20)
	gotA, gotB := runPair(withCache)
	if st := withCache.Cache.Stats(); st.Hits != 1 {
		t.Fatalf("second step should hit, stats %+v", st)
	}
	if ratingmap.DigestMaps(gotA.Maps) != ratingmap.DigestMaps(wantA.Maps) {
		t.Fatal("step 1 maps differ with cache installed")
	}
	if ratingmap.DigestMaps(gotB.Maps) != ratingmap.DigestMaps(wantB.Maps) {
		t.Fatal("step 2 maps differ with cache installed")
	}
	for i := range wantB.Utilities {
		if gotB.Utilities[i] != wantB.Utilities[i] {
			t.Fatalf("step 2 utility[%d]: %g vs %g", i, gotB.Utilities[i], wantB.Utilities[i])
		}
	}
}

// assertKernelFamily runs one adversarial record set through every scan
// path — fused kernel, map-based reference builder, independent
// brute-force reference, and the sharded pool — and demands bit-identical
// digests everywhere.
func assertKernelFamily(t *testing.T, db *dataset.DB, records []int32) {
	t.Helper()
	keys := allCandidates(db)
	desc := query.Description{}
	ref := referenceHistograms(db, records, keys)

	kernelB := ratingmap.Builder{DB: db}
	mapB := ratingmap.Builder{DB: db, DisableKernel: true}

	kacc := kernelB.NewAccumulator(desc, keys)
	kacc.Update(records)
	assertAccMatchesReference(t, kacc, ref, keys)
	want := snapshotDigest(kacc, keys)

	macc := mapB.NewAccumulator(desc, keys)
	macc.Update(records)
	if got := snapshotDigest(macc, keys); got != want {
		t.Fatal("kernel digest differs from map-based reference path")
	}

	g := &Generator{DB: db, Builder: kernelB}
	for _, workers := range []int{2, 5, len(records) + 3} {
		acc := kernelB.NewAccumulator(desc, keys)
		g.accumulate(acc, records, workers, 1)
		if got := snapshotDigest(acc, keys); got != want {
			t.Fatalf("workers=%d: sharded kernel digest differs from one-shot", workers)
		}
	}
}

// TestDifferentialKernelAdversarial crafts record sets aimed at the fused
// kernel's specific failure modes: repeated value IDs inside multi-valued
// sets, rows with every value missing, all-zero score columns, dictionary
// IDs far past the reference path's initial counter capacity (and hit
// high-before-low, so slice growth patterns diverge maximally), empty
// record ranges, and single-record groups. Each family must be digest-
// identical across kernel, map-based reference, brute force, and the
// sharded pool.
func TestDifferentialKernelAdversarial(t *testing.T) {
	mustRow := func(t *testing.T, et *dataset.EntityTable, id string,
		vals map[string]string, multi map[string][]string) {
		t.Helper()
		if _, err := et.AppendRow(id, vals, multi); err != nil {
			t.Fatal(err)
		}
	}
	freeze := func(t *testing.T, rev, item *dataset.EntityTable,
		ratings *dataset.RatingTable) *dataset.DB {
		t.Helper()
		db := dataset.NewDB("adv", rev, item, ratings)
		if err := db.Freeze(); err != nil {
			t.Fatal(err)
		}
		return db
	}
	newTables := func(t *testing.T) (*dataset.EntityTable, *dataset.EntityTable, *dataset.RatingTable) {
		t.Helper()
		rev := dataset.NewEntityTable("reviewers", dataset.MustSchema(
			dataset.Attribute{Name: "gender", Kind: dataset.Atomic},
			dataset.Attribute{Name: "tags", Kind: dataset.MultiValued},
		))
		item := dataset.NewEntityTable("items", dataset.MustSchema(
			dataset.Attribute{Name: "city", Kind: dataset.Atomic},
			dataset.Attribute{Name: "cuisine", Kind: dataset.MultiValued},
		))
		ratings, err := dataset.NewRatingTable(
			dataset.Dimension{Name: "overall", Scale: 5},
			dataset.Dimension{Name: "value", Scale: 3},
		)
		if err != nil {
			t.Fatal(err)
		}
		return rev, item, ratings
	}
	allRecords := func(db *dataset.DB) []int32 {
		recs := make([]int32, db.Ratings.Len())
		for i := range recs {
			recs[i] = int32(i)
		}
		return recs
	}

	t.Run("repeated-multivalues", func(t *testing.T) {
		// Every reviewer shares the same overlapping tag sets, and the
		// input slice repeats tags — the scan must count each stored set
		// member exactly once per record regardless.
		rev, item, ratings := newTables(t)
		for u := 0; u < 4; u++ {
			mustRow(t, rev, fmt.Sprintf("u%d", u), map[string]string{"gender": "x"},
				map[string][]string{"tags": {"a", "b", "a", "b", "a"}})
		}
		mustRow(t, item, "i0", map[string]string{"city": "nyc"},
			map[string][]string{"cuisine": {"thai", "thai", "bbq"}})
		for r := 0; r < 60; r++ {
			if err := ratings.Append(r%4, 0, []dataset.Score{
				dataset.Score(1 + r%5), dataset.Score(1 + r%3)}); err != nil {
				t.Fatal(err)
			}
		}
		db := freeze(t, rev, item, ratings)
		assertKernelFamily(t, db, allRecords(db))
	})

	t.Run("all-missing-values", func(t *testing.T) {
		// Rows whose every attribute is missing (ValueID 0 / empty sets):
		// the kernel's discard row must swallow them without a trace.
		rev, item, ratings := newTables(t)
		for u := 0; u < 3; u++ {
			mustRow(t, rev, fmt.Sprintf("u%d", u), map[string]string{}, nil)
		}
		mustRow(t, item, "i0", map[string]string{}, nil)
		mustRow(t, item, "i1", map[string]string{"city": "sf"},
			map[string][]string{"cuisine": {"vegan"}})
		for r := 0; r < 40; r++ {
			if err := ratings.Append(r%3, r%2, []dataset.Score{
				dataset.Score(r % 6), dataset.Score(r % 4)}); err != nil {
				t.Fatal(err)
			}
		}
		db := freeze(t, rev, item, ratings)
		assertKernelFamily(t, db, allRecords(db))
	})

	t.Run("all-zero-scores", func(t *testing.T) {
		// One dimension entirely missing scores, the other mixed: the
		// kernel's discard column absorbs the zero-score increments.
		rev, item, ratings := newTables(t)
		mustRow(t, rev, "u0", map[string]string{"gender": "y"},
			map[string][]string{"tags": {"a"}})
		mustRow(t, item, "i0", map[string]string{"city": "austin"},
			map[string][]string{"cuisine": {"bbq", "diner"}})
		for r := 0; r < 30; r++ {
			if err := ratings.Append(0, 0, []dataset.Score{
				0, dataset.Score(r % 4)}); err != nil {
				t.Fatal(err)
			}
		}
		db := freeze(t, rev, item, ratings)
		assertKernelFamily(t, db, allRecords(db))
	})

	t.Run("high-value-ids-first", func(t *testing.T) {
		// A wide dictionary (~50 IDs per attribute) with records ordered
		// so the highest value IDs are scanned before the lowest: the
		// reference path's counts slice grows in a completely different
		// pattern than the kernel's pre-sized dense block, and the digest
		// must not notice.
		rev, item, ratings := newTables(t)
		const wide = 50
		for u := 0; u < wide; u++ {
			mustRow(t, rev, fmt.Sprintf("u%d", u),
				map[string]string{"gender": fmt.Sprintf("g%02d", u)},
				map[string][]string{"tags": {fmt.Sprintf("t%02d", u), "shared"}})
		}
		mustRow(t, item, "i0", map[string]string{"city": "nyc"},
			map[string][]string{"cuisine": {"thai"}})
		for u := wide - 1; u >= 0; u-- { // descending: high IDs hit first
			for rep := 0; rep < 2; rep++ {
				if err := ratings.Append(u, 0, []dataset.Score{
					dataset.Score(1 + (u+rep)%5), dataset.Score(1 + u%3)}); err != nil {
					t.Fatal(err)
				}
			}
		}
		db := freeze(t, rev, item, ratings)
		assertKernelFamily(t, db, allRecords(db))
	})

	t.Run("empty-and-single-record", func(t *testing.T) {
		rev, item, ratings := newTables(t)
		mustRow(t, rev, "u0", map[string]string{"gender": "z"},
			map[string][]string{"tags": {"a", "b"}})
		mustRow(t, rev, "u1", map[string]string{}, nil)
		mustRow(t, item, "i0", map[string]string{"city": "sf"}, nil)
		for r := 0; r < 10; r++ {
			if err := ratings.Append(r%2, 0, []dataset.Score{
				dataset.Score(r % 6), dataset.Score(1 + r%3)}); err != nil {
				t.Fatal(err)
			}
		}
		db := freeze(t, rev, item, ratings)
		assertKernelFamily(t, db, nil)       // empty range
		assertKernelFamily(t, db, []int32{}) // empty non-nil range
		for r := int32(0); r < 10; r++ {     // every single-record group
			assertKernelFamily(t, db, []int32{r})
		}
	})
}

// TestShardMinRecordsConfig proves the ShardMinRecords knob is plumbed
// from Config through TopMaps into the shard pool: the default floor
// keeps a small group sequential no matter how many workers are
// configured, a floor of 1 shards the same group, and both produce
// bit-identical maps.
func TestShardMinRecordsConfig(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db := buildRandomDB(t, rng, 12, 10, 1200)
	keys := allCandidates(db)
	g := NewGenerator(db)
	group := wholeGroup(t, db)

	run := func(workers, minPerShard int) *Result {
		cfg := DefaultConfig()
		cfg.Pruning = PruneNone
		cfg.Workers = workers
		cfg.ShardMinRecords = minPerShard
		res, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	// 1200 records sit below the 2048 default floor: sequential scan,
	// whether the floor is spelled out or left 0 for normalization.
	if res := run(8, 0); res.Profile.Shards != 1 {
		t.Fatalf("ShardMinRecords=0 (default): Shards=%d, want 1", res.Profile.Shards)
	}
	if res := run(8, defaultShardMinRecords); res.Profile.Shards != 1 {
		t.Fatalf("ShardMinRecords=default: Shards=%d, want 1", res.Profile.Shards)
	}

	sharded := run(8, 1)
	if sharded.Profile.Shards <= 1 {
		t.Fatalf("ShardMinRecords=1, Workers=8: Shards=%d, want >1", sharded.Profile.Shards)
	}
	seq := run(1, 1)
	if ratingmap.DigestMaps(sharded.Maps) != ratingmap.DigestMaps(seq.Maps) {
		t.Fatal("sharded maps differ from sequential with ShardMinRecords=1")
	}
}
