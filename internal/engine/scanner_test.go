package engine

import (
	"context"
	"errors"
	"strings"
	"testing"

	"math/rand"

	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// fakeScanner is an in-process RangeScanner: it partitions the requested
// range exactly like the cluster coordinator and scans each partition
// with a private accumulator, optionally losing a tail of partitions on
// a chosen call — the HTTP-free twin of internal/cluster used to pin the
// engine-side contract.
type fakeScanner struct {
	g     *Generator
	parts int
	// loseCall/loseAt drop partitions [loseAt:) of call number loseCall
	// (0-based count of ScanRange calls); loseCall < 0 never loses.
	loseCall int
	loseAt   int
	fail     error // returned from every call when non-nil
	calls    int
}

func (s *fakeScanner) ScanRange(ctx context.Context, group *query.RatingGroup, keys []ratingmap.Key,
	lo, hi int) (*RangeScan, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.fail != nil {
		return nil, s.fail
	}
	call := s.calls
	s.calls++
	parts := s.parts
	if parts > hi-lo {
		parts = hi - lo
	}
	if parts < 1 {
		parts = 1
	}
	rs := &RangeScan{Partitions: parts}
	for p := 0; p < parts; p++ {
		plo := lo + p*(hi-lo)/parts
		phi := lo + (p+1)*(hi-lo)/parts
		if call == s.loseCall && p >= s.loseAt {
			rs.Lost = parts - p
			rs.Profiles = append(rs.Profiles, PartitionProfile{Partition: p, Records: phi - plo, Lost: true})
			break
		}
		acc := s.g.Builder.NewAccumulator(group.Desc, keys)
		s.g.ScanInto(acc, group.Records[plo:phi], 1, 0)
		rs.Partials = append(rs.Partials, acc)
		rs.Records += phi - plo
		rs.Profiles = append(rs.Profiles, PartitionProfile{Partition: p, Records: phi - plo, Attempts: 1})
	}
	return rs, nil
}

// TestScannerDigestIdentity: a generator with a RangeScanner installed
// must produce byte-identical digests, utilities, and record counts to
// the plain local generator, on both the unphased and the phased path.
func TestScannerDigestIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := buildRandomDB(t, rng, 30, 25, 3000)
	keys := allCandidates(db)
	group := wholeGroup(t, db)

	run := func(scanner RangeScanner, pruning Pruning) *Result {
		g := NewGenerator(db)
		g.Scanner = scanner
		cfg := DefaultConfig()
		cfg.Pruning = pruning
		cfg.Phases = 4
		cfg.MinPhaseRecords = 1
		res, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, pruning := range []Pruning{PruneNone, PruneBoth} {
		for _, parts := range []int{1, 2, 3, 7, 5000} { // 5000 > records: clamps to one record per partition
			local := run(nil, pruning)
			dist := run(&fakeScanner{g: NewGenerator(db), parts: parts, loseCall: -1}, pruning)
			if ratingmap.DigestMaps(local.Maps) != ratingmap.DigestMaps(dist.Maps) {
				t.Fatalf("pruning=%v parts=%d: distributed maps diverge from local", pruning, parts)
			}
			if len(local.Utilities) != len(dist.Utilities) {
				t.Fatalf("pruning=%v parts=%d: utility count %d vs %d", pruning, parts, len(local.Utilities), len(dist.Utilities))
			}
			for i := range local.Utilities {
				if local.Utilities[i] != dist.Utilities[i] {
					t.Fatalf("pruning=%v parts=%d: utility[%d] %g vs %g", pruning, parts, i, local.Utilities[i], dist.Utilities[i])
				}
			}
			if local.RecordsProcessed != dist.RecordsProcessed || dist.Degraded {
				t.Fatalf("pruning=%v parts=%d: records %d vs %d, degraded=%v",
					pruning, parts, local.RecordsProcessed, dist.RecordsProcessed, dist.Degraded)
			}
			if len(dist.Profile.Cluster) == 0 {
				t.Fatalf("pruning=%v parts=%d: profile carries no partition detail", pruning, parts)
			}
		}
	}
}

// TestScannerPartitionLostUnphased pins the degraded contract on the
// unphased path: losing partitions [1:) of 3 leaves exactly the first
// third of the records merged, Degraded set, reason "partition_lost",
// and a result identical to an honest scan of that record prefix.
func TestScannerPartitionLostUnphased(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	db := buildRandomDB(t, rng, 20, 20, 1500)
	keys := allCandidates(db)
	group := wholeGroup(t, db)
	n := len(group.Records)

	g := NewGenerator(db)
	g.Scanner = &fakeScanner{g: NewGenerator(db), parts: 3, loseCall: 0, loseAt: 1}
	cfg := DefaultConfig()
	cfg.Pruning = PruneNone
	res, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("lost partition did not degrade the result")
	}
	if want := n / 3; res.RecordsProcessed != want {
		t.Fatalf("RecordsProcessed = %d, want the merged prefix %d", res.RecordsProcessed, want)
	}
	if res.Profile.DegradedReason != "partition_lost" {
		t.Fatalf("DegradedReason = %q, want %q", res.Profile.DegradedReason, "partition_lost")
	}

	// The anytime answer must equal a clean scan over the same prefix.
	prefix := &query.RatingGroup{Desc: group.Desc, Records: group.Records[:n/3]}
	ref, err := NewGenerator(db).TopMaps(prefix, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ratingmap.DigestMaps(res.Maps) != ratingmap.DigestMaps(ref.Maps) {
		t.Fatal("degraded maps diverge from an honest scan of the merged prefix")
	}
}

// TestScannerPartitionLostPhased pins the same contract mid-phase-loop:
// the loss truncates the current phase to its merged partition prefix
// and stops the scan there.
func TestScannerPartitionLostPhased(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	db := buildRandomDB(t, rng, 20, 20, 2000)
	keys := allCandidates(db)
	group := wholeGroup(t, db)
	n := len(group.Records)

	g := NewGenerator(db)
	g.Scanner = &fakeScanner{g: NewGenerator(db), parts: 2, loseCall: 2, loseAt: 1}
	cfg := DefaultConfig()
	cfg.Pruning = PruneBoth
	cfg.Phases = 4
	cfg.MinPhaseRecords = 1
	res, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded || res.Profile.DegradedReason != "partition_lost" {
		t.Fatalf("degraded=%v reason=%q, want partition_lost degradation", res.Degraded, res.Profile.DegradedReason)
	}
	// Phases 0 and 1 completed ([0, n/4) and [n/4, 2n/4)); phase 2's
	// first of two partitions merged before the loss.
	lo, hi := 2*n/4, 3*n/4
	want := 2*n/4 + (hi-lo)/2
	if res.RecordsProcessed != want {
		t.Fatalf("RecordsProcessed = %d, want %d", res.RecordsProcessed, want)
	}
}

// TestScannerAllPartitionsLost: nothing merged and nothing previously
// processed is an error, not a degraded result — identical to a
// deadline before the first phase.
func TestScannerAllPartitionsLost(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	db := buildRandomDB(t, rng, 10, 10, 400)
	keys := allCandidates(db)
	group := wholeGroup(t, db)

	for _, pruning := range []Pruning{PruneNone, PruneBoth} {
		g := NewGenerator(db)
		g.Scanner = &fakeScanner{g: NewGenerator(db), parts: 3, loseCall: 0, loseAt: 0}
		cfg := DefaultConfig()
		cfg.Pruning = pruning
		cfg.Phases = 4
		cfg.MinPhaseRecords = 1
		if _, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg); err == nil {
			t.Fatalf("pruning=%v: total partition loss returned a result, want error", pruning)
		}
	}
}

// TestScannerErrorPropagates: hard scanner errors (unbound fingerprint,
// invalid range, config mistakes) fail the call with context.
func TestScannerErrorPropagates(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	db := buildRandomDB(t, rng, 10, 10, 400)
	keys := allCandidates(db)
	group := wholeGroup(t, db)

	sentinel := errors.New("fingerprint unbound")
	g := NewGenerator(db)
	g.Scanner = &fakeScanner{g: NewGenerator(db), fail: sentinel}
	cfg := DefaultConfig()
	cfg.Pruning = PruneNone
	_, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err == nil || !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "distributed scan") {
		t.Fatalf("err = %v, want distributed-scan context", err)
	}
}
