// Pluggable range scanning: the seam through which the distributed
// engine (internal/cluster) takes over the scan half of TopMaps while
// the rest of Algorithm 1 — candidate enumeration, phase scheduling,
// estimation, pruning, finalization — keeps running unchanged in the
// coordinator process.
//
// Exactness is inherited, not re-proven: a RangeScanner returns partial
// accumulators in deterministic partition order over contiguous
// subranges of the same record range a local scan would fold, and
// Accumulator.Merge is associative and bit-exact on integer histograms
// (FuzzMerge), so the prefix-merge below is bit-for-bit identical to
// g.accumulate over the full range. The cluster differential harness
// asserts exactly that, across the network.

package engine

import (
	"context"
	"fmt"
	"time"

	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// RangeScanner scans group.Records[lo:hi] for the given candidate keys
// somewhere other than this process. Implementations must be safe for
// concurrent use (sessions share one generator).
type RangeScanner interface {
	// ScanRange returns partial accumulators covering a prefix of the
	// [lo, hi) range split into contiguous partitions, in partition
	// order. A lost partition (worker failure past the retry budget)
	// truncates the result to the partitions before it — the consistent
	// prefix the anytime contract needs — and is reported via Lost, not
	// via error. Errors are reserved for calls that produced nothing
	// trustworthy (unbound fingerprint, invalid range).
	ScanRange(ctx context.Context, group *query.RatingGroup, keys []ratingmap.Key, lo, hi int) (*RangeScan, error)
}

// RangeScan is one distributed scan's result.
type RangeScan struct {
	// Partials holds the per-partition accumulators of the merged
	// prefix, in partition order. Empty partitions may be elided.
	Partials []*ratingmap.Accumulator
	// Partitions is how many partitions the range was split into.
	Partitions int
	// Records counts records covered by Partials (== hi-lo when Lost is 0).
	Records int
	// Lost counts trailing partitions dropped after a failure: the first
	// failed partition and everything after it, since a non-contiguous
	// merge would break the consistent-prefix semantics estimates and
	// Hoeffding-Serfling radii assume.
	Lost int
	// Profiles carries per-partition timing/attempt detail for EXPLAIN.
	Profiles []PartitionProfile
}

// PartitionProfile describes one partition of a distributed scan, for
// Profile.Cluster (?explain=1).
type PartitionProfile struct {
	// Partition is the partition index within its ScanRange call.
	Partition int `json:"partition"`
	// Worker is the base URL of the worker that served (or last failed)
	// the partition.
	Worker string `json:"worker,omitempty"`
	// Records is the partition's record-range length.
	Records int `json:"records"`
	// Attempts counts RPC attempts including the successful one.
	Attempts int `json:"attempts"`
	// ScanMS is the worker-reported scan time; RPCMS the coordinator-
	// observed round trip of the successful attempt.
	ScanMS float64 `json:"scan_ms"`
	RPCMS  float64 `json:"rpc_ms"`
	// Lost marks a partition dropped after exhausting the retry budget.
	Lost bool `json:"lost,omitempty"`
}

// scanRange folds group.Records[lo:hi] into acc — locally through the
// sharded scan, or through g.Scanner when one is installed — and
// reports how many records were actually folded plus whether a trailing
// part of the range was lost (degrading the call to anytime semantics).
func (g *Generator) scanRange(ctx context.Context, acc *ratingmap.Accumulator, group *query.RatingGroup,
	lo, hi int, cfg Config, prof *Profile) (folded int, lost bool, err error) {
	if g.Scanner == nil {
		prof.noteShards(g.accumulate(acc, group.Records[lo:hi], cfg.Workers, cfg.ShardMinRecords))
		return hi - lo, false, nil
	}
	rs, err := g.Scanner.ScanRange(ctx, group, acc.Keys(), lo, hi)
	if err != nil {
		return 0, false, fmt.Errorf("engine: distributed scan [%d:%d): %w", lo, hi, err)
	}
	mergeStart := time.Now()
	for _, p := range rs.Partials {
		acc.Merge(p)
	}
	prof.ClusterMergeMS += msSince(mergeStart)
	prof.Cluster = append(prof.Cluster, rs.Profiles...)
	prof.noteShards(rs.Partitions)
	return rs.Records, rs.Lost > 0, nil
}

// ScanInto exposes the sharded scan to cluster workers: it folds records
// into acc exactly as a phase scan would, reporting the shard count. The
// records slice is any contiguous subrange the coordinator assigned —
// workers never need the whole group.
func (g *Generator) ScanInto(acc *ratingmap.Accumulator, records []int32, workers, minPerShard int) int {
	return g.accumulate(acc, records, workers, minPerShard)
}
