// Sharded parallel accumulation: the scan half of the "parallel query
// execution" sharing optimization of §4.2.1. The record range of a phase
// (or of the whole unphased scan) is split into contiguous per-worker
// shards; each worker folds its shard into a *private* ratingmap
// accumulator — the per-record hot loop takes no locks and shares no
// cache lines — and the shards are then merged into the target
// accumulator in shard order. Every count is an integer, so the merged
// state is bit-for-bit identical to a sequential scan of the same range
// regardless of scheduling; merging in shard order additionally makes the
// in-memory layout reproducible run-to-run. The differential harness
// (differential_test.go) proves the equivalence on randomized datasets.

package engine

import (
	"sync"
	"time"

	"subdex/internal/ratingmap"
)

// defaultShardMinRecords is the default per-shard floor for the parallel
// scan (Config.ShardMinRecords): below roughly this many records per
// worker, goroutine startup and the merge pass cost more than the scan
// they parallelize, so accumulate falls back to the sequential path.
// Chosen conservatively; tests set Config.ShardMinRecords to 1 to force
// multi-shard merges on tiny inputs.
const defaultShardMinRecords = 2048

// accumulate feeds records into acc, sharding the scan across up to
// workers goroutines when the range is large enough to pay for it:
// workers are clamped so no shard is smaller than minPerShard records
// (workers far above len(records) therefore degrades gracefully to one
// record per shard at most), and workers ≤ 1 (the No-Parallelism and
// Naive baselines) always scans sequentially. minPerShard ≤ 0 means the
// default floor. It reports how many shards the scan actually used (1
// for the sequential path), feeding the per-call Profile.
func (g *Generator) accumulate(acc *ratingmap.Accumulator, records []int32, workers, minPerShard int) int {
	if minPerShard <= 0 {
		minPerShard = defaultShardMinRecords
	}
	if mx := len(records) / minPerShard; workers > mx {
		workers = mx
	}
	if workers <= 1 {
		acc.Update(records)
		return 1
	}
	shards := make([]*ratingmap.Accumulator, workers)
	busy := make([]time.Duration, workers)
	keys := acc.Keys()
	desc := acc.Desc()
	poolStart := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * len(records) / workers
		hi := (w + 1) * len(records) / workers
		if lo >= hi {
			continue
		}
		shards[w] = g.Builder.NewAccumulator(desc, keys)
		wg.Add(1)
		go func(w int, sh *ratingmap.Accumulator, recs []int32) {
			defer wg.Done()
			t0 := time.Now()
			sh.Update(recs)
			busy[w] = time.Since(t0)
		}(w, shards[w], records[lo:hi])
	}
	wg.Wait()
	// Deterministic merge: shard order, not completion order.
	for _, sh := range shards {
		if sh != nil {
			acc.Merge(sh)
		}
	}
	var totalBusy time.Duration
	for _, b := range busy {
		totalBusy += b
	}
	g.Metrics.observeUtilization(totalBusy, time.Since(poolStart), workers)
	return workers
}
