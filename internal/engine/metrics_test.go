package engine

import (
	"context"
	"sync"
	"testing"

	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// forcePhased returns a config that takes the phased path on the test DB
// with a parallel estimation pool.
func forcePhased() Config {
	cfg := DefaultConfig()
	cfg.MinPhaseRecords = 1
	cfg.Workers = 4
	return cfg
}

// TestInstrumentedTopMaps checks that the hot-path metrics agree with the
// result's own counters and that the span tree has the expected shape.
func TestInstrumentedTopMaps(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	reg := obs.NewRegistry()
	g.Metrics = NewMetrics(reg)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})

	ring := obs.NewRingSink(4)
	ctx := obs.WithSink(context.Background(), ring)

	res, err := g.TopMapsCtx(ctx, group, cands, ratingmap.NewSeenSet(), 9, forcePhased())
	if err != nil {
		t.Fatal(err)
	}

	if got := g.Metrics.Candidates.Value(); got != int64(len(cands)) {
		t.Errorf("candidates counter = %d, want %d", got, len(cands))
	}
	if got := g.Metrics.PrunedCI.Value(); got != int64(res.PrunedCI) {
		t.Errorf("ci counter = %d, result says %d", got, res.PrunedCI)
	}
	if got := g.Metrics.PrunedMAB.Value(); got != int64(res.PrunedMAB) {
		t.Errorf("mab counter = %d, result says %d", got, res.PrunedMAB)
	}
	if got := g.Metrics.Finalized.Value(); got != int64(len(res.Maps)) {
		t.Errorf("finalized counter = %d, want %d", got, len(res.Maps))
	}
	if g.Metrics.TopMapsLatency.Count() != 1 {
		t.Errorf("topmaps histogram count = %d, want 1", g.Metrics.TopMapsLatency.Count())
	}
	if g.Metrics.PhaseLatency.Count() < 1 {
		t.Error("phased run must record phase latencies")
	}
	if g.Metrics.WorkerUtilization.Count() < 1 {
		t.Error("parallel estimation must record worker utilization")
	}

	spans := ring.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(spans))
	}
	root := spans[0]
	if root.Name != "engine.topmaps" {
		t.Fatalf("root span %q", root.Name)
	}
	if root.Attrs["candidates"] != len(cands) || root.Attrs["phased"] != true {
		t.Fatalf("root attrs: %v", root.Attrs)
	}
	if len(root.Children) < 1 || root.Children[0].Name != "engine.phase" {
		t.Fatalf("want engine.phase children, got %+v", root.Children)
	}
}

// TestInstrumentedTopMapsConcurrent hammers one shared Generator+Metrics
// from several goroutines with a parallel worker pool — the race-clean
// guarantee the server relies on. Run with -race.
func TestInstrumentedTopMapsConcurrent(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	g.Metrics = NewMetrics(obs.NewRegistry())
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})

	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Each goroutine owns its seen set (sessions are
			// single-threaded); the generator and metrics are shared.
			_, errs[i] = g.TopMaps(group, cands, ratingmap.NewSeenSet(), 9, forcePhased())
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Metrics.Candidates.Value(); got != int64(goroutines*len(cands)) {
		t.Errorf("candidates counter = %d, want %d", got, goroutines*len(cands))
	}
	if got := g.Metrics.TopMapsLatency.Count(); got != goroutines {
		t.Errorf("topmaps histogram count = %d, want %d", got, goroutines)
	}
}

// TestUninstrumentedIsUnchanged pins the zero-overhead contract: a nil
// Metrics and sink-free context produce identical results to the seed
// behaviour (and must not panic anywhere on the instrumented path).
func TestUninstrumentedIsUnchanged(t *testing.T) {
	db := engineDB(t)
	g := NewGenerator(db)
	qe, group := rootGroup(t, db)
	cands := g.Candidates(qe, query.Description{})

	a, err := g.TopMaps(group, cands, ratingmap.NewSeenSet(), 9, forcePhased())
	if err != nil {
		t.Fatal(err)
	}
	g2 := NewGenerator(db)
	g2.Metrics = NewMetrics(obs.NewRegistry())
	b, err := g2.TopMapsCtx(context.Background(), group, cands, ratingmap.NewSeenSet(), 9, forcePhased())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Maps) != len(b.Maps) || a.PrunedCI != b.PrunedCI || a.PrunedMAB != b.PrunedMAB {
		t.Fatalf("instrumentation changed results: %d/%d/%d vs %d/%d/%d",
			len(a.Maps), a.PrunedCI, a.PrunedMAB, len(b.Maps), b.PrunedCI, b.PrunedMAB)
	}
	for i := range a.Utilities {
		if a.Utilities[i] != b.Utilities[i] {
			t.Fatalf("utility %d changed: %v vs %v", i, a.Utilities[i], b.Utilities[i])
		}
	}
}
