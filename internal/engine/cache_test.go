package engine

import (
	"math/rand"
	"sync"
	"testing"

	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

func TestTopMapsCacheLRUAndBudget(t *testing.T) {
	c := NewTopMapsCache(100)
	acc := &ratingmap.Accumulator{} // placeholder value; the cache never derefs it

	if _, ok := c.get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("a", acc, 40)
	c.put("b", acc, 40)
	if st := c.Stats(); st.Entries != 2 || st.UsedRecords != 80 {
		t.Fatalf("stats %+v", st)
	}
	// Touch a so b becomes LRU, then overflow: b must go first.
	if _, ok := c.get("a"); !ok {
		t.Fatal("want hit on a")
	}
	if ev := c.put("c", acc, 40); ev != 1 {
		t.Fatalf("evicted %d, want 1", ev)
	}
	if _, ok := c.get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	// Oversized entries are never admitted.
	if ev := c.put("huge", acc, 101); ev != 0 {
		t.Fatalf("oversized put evicted %d", ev)
	}
	if _, ok := c.get("huge"); ok {
		t.Fatal("oversized entry admitted")
	}
	c.Invalidate()
	if st := c.Stats(); st.Entries != 0 || st.UsedRecords != 0 {
		t.Fatalf("post-invalidate stats %+v", st)
	}
	if _, ok := c.get("a"); ok {
		t.Fatal("hit after invalidate")
	}
}

func TestTopMapsCacheNilSafe(t *testing.T) {
	var c *TopMapsCache
	if _, ok := c.get("x"); ok {
		t.Fatal("nil cache hit")
	}
	c.put("x", nil, 1)
	c.addEvictions(3)
	c.Invalidate()
	if st := c.Stats(); st != (CacheStats{}) {
		t.Fatalf("nil stats %+v", st)
	}
	if hr := (CacheStats{}).HitRate(); hr != 0 {
		t.Fatalf("zero hit rate = %g", hr)
	}
}

func TestCacheKeyDiscriminates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db := buildRandomDB(t, rng, 5, 5, 50)
	group := wholeGroup(t, db)
	keys := allCandidates(db)
	u := ratingmap.DefaultUtilityConfig()

	base := cacheKey(group, keys, u)
	if base != cacheKey(group, keys, u) {
		t.Fatal("key not deterministic")
	}
	// Candidate order must not matter (set semantics).
	rev := append([]ratingmap.Key(nil), keys...)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	if base != cacheKey(group, rev, u) {
		t.Fatal("key depends on candidate order")
	}
	// A different candidate set must change the key.
	if base == cacheKey(group, keys[:len(keys)-1], u) {
		t.Fatal("key ignores candidate set")
	}
	// A different record subset must change the key.
	sub := &query.RatingGroup{Desc: group.Desc, Records: group.Records[:len(group.Records)-1],
		Reviewers: group.Reviewers, Items: group.Items}
	if base == cacheKey(sub, keys, u) {
		t.Fatal("key ignores record set")
	}
	// A different utility config must change the key.
	u2 := u
	u2.Normalize = true
	if base == cacheKey(group, keys, u2) {
		t.Fatal("key ignores utility config")
	}
}

// TestCacheMetricsWired checks the subdex_engine_cache_* counters move
// with cache traffic.
func TestCacheMetricsWired(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	db := buildRandomDB(t, rng, 10, 10, 500)
	group := wholeGroup(t, db)
	keys := allCandidates(db)

	reg := obs.NewRegistry()
	g := NewGenerator(db)
	g.Metrics = NewMetrics(reg)
	g.Cache = NewTopMapsCache(1 << 20)

	cfg := DefaultConfig()
	cfg.Pruning = PruneNone
	for i := 0; i < 3; i++ {
		if _, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 4, cfg); err != nil {
			t.Fatal(err)
		}
	}
	if got := g.Metrics.CacheMisses.Value(); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if got := g.Metrics.CacheHits.Value(); got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	st := g.Cache.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if hr := st.HitRate(); hr < 0.66 || hr > 0.67 {
		t.Fatalf("hit rate %g, want 2/3", hr)
	}
}

// TestCacheEvictionMetrics drives the budget over capacity and checks
// evictions are counted on both the cache and the metrics registry.
func TestCacheEvictionMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := buildRandomDB(t, rng, 10, 10, 400)
	qe, err := query.NewEngine(db)
	if err != nil {
		t.Fatal(err)
	}
	keys := allCandidates(db)

	reg := obs.NewRegistry()
	g := NewGenerator(db)
	g.Metrics = NewMetrics(reg)
	// Budget fits one whole-database group only; distinct sub-groups
	// plus the root must evict.
	g.Cache = NewTopMapsCache(db.Ratings.Len() + 10)

	cfg := DefaultConfig()
	cfg.Pruning = PruneNone
	descs := []query.Description{
		{},
		query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "age", Value: "young"}),
		query.MustDescription(query.Selector{Side: query.ReviewerSide, Attr: "age", Value: "old"}),
	}
	for _, d := range descs {
		group, err := qe.Materialize(d)
		if err != nil {
			t.Fatal(err)
		}
		if group.Len() == 0 {
			continue
		}
		if _, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 4, cfg); err != nil {
			t.Fatal(err)
		}
	}
	st := g.Cache.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions, stats %+v", st)
	}
	if got := g.Metrics.CacheEvictions.Value(); got != st.Evictions {
		t.Fatalf("metrics evictions %d != cache evictions %d", got, st.Evictions)
	}
	if st.UsedRecords > st.BudgetRecords {
		t.Fatalf("budget overrun: %+v", st)
	}
}

// TestCacheConcurrentTopMaps hammers one shared cache from many
// goroutines (the server's concurrent-sessions shape); run under -race
// this proves the published accumulators are safely shared read-only.
func TestCacheConcurrentTopMaps(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db := buildRandomDB(t, rng, 20, 15, 1500)
	group := wholeGroup(t, db)
	keys := allCandidates(db)

	g := NewGenerator(db)
	g.Cache = NewTopMapsCache(1 << 20)
	cfg := DefaultConfig()
	cfg.Pruning = PruneNone
	cfg.Workers = 2

	want, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 5, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantDigest := ratingmap.DigestMaps(want.Maps)

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				res, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 5, cfg)
				if err != nil {
					errs <- err
					return
				}
				if ratingmap.DigestMaps(res.Maps) != wantDigest {
					t.Error("concurrent result differs")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if st := g.Cache.Stats(); st.Hits < 40 {
		t.Fatalf("expected ≥40 hits, stats %+v", st)
	}
}

// TestExactOnCacheMiss verifies the opt-in: with a cache installed and
// ExactOnCacheMiss set, a group above the phase threshold skips the
// pruning machinery (miss = exact scan, populate) and the revisit hits.
func TestExactOnCacheMiss(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	db := buildRandomDB(t, rng, 40, 30, 9000)
	group := wholeGroup(t, db)
	keys := allCandidates(db)

	g := NewGenerator(db)
	g.Cache = NewTopMapsCache(1 << 22)
	cfg := DefaultConfig()
	cfg.MinPhaseRecords = 1000 // group is comfortably phased-eligible
	cfg.ExactOnCacheMiss = true

	first, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.PrunedCI != 0 || first.PrunedMAB != 0 {
		t.Fatalf("exact-on-miss run pruned: %+v", first)
	}
	second, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 4, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := g.Cache.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 miss", st)
	}
	if ratingmap.DigestMaps(first.Maps) != ratingmap.DigestMaps(second.Maps) {
		t.Fatal("hit result differs from miss result")
	}
	// Without the flag the same shape takes the phased path and, having
	// pruned, must NOT populate the cache.
	g2 := NewGenerator(db)
	g2.Cache = NewTopMapsCache(1 << 22)
	cfg2 := DefaultConfig()
	cfg2.MinPhaseRecords = 1000
	res, err := g2.TopMaps(group, keys, ratingmap.NewSeenSet(), 4, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if res.PrunedCI+res.PrunedMAB > 0 {
		if st := g2.Cache.Stats(); st.Entries != 0 {
			t.Fatalf("pruned run populated the cache: %+v", st)
		}
	}
}
