// Per-call EXPLAIN profiles. A Profile is the structured answer to "what
// did the generator actually do for this step": which execution path ran,
// how the scan was sharded, what each phase cost and pruned, and why a
// degraded result stopped where it did. It rides on Result (and from
// there on core.StepResult and the server's ?explain=1 step JSON), so the
// numbers the spans and metrics aggregate stay attributable per step.

package engine

import "time"

// msSince renders elapsed wall time in fractional milliseconds, the unit
// every profile duration uses (matching SpanData.DurationMS).
func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1000
}

// PhaseProfile describes one executed phase of Algorithm 1.
type PhaseProfile struct {
	// Phase is the phase index (line 2 of Algorithm 1).
	Phase int `json:"phase"`
	// DurationMS is the phase's wall time, including pruning decisions.
	DurationMS float64 `json:"duration_ms"`
	// Records counts group records folded into the accumulator during the
	// phase (the tail-scan fast path charges its remaining strides to the
	// phase that triggered it).
	Records int `json:"records"`
	// Alive is the surviving candidate count after the phase's pruning.
	Alive int `json:"alive"`
	// PrunedCI and PrunedMAB count candidates each scheme dropped here.
	PrunedCI  int `json:"pruned_ci"`
	PrunedMAB int `json:"pruned_mab"`
}

// Profile is the per-call execution profile of one TopMaps run.
type Profile struct {
	// Phased reports whether the phase/pruning machinery ran (false for
	// sub-threshold groups, PruneNone, and exact-on-cache-miss scans).
	Phased bool `json:"phased"`
	// Cache is the cross-step accumulator cache outcome: "hit", "miss",
	// or "off" when no cache is installed.
	Cache string `json:"cache"`
	// Workers is the configured parallelism (clamped to ≥ 1).
	Workers int `json:"workers"`
	// Shards is the widest sharding any accumulate call actually used
	// (1 = every scan ran sequentially; 0 = no scan ran at all).
	Shards int `json:"shards"`
	// Considered is the initial candidate count.
	Considered int `json:"considered"`
	// PrunedCI and PrunedMAB mirror the Result counters.
	PrunedCI  int `json:"pruned_ci"`
	PrunedMAB int `json:"pruned_mab"`
	// RecordsScanned counts records actually folded into an accumulator
	// this call — 0 on a cache hit, where RecordsProcessed still reports
	// the full group.
	RecordsScanned int `json:"records_scanned"`
	// GroupRecords is the group size the scan was up against.
	GroupRecords int `json:"group_records"`
	// Phases details each executed phase (empty on unphased paths).
	Phases []PhaseProfile `json:"phases,omitempty"`
	// Cluster details every partition of every distributed scan the call
	// issued (empty without a Generator.Scanner): per-worker scan and
	// RPC timings, attempts, and lost partitions.
	Cluster []PartitionProfile `json:"cluster,omitempty"`
	// ClusterMergeMS is the total coordinator-side time merging partial
	// accumulators shipped back by workers.
	ClusterMergeMS float64 `json:"cluster_merge_ms,omitempty"`
	// FinalizeMS is the final scoring-and-ranking pass's wall time.
	FinalizeMS float64 `json:"finalize_ms"`
	// TotalMS is the whole call's wall time.
	TotalMS float64 `json:"total_ms"`
	// DegradedReason says where the deadline cut a degraded run:
	// "deadline_at_phase_boundary", "deadline_mid_estimate",
	// "deadline_mid_tail_scan", "deadline_mid_finalize", or
	// "partition_lost" when a distributed scan dropped a partition after
	// exhausting its retry budget.
	DegradedReason string `json:"degraded_reason,omitempty"`
}

// noteShards records the widest sharding seen across accumulate calls.
func (p *Profile) noteShards(shards int) {
	if p != nil && shards > p.Shards {
		p.Shards = shards
	}
}
