// Package engine implements the RM-Generator of SubDEx (§4.2.1): the
// phase-based execution framework of Algorithm 1 with the paper's two
// sharing optimizations (combined aggregates via the shared accumulator,
// parallel execution via a worker pool) and its two pruning schemes — the
// confidence-interval pruning of Algorithm 3 built on Hoeffding-Serfling
// worst-case intervals, and the multi-armed-bandit pruning built on the
// Successive Accepts and Rejects strategy. Given a rating group, it returns
// (w.h.p.) the k×l rating maps with the highest dimension-weighted
// utilities.
package engine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"subdex/internal/bandit"
	"subdex/internal/dataset"
	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
	"subdex/internal/stats"
)

// Pruning selects which pruning schemes run at phase boundaries.
type Pruning int

const (
	// PruneNone disables pruning (the No-Pruning baseline of §5.1).
	PruneNone Pruning = iota
	// PruneCI uses only confidence-interval pruning (the CI baseline).
	PruneCI
	// PruneMAB uses only bandit pruning (the MAB baseline).
	PruneMAB
	// PruneBoth runs both schemes, SubDEx's default.
	PruneBoth
)

func (p Pruning) String() string {
	switch p {
	case PruneNone:
		return "none"
	case PruneCI:
		return "ci"
	case PruneMAB:
		return "mab"
	case PruneBoth:
		return "ci+mab"
	default:
		return fmt.Sprintf("Pruning(%d)", int(p))
	}
}

// Config parameterizes the generator. The zero value is not usable; start
// from DefaultConfig.
type Config struct {
	// Phases is n in Algorithm 1; the paper follows SeeDB in using 10.
	Phases int
	// Delta is the CI confidence parameter (intervals hold w.p. 1−Delta).
	Delta float64
	// Pruning selects the pruning schemes.
	Pruning Pruning
	// Workers bounds parallel per-phase estimation; ≤1 disables
	// parallelism (the No-Parallelism and Naive baselines).
	Workers int
	// Utility configures scoring (max-aggregation, normalization, DW).
	Utility ratingmap.UtilityConfig
	// MinPhaseRecords skips phased execution for groups smaller than this:
	// pruning overhead would exceed the scan cost.
	MinPhaseRecords int
	// ShardMinRecords is the per-shard record floor of the parallel scan:
	// a scan is split into at most len(records)/ShardMinRecords shards, so
	// small ranges stay sequential no matter how many Workers are
	// configured. ≤ 0 means the conservative default (2048). Tests set 1
	// to force multi-shard merges on tiny inputs through the public
	// TopMaps path.
	ShardMinRecords int
	// ExactOnCacheMiss, with a Generator.Cache installed, disables the
	// phase/pruning machinery on cache misses and runs the exact sharded
	// scan instead, so every completed scan is cacheable. One exact scan
	// costs a small constant factor more than a pruned one; every revisit
	// of the group then skips the scan entirely. Leave false (the default)
	// to preserve pure Algorithm 1 semantics on misses — sub-threshold
	// groups and recommendation evaluation still populate the cache.
	ExactOnCacheMiss bool
	// PhaseHook, when non-nil, runs at the start of every phase (and once,
	// with phase 0, before the single-pass scan of the unphased path) with
	// the TopMaps context and the phase index. It is a test-only
	// fault-injection seam: tests use it to force slow or cancelled phases
	// deterministically instead of sleeping on wall-clock data sizes.
	// Production configs leave it nil.
	PhaseHook func(ctx context.Context, phase int)
}

// DefaultConfig returns the paper's defaults (n=10 phases, both pruning
// schemes, utility per §3.2.3).
func DefaultConfig() Config {
	return Config{
		Phases:          10,
		Delta:           0.05,
		Pruning:         PruneBoth,
		Workers:         1,
		Utility:         ratingmap.DefaultUtilityConfig(),
		MinPhaseRecords: 5000,
		ShardMinRecords: defaultShardMinRecords,
	}
}

// Result carries the generator's output: the top maps ranked by descending
// DW utility, aligned utilities, and observability counters.
type Result struct {
	Maps      []*ratingmap.RatingMap
	Utilities []float64
	// PrunedCI and PrunedMAB count candidates dropped by each scheme.
	PrunedCI  int
	PrunedMAB int
	// Considered is the initial candidate count.
	Considered int
	// Degraded reports anytime semantics: the scan (or the final scoring
	// pass) was cut short by context cancellation after at least one phase
	// boundary, so Maps ranks candidates over the RecordsProcessed-record
	// prefix only. Every phase boundary is a consistent prefix of the
	// group's records, so a degraded result is still a valid
	// Hoeffding-Serfling estimate — just a wider-interval one.
	Degraded bool
	// RecordsProcessed counts the group records folded into the
	// accumulator before finalization (== len(group.Records) for a
	// complete scan).
	RecordsProcessed int
	// Profile is the per-call EXPLAIN profile (always populated by
	// TopMapsCtx, even for degraded or cache-hit runs).
	Profile *Profile
}

// Generator produces top-utility rating maps for rating groups of one
// database.
type Generator struct {
	DB      *dataset.DB
	Builder ratingmap.Builder
	// Metrics, when non-nil, receives hot-path telemetry (candidate,
	// pruning and finalization counters, latency and worker-utilization
	// histograms). Leave nil for a zero-overhead generator.
	Metrics *Metrics
	// Cache, when non-nil, memoizes completed unpruned accumulators
	// across TopMaps calls (see TopMapsCache). Safe for concurrent use;
	// all sessions of one explorer share it.
	Cache *TopMapsCache
	// Scanner, when non-nil, replaces the local sharded scan with a
	// distributed one (see RangeScanner and internal/cluster): every
	// record range TopMaps would fold locally is partitioned across
	// worker processes and the partial accumulators merged back in
	// partition order — bit-identical by Merge associativity. A lost
	// partition degrades the call to the same anytime semantics a
	// deadline does. Scheduling-only, like Workers: deliberately
	// excluded from the engine-config fingerprint.
	Scanner RangeScanner
}

// NewGenerator wraps a frozen database.
func NewGenerator(db *dataset.DB) *Generator {
	return &Generator{DB: db, Builder: ratingmap.Builder{DB: db}}
}

// Candidates enumerates all possible rating maps for a group description:
// every unbound grouping attribute × every rating dimension (line 1 of
// Algorithm 1).
func (g *Generator) Candidates(qe *query.Engine, desc query.Description) []ratingmap.Key {
	groupings := qe.GroupingCandidates(desc)
	dims := len(g.DB.Ratings.Dimensions)
	keys := make([]ratingmap.Key, 0, len(groupings)*dims)
	for _, gc := range groupings {
		for d := 0; d < dims; d++ {
			keys = append(keys, ratingmap.Key{Side: gc.Side, Attr: gc.Attr, Dim: d})
		}
	}
	return keys
}

// TopMaps runs Algorithm 1: it returns w.h.p. the kPrime = k×l candidates
// with the highest DW utilities over the group's records, ranked by exact
// utility, pruning low-utility candidates at phase boundaries.
//
// TopMaps is an XCtx compatibility shim: a context-free wrapper F that
// delegates to FCtx with context.Background(), keeping the pre-context
// API alive. Shims like this (TopMaps, core.Session.Step,
// core.Explorer.RMSet) are the only non-main, non-test call sites where
// the ctxflow analyzer permits minting a root context.
func (g *Generator) TopMaps(group *query.RatingGroup, candidates []ratingmap.Key,
	seen *ratingmap.SeenSet, kPrime int, cfg Config) (*Result, error) {
	return g.TopMapsCtx(context.Background(), group, candidates, seen, kPrime, cfg)
}

// TopMapsCtx is TopMaps with span propagation and cooperative
// cancellation. Under a context carrying an obs sink it emits an
// "engine.topmaps" span with one "engine.phase" child per executed phase,
// and — when Generator.Metrics is installed — records the hot-path
// counters and histograms. Both instruments are no-ops when absent.
//
// The context is consulted at every phase boundary and inside the
// estimate/finalize worker chunk loops. Cancellation before the first
// phase completes returns ctx.Err(). Cancellation after that degrades
// instead of failing: the scan stops at the last completed phase boundary
// and the survivors are finalized over the records processed so far —
// Algorithm 1 is an anytime algorithm, every phase boundary is a
// consistent record prefix — yielding a Result with Degraded set and
// RecordsProcessed reporting the prefix length.
func (g *Generator) TopMapsCtx(ctx context.Context, group *query.RatingGroup, candidates []ratingmap.Key,
	seen *ratingmap.SeenSet, kPrime int, cfg Config) (*Result, error) {
	if kPrime <= 0 {
		return nil, fmt.Errorf("engine: kPrime must be positive, got %d", kPrime)
	}
	if cfg.Phases <= 0 {
		cfg.Phases = 1
	}
	if cfg.ShardMinRecords <= 0 {
		cfg.ShardMinRecords = defaultShardMinRecords
	}
	start := time.Now()
	ctx, span := obs.StartSpan(ctx, "engine.topmaps")
	span.SetAttr("candidates", len(candidates))
	span.SetAttr("records", len(group.Records))
	span.SetAttr("k_prime", kPrime)
	span.SetAttr("pruning", cfg.Pruning.String())
	g.Metrics.addCandidates(len(candidates))
	res := &Result{Considered: len(candidates)}
	prof := &Profile{Cache: "off", Workers: cfg.Workers, GroupRecords: len(group.Records)}
	if prof.Workers < 1 {
		prof.Workers = 1
	}
	defer func() {
		g.Metrics.addPruned(res.PrunedCI, res.PrunedMAB)
		g.Metrics.addFinalized(len(res.Maps))
		g.Metrics.observeTopMaps(time.Since(start))
		if res.Degraded {
			g.Metrics.addDegraded()
			span.SetAttr("degraded", true)
			if prof.DegradedReason == "" {
				// The only degradation not tagged at its source: the deadline
				// hit inside the final scoring pass.
				prof.DegradedReason = "deadline_mid_finalize"
			}
		}
		prof.Considered = res.Considered
		prof.PrunedCI = res.PrunedCI
		prof.PrunedMAB = res.PrunedMAB
		if prof.Cache != "hit" {
			prof.RecordsScanned = res.RecordsProcessed
		}
		prof.TotalMS = msSince(start)
		res.Profile = prof
		span.SetAttr("pruned_ci", res.PrunedCI)
		span.SetAttr("pruned_mab", res.PrunedMAB)
		span.SetAttr("maps", len(res.Maps))
		span.End()
	}()
	if len(candidates) == 0 {
		return res, nil
	}

	n := len(group.Records)

	// Cross-step cache: a completed unpruned accumulator for this exact
	// (group, candidate set, utility config) lets the step skip the scan
	// and finalize the exact ranking directly. The cached accumulator is
	// shared and read-only; finalize never mutates it.
	var key string
	if g.Cache != nil {
		key = cacheKey(group, candidates, cfg.Utility)
		if cached, ok := g.Cache.get(key); ok {
			g.Metrics.addCacheHit()
			span.SetAttr("cache", "hit")
			prof.Cache = "hit"
			if cfg.PhaseHook != nil {
				cfg.PhaseHook(ctx, 0)
			}
			if err := ctx.Err(); err != nil {
				return nil, err // nothing served yet: fail, don't degrade
			}
			res.RecordsProcessed = n
			fstart := time.Now()
			g.finalize(ctx, cached, seen, kPrime, cfg, res)
			prof.FinalizeMS = msSince(fstart)
			return res, nil
		}
		g.Metrics.addCacheMiss()
		span.SetAttr("cache", "miss")
		prof.Cache = "miss"
	}

	acc := g.Builder.NewAccumulator(group.Desc, candidates)

	usePhases := cfg.Pruning != PruneNone && cfg.Phases > 1 &&
		n >= cfg.MinPhaseRecords && len(candidates) > kPrime &&
		!(g.Cache != nil && cfg.ExactOnCacheMiss)
	span.SetAttr("phased", usePhases)
	prof.Phased = usePhases

	if !usePhases {
		if cfg.PhaseHook != nil {
			cfg.PhaseHook(ctx, 0)
		}
		if err := ctx.Err(); err != nil {
			return nil, err // nothing processed yet: fail, don't degrade
		}
		folded, lost, err := g.scanRange(ctx, acc, group, 0, n, cfg, prof)
		if err != nil {
			return nil, err
		}
		if lost && folded == 0 {
			return nil, fmt.Errorf("engine: distributed scan lost every partition")
		}
		res.RecordsProcessed = folded
		if lost {
			// Same anytime contract as a deadline: the merged partition
			// prefix is a consistent record prefix, so finalize it
			// (detached below) instead of failing the step.
			res.Degraded = true
			prof.DegradedReason = "partition_lost"
		}
		g.maybeCache(key, acc, res, n)
		fctx := ctx
		if res.Degraded {
			fctx = context.WithoutCancel(ctx)
		}
		fstart := time.Now()
		g.finalize(fctx, acc, seen, kPrime, cfg, res)
		prof.FinalizeMS = msSince(fstart)
		return res, nil
	}

	var sar *bandit.SAR
	if cfg.Pruning == PruneMAB || cfg.Pruning == PruneBoth {
		ids := make([]int, len(candidates))
		for i := range ids {
			ids[i] = i
		}
		var err error
		sar, err = bandit.NewSAR(ids, kPrime)
		if err != nil {
			return nil, err
		}
	}
	// alive maps candidate index → key for candidates still accumulated.
	alive := make(map[int]ratingmap.Key, len(candidates))
	for i, k := range candidates {
		alive[i] = k
	}

	processed := 0
	for phase := 0; phase < cfg.Phases; phase++ {
		lo := phase * n / cfg.Phases
		hi := (phase + 1) * n / cfg.Phases
		if lo >= hi {
			continue
		}
		if cfg.PhaseHook != nil {
			cfg.PhaseHook(ctx, phase)
		}
		// Anytime degradation: a deadline hitting at a phase boundary stops
		// the scan and finalizes the consistent prefix accumulated so far.
		// Before the first phase there is no prefix — fail outright.
		if err := ctx.Err(); err != nil {
			if processed == 0 {
				return nil, err
			}
			res.Degraded = true
			prof.DegradedReason = "deadline_at_phase_boundary"
			break
		}
		phaseStart := time.Now()
		_, pspan := obs.StartSpan(ctx, "engine.phase")
		pspan.SetAttr("phase", phase)
		ciBefore, mabBefore := res.PrunedCI, res.PrunedMAB
		startProcessed := processed
		endPhase := func() {
			g.Metrics.observePhase(time.Since(phaseStart))
			pspan.SetAttr("alive", len(alive))
			pspan.SetAttr("pruned_ci", res.PrunedCI-ciBefore)
			pspan.SetAttr("pruned_mab", res.PrunedMAB-mabBefore)
			pspan.End()
			prof.Phases = append(prof.Phases, PhaseProfile{
				Phase:      phase,
				DurationMS: msSince(phaseStart),
				Records:    processed - startProcessed,
				Alive:      len(alive),
				PrunedCI:   res.PrunedCI - ciBefore,
				PrunedMAB:  res.PrunedMAB - mabBefore,
			})
		}
		folded, lostPart, err := g.scanRange(ctx, acc, group, lo, hi, cfg, prof)
		if err != nil {
			endPhase()
			return nil, err
		}
		processed += folded
		if lostPart {
			// A partition lost mid-phase leaves a consistent prefix
			// shorter than the phase boundary: degrade exactly as a
			// deadline at this point would.
			if processed == 0 {
				endPhase()
				return nil, fmt.Errorf("engine: distributed scan lost every partition")
			}
			res.Degraded = true
			prof.DegradedReason = "partition_lost"
			endPhase()
			break
		}
		if phase == cfg.Phases-1 {
			endPhase()
			break // nothing to prune after the last fraction; finalize below
		}

		est, aborted := g.estimate(ctx, acc, alive, seen, cfg, processed, n)
		if aborted {
			// Cancelled mid-estimate: the phase's records are accumulated (a
			// consistent prefix), the estimates are not — skip pruning and
			// degrade to finalizing the prefix.
			res.Degraded = true
			prof.DegradedReason = "deadline_mid_estimate"
			endPhase()
			break
		}

		if cfg.Pruning == PruneCI || cfg.Pruning == PruneBoth {
			pruned := ciPrune(est, processed, n, kPrime, cfg.Delta, sar)
			for _, idx := range pruned {
				acc.Remove(alive[idx])
				delete(alive, idx)
				res.PrunedCI++
			}
		}
		if sar != nil {
			//subdex:orderinsensitive SetMean writes are keyed by candidate index; no write touches another index's state
			for idx, e := range est {
				if _, ok := alive[idx]; ok {
					if err := sar.SetMean(idx, e.dwMean); err != nil {
						return nil, err
					}
				}
			}
			// Successive Accepts and Rejects makes one decision per round
			// and needs (#arms − k') rounds in total; with n phases the
			// per-phase decision budget spreads the remaining decisions
			// over the remaining phases.
			remaining := len(alive) - kPrime
			phasesLeft := cfg.Phases - 1 - phase
			if phasesLeft < 1 {
				phasesLeft = 1
			}
			budget := (remaining + phasesLeft - 1) / phasesLeft
			for d := 0; d < budget; d++ {
				id, st, ok := sar.Step()
				if !ok {
					break
				}
				if st == bandit.Rejected {
					if k, live := alive[id]; live {
						acc.Remove(k)
						delete(alive, id)
						res.PrunedMAB++
					}
				}
			}
		}
		if len(alive) <= kPrime {
			// Survivors all fit in the answer; stop pruning, finish the scan
			// (still honoring the deadline at each phase-sized stride).
			for p := phase + 1; p < cfg.Phases; p++ {
				if ctx.Err() != nil {
					res.Degraded = true
					prof.DegradedReason = "deadline_mid_tail_scan"
					break
				}
				lo := p * n / cfg.Phases
				hi := (p + 1) * n / cfg.Phases
				if lo < hi {
					folded, lostPart, err := g.scanRange(ctx, acc, group, lo, hi, cfg, prof)
					if err != nil {
						endPhase()
						return nil, err
					}
					processed += folded
					if lostPart {
						res.Degraded = true
						prof.DegradedReason = "partition_lost"
						break
					}
				}
			}
			endPhase()
			break
		}
		endPhase()
	}
	res.RecordsProcessed = processed
	g.maybeCache(key, acc, res, n)
	// Finalize over whatever prefix was accumulated. A degraded run
	// finalizes under a detached context: the final scoring pass is cheap
	// (it reads accumulated statistics, not records) and must complete for
	// the anytime result to be usable.
	fctx := ctx
	if res.Degraded {
		fctx = context.WithoutCancel(ctx)
	}
	fstart := time.Now()
	g.finalize(fctx, acc, seen, kPrime, cfg, res)
	prof.FinalizeMS = msSince(fstart)
	return res, nil
}

// estimateEntry carries one candidate's per-criterion estimates and its
// dimension-weighted mean at a phase boundary.
type estimateEntry struct {
	idx    int
	key    ratingmap.Key
	scores ratingmap.Scores
	weight float64
	dwMean float64
}

// estimate snapshots the alive candidates and computes bounded criterion
// estimates in parallel (the "parallel query execution" sharing
// optimization: up to cfg.Workers candidates are scored simultaneously).
// The workers consult ctx between candidates; on cancellation the whole
// estimate is abandoned (aborted = true) — partial estimates must never
// feed pruning decisions.
func (g *Generator) estimate(ctx context.Context, acc *ratingmap.Accumulator, alive map[int]ratingmap.Key,
	seen *ratingmap.SeenSet, cfg ratingmapConfigCarrier, processed, total int) (est map[int]estimateEntry, aborted bool) {
	recordScale := 1.0
	if processed > 0 {
		recordScale = float64(total) / float64(processed)
	}
	idxs := make([]int, 0, len(alive))
	for i := range alive {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	out := make([]estimateEntry, len(idxs))
	workers := cfg.workers()
	if workers < 1 {
		workers = 1
	}
	poolStart := time.Now()
	busy := make([]time.Duration, workers)
	var abort atomic.Bool
	var wg sync.WaitGroup
	chunk := (len(idxs) + workers - 1) / workers
	for w := 0; w < workers && w*chunk < len(idxs); w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(idxs) {
			hi = len(idxs)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t0 := time.Now()
			defer func() { busy[w] = time.Since(t0) }()
			for p := lo; p < hi; p++ {
				if ctx.Err() != nil {
					abort.Store(true)
					return
				}
				idx := idxs[p]
				key := alive[idx]
				scores, _ := acc.CriteriaEstimateOpt(key, seen, recordScale, cfg.utility().Peculiarity)
				w := seen.Weight(key.Dim)
				if cfg.utility().DisableDimensionWeights {
					w = 1
				}
				out[p] = estimateEntry{
					idx:    idx,
					key:    key,
					scores: scores,
					weight: w,
					dwMean: w * scores.Aggregate(cfg.utility()),
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	var totalBusy time.Duration
	for _, b := range busy {
		totalBusy += b
	}
	g.Metrics.observeUtilization(totalBusy, time.Since(poolStart), workers)
	if abort.Load() {
		return nil, true
	}
	m := make(map[int]estimateEntry, len(out))
	for _, e := range out {
		m[e.idx] = e
	}
	return m, false
}

// ratingmapConfigCarrier lets estimate share Config without an import cycle
// risk; Config satisfies it.
type ratingmapConfigCarrier interface {
	workers() int
	utility() ratingmap.UtilityConfig
}

func (c Config) workers() int                     { return c.Workers }
func (c Config) utility() ratingmap.UtilityConfig { return c.Utility }

// ciPrune applies Algorithm 3. Each candidate's interval is built per
// criterion from the Hoeffding-Serfling radius at (processed, total), then
// collapsed for the max-of-criteria utility: the interval of a maximum of
// quantities is [max of lower bounds, max of upper bounds] — every criterion
// interval lying entirely below another is discarded, exactly the loop of
// lines 2-9. Both bounds are then scaled by the dimension weight (lines
// 10-11). A candidate is pruned when its upper bound falls below the lowest
// lower bound of the current top-kPrime (lines 12-17). Arms already accepted
// by the bandit are exempt. Returns the pruned candidate indexes.
func ciPrune(est map[int]estimateEntry, processed, total, kPrime int, delta float64, sar *bandit.SAR) []int {
	if len(est) <= kPrime {
		return nil
	}
	radius := stats.HoeffdingSerflingRadius(processed, total, delta)
	type bound struct {
		idx    int
		lo, hi float64
	}
	accepted := make(map[int]bool)
	if sar != nil {
		for _, id := range sar.Accepted() {
			accepted[id] = true
		}
	}
	// Iterate candidates in sorted index order and break ranking ties by
	// index: bounds built straight off the map range fed an *unstable*
	// sort, so candidates with equal upper bounds straddling the k'
	// cutoff made the pruned set depend on map iteration order — a
	// nondeterminism the detorder analyzer now rejects statically.
	idxs := make([]int, 0, len(est))
	for idx := range est {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	bounds := make([]bound, 0, len(est))
	for _, idx := range idxs {
		e := est[idx]
		lo, hi := -1.0, -1.0
		for _, s := range e.scores {
			l := stats.Clamp(s-radius, 0, 1)
			h := stats.Clamp(s+radius, 0, 1)
			if l > lo {
				lo = l
			}
			if h > hi {
				hi = h
			}
		}
		bounds = append(bounds, bound{idx: idx, lo: lo * e.weight, hi: hi * e.weight})
	}
	sort.Slice(bounds, func(i, j int) bool {
		if bounds[i].hi != bounds[j].hi {
			return bounds[i].hi > bounds[j].hi
		}
		return bounds[i].idx < bounds[j].idx
	})
	lowest := bounds[0].lo
	for _, b := range bounds[1:min(kPrime, len(bounds))] {
		if b.lo < lowest {
			lowest = b.lo
		}
	}
	var pruned []int
	for _, b := range bounds[min(kPrime, len(bounds)):] {
		if b.hi < lowest && !accepted[b.idx] {
			pruned = append(pruned, b.idx)
		}
	}
	return pruned
}

// maybeCache admits the accumulator into the cross-step cache when it is
// a complete, unpruned scan of the whole group: no candidate was removed
// mid-scan (every histogram covers every record) and the scan reached the
// final record. key is empty when no cache is installed. A degraded
// *finalize* does not block admission — degradation there only truncates
// scoring, the accumulated counts are already complete.
func (g *Generator) maybeCache(key string, acc *ratingmap.Accumulator, res *Result, n int) {
	if key == "" || res.PrunedCI > 0 || res.PrunedMAB > 0 || res.RecordsProcessed != n {
		return
	}
	evicted := g.Cache.put(key, acc, n)
	if evicted > 0 {
		g.Cache.addEvictions(evicted)
		g.Metrics.addCacheEvictions(evicted)
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// finalize scores all remaining candidates on their full accumulated data
// using the allocation-light estimator, ranks them, and materializes only
// the top kPrime as rating maps. With normalization enabled in the utility
// config, criterion columns are min-max normalized across the survivors
// before aggregation, per Somech et al. [51].
//
// The workers consult ctx between candidates: if the context dies
// mid-finalize, unscored candidates are dropped from the ranking and the
// result is marked Degraded (callers that already degraded pass a
// detached context so the anytime result is always fully scored).
func (g *Generator) finalize(ctx context.Context, acc *ratingmap.Accumulator, seen *ratingmap.SeenSet,
	kPrime int, cfg Config, res *Result) {
	keys := acc.Keys()
	scores := make([]ratingmap.Scores, len(keys))
	scored := make([]bool, len(keys))
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	poolStart := time.Now()
	busy := make([]time.Duration, workers)
	var wg sync.WaitGroup
	chunk := (len(keys) + workers - 1) / workers
	for w := 0; w < workers && w*chunk < len(keys); w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(keys) {
			hi = len(keys)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			t0 := time.Now()
			for i := lo; i < hi; i++ {
				if ctx.Err() != nil {
					break
				}
				scores[i], _ = acc.CriteriaEstimateOpt(keys[i], seen, 1, cfg.Utility.Peculiarity)
				scored[i] = true
			}
			busy[w] = time.Since(t0)
		}(w, lo, hi)
	}
	wg.Wait()
	var totalBusy time.Duration
	for _, b := range busy {
		totalBusy += b
	}
	g.Metrics.observeUtilization(totalBusy, time.Since(poolStart), workers)

	// Drop candidates the cancelled scoring pass never reached; ranking a
	// zero-valued score would be wrong, excluding it is merely incomplete.
	if nScored := countTrue(scored); nScored < len(keys) {
		res.Degraded = true
		ck := make([]ratingmap.Key, 0, nScored)
		cs := make([]ratingmap.Scores, 0, nScored)
		for i, ok := range scored {
			if ok {
				ck = append(ck, keys[i])
				cs = append(cs, scores[i])
			}
		}
		keys, scores = ck, cs
	}

	if cfg.Utility.Normalize && len(keys) > 1 {
		col := make([]float64, len(keys))
		for c := ratingmap.Criterion(0); c < ratingmap.NumCriteria; c++ {
			for i := range scores {
				col[i] = scores[i][c]
			}
			stats.MinMaxNormalize(col)
			for i := range scores {
				scores[i][c] = col[i]
			}
		}
	}
	utils := make([]float64, len(keys))
	for i := range keys {
		utils[i] = ratingmap.DWUtility(scores[i].Aggregate(cfg.Utility), keys[i].Dim, seen, cfg.Utility)
	}
	order := make([]int, len(keys))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return utils[order[a]] > utils[order[b]] })
	if kPrime > len(order) {
		kPrime = len(order)
	}
	res.Maps = make([]*ratingmap.RatingMap, 0, kPrime)
	res.Utilities = make([]float64, 0, kPrime)
	for _, i := range order[:kPrime] {
		res.Maps = append(res.Maps, acc.Snapshot(keys[i]))
		res.Utilities = append(res.Utilities, utils[i])
	}
}
