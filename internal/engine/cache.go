// Cross-step accumulator cache: exploration walks revisit heavily
// overlapping rating groups (filter → generalize → filter returns to a
// selection whose maps were already computed, and the Recommendation
// Builder re-evaluates hundreds of candidate operations whose targets
// recur step after step). The scan — not the scoring — dominates TopMaps,
// and the accumulated histograms depend only on (record set, candidate
// set), NOT on the session's seen-set; memoizing completed accumulators
// therefore lets a repeated step skip the scan entirely while the cheap
// finalize pass still runs fresh against the current history, so cached
// and uncached steps return identical Results. This is the
// repeated-subquery memoization of the Subjective Databases system
// (Li et al.) applied to SubDEx's aggregation hot path, budgeted like the
// query layer's group cache (cf. Data Canopy [57]).

package engine

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"

	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// TopMapsCache memoizes fully-accumulated, unpruned accumulators across
// TopMaps calls. Entries are keyed by (group signature, candidate-key
// set, utility config) and budgeted by total cached record count — the
// scan cost a hit saves — with LRU eviction.
//
// Correctness invariant: only accumulators from COMPLETE, UNPRUNED scans
// are admitted (every candidate's histogram covers every record of the
// group). A hit bypasses the phase/pruning machinery and finalizes the
// exact ranking directly; for unpruned configurations this is
// bit-identical to the uncached run, for pruned configurations it is the
// exact (strictly no-worse) answer the pruned run approximates w.h.p.
// Cached accumulators are shared and read-only after publication;
// concurrent finalize passes over one entry are safe.
type TopMapsCache struct {
	mu      sync.Mutex
	budget  int
	used    int
	order   *list.List // front = most recently used
	entries map[string]*list.Element

	hits, misses, evictions int64
}

type topMapsCacheEntry struct {
	key  string
	acc  *ratingmap.Accumulator
	cost int // record count of the cached scan
}

// NewTopMapsCache returns a cache budgeted by total cached record count
// (≤ 0 yields a cache that stores nothing but still counts misses).
func NewTopMapsCache(budgetRecords int) *TopMapsCache {
	return &TopMapsCache{
		budget:  budgetRecords,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached accumulator for key, if any, marking it most
// recently used.
func (c *TopMapsCache) get(key string) (*ratingmap.Accumulator, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*topMapsCacheEntry).acc, true
}

// put admits a completed accumulator, evicting LRU entries until the
// record budget holds. It returns how many entries were evicted. Entries
// larger than the whole budget are never admitted.
func (c *TopMapsCache) put(key string, acc *ratingmap.Accumulator, cost int) int {
	if c == nil || c.budget <= 0 || cost > c.budget {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return 0
	}
	evicted := 0
	for c.used+cost > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*topMapsCacheEntry)
		c.used -= ev.cost
		delete(c.entries, ev.key)
		c.order.Remove(back)
		evicted++
	}
	el := c.order.PushFront(&topMapsCacheEntry{key: key, acc: acc, cost: cost})
	c.entries[key] = el
	c.used += cost
	return evicted
}

// Invalidate drops every entry (and resets nothing else: hit/miss
// counters keep accumulating). Call it when the underlying database is
// swapped or mutated out from under the engine.
func (c *TopMapsCache) Invalidate() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.entries = make(map[string]*list.Element)
	c.used = 0
}

// CacheStats is a point-in-time snapshot of the cache, surfaced by the
// server's /debug/cache endpoint and by cmd/sdebench.
type CacheStats struct {
	Entries       int   `json:"entries"`
	UsedRecords   int   `json:"used_records"`
	BudgetRecords int   `json:"budget_records"`
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
}

// HitRate returns hits / (hits + misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// Stats snapshots the cache counters. Nil-safe (zero stats).
func (c *TopMapsCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       len(c.entries),
		UsedRecords:   c.used,
		BudgetRecords: c.budget,
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
	}
}

// addEvictions folds eviction counts recorded by put under the lock-free
// metrics path.
func (c *TopMapsCache) addEvictions(n int) {
	if c == nil || n == 0 {
		return
	}
	c.mu.Lock()
	c.evictions += int64(n)
	c.mu.Unlock()
}

// cacheKey builds the lookup key: the group signature (description +
// record-set hash, distinguishing subsampled groups from their full
// selection), the candidate-key set (order-insensitive), and the utility
// configuration. The record hash is FNV-1a over the raw positions — O(n)
// but ~50× cheaper per record than the scan it guards.
func cacheKey(group *query.RatingGroup, candidates []ratingmap.Key, u ratingmap.UtilityConfig) string {
	h := fnv.New64a()
	var buf [4]byte
	for _, r := range group.Records {
		binary.LittleEndian.PutUint32(buf[:], uint32(r))
		h.Write(buf[:])
	}
	ks := append([]ratingmap.Key(nil), candidates...)
	sort.Slice(ks, func(i, j int) bool {
		if ks[i].Side != ks[j].Side {
			return ks[i].Side < ks[j].Side
		}
		if ks[i].Attr != ks[j].Attr {
			return ks[i].Attr < ks[j].Attr
		}
		return ks[i].Dim < ks[j].Dim
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%s\x02%d\x02%x\x02", group.Desc.Key(), len(group.Records), h.Sum64())
	for _, k := range ks {
		fmt.Fprintf(&b, "%d.%s.%d;", k.Side, k.Attr, k.Dim)
	}
	fmt.Fprintf(&b, "\x02%d|%d|%d|%t|%t", u.Aggregation, u.Single, u.Peculiarity,
		u.DisableDimensionWeights, u.Normalize)
	return b.String()
}
