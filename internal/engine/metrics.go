package engine

import (
	"time"

	"subdex/internal/obs"
)

// Metrics bundles the generator's hot-path instruments. Resolve one with
// NewMetrics at startup and attach it to Generator.Metrics; a nil
// *Metrics (the default) makes every record call a no-op, so the
// instrumented hot path costs nothing to library users and tests.
type Metrics struct {
	// Candidates counts rating-map candidates enumerated across TopMaps
	// calls (subdex_engine_candidates_total).
	Candidates *obs.Counter
	// PrunedCI / PrunedMAB count candidates eliminated by each pruning
	// scheme (subdex_engine_candidates_pruned_total{strategy=...}).
	PrunedCI  *obs.Counter
	PrunedMAB *obs.Counter
	// Finalized counts rating maps materialized into results
	// (subdex_engine_maps_finalized_total).
	Finalized *obs.Counter
	// Degraded counts TopMaps calls that returned anytime (prefix-scan)
	// results after a deadline or cancellation
	// (subdex_engine_topmaps_degraded_total).
	Degraded *obs.Counter
	// TopMapsLatency is the per-TopMaps wall-clock histogram in seconds
	// (subdex_engine_topmaps_duration_seconds).
	TopMapsLatency *obs.Histogram
	// PhaseLatency times one phase of Algorithm 1: the partial scan plus
	// the phase-boundary estimation and pruning
	// (subdex_engine_phase_duration_seconds).
	PhaseLatency *obs.Histogram
	// WorkerUtilization is Σ busy-time / (wall × workers) of the parallel
	// estimation and sharded-scan pools, in (0,1]
	// (subdex_engine_worker_utilization_ratio).
	WorkerUtilization *obs.Histogram
	// CacheHits / CacheMisses / CacheEvictions count cross-step
	// accumulator cache traffic (subdex_engine_cache_hits_total,
	// subdex_engine_cache_misses_total,
	// subdex_engine_cache_evictions_total).
	CacheHits      *obs.Counter
	CacheMisses    *obs.Counter
	CacheEvictions *obs.Counter
}

// NewMetrics registers the engine's instruments on r. A nil registry
// yields a nil (no-op) Metrics.
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		Candidates: r.Counter("subdex_engine_candidates_total",
			"Rating-map candidates enumerated by the RM-Generator."),
		PrunedCI: r.Counter("subdex_engine_candidates_pruned_total",
			"Candidates eliminated at phase boundaries, by pruning strategy.",
			obs.L("strategy", "ci")),
		PrunedMAB: r.Counter("subdex_engine_candidates_pruned_total",
			"Candidates eliminated at phase boundaries, by pruning strategy.",
			obs.L("strategy", "mab")),
		Finalized: r.Counter("subdex_engine_maps_finalized_total",
			"Rating maps materialized into TopMaps results."),
		Degraded: r.Counter("subdex_engine_topmaps_degraded_total",
			"TopMaps calls degraded to anytime prefix results by deadline or cancellation."),
		TopMapsLatency: r.Histogram("subdex_engine_topmaps_duration_seconds",
			"Wall-clock duration of one TopMaps call.", nil),
		PhaseLatency: r.Histogram("subdex_engine_phase_duration_seconds",
			"Duration of one Algorithm 1 phase (scan + estimate + prune).", nil),
		WorkerUtilization: r.Histogram("subdex_engine_worker_utilization_ratio",
			"Busy-time share of the parallel estimation worker pool.",
			obs.RatioBuckets),
		CacheHits: r.Counter("subdex_engine_cache_hits_total",
			"TopMaps calls served from the cross-step accumulator cache."),
		CacheMisses: r.Counter("subdex_engine_cache_misses_total",
			"TopMaps cache lookups that missed and fell back to a scan."),
		CacheEvictions: r.Counter("subdex_engine_cache_evictions_total",
			"Accumulator cache entries evicted by the record budget."),
	}
}

// Nil-safe recording helpers: the hot path calls these unconditionally.

func (m *Metrics) addCandidates(n int) {
	if m == nil {
		return
	}
	m.Candidates.Add(int64(n))
}

func (m *Metrics) addPruned(ci, mab int) {
	if m == nil {
		return
	}
	m.PrunedCI.Add(int64(ci))
	m.PrunedMAB.Add(int64(mab))
}

func (m *Metrics) addFinalized(n int) {
	if m == nil {
		return
	}
	m.Finalized.Add(int64(n))
}

func (m *Metrics) addDegraded() {
	if m == nil {
		return
	}
	m.Degraded.Inc()
}

func (m *Metrics) observeTopMaps(d time.Duration) {
	if m == nil {
		return
	}
	m.TopMapsLatency.ObserveDuration(d)
}

func (m *Metrics) observePhase(d time.Duration) {
	if m == nil {
		return
	}
	m.PhaseLatency.ObserveDuration(d)
}

func (m *Metrics) addCacheHit() {
	if m == nil {
		return
	}
	m.CacheHits.Inc()
}

func (m *Metrics) addCacheMiss() {
	if m == nil {
		return
	}
	m.CacheMisses.Inc()
}

func (m *Metrics) addCacheEvictions(n int) {
	if m == nil {
		return
	}
	m.CacheEvictions.Add(int64(n))
}

// observeUtilization records Σbusy/(wall×workers), clamped to (0,1].
func (m *Metrics) observeUtilization(busy, wall time.Duration, workers int) {
	if m == nil || wall <= 0 || workers < 1 {
		return
	}
	u := busy.Seconds() / (wall.Seconds() * float64(workers))
	if u > 1 {
		u = 1
	}
	m.WorkerUtilization.Observe(u)
}
