package ratingmap

// Tests for the fused columnar scan kernel (kernel.go). The exactness
// contract — kernel accumulator state bit-identical to the map-based
// reference path on every input — is enforced three ways: fixture-driven
// unit tests here, the engine differential harness (7500+ randomized
// cases plus kernel-adversarial families), and FuzzScanKernel below,
// which fuzzes the dataset shape itself (dictionary sizes, attribute
// kinds, missing values, scales) alongside record positions and scores.

import (
	"fmt"
	"testing"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// kernelPair builds one kernel-enabled and one reference accumulator over
// the same database and candidate set.
func kernelPair(db *dataset.DB, keys []Key) (kern, ref *Accumulator) {
	kb := &Builder{DB: db}
	rb := &Builder{DB: db, DisableKernel: true}
	return kb.NewAccumulator(query.Description{}, keys), rb.NewAccumulator(query.Description{}, keys)
}

// assertAccEqual compares complete accumulator state: digests of every
// candidate snapshot, per-candidate record totals, and the shared-scan
// visit counter.
func assertAccEqual(t *testing.T, kern, ref *Accumulator, keys []Key, label string) {
	t.Helper()
	if g, w := accDigest(kern, keys), accDigest(ref, keys); g != w {
		t.Fatalf("%s: kernel digest diverges from reference\n got: %s\nwant: %s", label, g, w)
	}
	for _, k := range keys {
		if kern.NumRecords(k) != ref.NumRecords(k) {
			t.Fatalf("%s: NumRecords(%v) %d vs %d", label, k, kern.NumRecords(k), ref.NumRecords(k))
		}
	}
	if kern.RecordVisits() != ref.RecordVisits() {
		t.Fatalf("%s: RecordVisits %d vs %d", label, kern.RecordVisits(), ref.RecordVisits())
	}
}

// TestKernelSelection pins the dispatch rule: kernel on frozen databases,
// reference when disabled or unfrozen.
func TestKernelSelection(t *testing.T) {
	db, keys := fuzzFixture(nil)
	if acc := (&Builder{DB: db}).NewAccumulator(query.Description{}, keys); !acc.kernel {
		t.Fatal("frozen DB: kernel must be selected")
	}
	if acc := (&Builder{DB: db, DisableKernel: true}).NewAccumulator(query.Description{}, keys); acc.kernel {
		t.Fatal("DisableKernel: kernel must not be selected")
	}
}

// TestKernelMatchesReferenceOnFixture scans the shared fixture whole, as a
// strict subset, with repeated positions, and empty — kernel and reference
// must agree bit for bit after every batch.
func TestKernelMatchesReferenceOnFixture(t *testing.T) {
	db, keys := fuzzFixture(nil)
	n := db.Ratings.Len()
	full := make([]int32, n)
	for i := range full {
		full[i] = int32(i)
	}
	cases := map[string][]int32{
		"full":     full,
		"empty":    {},
		"single":   {int32(n / 2)},
		"subset":   full[: n/3 : n/3],
		"repeats":  {0, 0, 5, 5, 5, int32(n - 1), int32(n - 1), 3},
		"reversed": {int32(n - 1), 7, 3, 1, 0},
	}
	for name, records := range cases {
		kern, ref := kernelPair(db, keys)
		kern.Update(records)
		ref.Update(records)
		assertAccEqual(t, kern, ref, keys, name)
	}
}

// TestKernelMultiBatchAndRemove drives the phased-engine shape: several
// Update batches with a candidate Remove in between. The kernel must stay
// exact across batches (its scratch must fold and re-zero every call) and
// must stop accumulating removed candidates exactly like the reference.
func TestKernelMultiBatchAndRemove(t *testing.T) {
	db, keys := fuzzFixture(nil)
	n := db.Ratings.Len()
	kern, ref := kernelPair(db, keys)
	batch := func(lo, hi int) []int32 {
		out := make([]int32, 0, hi-lo)
		for i := lo; i < hi; i++ {
			out = append(out, int32(i))
		}
		return out
	}
	kern.Update(batch(0, n/3))
	ref.Update(batch(0, n/3))
	kern.Remove(keys[0])
	ref.Remove(keys[0])
	kern.Update(batch(n/3, 2*n/3))
	ref.Update(batch(n/3, 2*n/3))
	kern.Update(batch(2*n/3, n))
	ref.Update(batch(2*n/3, n))
	assertAccEqual(t, kern, ref, keys[1:], "after remove + 3 batches")
	if kern.Snapshot(keys[0]) != nil {
		t.Fatal("removed candidate still has a snapshot")
	}
}

// TestKernelScratchDrained pins the scratch invariant Merge and Snapshot
// rely on: after Update returns, every dense block is all-zero and every
// touched bitset is empty.
func TestKernelScratchDrained(t *testing.T) {
	db, keys := fuzzFixture(nil)
	acc := (&Builder{DB: db}).NewAccumulator(query.Description{}, keys)
	records := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	acc.Update(records)
	for _, ps := range acc.byAttr {
		for _, p := range ps {
			for i, c := range p.ks.dense {
				if c != 0 {
					t.Fatalf("candidate %v: dense[%d]=%d after Update", p.key, i, c)
				}
			}
			if p.ks.touched != nil && p.ks.touched.Count() != 0 {
				t.Fatalf("candidate %v: touched bitset not drained", p.key)
			}
		}
	}
}

// TestKernelUnfrozenFallsBack: an unfrozen database has no columnar
// projections; the accumulator must silently use the reference path and
// still match a frozen kernel scan of the same data.
func TestKernelUnfrozenFallsBack(t *testing.T) {
	build := func(freeze bool) *dataset.DB {
		rs := dataset.MustSchema(dataset.Attribute{Name: "g", Kind: dataset.Atomic})
		is := dataset.MustSchema(dataset.Attribute{Name: "tag", Kind: dataset.MultiValued})
		reviewers := dataset.NewEntityTable("reviewers", rs)
		items := dataset.NewEntityTable("items", is)
		for i := 0; i < 4; i++ {
			reviewers.AppendRow("u", map[string]string{"g": fmt.Sprintf("g%d", i%3)}, nil)
			items.AppendRow("i", nil, map[string][]string{"tag": {"a", fmt.Sprintf("t%d", i)}})
		}
		rt, err := dataset.NewRatingTable(dataset.Dimension{Name: "overall", Scale: 4})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 12; r++ {
			rt.Append(r%4, (r*3)%4, []dataset.Score{dataset.Score(r % 5)})
		}
		db := dataset.NewDB("k", reviewers, items, rt)
		if freeze {
			if err := db.Freeze(); err != nil {
				t.Fatal(err)
			}
		}
		return db
	}
	keys := []Key{
		{Side: query.ReviewerSide, Attr: "g", Dim: 0},
		{Side: query.ItemSide, Attr: "tag", Dim: 0},
	}
	records := []int32{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}

	unfrozen := (&Builder{DB: build(false)}).NewAccumulator(query.Description{}, keys)
	if unfrozen.kernel {
		t.Fatal("unfrozen DB must not select the kernel")
	}
	unfrozen.Update(records)

	frozen := (&Builder{DB: build(true)}).NewAccumulator(query.Description{}, keys)
	if !frozen.kernel {
		t.Fatal("frozen DB must select the kernel")
	}
	frozen.Update(records)

	if g, w := accDigest(frozen, keys), accDigest(unfrozen, keys); g != w {
		t.Fatalf("frozen kernel scan diverges from unfrozen reference scan\n got: %s\nwant: %s", g, w)
	}
}

// fuzzShapeDB builds a database whose shape — table sizes, dictionary
// sizes (including ids well past the reference path's initial counter
// capacity), missing values, empty value sets, scales — is driven by the
// fuzzer's shape bytes. Deterministic in its input.
func fuzzShapeDB(t *testing.T, shape []byte) (*dataset.DB, []Key) {
	t.Helper()
	at := func(i int) byte {
		if len(shape) == 0 {
			return 0
		}
		return shape[i%len(shape)]
	}
	nRev := 1 + int(at(0))%6
	nItem := 1 + int(at(1))%5
	scaleA := 2 + int(at(2))%8
	scaleB := 2 + int(at(3))%4
	nRec := 1 + int(at(4))%64

	rs := dataset.MustSchema(
		dataset.Attribute{Name: "g", Kind: dataset.Atomic},
		dataset.Attribute{Name: "tags", Kind: dataset.MultiValued},
	)
	is := dataset.MustSchema(
		dataset.Attribute{Name: "city", Kind: dataset.Atomic},
		dataset.Attribute{Name: "cuisine", Kind: dataset.MultiValued},
	)
	reviewers := dataset.NewEntityTable("reviewers", rs)
	items := dataset.NewEntityTable("items", is)
	cur := 5
	next := func() int { v := int(at(cur)); cur++; return v }
	for u := 0; u < nRev; u++ {
		g := ""
		if v := next() % 5; v > 0 {
			g = fmt.Sprintf("g%d", v)
		}
		var tags []string
		for k := next() % 4; k > 0; k-- {
			tags = append(tags, fmt.Sprintf("t%d", next()%7))
		}
		if _, err := reviewers.AppendRow(fmt.Sprintf("u%d", u),
			map[string]string{"g": g}, map[string][]string{"tags": tags}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < nItem; i++ {
		city := ""
		// A wide dictionary: high value ids reach records even when only a
		// few rows exist, exercising the reference growth path vs the
		// kernel's dict-sized dense block.
		if v := next() % 40; v > 0 {
			city = fmt.Sprintf("c%d", v)
		}
		var cs []string
		for k := next() % 5; k > 0; k-- {
			cs = append(cs, fmt.Sprintf("k%d", next()%25))
		}
		if _, err := items.AppendRow(fmt.Sprintf("i%d", i),
			map[string]string{"city": city}, map[string][]string{"cuisine": cs}); err != nil {
			t.Fatal(err)
		}
	}
	rt, err := dataset.NewRatingTable(
		dataset.Dimension{Name: "a", Scale: scaleA},
		dataset.Dimension{Name: "b", Scale: scaleB},
	)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < nRec; r++ {
		if err := rt.Append(next()%nRev, next()%nItem, []dataset.Score{
			dataset.Score(next() % (scaleA + 1)), // 0 = missing
			dataset.Score(next() % (scaleB + 1)),
		}); err != nil {
			t.Fatal(err)
		}
	}
	db := dataset.NewDB("fuzzshape", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	var keys []Key
	for dim := 0; dim < 2; dim++ {
		keys = append(keys,
			Key{Side: query.ReviewerSide, Attr: "g", Dim: dim},
			Key{Side: query.ReviewerSide, Attr: "tags", Dim: dim},
			Key{Side: query.ItemSide, Attr: "city", Dim: dim},
			Key{Side: query.ItemSide, Attr: "cuisine", Dim: dim},
		)
	}
	return db, keys
}

// FuzzScanKernel fuzzes the dataset shape (dictionary sizes, missing
// values, scales) and the record selection (positions with repeats,
// scores) together, asserting the kernel's accumulator state is
// bit-identical to the map-based reference path — one-shot and split into
// two batches — and never panics.
func FuzzScanKernel(f *testing.F) {
	f.Add([]byte{3, 2, 4, 2, 20, 1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{0, 1, 2, 3, 4, 5})
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 1, 1, 1, 1, 0}, []byte{0, 0, 0, 0})
	f.Add([]byte{5, 4, 7, 3, 63, 39, 17, 250, 128, 9, 33, 200, 5, 81}, []byte{63, 63, 0, 1, 17, 42, 250})
	f.Add([]byte{2, 3, 2, 2, 8, 255, 254, 253, 0, 0, 0, 7}, []byte{7, 6, 5, 4, 3, 2, 1, 0})

	f.Fuzz(func(t *testing.T, shape []byte, recs []byte) {
		db, keys := fuzzShapeDB(t, shape)
		n := db.Ratings.Len()
		records := make([]int32, len(recs))
		for i, b := range recs {
			records[i] = int32(int(b) % n)
		}

		kern, ref := kernelPair(db, keys)
		kern.Update(records)
		ref.Update(records)
		assertAccEqual(t, kern, ref, keys, "one-shot")

		// The same records split into two kernel batches must land in the
		// same state: the scratch fold must be complete after every call.
		split := (&Builder{DB: db}).NewAccumulator(query.Description{}, keys)
		mid := len(records) / 2
		split.Update(records[:mid])
		split.Update(records[mid:])
		assertAccEqual(t, split, ref, keys, "two-batch")
	})
}
