package ratingmap

import (
	"fmt"
	"sort"
	"strings"

	"subdex/internal/query"
)

// This file implements deterministic accumulator merging, the substrate of
// the engine's sharded parallel scan: each worker accumulates a private
// shard of the record range (no locks on the per-record hot loop), then the
// shards are merged into the target accumulator *in shard order*. All
// accumulator state is integer histogram counts, so merging is plain
// addition — the merged state is bit-for-bit identical to a sequential scan
// of the concatenated ranges, independent of thread scheduling. The
// differential harness in internal/engine and FuzzMerge below this package
// prove that equivalence on randomized inputs.

// Desc returns the group description the accumulator was created for, so
// the engine can spawn shard accumulators structurally identical to the
// target without re-threading the description.
func (a *Accumulator) Desc() query.Description { return a.desc }

// Merge folds other's partial state into a. Candidates are matched by key:
// counts of shared candidates are added element-wise; candidates present
// only in other are deep-copied into a (registered at the end of a's key
// order, preserving other's order). Both accumulators must observe the same
// database — merging shards of one group's record range is the intended
// use. Merge is exact: all state is integer counts, so
//
//	Merge(accumulate(r[:i]), accumulate(r[i:])) == accumulate(r)
//
// for every split point i, bit for bit.
func (a *Accumulator) Merge(other *Accumulator) {
	for _, k := range other.order {
		op := other.find(k)
		if op == nil {
			continue // unreachable: order and byAttr are kept in sync
		}
		p := a.find(k)
		if p == nil {
			ak := attrKey(k.Side, k.Attr)
			cp := &partial{key: k, scale: op.scale}
			cp.merge(op)
			a.byAttr[ak] = append(a.byAttr[ak], cp)
			a.order = append(a.order, k)
			continue
		}
		p.merge(op)
	}
	a.recordVisits += other.recordVisits
}

// find returns the partial of a candidate key, or nil.
func (a *Accumulator) find(k Key) *partial {
	for _, cand := range a.byAttr[attrKey(k.Side, k.Attr)] {
		if cand.key == k {
			return cand
		}
	}
	return nil
}

// merge adds o's histogram counts into p. Integer addition is associative
// and commutative, so any merge order yields identical counts; the engine
// still merges in shard order so the in-memory layout (counts slice
// lengths, subgroup registration order) is reproducible run-to-run.
func (p *partial) merge(o *partial) {
	if len(o.counts) > len(p.counts) {
		grown := make([][]int, len(o.counts))
		copy(grown, p.counts)
		p.counts = grown
	}
	for v, oc := range o.counts {
		if oc == nil {
			continue
		}
		c := p.counts[v]
		if c == nil {
			c = make([]int, p.scale)
			p.counts[v] = c
			p.nValues++
		}
		for s, n := range oc {
			c[s] += n
		}
	}
	p.nRecords += o.nRecords
}

// NumRecords reports how many scored records the candidate has accumulated
// (0 for unknown candidates). Exposed for the differential test harness and
// the bench's exactness checks.
func (a *Accumulator) NumRecords(k Key) int {
	p := a.find(k)
	if p == nil {
		return 0
	}
	return p.nRecords
}

// Digest renders a canonical, byte-stable fingerprint of a rating map:
// the key, the total record count, and every subgroup's value id and full
// histogram, in subgroup-value order (independent of the display sort).
// Two rating maps digest equally iff their accumulated counts are
// identical — the "byte-identical rating maps" check of the differential
// harness and of cmd/sdebench's BENCH_engine.json exactness field.
func (rm *RatingMap) Digest() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d.%s.dim%d|n=%d|", rm.Side, rm.Attr, rm.Dim, rm.TotalRecords)
	sgs := append([]Subgroup(nil), rm.Subgroups...)
	sort.Slice(sgs, func(i, j int) bool { return sgs[i].Value < sgs[j].Value })
	for _, sg := range sgs {
		fmt.Fprintf(&b, "%d:%v;", sg.Value, sg.Counts)
	}
	return b.String()
}

// DigestMaps digests a whole result set in order, newline-separated.
func DigestMaps(maps []*RatingMap) string {
	var b strings.Builder
	for _, rm := range maps {
		b.WriteString(rm.Digest())
		b.WriteByte('\n')
	}
	return b.String()
}
