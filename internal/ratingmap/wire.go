// Versioned compact-binary wire codec for partial accumulators — the
// payload a cluster worker ships back to the coordinator (see
// internal/cluster). The format serializes exactly the state Merge
// consumes (per-candidate integer histograms plus the shared-scan visit
// counter), so decode-then-Merge at the coordinator is bit-for-bit
// equivalent to having run the worker's scan locally.
//
// Frame layout (version 1), all integers unsigned varints unless noted:
//
//	"SDXA"                         4-byte magic
//	version                        1 byte (= 1)
//	recordVisits
//	nKeys
//	nKeys × {
//	  side                         1 byte (0 = reviewer, 1 = item)
//	  len(attr), attr bytes
//	  dim
//	  scale
//	  nRecords
//	  nValues
//	  nValues × {                  strictly ascending ValueID order
//	    valueID
//	    scale × count
//	  }
//	}
//	checksum                       8 bytes, big-endian FNV-1a 64 of
//	                               everything preceding it
//
// Decoding is strict: bad magic/version/checksum, non-ascending or
// duplicate value ids, scale or dimension disagreeing with the builder's
// database schema, per-key record counts that do not equal the histogram
// mass, trailing bytes, or any cap violation all return an error — never
// a panic and never an unbounded allocation — which FuzzPartialCodec
// (wire_test.go) enforces on arbitrary input.
package ratingmap

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// WireVersion is the current partial-accumulator frame version. A
// version bump is a cluster-wide flag day: coordinators reject frames of
// any other version, which together with the engine-config fingerprint
// check keeps mixed-version clusters from silently merging incompatible
// state.
const WireVersion = 1

const (
	wireMagic       = "SDXA"
	wireHeaderLen   = len(wireMagic) + 1
	wireChecksumLen = 8

	// Decode caps: each bounds an attacker- (or bitflip-) controlled
	// allocation before it happens. All sit far above anything the
	// datasets in internal/gen produce while keeping the worst-case
	// allocation for a corrupt frame small.
	maxWireVisits  = int(1) << 47
	maxWireKeys    = 1 << 16
	maxWireAttrLen = 1 << 10
	maxWireScale   = 64
	maxWireValueID = 1 << 21
	maxWireCount   = int(1) << 40
)

// EncodeWire serializes the accumulator's mergeable state as one
// checksummed frame. Keys are written in registration order and value
// histograms in ascending ValueID order, so equal accumulator states
// produce identical bytes (encode is a canonical form: decode∘encode is
// the identity on frames encode produced).
func (a *Accumulator) EncodeWire() []byte {
	buf := make([]byte, 0, 256)
	buf = append(buf, wireMagic...)
	buf = append(buf, WireVersion)
	buf = binary.AppendUvarint(buf, uint64(a.recordVisits))
	keys := make([]Key, 0, len(a.order))
	for _, k := range a.order {
		if a.find(k) != nil { // unreachable guard: order and byAttr are kept in sync
			keys = append(keys, k)
		}
	}
	buf = binary.AppendUvarint(buf, uint64(len(keys)))
	for _, k := range keys {
		p := a.find(k)
		buf = append(buf, byte(k.Side))
		buf = binary.AppendUvarint(buf, uint64(len(k.Attr)))
		buf = append(buf, k.Attr...)
		buf = binary.AppendUvarint(buf, uint64(k.Dim))
		buf = binary.AppendUvarint(buf, uint64(p.scale))
		buf = binary.AppendUvarint(buf, uint64(p.nRecords))
		buf = binary.AppendUvarint(buf, uint64(p.nValues))
		for v, c := range p.counts {
			if c == nil {
				continue
			}
			buf = binary.AppendUvarint(buf, uint64(v))
			for _, n := range c {
				buf = binary.AppendUvarint(buf, uint64(n))
			}
		}
	}
	h := fnv.New64a()
	h.Write(buf)
	return h.Sum(buf)
}

// wireReader is a fail-fast cursor over a frame payload: the first
// malformed read latches err and every later read returns zero, so
// decode loops can defer a single error check.
type wireReader struct {
	b   []byte
	off int
	err error
}

func (r *wireReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

func (r *wireReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("ratingmap: wire frame truncated or overflowing at %s (offset %d)", what, r.off)
		return 0
	}
	r.off += n
	return v
}

func (r *wireReader) byte(what string) byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("ratingmap: wire frame truncated at %s (offset %d)", what, r.off)
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *wireReader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.b) {
		r.fail("ratingmap: wire frame truncated at %s (offset %d)", what, r.off)
		return nil
	}
	v := r.b[r.off : r.off+n]
	r.off += n
	return v
}

// DecodeWire parses one frame produced by EncodeWire into a fresh
// accumulator over the builder's database, carrying desc for snapshots
// (the frame itself is description-free — the coordinator knows which
// group it asked the worker to scan). Every schema-facing field is
// validated against b.DB, so a frame from a worker holding a different
// dataset fails here even if its checksum is intact.
func (b *Builder) DecodeWire(desc query.Description, frame []byte) (*Accumulator, error) {
	if len(frame) < wireHeaderLen+wireChecksumLen {
		return nil, fmt.Errorf("ratingmap: wire frame too short (%d bytes)", len(frame))
	}
	if string(frame[:len(wireMagic)]) != wireMagic {
		return nil, fmt.Errorf("ratingmap: bad wire magic %q", frame[:len(wireMagic)])
	}
	if v := frame[len(wireMagic)]; v != WireVersion {
		return nil, fmt.Errorf("ratingmap: unsupported wire version %d (want %d)", v, WireVersion)
	}
	payload := frame[:len(frame)-wireChecksumLen]
	h := fnv.New64a()
	h.Write(payload)
	if got, want := binary.BigEndian.Uint64(frame[len(frame)-wireChecksumLen:]), h.Sum64(); got != want {
		return nil, fmt.Errorf("ratingmap: wire checksum mismatch (got %016x, want %016x)", got, want)
	}
	if b.DB == nil {
		return nil, fmt.Errorf("ratingmap: DecodeWire needs a builder with a database")
	}
	dims := b.DB.Ratings.Dimensions

	r := &wireReader{b: payload, off: wireHeaderLen}
	visits := r.uvarint("recordVisits")
	if visits > uint64(maxWireVisits) {
		return nil, fmt.Errorf("ratingmap: wire recordVisits %d exceeds cap", visits)
	}
	nKeys := r.uvarint("nKeys")
	if nKeys > maxWireKeys {
		return nil, fmt.Errorf("ratingmap: wire key count %d exceeds cap", nKeys)
	}
	acc := &Accumulator{
		db:     b.DB,
		byAttr: make(map[string][]*partial),
		desc:   desc,
		kernel: !b.DisableKernel && b.DB.Frozen(),
	}
	for i := uint64(0); i < nKeys && r.err == nil; i++ {
		side := r.byte("side")
		if side > 1 {
			return nil, fmt.Errorf("ratingmap: wire key %d has invalid side %d", i, side)
		}
		alen := r.uvarint("attr length")
		if alen > maxWireAttrLen {
			return nil, fmt.Errorf("ratingmap: wire key %d attr length %d exceeds cap", i, alen)
		}
		attr := string(r.bytes(int(alen), "attr"))
		dim := r.uvarint("dim")
		if r.err == nil && dim >= uint64(len(dims)) {
			return nil, fmt.Errorf("ratingmap: wire key %d dimension %d outside schema (%d dims)", i, dim, len(dims))
		}
		scale := r.uvarint("scale")
		if r.err == nil && (scale == 0 || scale > maxWireScale) {
			return nil, fmt.Errorf("ratingmap: wire key %d scale %d out of range", i, scale)
		}
		if r.err == nil && int(scale) != dims[dim].Scale {
			return nil, fmt.Errorf("ratingmap: wire key %d scale %d disagrees with schema scale %d for dimension %q",
				i, scale, dims[dim].Scale, dims[dim].Name)
		}
		nRecords := r.uvarint("nRecords")
		if nRecords > uint64(maxWireCount) {
			return nil, fmt.Errorf("ratingmap: wire key %d record count %d exceeds cap", i, nRecords)
		}
		nValues := r.uvarint("nValues")
		if nValues > maxWireValueID {
			return nil, fmt.Errorf("ratingmap: wire key %d value count %d exceeds cap", i, nValues)
		}
		if r.err != nil {
			break
		}
		k := Key{Side: query.Side(side), Attr: attr, Dim: int(dim)}
		if acc.find(k) != nil {
			return nil, fmt.Errorf("ratingmap: wire frame repeats key %s", k)
		}
		p := &partial{key: k, scale: int(scale)}
		prev, mass := -1, uint64(0)
		for j := uint64(0); j < nValues && r.err == nil; j++ {
			v := r.uvarint("valueID")
			if r.err != nil {
				break
			}
			if v > maxWireValueID {
				return nil, fmt.Errorf("ratingmap: wire value id %d exceeds cap", v)
			}
			if int(v) <= prev {
				return nil, fmt.Errorf("ratingmap: wire value ids not strictly ascending (%d after %d)", v, prev)
			}
			prev = int(v)
			c := p.histogram(dataset.ValueID(v))
			for s := range c {
				n := r.uvarint("count")
				if n > uint64(maxWireCount) {
					return nil, fmt.Errorf("ratingmap: wire count %d exceeds cap", n)
				}
				c[s] = int(n)
				mass += n
			}
		}
		if r.err != nil {
			break
		}
		if mass != nRecords {
			return nil, fmt.Errorf("ratingmap: wire key %s histogram mass %d disagrees with record count %d",
				k, mass, nRecords)
		}
		p.nRecords = int(nRecords)
		ak := attrKey(k.Side, k.Attr)
		acc.byAttr[ak] = append(acc.byAttr[ak], p)
		acc.order = append(acc.order, k)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("ratingmap: wire frame has %d trailing payload bytes", len(payload)-r.off)
	}
	acc.recordVisits = int(visits)
	return acc, nil
}
