package ratingmap

import "math"

// CriteriaEstimate computes the four bounded criteria of a candidate's
// current partial state directly from the accumulator, without
// materializing a RatingMap (no subgroup structs, no sorting). This is the
// per-phase estimation path of the engine: with tens of candidates times
// ten phases, estimation cost must stay far below scan cost or pruning
// cannot pay for itself. recordScale projects conciseness to the full
// group as in ComputeScoresScaled. ok is false for unknown candidates.
func (a *Accumulator) CriteriaEstimate(k Key, seen *SeenSet, recordScale float64) (Scores, bool) {
	return a.CriteriaEstimateOpt(k, seen, recordScale, PecTVD)
}

// CriteriaEstimateOpt is CriteriaEstimate under an explicit peculiarity
// measure, keeping the pruning estimates consistent with the configured
// exact scoring.
func (a *Accumulator) CriteriaEstimateOpt(k Key, seen *SeenSet, recordScale float64, m PeculiarityMeasure) (s Scores, ok bool) {
	p := a.find(k)
	if p == nil {
		return s, false
	}
	nsub := p.nValues
	if nsub == 0 || p.nRecords == 0 {
		return s, true
	}

	// Pooled distribution.
	pooled := make([]float64, p.scale)
	for _, c := range p.counts {
		if c == nil {
			continue
		}
		for i, v := range c {
			pooled[i] += float64(v)
		}
	}
	total := float64(p.nRecords)
	for i := range pooled {
		pooled[i] /= total
	}

	// Conciseness (projected compaction gain, log-scaled).
	gain := recordScale * total / float64(nsub)
	conc := math.Log1p(gain) / math.Log1p(concGainRef)
	if conc > 1 {
		conc = 1
	}
	s[Conciseness] = conc

	// Agreement (record-weighted subgroup SD) and self peculiarity
	// (support-shrunk max subgroup TVD), one pass per subgroup.
	sdSum := 0.0
	maxTVD := 0.0
	for _, c := range p.counts {
		if c == nil {
			continue
		}
		n := 0
		for _, v := range c {
			n += v
		}
		if n == 0 {
			continue
		}
		fn := float64(n)
		mean := 0.0
		for i, v := range c {
			mean += float64(i+1) * float64(v)
		}
		mean /= fn
		variance := 0.0
		tvd := 0.0
		for i, v := range c {
			d := float64(i+1) - mean
			variance += float64(v) * d * d
			tvd += math.Abs(float64(v)/fn - pooled[i])
		}
		sdSum += fn * math.Sqrt(variance/fn)
		var t float64
		if m == PecTVD {
			t = tvd / 2
		} else {
			// Non-TVD measures need the subgroup distribution explicitly.
			sub := make([]float64, len(c))
			for i, v := range c {
				sub[i] = float64(v) / fn
			}
			t = pecDist(sub, pooled, m)
		}
		t *= fn / (fn + pecSupport)
		if t > maxTVD {
			maxTVD = t
		}
	}
	s[Agreement] = 1 / (1 + sdSum/total)
	s[PecSelf] = maxTVD

	// Global peculiarity against the seen pooled distributions.
	s[PecGlobal] = seen.maxDistAgainst(pooled, m)
	return s, true
}

// maxDistAgainst returns the maximum peculiarity distance between dist and
// the pooled distributions of the seen maps (0 with no history or only
// incomparable scales).
func (s *SeenSet) maxDistAgainst(dist []float64, m PeculiarityMeasure) float64 {
	if s == nil {
		return 0
	}
	maxD := 0.0
	for _, d := range s.dists {
		if len(d) != len(dist) {
			continue
		}
		var t float64
		if m == PecTVD {
			sum := 0.0
			for i := range d {
				sum += math.Abs(d[i] - dist[i])
			}
			t = sum / 2
		} else {
			t = pecDist(dist, d, m)
		}
		if t > maxD {
			maxD = t
		}
	}
	return maxD
}
