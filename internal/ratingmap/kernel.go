package ratingmap

// The fused columnar scan kernel: the raw-speed half of ROADMAP open item 4.
//
// The reference path (updateReference) walks every record through an
// attribute lookup, a kind switch, a MultiValues slice-of-slices chase and
// the map-shaped partial.add — per-record branches and pointer hops that
// dominate cold scans now that parallelism and caching are in place. The
// kernel evaluates group membership and accumulates rating histograms in
// one cache-friendly pass over flat columnar arrays instead:
//
//   - dataset.AttrColumn supplies per-attribute dictionary-coded value
//     columns as flat arrays (atomic: one id per entity row; multi-valued:
//     CSR runs in one shared backing array) — two array indexings reach a
//     record's value ids, no interface dispatch, no [][]ValueID chase;
//   - each partial accumulates into a dense [NValues × (scale+1)] int32
//     counter block: the inner loop is branch-free, because missing values
//     (id 0) land in the block's row 0 and missing scores (score 0) in each
//     row's column 0, both discarded by the fold instead of branched around
//     per record;
//   - a query.Bitset of touched value ids — set branchlessly alongside each
//     counter increment — gives the fold its membership test: only rows the
//     scan actually wrote are folded into (and re-zeroed out of) the
//     map-shaped partial state, so scans of filtered subsets touching few
//     values pay for few rows;
//   - the kind dispatch is hoisted out of the record loop entirely: the
//     Atomic and MultiValued scans are separate tight loops chosen once per
//     attribute per Update call.
//
// Exactness is the contract: the fold reuses partial.histogram, the same
// entry-creation bookkeeping as the reference's per-record add, so after
// every Update call the kernel's accumulator state is bit-for-bit
// identical to the reference's — same Digest, same NumRecords, same
// RecordVisits. The engine differential harness (7500+ randomized cases
// plus kernel-adversarial families) and FuzzScanKernel enforce it.
//
// Counter width: the block is int32, folded into the int-typed partial
// counts after every Update call, so a single cell would have to receive
// more than 2^31-1 increments within ONE Update batch to overflow —
// batches are record slices (and the engine phases them), so the bound is
// the record-slice length, far below any dataset this process can hold.

import (
	"subdex/internal/dataset"
	"subdex/internal/query"
)

// kernelScratch is a partial's reusable dense accumulation state.
type kernelScratch struct {
	// dense is the [NValues × (scale+1)] counter block: cell v*(scale+1)+s
	// counts records of subgroup value v with score s, including the
	// discard row v=0 (missing value) and discard column s=0 (missing
	// score). Zero outside Update.
	dense []int32
	// touched marks the value ids whose block rows were written this
	// Update call; the fold visits exactly these rows. Empty outside
	// Update.
	touched *query.Bitset
}

// ensure sizes the scratch for a dictionary of nValues ids. Blocks only
// grow; a shard accumulator allocates each block once per candidate. The
// touched bitset is only materialized for tracked scans (track=true) —
// sweep-folded scans never read it.
func (ks *kernelScratch) ensure(nValues, scale int, track bool) {
	if need := nValues * (scale + 1); len(ks.dense) < need {
		ks.dense = make([]int32, need)
	}
	if track && (ks.touched == nil || ks.touched.Universe() < nValues) {
		ks.touched = query.NewBitset(nValues)
	}
}

// updateKernel is the fused columnar counterpart of updateReference.
func (a *Accumulator) updateKernel(records []int32) {
	//subdex:orderinsensitive each iteration mutates only its own attribute's partials; records are scanned in slice order within each, so attribute order cannot leak into any histogram or discovery order
	for ak, ps := range a.byAttr {
		t, rowOf, ai := a.resolveAttr(ak)
		if ai < 0 {
			continue
		}
		a.recordVisits += len(records)
		col := t.Column(ai)
		if col == nil {
			// Unfrozen table (defensive: kernel is only enabled on frozen
			// databases) — the reference scan needs no projections.
			a.refScanAttr(t, rowOf, ai, records, ps)
			continue
		}
		for _, p := range ps {
			// Fold strategy: sweeping every dense row costs one pass over
			// NValues×(scale+1) cells, tracking touched values costs one
			// Bitset.Set per counter increment (~20% of scan time). Sweep
			// unless the dictionary is large relative to the batch — then
			// most rows are untouched and the bitset pays for itself.
			track := col.NValues*(p.scale+1) > 4*len(records)+256
			p.ks.ensure(col.NValues, p.scale, track)
			scores := a.db.Ratings.Scores[p.key.Dim]
			switch {
			case col.Kind == dataset.Atomic && track:
				scanAtomic(p.ks, p.scale, col.Values, rowOf, scores, records)
			case col.Kind == dataset.Atomic:
				scanAtomicSweep(p.ks.dense, p.scale, col.Values, rowOf, scores, records)
			case track:
				scanMulti(p.ks, p.scale, col.Values, col.Offsets, rowOf, scores, records)
			default:
				scanMultiSweep(p.ks.dense, p.scale, col.Values, col.Offsets, rowOf, scores, records)
			}
			if track {
				p.fold()
			} else {
				p.foldSweep(col.NValues)
			}
		}
	}
}

// scanAtomic accumulates an atomic attribute: per record, two flat array
// indexings (entity row, value id) and one branch-free counter increment.
func scanAtomic(ks kernelScratch, scale int, vals []dataset.ValueID, rowOf []int32, scores []dataset.Score, records []int32) {
	dense, touched := ks.dense, ks.touched
	stride := scale + 1
	for _, r := range records {
		v := int(vals[rowOf[r]])
		dense[v*stride+int(scores[r])]++
		touched.Set(v)
	}
}

// scanMulti accumulates a multi-valued attribute over its CSR runs: the
// score load and row resolution are hoisted per record, the value loop
// walks one contiguous id run.
func scanMulti(ks kernelScratch, scale int, vals []dataset.ValueID, offs []int32, rowOf []int32, scores []dataset.Score, records []int32) {
	dense, touched := ks.dense, ks.touched
	stride := scale + 1
	for _, r := range records {
		row := rowOf[r]
		s := int(scores[r])
		for i := offs[row]; i < offs[row+1]; i++ {
			v := int(vals[i])
			dense[v*stride+s]++
			touched.Set(v)
		}
	}
}

// scanAtomicSweep is scanAtomic without touched tracking: one increment
// per record and nothing else — the sweep fold visits every dense row.
func scanAtomicSweep(dense []int32, scale int, vals []dataset.ValueID, rowOf []int32, scores []dataset.Score, records []int32) {
	stride := scale + 1
	for _, r := range records {
		dense[int(vals[rowOf[r]])*stride+int(scores[r])]++
	}
}

// scanMultiSweep is scanMulti without touched tracking.
func scanMultiSweep(dense []int32, scale int, vals []dataset.ValueID, offs []int32, rowOf []int32, scores []dataset.Score, records []int32) {
	stride := scale + 1
	for _, r := range records {
		row := rowOf[r]
		s := int(scores[r])
		for i := offs[row]; i < offs[row+1]; i++ {
			dense[int(vals[i])*stride+s]++
		}
	}
}

// foldRow drains one dense row into the map-shaped partial state and
// re-zeroes it. Row 0 (missing value) and each row's column 0 (missing
// score) are discarded — the branch the scan skipped per record happens
// here, once per folded value. Entry creation goes through
// partial.histogram, so the folded state is bit-identical to what the
// reference's per-record adds would have produced.
func (p *partial) foldRow(v int) {
	dense := p.ks.dense
	stride := p.scale + 1
	base := v * stride
	if v == 0 {
		// Missing-value discard row: just re-zero it.
		clear(dense[base : base+stride])
		return
	}
	added := 0
	for s := 1; s <= p.scale; s++ {
		added += int(dense[base+s])
	}
	if added > 0 {
		c := p.histogram(dataset.ValueID(v))
		for s := 1; s <= p.scale; s++ {
			c[s-1] += int(dense[base+s])
		}
		p.nRecords += added
	}
	clear(dense[base : base+stride])
}

// fold visits exactly the rows a tracked scan touched, in ascending value
// order — the same order the sweep fold walks, so both produce identical
// entry-creation sequences.
func (p *partial) fold() {
	p.ks.touched.Range(p.foldRow)
	p.ks.touched.Reset()
}

// foldSweep visits every dense row of the dictionary, touched or not;
// untouched rows are all-zero and fold to nothing.
func (p *partial) foldSweep(nValues int) {
	for v := 0; v < nValues; v++ {
		p.foldRow(v)
	}
}
