package ratingmap

import (
	"bytes"
	"fmt"
	"testing"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// wireAcc accumulates the given record positions over the fuzz fixture
// database for a key subset.
func wireAcc(db *dataset.DB, keys []Key, records []int32) *Accumulator {
	b := Builder{DB: db}
	acc := b.NewAccumulator(query.Description{}, keys)
	acc.Update(records)
	return acc
}

// wireRecordSets enumerates record selections covering the edges the
// codec has to preserve: empty, single-record, dense, strided, and
// repeated-visit states.
func wireRecordSets(n int32) [][]int32 {
	all := make([]int32, n)
	for i := range all {
		all[i] = int32(i)
	}
	evens := make([]int32, 0, n/2)
	for i := int32(0); i < n; i += 2 {
		evens = append(evens, i)
	}
	return [][]int32{
		nil,
		{0},
		{n - 1},
		all,
		evens,
		append(append([]int32{}, all...), all...), // every record folded twice
	}
}

// TestWireRoundTrip: decode(encode(acc)) must reproduce the complete
// mergeable state — every candidate's snapshot digest, per-key record
// counts, key registration order, and the shared-scan visit counter.
func TestWireRoundTrip(t *testing.T) {
	db, keys := fuzzFixture(t)
	b := Builder{DB: db}
	for ki, keySet := range [][]Key{keys, keys[:1], keys[3:5], nil} {
		for ri, records := range wireRecordSets(64) {
			acc := wireAcc(db, keySet, records)
			frame := acc.EncodeWire()
			got, err := b.DecodeWire(query.Description{}, frame)
			if err != nil {
				t.Fatalf("keys[%d] records[%d]: DecodeWire: %v", ki, ri, err)
			}
			if len(got.Keys()) != len(acc.Keys()) {
				t.Fatalf("keys[%d] records[%d]: key count %d, want %d", ki, ri, len(got.Keys()), len(acc.Keys()))
			}
			for i, k := range acc.Keys() {
				if got.Keys()[i] != k {
					t.Fatalf("keys[%d] records[%d]: key order diverged at %d: %v vs %v", ki, ri, i, got.Keys()[i], k)
				}
				if g, w := got.NumRecords(k), acc.NumRecords(k); g != w {
					t.Fatalf("keys[%d] records[%d]: NumRecords(%v) = %d, want %d", ki, ri, k, g, w)
				}
			}
			if g, w := got.RecordVisits(), acc.RecordVisits(); g != w {
				t.Fatalf("keys[%d] records[%d]: RecordVisits = %d, want %d", ki, ri, g, w)
			}
			if g, w := accDigest(got, got.Keys()), accDigest(acc, acc.Keys()); g != w {
				t.Fatalf("keys[%d] records[%d]: digest diverged\n got: %q\nwant: %q", ki, ri, g, w)
			}
			// Encode is canonical: re-encoding the decoded state must
			// reproduce the frame byte for byte.
			if !bytes.Equal(got.EncodeWire(), frame) {
				t.Fatalf("keys[%d] records[%d]: re-encode is not byte-identical", ki, ri)
			}
		}
	}
}

// TestWireMergeEquivalence simulates the coordinator: partials scanned
// over contiguous record ranges, shipped through the codec, and merged
// in partition order must equal one local scan of the concatenation.
func TestWireMergeEquivalence(t *testing.T) {
	db, keys := fuzzFixture(t)
	b := Builder{DB: db}
	all := make([]int32, 64)
	for i := range all {
		all[i] = int32(i)
	}
	want := wireAcc(db, keys, all)
	for _, parts := range []int{1, 2, 3, 5, 64, 200} {
		master := b.NewAccumulator(query.Description{}, keys)
		for p := 0; p < parts; p++ {
			lo, hi := p*len(all)/parts, (p+1)*len(all)/parts
			if lo >= hi {
				continue
			}
			frame := wireAcc(db, keys, all[lo:hi]).EncodeWire()
			dec, err := b.DecodeWire(query.Description{}, frame)
			if err != nil {
				t.Fatalf("parts=%d p=%d: DecodeWire: %v", parts, p, err)
			}
			master.Merge(dec)
		}
		if g, w := accDigest(master, master.Keys()), accDigest(want, want.Keys()); g != w {
			t.Fatalf("parts=%d: merged digest diverged from sequential scan", parts)
		}
		if g, w := master.RecordVisits(), want.RecordVisits(); g != w {
			t.Fatalf("parts=%d: RecordVisits = %d, want %d", parts, g, w)
		}
	}
}

// TestWireRejectsCorrupt flips and truncates a valid frame every way a
// network or a buggy peer could: each must fail cleanly, never panic.
func TestWireRejectsCorrupt(t *testing.T) {
	db, keys := fuzzFixture(t)
	b := Builder{DB: db}
	all := make([]int32, 64)
	for i := range all {
		all[i] = int32(i)
	}
	frame := wireAcc(db, keys, all).EncodeWire()
	if _, err := b.DecodeWire(query.Description{}, frame); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, err := b.DecodeWire(query.Description{}, frame[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	for i := range frame {
		mut := append([]byte{}, frame...)
		mut[i] ^= 0x01
		if _, err := b.DecodeWire(query.Description{}, mut); err == nil {
			t.Fatalf("single-byte flip at offset %d accepted", i)
		}
	}
	for i := range frame {
		if _, err := b.DecodeWire(query.Description{}, frame[i:]); err == nil && i != 0 {
			t.Fatalf("frame with %d leading bytes dropped accepted", i)
		}
	}
	if _, err := b.DecodeWire(query.Description{}, append(append([]byte{}, frame...), 0)); err == nil {
		t.Fatal("frame with trailing garbage accepted")
	}
}

// TestWireSchemaGuard: a frame encoded against a database with a
// different rating scale must be rejected by the schema cross-check even
// though its checksum is intact.
func TestWireSchemaGuard(t *testing.T) {
	db, keys := fuzzFixture(t)
	b := Builder{DB: db}
	rs, _ := dataset.NewSchema(dataset.Attribute{Name: "gender"})
	is, _ := dataset.NewSchema(dataset.Attribute{Name: "city"})
	reviewers := dataset.NewEntityTable("reviewers", rs)
	items := dataset.NewEntityTable("items", is)
	reviewers.AppendRow("u", map[string]string{"gender": "F"}, nil)
	items.AppendRow("i", map[string]string{"city": "A"}, nil)
	rt, _ := dataset.NewRatingTable(dataset.Dimension{Name: "overall", Scale: 4})
	rt.Append(0, 0, []dataset.Score{2})
	other := dataset.NewDB("other", reviewers, items, rt)
	if err := other.Freeze(); err != nil {
		t.Fatal(err)
	}
	ob := Builder{DB: other}
	foreign := ob.NewAccumulator(query.Description{},
		[]Key{{Side: query.ReviewerSide, Attr: "gender", Dim: 0}})
	foreign.Update([]int32{0})
	if _, err := b.DecodeWire(query.Description{}, foreign.EncodeWire()); err == nil {
		t.Fatal("frame with scale-4 histograms accepted against a scale-5 schema")
	}
	// Dimension index outside the schema, same mechanics.
	narrow := dataset.NewDB("narrow", reviewers, items, rt)
	if err := narrow.Freeze(); err != nil {
		t.Fatal(err)
	}
	_ = keys
	nb := Builder{DB: narrow}
	wide := wireAcc(db, []Key{{Side: query.ReviewerSide, Attr: "gender", Dim: 1}}, []int32{0, 1, 2})
	if _, err := nb.DecodeWire(query.Description{}, wide.EncodeWire()); err == nil {
		t.Fatal("dimension-1 frame accepted against a one-dimension schema")
	}
}

// FuzzPartialCodec drives DecodeWire with arbitrary bytes: any input
// must either be rejected with an error or decode to a state whose
// re-encoding is a canonical fixed point (encode(decode(x)) decodes to
// the same digests and re-encodes to identical bytes). The checked-in
// corpus under testdata/fuzz/FuzzPartialCodec seeds valid frames plus
// truncated/corrupt variants.
func FuzzPartialCodec(f *testing.F) {
	db, keys := fuzzFixture(f)
	b := Builder{DB: db}
	all := make([]int32, 64)
	for i := range all {
		all[i] = int32(i)
	}
	for _, records := range wireRecordSets(64) {
		f.Add(wireAcc(db, keys, records).EncodeWire())
	}
	valid := wireAcc(db, keys[:3], all).EncodeWire()
	f.Add(valid[:len(valid)/2])                       // truncated
	f.Add(append(append([]byte{}, valid...), 1, 2, 3)) // trailing garbage
	mut := append([]byte{}, valid...)
	mut[len(mut)-1] ^= 0xFF // checksum corruption
	f.Add(mut)
	f.Add([]byte("SDXA"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, frame []byte) {
		acc, err := b.DecodeWire(query.Description{}, frame)
		if err != nil {
			return // rejected without panic: the contract for garbage
		}
		canon := acc.EncodeWire()
		again, err := b.DecodeWire(query.Description{}, canon)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		if g, w := accDigest(again, again.Keys()), accDigest(acc, acc.Keys()); g != w {
			t.Fatalf("digest changed across re-encode\n got: %q\nwant: %q", g, w)
		}
		if again.RecordVisits() != acc.RecordVisits() {
			t.Fatalf("RecordVisits changed across re-encode: %d vs %d", again.RecordVisits(), acc.RecordVisits())
		}
		if !bytes.Equal(again.EncodeWire(), canon) {
			t.Fatal("encode is not a fixed point after one canonicalization")
		}
	})
}

// BenchmarkWireCodec sizes the round trip the cluster pays per partition
// response.
func BenchmarkWireCodec(bm *testing.B) {
	db, keys := fuzzFixture(bm)
	b := Builder{DB: db}
	all := make([]int32, 64)
	for i := range all {
		all[i] = int32(i)
	}
	frame := wireAcc(db, keys, all).EncodeWire()
	bm.ReportMetric(float64(len(frame)), "frame-bytes")
	bm.ResetTimer()
	for i := 0; i < bm.N; i++ {
		acc, err := b.DecodeWire(query.Description{}, frame)
		if err != nil {
			bm.Fatal(err)
		}
		if got := acc.EncodeWire(); len(got) != len(frame) {
			bm.Fatal(fmt.Sprintf("re-encode length %d, want %d", len(got), len(frame)))
		}
	}
}
