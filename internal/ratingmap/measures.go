package ratingmap

import (
	"fmt"
	"math"

	"subdex/internal/stats"
)

// Criterion enumerates the four interestingness criteria whose maximum
// defines the utility of a rating map (§3.2.3).
type Criterion int

const (
	// Conciseness favors maps with a small, human-readable number of
	// subgroups summarizing many records (compaction gain [15]).
	Conciseness Criterion = iota
	// Agreement favors maps whose subgroups contain reviewers who agree
	// among themselves (low within-subgroup dispersion [16]).
	Agreement
	// PecSelf (self peculiarity) favors maps containing a subgroup whose
	// rating distribution deviates from the whole group's (TVD, max over
	// subgroups, following [51]).
	PecSelf
	// PecGlobal (global peculiarity) favors maps whose pooled distribution
	// deviates from previously displayed maps (TVD, max over seen maps).
	PecGlobal

	// NumCriteria is the number of criteria.
	NumCriteria
)

func (c Criterion) String() string {
	switch c {
	case Conciseness:
		return "conciseness"
	case Agreement:
		return "agreement"
	case PecSelf:
		return "self-peculiarity"
	case PecGlobal:
		return "global-peculiarity"
	default:
		return fmt.Sprintf("Criterion(%d)", int(c))
	}
}

// Scores holds one value per criterion, either raw or normalized.
type Scores [NumCriteria]float64

// Best returns the winning criterion and its value — the attribution the
// UI shows when explaining why a rating map was selected (its utility is
// the maximum over criteria).
func (s Scores) Best() (Criterion, float64) {
	best := Criterion(0)
	for c := Criterion(1); c < NumCriteria; c++ {
		if s[c] > s[best] {
			best = c
		}
	}
	return best, s[best]
}

// Aggregation selects how the per-criterion scores combine into a single
// utility. The paper uses Max; Avg and the single-criterion variants exist
// for the §5.2.3 "Utility criteria" ablation.
type Aggregation int

const (
	// AggMax is the paper's utility: the best-captured facet wins.
	AggMax Aggregation = iota
	// AggAvg averages all four criteria (shown inferior in §5.2.3).
	AggAvg
	// AggSingle uses only the criterion set in UtilityConfig.Single.
	AggSingle
)

// PeculiarityMeasure selects the distribution distance behind the two
// peculiarity criteria. The paper's prototype uses total variation; §4.1
// names Kullback-Leibler divergence and the Outlier Function as
// alternatives, implemented here for the ablation benches.
type PeculiarityMeasure int

const (
	// PecTVD is the total variation distance (the paper's choice).
	PecTVD PeculiarityMeasure = iota
	// PecKL is the (smoothed, normalized) Kullback-Leibler divergence.
	PecKL
)

func (m PeculiarityMeasure) String() string {
	switch m {
	case PecTVD:
		return "tvd"
	case PecKL:
		return "kl"
	default:
		return fmt.Sprintf("PeculiarityMeasure(%d)", int(m))
	}
}

// UtilityConfig parameterizes utility computation; the zero value is the
// paper's configuration (max aggregation, TVD peculiarity, dimension
// weighting on).
type UtilityConfig struct {
	Aggregation Aggregation
	Single      Criterion // used when Aggregation == AggSingle
	// Peculiarity selects the distribution distance for the peculiarity
	// criteria (default total variation).
	Peculiarity PeculiarityMeasure
	// DisableDimensionWeights turns Equation 1 off (the Fig. 9 "without
	// weights" arm).
	DisableDimensionWeights bool
	// Normalize applies min-max normalization of each criterion across the
	// candidate set before aggregating, per Somech et al. [51]. The paper
	// needs this because its raw criteria (compaction gain, 1/σ̃) are
	// unbounded; this implementation instead uses bounded forms that
	// already share the [0,1] scale, so normalization defaults to off —
	// min-max normalization would pin every per-criterion winner to
	// exactly 1.0 and collapse the utility ranking into ties.
	Normalize bool
}

// DefaultUtilityConfig returns the paper's configuration with the bounded
// criteria (see Normalize).
func DefaultUtilityConfig() UtilityConfig {
	return UtilityConfig{Aggregation: AggMax}
}

// RawConciseness is the compaction gain Conc(rm) = |g_R| / |rm| of §4.1.
func RawConciseness(rm *RatingMap) float64 {
	if rm.NumSubgroups() == 0 {
		return 0
	}
	return float64(rm.TotalRecords) / float64(rm.NumSubgroups())
}

// concGainRef is the compaction gain (records per bar) mapped to bounded
// conciseness 1.0; gains are log-scaled against it so the criterion
// discriminates across the whole practical range instead of saturating.
// The reference is set high (10⁶) so that ordinary coarse groupings score
// around 0.5 and the peculiarity/agreement criteria — which reach 0.7-1.0
// exactly when something anomalous is on screen — can win the
// max-aggregation; a low reference lets conciseness flood the utility and
// blinds the recommender to anomalies.
const concGainRef = 1_000_000.0

// BoundedConciseness maps the compaction gain |g_R|/|rm| into (0,1] with a
// log transform: log(1+gain)/log(1+concGainRef), clamped at 1. Unlike a
// pure 1/|rm|, this keeps the paper's absolute intent — a single bar over
// five records is NOT concise in the compaction-gain sense — so utilities
// stay comparable across rating groups of different sizes (which
// Equation 2 requires).
func BoundedConciseness(rm *RatingMap) float64 {
	return boundedConcisenessScaled(rm, 1)
}

func boundedConcisenessScaled(rm *RatingMap, recordScale float64) float64 {
	n := rm.NumSubgroups()
	if n == 0 {
		return 0
	}
	gain := recordScale * float64(rm.TotalRecords) / float64(n)
	c := math.Log1p(gain) / math.Log1p(concGainRef)
	if c > 1 {
		c = 1
	}
	return c
}

// RawAgreement is Agr(rm) = 1/σ̃ with σ̃ the average standard deviation of
// the subgroups (§4.1). A zero σ̃ (perfect agreement) returns +Inf; callers
// display the bounded form.
func RawAgreement(rm *RatingMap) float64 {
	sd := avgSubgroupSD(rm)
	if sd == 0 {
		return math.Inf(1)
	}
	return 1 / sd
}

// BoundedAgreement maps agreement into (0,1]: 1/(1+σ̃), monotone in the
// paper's 1/σ̃ and finite at σ̃ = 0.
func BoundedAgreement(rm *RatingMap) float64 {
	return 1 / (1 + avgSubgroupSD(rm))
}

// avgSubgroupSD is σ̃, the average within-subgroup standard deviation. The
// average is record-weighted: the paper's unweighted mean lets singleton
// bars (SD = 0 by construction) pin agreement to its maximum for any
// finely partitioned group, which collapses the utility ranking. Weighting
// by bar size preserves the paper's intent — reward genuine within-group
// consensus — without the small-sample pathology.
func avgSubgroupSD(rm *RatingMap) float64 {
	total := 0
	sum := 0.0
	for i := range rm.Subgroups {
		n := rm.Subgroups[i].N
		sum += float64(n) * rm.Subgroups[i].StdDev()
		total += n
	}
	if total == 0 {
		return 0
	}
	return sum / float64(total)
}

// pecSupport is the shrinkage constant applied to subgroup peculiarity: a
// bar's TVD is scaled by N/(N+pecSupport), so a one-record outlier bar
// cannot dominate the score while a substantial deviant bar keeps nearly
// all of it.
const pecSupport = 5.0

// pecDist evaluates the configured peculiarity distance between two
// distributions, mapped into [0,1]: TVD is already there; KL divergence is
// squashed with 1 − e^(−KL).
func pecDist(p, q stats.Distribution, m PeculiarityMeasure) float64 {
	switch m {
	case PecKL:
		kl, err := stats.KLDivergence(p, q)
		if err != nil {
			return 0
		}
		return 1 - math.Exp(-kl)
	default:
		d, err := stats.TotalVariation(p, q)
		if err != nil {
			return 0
		}
		return d
	}
}

// SelfPeculiarity is Pec_self(rm): the maximum total-variation distance of
// any subgroup's distribution from the whole map's distribution, in [0,1],
// with each subgroup's TVD shrunk by its support (see pecSupport).
func SelfPeculiarity(rm *RatingMap) float64 {
	return SelfPeculiarityWith(rm, PecTVD)
}

// SelfPeculiarityWith is SelfPeculiarity under an explicit peculiarity
// measure (§4.1 alternatives).
func SelfPeculiarityWith(rm *RatingMap, m PeculiarityMeasure) float64 {
	if len(rm.Subgroups) == 0 {
		return 0
	}
	whole := rm.Distribution()
	maxD := 0.0
	for i := range rm.Subgroups {
		sg := &rm.Subgroups[i]
		d := pecDist(sg.Distribution(), whole, m)
		d *= float64(sg.N) / (float64(sg.N) + pecSupport)
		if d > maxD {
			maxD = d
		}
	}
	return maxD
}

// GlobalPeculiarity is Pec_global(rm, RM): the maximum TVD between rm's
// pooled distribution and the pooled distribution of each previously seen
// rating map. With nothing seen it is 0 (no history to deviate from).
func GlobalPeculiarity(rm *RatingMap, seen *SeenSet) float64 {
	return GlobalPeculiarityWith(rm, seen, PecTVD)
}

// GlobalPeculiarityWith is GlobalPeculiarity under an explicit measure.
func GlobalPeculiarityWith(rm *RatingMap, seen *SeenSet, m PeculiarityMeasure) float64 {
	if seen == nil || len(seen.dists) == 0 {
		return 0
	}
	mine := rm.Distribution()
	maxD := 0.0
	for _, d := range seen.dists {
		if len(d) != len(mine) {
			continue // different scale; incomparable
		}
		if dist := pecDist(mine, d, m); dist > maxD {
			maxD = dist
		}
	}
	return maxD
}

// ComputeScores evaluates the four bounded criteria for one map.
func ComputeScores(rm *RatingMap, seen *SeenSet) Scores {
	return ComputeScoresScaled(rm, seen, 1)
}

// ComputeScoresScaled evaluates the criteria treating the map as a partial
// result covering 1/recordScale of its group: the phase-based engine passes
// recordScale = total/processed so the conciseness estimate projects to the
// full group (bar counts saturate early; record counts grow linearly).
func ComputeScoresScaled(rm *RatingMap, seen *SeenSet, recordScale float64) Scores {
	return ComputeScoresOpt(rm, seen, recordScale, PecTVD)
}

// ComputeScoresOpt is ComputeScoresScaled with an explicit peculiarity
// measure.
func ComputeScoresOpt(rm *RatingMap, seen *SeenSet, recordScale float64, m PeculiarityMeasure) Scores {
	var s Scores
	s[Conciseness] = boundedConcisenessScaled(rm, recordScale)
	s[Agreement] = BoundedAgreement(rm)
	s[PecSelf] = SelfPeculiarityWith(rm, m)
	s[PecGlobal] = GlobalPeculiarityWith(rm, seen, m)
	return s
}

// ScoreSet evaluates scores for a whole candidate set, optionally min-max
// normalizing each criterion across the candidates (the [51] normalization
// the paper applies because criteria live on different scales).
func ScoreSet(maps []*RatingMap, seen *SeenSet, normalize bool) []Scores {
	return ScoreSetOpt(maps, seen, normalize, PecTVD)
}

// ScoreSetOpt is ScoreSet with an explicit peculiarity measure.
func ScoreSetOpt(maps []*RatingMap, seen *SeenSet, normalize bool, m PeculiarityMeasure) []Scores {
	out := make([]Scores, len(maps))
	for i, rm := range maps {
		out[i] = ComputeScoresOpt(rm, seen, 1, m)
	}
	if normalize && len(maps) > 1 {
		col := make([]float64, len(maps))
		for c := Criterion(0); c < NumCriteria; c++ {
			for i := range out {
				col[i] = out[i][c]
			}
			stats.MinMaxNormalize(col)
			for i := range out {
				out[i][c] = col[i]
			}
		}
	}
	return out
}

// tieEps blends a small fraction of the non-maximal criteria into the
// max-aggregated utility. Pure max ties at the criterion ceilings (e.g.
// agreement is exactly 1.0 for every all-same-score group, however tiny),
// leaving top-1 selection to enumeration order; the blend is order-
// preserving away from ties and resolves them toward maps whose other
// criteria — notably size-sensitive conciseness — are also strong.
const tieEps = 0.05

// Aggregate folds the criterion scores into the (unweighted) utility u(rm).
func (s Scores) Aggregate(cfg UtilityConfig) float64 {
	switch cfg.Aggregation {
	case AggAvg:
		sum := 0.0
		for _, v := range s {
			sum += v
		}
		return sum / float64(NumCriteria)
	case AggSingle:
		return s[cfg.Single]
	default: // AggMax
		best := s[0]
		sum := 0.0
		for _, v := range s {
			sum += v
			if v > best {
				best = v
			}
		}
		rest := (sum - best) / float64(NumCriteria-1)
		return (best + tieEps*rest) / (1 + tieEps)
	}
}

// SeenSet tracks the rating maps displayed so far across the exploration:
// their pooled distributions (for global peculiarity) and per-dimension
// counts (for the dimension weights of Algorithm 2 / Equation 1).
type SeenSet struct {
	dists    []stats.Distribution
	dimCount map[int]int
	total    int
}

// NewSeenSet returns an empty history.
func NewSeenSet() *SeenSet {
	return &SeenSet{dimCount: make(map[int]int)}
}

// Add records a displayed rating map.
func (s *SeenSet) Add(rm *RatingMap) {
	s.dists = append(s.dists, rm.Distribution())
	s.dimCount[rm.Dim]++
	s.total++
}

// AddDist records a displayed map by its pooled distribution and
// dimension alone. This is the degraded-step replay path: an anytime
// result's partial scan cannot be re-run deterministically, so session
// recovery re-applies its recorded observable effect on the history
// instead of recomputing it.
func (s *SeenSet) AddDist(dim int, dist []float64) {
	s.dists = append(s.dists, stats.Distribution(append([]float64(nil), dist...)))
	s.dimCount[dim]++
	s.total++
}

// Total returns the number of maps seen (m in Equation 1).
func (s *SeenSet) Total() int { return s.total }

// DimCount returns how many seen maps aggregated dimension d (m_{r_d}).
func (s *SeenSet) DimCount(d int) int { return s.dimCount[d] }

// Weight returns the Equation 1 factor (1 − m_{r_d}/m) for dimension d.
// Before anything is seen it is 1 for every dimension. When every seen map
// aggregated dimension d the literal factor is 0, which — on a database
// with a single rating dimension — would zero every utility and collapse
// the ranking; the factor is therefore floored at a small positive value so
// suppression stays strong but order-preserving.
func (s *SeenSet) Weight(d int) float64 {
	if s == nil || s.total == 0 {
		return 1
	}
	w := 1 - float64(s.dimCount[d])/float64(s.total)
	const floor = 0.05
	if w < floor {
		return floor
	}
	return w
}

// Weights materializes the getWeights vector of Algorithm 2: the per-
// dimension frequencies m_{r_i}/m (NOT the Eq. 1 factor; callers subtract
// from 1 when weighting utilities).
func (s *SeenSet) Weights(numDims int) []float64 {
	w := make([]float64, numDims)
	if s == nil || s.total == 0 {
		return w
	}
	for d := 0; d < numDims; d++ {
		w[d] = float64(s.dimCount[d]) / float64(s.total)
	}
	return w
}

// SeenState is the serializable form of a SeenSet: the pooled
// distributions in display order, the per-dimension counts, and the
// total. It exists so session snapshots can both persist the history
// and verify that a replayed session reconstructed it exactly.
type SeenState struct {
	Dists [][]float64 `json:"dists,omitempty"`
	Dims  map[int]int `json:"dims,omitempty"`
	Total int         `json:"total"`
}

// State exports the history for serialization.
func (s *SeenSet) State() SeenState {
	st := SeenState{Total: s.total}
	if len(s.dists) > 0 {
		st.Dists = make([][]float64, len(s.dists))
		for i, d := range s.dists {
			st.Dists[i] = append([]float64(nil), d...)
		}
	}
	if len(s.dimCount) > 0 {
		st.Dims = make(map[int]int, len(s.dimCount))
		//subdex:orderinsensitive keyed map copy: every write targets its own key, order cannot change the result
		for d, n := range s.dimCount {
			st.Dims[d] = n
		}
	}
	return st
}

// RestoreSeenSet rebuilds a SeenSet from its exported state.
func RestoreSeenSet(st SeenState) *SeenSet {
	s := NewSeenSet()
	for _, d := range st.Dists {
		s.dists = append(s.dists, stats.Distribution(append([]float64(nil), d...)))
	}
	//subdex:orderinsensitive keyed map copy: every write targets its own key, order cannot change the result
	for d, n := range st.Dims {
		s.dimCount[d] = n
	}
	s.total = st.Total
	return s
}

// EqualState reports whether the history matches an exported state
// exactly — same distributions in the same order, same per-dimension
// counts, same total. The engine is bit-deterministic, so replayed
// sessions must match with float equality, not tolerance.
func (s *SeenSet) EqualState(st SeenState) bool {
	if s.total != st.Total || len(s.dists) != len(st.Dists) || len(s.dimCount) != len(st.Dims) {
		return false
	}
	for i, d := range s.dists {
		o := st.Dists[i]
		if len(d) != len(o) {
			return false
		}
		for j := range d {
			if d[j] != o[j] {
				return false
			}
		}
	}
	//subdex:orderinsensitive keyed map comparison: equality over all keys, order cannot change the verdict
	for d, n := range s.dimCount {
		if st.Dims[d] != n {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the history, used when evaluating
// hypothetical next-step operations without committing their maps.
func (s *SeenSet) Clone() *SeenSet {
	c := NewSeenSet()
	c.dists = append(c.dists, s.dists...)
	//subdex:orderinsensitive keyed map copy: every write targets its own key, order cannot change the result
	for d, n := range s.dimCount {
		c.dimCount[d] = n
	}
	c.total = s.total
	return c
}

// DWUtility applies Equation 1: û(rm) = (1 − m_{r_i}/m) · u(rm). With
// weighting disabled in cfg it returns the plain utility.
func DWUtility(u float64, dim int, seen *SeenSet, cfg UtilityConfig) float64 {
	if cfg.DisableDimensionWeights {
		return u
	}
	return seen.Weight(dim) * u
}

// UtilitySet computes the DW utilities of a candidate set in one shot:
// scores, optional normalization, aggregation, then Equation 1.
func UtilitySet(maps []*RatingMap, seen *SeenSet, cfg UtilityConfig) []float64 {
	scores := ScoreSetOpt(maps, seen, cfg.Normalize, cfg.Peculiarity)
	out := make([]float64, len(maps))
	for i, rm := range maps {
		out[i] = DWUtility(scores[i].Aggregate(cfg), rm.Dim, seen, cfg)
	}
	return out
}
