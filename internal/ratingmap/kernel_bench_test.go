package ratingmap

// Microbenchmarks for the two Update paths on a Yelp-shaped workload:
// the fused columnar kernel vs the map-based reference scan. Run with
//   go test ./internal/ratingmap -bench BenchmarkUpdate -benchmem
// to reproduce the per-scan numbers quoted in DESIGN.md; the end-to-end
// step costs live in BENCH_engine.json (benchengine).

import (
	"fmt"
	"math/rand"
	"testing"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// benchDB builds a mid-sized synthetic database: wide-ish dictionaries,
// multi-valued sets, missing values and missing scores.
func benchDB(b *testing.B, nRev, nItem, nRec int) (*dataset.DB, []Key, []int32) {
	b.Helper()
	rng := rand.New(rand.NewSource(42))
	rev := dataset.NewEntityTable("reviewers", dataset.MustSchema(
		dataset.Attribute{Name: "gender", Kind: dataset.Atomic},
		dataset.Attribute{Name: "age", Kind: dataset.Atomic},
		dataset.Attribute{Name: "tags", Kind: dataset.MultiValued},
	))
	item := dataset.NewEntityTable("items", dataset.MustSchema(
		dataset.Attribute{Name: "city", Kind: dataset.Atomic},
		dataset.Attribute{Name: "cuisine", Kind: dataset.MultiValued},
	))
	for u := 0; u < nRev; u++ {
		var tags []string
		for t := 0; t < rng.Intn(4); t++ {
			tags = append(tags, fmt.Sprintf("t%d", rng.Intn(30)))
		}
		if _, err := rev.AppendRow(fmt.Sprintf("u%d", u), map[string]string{
			"gender": fmt.Sprintf("g%d", rng.Intn(4)),
			"age":    fmt.Sprintf("a%d", rng.Intn(8)),
		}, map[string][]string{"tags": tags}); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < nItem; i++ {
		var cs []string
		for c := 0; c < 1+rng.Intn(3); c++ {
			cs = append(cs, fmt.Sprintf("c%d", rng.Intn(20)))
		}
		if _, err := item.AppendRow(fmt.Sprintf("i%d", i), map[string]string{
			"city": fmt.Sprintf("city%d", rng.Intn(12)),
		}, map[string][]string{"cuisine": cs}); err != nil {
			b.Fatal(err)
		}
	}
	ratings, err := dataset.NewRatingTable(
		dataset.Dimension{Name: "overall", Scale: 5},
		dataset.Dimension{Name: "value", Scale: 5},
	)
	if err != nil {
		b.Fatal(err)
	}
	for r := 0; r < nRec; r++ {
		if err := ratings.Append(rng.Intn(nRev), rng.Intn(nItem), []dataset.Score{
			dataset.Score(rng.Intn(6)), dataset.Score(rng.Intn(6))}); err != nil {
			b.Fatal(err)
		}
	}
	db := dataset.NewDB("bench", rev, item, ratings)
	if err := db.Freeze(); err != nil {
		b.Fatal(err)
	}
	var keys []Key
	for _, s := range []struct {
		side query.Side
		t    *dataset.EntityTable
	}{{query.ReviewerSide, db.Reviewers}, {query.ItemSide, db.Items}} {
		for a := 0; a < s.t.Schema.Len(); a++ {
			for d := range db.Ratings.Dimensions {
				keys = append(keys, Key{Side: s.side, Attr: s.t.Schema.At(a).Name, Dim: d})
			}
		}
	}
	recs := make([]int32, nRec)
	for i := range recs {
		recs[i] = int32(i)
	}
	return db, keys, recs
}

func benchUpdate(b *testing.B, disableKernel bool) {
	db, keys, recs := benchDB(b, 2000, 800, 100_000)
	bld := Builder{DB: db, DisableKernel: disableKernel}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc := bld.NewAccumulator(query.Description{}, keys)
		acc.Update(recs)
	}
}

func BenchmarkUpdateKernel(b *testing.B)    { benchUpdate(b, false) }
func BenchmarkUpdateReference(b *testing.B) { benchUpdate(b, true) }
