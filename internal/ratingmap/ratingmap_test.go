package ratingmap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// fixtureDB builds a database with known groupings: 2 reviewer attributes,
// 2 item attributes (one multi-valued), 2 rating dimensions.
func fixtureDB(t testing.TB) *dataset.DB {
	rs, _ := dataset.NewSchema(dataset.Attribute{Name: "gender"})
	is, _ := dataset.NewSchema(
		dataset.Attribute{Name: "city"},
		dataset.Attribute{Name: "tag", Kind: dataset.MultiValued})
	reviewers := dataset.NewEntityTable("reviewers", rs)
	items := dataset.NewEntityTable("items", is)
	reviewers.AppendRow("u1", map[string]string{"gender": "F"}, nil)
	reviewers.AppendRow("u2", map[string]string{"gender": "M"}, nil)
	items.AppendRow("i1", map[string]string{"city": "A"}, map[string][]string{"tag": {"x", "y"}})
	items.AppendRow("i2", map[string]string{"city": "B"}, map[string][]string{"tag": {"x"}})
	rt, _ := dataset.NewRatingTable(
		dataset.Dimension{Name: "overall", Scale: 5},
		dataset.Dimension{Name: "food", Scale: 5})
	// records: (u, i, overall, food)
	recs := [][4]int{
		{0, 0, 5, 4}, {0, 1, 3, 3}, {1, 0, 1, 2}, {1, 1, 2, 5}, {0, 0, 4, 4},
	}
	for _, r := range recs {
		rt.Append(r[0], r[1], []dataset.Score{dataset.Score(r[2]), dataset.Score(r[3])})
	}
	db := dataset.NewDB("fix", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func allRecords(db *dataset.DB) []int32 {
	rs := make([]int32, db.Ratings.Len())
	for i := range rs {
		rs[i] = int32(i)
	}
	return rs
}

func TestBuilderGroupByAtomic(t *testing.T) {
	db := fixtureDB(t)
	b := Builder{DB: db}
	maps := b.Build(query.Description{}, allRecords(db), []Key{
		{Side: query.ReviewerSide, Attr: "gender", Dim: 0},
	})
	rm := maps[0]
	if rm.NumSubgroups() != 2 {
		t.Fatalf("subgroups = %d, want 2", rm.NumSubgroups())
	}
	if rm.TotalRecords != 5 {
		t.Fatalf("TotalRecords = %d, want 5", rm.TotalRecords)
	}
	// F: overall scores 5,3,4 → avg 4; M: 1,2 → avg 1.5. Sorted descending.
	if got := rm.Subgroups[0].AvgScore(); !almost(got, 4) {
		t.Errorf("top bar avg = %v, want 4", got)
	}
	if got := rm.Subgroups[1].AvgScore(); !almost(got, 1.5) {
		t.Errorf("bottom bar avg = %v, want 1.5", got)
	}
	if rm.Subgroups[0].N != 3 || rm.Subgroups[1].N != 2 {
		t.Errorf("bar sizes = %d,%d", rm.Subgroups[0].N, rm.Subgroups[1].N)
	}
}

func TestBuilderMultiValuedCountsPerValue(t *testing.T) {
	db := fixtureDB(t)
	b := Builder{DB: db}
	maps := b.Build(query.Description{}, allRecords(db), []Key{
		{Side: query.ItemSide, Attr: "tag", Dim: 0},
	})
	rm := maps[0]
	// i1 has tags x,y (3 records); i2 has tag x (2 records).
	// tag x: all 5 records; tag y: i1's 3 records. Total with multiplicity 8.
	if rm.TotalRecords != 8 {
		t.Fatalf("TotalRecords = %d, want 8 (multi-valued multiplicity)", rm.TotalRecords)
	}
	var nx, ny int
	dict := db.Items.DictByName("tag")
	for _, sg := range rm.Subgroups {
		switch dict.Value(sg.Value) {
		case "x":
			nx = sg.N
		case "y":
			ny = sg.N
		}
	}
	if nx != 5 || ny != 3 {
		t.Errorf("x=%d y=%d, want 5 and 3", nx, ny)
	}
}

func TestBuilderSkipsMissingScores(t *testing.T) {
	db := fixtureDB(t)
	// Zero a score (missing) and rebuild.
	db.Ratings.Scores[0][0] = 0
	b := Builder{DB: db}
	maps := b.Build(query.Description{}, allRecords(db), []Key{
		{Side: query.ReviewerSide, Attr: "gender", Dim: 0},
	})
	if maps[0].TotalRecords != 4 {
		t.Fatalf("missing score must be excluded: total = %d", maps[0].TotalRecords)
	}
}

func TestAccumulatorPhasedEqualsSinglePass(t *testing.T) {
	db := fixtureDB(t)
	b := Builder{DB: db}
	keys := []Key{
		{Side: query.ReviewerSide, Attr: "gender", Dim: 0},
		{Side: query.ItemSide, Attr: "city", Dim: 1},
		{Side: query.ItemSide, Attr: "tag", Dim: 0},
	}
	recs := allRecords(db)
	single := b.Build(query.Description{}, recs, keys)

	acc := b.NewAccumulator(query.Description{}, keys)
	for i := 0; i < len(recs); i++ { // one record per phase
		acc.Update(recs[i : i+1])
	}
	for i, k := range keys {
		phased := acc.Snapshot(k)
		if phased.TotalRecords != single[i].TotalRecords ||
			phased.NumSubgroups() != single[i].NumSubgroups() {
			t.Fatalf("key %v: phased %d/%d vs single %d/%d", k,
				phased.TotalRecords, phased.NumSubgroups(),
				single[i].TotalRecords, single[i].NumSubgroups())
		}
	}
}

func TestAccumulatorRemove(t *testing.T) {
	db := fixtureDB(t)
	b := Builder{DB: db}
	keys := []Key{
		{Side: query.ReviewerSide, Attr: "gender", Dim: 0},
		{Side: query.ReviewerSide, Attr: "gender", Dim: 1},
	}
	acc := b.NewAccumulator(query.Description{}, keys)
	acc.Remove(keys[0])
	if len(acc.Keys()) != 1 {
		t.Fatalf("Keys after remove = %v", acc.Keys())
	}
	acc.Update(allRecords(db))
	if rm := acc.Snapshot(keys[0]); rm != nil {
		t.Fatal("removed key must not snapshot")
	}
	if rm := acc.Snapshot(keys[1]); rm == nil || rm.TotalRecords == 0 {
		t.Fatal("surviving key must keep accumulating")
	}
}

func TestSignatureDistinguishesGroupings(t *testing.T) {
	db := fixtureDB(t)
	b := Builder{DB: db}
	maps := b.Build(query.Description{}, allRecords(db), []Key{
		{Side: query.ReviewerSide, Attr: "gender", Dim: 0},
		{Side: query.ItemSide, Attr: "city", Dim: 0},
	})
	// Pooled distributions are identical (same records, same dimension)…
	d0, d1 := maps[0].Distribution(), maps[1].Distribution()
	for i := range d0 {
		if !almost(d0[i], d1[i]) {
			t.Fatalf("pooled distributions should match: %v vs %v", d0, d1)
		}
	}
	// …but signatures differ because the groupings differ.
	s0, s1 := maps[0].Signature(), maps[1].Signature()
	same := true
	for i := range s0 {
		if !almost(s0[i], s1[i]) {
			same = false
		}
	}
	if same {
		t.Fatal("signatures should differ across groupings")
	}
}

func TestSignatureIsDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rm := randomRatingMap(r)
		sig := rm.Signature()
		sum := 0.0
		for _, v := range sig {
			if v < -1e-12 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// randomRatingMap fabricates a map with random bars for property tests.
func randomRatingMap(r *rand.Rand) *RatingMap {
	scale := 5
	rm := &RatingMap{Scale: scale, total: make([]int, scale)}
	bars := 1 + r.Intn(8)
	for b := 0; b < bars; b++ {
		counts := make([]int, scale)
		n := 0
		for s := 0; s < scale; s++ {
			counts[s] = r.Intn(20)
			n += counts[s]
			rm.total[s] += counts[s]
		}
		if n == 0 {
			counts[0] = 1
			n = 1
			rm.total[0]++
		}
		rm.Subgroups = append(rm.Subgroups, Subgroup{Value: dataset.ValueID(b + 1), Counts: counts, N: n})
		rm.TotalRecords += n
	}
	return rm
}

func TestRenderContainsBars(t *testing.T) {
	db := fixtureDB(t)
	b := Builder{DB: db}
	maps := b.Build(query.Description{}, allRecords(db), []Key{
		{Side: query.ReviewerSide, Attr: "gender", Dim: 0},
	})
	out := maps[0].Render(db.Reviewers.DictByName("gender"))
	for _, want := range []string{"gender", "F", "M", "rating distribution", "avg. score"} {
		if !contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSharingCombinesAggregatesPerAttribute(t *testing.T) {
	// The "Combining Multiple Aggregates" optimization (§4.2.1): candidates
	// that group by the same attribute on different dimensions must share
	// one scan. With 2 attributes × 2 dimensions = 4 candidates over N
	// records, the accumulator performs 2·N record visits, not 4·N.
	db := fixtureDB(t)
	b := Builder{DB: db}
	keys := []Key{
		{Side: query.ReviewerSide, Attr: "gender", Dim: 0},
		{Side: query.ReviewerSide, Attr: "gender", Dim: 1},
		{Side: query.ItemSide, Attr: "city", Dim: 0},
		{Side: query.ItemSide, Attr: "city", Dim: 1},
	}
	acc := b.NewAccumulator(query.Description{}, keys)
	recs := allRecords(db)
	acc.Update(recs)
	if got, want := acc.RecordVisits(), 2*len(recs); got != want {
		t.Fatalf("record visits = %d, want %d (shared per attribute)", got, want)
	}
	// Removing one dimension of an attribute keeps the shared scan; removing
	// both removes it.
	acc2 := b.NewAccumulator(query.Description{}, keys)
	acc2.Remove(keys[0])
	acc2.Update(recs)
	if got, want := acc2.RecordVisits(), 2*len(recs); got != want {
		t.Fatalf("after removing one dim: visits = %d, want %d", got, want)
	}
	acc3 := b.NewAccumulator(query.Description{}, keys)
	acc3.Remove(keys[0])
	acc3.Remove(keys[1])
	acc3.Update(recs)
	if got, want := acc3.RecordVisits(), len(recs); got != want {
		t.Fatalf("after removing an attribute entirely: visits = %d, want %d", got, want)
	}
}
