// Package ratingmap implements rating distributions and rating maps
// (Definitions 1-2 of the paper), their interestingness criteria —
// conciseness, agreement, self peculiarity, global peculiarity (§3.2.3,
// §4.1) — and the dimension-weighted utility of Equation 1.
//
// A rating map is the result of a GroupBy over a rating group g_R on a
// single reviewer or item attribute, aggregated on one rating dimension:
// each subgroup carries its rating distribution and average score.
package ratingmap

import (
	"fmt"
	"sort"
	"strings"

	"subdex/internal/dataset"
	"subdex/internal/query"
	"subdex/internal/stats"
)

// Key identifies a candidate rating map: the grouping attribute (on one
// side) and the rating dimension aggregated.
type Key struct {
	Side query.Side
	Attr string
	Dim  int // index into the rating table's dimensions
}

// String renders the key as e.g. "GROUPBY items.city AGG food".
func (k Key) String() string {
	return fmt.Sprintf("GROUPBY %s.%s AGG dim%d", k.Side, k.Attr, k.Dim)
}

// Subgroup is one bar of the rating map: the records of g_R whose grouping
// attribute has the given value, with their score histogram.
type Subgroup struct {
	Value dataset.ValueID
	// Counts[s-1] is the number of records with score s; length = scale m.
	Counts []int
	N      int
}

// Distribution returns the subgroup's rating distribution.
func (sg *Subgroup) Distribution() stats.Distribution {
	return stats.NewDistributionFromCounts(sg.Counts)
}

// AvgScore returns the subgroup's aggregated (average) score, the single
// number the paper's rating maps attach to each subgroup. Records with a
// missing score are excluded by construction.
func (sg *Subgroup) AvgScore() float64 {
	if sg.N == 0 {
		return 0
	}
	sum := 0
	for i, c := range sg.Counts {
		sum += (i + 1) * c
	}
	return float64(sum) / float64(sg.N)
}

// StdDev returns the standard deviation of scores within the subgroup,
// feeding the agreement criterion.
func (sg *Subgroup) StdDev() float64 {
	return sg.Distribution().StdDev()
}

// ModeScore returns the subgroup's most frequent rating value — the
// "highest probability for the rating dimension" aggregation Definition 2
// names as an alternative to the average. Ties break toward the lower
// rating; an empty subgroup returns 0.
func (sg *Subgroup) ModeScore() int {
	best, bestCount := 0, 0
	for i, c := range sg.Counts {
		if c > bestCount {
			best, bestCount = i+1, c
		}
	}
	return best
}

// RatingMap is a materialized rating map rm(g_R, r_i).
type RatingMap struct {
	Key
	DimName string
	Scale   int
	// Desc is the description of the underlying rating group.
	Desc query.Description
	// Subgroups are sorted by descending average score, as displayed in the
	// paper's Figure 3 tables.
	Subgroups []Subgroup
	// TotalRecords is |g_R| counted with multiplicity for multi-valued
	// grouping attributes (a record in two cuisines appears in two bars).
	TotalRecords int

	total []int // pooled histogram across subgroups
}

// Dict resolves subgroup values to display strings; set by the builder.
type Dict interface {
	Value(dataset.ValueID) string
}

// Distribution returns the rating distribution of the whole map (pooled
// across subgroups), the reference distribution for self peculiarity and the
// object compared by global peculiarity and EMD-based diversity.
func (rm *RatingMap) Distribution() stats.Distribution {
	return stats.NewDistributionFromCounts(rm.total)
}

// NumSubgroups returns the number of bars.
func (rm *RatingMap) NumSubgroups() int { return len(rm.Subgroups) }

// Signature returns the distribution of subgroup average scores, weighted
// by subgroup size, with fractional averages split linearly between the
// neighbouring scale bins. Unlike the pooled Distribution — which is
// identical for every grouping of the same records on the same dimension —
// the signature reflects the grouping structure itself, so it can tell
// "GroupBy neighborhood" apart from "GroupBy parking" even on one
// dimension. The diversity distance combines both.
func (rm *RatingMap) Signature() stats.Distribution {
	sig := make(stats.Distribution, rm.Scale)
	total := 0.0
	for i := range rm.Subgroups {
		sg := &rm.Subgroups[i]
		if sg.N == 0 {
			continue
		}
		avg := sg.AvgScore() // in [1, scale]
		pos := avg - 1       // in [0, scale-1]
		lo := int(pos)
		frac := pos - float64(lo)
		w := float64(sg.N)
		if lo >= rm.Scale-1 {
			sig[rm.Scale-1] += w
		} else {
			sig[lo] += w * (1 - frac)
			sig[lo+1] += w * frac
		}
		total += w
	}
	if total == 0 {
		sig.Normalize()
		return sig
	}
	for i := range sig {
		sig[i] /= total
	}
	return sig
}

// Render formats the map as the tabular view of Figure 3.
func (rm *RatingMap) Render(dict Dict) string {
	var b strings.Builder
	fmt.Fprintf(&b, "GroupBy %s.%s, aggregated by %s score\n", rm.Side, rm.Attr, rm.DimName)
	fmt.Fprintf(&b, "%-20s %12s %-28s %10s\n", rm.Attr, "# of records", "rating distribution", "avg. score")
	for _, sg := range rm.Subgroups {
		label := fmt.Sprintf("%d", sg.Value)
		if dict != nil {
			label = dict.Value(sg.Value)
		}
		var dist strings.Builder
		dist.WriteByte('{')
		for s, c := range sg.Counts {
			if s > 0 {
				dist.WriteByte(',')
			}
			fmt.Fprintf(&dist, "%d:%d", s+1, c)
		}
		dist.WriteByte('}')
		fmt.Fprintf(&b, "%-20s %12d %-28s %10.1f\n", label, sg.N, dist.String(), sg.AvgScore())
	}
	return b.String()
}

// Builder materializes rating maps over a database. It implements the
// "Combining Multiple Aggregates" sharing optimization of §4.2.1: one scan
// of a record range updates the partial results of every candidate map that
// groups by the same attribute, across all rating dimensions.
type Builder struct {
	DB *dataset.DB
	// DisableKernel forces the map-based reference accumulation path even
	// when the fused columnar scan kernel (kernel.go) is available. The
	// reference path is the exactness oracle: the differential harness and
	// FuzzScanKernel assert that both paths produce bit-identical digests
	// on every input, and benchengine's reference arm uses it to measure
	// the kernel's speedup.
	DisableKernel bool
}

// partial accumulates one candidate map across phases. counts is indexed
// by dense ValueID (dictionary ids are small and dense), with nil entries
// for values not yet seen; this keeps the per-record hot path to two array
// indexings instead of a map lookup.
type partial struct {
	key      Key
	scale    int
	counts   [][]int // ValueID -> histogram (nil until seen)
	nValues  int     // number of non-nil entries
	nRecords int
	// ks is the fused scan kernel's per-Update scratch (dense counter
	// block + touched-value bitset, see kernel.go). Always folded back
	// into counts and zeroed before Update returns, so Merge, Snapshot
	// and the estimators never observe it.
	ks kernelScratch
}

// Accumulator holds the in-progress subgroup histograms of a set of
// candidate maps sharing scans, keyed by grouping attribute. The engine's
// phase loop calls Update once per phase with the next record fraction.
type Accumulator struct {
	db *dataset.DB
	// byAttr groups partials sharing the same (side, attr) so one
	// attribute lookup per record serves every dimension.
	byAttr map[string][]*partial
	order  []Key
	desc   query.Description
	// kernel selects the fused columnar scan path (kernel.go) for Update.
	// Set at construction: on iff the database is frozen (so the flat
	// column projections exist) and the builder did not disable it.
	kernel bool

	// recordVisits counts per-record attribute lookups — the cost the
	// "Combining Multiple Aggregates" sharing optimization bounds: one
	// visit per (record, attribute), independent of how many rating
	// dimensions share the attribute.
	recordVisits int
}

// NewAccumulator prepares shared accumulation for the given candidate keys
// over the rating group described by desc.
func (b *Builder) NewAccumulator(desc query.Description, keys []Key) *Accumulator {
	acc := &Accumulator{
		db:     b.DB,
		byAttr: make(map[string][]*partial),
		desc:   desc,
		kernel: !b.DisableKernel && b.DB != nil && b.DB.Frozen(),
	}
	for _, k := range keys {
		p := &partial{
			key:   k,
			scale: b.DB.Ratings.Dimensions[k.Dim].Scale,
		}
		ak := attrKey(k.Side, k.Attr)
		acc.byAttr[ak] = append(acc.byAttr[ak], p)
		acc.order = append(acc.order, k)
	}
	return acc
}

func attrKey(side query.Side, attr string) string {
	return fmt.Sprintf("%d\x00%s", side, attr)
}

// Update feeds a batch of rating-record positions into every candidate map.
// It dispatches to the fused columnar scan kernel (kernel.go) when the
// database is frozen, falling back to the map-based reference path
// otherwise (or when the builder disabled the kernel). Exactness is the
// contract between the two paths: identical Digest output on every input,
// enforced by the engine differential harness and FuzzScanKernel.
func (a *Accumulator) Update(records []int32) {
	if a.kernel {
		a.updateKernel(records)
		return
	}
	a.updateReference(records)
}

// updateReference is the row-oriented reference scan: per record, an
// attribute-keyed lookup, a kind switch, and nested map-shaped partial
// updates. Deliberately simple — it is the oracle the kernel is proven
// bit-identical against.
func (a *Accumulator) updateReference(records []int32) {
	//subdex:orderinsensitive each iteration mutates only its own attribute's partials; records are scanned in slice order within each, so attribute order cannot leak into any histogram or discovery order
	for ak, ps := range a.byAttr {
		t, rowOf, ai := a.resolveAttr(ak)
		if ai < 0 {
			continue
		}
		a.recordVisits += len(records)
		a.refScanAttr(t, rowOf, ai, records, ps)
	}
}

// resolveAttr maps an attribute key to its entity table, the per-record
// entity-row column, and the attribute's schema index (-1 if absent).
func (a *Accumulator) resolveAttr(ak string) (*dataset.EntityTable, []int32, int) {
	side, attr := splitAttrKey(ak)
	if side == query.ReviewerSide {
		return a.db.Reviewers, a.db.Ratings.Reviewer, a.db.Reviewers.Schema.Index(attr)
	}
	return a.db.Items, a.db.Ratings.Item, a.db.Items.Schema.Index(attr)
}

// refScanAttr folds one attribute's shared scan over records into its
// partials via the row-oriented accessors.
func (a *Accumulator) refScanAttr(t *dataset.EntityTable, rowOf []int32, ai int, records []int32, ps []*partial) {
	kind := t.Schema.At(ai).Kind
	for _, r := range records {
		row := int(rowOf[r])
		switch kind {
		case dataset.Atomic:
			v := t.AtomicValue(ai, row)
			if v == dataset.MissingValue {
				continue
			}
			for _, p := range ps {
				p.add(v, a.db.Ratings.Scores[p.key.Dim][r])
			}
		case dataset.MultiValued:
			for _, v := range t.MultiValues(ai, row) {
				for _, p := range ps {
					p.add(v, a.db.Ratings.Scores[p.key.Dim][r])
				}
			}
		}
	}
}

func splitAttrKey(ak string) (query.Side, string) {
	for i := 0; i < len(ak); i++ {
		if ak[i] == 0 {
			return query.Side(ak[0] - '0'), ak[i+1:]
		}
	}
	return query.ReviewerSide, ak
}

func (p *partial) add(v dataset.ValueID, s dataset.Score) {
	if s == 0 {
		return // missing score
	}
	p.histogram(v)[s-1]++
	p.nRecords++
}

// histogram returns the subgroup histogram of value v, growing the counts
// index and registering the value on first touch. Shared by the reference
// per-record add and the kernel's block fold so both paths create entries
// with identical bookkeeping.
func (p *partial) histogram(v dataset.ValueID) []int {
	if int(v) >= len(p.counts) {
		grown := make([][]int, int(v)+8)
		copy(grown, p.counts)
		p.counts = grown
	}
	c := p.counts[v]
	if c == nil {
		c = make([]int, p.scale)
		p.counts[v] = c
		p.nValues++
	}
	return c
}

// Keys returns the candidate keys in registration order.
func (a *Accumulator) Keys() []Key { return a.order }

// RecordVisits reports how many (record, attribute) lookups the shared
// scans performed so far — the work the sharing optimization bounds.
func (a *Accumulator) RecordVisits() int { return a.recordVisits }

// Remove drops a candidate from accumulation, the effect of pruning: later
// phases no longer pay for its histogram updates. Removing the last
// candidate of an attribute removes the attribute's shared scan entirely.
func (a *Accumulator) Remove(k Key) {
	ak := attrKey(k.Side, k.Attr)
	ps := a.byAttr[ak]
	for i, p := range ps {
		if p.key == k {
			a.byAttr[ak] = append(ps[:i], ps[i+1:]...)
			break
		}
	}
	if len(a.byAttr[ak]) == 0 {
		delete(a.byAttr, ak)
	}
	for i, key := range a.order {
		if key == k {
			a.order = append(a.order[:i], a.order[i+1:]...)
			break
		}
	}
}

// Snapshot materializes the current partial state of one candidate as a
// RatingMap. The engine uses snapshots both for per-phase utility estimates
// and for the final exact maps after the last phase.
func (a *Accumulator) Snapshot(k Key) *RatingMap {
	p := a.find(k)
	if p == nil {
		return nil
	}
	rm := &RatingMap{
		Key:          k,
		DimName:      a.db.Ratings.Dimensions[k.Dim].Name,
		Scale:        p.scale,
		Desc:         a.desc,
		TotalRecords: p.nRecords,
		total:        make([]int, p.scale),
	}
	for v, counts := range p.counts {
		if counts == nil {
			continue
		}
		n := 0
		for s, c := range counts {
			n += c
			rm.total[s] += c
		}
		rm.Subgroups = append(rm.Subgroups, Subgroup{
			Value:  dataset.ValueID(v),
			Counts: append([]int(nil), counts...),
			N:      n,
		})
	}
	sort.Slice(rm.Subgroups, func(i, j int) bool {
		ai, aj := rm.Subgroups[i].AvgScore(), rm.Subgroups[j].AvgScore()
		if ai != aj {
			return ai > aj
		}
		return rm.Subgroups[i].Value < rm.Subgroups[j].Value
	})
	return rm
}

// Build materializes every candidate in one pass over all records of the
// group — the unshared, unpruned path used by the Naive engine variant and
// by tests as ground truth.
func (b *Builder) Build(desc query.Description, records []int32, keys []Key) []*RatingMap {
	acc := b.NewAccumulator(desc, keys)
	acc.Update(records)
	out := make([]*RatingMap, 0, len(keys))
	for _, k := range keys {
		out = append(out, acc.Snapshot(k))
	}
	return out
}
