package ratingmap

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"subdex/internal/query"
)

func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }

func TestSubgroupModeScore(t *testing.T) {
	sg := Subgroup{Counts: []int{1, 5, 2, 5, 0}, N: 13}
	// Tie between ratings 2 and 4 breaks toward the lower rating.
	if got := sg.ModeScore(); got != 2 {
		t.Errorf("ModeScore = %d, want 2", got)
	}
	empty := Subgroup{Counts: []int{0, 0, 0}}
	if empty.ModeScore() != 0 {
		t.Error("empty subgroup mode must be 0")
	}
	single := Subgroup{Counts: []int{0, 0, 0, 0, 7}, N: 7}
	if single.ModeScore() != 5 {
		t.Error("all-fives mode must be 5")
	}
}

func TestScoresBest(t *testing.T) {
	s := Scores{0.1, 0.9, 0.3, 0.2}
	c, v := s.Best()
	if c != Agreement || v != 0.9 {
		t.Errorf("Best = %v/%v, want agreement/0.9", c, v)
	}
	// Ties break toward the earlier criterion.
	s = Scores{0.5, 0.5, 0.5, 0.5}
	if c, _ := s.Best(); c != Conciseness {
		t.Errorf("tie should break to conciseness, got %v", c)
	}
}

func TestKLPeculiarityOrdering(t *testing.T) {
	// KL must agree with TVD on the qualitative ordering: a deviant bar
	// scores higher than a conforming one under both measures.
	uniform := []int{10, 10, 10, 10, 10}
	flat := mapWithBars(5, uniform, uniform)
	deviant := mapWithBars(5, uniform, []int{50, 0, 0, 0, 0})
	for _, m := range []PeculiarityMeasure{PecTVD, PecKL} {
		if SelfPeculiarityWith(deviant, m) <= SelfPeculiarityWith(flat, m) {
			t.Errorf("%v: deviant must outscore flat", m)
		}
	}
}

func TestKLPeculiarityBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rm := randomRatingMap(r)
		seen := NewSeenSet()
		seen.Add(randomRatingMap(r))
		for _, m := range []PeculiarityMeasure{PecTVD, PecKL} {
			s := ComputeScoresOpt(rm, seen, 1, m)
			for _, v := range s {
				if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestKLEstimateMatchesExact(t *testing.T) {
	// The estimator must agree with the materialized scorer under KL too.
	rng := rand.New(rand.NewSource(73))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomFixture(r)
		b := Builder{DB: db}
		keys := []Key{{Side: query.ReviewerSide, Attr: "gender", Dim: 0}}
		recs := make([]int32, db.Ratings.Len())
		for i := range recs {
			recs[i] = int32(i)
		}
		acc := b.NewAccumulator(query.Description{}, keys)
		acc.Update(recs)
		seen := NewSeenSet()
		seen.Add(randomRatingMap(r))
		est, ok := acc.CriteriaEstimateOpt(keys[0], seen, 1, PecKL)
		if !ok {
			return false
		}
		exact := ComputeScoresOpt(acc.Snapshot(keys[0]), seen, 1, PecKL)
		for c := Criterion(0); c < NumCriteria; c++ {
			if math.Abs(est[c]-exact[c]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestPeculiarityMeasureString(t *testing.T) {
	if PecTVD.String() != "tvd" || PecKL.String() != "kl" {
		t.Error("measure strings wrong")
	}
}

func TestVegaLiteSpec(t *testing.T) {
	rm := mapWithBars(5, []int{1, 2, 1, 5, 7}, []int{3, 3, 2, 5, 7})
	rm.Attr = "neighborhood"
	rm.DimName = "food"
	spec, err := rm.VegaLiteSpec(nil)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := jsonUnmarshal(spec, &parsed); err != nil {
		t.Fatalf("spec is not valid JSON: %v", err)
	}
	if parsed["$schema"] != "https://vega.github.io/schema/vega-lite/v5.json" {
		t.Error("schema URL missing")
	}
	if parsed["mark"] != "bar" {
		t.Error("mark must be bar")
	}
	data := parsed["data"].(map[string]any)["values"].([]any)
	// 10 non-zero (group, rating) cells across the two bars.
	if len(data) != 10 {
		t.Fatalf("data rows = %d, want 10", len(data))
	}
	total := 0.0
	for _, row := range data {
		total += row.(map[string]any)["count"].(float64)
	}
	if int(total) != rm.TotalRecords {
		t.Fatalf("spec counts sum to %d, want %d", int(total), rm.TotalRecords)
	}
}
