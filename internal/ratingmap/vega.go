package ratingmap

import "encoding/json"

// Vega-Lite export. The paper's system is a visualization recommender; its
// UI renders rating maps as grouped histograms (Figure 1). VegaLiteSpec
// emits a self-contained Vega-Lite v5 bar-chart specification for a rating
// map, so any Vega-enabled frontend (or vega-cli) can render exactly what
// the engine selected.

// vegaSpec mirrors the subset of the Vega-Lite schema we emit.
type vegaSpec struct {
	Schema      string         `json:"$schema"`
	Description string         `json:"description"`
	Data        vegaData       `json:"data"`
	Mark        string         `json:"mark"`
	Encoding    map[string]any `json:"encoding"`
}

type vegaData struct {
	Values []vegaRow `json:"values"`
}

type vegaRow struct {
	Group  string `json:"group"`
	Rating int    `json:"rating"`
	Count  int    `json:"count"`
}

// VegaLiteSpec serializes the rating map as a Vega-Lite v5 grouped bar
// chart: x = subgroup, column color = rating value, y = record count. dict
// resolves subgroup value labels (nil falls back to numeric ids).
func (rm *RatingMap) VegaLiteSpec(dict Dict) ([]byte, error) {
	spec := vegaSpec{
		Schema:      "https://vega.github.io/schema/vega-lite/v5.json",
		Description: "Rating map: GroupBy " + rm.Side.String() + "." + rm.Attr + ", aggregated by " + rm.DimName,
		Mark:        "bar",
		Encoding: map[string]any{
			"x":     map[string]any{"field": "group", "type": "nominal", "title": rm.Attr},
			"y":     map[string]any{"field": "count", "type": "quantitative", "title": "# of records"},
			"color": map[string]any{"field": "rating", "type": "ordinal", "title": rm.DimName + " score"},
			"xOffset": map[string]any{
				"field": "rating",
			},
		},
	}
	for i := range rm.Subgroups {
		sg := &rm.Subgroups[i]
		label := ""
		if dict != nil {
			label = dict.Value(sg.Value)
		}
		if label == "" {
			label = rm.Attr
		}
		for s, c := range sg.Counts {
			if c == 0 {
				continue
			}
			spec.Data.Values = append(spec.Data.Values, vegaRow{
				Group: label, Rating: s + 1, Count: c,
			})
		}
	}
	return json.MarshalIndent(spec, "", "  ")
}
