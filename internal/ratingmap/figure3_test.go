package ratingmap

import "testing"

// TestPaperFigure3Example rebuilds the two rating maps of the paper's
// Figure 3 — rm (GroupBy neighborhood, aggregated by food) and rm'
// (GroupBy gender, aggregated by ambiance) — and checks the relative
// statements the paper makes about them in the §4.1 worked example:
//
//   - "The conciseness score of rm' is higher than that of rm, as the
//     number of subgroups in rm' is smaller." (raw compaction gain:
//     100/6 = 16.6 vs 100/3 = 33.3, matching the printed scores)
//   - "The average agreement among each subgroup in rm' is slightly
//     higher than that of rm."
//   - "...the self peculiarity score of rm is low. In contrast, ... rm'
//     ... is higher than that of rm."
func TestPaperFigure3Example(t *testing.T) {
	// rm: GroupBy neighborhood, aggregated by food score.
	rm := mapWithBars(5,
		[]int{1, 2, 1, 5, 7}, // Williamsburg, 16 records, avg 3.9
		[]int{3, 3, 2, 5, 7}, // SoHo, 20, avg 3.5
		[]int{2, 2, 2, 1, 5}, // Kips Bay, 12, avg 3.4
		[]int{3, 1, 2, 1, 5}, // Tribeca, 12, avg 3.3
		[]int{3, 1, 9, 5, 2}, // Chelsea, 20, avg 3.1
		[]int{3, 3, 9, 3, 2}, // Midtown, 20, avg 2.9
	)
	// rm': GroupBy gender, aggregated by ambiance score.
	rmP := mapWithBars(5,
		[]int{5, 6, 4, 9, 11},  // Male, 35, avg 3.4
		[]int{5, 8, 7, 5, 5},   // Unspecified, 30, avg 2.9
		[]int{14, 10, 5, 5, 1}, // Female, 35, avg 2.1
	)

	// Record counts and per-bar averages as printed in the figure.
	if rm.TotalRecords != 100 || rmP.TotalRecords != 100 {
		t.Fatalf("totals = %d, %d; want 100, 100", rm.TotalRecords, rmP.TotalRecords)
	}
	if got := rm.Subgroups[0].AvgScore(); got < 3.85 || got > 3.95 {
		t.Errorf("Williamsburg avg = %.2f, want 3.9", got)
	}
	if got := rmP.Subgroups[2].AvgScore(); got < 2.05 || got > 2.15 {
		t.Errorf("Female avg = %.2f, want 2.1", got)
	}

	// Conciseness: the figure prints the raw compaction gains 16.6 and 33.3.
	if got := RawConciseness(rm); got < 16.5 || got > 16.8 {
		t.Errorf("Conc(rm) = %.2f, want 16.6", got)
	}
	if got := RawConciseness(rmP); got < 33.2 || got > 33.5 {
		t.Errorf("Conc(rm') = %.2f, want 33.3", got)
	}
	if RawConciseness(rmP) <= RawConciseness(rm) {
		t.Error("paper: conciseness of rm' must exceed rm's")
	}
	if BoundedConciseness(rmP) <= BoundedConciseness(rm) {
		t.Error("bounded conciseness must preserve the ordering")
	}

	// Agreement: rm' slightly higher than rm (figure: 0.76 vs 0.74).
	if BoundedAgreement(rmP) <= BoundedAgreement(rm) {
		t.Errorf("paper: agreement of rm' (%.3f) must exceed rm's (%.3f)",
			BoundedAgreement(rmP), BoundedAgreement(rm))
	}

	// Self peculiarity: the figure prints 0.21 for rm and 0.27 for rm'.
	// Our TVD-based definition reproduces rm's 0.21 exactly; rm's printed
	// 0.27 is NOT derivable from "maximum total-variation distance of a
	// subgroup from the whole map" (the maximum over rm's subgroups
	// computes to ≈0.21 under plain TVD), so the figure's exact constant
	// evidently comes from an unstated normalization. We therefore pin the
	// reproducible value and only sanity-bound the other.
	if got := SelfPeculiarity(rm); got < 0.19 || got > 0.23 {
		t.Errorf("Pec_self(rm) = %.3f, want ≈ 0.21 (the figure's value)", got)
	}
	if got := SelfPeculiarityWith(rmP, PecTVD); got <= 0.1 || got >= 0.5 {
		t.Errorf("Pec_self(rm') = %.3f out of plausible range", got)
	}
}
