package ratingmap

import (
	"strings"
	"sync"
	"testing"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// fuzzDB is built once per fuzz process: a database large enough that
// byte-driven record selections exercise every grouping shape (atomic and
// multi-valued attributes, missing values, missing scores, two scales).
var fuzzDB = struct {
	once sync.Once
	db   *dataset.DB
	keys []Key
}{}

func fuzzFixture(tb testing.TB) (*dataset.DB, []Key) {
	fuzzDB.once.Do(func() {
		rs, _ := dataset.NewSchema(
			dataset.Attribute{Name: "gender"},
			dataset.Attribute{Name: "age"})
		is, _ := dataset.NewSchema(
			dataset.Attribute{Name: "city"},
			dataset.Attribute{Name: "tag", Kind: dataset.MultiValued})
		reviewers := dataset.NewEntityTable("reviewers", rs)
		items := dataset.NewEntityTable("items", is)
		genders := []string{"F", "M", "F", "", "M", "F"}
		ages := []string{"young", "old", "mid", "young", "", "old"}
		for i := 0; i < 6; i++ {
			reviewers.AppendRow("u", map[string]string{"gender": genders[i], "age": ages[i]}, nil)
		}
		cities := []string{"A", "B", "C", "", "A"}
		tags := [][]string{{"x", "y"}, {"x"}, nil, {"y", "z"}, {"z"}}
		for i := 0; i < 5; i++ {
			items.AppendRow("i", map[string]string{"city": cities[i]},
				map[string][]string{"tag": tags[i]})
		}
		rt, _ := dataset.NewRatingTable(
			dataset.Dimension{Name: "overall", Scale: 5},
			dataset.Dimension{Name: "value", Scale: 3})
		for n := 0; n < 64; n++ {
			// Deterministic spread incl. missing scores (0).
			rt.Append(n%6, (n*7)%5, []dataset.Score{
				dataset.Score(n % 6),       // 0..5 on scale 5
				dataset.Score((n * 3) % 4), // 0..3 on scale 3
			})
		}
		db := dataset.NewDB("fuzz", reviewers, items, rt)
		if err := db.Freeze(); err != nil {
			panic(err)
		}
		var keys []Key
		for dim := range rt.Dimensions {
			for _, a := range []struct {
				side query.Side
				attr string
			}{
				{query.ReviewerSide, "gender"},
				{query.ReviewerSide, "age"},
				{query.ItemSide, "city"},
				{query.ItemSide, "tag"},
			} {
				keys = append(keys, Key{Side: a.side, Attr: a.attr, Dim: dim})
			}
		}
		fuzzDB.db, fuzzDB.keys = db, keys
	})
	return fuzzDB.db, fuzzDB.keys
}

// accDigest fingerprints an accumulator's complete state: every candidate's
// snapshot histogram plus the shared-scan visit counter.
func accDigest(acc *Accumulator, keys []Key) string {
	var b strings.Builder
	for _, k := range keys {
		if rm := acc.Snapshot(k); rm != nil {
			b.WriteString(rm.Digest())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// FuzzMerge checks the sharded-accumulation identity the engine's parallel
// scan relies on: splitting a record sequence into contiguous pieces,
// accumulating each piece privately, and merging the pieces in order must
// be indistinguishable from accumulating the concatenation in one pass —
// exact histogram counts, record totals, and visit counters. The record
// sequence and the number of pieces are both fuzzer-chosen; positions may
// repeat (Update has multiset semantics).
func FuzzMerge(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5}, uint8(2))
	f.Add([]byte{}, uint8(3))
	f.Add([]byte{63, 63, 63, 0}, uint8(1))
	f.Add([]byte{9, 18, 27, 36, 45, 54, 63}, uint8(7))
	f.Add([]byte{1}, uint8(255))
	db, keys := fuzzFixture(f)
	n := db.Ratings.Len()

	f.Fuzz(func(t *testing.T, raw []byte, pieces uint8) {
		records := make([]int32, len(raw))
		for i, b := range raw {
			records[i] = int32(int(b) % n)
		}
		np := int(pieces)%8 + 1

		b := &Builder{DB: db}
		want := b.NewAccumulator(query.Description{}, keys)
		want.Update(records)

		got := b.NewAccumulator(query.Description{}, keys)
		for w := 0; w < np; w++ {
			lo, hi := w*len(records)/np, (w+1)*len(records)/np
			sh := b.NewAccumulator(query.Description{}, keys)
			sh.Update(records[lo:hi])
			got.Merge(sh)
		}

		if g, w := accDigest(got, keys), accDigest(want, keys); g != w {
			t.Fatalf("merge of %d pieces diverges from one-pass accumulation\n got: %s\nwant: %s", np, g, w)
		}
		for _, k := range keys {
			if got.NumRecords(k) != want.NumRecords(k) {
				t.Fatalf("NumRecords(%v) %d vs %d", k, got.NumRecords(k), want.NumRecords(k))
			}
		}
		if got.RecordVisits() != want.RecordVisits() {
			t.Fatalf("RecordVisits %d vs %d", got.RecordVisits(), want.RecordVisits())
		}
	})
}
