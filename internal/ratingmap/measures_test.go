package ratingmap

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"subdex/internal/dataset"
	"subdex/internal/query"
)

// mapWithBars fabricates a rating map from bar histograms.
func mapWithBars(scale int, bars ...[]int) *RatingMap {
	rm := &RatingMap{Scale: scale, total: make([]int, scale)}
	for i, counts := range bars {
		n := 0
		for s, c := range counts {
			n += c
			rm.total[s] += c
		}
		rm.Subgroups = append(rm.Subgroups, Subgroup{Value: dataset.ValueID(i + 1), Counts: counts, N: n})
		rm.TotalRecords += n
	}
	return rm
}

func TestRawConciseness(t *testing.T) {
	rm := mapWithBars(5, []int{10, 0, 0, 0, 0}, []int{0, 10, 0, 0, 0})
	if got := RawConciseness(rm); !almost(got, 10) { // 20 records / 2 bars
		t.Errorf("RawConciseness = %v, want 10", got)
	}
	empty := &RatingMap{Scale: 5, total: make([]int, 5)}
	if RawConciseness(empty) != 0 || BoundedConciseness(empty) != 0 {
		t.Error("empty map conciseness must be 0")
	}
}

func TestBoundedConcisenessMonotone(t *testing.T) {
	// More records per bar → more concise.
	small := mapWithBars(5, []int{5, 0, 0, 0, 0})
	big := mapWithBars(5, []int{5000, 0, 0, 0, 0})
	if BoundedConciseness(big) <= BoundedConciseness(small) {
		t.Error("conciseness must grow with compaction gain")
	}
	if c := BoundedConciseness(big); c < 0 || c > 1 {
		t.Errorf("bounded conciseness out of range: %v", c)
	}
}

func TestAgreement(t *testing.T) {
	// All scores identical within each bar: perfect agreement.
	perfect := mapWithBars(5, []int{10, 0, 0, 0, 0}, []int{0, 0, 0, 0, 10})
	if got := BoundedAgreement(perfect); !almost(got, 1) {
		t.Errorf("perfect agreement = %v, want 1", got)
	}
	if !math.IsInf(RawAgreement(perfect), 1) {
		t.Error("raw agreement at zero dispersion must be +Inf")
	}
	// Spread scores: lower agreement.
	spread := mapWithBars(5, []int{5, 0, 0, 0, 5})
	if BoundedAgreement(spread) >= BoundedAgreement(perfect) {
		t.Error("spread bar must reduce agreement")
	}
}

func TestAgreementWeighting(t *testing.T) {
	// A singleton zero-SD bar must not dominate a large noisy bar.
	noisyBig := []int{20, 0, 0, 0, 20}
	singleton := []int{1, 0, 0, 0, 0}
	weighted := mapWithBars(5, noisyBig, singleton)
	onlyNoisy := mapWithBars(5, noisyBig)
	if a, b := BoundedAgreement(weighted), BoundedAgreement(onlyNoisy); math.Abs(a-b) > 0.05 {
		t.Errorf("singleton bar changed agreement too much: %v vs %v", a, b)
	}
}

func TestSelfPeculiarity(t *testing.T) {
	// All bars identical to pooled: no peculiarity.
	uniformBar := []int{2, 2, 2, 2, 2}
	flat := mapWithBars(5, uniformBar, uniformBar)
	if got := SelfPeculiarity(flat); !almost(got, 0) {
		t.Errorf("flat map peculiarity = %v, want 0", got)
	}
	// One deviant bar raises it.
	deviant := mapWithBars(5, []int{20, 0, 0, 0, 0}, []int{0, 0, 0, 0, 20})
	if SelfPeculiarity(deviant) <= 0.3 {
		t.Errorf("deviant bars should score high, got %v", SelfPeculiarity(deviant))
	}
}

func TestSelfPeculiaritySupportShrinkage(t *testing.T) {
	// A tiny deviant bar must score less than a large one with the same shape.
	base := []int{0, 50, 50, 50, 0}
	tiny := mapWithBars(5, base, []int{2, 0, 0, 0, 0})
	large := mapWithBars(5, base, []int{60, 0, 0, 0, 0})
	if SelfPeculiarity(tiny) >= SelfPeculiarity(large) {
		t.Errorf("tiny deviant (%v) must score below large deviant (%v)",
			SelfPeculiarity(tiny), SelfPeculiarity(large))
	}
}

func TestGlobalPeculiarity(t *testing.T) {
	rm := mapWithBars(5, []int{10, 0, 0, 0, 0})
	if got := GlobalPeculiarity(rm, nil); got != 0 {
		t.Errorf("no history must give 0, got %v", got)
	}
	seen := NewSeenSet()
	same := mapWithBars(5, []int{10, 0, 0, 0, 0})
	seen.Add(same)
	if got := GlobalPeculiarity(rm, seen); !almost(got, 0) {
		t.Errorf("identical history must give 0, got %v", got)
	}
	opposite := mapWithBars(5, []int{0, 0, 0, 0, 10})
	seen.Add(opposite)
	if got := GlobalPeculiarity(rm, seen); !almost(got, 1) {
		t.Errorf("disjoint history must give 1, got %v", got)
	}
}

func TestScoresBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rm := randomRatingMap(r)
		seen := NewSeenSet()
		if r.Intn(2) == 0 {
			seen.Add(randomRatingMap(r))
		}
		s := ComputeScores(rm, seen)
		for _, v := range s {
			if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestAggregateMaxDominates(t *testing.T) {
	s := Scores{0.2, 0.9, 0.1, 0.3}
	u := s.Aggregate(UtilityConfig{Aggregation: AggMax})
	// The tie-break blend keeps the value within epsilon of the max.
	if u < 0.85 || u > 0.9+1e-9 {
		t.Errorf("max aggregate = %v, want ≈ 0.9", u)
	}
	if got := s.Aggregate(UtilityConfig{Aggregation: AggAvg}); !almost(got, 0.375) {
		t.Errorf("avg aggregate = %v, want 0.375", got)
	}
	if got := s.Aggregate(UtilityConfig{Aggregation: AggSingle, Single: PecSelf}); got != 0.1 {
		t.Errorf("single aggregate = %v, want 0.1", got)
	}
}

func TestAggregateBreaksTies(t *testing.T) {
	// Equal maxima, different support from other criteria.
	strong := Scores{1.0, 0.8, 0.7, 0.6}
	weak := Scores{1.0, 0.1, 0.1, 0.1}
	cfg := UtilityConfig{Aggregation: AggMax}
	if strong.Aggregate(cfg) <= weak.Aggregate(cfg) {
		t.Error("tie-break must favor stronger supporting criteria")
	}
}

// TestDWUtilityPaperExample reproduces the worked example of §3.2.3: m=10
// seen maps, m_food=3, m_ambiance=1; u(rm_food)=0.6 and u(rm'_ambiance)=0.8
// give DW utilities 0.42 and 0.72.
func TestDWUtilityPaperExample(t *testing.T) {
	const (
		dimOverall = 0
		dimFood    = 1
		dimService = 2
		dimAmb     = 3
	)
	seen := NewSeenSet()
	addN := func(dim, n int) {
		for i := 0; i < n; i++ {
			rm := mapWithBars(5, []int{1, 1, 1, 1, 1})
			rm.Dim = dim
			seen.Add(rm)
		}
	}
	addN(dimOverall, 3)
	addN(dimFood, 3)
	addN(dimService, 3)
	addN(dimAmb, 1)
	if seen.Total() != 10 {
		t.Fatalf("m = %d, want 10", seen.Total())
	}
	cfg := UtilityConfig{}
	if got := DWUtility(0.6, dimFood, seen, cfg); !almost(got, 0.42) {
		t.Errorf("û(rm_food) = %v, want 0.42", got)
	}
	if got := DWUtility(0.8, dimAmb, seen, cfg); !almost(got, 0.72) {
		t.Errorf("û(rm'_ambiance) = %v, want 0.72", got)
	}
	// Weighting disabled returns the plain utility.
	cfg.DisableDimensionWeights = true
	if got := DWUtility(0.6, dimFood, seen, cfg); got != 0.6 {
		t.Errorf("unweighted = %v, want 0.6", got)
	}
}

func TestSeenSetWeights(t *testing.T) {
	seen := NewSeenSet()
	if w := seen.Weight(0); w != 1 {
		t.Errorf("empty history weight = %v, want 1", w)
	}
	rm := mapWithBars(5, []int{1, 0, 0, 0, 0})
	rm.Dim = 2
	seen.Add(rm)
	// Dimension 2 saturates the history; the floor keeps the weight positive.
	if w := seen.Weight(2); w <= 0 || w > 0.1 {
		t.Errorf("saturated dimension weight = %v, want small positive", w)
	}
	if w := seen.Weight(0); w != 1 {
		t.Errorf("unseen dimension weight = %v, want 1", w)
	}
	ws := seen.Weights(4)
	if !almost(ws[2], 1) || ws[0] != 0 {
		t.Errorf("getWeights vector = %v", ws)
	}
}

func TestSeenSetClone(t *testing.T) {
	seen := NewSeenSet()
	rm := mapWithBars(5, []int{1, 0, 0, 0, 0})
	seen.Add(rm)
	c := seen.Clone()
	c.Add(rm)
	if seen.Total() != 1 || c.Total() != 2 {
		t.Error("Clone must be independent")
	}
}

func TestUtilitySetNormalization(t *testing.T) {
	maps := []*RatingMap{
		mapWithBars(5, []int{50, 0, 0, 0, 0}),
		mapWithBars(5, []int{1, 1, 1, 1, 1}),
		mapWithBars(5, []int{0, 0, 0, 0, 3}),
	}
	seen := NewSeenSet()
	cfg := UtilityConfig{Aggregation: AggMax, Normalize: true}
	utils := UtilitySet(maps, seen, cfg)
	if len(utils) != 3 {
		t.Fatal("wrong arity")
	}
	for _, u := range utils {
		if u < 0 || u > 1+1e-9 {
			t.Errorf("normalized utility out of range: %v", u)
		}
	}
}

func TestCriteriaEstimateMatchesComputeScores(t *testing.T) {
	// The allocation-light estimator must agree with the materialized path.
	rng := rand.New(rand.NewSource(19))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomFixture(r)
		b := Builder{DB: db}
		keys := []Key{
			{Side: query.ReviewerSide, Attr: "gender", Dim: 0},
			{Side: query.ItemSide, Attr: "city", Dim: 0},
		}
		recs := make([]int32, db.Ratings.Len())
		for i := range recs {
			recs[i] = int32(i)
		}
		acc := b.NewAccumulator(query.Description{}, keys)
		acc.Update(recs)
		seen := NewSeenSet()
		if r.Intn(2) == 0 {
			seen.Add(randomRatingMap(r))
		}
		for _, k := range keys {
			est, ok := acc.CriteriaEstimate(k, seen, 1)
			if !ok {
				return false
			}
			exact := ComputeScores(acc.Snapshot(k), seen)
			for c := Criterion(0); c < NumCriteria; c++ {
				if math.Abs(est[c]-exact[c]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// randomFixture builds a random small database for the estimator property.
func randomFixture(r *rand.Rand) *dataset.DB {
	rs, _ := dataset.NewSchema(dataset.Attribute{Name: "gender"})
	is, _ := dataset.NewSchema(dataset.Attribute{Name: "city"})
	reviewers := dataset.NewEntityTable("reviewers", rs)
	items := dataset.NewEntityTable("items", is)
	genders := []string{"F", "M", "X"}
	cities := []string{"a", "b", "c", "d"}
	nU, nI := 2+r.Intn(6), 2+r.Intn(6)
	for i := 0; i < nU; i++ {
		reviewers.AppendRow("u"+itoa(i), map[string]string{"gender": genders[r.Intn(len(genders))]}, nil)
	}
	for i := 0; i < nI; i++ {
		items.AppendRow("i"+itoa(i), map[string]string{"city": cities[r.Intn(len(cities))]}, nil)
	}
	rt, _ := dataset.NewRatingTable(dataset.Dimension{Name: "overall", Scale: 5})
	n := 5 + r.Intn(60)
	for i := 0; i < n; i++ {
		rt.Append(r.Intn(nU), r.Intn(nI), []dataset.Score{dataset.Score(1 + r.Intn(5))})
	}
	db := dataset.NewDB("rand", reviewers, items, rt)
	db.Freeze()
	return db
}

func itoa(i int) string {
	if i < 10 {
		return string(rune('0' + i))
	}
	return string(rune('0'+i/10)) + string(rune('0'+i%10))
}
