package cluster

import (
	"context"
	"errors"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/engine"
	"subdex/internal/gen"
	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// faultCluster boots one worker per hook (nil = healthy) and a
// coordinator over them.
func faultCluster(t testing.TB, db *dataset.DB, ccfg CoordinatorConfig,
	hooks []func(req *ScanRequest) error) *Coordinator {
	t.Helper()
	urls := make([]string, len(hooks))
	for i, hook := range hooks {
		wex, err := core.NewExplorer(db, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewWorker(wex, WorkerOptions{ScanHook: hook}).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	ccfg.Workers = urls
	if ccfg.HealthInterval == 0 {
		ccfg.HealthInterval = -1
	}
	if ccfg.LocalThreshold == 0 {
		ccfg.LocalThreshold = -1 // faults must reach the workers to fire
	}
	coord, err := NewCoordinator(context.Background(), db, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	bindTestFingerprint(t, coord, db)
	return coord
}

// TestFaultRetryThenSucceed kills one worker's first scan attempt: the
// bounded retry must re-dispatch the partition to the next worker and
// the final result must be digest-identical to single-node — a fault
// that retry absorbs leaves no trace in the answer.
func TestFaultRetryThenSucceed(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 4, Scale: 1})
	group, keys := allKeys(t, db)

	var failures atomic.Int32
	failOnce := func(req *ScanRequest) error {
		if failures.Add(1) == 1 {
			return errors.New("injected crash")
		}
		return nil
	}
	reg := obs.NewRegistry()
	coord := faultCluster(t, db, CoordinatorConfig{Partitions: 3, Retries: 2, Registry: reg},
		[]func(req *ScanRequest) error{failOnce, nil, nil})

	g := engine.NewGenerator(db)
	g.Scanner = coord
	cfg := engine.DefaultConfig()
	cfg.Pruning = engine.PruneNone
	got, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.NewGenerator(db).TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded {
		t.Fatal("retry-absorbed fault degraded the result")
	}
	if ratingmap.DigestMaps(got.Maps) != ratingmap.DigestMaps(want.Maps) {
		t.Fatal("digest diverged after retry")
	}
	if got.RecordsProcessed != want.RecordsProcessed {
		t.Fatalf("RecordsProcessed %d, want %d", got.RecordsProcessed, want.RecordsProcessed)
	}
	if failures.Load() < 1 {
		t.Fatal("fault hook never fired — the test exercised nothing")
	}
	if coord.m.Retries.Value() < 1 {
		t.Fatalf("subdex_cluster_retries_total = %d, want ≥ 1", coord.m.Retries.Value())
	}
	if coord.m.PartitionsLost.Value() != 0 {
		t.Fatalf("subdex_cluster_partitions_lost_total = %d, want 0", coord.m.PartitionsLost.Value())
	}
}

// TestFaultStallTimesOutAndRetries stalls one worker past the partition
// timeout: the attempt must be abandoned at the deadline and retried on
// the next worker, again without digest divergence.
func TestFaultStallTimesOutAndRetries(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 4, Scale: 1})
	group, keys := allKeys(t, db)

	var stalls atomic.Int32
	stallOnce := func(req *ScanRequest) error {
		if stalls.Add(1) == 1 {
			time.Sleep(600 * time.Millisecond) // >> PartitionTimeout below
		}
		return nil
	}
	coord := faultCluster(t, db, CoordinatorConfig{
		Partitions: 2, Retries: 2, PartitionTimeout: 150 * time.Millisecond,
	}, []func(req *ScanRequest) error{stallOnce, nil})

	g := engine.NewGenerator(db)
	g.Scanner = coord
	cfg := engine.DefaultConfig()
	cfg.Pruning = engine.PruneNone
	got, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.NewGenerator(db).TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded || ratingmap.DigestMaps(got.Maps) != ratingmap.DigestMaps(want.Maps) {
		t.Fatalf("stall retry diverged: degraded=%v", got.Degraded)
	}
}

// TestFaultPartitionLostContract pins the exact degraded contract when
// a partition's every attempt fails: Result{Degraded: true,
// RecordsProcessed: <merged prefix>}, Profile.DegradedReason
// "partition_lost", digest equal to an honest scan of the prefix, and
// the loss metered.
func TestFaultPartitionLostContract(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 4, Scale: 1})
	group, keys := allKeys(t, db)
	n := len(group.Records)

	// Three workers, three partitions, zero retries: partition p is
	// pinned to worker p, and worker 2 always fails → partition 2 lost.
	alwaysFail := func(req *ScanRequest) error { return errors.New("injected outage") }
	reg := obs.NewRegistry()
	coord := faultCluster(t, db, CoordinatorConfig{Partitions: 3, Retries: -1, Registry: reg},
		[]func(req *ScanRequest) error{nil, nil, alwaysFail})

	g := engine.NewGenerator(db)
	g.Scanner = coord
	cfg := engine.DefaultConfig()
	cfg.Pruning = engine.PruneNone
	res, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("lost partition did not set Degraded")
	}
	if want := 2 * n / 3; res.RecordsProcessed != want {
		t.Fatalf("RecordsProcessed = %d, want the merged two-partition prefix %d", res.RecordsProcessed, want)
	}
	if res.Profile.DegradedReason != "partition_lost" {
		t.Fatalf("DegradedReason = %q, want partition_lost", res.Profile.DegradedReason)
	}
	lost := 0
	for _, pp := range res.Profile.Cluster {
		if pp.Lost {
			lost++
		}
	}
	if lost != 1 {
		t.Fatalf("profile marks %d lost partitions, want 1", lost)
	}
	prefix := *group
	prefix.Records = group.Records[:2*n/3]
	want, err := engine.NewGenerator(db).TopMaps(&prefix, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ratingmap.DigestMaps(res.Maps) != ratingmap.DigestMaps(want.Maps) {
		t.Fatal("degraded maps diverge from an honest scan of the merged prefix")
	}
	if coord.m.PartitionsLost.Value() != 1 {
		t.Fatalf("subdex_cluster_partitions_lost_total = %d, want 1", coord.m.PartitionsLost.Value())
	}
}

// TestFaultTotalOutage fails every worker: with nothing merged the call
// must error (matching a pre-first-phase deadline), not fabricate an
// empty result.
func TestFaultTotalOutage(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 4, Scale: 1})
	group, keys := allKeys(t, db)
	alwaysFail := func(req *ScanRequest) error { return errors.New("injected outage") }
	coord := faultCluster(t, db, CoordinatorConfig{Partitions: 3, Retries: 1},
		[]func(req *ScanRequest) error{alwaysFail, alwaysFail, alwaysFail})

	g := engine.NewGenerator(db)
	g.Scanner = coord
	cfg := engine.DefaultConfig()
	cfg.Pruning = engine.PruneNone
	if _, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg); err == nil {
		t.Fatal("total outage returned a result, want error")
	}
}

// TestLocalThresholdBypassesWorkers: with the default local threshold,
// a sub-threshold scan must fold on the coordinator's own dataset copy
// — exact results even while every worker is failing — and a scan above
// the threshold must still reach (and here lose) the workers.
func TestLocalThresholdBypassesWorkers(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 4, Scale: 1})
	group, keys := allKeys(t, db)
	n := len(group.Records)
	alwaysFail := func(req *ScanRequest) error { return errors.New("injected outage") }
	coord := faultCluster(t, db, CoordinatorConfig{LocalThreshold: n - 1, Registry: obs.NewRegistry()},
		[]func(req *ScanRequest) error{alwaysFail})

	g := engine.NewGenerator(db)
	g.Scanner = coord
	cfg := engine.DefaultConfig()
	cfg.Pruning = engine.PruneNone
	small := &query.RatingGroup{Desc: group.Desc, Records: group.Records[:n-1]}
	got, err := g.TopMaps(small, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.NewGenerator(db).TopMaps(small, keys, ratingmap.NewSeenSet(), 6, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded || ratingmap.DigestMaps(got.Maps) != ratingmap.DigestMaps(want.Maps) {
		t.Fatalf("local-threshold scan wrong: degraded=%v", got.Degraded)
	}
	if coord.m.RPCs.Value() != 0 {
		t.Fatalf("sub-threshold scan made %d worker RPCs, want 0", coord.m.RPCs.Value())
	}
	// One record over the threshold: the scan must go to the (failing)
	// workers and error out with nothing merged.
	if _, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg); err == nil {
		t.Fatal("above-threshold scan did not reach the failing workers")
	}
	if coord.m.RPCs.Value() == 0 {
		t.Fatal("above-threshold scan made no worker RPCs")
	}
}

// TestHealthProbeMarksDeadWorker: the health loop must flip a downed
// worker's verdict and the gauge.
func TestHealthProbeMarksDeadWorker(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 4, Scale: 1})
	wex, err := core.NewExplorer(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	live := httptest.NewServer(NewWorker(wex, WorkerOptions{}).Handler())
	t.Cleanup(live.Close)
	dead := httptest.NewServer(NewWorker(wex, WorkerOptions{}).Handler())
	dead.Close() // already down when the coordinator boots

	reg := obs.NewRegistry()
	coord, err := NewCoordinator(context.Background(), db, CoordinatorConfig{
		Workers:          []string{live.URL, dead.URL},
		HealthInterval:   20 * time.Millisecond,
		PartitionTimeout: time.Second,
		Registry:         reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	bindTestFingerprint(t, coord, db)

	deadline := time.Now().Add(5 * time.Second)
	for coord.HealthyWorkers() != 1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := coord.HealthyWorkers(); got != 1 {
		t.Fatalf("HealthyWorkers = %d, want 1", got)
	}
	if v := coord.m.WorkersHealthy.Value(); v != 1 {
		t.Fatalf("subdex_cluster_workers_healthy = %v, want 1", v)
	}
}
