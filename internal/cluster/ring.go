// Consistent-hash ring for the front-tier session router. Virtual nodes
// (FNV-1a 64 over "node#replica") smooth the key distribution; lookups
// binary-search the sorted point list and wrap. Determinism matters more
// than hash quality here: the same key must route to the same backend on
// every router process, so points are ordered by (hash, node) with no
// process-local state.

package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"
)

// defaultRingReplicas is the virtual-node count per backend.
const defaultRingReplicas = 64

type ringPoint struct {
	hash uint64
	node int // index into nodes
}

// Ring is an immutable consistent-hash ring over backend indices.
type Ring struct {
	nodes  []string
	points []ringPoint
}

// NewRing builds a ring with the given virtual-node count per backend
// (≤ 0 selects the default).
func NewRing(nodes []string, replicas int) *Ring {
	if replicas <= 0 {
		replicas = defaultRingReplicas
	}
	r := &Ring{nodes: append([]string(nil), nodes...)}
	for i, n := range r.nodes {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(n + "#" + strconv.Itoa(v)), node: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	// FNV-1a diffuses poorly over short, similar keys ("node#0",
	// "node#1", …), which clusters ring points and skews ownership; a
	// splitmix64-style finisher avalanches the bits. Still a pure
	// function of the key, so cross-process determinism holds.
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Lookup returns the backend index owning key (the first ring point at
// or after the key's hash, wrapping), or -1 on an empty ring.
func (r *Ring) Lookup(key string) int {
	if len(r.points) == 0 {
		return -1
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Nodes returns the backend list the ring was built over.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }
