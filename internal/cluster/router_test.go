package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"subdex/internal/core"
	"subdex/internal/gen"
	"subdex/internal/server"
)

// testRouter boots n real session-owning servers over one demo dataset
// and a router in front of them; returns the router's base URL.
func testRouter(t *testing.T, n int) (string, *Router) {
	t.Helper()
	db := buildDB(t, gen.Demo, gen.Config{Seed: 1, Scale: 1})
	backends := make([]string, n)
	for i := 0; i < n; i++ {
		s, err := server.New(db, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(s.Close)
		srv := httptest.NewServer(s.Handler())
		t.Cleanup(srv.Close)
		backends[i] = srv.URL
	}
	rt, err := NewRouter(backends, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	t.Cleanup(front.Close)
	return front.URL, rt
}

func createSession(t *testing.T, base, key string) int {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/sessions",
		bytes.NewReader([]byte(`{"mode":"rp"}`)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set(sessionKeyHeader, key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: status %d", resp.StatusCode)
	}
	var body struct {
		ID   int    `json:"id"`
		Mode string `json:"mode"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Mode == "" {
		t.Fatal("create response lost its mode field in the id rewrite")
	}
	return body.ID
}

// TestRouterSessionLifecycle creates, steps, and deletes sessions
// through the router across 3 backends: every global id must route back
// to the backend that owns the session.
func TestRouterSessionLifecycle(t *testing.T) {
	base, _ := testRouter(t, 3)

	ids := make([]int, 0, 9)
	seen := make(map[int]bool)
	for i := 0; i < 9; i++ {
		id := createSession(t, base, fmt.Sprintf("user-%d", i))
		if seen[id] {
			t.Fatalf("duplicate global session id %d — namespacing broken", id)
		}
		seen[id] = true
		ids = append(ids, id)
	}
	// Every session must be steppable via its global id, no matter which
	// backend owns it.
	for _, id := range ids {
		resp, err := http.Get(fmt.Sprintf("%s/sessions/%d/step", base, id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("step session %d: status %d", id, resp.StatusCode)
		}
	}
	// Delete them all; a second delete answers 404 from the owning
	// backend, proving the route is stable.
	for _, id := range ids {
		for attempt, want := range []int{http.StatusOK, http.StatusNotFound} {
			req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/sessions/%d", base, id), nil)
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != want {
				t.Fatalf("delete %d attempt %d: status %d, want %d", id, attempt, resp.StatusCode, want)
			}
		}
	}
}

// TestRouterKeyAffinity: equal session keys must land on the same
// backend (global ids congruent mod n); the ids remain distinct.
func TestRouterKeyAffinity(t *testing.T) {
	base, rt := testRouter(t, 3)
	n := len(rt.Backends())
	a := createSession(t, base, "alice")
	b := createSession(t, base, "alice")
	if a%n != b%n {
		t.Fatalf("same key routed to backends %d and %d", a%n, b%n)
	}
	if a == b {
		t.Fatalf("two sessions share global id %d", a)
	}
}

// TestRouterRejectsForeignIDs: global ids below n decode to no backend
// and must 404 at the router without touching a backend.
func TestRouterRejectsForeignIDs(t *testing.T) {
	base, rt := testRouter(t, 3)
	n := len(rt.Backends())
	for id := -1; id < n; id++ {
		resp, err := http.Get(fmt.Sprintf("%s/sessions/%d/step", base, id))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("id %d: status %d, want 404", id, resp.StatusCode)
		}
	}
	resp, err := http.Get(base + "/sessions/not-a-number/step")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("non-numeric id: status %d, want 404", resp.StatusCode)
	}
}

// TestRouterPassthrough: non-session paths are served by a ring-chosen
// backend — healthz must answer through the router.
func TestRouterPassthrough(t *testing.T) {
	base, _ := testRouter(t, 2)
	for i := 0; i < 3; i++ {
		resp, err := http.Get(base + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz via router: status %d", resp.StatusCode)
		}
	}
}

// TestRouterBackendDown: a dead backend answers 502 through the proxy's
// error handler, not a hang or a panic.
func TestRouterBackendDown(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close()
	rt, err := NewRouter([]string{dead.URL}, RouterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(rt.Handler())
	defer front.Close()
	resp, err := http.Post(front.URL+"/sessions", "application/json",
		bytes.NewReader([]byte(`{"mode":"rp"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("dead backend: status %d, want 502", resp.StatusCode)
	}
}
