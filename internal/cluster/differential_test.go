package cluster

import (
	"context"
	"net/http/httptest"
	"testing"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/engine"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// testCluster boots nodes in-process worker servers over db plus a
// coordinator wired to them, all torn down with the test.
func testCluster(t testing.TB, db *dataset.DB, nodes int, ccfg CoordinatorConfig,
	wopts WorkerOptions) *Coordinator {
	t.Helper()
	urls := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		wex, err := core.NewExplorer(db, core.Config{})
		if err != nil {
			t.Fatal(err)
		}
		srv := httptest.NewServer(NewWorker(wex, wopts).Handler())
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	ccfg.Workers = urls
	if ccfg.HealthInterval == 0 {
		ccfg.HealthInterval = -1 // no background probes unless a test wants them
	}
	if ccfg.LocalThreshold == 0 {
		ccfg.LocalThreshold = -1 // force every scan through the workers
	}
	coord, err := NewCoordinator(context.Background(), db, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord
}

// buildDB materializes one generated dataset.
func buildDB(t testing.TB, build func(gen.Config) (*dataset.DB, error), cfg gen.Config) *dataset.DB {
	t.Helper()
	db, err := build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// allKeys enumerates every candidate over the whole-database group.
func allKeys(t testing.TB, db *dataset.DB) (*query.RatingGroup, []ratingmap.Key) {
	t.Helper()
	qe, err := query.NewEngine(db)
	if err != nil {
		t.Fatal(err)
	}
	group, err := qe.Materialize(query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	g := engine.NewGenerator(db)
	return group, g.Candidates(qe, query.Description{})
}

// bindTestFingerprint arms coord with the fingerprint of a plain
// explorer over db — what core.NewExplorer does when the coordinator is
// installed via Config.Scanner.
func bindTestFingerprint(t testing.TB, coord *Coordinator, db *dataset.DB) {
	t.Helper()
	ex, err := core.NewExplorer(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	coord.BindFingerprint(ex.Fingerprint())
}

// TestDifferentialClusterMatrix is the headline proof: distributed
// TopMaps digests must be byte-identical to single-node across datasets
// × partition counts × worker counts, on the unphased and the phased
// path, including 1-partition and more-partitions-than-records edges.
func TestDifferentialClusterMatrix(t *testing.T) {
	datasets := []struct {
		name  string
		build func(gen.Config) (*dataset.DB, error)
		cfg   gen.Config
	}{
		{"demo", gen.Demo, gen.Config{Seed: 1, Scale: 1}},
		{"demo-reseed", gen.Demo, gen.Config{Seed: 5, Scale: 0.6}},
		{"yelp", gen.Yelp, gen.Config{Seed: 3, Scale: 0.01}},
		{"hotels", gen.Hotels, gen.Config{Seed: 2, Scale: 0.01}},
	}
	for _, ds := range datasets {
		ds := ds
		t.Run(ds.name, func(t *testing.T) {
			t.Parallel()
			db := buildDB(t, ds.build, ds.cfg)
			group, keys := allKeys(t, db)

			runLocal := func(cfg engine.Config) *engine.Result {
				res, err := engine.NewGenerator(db).TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			exact := engine.DefaultConfig()
			exact.Pruning = engine.PruneNone
			phased := engine.DefaultConfig()
			phased.Pruning = engine.PruneBoth
			phased.Phases = 4
			phased.MinPhaseRecords = 1
			localExact, localPhased := runLocal(exact), runLocal(phased)

			for _, nodes := range []int{1, 2, 3} {
				for _, parts := range []int{1, 2, 3, 7, len(group.Records) + 50} {
					coord := testCluster(t, db, nodes, CoordinatorConfig{Partitions: parts}, WorkerOptions{})
					bindTestFingerprint(t, coord, db)
					g := engine.NewGenerator(db)
					g.Scanner = coord
					for name, want := range map[string]*engine.Result{"exact": localExact, "phased": localPhased} {
						cfg := exact
						if name == "phased" {
							cfg = phased
						}
						got, err := g.TopMaps(group, keys, ratingmap.NewSeenSet(), 6, cfg)
						if err != nil {
							t.Fatalf("nodes=%d parts=%d %s: %v", nodes, parts, name, err)
						}
						if got.Degraded {
							t.Fatalf("nodes=%d parts=%d %s: degraded without faults", nodes, parts, name)
						}
						if ratingmap.DigestMaps(got.Maps) != ratingmap.DigestMaps(want.Maps) {
							t.Fatalf("nodes=%d parts=%d %s: distributed digests diverge from single-node", nodes, parts, name)
						}
						if got.RecordsProcessed != want.RecordsProcessed {
							t.Fatalf("nodes=%d parts=%d %s: records %d vs %d", nodes, parts, name,
								got.RecordsProcessed, want.RecordsProcessed)
						}
						for i := range want.Utilities {
							if got.Utilities[i] != want.Utilities[i] {
								t.Fatalf("nodes=%d parts=%d %s: utility[%d] %g vs %g", nodes, parts, name,
									i, got.Utilities[i], want.Utilities[i])
							}
						}
					}
				}
			}
		})
	}
}

// TestDifferentialTinyGroups drives the more-partitions-than-records
// edge explicitly: groups of 0–3 records scanned with 64 requested
// partitions must clamp, not crash, and stay exact.
func TestDifferentialTinyGroups(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 9, Scale: 1})
	group, keys := allKeys(t, db)
	coord := testCluster(t, db, 3, CoordinatorConfig{Partitions: 64}, WorkerOptions{})
	bindTestFingerprint(t, coord, db)
	gDist := engine.NewGenerator(db)
	gDist.Scanner = coord
	gLocal := engine.NewGenerator(db)
	cfg := engine.DefaultConfig()
	cfg.Pruning = engine.PruneNone

	for _, n := range []int{1, 2, 3} {
		tiny := &query.RatingGroup{Desc: group.Desc, Records: group.Records[:n]}
		got, err := gDist.TopMaps(tiny, keys, ratingmap.NewSeenSet(), 6, cfg)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want, err := gLocal.TopMaps(tiny, keys, ratingmap.NewSeenSet(), 6, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ratingmap.DigestMaps(got.Maps) != ratingmap.DigestMaps(want.Maps) {
			t.Fatalf("n=%d: digests diverge", n)
		}
		if got.RecordsProcessed != n {
			t.Fatalf("n=%d: RecordsProcessed = %d", n, got.RecordsProcessed)
		}
	}
	// A zero-record range is a no-op, not an RPC.
	empty := &query.RatingGroup{Desc: group.Desc, Records: nil}
	if res, err := gDist.TopMaps(empty, keys, ratingmap.NewSeenSet(), 6, cfg); err != nil || res.RecordsProcessed != 0 {
		t.Fatalf("empty group: res=%+v err=%v", res, err)
	}
}

// TestDifferentialExplorerEndToEnd runs whole exploration steps (group
// materialization, generation, diversity selection, recommendations)
// through a coordinator-backed explorer and compares against a plain
// one — the integration the golden-trace suite then locks byte-for-byte.
func TestDifferentialExplorerEndToEnd(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 1, Scale: 1})
	coord := testCluster(t, db, 3, CoordinatorConfig{}, WorkerOptions{})

	dist, err := core.NewExplorer(db, core.Config{Scanner: coord})
	if err != nil {
		t.Fatal(err)
	}
	local, err := core.NewExplorer(db, core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if dist.Fingerprint() != local.Fingerprint() {
		t.Fatalf("scanner changed the fingerprint: %s vs %s — it must stay a scheduling knob",
			dist.Fingerprint(), local.Fingerprint())
	}
	sd, err := core.NewSession(dist, core.RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	sl, err := core.NewSession(local, core.RecommendationPowered, query.Description{})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 4; step++ {
		rd, err := sd.Step()
		if err != nil {
			t.Fatalf("step %d (distributed): %v", step, err)
		}
		rl, err := sl.Step()
		if err != nil {
			t.Fatalf("step %d (local): %v", step, err)
		}
		if ratingmap.DigestMaps(rd.Maps) != ratingmap.DigestMaps(rl.Maps) {
			t.Fatalf("step %d: map digests diverge", step)
		}
		if len(rd.Recommendations) != len(rl.Recommendations) {
			t.Fatalf("step %d: recommendation counts diverge", step)
		}
		for i := range rl.Recommendations {
			if rd.Recommendations[i].Op.String() != rl.Recommendations[i].Op.String() {
				t.Fatalf("step %d: recommendation %d diverges", step, i)
			}
		}
		if len(rd.Recommendations) > 0 {
			if err := sd.ApplyRecommendation(0); err != nil {
				t.Fatal(err)
			}
			if err := sl.ApplyRecommendation(0); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestScanRangeGuards pins the hard-error surface: unbound fingerprint
// and out-of-range scans fail, they never degrade.
func TestScanRangeGuards(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 1, Scale: 1})
	group, keys := allKeys(t, db)
	coord := testCluster(t, db, 1, CoordinatorConfig{}, WorkerOptions{})

	if _, err := coord.ScanRange(context.Background(), group, keys, 0, len(group.Records)); err == nil {
		t.Fatal("unbound fingerprint accepted")
	}
	bindTestFingerprint(t, coord, db)
	if _, err := coord.ScanRange(context.Background(), group, keys, 0, len(group.Records)+1); err == nil {
		t.Fatal("out-of-range scan accepted")
	}
	if _, err := coord.ScanRange(context.Background(), group, keys, -1, 0); err == nil {
		t.Fatal("negative lo accepted")
	}
}

// TestFingerprintGuard wires a worker with different engine config: the
// coordinator must refuse its frames and (with no other worker) lose
// the partition rather than merge incompatible state.
func TestFingerprintGuard(t *testing.T) {
	db := buildDB(t, gen.Demo, gen.Config{Seed: 1, Scale: 1})
	group, keys := allKeys(t, db)

	// Worker runs k=9: result-affecting, so its fingerprint differs.
	wex, err := core.NewExplorer(db, core.Config{K: 9})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewWorker(wex, WorkerOptions{}).Handler())
	defer srv.Close()
	coord, err := NewCoordinator(context.Background(), db, CoordinatorConfig{
		Workers: []string{srv.URL}, HealthInterval: -1, LocalThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	bindTestFingerprint(t, coord, db)

	rs, err := coord.ScanRange(context.Background(), group, keys, 0, len(group.Records))
	if err != nil {
		t.Fatal(err)
	}
	if rs.Lost != rs.Partitions || rs.Lost == 0 {
		t.Fatalf("mixed-version worker served a scan: lost %d of %d partitions", rs.Lost, rs.Partitions)
	}
}
