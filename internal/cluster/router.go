// Front-tier session router: a thin stdlib reverse proxy that pins each
// session to one backend subdexd process by consistent hashing, so a
// fleet of session-owning servers scales horizontally without sharing
// session state.
//
// Sessions are identified by small integers on every backend, so the
// router namespaces them arithmetically: a session created on backend b
// (of n) with local id l is exposed as global id l*n + b. The mapping is
// stateless and bijective — any router instance (or a restarted one)
// decodes any global id to its backend without coordination.
//
// Creation is routed by consistent hash of the client-supplied
// X-Subdex-Session-Key header (falling back to a router-local sequence
// — the fallback only balances load, it does not promise cross-router
// affinity, which the id itself provides from then on).

package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"subdex/internal/obs"
)

// sessionKeyHeader lets clients pin session placement (e.g. a user id):
// equal keys land on the same backend on every router.
const sessionKeyHeader = "X-Subdex-Session-Key"

// RouterOptions configures NewRouter.
type RouterOptions struct {
	// Replicas is the ring's virtual-node count per backend (≤ 0 default).
	Replicas int
	// Registry receives subdex_cluster_router_* instruments.
	Registry *obs.Registry
}

// Router proxies the server API across n session-owning backends.
type Router struct {
	backends []string
	ring     *Ring
	proxies  []*httputil.ReverseProxy
	m        *RouterMetrics
	seq      atomic.Uint64
}

// NewRouter builds a router over backend base URLs ("http://host:port").
func NewRouter(backends []string, opts RouterOptions) (*Router, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one backend")
	}
	rt := &Router{
		backends: append([]string(nil), backends...),
		ring:     NewRing(backends, opts.Replicas),
		m:        NewRouterMetrics(opts.Registry),
	}
	n := len(rt.backends)
	for b, raw := range rt.backends {
		target, err := url.Parse(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: backend %q: %w", raw, err)
		}
		p := httputil.NewSingleHostReverseProxy(target)
		b := b
		p.ModifyResponse = func(resp *http.Response) error {
			// Only session creation answers with a backend-local id.
			if resp.Request.Method != http.MethodPost || resp.Request.URL.Path != "/sessions" ||
				resp.StatusCode != http.StatusCreated {
				return nil
			}
			body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			if err != nil {
				return err
			}
			var fields map[string]json.RawMessage
			if err := json.Unmarshal(body, &fields); err != nil {
				return fmt.Errorf("cluster: create response not JSON: %w", err)
			}
			var local int
			if err := json.Unmarshal(fields["id"], &local); err != nil {
				return fmt.Errorf("cluster: create response id: %w", err)
			}
			fields["id"] = json.RawMessage(strconv.Itoa(local*n + b))
			out, err := json.Marshal(fields)
			if err != nil {
				return err
			}
			resp.Body = io.NopCloser(bytes.NewReader(out))
			resp.ContentLength = int64(len(out))
			resp.Header.Set("Content-Length", strconv.Itoa(len(out)))
			return nil
		}
		errs := rt.m // capture once; ErrorHandler runs per request
		p.ErrorHandler = func(w http.ResponseWriter, r *http.Request, err error) {
			errs.addProxyError()
			http.Error(w, fmt.Sprintf("backend unavailable: %v", err), http.StatusBadGateway)
		}
		rt.proxies = append(rt.proxies, p)
	}
	return rt, nil
}

// Backends reports the backend list.
func (rt *Router) Backends() []string { return append([]string(nil), rt.backends...) }

// Handler returns the router's HTTP surface: the full server API, with
// /sessions fan-out by consistent hash, /sessions/{id} pinned by the id
// namespace, and everything else (healthz, metrics, debug) served by a
// stable ring-chosen backend.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := len(rt.backends)
		switch {
		case r.URL.Path == "/sessions":
			key := r.Header.Get(sessionKeyHeader)
			if key == "" {
				key = "seq-" + strconv.FormatUint(rt.seq.Add(1), 10)
			}
			rt.forward(w, r, rt.ring.Lookup(key))
		case strings.HasPrefix(r.URL.Path, "/sessions/"):
			rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
			idPart, tail, _ := strings.Cut(rest, "/")
			global, err := strconv.Atoi(idPart)
			if err != nil || global < n {
				// No backend can own a global id below n (local ids start
				// at 1, so the smallest global id is 1*n+0 = n).
				rt.m.addProxyError()
				http.Error(w, "unknown session", http.StatusNotFound)
				return
			}
			backend := global % n
			local := global / n
			r2 := r.Clone(r.Context())
			r2.URL.Path = "/sessions/" + strconv.Itoa(local)
			if tail != "" {
				r2.URL.Path += "/" + tail
			}
			rt.forward(w, r2, backend)
		default:
			rt.forward(w, r, rt.ring.Lookup(r.URL.Path))
		}
	})
}

func (rt *Router) forward(w http.ResponseWriter, r *http.Request, backend int) {
	if backend < 0 || backend >= len(rt.proxies) {
		rt.m.addProxyError()
		http.Error(w, "no backend", http.StatusBadGateway)
		return
	}
	rt.m.addProxied()
	rt.proxies[backend].ServeHTTP(w, r)
}
