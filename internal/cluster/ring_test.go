package cluster

import (
	"fmt"
	"testing"
)

func ringNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return nodes
}

// TestRingDeterministic: two rings over the same nodes must agree on
// every key — cross-process routing stability is the whole point.
func TestRingDeterministic(t *testing.T) {
	a := NewRing(ringNodes(5), 0)
	b := NewRing(ringNodes(5), 0)
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("session-key-%d", i)
		if a.Lookup(key) != b.Lookup(key) {
			t.Fatalf("rings disagree on %q", key)
		}
	}
}

// TestRingDistribution: with virtual nodes, no backend should own a
// wildly disproportionate share of keys.
func TestRingDistribution(t *testing.T) {
	const keys = 10000
	r := NewRing(ringNodes(4), 0)
	counts := make([]int, 4)
	for i := 0; i < keys; i++ {
		n := r.Lookup(fmt.Sprintf("user-%d", i))
		if n < 0 || n >= 4 {
			t.Fatalf("Lookup out of range: %d", n)
		}
		counts[n]++
	}
	for node, c := range counts {
		// Fair share is 2500; accept [1000, 4500] — loose on purpose,
		// this guards against degenerate all-on-one-node hashing, not
		// perfect balance.
		if c < keys/10 || c > keys*45/100 {
			t.Fatalf("node %d owns %d of %d keys: distribution degenerate (%v)", node, c, keys, counts)
		}
	}
}

// TestRingMinimalRemap: adding a backend must move only a minority of
// keys — the property that makes the hash "consistent".
func TestRingMinimalRemap(t *testing.T) {
	const keys = 10000
	before := NewRing(ringNodes(4), 0)
	after := NewRing(ringNodes(5), 0) // same first 4 nodes + one more
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("user-%d", i)
		if before.Lookup(key) != after.Lookup(key) {
			moved++
		}
	}
	// Ideal is keys/5 = 2000; modulo hashing would move ~8000.
	if moved > keys*40/100 {
		t.Fatalf("adding one node moved %d of %d keys — not consistent hashing", moved, keys)
	}
	if moved == 0 {
		t.Fatal("adding a node moved nothing — the new node owns no keys")
	}
}

// TestRingEdges pins empty-ring and single-node behavior.
func TestRingEdges(t *testing.T) {
	if got := NewRing(nil, 0).Lookup("x"); got != -1 {
		t.Fatalf("empty ring Lookup = %d, want -1", got)
	}
	one := NewRing(ringNodes(1), 3)
	for _, key := range []string{"", "a", "zzz"} {
		if got := one.Lookup(key); got != 0 {
			t.Fatalf("single-node ring Lookup(%q) = %d, want 0", key, got)
		}
	}
}
