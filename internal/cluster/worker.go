// Cluster scan worker: the process-boundary twin of engine.ScanInto.
// A worker owns a full frozen copy of the dataset (datasets are static;
// what is partitioned is scan work, not storage), receives explicit
// record ranges from the coordinator, folds them through the existing
// sharded columnar scan, and ships the partial accumulator back as one
// checksummed wire frame (ratingmap.EncodeWire).
//
// The worker never materializes groups or interprets selections: the
// scan request carries the exact record positions to fold (delta-varint
// coded), so sampled recommendation groups, phase subranges, and whole
// groups all take the same path and the coordinator-side merge is
// bit-identical to a local scan by construction.

package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"time"

	"subdex/internal/core"
	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Wire constants shared by worker and coordinator.
const (
	// scanPath serves partition scans, healthPath liveness+fingerprint.
	scanPath   = "/cluster/scan"
	healthPath = "/healthz"

	// fingerprintHeader echoes the worker's engine-config fingerprint on
	// every response; scanMSHeader reports worker-side scan time.
	fingerprintHeader = "X-Subdex-Fingerprint"
	scanMSHeader      = "X-Subdex-Scan-Ms"

	// frameContentType marks a partial-accumulator response body.
	frameContentType = "application/x-subdex-partial"

	// maxScanRequestBytes bounds one scan request body (keys + coded
	// record range), maxScanKeys the candidate set size.
	maxScanRequestBytes = 64 << 20
	maxScanKeys         = 1 << 14
)

// ScanRequest is the coordinator→worker scan RPC body (JSON; Records is
// base64 of the delta-varint coding, see encodeRecords).
type ScanRequest struct {
	// Version is the wire protocol version (ratingmap.WireVersion).
	Version int `json:"version"`
	// Fingerprint is the coordinator explorer's engine-config
	// fingerprint; the worker refuses mismatches with 409 so a
	// mixed-version or mixed-dataset cluster fails loudly instead of
	// merging incompatible histograms.
	Fingerprint string `json:"fingerprint"`
	// Keys are the candidate maps still alive in the coordinator's
	// accumulator (pruning shrinks this between phases).
	Keys []ratingmap.Key `json:"keys"`
	// Records is the delta-varint coding of the record positions to
	// fold; Count is its decoded length, cross-checked after decode.
	Records []byte `json:"records"`
	Count   int    `json:"count"`
	// Partition identifies the partition within its ScanRange call, for
	// logs and traces.
	Partition int `json:"partition"`
	// Workers and ShardMin tune the worker's local sharded scan
	// (0 = worker defaults).
	Workers  int `json:"workers,omitempty"`
	ShardMin int `json:"shard_min,omitempty"`
}

// healthResponse is the worker healthz body.
type healthResponse struct {
	Fingerprint string `json:"fingerprint"`
	Records     int    `json:"records"`
}

// WorkerOptions configures NewWorker.
type WorkerOptions struct {
	// Registry receives subdex_cluster_worker_* instruments and, when
	// non-nil, is also served at /metrics.
	Registry *obs.Registry
	// ScanWorkers is the per-request sharded-scan parallelism when the
	// request does not specify one (default: NumCPU).
	ScanWorkers int
	// ScanHook, when non-nil, runs before every scan — the fault-
	// injection seam: return an error to fail the request with 500, or
	// block on ctx.Done() to stall it into the coordinator's partition
	// timeout. Test-only.
	ScanHook func(req *ScanRequest) error
}

// Worker serves partition scans over one explorer's dataset.
type Worker struct {
	ex   *core.Explorer
	fp   string
	opts WorkerOptions
	m    *WorkerMetrics
}

// NewWorker wraps an explorer built over the worker's dataset copy. The
// explorer must be configured identically to the coordinator's
// (result-affecting config feeds the fingerprint both sides compare).
func NewWorker(ex *core.Explorer, opts WorkerOptions) *Worker {
	if opts.ScanWorkers <= 0 {
		opts.ScanWorkers = runtime.NumCPU()
	}
	return &Worker{ex: ex, fp: ex.Fingerprint(), opts: opts, m: NewWorkerMetrics(opts.Registry)}
}

// Fingerprint reports the worker's engine-config fingerprint.
func (w *Worker) Fingerprint() string { return w.fp }

// Handler returns the worker's HTTP surface: POST /cluster/scan,
// GET /healthz, and (with a registry) GET /metrics. Every response
// echoes the fingerprint header and the request's traceparent, so
// coordinator EXPLAIN profiles and spans line up across the hop.
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc(scanPath, w.handleScan)
	mux.HandleFunc(healthPath, w.handleHealth)
	if w.opts.Registry != nil {
		reg := w.opts.Registry
		mux.HandleFunc("/metrics", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WritePrometheus(rw)
		})
	}
	return w.trace(mux)
}

// trace is the worker's traceparent middleware: it adopts the incoming
// trace id (coordinator hop) and echoes the header back, mirroring the
// server's instrument middleware.
func (w *Worker) trace(next http.Handler) http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		if tid, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
			r = r.WithContext(obs.WithTraceID(r.Context(), tid))
			rw.Header().Set("traceparent", obs.Traceparent(tid, obs.NewSpanID()))
		}
		rw.Header().Set(fingerprintHeader, w.fp)
		next.ServeHTTP(rw, r)
	})
}

func (w *Worker) handleHealth(rw http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(rw, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rw.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(rw).Encode(healthResponse{Fingerprint: w.fp, Records: w.ex.DB.Ratings.Len()})
}

// scanError reports a scan failure as JSON with the given status.
func scanError(rw http.ResponseWriter, status int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(status)
	_ = json.NewEncoder(rw).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (w *Worker) handleScan(rw http.ResponseWriter, r *http.Request) {
	start := time.Now()
	if r.Method != http.MethodPost {
		scanError(rw, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req ScanRequest
	dec := json.NewDecoder(http.MaxBytesReader(rw, r.Body, maxScanRequestBytes))
	if err := dec.Decode(&req); err != nil {
		w.m.addScan(0, time.Since(start), true)
		scanError(rw, http.StatusBadRequest, "bad scan request: %v", err)
		return
	}
	if req.Version != ratingmap.WireVersion {
		w.m.addScan(0, time.Since(start), true)
		scanError(rw, http.StatusConflict, "wire version %d unsupported (worker speaks %d)", req.Version, ratingmap.WireVersion)
		return
	}
	if req.Fingerprint != w.fp {
		w.m.addScan(0, time.Since(start), true)
		scanError(rw, http.StatusConflict, "engine-config fingerprint mismatch (worker %s, coordinator %s)", w.fp, req.Fingerprint)
		return
	}
	if len(req.Keys) > maxScanKeys {
		w.m.addScan(0, time.Since(start), true)
		scanError(rw, http.StatusBadRequest, "candidate set too large (%d keys)", len(req.Keys))
		return
	}
	records, err := decodeRecords(req.Records, req.Count, w.ex.DB.Ratings.Len())
	if err != nil {
		w.m.addScan(0, time.Since(start), true)
		scanError(rw, http.StatusBadRequest, "bad record range: %v", err)
		return
	}
	if hook := w.opts.ScanHook; hook != nil {
		if err := hook(&req); err != nil {
			w.m.addScan(0, time.Since(start), true)
			scanError(rw, http.StatusInternalServerError, "injected fault: %v", err)
			return
		}
	}
	if err := r.Context().Err(); err != nil {
		// The coordinator's per-partition timeout already gave up; the
		// write below would fail anyway.
		w.m.addScan(0, time.Since(start), true)
		return
	}
	workers := req.Workers
	if workers <= 0 {
		workers = w.opts.ScanWorkers
	}
	// The accumulator's description stays empty here: frames are
	// description-free and the coordinator re-attaches the group's
	// description at decode (see ratingmap.DecodeWire).
	acc := w.ex.Gen.Builder.NewAccumulator(query.Description{}, req.Keys)
	scanStart := time.Now()
	w.ex.Gen.ScanInto(acc, records, workers, req.ShardMin)
	frame := acc.EncodeWire()
	rw.Header().Set("Content-Type", frameContentType)
	rw.Header().Set(scanMSHeader, fmt.Sprintf("%.3f", float64(time.Since(scanStart).Microseconds())/1000))
	w.m.addScan(len(records), time.Since(start), false)
	_, _ = rw.Write(frame)
}
