// Cluster coordinator: the engine.RangeScanner that fans one record
// range out across worker processes and merges the partial accumulators
// back in deterministic partition order.
//
// Exactness comes from three facts the rest of the repo already proved:
// partitions are contiguous subranges covering [lo, hi) in order
// (the same arithmetic as the engine's phase strides); workers fold the
// exact record positions the coordinator ships (no selection
// re-interpretation); and Accumulator.Merge is associative and
// bit-exact on integer histograms (FuzzMerge), so prefix-merging the
// partition frames equals one sequential scan of the range. The cluster
// differential harness and the sdeload golden-trace soak assert the
// composition end to end.
//
// Failure handling preserves the PR 2 anytime contract: a partition that
// exhausts its bounded retries truncates the scan to the partitions
// before it — a consistent record prefix — and the engine degrades
// exactly as it does for a deadline (Result.Degraded, RecordsProcessed
// = merged prefix, Profile.DegradedReason = "partition_lost").

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"subdex/internal/dataset"
	"subdex/internal/engine"
	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// maxFrameBytes bounds one worker response frame.
const maxFrameBytes = 1 << 30

// defaultLocalThreshold is the record count below which a scan is folded
// locally rather than distributed (CoordinatorConfig.LocalThreshold).
const defaultLocalThreshold = 2048

// CoordinatorConfig configures NewCoordinator.
type CoordinatorConfig struct {
	// Workers are the worker base URLs (e.g. "http://10.0.0.7:9201").
	// At least one is required.
	Workers []string
	// Partitions is how many partitions each scanned range is split
	// into (clamped to the range length; default len(Workers)).
	Partitions int
	// PartitionTimeout bounds one RPC attempt (default 30s).
	PartitionTimeout time.Duration
	// Retries is how many additional attempts a failed partition gets,
	// each on the next worker in rotation (default len(Workers)-1).
	// Negative means zero: first failure loses the partition.
	Retries int
	// ScanWorkers and ShardMinRecords tune each worker's local sharded
	// scan (0 = worker defaults).
	ScanWorkers     int
	ShardMinRecords int
	// LocalThreshold is the range length below which the coordinator
	// folds the records on its own dataset copy instead of paying a
	// network round trip — a pure scheduling choice, bit-identical to
	// the distributed path by the same merge argument, that keeps the
	// engine's many small sampled scans (recommendation evaluation,
	// late pruning phases) cheap while whole-group scans still fan out.
	// 0 picks the default (2048 records); negative distributes
	// everything (the differential and golden harnesses do this to force
	// every scan through the workers).
	LocalThreshold int
	// HealthInterval paces the background worker health probe (default
	// 5s; negative disables the loop).
	HealthInterval time.Duration
	// Client overrides the HTTP client (default: a dedicated client).
	Client *http.Client
	// Registry receives subdex_cluster_* coordinator instruments.
	Registry *obs.Registry
}

// Coordinator implements engine.RangeScanner over a set of workers.
// Safe for concurrent use by all sessions of an explorer.
type Coordinator struct {
	cfg CoordinatorConfig
	// local folds sub-threshold ranges on the coordinator's own dataset
	// copy (see CoordinatorConfig.LocalThreshold).
	local   *engine.Generator
	builder ratingmap.Builder
	client  *http.Client
	m       *Metrics

	// fp is the engine-config fingerprint every RPC carries, bound by
	// core.NewExplorer via BindFingerprint. Atomic: the health loop and
	// scan fan-out read it concurrently with the bind.
	fp atomic.Value // string

	// healthy[i] is worker i's last probe verdict; scan attempts prefer
	// healthy workers but never refuse an unhealthy one outright (the
	// probe may simply not have run yet).
	healthy []atomic.Bool

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// NewCoordinator builds a coordinator over the frozen dataset db (the
// same dataset every worker holds) and starts the health probe loop.
// ctx is the root for background probes; cancel it or call Close to
// stop the loop.
func NewCoordinator(ctx context.Context, db *dataset.DB, cfg CoordinatorConfig) (*Coordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("cluster: coordinator needs at least one worker URL")
	}
	if cfg.Partitions <= 0 {
		cfg.Partitions = len(cfg.Workers)
	}
	if cfg.PartitionTimeout <= 0 {
		cfg.PartitionTimeout = 30 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = len(cfg.Workers) - 1
	} else if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = 5 * time.Second
	}
	if cfg.LocalThreshold == 0 {
		cfg.LocalThreshold = defaultLocalThreshold
	} else if cfg.LocalThreshold < 0 {
		cfg.LocalThreshold = 0
	}
	c := &Coordinator{
		cfg:     cfg,
		local:   engine.NewGenerator(db),
		builder: ratingmap.Builder{DB: db},
		client:  cfg.Client,
		m:       NewMetrics(cfg.Registry),
		healthy: make([]atomic.Bool, len(cfg.Workers)),
		stop:    make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	c.fp.Store("")
	for i := range c.healthy {
		c.healthy[i].Store(true) // optimistic until the first probe says otherwise
	}
	c.m.setWorkersHealthy(len(cfg.Workers))
	if cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.healthLoop(ctx)
	}
	return c, nil
}

// BindFingerprint arms the mixed-version guard: every scan RPC carries
// fp and workers answering with a different fingerprint are treated as
// failed attempts. core.NewExplorer calls this with the coordinator
// explorer's fingerprint; ScanRange refuses to run unbound.
func (c *Coordinator) BindFingerprint(fp string) { c.fp.Store(fp) }

func (c *Coordinator) fingerprint() string {
	s, _ := c.fp.Load().(string)
	return s
}

// Close stops the health loop and waits for it. Idempotent.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.wg.Wait()
}

// Workers reports the configured worker URLs.
func (c *Coordinator) Workers() []string { return append([]string(nil), c.cfg.Workers...) }

// HealthyWorkers reports how many workers passed the last probe.
func (c *Coordinator) HealthyWorkers() int {
	n := 0
	for i := range c.healthy {
		if c.healthy[i].Load() {
			n++
		}
	}
	return n
}

// partResult is one partition's outcome inside a ScanRange fan-out.
type partResult struct {
	acc  *ratingmap.Accumulator
	prof engine.PartitionProfile
	ok   bool
}

// ScanRange implements engine.RangeScanner: it splits [lo, hi) into
// contiguous partitions, scans each on a worker (bounded retries across
// the rotation, per-attempt timeout), and returns the decoded partials
// of the longest all-successful partition prefix, in partition order.
func (c *Coordinator) ScanRange(ctx context.Context, group *query.RatingGroup, keys []ratingmap.Key,
	lo, hi int) (*engine.RangeScan, error) {
	fp := c.fingerprint()
	if fp == "" {
		return nil, errors.New("cluster: coordinator fingerprint unbound (build the explorer with Config.Scanner)")
	}
	if lo < 0 || hi > len(group.Records) || lo > hi {
		return nil, fmt.Errorf("cluster: scan range [%d:%d) outside group of %d records", lo, hi, len(group.Records))
	}
	if lo == hi {
		return &engine.RangeScan{}, nil
	}
	if n := hi - lo; n <= c.cfg.LocalThreshold {
		acc := c.builder.NewAccumulator(group.Desc, keys)
		workers := c.cfg.ScanWorkers
		if workers <= 0 {
			workers = runtime.NumCPU() // mirror the worker-side default
		}
		start := time.Now()
		c.local.ScanInto(acc, group.Records[lo:hi], workers, c.cfg.ShardMinRecords)
		return &engine.RangeScan{
			Partials:   []*ratingmap.Accumulator{acc},
			Partitions: 1,
			Records:    n,
			Profiles: []engine.PartitionProfile{{
				Worker: "local", Records: n, Attempts: 1,
				ScanMS: float64(time.Since(start).Microseconds()) / 1000,
			}},
		}, nil
	}
	ctx, span := obs.StartSpan(ctx, "cluster.scanrange")
	defer span.End()
	parts := c.cfg.Partitions
	if parts > hi-lo {
		parts = hi - lo // more partitions than records: one record per partition
	}
	span.SetAttr("records", hi-lo)
	span.SetAttr("partitions", parts)

	results := make([]partResult, parts)
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		plo := lo + p*(hi-lo)/parts
		phi := lo + (p+1)*(hi-lo)/parts
		wg.Add(1)
		go func(p, plo, phi int) {
			defer wg.Done()
			results[p] = c.scanPartition(ctx, fp, group, keys, p, plo, phi)
		}(p, plo, phi)
	}
	wg.Wait()

	rs := &engine.RangeScan{Partitions: parts}
	merged := parts
	for p := 0; p < parts; p++ {
		rs.Profiles = append(rs.Profiles, results[p].prof)
		if !results[p].ok && p < merged {
			merged = p
		}
	}
	mergeStart := time.Now()
	for p := 0; p < merged; p++ {
		rs.Partials = append(rs.Partials, results[p].acc)
		rs.Records += results[p].prof.Records
	}
	c.m.observeMerge(time.Since(mergeStart))
	rs.Lost = parts - merged
	c.m.addPartitions(parts, rs.Lost)
	span.SetAttr("lost", rs.Lost)
	return rs, nil
}

// attemptOrder lists worker indices for a partition's attempts: rotation
// anchored at the partition index (stable affinity → warm worker-side
// paths), healthy workers first.
func (c *Coordinator) attemptOrder(p int) []int {
	n := len(c.cfg.Workers)
	order := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if w := (p + i) % n; c.healthy[w].Load() {
			order = append(order, w)
		}
	}
	for i := 0; i < n; i++ {
		if w := (p + i) % n; !c.healthy[w].Load() {
			order = append(order, w)
		}
	}
	return order
}

// scanPartition runs one partition's attempt loop.
func (c *Coordinator) scanPartition(ctx context.Context, fp string, group *query.RatingGroup,
	keys []ratingmap.Key, p, lo, hi int) partResult {
	res := partResult{prof: engine.PartitionProfile{Partition: p, Records: hi - lo}}
	body, err := json.Marshal(ScanRequest{
		Version:     ratingmap.WireVersion,
		Fingerprint: fp,
		Keys:        keys,
		Records:     encodeRecords(group.Records[lo:hi]),
		Count:       hi - lo,
		Partition:   p,
		Workers:     c.cfg.ScanWorkers,
		ShardMin:    c.cfg.ShardMinRecords,
	})
	if err != nil { // unreachable: the request is plain data
		res.prof.Lost = true
		return res
	}
	order := c.attemptOrder(p)
	attempts := c.cfg.Retries + 1
	if attempts > len(order) {
		attempts = len(order)
	}
	for attempt := 0; attempt < attempts; attempt++ {
		if ctx.Err() != nil {
			break
		}
		if attempt > 0 {
			c.m.addRetry()
		}
		worker := c.cfg.Workers[order[attempt]]
		res.prof.Worker = worker
		res.prof.Attempts = attempt + 1
		acc, scanMS, rpcDur, err := c.scanOnce(ctx, worker, fp, group.Desc, keys, body)
		c.m.addRPC(rpcDur, err != nil)
		if err == nil {
			res.acc = acc
			res.prof.ScanMS = scanMS
			res.prof.RPCMS = float64(rpcDur.Microseconds()) / 1000
			res.ok = true
			return res
		}
	}
	res.prof.Lost = true
	return res
}

// scanOnce performs one RPC attempt against one worker and decodes the
// returned frame.
func (c *Coordinator) scanOnce(ctx context.Context, worker, fp string, desc query.Description,
	keys []ratingmap.Key, body []byte) (acc *ratingmap.Accumulator, scanMS float64, dur time.Duration, err error) {
	actx, cancel := context.WithTimeout(ctx, c.cfg.PartitionTimeout)
	defer cancel()
	start := time.Now()
	defer func() { dur = time.Since(start) }()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, worker+scanPath, bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cluster: building scan request for %s: %w", worker, err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tid := obs.TraceIDFrom(ctx); tid.Valid() {
		req.Header.Set("traceparent", obs.Traceparent(tid, obs.NewSpanID()))
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cluster: scan RPC to %s: %w", worker, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		if resp.StatusCode == http.StatusConflict {
			c.m.addFingerprintMismatch()
		}
		return nil, 0, 0, fmt.Errorf("cluster: worker %s answered %d: %s", worker, resp.StatusCode, bytes.TrimSpace(msg))
	}
	if got := resp.Header.Get(fingerprintHeader); got != "" && got != fp {
		c.m.addFingerprintMismatch()
		return nil, 0, 0, fmt.Errorf("cluster: worker %s fingerprint %s, want %s", worker, got, fp)
	}
	frame, err := io.ReadAll(io.LimitReader(resp.Body, maxFrameBytes))
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cluster: reading frame from %s: %w", worker, err)
	}
	acc, err = c.builder.DecodeWire(desc, frame)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("cluster: frame from %s: %w", worker, err)
	}
	// The decoded key set must be exactly what was requested: a worker
	// answering for different candidates would merge silently (Merge
	// deep-copies unknown keys), so refuse it here.
	if len(acc.Keys()) != len(keys) {
		return nil, 0, 0, fmt.Errorf("cluster: worker %s returned %d keys, want %d", worker, len(acc.Keys()), len(keys))
	}
	for i, k := range keys {
		if acc.Keys()[i] != k {
			return nil, 0, 0, fmt.Errorf("cluster: worker %s key %d is %v, want %v", worker, i, acc.Keys()[i], k)
		}
	}
	scanMS, _ = strconv.ParseFloat(resp.Header.Get(scanMSHeader), 64)
	return acc, scanMS, 0, nil
}

// healthLoop probes every worker on a ticker until Close (or ctx
// cancellation) stops it.
func (c *Coordinator) healthLoop(ctx context.Context) {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	c.probeAll(ctx)
	for {
		select {
		case <-c.stop:
			return
		case <-ctx.Done():
			return
		case <-t.C:
			c.probeAll(ctx)
		}
	}
}

// probeAll refreshes every worker's health verdict and the gauge.
func (c *Coordinator) probeAll(ctx context.Context) {
	healthy := 0
	for i, w := range c.cfg.Workers {
		ok := c.probe(ctx, w)
		c.healthy[i].Store(ok)
		if ok {
			healthy++
		}
	}
	c.m.setWorkersHealthy(healthy)
}

// probe checks one worker's /healthz, including the fingerprint when
// one is bound: a live worker running different engine config is as
// unusable as a dead one.
func (c *Coordinator) probe(ctx context.Context, worker string) bool {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.PartitionTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, worker+healthPath, nil)
	if err != nil {
		return false
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	var h healthResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&h); err != nil {
		return false
	}
	if fp := c.fingerprint(); fp != "" && h.Fingerprint != fp {
		c.m.addFingerprintMismatch()
		return false
	}
	return true
}
