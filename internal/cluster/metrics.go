// Cluster telemetry. Same discipline as the engine and server metrics:
// literal subdex_cluster_* names registered once at construction, nil-
// safe record helpers so uninstrumented coordinators/workers (tests,
// library users) pay nothing.

package cluster

import (
	"time"

	"subdex/internal/obs"
)

// Metrics bundles the coordinator-side instruments.
type Metrics struct {
	// RPCs counts worker scan RPC attempts and RPCErrors the failed ones
	// (subdex_cluster_rpc_total, subdex_cluster_rpc_errors_total).
	RPCs      *obs.Counter
	RPCErrors *obs.Counter
	// RPCLatency times one scan RPC round trip, successful or not
	// (subdex_cluster_rpc_duration_seconds).
	RPCLatency *obs.Histogram
	// Retries counts re-dispatches of a partition after a failed attempt
	// (subdex_cluster_retries_total).
	Retries *obs.Counter
	// Partitions counts partitions dispatched across ScanRange calls and
	// PartitionsLost the ones dropped after the retry budget — each loss
	// degrades an engine call (subdex_cluster_partitions_total,
	// subdex_cluster_partitions_lost_total).
	Partitions     *obs.Counter
	PartitionsLost *obs.Counter
	// MergeLatency times the coordinator-side merge of one ScanRange's
	// decoded partials (subdex_cluster_merge_duration_seconds).
	MergeLatency *obs.Histogram
	// FingerprintMismatch counts frames or workers rejected by the
	// engine-config fingerprint guard — any nonzero value means a
	// mixed-version cluster (subdex_cluster_fingerprint_mismatch_total).
	FingerprintMismatch *obs.Counter
	// WorkersHealthy gauges how many workers passed the last health
	// probe (subdex_cluster_workers_healthy).
	WorkersHealthy *obs.Gauge
}

// NewMetrics registers the coordinator instruments on r (nil registry →
// nil no-op Metrics).
func NewMetrics(r *obs.Registry) *Metrics {
	if r == nil {
		return nil
	}
	return &Metrics{
		RPCs: r.Counter("subdex_cluster_rpc_total",
			"Worker scan RPC attempts issued by the coordinator."),
		RPCErrors: r.Counter("subdex_cluster_rpc_errors_total",
			"Worker scan RPC attempts that failed (transport, status, or decode)."),
		RPCLatency: r.Histogram("subdex_cluster_rpc_duration_seconds",
			"Round-trip time of one worker scan RPC.", obs.DefBuckets),
		Retries: r.Counter("subdex_cluster_retries_total",
			"Partition scans re-dispatched after a failed attempt."),
		Partitions: r.Counter("subdex_cluster_partitions_total",
			"Partitions dispatched across distributed scans."),
		PartitionsLost: r.Counter("subdex_cluster_partitions_lost_total",
			"Partitions dropped after exhausting the retry budget (degrades the step)."),
		MergeLatency: r.Histogram("subdex_cluster_merge_duration_seconds",
			"Coordinator-side merge time of one distributed scan's partial accumulators.", obs.DefBuckets),
		FingerprintMismatch: r.Counter("subdex_cluster_fingerprint_mismatch_total",
			"Scan frames or workers rejected by the engine-config fingerprint guard."),
		WorkersHealthy: r.Gauge("subdex_cluster_workers_healthy",
			"Workers that passed the most recent health probe."),
	}
}

func (m *Metrics) addRPC(d time.Duration, failed bool) {
	if m == nil {
		return
	}
	m.RPCs.Inc()
	m.RPCLatency.ObserveDuration(d)
	if failed {
		m.RPCErrors.Inc()
	}
}

func (m *Metrics) addRetry() {
	if m != nil {
		m.Retries.Inc()
	}
}

func (m *Metrics) addPartitions(n, lost int) {
	if m == nil {
		return
	}
	m.Partitions.Add(int64(n))
	if lost > 0 {
		m.PartitionsLost.Add(int64(lost))
	}
}

func (m *Metrics) observeMerge(d time.Duration) {
	if m != nil {
		m.MergeLatency.ObserveDuration(d)
	}
}

func (m *Metrics) addFingerprintMismatch() {
	if m != nil {
		m.FingerprintMismatch.Inc()
	}
}

func (m *Metrics) setWorkersHealthy(n int) {
	if m != nil {
		m.WorkersHealthy.Set(float64(n))
	}
}

// WorkerMetrics bundles the worker-side instruments.
type WorkerMetrics struct {
	// Scans counts scan requests served and ScanErrors the rejected ones
	// (subdex_cluster_worker_scans_total,
	// subdex_cluster_worker_scan_errors_total).
	Scans      *obs.Counter
	ScanErrors *obs.Counter
	// ScanLatency times one served scan including encode
	// (subdex_cluster_worker_scan_duration_seconds).
	ScanLatency *obs.Histogram
	// ScanRecords counts records folded across served scans
	// (subdex_cluster_worker_records_total).
	ScanRecords *obs.Counter
}

// NewWorkerMetrics registers the worker instruments on r (nil registry →
// nil no-op WorkerMetrics).
func NewWorkerMetrics(r *obs.Registry) *WorkerMetrics {
	if r == nil {
		return nil
	}
	return &WorkerMetrics{
		Scans: r.Counter("subdex_cluster_worker_scans_total",
			"Partition scan requests served by this worker."),
		ScanErrors: r.Counter("subdex_cluster_worker_scan_errors_total",
			"Partition scan requests rejected (bad frame, fingerprint mismatch, injected fault)."),
		ScanLatency: r.Histogram("subdex_cluster_worker_scan_duration_seconds",
			"Serve time of one partition scan, decode to encode.", obs.DefBuckets),
		ScanRecords: r.Counter("subdex_cluster_worker_records_total",
			"Records folded into partial accumulators by this worker."),
	}
}

func (m *WorkerMetrics) addScan(records int, d time.Duration, failed bool) {
	if m == nil {
		return
	}
	m.Scans.Inc()
	m.ScanLatency.ObserveDuration(d)
	if failed {
		m.ScanErrors.Inc()
		return
	}
	m.ScanRecords.Add(int64(records))
}

// RouterMetrics bundles the front-tier session router's instruments.
type RouterMetrics struct {
	// Proxied counts requests forwarded to a backend and ProxyErrors the
	// ones no backend could be resolved or reached for
	// (subdex_cluster_router_requests_total,
	// subdex_cluster_router_errors_total).
	Proxied     *obs.Counter
	ProxyErrors *obs.Counter
}

// NewRouterMetrics registers the router instruments on r (nil registry →
// nil no-op RouterMetrics).
func NewRouterMetrics(r *obs.Registry) *RouterMetrics {
	if r == nil {
		return nil
	}
	return &RouterMetrics{
		Proxied: r.Counter("subdex_cluster_router_requests_total",
			"Requests the session router forwarded to a backend."),
		ProxyErrors: r.Counter("subdex_cluster_router_errors_total",
			"Requests the session router could not route or deliver."),
	}
}

func (m *RouterMetrics) addProxied() {
	if m != nil {
		m.Proxied.Inc()
	}
}

func (m *RouterMetrics) addProxyError() {
	if m != nil {
		m.ProxyErrors.Inc()
	}
}
