// Record-range coding for scan requests: the coordinator ships the
// exact record positions each partition must fold, delta-varint coded
// (record lists are sorted non-decreasing, so deltas are small and the
// coding stays near one byte per record). Shipping positions instead of
// a (selection, range) pair keeps the worker selection-free and makes
// sampled recommendation groups exact for free.

package cluster

import (
	"encoding/binary"
	"fmt"
)

// maxWireRecords bounds one partition's decoded record list.
const maxWireRecords = 1 << 26

// encodeRecords delta-varint codes a non-decreasing record position list.
func encodeRecords(records []int32) []byte {
	buf := make([]byte, 0, len(records)+8)
	prev := int32(0)
	for _, r := range records {
		buf = binary.AppendUvarint(buf, uint64(r-prev))
		prev = r
	}
	return buf
}

// decodeRecords reverses encodeRecords, validating the claimed count and
// that every position lies inside [0, max).
func decodeRecords(data []byte, count, max int) ([]int32, error) {
	if count < 0 || count > maxWireRecords {
		return nil, fmt.Errorf("record count %d out of range", count)
	}
	out := make([]int32, 0, count)
	prev := int64(0)
	for off := 0; off < len(data); {
		d, n := binary.Uvarint(data[off:])
		if n <= 0 {
			return nil, fmt.Errorf("truncated or overflowing delta at offset %d", off)
		}
		off += n
		prev += int64(d)
		if prev >= int64(max) {
			return nil, fmt.Errorf("record position %d outside dataset (%d records)", prev, max)
		}
		if len(out) == count {
			return nil, fmt.Errorf("more than the claimed %d records", count)
		}
		out = append(out, int32(prev))
	}
	if len(out) != count {
		return nil, fmt.Errorf("decoded %d records, claimed %d", len(out), count)
	}
	return out, nil
}
