// Package diversity implements the diversity side of SubDEx's rating-map
// selection (§3.2.4, §4.2.2): the Earth Mover's Distance between rating
// maps, the min-pairwise-distance diversity of a set, and the GMM algorithm
// of Gonzalez [29] — a 2-approximation for choosing the k-size subset of
// maximal dispersion.
package diversity

import (
	"math"

	"subdex/internal/ratingmap"
	"subdex/internal/stats"
)

// Distance is a metric-ish distance between two rating maps.
type Distance func(a, b *ratingmap.RatingMap) float64

// EMD is the rating-map distance used for diversity: the Earth Mover's
// Distance — the measure the paper adopts because it respects the ordering
// of the rating scale — averaged over two views of each map: its pooled
// rating distribution (which separates maps on different dimensions) and
// its subgroup-average signature (which separates different groupings of
// the same records; the pooled view alone is grouping-blind). Maps with
// different scales are maximally distant.
func EMD(a, b *ratingmap.RatingMap) float64 {
	da, db := a.Distribution(), b.Distribution()
	if len(da) != len(db) {
		return math.Inf(1)
	}
	pooled, _ := stats.NormalizedEarthMovers(da, db)
	sig, _ := stats.NormalizedEarthMovers(a.Signature(), b.Signature())
	return (pooled + sig) / 2
}

// PooledEMD is the paper-literal distance over pooled distributions only,
// kept for the diversity ablation benches.
func PooledEMD(a, b *ratingmap.RatingMap) float64 {
	da, db := a.Distribution(), b.Distribution()
	if len(da) != len(db) {
		return math.Inf(1)
	}
	d, _ := stats.NormalizedEarthMovers(da, db)
	return d
}

// EMDWithAttribute augments EMD with a small bonus when the two maps group
// by different attributes or aggregate different dimensions, breaking ties
// between identical distributions so distinct facets surface. The paper
// observes that EMD alone already "increases the probability of choosing
// rating maps aggregated by different attributes"; this variant is used in
// the ablation benches only.
func EMDWithAttribute(a, b *ratingmap.RatingMap) float64 {
	d := EMD(a, b)
	if math.IsInf(d, 1) {
		return d
	}
	if a.Attr != b.Attr || a.Side != b.Side {
		d += 0.05
	}
	if a.Dim != b.Dim {
		d += 0.05
	}
	return d
}

// SetDiversity is div(RM) = min over pairs of d(rm, rm'), Abbar et al. [7].
// Sets of fewer than two maps have diversity 0 by convention.
func SetDiversity(maps []*ratingmap.RatingMap, d Distance) float64 {
	if len(maps) < 2 {
		return 0
	}
	minD := math.Inf(1)
	for i := 0; i < len(maps); i++ {
		for j := i + 1; j < len(maps); j++ {
			if dist := d(maps[i], maps[j]); dist < minD {
				minD = dist
			}
		}
	}
	return minD
}

// AvgPairwiseDiversity is the mean pairwise distance, the "average diversity
// score" reported in Table 5.
func AvgPairwiseDiversity(maps []*ratingmap.RatingMap, d Distance) float64 {
	if len(maps) < 2 {
		return 0
	}
	sum, n := 0.0, 0
	for i := 0; i < len(maps); i++ {
		for j := i + 1; j < len(maps); j++ {
			sum += d(maps[i], maps[j])
			n++
		}
	}
	return sum / float64(n)
}

// GMM selects k indices out of the candidate set maximizing dispersion with
// the greedy algorithm of Gonzalez [29]: start from a seed, then repeatedly
// add the candidate whose minimum distance to the chosen set is maximal.
// It achieves a 2-approximation of the optimal minimum pairwise distance
// and runs in O(k·n) distance evaluations (the paper states O(k²·l) for
// n = k·l candidates).
//
// seed selects the starting map ("an arbitrary rating map" in the paper);
// passing 0 is the conventional deterministic choice, and the engine seeds
// with the highest-utility candidate so the top map is always shown.
func GMM(maps []*ratingmap.RatingMap, k int, seed int, d Distance) []int {
	n := len(maps)
	if k <= 0 || n == 0 {
		return nil
	}
	if k >= n {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if seed < 0 || seed >= n {
		seed = 0
	}
	chosen := make([]int, 0, k)
	chosen = append(chosen, seed)
	// minDist[i] = distance from candidate i to its closest chosen map.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = d(maps[i], maps[seed])
	}
	minDist[seed] = -1 // mark chosen
	for len(chosen) < k {
		best, bestD := -1, -1.0
		for i, md := range minDist {
			if md > bestD {
				best, bestD = i, md
			}
		}
		if best < 0 {
			break
		}
		chosen = append(chosen, best)
		for i := range minDist {
			if minDist[i] < 0 {
				continue
			}
			if dd := d(maps[i], maps[best]); dd < minDist[i] {
				minDist[i] = dd
			}
		}
		minDist[best] = -1
	}
	return chosen
}

// SelectDiverse applies the paper's Problem 1 recipe to an already
// utility-ranked candidate list (descending DW utility): it runs GMM seeded
// at the top-utility candidate and returns the chosen maps in utility order.
func SelectDiverse(ranked []*ratingmap.RatingMap, k int, d Distance) []*ratingmap.RatingMap {
	idx := GMM(ranked, k, 0, d)
	// Preserve utility order among the chosen for display.
	pick := make(map[int]bool, len(idx))
	for _, i := range idx {
		pick[i] = true
	}
	out := make([]*ratingmap.RatingMap, 0, len(idx))
	for i, rm := range ranked {
		if pick[i] {
			out = append(out, rm)
		}
	}
	return out
}
