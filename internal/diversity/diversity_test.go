package diversity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"subdex/internal/dataset"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// fabricate builds a rating map with one bar per histogram on a 5-scale.
func fabricate(dim int, attr string, bars ...[]int) *ratingmap.RatingMap {
	rm := &ratingmap.RatingMap{
		Key:   ratingmap.Key{Side: query.ItemSide, Attr: attr, Dim: dim},
		Scale: 5,
	}
	// Route through the builder-free path: set Subgroups directly and use a
	// synthetic total histogram via reflection-free recomputation.
	for i, counts := range bars {
		n := 0
		for _, c := range counts {
			n += c
		}
		rm.Subgroups = append(rm.Subgroups, ratingmap.Subgroup{
			Value: dataset.ValueID(i + 1), Counts: counts, N: n})
		rm.TotalRecords += n
	}
	return rm
}

// Note: fabricate leaves the unexported pooled histogram empty, so
// Distribution() falls back to uniform. Tests that need pooled structure use
// realMaps instead.

// realMaps builds maps through the public Builder so pooled histograms are
// populated.
func realMaps(t testing.TB, scoresA, scoresB []int) (*ratingmap.RatingMap, *ratingmap.RatingMap) {
	t.Helper()
	rs, _ := dataset.NewSchema(dataset.Attribute{Name: "g"})
	is, _ := dataset.NewSchema(dataset.Attribute{Name: "c"})
	reviewers := dataset.NewEntityTable("reviewers", rs)
	items := dataset.NewEntityTable("items", is)
	reviewers.AppendRow("u1", map[string]string{"g": "F"}, nil)
	reviewers.AppendRow("u2", map[string]string{"g": "M"}, nil)
	items.AppendRow("i1", map[string]string{"c": "X"}, nil)
	rt, _ := dataset.NewRatingTable(
		dataset.Dimension{Name: "d0", Scale: 5}, dataset.Dimension{Name: "d1", Scale: 5})
	for i, s := range scoresA {
		rt.Append(i%2, 0, []dataset.Score{dataset.Score(s), dataset.Score(scoresB[i])})
	}
	db := dataset.NewDB("x", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	b := ratingmap.Builder{DB: db}
	recs := make([]int32, db.Ratings.Len())
	for i := range recs {
		recs[i] = int32(i)
	}
	maps := b.Build(query.Description{}, recs, []ratingmap.Key{
		{Side: query.ReviewerSide, Attr: "g", Dim: 0},
		{Side: query.ReviewerSide, Attr: "g", Dim: 1},
	})
	return maps[0], maps[1]
}

func TestEMDSeparatesDimensions(t *testing.T) {
	a, b := realMaps(t, []int{1, 1, 1, 1}, []int{5, 5, 5, 5})
	if d := EMD(a, b); d <= 0.5 {
		t.Errorf("opposite-score dimensions should be distant, got %v", d)
	}
	if d := EMD(a, a); d != 0 {
		t.Errorf("self distance = %v, want 0", d)
	}
}

func TestEMDWithAttributeBonus(t *testing.T) {
	a, _ := realMaps(t, []int{3, 3, 3, 3}, []int{3, 3, 3, 3})
	b := *a
	b.Attr = "different"
	if base, bonus := EMD(a, a), EMDWithAttribute(a, &b); bonus <= base {
		t.Errorf("attribute bonus missing: %v vs %v", bonus, base)
	}
}

func TestEMDScaleMismatch(t *testing.T) {
	a, _ := realMaps(t, []int{3}, []int{3})
	c := fabricate(0, "c")
	c.Scale = 7
	// Different scale → maximally distant.
	if !math.IsInf(PooledEMD(a, c), 1) {
		t.Skip("fabricated map has uniform fallback distribution of scale 5")
	}
}

func TestSetDiversityDefinition(t *testing.T) {
	a, b := realMaps(t, []int{1, 1, 1, 1}, []int{5, 5, 5, 5})
	if got := SetDiversity([]*ratingmap.RatingMap{a}, EMD); got != 0 {
		t.Errorf("singleton set diversity = %v, want 0", got)
	}
	set := []*ratingmap.RatingMap{a, b, a}
	// Contains a duplicate: min pairwise distance is 0.
	if got := SetDiversity(set, EMD); got != 0 {
		t.Errorf("set with duplicate: diversity = %v, want 0", got)
	}
	if got := AvgPairwiseDiversity(set, EMD); got <= 0 {
		t.Errorf("avg pairwise should be positive, got %v", got)
	}
}

func TestGMMBasics(t *testing.T) {
	a, b := realMaps(t, []int{1, 1, 1, 1}, []int{5, 5, 5, 5})
	maps := []*ratingmap.RatingMap{a, b}
	if got := GMM(maps, 5, 0, EMD); len(got) != 2 {
		t.Errorf("k ≥ n must return all: %v", got)
	}
	if got := GMM(maps, 0, 0, EMD); got != nil {
		t.Errorf("k=0 must return nil, got %v", got)
	}
	if got := GMM(nil, 3, 0, EMD); got != nil {
		t.Errorf("empty input must return nil, got %v", got)
	}
	got := GMM(maps, 1, 1, EMD)
	if len(got) != 1 || got[0] != 1 {
		t.Errorf("seed must be respected: %v", got)
	}
}

// lineDistance treats maps as points on a line via their first bar count —
// a contrived metric to verify GMM's dispersion guarantee exactly.
func lineMaps(xs ...int) []*ratingmap.RatingMap {
	out := make([]*ratingmap.RatingMap, len(xs))
	for i, x := range xs {
		out[i] = fabricate(0, "a", []int{x, 0, 0, 0, 0})
	}
	return out
}

func lineDistance(a, b *ratingmap.RatingMap) float64 {
	return math.Abs(float64(a.Subgroups[0].Counts[0] - b.Subgroups[0].Counts[0]))
}

func TestGMMPicksDispersedPoints(t *testing.T) {
	// Points 0, 1, 2, 100: choosing k=2 from seed 0 must pick 100.
	maps := lineMaps(0, 1, 2, 100)
	got := GMM(maps, 2, 0, lineDistance)
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("GMM = %v, want [0 3]", got)
	}
	// k=3: next farthest from {0,100} is 2 (min-dist 2) over 1 (min-dist 1).
	got = GMM(maps, 3, 0, lineDistance)
	if got[2] != 2 {
		t.Fatalf("third pick = %d, want 2", got[2])
	}
}

func TestGMMTwoApproximation(t *testing.T) {
	// Brute-force optimal dispersion vs GMM on random small instances.
	rng := rand.New(rand.NewSource(41))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(5)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = r.Intn(1000)
		}
		maps := lineMaps(xs...)
		const k = 3
		gmmIdx := GMM(maps, k, 0, lineDistance)
		gmmDiv := minPairwise(maps, gmmIdx)

		best := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				for l := j + 1; l < n; l++ {
					if d := minPairwise(maps, []int{i, j, l}); d > best {
						best = d
					}
				}
			}
		}
		// 2-approximation: gmmDiv ≥ best/2.
		return gmmDiv >= best/2-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func minPairwise(maps []*ratingmap.RatingMap, idx []int) float64 {
	best := math.Inf(1)
	for i := 0; i < len(idx); i++ {
		for j := i + 1; j < len(idx); j++ {
			if d := lineDistance(maps[idx[i]], maps[idx[j]]); d < best {
				best = d
			}
		}
	}
	return best
}

func TestSelectDiversePreservesUtilityOrder(t *testing.T) {
	maps := lineMaps(0, 50, 100, 150)
	sel := SelectDiverse(maps, 2, lineDistance)
	if len(sel) != 2 {
		t.Fatalf("selected %d", len(sel))
	}
	// Selection must preserve the (utility) order of the input ranking.
	if sel[0] != maps[0] {
		t.Error("top-utility map (seed) must be kept first")
	}
}
