package sessionstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"subdex/internal/core"
)

// WALFileName is the log's name inside the store directory.
const WALFileName = "wal.jsonl"

// DefaultCompactEvery is the append count that triggers snapshot
// compaction when FileOptions leaves it unset.
const DefaultCompactEvery = 4096

// FileOptions tunes a FileStore.
type FileOptions struct {
	// CompactEvery rewrites the WAL as one snapshot record per live
	// session after this many appends (0 selects DefaultCompactEvery,
	// negative disables compaction).
	CompactEvery int
}

// RecoveryInfo reports what Open found in the log.
type RecoveryInfo struct {
	// Records and Skipped count the replayed prefix (see Stats).
	Records int64
	Skipped int64
	// Truncated reports that the log had an invalid tail, cut off at
	// byte offset TruncatedAt for the Reason given.
	Truncated   bool
	TruncatedAt int64
	Reason      string
	// Sessions is the number of sessions recovered.
	Sessions int
}

// FileStore is the durable Store: the shared mirror backed by an
// append-only, fsync-per-record, checksummed JSONL write-ahead log with
// periodic snapshot compaction.
//
// Write path: the mirror mutation and the file write happen under the
// writer mutex (order is the log's whole value); the fsync happens
// after it is released, so concurrent appenders batch their flushes
// instead of convoying — a record is durable once its own Sync returns.
// If a write fails after the mirror applied, the mirror is momentarily
// ahead of the log; the next compaction rewrites the log from the
// mirror, healing the gap.
type FileStore struct {
	st   *memState
	dir  string
	path string

	//subdex:lockorder rank=30 write head of the file-store ladder: taken before swapMu, statsMu, and the mirror's memState.mu
	wmu sync.Mutex // serializes mirror+file mutation and compaction
	// swapMu orders the post-wmu fsync against the compaction file swap:
	// an appender takes it shared (before releasing wmu, so no swap can
	// slip in between) and holds it across its Sync; compaction and Close
	// take it exclusively around closing the old file. Without it a
	// concurrent compaction could close the file under an in-flight Sync,
	// turning a durably-written record into a spurious fsync failure.
	// Lock order is always wmu then swapMu.
	//subdex:lockorder rank=40 acquired shared under wmu by appenders and exclusively by compaction before statsMu
	swapMu           sync.RWMutex
	f                *os.File
	recsSinceCompact int
	compactEvery     int

	//subdex:lockorder rank=50 leaf of the write path; Stats holds it across the mirror's memState.mu only
	statsMu  sync.Mutex
	ins      Instruments
	stats    Stats
	recovery RecoveryInfo
}

// Open opens (creating if needed) the store in dir with default options,
// replaying any existing WAL. A corrupt tail is truncated away and
// reported in Recovery, never an error: the longest valid prefix wins.
func Open(dir string) (*FileStore, error) {
	return OpenWithOptions(dir, FileOptions{})
}

// OpenWithOptions is Open with explicit tuning.
func OpenWithOptions(dir string, o FileOptions) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sessionstore: %w", err)
	}
	path := filepath.Join(dir, WALFileName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sessionstore: %w", err)
	}
	fs := &FileStore{st: newMemState(), dir: dir, path: path, f: f,
		compactEvery: o.CompactEvery}
	if fs.compactEvery == 0 {
		fs.compactEvery = DefaultCompactEvery
	}
	res := replayWAL(fs.st, f)
	if res.Truncated {
		if err := f.Truncate(res.ValidBytes); err != nil {
			f.Close()
			return nil, fmt.Errorf("sessionstore: truncating corrupt tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("sessionstore: %w", err)
		}
	}
	if _, err := f.Seek(res.ValidBytes, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("sessionstore: %w", err)
	}
	fs.recsSinceCompact = int(res.Applied + res.Skipped)
	fs.stats.ReplayRecords = res.Applied
	fs.stats.ReplaySkipped = res.Skipped
	fs.recovery = RecoveryInfo{Records: res.Applied, Skipped: res.Skipped,
		Truncated: res.Truncated, TruncatedAt: res.ValidBytes, Reason: res.Reason}
	fs.st.mu.Lock()
	fs.recovery.Sessions = len(fs.st.sessions)
	fs.st.mu.Unlock()
	if res.Truncated {
		fs.stats.Truncations = 1
	}
	return fs, nil
}

// Recovery reports what Open found.
func (fs *FileStore) Recovery() RecoveryInfo {
	fs.statsMu.Lock()
	defer fs.statsMu.Unlock()
	return fs.recovery
}

// Dir returns the store directory.
func (fs *FileStore) Dir() string { return fs.dir }

// Create implements Store.
func (fs *FileStore) Create(id int, snap *core.SessionSnapshot) error {
	return fs.logAppend(walRecord{Kind: recCreate, ID: id, Snap: snapshotCopy(snap)})
}

// AppendOp implements Store.
func (fs *FileStore) AppendOp(id, seq int, op core.SessionOp) error {
	return fs.logAppend(walRecord{Kind: recOp, ID: id, Seq: seq, Op: &op})
}

// Shed implements Store.
func (fs *FileStore) Shed(id int, snap *core.SessionSnapshot) error {
	return fs.logAppend(walRecord{Kind: recShed, ID: id, Snap: snapshotCopy(snap)})
}

// Delete implements Store.
func (fs *FileStore) Delete(id int) error {
	return fs.logAppend(walRecord{Kind: recDelete, ID: id})
}

// Get implements Store.
func (fs *FileStore) Get(id int) (*core.SessionSnapshot, bool, error) {
	fs.st.mu.Lock()
	defer fs.st.mu.Unlock()
	snap, ok := fs.st.sessions[id]
	if !ok {
		return nil, false, nil
	}
	return snapshotCopy(snap), true, nil
}

// All implements Store.
func (fs *FileStore) All() (map[int]*core.SessionSnapshot, int, error) {
	fs.st.mu.Lock()
	defer fs.st.mu.Unlock()
	out := make(map[int]*core.SessionSnapshot, len(fs.st.sessions))
	//subdex:orderinsensitive keyed map copy: every write targets its own key, order cannot change the result
	for id, snap := range fs.st.sessions {
		out[id] = snapshotCopy(snap)
	}
	return out, fs.st.nextID, nil
}

// Instrument implements Store: counts accumulated before instrumentation
// (open-time replay, early appends) are added to the counters up front.
func (fs *FileStore) Instrument(ins Instruments) {
	fs.statsMu.Lock()
	st := fs.stats
	fs.ins = ins
	fs.statsMu.Unlock()
	ins.Appends.Add(st.Appends)
	ins.Fsyncs.Add(st.Fsyncs)
	ins.ReplayRecords.Add(st.ReplayRecords)
	ins.Truncations.Add(st.Truncations)
}

// Stats implements Store.
func (fs *FileStore) Stats() Stats {
	fs.statsMu.Lock()
	st := fs.stats
	fs.statsMu.Unlock()
	fs.st.mu.Lock()
	st.Sessions = len(fs.st.sessions)
	fs.st.mu.Unlock()
	return st
}

// Close implements Store.
func (fs *FileStore) Close() error {
	fs.wmu.Lock()
	defer fs.wmu.Unlock()
	if fs.f == nil {
		return nil
	}
	// As in compact: let in-flight appender Syncs drain before the close.
	fs.swapMu.Lock()
	defer fs.swapMu.Unlock()
	err := fs.f.Sync()
	if cerr := fs.f.Close(); err == nil {
		err = cerr
	}
	fs.f = nil
	return err
}

// logAppend is the shared write path: mirror + file under wmu, fsync
// outside it, compaction when due.
func (fs *FileStore) logAppend(rec walRecord) error {
	line, err := encodeRecord(rec)
	if err != nil {
		return err
	}
	fs.wmu.Lock()
	if fs.f == nil {
		fs.wmu.Unlock()
		return fmt.Errorf("sessionstore: store is closed")
	}
	if err := fs.st.apply(rec); err != nil {
		fs.wmu.Unlock()
		return err
	}
	_, werr := fs.f.Write(line)
	f := fs.f
	fs.recsSinceCompact++
	compactDue := werr == nil && fs.compactEvery > 0 && fs.recsSinceCompact >= fs.compactEvery
	// Pin f against a concurrent compaction's close until our Sync
	// returns; acquired before wmu is released so the swap cannot happen
	// in between. See the swapMu field comment.
	fs.swapMu.RLock()
	fs.wmu.Unlock()
	if werr != nil {
		fs.swapMu.RUnlock()
		return fmt.Errorf("sessionstore: wal write: %w", werr)
	}
	ins := fs.bump(func(s *Stats) { s.Appends++ })
	ins.Appends.Inc()
	serr := f.Sync()
	fs.swapMu.RUnlock()
	if serr != nil {
		return fmt.Errorf("sessionstore: wal fsync: %w", serr)
	}
	ins = fs.bump(func(s *Stats) { s.Fsyncs++ })
	ins.Fsyncs.Inc()
	if compactDue {
		// Compaction failure is deliberately not the append's failure:
		// the record above is already durable, and an uncompacted WAL is
		// merely longer, not wrong. The next due append retries.
		fs.compact()
	}
	return nil
}

// bump applies a stats mutation and returns the current instruments.
func (fs *FileStore) bump(mut func(*Stats)) Instruments {
	fs.statsMu.Lock()
	defer fs.statsMu.Unlock()
	mut(&fs.stats)
	return fs.ins
}

// compact rewrites the WAL as its logical content: one watermark record
// plus one snapshot record per live session, written to a temp file,
// fsynced, and atomically renamed over the log. Runs under wmu — it is
// rare by construction (every CompactEvery appends), and appends must
// not interleave with the swap.
func (fs *FileStore) compact() {
	fs.wmu.Lock()
	defer fs.wmu.Unlock()
	if fs.f == nil || fs.recsSinceCompact < fs.compactEvery {
		return // lost the race with another appender's compaction
	}
	fs.st.mu.Lock()
	recs := make([]walRecord, 0, len(fs.st.sessions)+1)
	recs = append(recs, walRecord{Kind: recNext, ID: fs.st.nextID - 1})
	//subdex:orderinsensitive keyed map copy: collected records are sorted by id below
	for id, snap := range fs.st.sessions {
		recs = append(recs, walRecord{Kind: recShed, ID: id, Snap: snapshotCopy(snap)})
	}
	fs.st.mu.Unlock()
	sort.Slice(recs[1:], func(i, j int) bool { return recs[i+1].ID < recs[j+1].ID })

	tmpPath := fs.path + ".tmp"
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return
	}
	abort := func() {
		tmp.Close()
		os.Remove(tmpPath)
	}
	for _, rec := range recs {
		line, err := encodeRecord(rec)
		if err != nil {
			abort()
			return
		}
		if _, err := tmp.Write(line); err != nil {
			abort()
			return
		}
	}
	if err := tmp.Sync(); err != nil {
		abort()
		return
	}
	if err := os.Rename(tmpPath, fs.path); err != nil {
		abort()
		return
	}
	// Crash before the directory fsync can resurface the old log; both
	// logs replay to a consistent store, so that is a durability detail,
	// not a correctness hole.
	syncDir(fs.dir)
	// Wait for in-flight appender Syncs (they hold swapMu shared) before
	// closing the file out from under them. New appenders cannot arrive:
	// they need wmu, which this function holds.
	fs.swapMu.Lock()
	fs.f.Close()
	fs.f = tmp
	fs.swapMu.Unlock()
	fs.recsSinceCompact = 0
	fs.bump(func(s *Stats) { s.Compactions++ })
}

// syncDir fsyncs a directory, making a just-renamed entry durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
