package sessionstore

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"subdex/internal/core"
)

// lines renders a sequence of records as a well-formed WAL.
func lines(t testing.TB, recs ...walRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, rec := range recs {
		line, err := encodeRecord(rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(line)
	}
	return buf.Bytes()
}

func baseWAL(t testing.TB) []byte {
	return lines(t,
		walRecord{Kind: recCreate, ID: 1, Snap: snap("TRUE")},
		walRecord{Kind: recOp, ID: 1, Seq: 0, Op: opPtr(stepOp("1-1"))},
		walRecord{Kind: recOp, ID: 1, Seq: 1, Op: opPtr(stepOp("1-2"))},
	)
}

func opPtr(op core.SessionOp) *core.SessionOp { return &op }

// writeWAL materializes raw bytes as a store directory's log.
func writeWAL(t testing.TB, raw []byte) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, WALFileName), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestWALTorture is the corrupt-log table: every case states the damage,
// what the longest valid prefix contains, and whether a truncation is
// reported. Recovery must never fail — it recovers what it can prove.
func TestWALTorture(t *testing.T) {
	base := baseWAL(t)
	cases := []struct {
		name string
		raw  func(t *testing.T) []byte

		wantOps       int  // ops recovered for session 1 (-1: session absent)
		wantTruncated bool // corrupt tail reported and cut
		wantSkipped   int64
	}{
		{
			name: "clean", raw: func(t *testing.T) []byte { return base },
			wantOps: 2,
		},
		{
			name: "empty file", raw: func(t *testing.T) []byte { return nil },
			wantOps: -1,
		},
		{
			name: "torn tail (no newline)",
			raw: func(t *testing.T) []byte {
				return append(append([]byte{}, base...), []byte(`{"c":"0000`)...)
			},
			wantOps: 2, wantTruncated: true,
		},
		{
			name: "truncated mid-record",
			raw: func(t *testing.T) []byte {
				return base[:len(base)-7] // cut inside the last line
			},
			wantOps: 1, wantTruncated: true,
		},
		{
			name: "flipped checksum byte",
			raw: func(t *testing.T) []byte {
				raw := append([]byte{}, base...)
				// Flip a byte inside the last record's payload: the CRC
				// must catch it even though the JSON may stay well-formed.
				raw[len(raw)-10] ^= 0x01
				return raw
			},
			wantOps: 1, wantTruncated: true,
		},
		{
			name: "garbage line mid-file ends the prefix",
			raw: func(t *testing.T) []byte {
				head := lines(t, walRecord{Kind: recCreate, ID: 1, Snap: snap("TRUE")})
				tail := lines(t, walRecord{Kind: recOp, ID: 1, Seq: 0, Op: opPtr(stepOp("1-1"))})
				raw := append([]byte{}, head...)
				raw = append(raw, []byte("not json at all\n")...)
				return append(raw, tail...)
			},
			wantOps: 0, wantTruncated: true,
		},
		{
			name: "duplicate seq skipped",
			raw: func(t *testing.T) []byte {
				return append(append([]byte{}, base...),
					lines(t, walRecord{Kind: recOp, ID: 1, Seq: 1, Op: opPtr(stepOp("1-2"))})...)
			},
			wantOps: 2, wantSkipped: 1,
		},
		{
			name: "seq gap proves a lost write",
			raw: func(t *testing.T) []byte {
				return append(append([]byte{}, base...),
					lines(t, walRecord{Kind: recOp, ID: 1, Seq: 5, Op: opPtr(stepOp("1-6"))})...)
			},
			wantOps: 2, wantTruncated: true,
		},
		{
			name: "op after delete skipped",
			raw: func(t *testing.T) []byte {
				return append(append([]byte{}, base...),
					lines(t,
						walRecord{Kind: recDelete, ID: 1},
						walRecord{Kind: recOp, ID: 1, Seq: 2, Op: opPtr(stepOp("1-3"))},
					)...)
			},
			wantOps: -1, wantSkipped: 1,
		},
		{
			name: "stale shed (fewer ops) skipped",
			raw: func(t *testing.T) []byte {
				return append(append([]byte{}, base...),
					lines(t, walRecord{Kind: recShed, ID: 1, Snap: snap("TRUE", stepOp("1-1"))})...)
			},
			wantOps: 2, wantSkipped: 1,
		},
		{
			name: "shed after delete skipped",
			raw: func(t *testing.T) []byte {
				return append(append([]byte{}, base...),
					lines(t,
						walRecord{Kind: recDelete, ID: 1},
						walRecord{Kind: recShed, ID: 1, Snap: snap("TRUE", stepOp("1-1"))},
					)...)
			},
			wantOps: -1, wantSkipped: 1,
		},
		{
			name: "unknown record kind ends the prefix",
			raw: func(t *testing.T) []byte {
				return append(append([]byte{}, base...),
					lines(t, walRecord{Kind: "future", ID: 1})...)
			},
			wantOps: 2, wantTruncated: true,
		},
		{
			name: "op record without op payload ends the prefix",
			raw: func(t *testing.T) []byte {
				return append(append([]byte{}, base...),
					lines(t, walRecord{Kind: recOp, ID: 1, Seq: 2})...)
			},
			wantOps: 2, wantTruncated: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := writeWAL(t, tc.raw(t))
			fs := openFile(t, dir, FileOptions{CompactEvery: -1})
			rec := fs.Recovery()
			if rec.Truncated != tc.wantTruncated {
				t.Errorf("truncated = %t (%s), want %t", rec.Truncated, rec.Reason, tc.wantTruncated)
			}
			if rec.Skipped != tc.wantSkipped {
				t.Errorf("skipped = %d, want %d", rec.Skipped, tc.wantSkipped)
			}
			got, ok, _ := fs.Get(1)
			if tc.wantOps < 0 {
				if ok {
					t.Fatalf("session 1 must be absent, got %+v", got)
				}
			} else {
				if !ok {
					t.Fatal("session 1 missing")
				}
				if len(got.Ops) != tc.wantOps {
					t.Errorf("ops = %d, want %d", len(got.Ops), tc.wantOps)
				}
			}

			// The store stays writable after recovery, and a second open
			// of the truncated file must be clean: recovery converges.
			if tc.wantOps >= 0 {
				if err := fs.AppendOp(1, tc.wantOps, stepOp("post")); err != nil {
					t.Fatalf("append after recovery: %v", err)
				}
			}
			fs.Close()
			re := openFile(t, dir, FileOptions{CompactEvery: -1})
			if rec2 := re.Recovery(); rec2.Truncated {
				t.Errorf("second open still truncating: %+v", rec2)
			}
		})
	}
}

// TestWALTruncationPreservesPrefix pins the byte-level contract: after a
// corrupt-tail open, the on-disk file is exactly the longest valid
// prefix.
func TestWALTruncationPreservesPrefix(t *testing.T) {
	base := baseWAL(t)
	raw := append(append([]byte{}, base...), []byte("garbage, no newline")...)
	dir := writeWAL(t, raw)
	fs := openFile(t, dir, FileOptions{CompactEvery: -1})
	if rec := fs.Recovery(); !rec.Truncated || rec.TruncatedAt != int64(len(base)) {
		t.Fatalf("recovery: %+v, want truncation at %d", rec, len(base))
	}
	fs.Close()
	onDisk, err := os.ReadFile(filepath.Join(dir, WALFileName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, base) {
		t.Errorf("on-disk log is not the valid prefix: %d bytes, want %d", len(onDisk), len(base))
	}
}

// FuzzWALReplay feeds arbitrary bytes through recovery. Properties: no
// panic, the claimed valid prefix replays cleanly (recovery is a fixed
// point), and replaying the prefix reproduces the exact session state the
// full replay reported — the fast path never diverges from re-reading
// its own output.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add(baseWAL(f))
	f.Add([]byte("{\"c\":\"00000000\",\"r\":{}}\n"))
	f.Add(append(baseWAL(f), []byte("{\"c\":")...))
	corrupt := baseWAL(f)
	corrupt[len(corrupt)/2] ^= 0xff
	f.Add(corrupt)
	f.Fuzz(func(t *testing.T, raw []byte) {
		st := newMemState()
		res := replayWAL(st, bytes.NewReader(raw))
		if res.ValidBytes > int64(len(raw)) {
			t.Fatalf("valid prefix %d exceeds input %d", res.ValidBytes, len(raw))
		}
		if !res.Truncated && res.ValidBytes != int64(len(raw)) {
			t.Fatalf("clean replay consumed %d of %d bytes", res.ValidBytes, len(raw))
		}

		// Reference: replay only the claimed prefix. It must be clean and
		// land in the identical state.
		ref := newMemState()
		res2 := replayWAL(ref, bytes.NewReader(raw[:res.ValidBytes]))
		if res2.Truncated {
			t.Fatalf("valid prefix did not replay cleanly: %s", res2.Reason)
		}
		if res2.Applied != res.Applied || res2.Skipped != res.Skipped {
			t.Fatalf("prefix replay counts diverge: %d/%d vs %d/%d",
				res2.Applied, res2.Skipped, res.Applied, res.Skipped)
		}
		if !reflect.DeepEqual(st.sessions, ref.sessions) || st.nextID != ref.nextID {
			t.Fatal("prefix replay state diverges from full replay")
		}
	})
}
