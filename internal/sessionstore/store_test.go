package sessionstore

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"subdex/internal/core"
	"subdex/internal/obs"
)

// snap builds a minimal valid snapshot for store-level tests; the store
// treats snapshots as opaque, so no engine is needed.
func snap(start string, ops ...core.SessionOp) *core.SessionSnapshot {
	return &core.SessionSnapshot{
		Version: core.SnapshotVersion, Fingerprint: "feedc0de00000000",
		Mode: "rp", Start: start, Ops: ops,
	}
}

func stepOp(id string) core.SessionOp {
	return core.SessionOp{Kind: core.OpStep, Digests: []string{"d0", "d1"}, OpID: id}
}

// openFile opens a FileStore in dir with aggressive compaction disabled
// unless the test asks otherwise.
func openFile(t *testing.T, dir string, o FileOptions) *FileStore {
	t.Helper()
	fs, err := OpenWithOptions(dir, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fs.Close() })
	return fs
}

// TestStoreContract runs the shared semantics against both
// implementations: they must be indistinguishable through the interface.
func TestStoreContract(t *testing.T) {
	impls := map[string]func(t *testing.T) Store{
		"mem":  func(t *testing.T) Store { return NewMemStore() },
		"file": func(t *testing.T) Store { return openFile(t, t.TempDir(), FileOptions{CompactEvery: -1}) },
	}
	for name, mk := range impls {
		t.Run(name, func(t *testing.T) {
			s := mk(t)

			if err := s.Create(1, snap("TRUE")); err != nil {
				t.Fatal(err)
			}
			if err := s.Create(1, snap("TRUE")); err == nil {
				t.Fatal("duplicate create must fail")
			}
			if err := s.AppendOp(1, 0, stepOp("1-1")); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendOp(1, 0, stepOp("1-dup")); err == nil {
				t.Fatal("out-of-order append must fail")
			}
			if err := s.AppendOp(1, 2, stepOp("1-gap")); err == nil {
				t.Fatal("gapped append must fail")
			}
			if err := s.AppendOp(99, 0, stepOp("99-1")); err == nil {
				t.Fatal("append to unknown session must fail")
			}
			got, ok, err := s.Get(1)
			if err != nil || !ok {
				t.Fatalf("get: ok=%t err=%v", ok, err)
			}
			if len(got.Ops) != 1 || got.Ops[0].OpID != "1-1" {
				t.Fatalf("stored ops: %+v", got.Ops)
			}

			// A full snapshot's Final is dropped the moment an op is
			// appended without one: the end-state record would be stale.
			full := snap("TRUE", stepOp("2-1"))
			full.Final = &core.FinalState{Current: "TRUE", Steps: 1}
			if err := s.Create(2, full); err != nil {
				t.Fatal(err)
			}
			if err := s.AppendOp(2, 1, stepOp("2-2")); err != nil {
				t.Fatal(err)
			}
			got, _, _ = s.Get(2)
			if got.Final != nil {
				t.Error("append must clear a stale Final")
			}

			// Shed replaces wholesale; its Final survives (it matches).
			shed := snap("TRUE", stepOp("2-1"), stepOp("2-2"))
			shed.Final = &core.FinalState{Current: "TRUE", Steps: 2}
			if err := s.Shed(2, shed); err != nil {
				t.Fatal(err)
			}
			got, _, _ = s.Get(2)
			if got.Final == nil || got.Final.Steps != 2 {
				t.Errorf("shed must keep its Final: %+v", got.Final)
			}

			// A stale shed — a snapshot with fewer ops than the record it
			// would replace — must be refused: between snapshot and shed a
			// restored copy committed (and was acknowledged for) more ops,
			// and overwriting would erase them.
			if err := s.Shed(2, snap("TRUE", stepOp("2-1"))); !errors.Is(err, ErrStaleShed) {
				t.Fatalf("stale shed: err = %v, want ErrStaleShed", err)
			}
			if got, _, _ = s.Get(2); len(got.Ops) != 2 {
				t.Fatalf("stale shed mutated the record: %d ops, want 2", len(got.Ops))
			}

			// Mutating a returned copy must not reach the mirror.
			got.Ops[0].OpID = "mutated"
			again, _, _ := s.Get(2)
			if again.Ops[0].OpID == "mutated" {
				t.Error("Get must return a private copy")
			}

			all, next, err := s.All()
			if err != nil || len(all) != 2 {
				t.Fatalf("all: %d sessions err=%v", len(all), err)
			}
			if next != 3 {
				t.Errorf("next id: want 3, got %d", next)
			}
			if err := s.Delete(2); err != nil {
				t.Fatal(err)
			}
			if err := s.Delete(2); err != nil {
				t.Fatalf("deleting an unknown id must be a no-op: %v", err)
			}
			if _, ok, _ := s.Get(2); ok {
				t.Error("deleted session still readable")
			}
			// A shed that raced a delete must not resurrect the session.
			if err := s.Shed(2, shed); !errors.Is(err, ErrStaleShed) {
				t.Fatalf("shed after delete: err = %v, want ErrStaleShed", err)
			}
			if _, ok, _ := s.Get(2); ok {
				t.Error("stale shed resurrected a deleted session")
			}
			// The watermark survives deleting the highest id.
			if _, next, _ = s.All(); next != 3 {
				t.Errorf("next id after delete: want 3, got %d", next)
			}
			if st := s.Stats(); st.Sessions != 1 || st.Appends == 0 {
				t.Errorf("stats: %+v", st)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFileStoreReopen is the durability core: everything recorded before
// a Close (or a crash — every append is fsynced) is there after reopen.
func TestFileStoreReopen(t *testing.T) {
	dir := t.TempDir()
	fs := openFile(t, dir, FileOptions{CompactEvery: -1})
	if err := fs.Create(1, snap("TRUE")); err != nil {
		t.Fatal(err)
	}
	if err := fs.AppendOp(1, 0, stepOp("1-1")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(2, snap("TRUE")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(2); err != nil {
		t.Fatal(err)
	}
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(3, snap("TRUE")); err == nil {
		t.Fatal("writes after Close must fail")
	}

	re := openFile(t, dir, FileOptions{CompactEvery: -1})
	rec := re.Recovery()
	if rec.Truncated {
		t.Fatalf("clean log reported truncated: %+v", rec)
	}
	if rec.Sessions != 1 {
		t.Fatalf("recovered %d sessions, want 1", rec.Sessions)
	}
	got, ok, _ := re.Get(1)
	if !ok || len(got.Ops) != 1 || got.Ops[0].OpID != "1-1" {
		t.Fatalf("session 1 after reopen: ok=%t %+v", ok, got)
	}
	if _, next, _ := re.All(); next != 3 {
		t.Errorf("next id after reopen: want 3, got %d", next)
	}
}

// TestFileStoreCompaction drives enough appends to trigger compaction and
// checks the rewritten log replays to the same state — including the id
// watermark, which only the dedicated record can preserve once the
// highest session is deleted.
func TestFileStoreCompaction(t *testing.T) {
	dir := t.TempDir()
	fs := openFile(t, dir, FileOptions{CompactEvery: 8})
	if err := fs.Create(1, snap("TRUE")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Create(9, snap("TRUE")); err != nil {
		t.Fatal(err)
	}
	if err := fs.Delete(9); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fs.AppendOp(1, i, stepOp("")); err != nil {
			t.Fatal(err)
		}
	}
	if st := fs.Stats(); st.Compactions == 0 {
		t.Fatalf("no compaction after %d appends: %+v", 13, st)
	}
	want, _, _ := fs.All()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}

	re := openFile(t, dir, FileOptions{CompactEvery: -1})
	got, next, _ := re.All()
	if next != 10 {
		t.Errorf("compaction lost the id watermark: next = %d, want 10", next)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("compacted log replays differently:\nwant %+v\ngot  %+v", want, got)
	}
}

// TestFileStoreConcurrentAppends hammers the write path from many
// goroutines (run under -race in CI): per-session seq discipline plus the
// fsync-outside-lock batching must stay coherent.
func TestFileStoreConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	fs := openFile(t, dir, FileOptions{CompactEvery: 16})
	const sessions, ops = 8, 12
	var wg sync.WaitGroup
	for id := 1; id <= sessions; id++ {
		if err := fs.Create(id, snap("TRUE")); err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if err := fs.AppendOp(id, i, stepOp("")); err != nil {
					t.Error(err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	re := openFile(t, dir, FileOptions{CompactEvery: -1})
	all, _, _ := re.All()
	if len(all) != sessions {
		t.Fatalf("recovered %d sessions, want %d", len(all), sessions)
	}
	for id, s := range all {
		if len(s.Ops) != ops {
			t.Errorf("session %d: %d ops, want %d", id, len(s.Ops), ops)
		}
	}
}

// TestConcurrentAppendsAcrossCompaction pins the fsync-vs-swap ordering:
// with compaction firing on every append, a concurrent appender's Sync
// must never land on a file a compaction just closed — before swapMu
// that surfaced as a spurious "file already closed" fsync failure (and a
// client-facing 500) for a record that was in fact durable in the
// compacted log. Run under -race in CI.
func TestConcurrentAppendsAcrossCompaction(t *testing.T) {
	dir := t.TempDir()
	fs := openFile(t, dir, FileOptions{CompactEvery: 1})
	const sessions, ops = 6, 25
	for id := 1; id <= sessions; id++ {
		if err := fs.Create(id, snap("TRUE")); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for id := 1; id <= sessions; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				if err := fs.AppendOp(id, i, stepOp("")); err != nil {
					t.Errorf("session %d op %d: %v", id, i, err)
					return
				}
			}
		}(id)
	}
	wg.Wait()
	if err := fs.Close(); err != nil {
		t.Fatal(err)
	}
	re := openFile(t, dir, FileOptions{CompactEvery: -1})
	all, _, _ := re.All()
	for id := 1; id <= sessions; id++ {
		s, ok := all[id]
		if !ok {
			t.Errorf("session %d lost", id)
			continue
		}
		if len(s.Ops) != ops {
			t.Errorf("session %d: %d ops after reopen, want %d", id, len(s.Ops), ops)
		}
	}
}

// TestInstruments pins that pre-instrumentation counts are credited and
// later activity keeps counting.
func TestInstruments(t *testing.T) {
	dir := t.TempDir()
	fs := openFile(t, dir, FileOptions{CompactEvery: -1})
	if err := fs.Create(1, snap("TRUE")); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	re := openFile(t, dir, FileOptions{CompactEvery: -1})
	reg := obs.NewRegistry()
	ins := Instruments{
		Appends:       reg.Counter("subdex_wal_appends_total", "test", obs.L("src", "t")),
		Fsyncs:        reg.Counter("subdex_wal_fsyncs_total", "test", obs.L("src", "t")),
		ReplayRecords: reg.Counter("subdex_wal_replay_records_total", "test", obs.L("src", "t")),
		Truncations:   reg.Counter("subdex_wal_truncations_total", "test", obs.L("src", "t")),
	}
	re.Instrument(ins)
	if got := ins.ReplayRecords.Value(); got != 1 {
		t.Errorf("replay records credited late: %v, want 1", got)
	}
	if err := re.AppendOp(1, 0, stepOp("")); err != nil {
		t.Fatal(err)
	}
	if got := ins.Appends.Value(); got != 1 {
		t.Errorf("appends: %v, want 1", got)
	}
	if got := ins.Fsyncs.Value(); got < 1 {
		t.Errorf("fsyncs: %v, want >= 1", got)
	}
}

// TestOpenMissingDir creates the directory chain on demand.
func TestOpenMissingDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b")
	fs := openFile(t, dir, FileOptions{})
	if err := fs.Create(1, snap("TRUE")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, WALFileName)); err != nil {
		t.Fatal(err)
	}
}
