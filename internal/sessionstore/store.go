// Package sessionstore persists exploration sessions. A session's
// durable form is its core.SessionSnapshot — a command log plus
// verification digests — so the store never needs the engine: it records
// creations, appended ops, shed snapshots, and deletions, and hands the
// accumulated snapshots back for the server to replay through the real
// engine on recovery.
//
// Two implementations share the same semantics: MemStore (a mirror map,
// for tests and single-process use) and FileStore (the mirror backed by
// a crash-safe append-only write-ahead log with periodic snapshot
// compaction; see filestore.go).
//
// Lock discipline: this package deliberately serializes its file writes
// under an internal writer mutex — that is the point of a WAL — but the
// hot-path fsync happens outside it, and no session or server mutex is
// ever held around store calls (the subdexvet lockblock rule enforces
// the caller side).
package sessionstore

import (
	"errors"
	"fmt"
	"sync"

	"subdex/internal/core"
	"subdex/internal/obs"
)

// ErrStaleShed reports a rejected Shed: between the caller snapshotting
// the session and the shed reaching the store, the store's record moved
// past it — an acknowledged op was appended (a restored copy of the
// session kept going) or the session was deleted. Accepting the shed
// would erase that newer durable state, so the store refuses; the caller
// must drop its snapshot, which is the correct outcome, not a failure.
var ErrStaleShed = errors.New("sessionstore: stale shed")

// Store is the durable session store. Implementations are safe for
// concurrent use. An op append or shed that returns nil has been made
// durable (for FileStore: written and fsynced) — the server relies on
// that to log before it responds.
type Store interface {
	// Create durably records a new session under id with its
	// creation-time base snapshot (no ops yet).
	Create(id int, snap *core.SessionSnapshot) error
	// AppendOp durably appends op as session id's seq-th op (0-based;
	// seq must equal the number of ops already recorded).
	AppendOp(id, seq int, op core.SessionOp) error
	// Shed replaces session id's record with a full snapshot, as the
	// idle janitor does when it evicts the in-memory copy.
	Shed(id int, snap *core.SessionSnapshot) error
	// Get returns session id's snapshot (a private copy), or ok=false.
	Get(id int) (snap *core.SessionSnapshot, ok bool, err error)
	// All returns every stored session (private copies) plus the next
	// session id to allocate — one past the highest id ever created,
	// deletions included, so recovered servers never reuse an id.
	All() (map[int]*core.SessionSnapshot, int, error)
	// Delete removes session id. Deleting an unknown id is not an error.
	Delete(id int) error
	// Instrument attaches observability counters. Counts accumulated
	// before the call (e.g. during WAL replay in open) are added to the
	// counters immediately.
	Instrument(ins Instruments)
	// Stats reports lifetime operation counts.
	Stats() Stats
	// Close releases resources. The store must not be used afterwards.
	Close() error
}

// Instruments carries the store's metric hooks. Nil counters are no-ops,
// so the zero value disables observability.
type Instruments struct {
	// Appends counts durable WAL record writes
	// (subdex_wal_appends_total).
	Appends *obs.Counter
	// Fsyncs counts WAL fsync calls (subdex_wal_fsyncs_total).
	Fsyncs *obs.Counter
	// ReplayRecords counts WAL records applied during open-time replay
	// (subdex_wal_replay_records_total).
	ReplayRecords *obs.Counter
	// Truncations counts corrupt-tail truncations during open-time
	// replay (subdex_wal_truncations_total).
	Truncations *obs.Counter
}

// Stats are lifetime counts, exposed for tests and recovery reports.
type Stats struct {
	// Appends is the number of durable record writes.
	Appends int64
	// Fsyncs is the number of fsync calls on the WAL file.
	Fsyncs int64
	// ReplayRecords is the number of records applied during replay.
	ReplayRecords int64
	// ReplaySkipped is the number of well-formed but semantically
	// redundant records skipped during replay (duplicate seq, op for an
	// unknown or deleted session).
	ReplaySkipped int64
	// Truncations is the number of corrupt-tail truncations performed.
	Truncations int64
	// Compactions is the number of snapshot compactions performed.
	Compactions int64
	// Sessions is the number of sessions currently stored.
	Sessions int
}

// memState is the shared mirror: the current snapshot of every stored
// session. Both implementations apply the same record semantics to it
// (see apply in wal.go), which is what makes FileStore's replay provably
// equivalent to the in-memory history.
type memState struct {
	//subdex:lockorder rank=60 innermost: the shared mirror's lock nests under every server and store lock and takes nothing itself
	mu       sync.Mutex
	sessions map[int]*core.SessionSnapshot
	nextID   int
}

func newMemState() *memState {
	return &memState{sessions: make(map[int]*core.SessionSnapshot), nextID: 1}
}

// snapshotCopy deep-copies the mutable parts of a snapshot so callers
// and the mirror never alias each other's op slices.
func snapshotCopy(s *core.SessionSnapshot) *core.SessionSnapshot {
	if s == nil {
		return nil
	}
	c := *s
	c.Ops = append([]core.SessionOp(nil), s.Ops...)
	if s.Final != nil {
		f := *s.Final
		c.Final = &f
	}
	return &c
}

// MemStore is the in-memory Store: the mirror alone, with no backing
// file. It gives single-process deployments shed/restore semantics (the
// janitor can move idle sessions out of the serving map) without any
// durability, and is the reference implementation the WAL tests compare
// against.
type MemStore struct {
	st  *memState
	ins Instruments

	//subdex:lockorder rank=50 Stats holds it across the mirror's memState.mu, mirroring FileStore's ladder
	statsMu sync.Mutex
	stats   Stats
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{st: newMemState()}
}

// Create implements Store.
func (m *MemStore) Create(id int, snap *core.SessionSnapshot) error {
	err := m.st.apply(walRecord{Kind: recCreate, ID: id, Snap: snapshotCopy(snap)})
	m.count(err)
	return err
}

// AppendOp implements Store.
func (m *MemStore) AppendOp(id, seq int, op core.SessionOp) error {
	err := m.st.apply(walRecord{Kind: recOp, ID: id, Seq: seq, Op: &op})
	m.count(err)
	return err
}

// Shed implements Store.
func (m *MemStore) Shed(id int, snap *core.SessionSnapshot) error {
	err := m.st.apply(walRecord{Kind: recShed, ID: id, Snap: snapshotCopy(snap)})
	m.count(err)
	return err
}

// Get implements Store.
func (m *MemStore) Get(id int) (*core.SessionSnapshot, bool, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	snap, ok := m.st.sessions[id]
	if !ok {
		return nil, false, nil
	}
	return snapshotCopy(snap), true, nil
}

// All implements Store.
func (m *MemStore) All() (map[int]*core.SessionSnapshot, int, error) {
	m.st.mu.Lock()
	defer m.st.mu.Unlock()
	out := make(map[int]*core.SessionSnapshot, len(m.st.sessions))
	//subdex:orderinsensitive keyed map copy: every write targets its own key, order cannot change the result
	for id, snap := range m.st.sessions {
		out[id] = snapshotCopy(snap)
	}
	return out, m.st.nextID, nil
}

// Delete implements Store.
func (m *MemStore) Delete(id int) error {
	err := m.st.apply(walRecord{Kind: recDelete, ID: id})
	m.count(err)
	return err
}

// Instrument implements Store.
func (m *MemStore) Instrument(ins Instruments) {
	m.statsMu.Lock()
	appends := m.stats.Appends
	m.ins = ins
	m.statsMu.Unlock()
	ins.Appends.Add(appends)
}

// Stats implements Store.
func (m *MemStore) Stats() Stats {
	m.statsMu.Lock()
	defer m.statsMu.Unlock()
	st := m.stats
	m.st.mu.Lock()
	st.Sessions = len(m.st.sessions)
	m.st.mu.Unlock()
	return st
}

// Close implements Store.
func (m *MemStore) Close() error { return nil }

func (m *MemStore) count(err error) {
	if err != nil {
		return
	}
	m.statsMu.Lock()
	ins := m.ins
	m.stats.Appends++
	m.statsMu.Unlock()
	ins.Appends.Inc()
}

// errSeq reports an out-of-order live append — a store-usage bug, as
// opposed to the tolerated redundancies of crash replay.
func errSeq(id, seq, want int) error {
	return fmt.Errorf("sessionstore: session %d: append seq %d, want %d", id, seq, want)
}
