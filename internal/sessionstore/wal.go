package sessionstore

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"

	"subdex/internal/core"
)

// The WAL is a JSONL file: one record per line, each wrapped in a CRC
// envelope {"c":"<crc32c hex>","r":<record>} so torn or bit-flipped
// tails are detected without trusting JSON well-formedness alone. Replay
// recovers the longest valid prefix: the first undecodable or
// checksum-failing line ends recovery and the file is truncated there.
// Three well-formed redundancies are tolerated mid-stream instead of
// truncating — an op whose seq was already applied (a duplicate append
// after an ill-timed crash), an op for a session no longer present (its
// delete already applied), and a shed that is stale (its snapshot has
// fewer ops than the record it would replace, or its session was
// already deleted in this log) — because each has exactly one correct
// interpretation: skip.

// Record kinds. A create opens a session with its base snapshot, an op
// appends one committed operation, a shed replaces the whole record with
// a full snapshot (compaction writes these too), a delete removes it.
const (
	recCreate = "create"
	recOp     = "op"
	recShed   = "shed"
	recDelete = "delete"
	// recNext is the id-allocator watermark (ID = highest id ever used):
	// compaction writes one so deleting the highest session can never
	// cause id reuse after a restart.
	recNext = "next"
)

// walRecord is one logical WAL record (the "r" payload of a line).
type walRecord struct {
	Kind string                `json:"k"`
	ID   int                   `json:"id"`
	Seq  int                   `json:"seq,omitempty"`
	Op   *core.SessionOp       `json:"op,omitempty"`
	Snap *core.SessionSnapshot `json:"snap,omitempty"`
}

// walEnvelope is the on-disk line: the record's raw JSON plus its CRC.
type walEnvelope struct {
	C string          `json:"c"`
	R json.RawMessage `json:"r"`
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeRecord renders one WAL line, newline-terminated.
func encodeRecord(rec walRecord) ([]byte, error) {
	payload, err := json.Marshal(rec)
	if err != nil {
		return nil, err
	}
	env := walEnvelope{
		C: fmt.Sprintf("%08x", crc32.Checksum(payload, castagnoli)),
		R: payload,
	}
	line, err := json.Marshal(env)
	if err != nil {
		return nil, err
	}
	return append(line, '\n'), nil
}

// decodeLine parses and checksum-verifies one WAL line.
func decodeLine(line []byte) (walRecord, error) {
	var env walEnvelope
	if err := json.Unmarshal(line, &env); err != nil {
		return walRecord{}, fmt.Errorf("sessionstore: bad wal line: %w", err)
	}
	if got := fmt.Sprintf("%08x", crc32.Checksum(env.R, castagnoli)); got != env.C {
		return walRecord{}, fmt.Errorf("sessionstore: wal checksum mismatch: line says %s, payload is %s", env.C, got)
	}
	var rec walRecord
	if err := json.Unmarshal(env.R, &rec); err != nil {
		return walRecord{}, fmt.Errorf("sessionstore: bad wal record: %w", err)
	}
	return rec, nil
}

// apply mutates the mirror with one record under live-write semantics:
// any inconsistency is a caller bug and errors out before anything is
// written. Compare replay, which tolerates the redundancies a crash can
// legitimately leave behind.
func (st *memState) apply(rec walRecord) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch rec.Kind {
	case recCreate:
		if rec.Snap == nil {
			return fmt.Errorf("sessionstore: create record without snapshot")
		}
		if _, ok := st.sessions[rec.ID]; ok {
			return fmt.Errorf("sessionstore: session %d already exists", rec.ID)
		}
		st.sessions[rec.ID] = rec.Snap
		st.bumpNextID(rec.ID)
	case recOp:
		snap, ok := st.sessions[rec.ID]
		if !ok {
			return fmt.Errorf("sessionstore: append to unknown session %d", rec.ID)
		}
		if rec.Seq != len(snap.Ops) {
			return errSeq(rec.ID, rec.Seq, len(snap.Ops))
		}
		snap.Ops = append(snap.Ops, *rec.Op)
		// The recorded end state predates this op; drop it rather than
		// let RestoreSession verify against a stale target.
		snap.Final = nil
	case recShed:
		if rec.Snap == nil {
			return fmt.Errorf("sessionstore: shed record without snapshot")
		}
		// A shed wholesale-replaces the record, so it must not be older
		// than what it replaces: between the caller snapshotting the
		// session and this append, a restored copy may have committed
		// (and durably logged) further ops, or a delete may have removed
		// the session. Overwriting would erase acknowledged state —
		// later AppendOps would fail their seq check forever and a
		// restart would resume pre-op — so a stale shed is refused
		// before anything is written.
		cur, ok := st.sessions[rec.ID]
		if !ok {
			return fmt.Errorf("%w: session %d no longer exists", ErrStaleShed, rec.ID)
		}
		if len(rec.Snap.Ops) < len(cur.Ops) {
			return fmt.Errorf("%w: session %d snapshot has %d ops, record has %d",
				ErrStaleShed, rec.ID, len(rec.Snap.Ops), len(cur.Ops))
		}
		st.sessions[rec.ID] = rec.Snap
		st.bumpNextID(rec.ID)
	case recDelete:
		delete(st.sessions, rec.ID)
	case recNext:
		st.bumpNextID(rec.ID)
	default:
		return fmt.Errorf("sessionstore: unknown record kind %q", rec.Kind)
	}
	return nil
}

// replay mutates the mirror with one recovered record. It reports
// whether the record was applied (false: skipped as redundant). An error
// means the record is inconsistent with the recovered prefix (e.g. a seq
// gap, which proves a lost write) — the caller stops and truncates.
// deleted is the set of ids a recDelete removed earlier in this stream;
// the caller owns it across the whole replay.
func (st *memState) replay(rec walRecord, deleted map[int]bool) (bool, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch rec.Kind {
	case recCreate:
		if rec.Snap == nil {
			return false, fmt.Errorf("sessionstore: create record without snapshot")
		}
		st.sessions[rec.ID] = rec.Snap
		st.bumpNextID(rec.ID)
	case recOp:
		if rec.Op == nil {
			return false, fmt.Errorf("sessionstore: op record without op")
		}
		snap, ok := st.sessions[rec.ID]
		if !ok {
			return false, nil // session already deleted: dead op
		}
		if rec.Seq < len(snap.Ops) {
			return false, nil // duplicate append: already applied
		}
		if rec.Seq > len(snap.Ops) {
			return false, errSeq(rec.ID, rec.Seq, len(snap.Ops))
		}
		snap.Ops = append(snap.Ops, *rec.Op)
		snap.Final = nil
	case recShed:
		if rec.Snap == nil {
			return false, fmt.Errorf("sessionstore: shed record without snapshot")
		}
		// A shed for an id this log never deleted but does not hold is a
		// creation — that is the shape compaction writes. A shed for a
		// deleted id, or one older than the record it would replace, is
		// the stale leftover apply refuses on the live path: skip it
		// rather than resurrect or rewind acknowledged state.
		if deleted[rec.ID] {
			return false, nil
		}
		if cur, ok := st.sessions[rec.ID]; ok && len(rec.Snap.Ops) < len(cur.Ops) {
			return false, nil
		}
		st.sessions[rec.ID] = rec.Snap
		st.bumpNextID(rec.ID)
	case recDelete:
		delete(st.sessions, rec.ID)
		deleted[rec.ID] = true
	case recNext:
		st.bumpNextID(rec.ID)
	default:
		return false, fmt.Errorf("sessionstore: unknown record kind %q", rec.Kind)
	}
	return true, nil
}

// bumpNextID advances the allocator watermark; callers hold st.mu.
func (st *memState) bumpNextID(id int) {
	if id >= st.nextID {
		st.nextID = id + 1
	}
}

// replayResult summarizes one WAL read.
type replayResult struct {
	// Applied and Skipped count records; see Stats.
	Applied int64
	Skipped int64
	// ValidBytes is the byte length of the longest valid prefix. When
	// Truncated, everything at and past this offset is corrupt.
	ValidBytes int64
	// Truncated reports that the file had an invalid tail (Reason says
	// why). The caller is responsible for the actual truncation.
	Truncated bool
	Reason    string
}

// replayWAL reads a WAL stream into the mirror, stopping at the first
// invalid line. It never fails: any unreadable suffix just ends the
// recovered prefix.
func replayWAL(st *memState, r io.Reader) replayResult {
	var res replayResult
	deleted := make(map[int]bool)
	br := bufio.NewReaderSize(r, 1<<16)
	for {
		line, err := br.ReadBytes('\n')
		if err == io.EOF {
			if len(line) > 0 {
				// A torn final write: the record never finished.
				res.Truncated = true
				res.Reason = "torn final record (no newline)"
			}
			return res
		}
		if err != nil {
			res.Truncated = true
			res.Reason = fmt.Sprintf("read: %v", err)
			return res
		}
		rec, derr := decodeLine(line[:len(line)-1])
		if derr != nil {
			res.Truncated = true
			res.Reason = derr.Error()
			return res
		}
		applied, aerr := st.replay(rec, deleted)
		if aerr != nil {
			res.Truncated = true
			res.Reason = aerr.Error()
			return res
		}
		res.ValidBytes += int64(len(line))
		if applied {
			res.Applied++
		} else {
			res.Skipped++
		}
	}
}
