package study

import (
	"testing"

	"subdex/internal/baselines"
	"subdex/internal/core"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

func studyExplorer(t testing.TB) (*core.Explorer, []gen.IrregularGroup) {
	t.Helper()
	db, err := gen.Movielens(gen.Config{Seed: 5, Scale: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	groups, err := gen.PlantIrregularGroups(db, 42, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.RecSampleSize = 500
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return ex, groups
}

func TestSubjectProbabilities(t *testing.T) {
	high := NewSubject(1, HighCS, HighDomain, 7)
	low := NewSubject(2, LowCS, LowDomain, 7)
	if high.NoticeProb() <= low.NoticeProb() {
		t.Error("high CS must notice more")
	}
	if high.SmartActionProb() <= low.SmartActionProb() {
		t.Error("high CS must act smarter")
	}
	if high.VerifyProb() <= low.VerifyProb() {
		t.Error("high CS must verify more")
	}
	for _, p := range []float64{high.NoticeProb(), low.NoticeProb(),
		high.SmartActionProb(), low.SmartActionProb(),
		high.FollowRecProb(), low.FollowRecProb(),
		high.VerifyProb(), low.VerifyProb()} {
		if p < 0 || p > 1 {
			t.Errorf("probability out of range: %v", p)
		}
	}
	// Domain knowledge has a negligible effect, per the paper's finding.
	domHigh := NewSubject(1, HighCS, HighDomain, 7)
	domLow := NewSubject(1, HighCS, LowDomain, 7)
	if diff := domHigh.NoticeProb() - domLow.NoticeProb(); diff < 0 || diff > 0.05 {
		t.Errorf("domain effect should be tiny, got %v", diff)
	}
}

func TestIrregularDetectorExactExposure(t *testing.T) {
	ex, groups := studyExplorer(t)
	det := &IrregularDetector{Groups: groups}
	if det.NumTargets() != len(groups) {
		t.Fatal("NumTargets wrong")
	}
	// Drilling exactly into a planted group and showing a map on its
	// dimension must expose it exactly.
	g := groups[0]
	desc := g.Description()
	seen := ratingmap.NewSeenSet()
	res, err := ex.RMSet(desc, seen)
	if err != nil {
		t.Fatal(err)
	}
	exposures := det.Exposed(ex, desc, res.Maps)
	foundExact := false
	for _, e := range exposures {
		if e.Target == 0 && e.Exact {
			foundExact = true
			if e.Slack != 0 {
				t.Errorf("exact exposure with slack %d", e.Slack)
			}
		}
	}
	if !foundExact {
		t.Errorf("fully pinned planted group not exposed: %v (group %v)", exposures, g)
	}
}

func TestIrregularDetectorNoFalsePositiveAtRoot(t *testing.T) {
	ex, groups := studyExplorer(t)
	det := &IrregularDetector{Groups: groups}
	seen := ratingmap.NewSeenSet()
	res, err := ex.RMSet(query.Description{}, seen)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range det.Exposed(ex, query.Description{}, res.Maps) {
		if e.Exact {
			// Exact exposure straight from the root display is possible
			// only when a single bar pinpoints the whole group — verify it.
			g := groups[e.Target]
			if len(g.Selectors) > 1 {
				// needs a genuinely identifying bar; accept but verify the
				// detector agrees with itself on a recheck
				again := det.Exposed(ex, query.Description{}, res.Maps)
				if len(again) == 0 {
					t.Error("detector not deterministic")
				}
			}
		}
	}
}

func TestInsightDetector(t *testing.T) {
	insights := gen.YelpInsights()
	db, err := gen.Yelp(gen.Config{Seed: 8, Scale: 0.1, ForcedBiases: gen.InsightBiases(insights)})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := core.NewExplorer(db, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	det := &InsightDetector{Insights: insights}
	// Build a display containing exactly the first insight's map.
	in := insights[0]
	b := ratingmap.Builder{DB: db}
	recs := make([]int32, db.Ratings.Len())
	for i := range recs {
		recs[i] = int32(i)
	}
	maps := b.Build(query.Description{}, recs, []ratingmap.Key{
		{Side: in.Side, Attr: in.Attr, Dim: in.Dim},
	})
	exposures := det.Exposed(ex, query.Description{}, maps)
	found := false
	for _, e := range exposures {
		if e.Target == 0 {
			found = true
			if !e.Exact {
				t.Error("insight exposures must be exact")
			}
		}
	}
	if !found {
		ok, _ := gen.VerifyInsight(db, in, 10)
		if ok {
			t.Errorf("verified insight not exposed by its own map")
		} else {
			t.Skip("insight did not survive generation at this scale")
		}
	}
	// A display on the wrong dimension must not expose it.
	wrong := b.Build(query.Description{}, recs, []ratingmap.Key{
		{Side: in.Side, Attr: in.Attr, Dim: (in.Dim + 1) % 4},
	})
	for _, e := range det.Exposed(ex, query.Description{}, wrong) {
		if e.Target == 0 {
			t.Error("wrong-dimension map must not expose the insight")
		}
	}
}

func TestRunnerModesOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated study is slow")
	}
	ex, groups := studyExplorer(t)
	r := &Runner{Ex: ex, Detector: &IrregularDetector{Groups: groups}, PathLen: 7}
	means := map[core.Mode]float64{}
	for _, mode := range []core.Mode{core.UserDriven, core.RecommendationPowered, core.FullyAutomated} {
		cell, err := r.RunCell(mode, HighCS, HighDomain, 8, 99)
		if err != nil {
			t.Fatal(err)
		}
		means[mode] = cell.Mean()
		if cell.Mean() < 0 || cell.Mean() > 2 {
			t.Fatalf("%v: mean %v out of [0,2]", mode, cell.Mean())
		}
	}
	// The headline finding: guidance helps. RP must not trail UD by much.
	if means[core.RecommendationPowered]+0.3 < means[core.UserDriven] {
		t.Errorf("RP (%v) should not trail UD (%v)", means[core.RecommendationPowered], means[core.UserDriven])
	}
}

func TestRunnerOutcomeShape(t *testing.T) {
	ex, groups := studyExplorer(t)
	r := &Runner{Ex: ex, Detector: &IrregularDetector{Groups: groups}, PathLen: 4}
	subj := NewSubject(0, HighCS, HighDomain, 5)
	out, err := r.Run(subj, core.FullyAutomated)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerStepIdentified) != 4 {
		t.Fatalf("per-step log = %d entries, want 4", len(out.PerStepIdentified))
	}
	prev := 0
	for _, v := range out.PerStepIdentified {
		if v < prev {
			t.Fatal("cumulative identification must be monotone")
		}
		prev = v
	}
	if out.Identified != out.PerStepIdentified[len(out.PerStepIdentified)-1] {
		t.Fatal("final count must equal last cumulative entry")
	}
	if out.Identified > 0 && out.StepsToFirst == 0 {
		t.Fatal("StepsToFirst not recorded")
	}
}

func TestGeneratePathAndScore(t *testing.T) {
	ex, groups := studyExplorer(t)
	det := &IrregularDetector{Groups: groups}
	path, err := GeneratePath(ex, SubdexSource{}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(path) == 0 || len(path) > 5 {
		t.Fatalf("path length %d", len(path))
	}
	for _, st := range path {
		if len(st.Maps) == 0 {
			t.Fatal("path step without maps")
		}
	}
	score := ScorePath(ex, det, path, 10, 3)
	if score < 0 || score > float64(det.NumTargets()) {
		t.Fatalf("score %v out of range", score)
	}
	// Scoring is deterministic for a fixed seed.
	if again := ScorePath(ex, det, path, 10, 3); again != score {
		t.Fatal("ScorePath must be deterministic per seed")
	}
}

func TestBaselineSources(t *testing.T) {
	ex, _ := studyExplorer(t)
	seen := ratingmap.NewSeenSet()
	res, err := ex.RMSet(query.Description{}, seen)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range []OpSource{
		&SDDSource{SDD: baselines.SmartDrillDown{}},
		&QagviewSource{Qagview: baselines.Qagview{}},
	} {
		ops, err := src.Next(ex, query.Description{}, res.Maps, seen, 3)
		if err != nil {
			t.Fatalf("%s: %v", src.Name(), err)
		}
		if len(ops) == 0 {
			t.Fatalf("%s returned no operations", src.Name())
		}
		for _, op := range ops {
			if op.Kind != query.Filter {
				t.Errorf("%s produced non-drill-down %v", src.Name(), op.Kind)
			}
		}
	}
}

func TestRemainingSide(t *testing.T) {
	ex, groups := studyExplorer(t)
	_ = ex
	det := &IrregularDetector{Groups: groups}
	// Nothing found: both sides remain → nil.
	if s := remainingSide(det, det.NumTargets(), map[int]bool{}); s != nil {
		t.Errorf("both sides open should give nil, got %v", *s)
	}
	// First group found: the other side remains.
	found := map[int]bool{0: true}
	if s := remainingSide(det, det.NumTargets(), found); s == nil || *s != groups[1].Side {
		t.Error("single remaining side not detected")
	}
	// Everything found → nil.
	found[1] = true
	if s := remainingSide(det, det.NumTargets(), found); s != nil {
		t.Error("all found should give nil")
	}
}

func TestBreadthTaskRollsUp(t *testing.T) {
	// With BreadthTask set, guided subjects must not end sessions at deep
	// selections: the policy rolls up whenever the selection has ≥2 pairs.
	ex, groups := studyExplorer(t)
	r := &Runner{Ex: ex, Detector: &IrregularDetector{Groups: groups},
		PathLen: 6, BreadthTask: true}
	subj := NewSubject(1, HighCS, HighDomain, 11)
	out, err := r.Run(subj, core.RecommendationPowered)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.PerStepIdentified) != 6 {
		t.Fatalf("steps = %d", len(out.PerStepIdentified))
	}
}
