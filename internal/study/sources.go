package study

import (
	"subdex/internal/baselines"
	"subdex/internal/core"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// OpSource supplies next-action operations for the Table 4 comparison: the
// rating maps shown at each step are fixed (SubDEx's RM-Set), and only the
// source of next-action recommendations varies between SubDEx, Smart
// Drill-Down, and Qagview.
type OpSource interface {
	Name() string
	Next(ex *core.Explorer, cur query.Description, maps []*ratingmap.RatingMap,
		seen *ratingmap.SeenSet, o int) ([]query.Operation, error)
}

// SubdexSource yields SubDEx's own Equation-2-ranked recommendations.
type SubdexSource struct{}

// Name identifies the source.
func (SubdexSource) Name() string { return "SubDEx" }

// Next delegates to the Recommendation Builder.
func (SubdexSource) Next(ex *core.Explorer, cur query.Description, maps []*ratingmap.RatingMap,
	seen *ratingmap.SeenSet, o int) ([]query.Operation, error) {
	rb := core.RecommendationBuilder{Ex: ex}
	recs, _, err := rb.Recommend(cur, maps, seen, o)
	if err != nil {
		return nil, err
	}
	ops := make([]query.Operation, 0, len(recs))
	for _, rec := range recs {
		ops = append(ops, rec.Op)
	}
	return ops, nil
}

// SDDSource yields Smart Drill-Down rule-list operations.
type SDDSource struct {
	SDD baselines.SmartDrillDown
}

// Name identifies the source.
func (s *SDDSource) Name() string { return s.SDD.Name() }

// Next materializes the current group and runs SDD over it.
func (s *SDDSource) Next(ex *core.Explorer, cur query.Description, _ []*ratingmap.RatingMap,
	_ *ratingmap.SeenSet, o int) ([]query.Operation, error) {
	group, err := ex.Query.Materialize(cur)
	if err != nil {
		return nil, err
	}
	return s.SDD.Recommend(ex.DB, cur, group.Records, o)
}

// QagviewSource yields Qagview summary-cluster operations.
type QagviewSource struct {
	Qagview baselines.Qagview
}

// Name identifies the source.
func (s *QagviewSource) Name() string { return s.Qagview.Name() }

// Next materializes the current group and runs Qagview over it.
func (s *QagviewSource) Next(ex *core.Explorer, cur query.Description, _ []*ratingmap.RatingMap,
	_ *ratingmap.SeenSet, o int) ([]query.Operation, error) {
	group, err := ex.Query.Materialize(cur)
	if err != nil {
		return nil, err
	}
	return s.Qagview.Recommend(ex.DB, cur, group.Records, o)
}

// PathStep records one step of a generated Fully-Automated path.
type PathStep struct {
	Desc query.Description
	Maps []*ratingmap.RatingMap
}

// GeneratePath builds a Fully-Automated exploration path of pathLen steps,
// applying the source's top-1 operation after each step. Used by Table 4
// (one path per op source, then subjects score it) and by the parameter-
// tuning experiments that need fixed paths.
func GeneratePath(ex *core.Explorer, src OpSource, pathLen int) ([]PathStep, error) {
	seen := ratingmap.NewSeenSet()
	var cur query.Description
	var path []PathStep
	for step := 0; step < pathLen; step++ {
		res, err := ex.RMSet(cur, seen)
		if err != nil {
			return nil, err
		}
		for _, rm := range res.Maps {
			seen.Add(rm)
		}
		path = append(path, PathStep{Desc: cur, Maps: res.Maps})
		if step == pathLen-1 {
			break
		}
		ops, err := src.Next(ex, cur, res.Maps, seen, ex.Cfg.O)
		if err != nil {
			return nil, err
		}
		if len(ops) == 0 {
			break
		}
		cur = ops[0].Target
	}
	return path, nil
}

// ReplayPath walks a fixed path's descriptions under another explorer's
// configuration, recomputing the displayed rating maps at each step — the
// §5.2.3 methodology of fixing next-action operations while varying the
// map-selection policy.
func ReplayPath(ex *core.Explorer, fixed []PathStep) ([]PathStep, error) {
	seen := ratingmap.NewSeenSet()
	out := make([]PathStep, 0, len(fixed))
	for _, st := range fixed {
		res, err := ex.RMSet(st.Desc, seen)
		if err != nil {
			return nil, err
		}
		for _, rm := range res.Maps {
			seen.Add(rm)
		}
		out = append(out, PathStep{Desc: st.Desc, Maps: res.Maps})
	}
	return out, nil
}

// ScorePath has n subjects examine a fixed path and returns the average
// number of targets identified — the Table 4 and Table 6 measurement.
func ScorePath(ex *core.Explorer, det Detector, path []PathStep, n int, seed int64) float64 {
	total := 0.0
	for i := 0; i < n; i++ {
		subj := NewSubject(i, LowCS, LowDomain, seed)
		if i%2 == 1 {
			subj = NewSubject(i, HighCS, HighDomain, seed)
		}
		found := make(map[int]bool)
		for _, st := range path {
			for _, e := range det.Exposed(ex, st.Desc, st.Maps) {
				if found[e.Target] {
					continue
				}
				p := subj.NoticeProb()
				if !e.Exact {
					p *= subj.VerifyProb()
				}
				if subj.Rng.Float64() < p {
					found[e.Target] = true
				}
			}
		}
		total += float64(len(found))
	}
	return total / float64(n)
}
