package study

import (
	"fmt"
	"io"
	"math"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Runner executes one subject's exploration of a task and scores it.
type Runner struct {
	Ex       *core.Explorer
	Detector Detector
	// PathLen is the exploration length (Table 3: 7 for Scenario I, 10 for
	// Scenario II).
	PathLen int
	// Trace, when set, receives a line per step for debugging/observing
	// simulated sessions.
	Trace io.Writer
	// BreadthTask marks tasks whose targets live in broad selections
	// (Scenario II insight extraction): subjects prefer rolling up when
	// the selection narrows instead of drilling ever deeper.
	BreadthTask bool
}

// Outcome reports one run.
type Outcome struct {
	Identified int
	// StepsToFirst is the 1-based step of the first identification (0 when
	// nothing was found) — the Figure 8 recall curve uses per-step counts.
	StepsToFirst int
	// PerStepIdentified[i] is the cumulative identification count after
	// step i+1.
	PerStepIdentified []int
}

// Run explores for PathLen steps in the given mode and returns the outcome.
func (r *Runner) Run(subj *Subject, mode core.Mode) (*Outcome, error) {
	rb := core.RecommendationBuilder{Ex: r.Ex}
	seen := ratingmap.NewSeenSet()
	var cur query.Description
	found := make(map[int]bool)
	visited := map[string]bool{cur.Key(): true}
	out := &Outcome{}
	justFound := false
	sideAwareDet, _ := r.Detector.(SideAware)

	for step := 0; step < r.PathLen; step++ {
		res, err := r.Ex.RMSet(cur, seen)
		if err != nil {
			return nil, err
		}
		for _, rm := range res.Maps {
			seen.Add(rm)
		}

		// Perception: each exposed target is noticed independently. An
		// inexact exposure (an all-ones sliver of the true group) must also
		// survive the subject's generalize-and-recheck diligence.
		justFound = false
		for _, e := range r.Detector.Exposed(r.Ex, cur, res.Maps) {
			if found[e.Target] {
				continue
			}
			p := subj.NoticeProb()
			for v := 0; v < e.Slack; v++ {
				p *= subj.VerifyProb()
			}
			if subj.Rng.Float64() < p {
				found[e.Target] = true
				justFound = true
				if out.StepsToFirst == 0 {
					out.StepsToFirst = step + 1
				}
			}
		}
		out.PerStepIdentified = append(out.PerStepIdentified, len(found))
		if r.Trace != nil {
			fmt.Fprintf(r.Trace, "subj%d %s step%d: desc=%s found=%d\n",
				subj.ID, mode, step+1, cur, len(found))
		}
		if step == r.PathLen-1 {
			break
		}

		var recs []core.Recommendation
		if mode != core.UserDriven {
			recs, _, err = rb.Recommend(cur, res.Maps, seen, r.Ex.Cfg.O)
			if err != nil {
				return nil, err
			}
		}
		// The Scenario I task statement tells subjects to find one group
		// per side; once every unfound target shares a side, a rational
		// subject restricts the hunt to that side. Fully-Automated cannot.
		var needSide *query.Side
		if sideAwareDet != nil {
			needSide = remainingSide(sideAwareDet, r.Detector.NumTargets(), found)
		}
		next, err := r.chooseNext(subj, mode, cur, res, recs, justFound, visited, needSide)
		if err != nil {
			return nil, err
		}
		cur = next
		visited[cur.Key()] = true
	}
	out.Identified = len(found)
	return out, nil
}

// chooseNext applies the mode-specific policy. visited holds the
// descriptions already explored; self-directed subjects remember where they
// have been and avoid going back, and Recommendation-Powered subjects skip
// recommendations pointing at already-visited selections. Fully-Automated
// has no such memory — the system cannot know what the user considers done,
// which is exactly the inflexibility the paper reports.
func (r *Runner) chooseNext(subj *Subject, mode core.Mode, cur query.Description,
	res *core.StepResult, recs []core.Recommendation, justFound bool,
	visited map[string]bool, needSide *query.Side) (query.Description, error) {
	switch mode {
	case core.FullyAutomated:
		// No intervention: top-1 recommendation, or stay put.
		if len(recs) > 0 {
			return recs[0].Op.Target, nil
		}
		return cur, nil

	case core.RecommendationPowered:
		// After an identification, a rational subject starts over to
		// search elsewhere; the visited memory keeps the recommender from
		// dragging them back.
		if justFound {
			return query.Description{}, nil
		}
		// On breadth tasks, back out once the selection narrows: the
		// targets are facts about broad populations.
		if r.BreadthTask && cur.Len() >= 2 {
			if d, ok := r.rollUp(subj, cur); ok {
				return d, nil
			}
		}
		// Recommendation-Powered subjects can still act on their own
		// (§3.3): an obviously suspicious bar on display gets drilled with
		// the same instinct a User-Driven subject has — guidance adds to,
		// not replaces, the user's own judgement.
		if subj.Rng.Float64() < subj.SmartActionProb() {
			if d, ok := r.drillLowestBar(cur, res, needSide); ok && !visited[d.Key()] {
				return d, nil
			}
		}
		fresh := recs[:0:0]
		for _, rec := range recs {
			if visited[rec.Op.Target.Key()] {
				continue
			}
			if needSide != nil && rec.Op.Added != nil && rec.Op.Added.Side != *needSide {
				continue
			}
			fresh = append(fresh, rec)
		}
		if subj.Rng.Float64() < subj.FollowRecProb() && len(fresh) > 0 {
			// Prefer the recommendation pointing at the most suspicious
			// (lowest-average) displayed bar, else top-1.
			if d, ok := r.suspiciousRec(subj, fresh, res); ok {
				return d, nil
			}
			return fresh[0].Op.Target, nil
		}
		return r.selfDirected(subj, cur, res, visited, needSide)

	default: // UserDriven
		if justFound {
			return query.Description{}, nil
		}
		return r.selfDirected(subj, cur, res, visited, needSide)
	}
}

// suspiciousRec returns the recommendation whose added selector matches the
// lowest-average bar in the display, if the subject spots it.
func (r *Runner) suspiciousRec(subj *Subject, recs []core.Recommendation, res *core.StepResult) (query.Description, bool) {
	if subj.Rng.Float64() > subj.SmartActionProb()+0.3 {
		return query.Description{}, false
	}
	sel, ok := r.lowestBar(res)
	if !ok {
		return query.Description{}, false
	}
	for _, rec := range recs {
		if rec.Op.Added != nil && *rec.Op.Added == sel {
			return rec.Op.Target, true
		}
	}
	return query.Description{}, false
}

// lowestBar finds the minimum-average bar across the display.
func (r *Runner) lowestBar(res *core.StepResult) (query.Selector, bool) {
	bestAvg := 1e9
	var best query.Selector
	ok := false
	for _, rm := range res.Maps {
		dict := r.Ex.DictFor(rm)
		for i := range rm.Subgroups {
			sg := &rm.Subgroups[i]
			if sg.N < 3 {
				continue
			}
			label := dict.Value(sg.Value)
			if label == dataset.MissingLabel {
				continue
			}
			if avg := sg.AvgScore(); avg < bestAvg {
				bestAvg = avg
				best = query.Selector{Side: rm.Side, Attr: rm.Attr, Value: label}
				ok = true
			}
		}
	}
	return best, ok
}

// selfDirected models a user inventing their own operation: with the
// subject's smart-action probability, drill into the lowest-average bar on
// display; otherwise wander (random bar filter, or a roll-up). Moves into
// already-visited selections are avoided when an alternative exists.
func (r *Runner) selfDirected(subj *Subject, cur query.Description, res *core.StepResult,
	visited map[string]bool, needSide *query.Side) (query.Description, error) {
	if subj.Rng.Float64() < subj.SmartActionProb() {
		if d, ok := r.drillLowestBar(cur, res, needSide); ok && !visited[d.Key()] {
			return d, nil
		}
	}
	rollProb := 0.25
	if r.BreadthTask && cur.Len() >= 2 {
		rollProb = 0.7
	}
	// Wander: roll up with rollProb if possible; half the time type a random filter
	// (unguided users often work from the selection form, not the display);
	// else filter a random bar of a random displayed map.
	if cur.Len() > 0 && subj.Rng.Float64() < rollProb {
		if d, ok := r.rollUp(subj, cur); ok {
			return d, nil
		}
	}
	if subj.Rng.Float64() < 0.5 {
		if d, ok := r.randomFilter(subj, cur, needSide); ok {
			return d, nil
		}
	}
	if len(res.Maps) > 0 {
		rm := res.Maps[subj.Rng.Intn(len(res.Maps))]
		if (needSide == nil || rm.Side == *needSide) && len(rm.Subgroups) > 0 {
			sg := rm.Subgroups[subj.Rng.Intn(len(rm.Subgroups))]
			label := r.Ex.DictFor(rm).Value(sg.Value)
			if label != dataset.MissingLabel && !cur.BindsAttr(rm.Side, rm.Attr) {
				if d, err := cur.With(query.Selector{Side: rm.Side, Attr: rm.Attr, Value: label}); err == nil {
					return d, nil
				}
			}
		}
	}
	// Nothing on display helps (e.g. every shown map is on the wrong
	// side): type an own filter on a random unbound attribute, like a real
	// user falling back to the selection form.
	if d, ok := r.randomFilter(subj, cur, needSide); ok {
		return d, nil
	}
	return cur, nil
}

// randomFilter adds a random attribute-value selector, restricted to
// needSide when set.
func (r *Runner) randomFilter(subj *Subject, cur query.Description, needSide *query.Side) (query.Description, bool) {
	sides := []query.Side{query.ReviewerSide, query.ItemSide}
	if needSide != nil {
		sides = []query.Side{*needSide}
	}
	side := sides[subj.Rng.Intn(len(sides))]
	t := r.Ex.DB.Reviewers
	if side == query.ItemSide {
		t = r.Ex.DB.Items
	}
	for attempt := 0; attempt < 8; attempt++ {
		a := subj.Rng.Intn(t.Schema.Len())
		attr := t.Schema.At(a).Name
		if cur.BindsAttr(side, attr) {
			continue
		}
		values := t.Dict(a).Values()
		if len(values) == 0 {
			continue
		}
		v := values[subj.Rng.Intn(len(values))]
		if d, err := cur.With(query.Selector{Side: side, Attr: attr, Value: v}); err == nil {
			return d, true
		}
	}
	return query.Description{}, false
}

// drillLowestBar filters into the minimum-average bar across the display,
// restricted to needSide when set.
func (r *Runner) drillLowestBar(cur query.Description, res *core.StepResult, needSide *query.Side) (query.Description, bool) {
	bestAvg := 1e9
	var bestSel query.Selector
	ok := false
	for _, rm := range res.Maps {
		if cur.BindsAttr(rm.Side, rm.Attr) {
			continue
		}
		if needSide != nil && rm.Side != *needSide {
			continue
		}
		dict := r.Ex.DictFor(rm)
		for i := range rm.Subgroups {
			sg := &rm.Subgroups[i]
			if sg.N < 3 {
				continue
			}
			label := dict.Value(sg.Value)
			if label == dataset.MissingLabel {
				continue
			}
			if avg := sg.AvgScore(); avg < bestAvg {
				bestAvg = avg
				bestSel = query.Selector{Side: rm.Side, Attr: rm.Attr, Value: label}
				ok = true
			}
		}
	}
	if !ok {
		return query.Description{}, false
	}
	d, err := cur.With(bestSel)
	if err != nil {
		return query.Description{}, false
	}
	return d, true
}

// rollUp removes a random selector.
func (r *Runner) rollUp(subj *Subject, cur query.Description) (query.Description, bool) {
	sels := cur.Selectors()
	if len(sels) == 0 {
		return query.Description{}, false
	}
	d, err := cur.Without(sels[subj.Rng.Intn(len(sels))])
	if err != nil {
		return query.Description{}, false
	}
	return d, true
}

// SideAware detectors reveal which table side each target lives on; the
// Scenario I task statement ("find one reviewer group and one item group")
// makes this knowledge available to subjects.
type SideAware interface {
	TargetSide(i int) query.Side
}

// remainingSide returns the single side shared by all unfound targets, or
// nil when none remain or they span both sides.
func remainingSide(det SideAware, numTargets int, found map[int]bool) *query.Side {
	var side *query.Side
	for i := 0; i < numTargets; i++ {
		if found[i] {
			continue
		}
		s := det.TargetSide(i)
		if side == nil {
			side = &s
		} else if *side != s {
			return nil
		}
	}
	return side
}

// Cell aggregates a treatment group's results for one mode.
type Cell struct {
	Mode    core.Mode
	CS      CSLevel
	Domain  DomainLevel
	Results []float64
}

// Mean returns the cell's average identification count.
func (c *Cell) Mean() float64 {
	if len(c.Results) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range c.Results {
		sum += x
	}
	return sum / float64(len(c.Results))
}

// StdDev returns the cell's population standard deviation — the dispersion
// statistic the paper reports under Figure 7.
func (c *Cell) StdDev() float64 {
	if len(c.Results) < 2 {
		return 0
	}
	m := c.Mean()
	s := 0.0
	for _, x := range c.Results {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(c.Results)))
}

func (c *Cell) String() string {
	return fmt.Sprintf("%s/%s/%s: %.2f (n=%d)", c.Mode, c.CS, c.Domain, c.Mean(), len(c.Results))
}

// RunCell executes n subjects of one treatment in one mode.
func (r *Runner) RunCell(mode core.Mode, cs CSLevel, domain DomainLevel, n int, seed int64) (*Cell, error) {
	cell := &Cell{Mode: mode, CS: cs, Domain: domain}
	for i := 0; i < n; i++ {
		subj := NewSubject(i, cs, domain, seed)
		out, err := r.Run(subj, mode)
		if err != nil {
			return nil, err
		}
		cell.Results = append(cell.Results, float64(out.Identified))
	}
	return cell, nil
}
