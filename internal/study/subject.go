// Package study implements the reproduction's substitute for the paper's
// Amazon Mechanical Turk user study (§5.2): simulated subjects with CS
// expertise and domain knowledge treatment levels who explore a database in
// one of the three modes and try to (Scenario I) identify planted irregular
// groups or (Scenario II) extract planted insights.
//
// The model is deliberately simple and fully documented: a subject is a
// noisy rational agent. What it can *do* depends on the mode (User-Driven
// subjects must invent operations; Recommendation-Powered subjects choose
// among system recommendations or act on their own; Fully-Automated
// subjects only watch). What it *notices* in the displayed rating maps
// depends on expertise. The study therefore measures exactly what the
// paper's study measured: whether the information each mode surfaces is
// sufficient to complete the task — not whether humans are simulated
// faithfully.
package study

import "math/rand"

// CSLevel is the computer-science expertise treatment (§5.2.1
// pre-qualification).
type CSLevel int

const (
	// LowCS subjects explore less systematically and miss more signals.
	LowCS CSLevel = iota
	// HighCS subjects follow data-driven heuristics and miss fewer signals.
	HighCS
)

func (c CSLevel) String() string {
	if c == HighCS {
		return "High CS"
	}
	return "Low CS"
}

// DomainLevel is the domain-knowledge treatment. The paper finds results do
// not depend on it; the model reflects that with a negligible effect.
type DomainLevel int

const (
	// LowDomain subjects have little familiarity with the item domain.
	LowDomain DomainLevel = iota
	// HighDomain subjects know the domain well.
	HighDomain
)

func (d DomainLevel) String() string {
	if d == HighDomain {
		return "High Domain"
	}
	return "Low Domain"
}

// Subject is one simulated participant.
type Subject struct {
	ID     int
	CS     CSLevel
	Domain DomainLevel
	Rng    *rand.Rand
}

// NewSubject seeds a subject deterministically from its id and treatment.
func NewSubject(id int, cs CSLevel, domain DomainLevel, seed int64) *Subject {
	return &Subject{
		ID: id, CS: cs, Domain: domain,
		Rng: rand.New(rand.NewSource(seed + int64(id)*1009 + int64(cs)*31 + int64(domain)*7)),
	}
}

// NoticeProb is the probability the subject notices an identification
// signal present in the displayed maps. Expertise dominates; domain
// knowledge contributes a negligible bump, matching the paper's finding
// that results do not depend on it.
func (s *Subject) NoticeProb() float64 {
	p := 0.62
	if s.CS == HighCS {
		p = 0.85
	}
	if s.Domain == HighDomain {
		p += 0.02
	}
	return p
}

// SmartActionProb is the probability a self-directed action follows the
// data (drill into the most suspicious bar) rather than wandering. This is
// what CS expertise buys in User-Driven mode — and the paper's point is
// that even for experts it is not enough without recommendations.
func (s *Subject) SmartActionProb() float64 {
	if s.CS == HighCS {
		return 0.25
	}
	return 0.1
}

// VerifyProb is the probability the subject converts an inexact sighting
// (an all-ones subregion) into the exact group by generalizing the
// selection and re-checking — the diligence step CS training buys.
func (s *Subject) VerifyProb() float64 {
	if s.CS == HighCS {
		return 0.75
	}
	return 0.55
}

// FollowRecProb is the probability a Recommendation-Powered subject picks a
// system recommendation instead of acting on their own.
func (s *Subject) FollowRecProb() float64 {
	if s.CS == HighCS {
		return 0.85
	}
	return 0.95 // low-CS subjects lean on the system more
}
