package study

import (
	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Exposure reports that one ground-truth target is identifiable from a
// display. Exact exposures pin the target precisely; inexact ones pin a
// proper subregion (an all-ones sliver of an irregular group) from which a
// diligent subject reaches the exact target by generalize-and-recheck.
type Exposure struct {
	Target int
	Exact  bool
	// Slack counts the selector removals a subject must verify to reduce
	// an inexact sighting to the exact planted description (0 for exact
	// exposures). Each removal is one generalize-and-recheck round; deep
	// slivers are correspondingly less likely to be converted.
	Slack int
}

// Detector decides which ground-truth targets a step's display exposes.
// Exposure is a property of the information shown; whether the subject
// *notices* an exposed target is the subject's noise model.
type Detector interface {
	// NumTargets is the ground-truth count (2 irregular groups, 5 insights).
	NumTargets() int
	// Exposed returns the targets identifiable from this display.
	Exposed(ex *core.Explorer, desc query.Description, maps []*ratingmap.RatingMap) []Exposure
}

// IrregularDetector implements the Scenario I task: an irregular group is
// identifiable from a display when the current selection — possibly
// combined with one all-ones bar (average score ≈ 1) of a displayed map on
// the group's rating dimension — pinpoints exactly the planted entity set.
// Identification is extensional: a subject who reaches the planted
// reviewers through logically equivalent selectors (e.g. era=modern instead
// of decade=1990s when the two coincide) has found the group.
type IrregularDetector struct {
	Groups []gen.IrregularGroup
	// MinBarRecords is the minimum bar size to count as evidence
	// (default 3).
	MinBarRecords int
	// Epsilon is the tolerance above 1.0 for the bar average (default 0.1).
	Epsilon float64

	planted []*query.Bitset // lazily built per group
}

// NumTargets returns the number of planted groups.
func (d *IrregularDetector) NumTargets() int { return len(d.Groups) }

// TargetSide reports the table side of one planted group (SideAware).
func (d *IrregularDetector) TargetSide(i int) query.Side { return d.Groups[i].Side }

func (d *IrregularDetector) minBar() int {
	if d.MinBarRecords > 0 {
		return d.MinBarRecords
	}
	return 3
}

func (d *IrregularDetector) eps() float64 {
	if d.Epsilon > 0 {
		return d.Epsilon
	}
	return 0.1
}

// Exposed checks each planted group against the display.
func (d *IrregularDetector) Exposed(ex *core.Explorer, desc query.Description, maps []*ratingmap.RatingMap) []Exposure {
	var out []Exposure
	for gi := range d.Groups {
		if exposed, exact := d.groupExposed(ex, gi, desc, maps); exposed {
			slack := 0
			if !exact {
				slack = desc.Len() + 1 - len(d.Groups[gi].Selectors)
				if slack < 1 {
					slack = 1
				}
			}
			out = append(out, Exposure{Target: gi, Exact: exact, Slack: slack})
		}
	}
	return out
}

// plantedRows returns (cached) the entity bitset of planted group gi.
func (d *IrregularDetector) plantedRows(ex *core.Explorer, gi int) (*query.Bitset, error) {
	if d.planted == nil {
		d.planted = make([]*query.Bitset, len(d.Groups))
	}
	if d.planted[gi] == nil {
		b, err := ex.Query.EntityGroup(d.Groups[gi].Description(), d.Groups[gi].Side)
		if err != nil {
			return nil, err
		}
		d.planted[gi] = b
	}
	return d.planted[gi], nil
}

// groupExposed reports whether group gi is identifiable and whether the
// identification is exact. The selection's entities on the group's side —
// alone, or refined by one all-ones bar of a displayed map on the group's
// dimension and side — must form a nonempty subset of the planted set;
// equality makes the exposure exact.
func (d *IrregularDetector) groupExposed(ex *core.Explorer, gi int,
	desc query.Description, maps []*ratingmap.RatingMap) (exposed, exact bool) {
	g := d.Groups[gi]
	planted, err := d.plantedRows(ex, gi)
	if err != nil {
		return false, false
	}
	base, err := ex.Query.EntityGroup(desc, g.Side)
	if err != nil {
		return false, false
	}

	record := func(bits *query.Bitset) {
		n := bits.Count()
		if n < 1 {
			return
		}
		sub := bits.Clone()
		sub.IntersectWith(planted)
		if sub.Count() != n {
			return // not a subset of the planted entities
		}
		exposed = true
		if bits.Equal(planted) {
			exact = true
		}
	}

	// Fully pinned selection with the all-ones signature on screen.
	for _, rm := range maps {
		if rm.Dim != g.Dim || rm.TotalRecords < d.minBar() {
			continue
		}
		if rm.Distribution().Mean() <= 1+d.eps() {
			record(base)
			break
		}
	}

	// One bar away: an all-ones bar refining the selection.
	for _, rm := range maps {
		if exact {
			break
		}
		if rm.Dim != g.Dim || rm.Side != g.Side {
			continue
		}
		if desc.BindsAttr(rm.Side, rm.Attr) {
			continue
		}
		dict := ex.DictFor(rm)
		for i := range rm.Subgroups {
			sg := &rm.Subgroups[i]
			if sg.N < d.minBar() || sg.AvgScore() > 1+d.eps() {
				continue
			}
			label := dict.Value(sg.Value)
			if label == dataset.MissingLabel {
				continue
			}
			refined, err := desc.With(query.Selector{Side: rm.Side, Attr: rm.Attr, Value: label})
			if err != nil {
				continue
			}
			bits, err := ex.Query.EntityGroup(refined, g.Side)
			if err != nil {
				continue
			}
			record(bits)
			if exact {
				break
			}
		}
	}
	return exposed, exact
}

// InsightDetector implements the Scenario II task: an insight "value V has
// the extreme average on dimension D among the values of attribute A" is
// identifiable when a displayed map groups by A on D at a broad enough
// selection (at least 3 bars for context), and V's bar is the extreme one
// in the right direction.
type InsightDetector struct {
	Insights []gen.Insight
	// MinBarRecords is the minimum bar size (default 5).
	MinBarRecords int
}

// NumTargets returns the number of planted insights.
func (d *InsightDetector) NumTargets() int { return len(d.Insights) }

func (d *InsightDetector) minBar() int {
	if d.MinBarRecords > 0 {
		return d.MinBarRecords
	}
	return 5
}

// Exposed checks each planted insight against the display; insight
// exposures are always exact (the map bar is the insight).
func (d *InsightDetector) Exposed(ex *core.Explorer, desc query.Description, maps []*ratingmap.RatingMap) []Exposure {
	var out []Exposure
	for ii, in := range d.Insights {
		if d.insightExposed(ex, in, maps) {
			out = append(out, Exposure{Target: ii, Exact: true})
		}
	}
	return out
}

func (d *InsightDetector) insightExposed(ex *core.Explorer, in gen.Insight, maps []*ratingmap.RatingMap) bool {
	for _, rm := range maps {
		if rm.Dim != in.Dim || rm.Side != in.Side || rm.Attr != in.Attr {
			continue
		}
		dict := ex.DictFor(rm)
		var (
			targetAvg  float64
			haveTarget bool
			bars       int
			extreme    bool
		)
		// First pass: find the target bar.
		for i := range rm.Subgroups {
			sg := &rm.Subgroups[i]
			if sg.N < d.minBar() || dict.Value(sg.Value) == dataset.MissingLabel {
				continue
			}
			bars++
			if dict.Value(sg.Value) == in.Value {
				targetAvg = sg.AvgScore()
				haveTarget = true
			}
		}
		if !haveTarget || bars < 3 {
			continue
		}
		extreme = true
		for i := range rm.Subgroups {
			sg := &rm.Subgroups[i]
			if sg.N < d.minBar() || dict.Value(sg.Value) == in.Value ||
				dict.Value(sg.Value) == dataset.MissingLabel {
				continue
			}
			avg := sg.AvgScore()
			if in.Lowest && avg <= targetAvg {
				extreme = false
				break
			}
			if !in.Lowest && avg >= targetAvg {
				extreme = false
				break
			}
		}
		if extreme {
			return true
		}
	}
	return false
}
