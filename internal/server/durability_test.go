package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"subdex/internal/core"
	"subdex/internal/sessionstore"
)

// durableServer builds a server over an explicit store. Every call uses
// the same dataset and config (via testServerWith/lightConfig) — restart
// tests depend on the engine fingerprint matching across instances.
func durableServer(t *testing.T, store sessionstore.Store, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.Store = store
	return testServerWith(t, lightConfig(), opts)
}

// stepBody GETs a step and returns its decoded payload.
func stepBody(t *testing.T, ts *httptest.Server, id int, query string) (int, StepJSON) {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/sessions/%d/step%s", ts.URL, id, query))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sj StepJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&sj); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, sj
}

// summarySteps reads the session summary's step count.
func summarySteps(t *testing.T, ts *httptest.Server, id int) int {
	t.Helper()
	var sum map[string]any
	resp := getJSON(t, fmt.Sprintf("%s/sessions/%d/summary", ts.URL, id), &sum)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: %d", resp.StatusCode)
	}
	return int(sum["steps"].(float64))
}

// TestDurableLifecyclePersisted pins log-before-respond: every answered
// mutation is in the store by the time the response is read, and
// rejected requests are never logged.
func TestDurableLifecyclePersisted(t *testing.T) {
	store := sessionstore.NewMemStore()
	_, ts := durableServer(t, store, Options{})

	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))
	if snap, ok, _ := store.Get(id); !ok || len(snap.Ops) != 0 {
		t.Fatalf("create not persisted: ok=%t %+v", ok, snap)
	}

	if code, _ := stepBody(t, ts, id, ""); code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	applyURL := fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id)
	resp, _ := postJSON(t, applyURL, map[string]any{"predicate": "reviewers.gender = 'female'"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, applyURL, map[string]any{"back": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("back: %d", resp.StatusCode)
	}

	snap, ok, _ := store.Get(id)
	if !ok || len(snap.Ops) != 3 {
		t.Fatalf("persisted ops: ok=%t n=%d", ok, len(snap.Ops))
	}
	want := []core.OpKind{core.OpStep, core.OpApply, core.OpBack}
	for i, k := range want {
		if snap.Ops[i].Kind != k {
			t.Errorf("op %d kind = %s, want %s", i, snap.Ops[i].Kind, k)
		}
	}
	if len(snap.Ops[0].Digests) == 0 {
		t.Error("step op must carry map digests")
	}

	// A Back on empty history answers 409 and must NOT be logged.
	resp, _ = postJSON(t, applyURL, map[string]any{"back": true})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second back: %d, want 409", resp.StatusCode)
	}
	if snap, _, _ := store.Get(id); len(snap.Ops) != 3 {
		t.Errorf("rejected op was logged: %d ops", len(snap.Ops))
	}

	// DELETE persists too.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/sessions/%d", ts.URL, id), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if _, ok, _ := store.Get(id); ok {
		t.Error("delete not persisted")
	}
}

// TestRestartResume is the recovery contract over a real file-backed WAL:
// a second server over the same directory resumes the surviving session
// exactly, keeps a deleted session deleted, and never re-issues an id.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	store1, err := sessionstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := durableServer(t, store1, Options{})

	_, created := postJSON(t, ts1.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))
	if code, _ := stepBody(t, ts1, id, ""); code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	resp, _ := postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts1.URL, id),
		map[string]any{"recommendation": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply recommendation: %d", resp.StatusCode)
	}
	steps1 := summarySteps(t, ts1, id)
	// Leave a second, deleted session behind: it must stay deleted.
	_, created2 := postJSON(t, ts1.URL+"/sessions", map[string]string{"mode": "ud"})
	id2 := int(created2["id"].(float64))
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/sessions/%d", ts1.URL, id2), nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	ts1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := sessionstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	_, ts2 := durableServer(t, store2, Options{})
	text := metricsText(t, ts2)
	if !strings.Contains(text, "subdex_sessions_recovered_total 1") {
		t.Errorf("recovered counter:\n%s", grepMetric(text, "recovered"))
	}

	if got := summarySteps(t, ts2, id); got != steps1 {
		t.Errorf("resume lost steps: before %d, after %d", steps1, got)
	}
	// The recovered session keeps serving.
	if code, sj := stepBody(t, ts2, id, ""); code != http.StatusOK || len(sj.Maps) == 0 {
		t.Fatalf("step after restart: %d (%d maps)", code, len(sj.Maps))
	}
	if rcode, _ := stepBody(t, ts2, id2, ""); rcode != http.StatusNotFound {
		t.Errorf("deleted session answered %d after restart, want 404", rcode)
	}
	// New sessions never reuse an id, even the deleted high-water one.
	_, created3 := postJSON(t, ts2.URL+"/sessions", map[string]string{"mode": "ud"})
	if id3 := int(created3["id"].(float64)); id3 <= id2 {
		t.Errorf("id reuse after restart: got %d, had up to %d", id3, id2)
	}
}

// TestRestartResumeExactDigests pins byte-exact resume end to end: the
// maps a client sees for the same walk must be identical whether the
// server restarted mid-walk or not.
func TestRestartResumeExactDigests(t *testing.T) {
	// Control: an uninterrupted walk (step, recommend, step).
	_, control := durableServer(t, sessionstore.NewMemStore(), Options{})
	_, created := postJSON(t, control.URL+"/sessions", map[string]string{"mode": "rp"})
	cid := int(created["id"].(float64))
	if code, _ := stepBody(t, control, cid, ""); code != http.StatusOK {
		t.Fatalf("control step 1: %d", code)
	}
	resp, _ := postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", control.URL, cid),
		map[string]any{"recommendation": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("control apply: %d", resp.StatusCode)
	}
	code, want := stepBody(t, control, cid, "")
	if code != http.StatusOK || len(want.Maps) == 0 {
		t.Fatalf("control step 2: %d (%d maps)", code, len(want.Maps))
	}

	// Interrupted: the same walk, with a server restart between the
	// recommendation and the second step.
	dir := t.TempDir()
	store1, err := sessionstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, ts1 := durableServer(t, store1, Options{})
	_, created = postJSON(t, ts1.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))
	if code, _ := stepBody(t, ts1, id, ""); code != http.StatusOK {
		t.Fatalf("step 1: %d", code)
	}
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts1.URL, id),
		map[string]any{"recommendation": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: %d", resp.StatusCode)
	}
	ts1.Close()
	if err := store1.Close(); err != nil {
		t.Fatal(err)
	}

	store2, err := sessionstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { store2.Close() })
	_, ts2 := durableServer(t, store2, Options{})
	code, got := stepBody(t, ts2, id, "")
	if code != http.StatusOK {
		t.Fatalf("step after restart: %d", code)
	}
	if got.Selection != want.Selection {
		t.Fatalf("selection: want %q, got %q", want.Selection, got.Selection)
	}
	if len(got.Maps) != len(want.Maps) {
		t.Fatalf("maps: want %d, got %d", len(want.Maps), len(got.Maps))
	}
	for i := range want.Maps {
		if want.Maps[i].Digest != got.Maps[i].Digest {
			t.Errorf("map %d digest: want %s, got %s", i, want.Maps[i].Digest, got.Maps[i].Digest)
		}
	}
}

// TestShedRestoreTransparent covers the janitor's durable path: an idle
// session is shed to the store instead of destroyed, a later request
// restores it transparently, and the shared engine cache is neither
// flushed by the shed nor cold for the restore.
func TestShedRestoreTransparent(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var offset atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := sessionstore.NewMemStore()
	s, ts := durableServer(t, store, Options{
		SessionTTL:      time.Minute,
		JanitorInterval: time.Hour,
		Clock:           clock,
	})

	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))
	if code, _ := stepBody(t, ts, id, ""); code != http.StatusOK {
		t.Fatal("step")
	}
	warm := s.ex.EngineCacheStats()
	if warm.Entries == 0 {
		t.Fatal("setup: step must warm the shared cache")
	}

	offset.Store(int64(2 * time.Minute))
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	// Satellite contract: shedding a session must NOT flush the shared
	// TopMapsCache — its entries serve every other session.
	if st := s.ex.EngineCacheStats(); st.Entries != warm.Entries {
		t.Errorf("shed flushed the shared cache: %d entries, had %d", st.Entries, warm.Entries)
	}
	if snap, ok, _ := store.Get(id); !ok || snap.Final == nil {
		t.Fatalf("shed snapshot: ok=%t %+v", ok, snap)
	}

	// The next request transparently restores — and the replay must hit
	// the still-warm cache rather than recompute from scratch.
	hitsBefore := s.ex.EngineCacheStats().Hits
	if got := summarySteps(t, ts, id); got != 1 {
		t.Errorf("restored session lost its step: %d", got)
	}
	if hits := s.ex.EngineCacheStats().Hits; hits <= hitsBefore {
		t.Errorf("restore replay missed the warm cache: hits %d -> %d", hitsBefore, hits)
	}

	text := metricsText(t, ts)
	if !strings.Contains(text, "subdex_sessions_shed_total 1") {
		t.Errorf("shed counter:\n%s", grepMetric(text, "shed"))
	}
	if !strings.Contains(text, "subdex_sessions_restored_total 1") {
		t.Errorf("restored counter:\n%s", grepMetric(text, "restored"))
	}
	if !strings.Contains(text, "subdex_sessions_evicted_total 0") {
		t.Errorf("durable shed must not count as destruction:\n%s", grepMetric(text, "evicted"))
	}

	// A shed (not live) session is still deletable, straight from the store.
	offset.Store(int64(5 * time.Minute))
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("re-evict: %d, want 1", n)
	}
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/sessions/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete of shed session: %d", resp.StatusCode)
	}
	if code, _ := stepBody(t, ts, id, ""); code != http.StatusNotFound {
		t.Errorf("deleted shed session answered %d, want 404", code)
	}
}

// TestOpIDDedup pins idempotent retries: re-sending a committed op's id
// answers from state — the same display, no second execution, no second
// log record.
func TestOpIDDedup(t *testing.T) {
	store := sessionstore.NewMemStore()
	_, ts := durableServer(t, store, Options{})
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))

	code, first := stepBody(t, ts, id, "?opid=7-1")
	if code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	code, retry := stepBody(t, ts, id, "?opid=7-1")
	if code != http.StatusOK {
		t.Fatalf("retried step: %d", code)
	}
	if len(retry.Maps) != len(first.Maps) {
		t.Fatalf("retry maps: %d vs %d", len(retry.Maps), len(first.Maps))
	}
	for i := range first.Maps {
		if first.Maps[i].Digest != retry.Maps[i].Digest {
			t.Errorf("retry map %d digest diverges", i)
		}
	}
	if got := summarySteps(t, ts, id); got != 1 {
		t.Errorf("dedup executed a second step: %d", got)
	}
	if snap, _, _ := store.Get(id); len(snap.Ops) != 1 {
		t.Errorf("dedup logged a second op: %d", len(snap.Ops))
	}

	// Apply dedup: a retried Back must not pop history twice.
	applyURL := fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id)
	resp, _ := postJSON(t, applyURL, map[string]any{"predicate": "reviewers.gender = 'female'", "op_id": "7-2"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: %d", resp.StatusCode)
	}
	resp, out := postJSON(t, applyURL, map[string]any{"back": true, "op_id": "7-3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("back: %d (%v)", resp.StatusCode, out)
	}
	resp, out = postJSON(t, applyURL, map[string]any{"back": true, "op_id": "7-3"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retried back: %d (%v)", resp.StatusCode, out)
	}
	if out["selection"] != "TRUE" {
		t.Errorf("retried back moved again: %v", out)
	}
	if snap, _, _ := store.Get(id); len(snap.Ops) != 3 {
		t.Errorf("retried back logged again: %d ops, want 3", len(snap.Ops))
	}

	// A fresh opid after the dedup executes normally.
	if code, _ = stepBody(t, ts, id, "?opid=7-4"); code != http.StatusOK {
		t.Fatalf("fresh step: %d", code)
	}
	if got := summarySteps(t, ts, id); got != 2 {
		t.Errorf("fresh opid did not execute: %d", got)
	}
}

// TestStepRetryOpidOnNonStepOp pins the retry fast path's kind guard: a
// GET step whose opid tags the last committed *apply* — on a session
// with zero steps — must fall through to normal execution instead of
// indexing an empty step list. Before the guard this panicked with the
// entry lock held, wedging the session into 409s forever.
func TestStepRetryOpidOnNonStepOp(t *testing.T) {
	store := sessionstore.NewMemStore()
	_, ts := durableServer(t, store, Options{})
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))

	applyURL := fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id)
	resp, _ := postJSON(t, applyURL, map[string]any{"predicate": "reviewers.gender = 'female'", "op_id": "x-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply: %d", resp.StatusCode)
	}

	code, sj := stepBody(t, ts, id, "?opid=x-1")
	if code != http.StatusOK {
		t.Fatalf("step with the apply's opid: %d, want 200", code)
	}
	if len(sj.Maps) == 0 {
		t.Error("fall-through step returned no maps")
	}
	// The entry lock must have been released: the session keeps serving.
	if got := summarySteps(t, ts, id); got != 1 {
		t.Errorf("steps = %d, want 1", got)
	}
	if snap, _, _ := store.Get(id); len(snap.Ops) != 2 {
		t.Errorf("persisted ops = %d, want 2 (apply + executed step)", len(snap.Ops))
	}
}

// TestDeleteVsRestoreRace pins the delete/restore interlock: a DELETE
// that lands while another request is mid-restore (replaying the session
// through the engine, outside every server lock) must win. Before the
// tombstone + install-time store re-check, the restore re-installed the
// session after its store record was gone — DELETE answered 200 yet the
// session kept serving, leaked the live gauge, and 500ed on its next
// committed op.
func TestDeleteVsRestoreRace(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var offset atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	var arm atomic.Bool
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := lightConfig()
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		if arm.Load() {
			once.Do(func() { close(entered); <-release })
		}
	}
	s, ts := testServerWith(t, cfg, Options{
		Store:           sessionstore.NewMemStore(),
		SessionTTL:      time.Minute,
		JanitorInterval: time.Hour,
		Clock:           clock,
	})

	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))
	if code, _ := stepBody(t, ts, id, ""); code != http.StatusOK {
		t.Fatal("step")
	}
	offset.Store(int64(2 * time.Minute))
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	// Cold cache forces the restore replay through real engine phases,
	// where the armed hook can hold it mid-flight.
	s.ex.InvalidateEngineCache()
	arm.Store(true)

	restoreCode := make(chan int, 1)
	go func() {
		resp, err := http.Get(fmt.Sprintf("%s/sessions/%d/summary", ts.URL, id))
		if err != nil {
			t.Error(err)
			restoreCode <- 0
			return
		}
		resp.Body.Close()
		restoreCode <- resp.StatusCode
	}()
	<-entered // the restore is replaying, between its store read and its install

	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/sessions/%d", ts.URL, id), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE during restore: %d, want 200", resp.StatusCode)
	}
	close(release)

	if code := <-restoreCode; code != http.StatusNotFound {
		t.Errorf("restore that lost to DELETE answered %d, want 404", code)
	}
	if code, _ := stepBody(t, ts, id, ""); code != http.StatusNotFound {
		t.Errorf("deleted session answered %d, want 404", code)
	}
	text := metricsText(t, ts)
	if !strings.Contains(text, "subdex_sessions_in_flight 0") {
		t.Errorf("resurrected session leaked the live gauge:\n%s", grepMetric(text, "in_flight"))
	}
}

// staleShedStore fails every Shed with ErrStaleShed, simulating a
// janitor snapshot that lost the race against a concurrent
// restore-and-commit or DELETE.
type staleShedStore struct {
	sessionstore.Store
}

func (s *staleShedStore) Shed(id int, snap *core.SessionSnapshot) error {
	return fmt.Errorf("%w: injected", sessionstore.ErrStaleShed)
}

// TestJanitorStaleShedBenign pins EvictIdle's handling of a refused
// stale shed: it is the store protecting newer durable state, not a WAL
// failure — no failure counter, no shed counter, and the session (whose
// per-op records are all still in the store) remains restorable.
func TestJanitorStaleShedBenign(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var offset atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	s, ts := durableServer(t, &staleShedStore{Store: sessionstore.NewMemStore()}, Options{
		SessionTTL:      time.Minute,
		JanitorInterval: time.Hour,
		Clock:           clock,
	})

	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))
	if code, _ := stepBody(t, ts, id, ""); code != http.StatusOK {
		t.Fatal("step")
	}
	offset.Store(int64(2 * time.Minute))
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}

	text := metricsText(t, ts)
	if !strings.Contains(text, "subdex_wal_append_failures_total 0") {
		t.Errorf("stale shed counted as WAL failure:\n%s", grepMetric(text, "append_failures"))
	}
	if !strings.Contains(text, "subdex_sessions_shed_total 0") {
		t.Errorf("refused shed counted as shed:\n%s", grepMetric(text, "shed"))
	}
	// The log-before-respond records (create + step) are untouched, so
	// the session restores and keeps its history.
	if got := summarySteps(t, ts, id); got != 1 {
		t.Errorf("restored session lost its step: %d", got)
	}
}

// TestUnknownSessionChecksStore pins the 404 path: with a store
// configured, a genuinely unknown id still 404s on reads and deletes.
func TestUnknownSessionChecksStore(t *testing.T) {
	_, ts := durableServer(t, sessionstore.NewMemStore(), Options{})
	if code, _ := stepBody(t, ts, 999, ""); code != http.StatusNotFound {
		t.Errorf("unknown session: %d, want 404", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("delete unknown: %d, want 404", resp.StatusCode)
	}
}

// TestCreateRollbackOnStoreFailure pins the create path's failure
// atomicity: when the store cannot persist the creation, the client gets
// a 500 and no half-created session remains serving.
func TestCreateRollbackOnStoreFailure(t *testing.T) {
	store := sessionstore.NewMemStore()
	// Pre-seed an id the server will try to claim. Its placeholder
	// snapshot cannot restore (no fingerprint), so boot leaves it in the
	// store — and a create colliding with it fails to persist.
	if err := store.Create(1, &core.SessionSnapshot{Version: core.SnapshotVersion}); err != nil {
		t.Fatal(err)
	}
	s, ts := durableServer(t, store, Options{})
	s.mu.Lock()
	s.nextID = 1 // collide with the unrecoverable stored session
	s.mu.Unlock()

	resp, body := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("create with colliding id: %d %v", resp.StatusCode, body)
	}
	text := metricsText(t, ts)
	if !strings.Contains(text, "subdex_sessions_in_flight 0") {
		t.Errorf("rolled-back session still counted live:\n%s", grepMetric(text, "in_flight"))
	}
	if !strings.Contains(text, "subdex_wal_append_failures_total 1") {
		t.Errorf("append failure not counted:\n%s", grepMetric(text, "append_failures"))
	}
}

// TestDeleteVsInflightStep is the satellite race: DELETE while a step is
// computing must answer 409 immediately (never yank the session out from
// under the engine), and succeed once the step finishes. Run under -race
// in CI.
func TestDeleteVsInflightStep(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := lightConfig()
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	_, ts := testServerWith(t, cfg, Options{Store: sessionstore.NewMemStore()})

	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))
	sURL := fmt.Sprintf("%s/sessions/%d", ts.URL, id)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, err := http.Get(sURL + "/step")
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("held step: %d", resp.StatusCode)
		}
	}()
	<-entered

	req, _ := http.NewRequest(http.MethodDelete, sURL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("DELETE during step: %d, want 409", resp.StatusCode)
	}
	close(release)
	wg.Wait()

	resp, err = http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE after step: %d", resp.StatusCode)
	}
}

// TestDeleteStepHammer races steps, deletes, and an aggressive janitor
// over several sessions with no deterministic holds — pure -race fodder
// for the remove-vs-in-flight and shed-vs-request disciplines.
func TestDeleteStepHammer(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var offset atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	s, ts := durableServer(t, sessionstore.NewMemStore(), Options{
		SessionTTL:      time.Millisecond,
		JanitorInterval: time.Hour,
		Clock:           clock,
	})

	const users = 6
	stop := make(chan struct{})
	var sweeper sync.WaitGroup
	sweeper.Add(1)
	go func() { // the janitor, shedding everything idle on every pass
		defer sweeper.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			offset.Add(int64(time.Second))
			s.EvictIdle()
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
			id := int(created["id"].(float64))
			sURL := fmt.Sprintf("%s/sessions/%d", ts.URL, id)
			for i := 0; i < 6; i++ {
				resp, err := http.Get(sURL + "/step")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusConflict:
				default:
					t.Errorf("step: %d", resp.StatusCode)
				}
			}
			req, _ := http.NewRequest(http.MethodDelete, sURL, nil)
			for {
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode == http.StatusConflict {
					continue // in-flight somewhere; retry
				}
				if resp.StatusCode != http.StatusOK {
					t.Errorf("delete: %d", resp.StatusCode)
				}
				return
			}
		}()
	}
	wg.Wait()
	close(stop)
	sweeper.Wait()
}

// faultyGetStore fails every Get, simulating a store whose backing file
// went bad between requests.
type faultyGetStore struct {
	sessionstore.Store
}

func (s *faultyGetStore) Get(id int) (*core.SessionSnapshot, bool, error) {
	return nil, false, fmt.Errorf("injected read fault")
}

// TestDeleteStoreReadFaultIs500 pins the handleDelete fix walcheck
// surfaced: when the session is not in memory and the store read that
// decides between 404 and restore fails, the client must see a 500.
// Answering "no such session" on a store fault reports a durable record
// gone while its bytes — and the delete obligation — still exist.
func TestDeleteStoreReadFaultIs500(t *testing.T) {
	_, ts := durableServer(t, &faultyGetStore{Store: sessionstore.NewMemStore()}, Options{})
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/7", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("delete on a faulting store answered %d, want 500", resp.StatusCode)
	}
}

// blockingShedStore parks every Shed until released, so a test can hold
// the janitor mid-eviction at will.
type blockingShedStore struct {
	sessionstore.Store
	started chan struct{} // closed when the first Shed begins
	release chan struct{} // Shed returns once this closes
	once    sync.Once
}

func (s *blockingShedStore) Shed(id int, snap *core.SessionSnapshot) error {
	s.once.Do(func() { close(s.started) })
	<-s.release
	return s.Store.Shed(id, snap)
}

// TestCloseJoinsJanitor pins that Close waits for the janitor goroutine
// to exit. Before the join, Close only signalled the stop channel, so a
// caller tearing down the store right after Close could race a shed
// still in flight inside EvictIdle.
func TestCloseJoinsJanitor(t *testing.T) {
	base := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	var offset atomic.Int64
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }
	store := &blockingShedStore{
		Store:   sessionstore.NewMemStore(),
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	s, ts := durableServer(t, store, Options{
		SessionTTL:      time.Minute,
		JanitorInterval: time.Millisecond,
		Clock:           clock,
	})

	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	if _, ok := created["id"]; !ok {
		t.Fatal("create failed")
	}
	offset.Store(int64(2 * time.Minute)) // session is now idle-expired
	select {
	case <-store.started:
	case <-time.After(5 * time.Second):
		t.Fatal("janitor never started shedding")
	}

	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		t.Fatal("Close returned while the janitor was mid-shed")
	case <-time.After(50 * time.Millisecond):
	}
	close(store.release)
	select {
	case <-closed:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the shed finished")
	}
}
