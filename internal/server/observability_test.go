package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"subdex/internal/obs"
)

// stepURL builds a session's step endpoint.
func stepURL(ts *httptest.Server, id int, query string) string {
	return fmt.Sprintf("%s/sessions/%d/step%s", ts.URL, id, query)
}

// createSession posts a session and returns its id.
func createSession(t *testing.T, ts *httptest.Server, mode string) int {
	t.Helper()
	resp, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": mode})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, created)
	}
	return int(created["id"].(float64))
}

// getStep fetches one step with an optional traceparent header, returning
// the decoded payload and the response traceparent.
func getStep(t *testing.T, url, traceparent string) (*StepJSON, string, int) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var step StepJSON
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &step); err != nil {
			t.Fatalf("decode step: %v\n%s", err, body)
		}
	}
	return &step, resp.Header.Get("traceparent"), resp.StatusCode
}

// TestTraceparentMiddleware pins W3C trace-context propagation: an
// incoming traceparent's trace ID binds the request (response header,
// step payload); without one the server mints a valid ID; a malformed
// header falls back to minting rather than failing the request.
func TestTraceparentMiddleware(t *testing.T) {
	_, ts := testServerWith(t, lightConfig(), Options{})
	id := createSession(t, ts, "ud")

	tid := obs.DeriveTraceID(7, 7, 7)
	step, echoed, code := getStep(t, stepURL(ts, id, ""), obs.Traceparent(tid, string(obs.NewSpanID())))
	if code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	if step.TraceID != string(tid) {
		t.Fatalf("step trace_id %q, want %q", step.TraceID, tid)
	}
	if got, _, ok := obs.ParseTraceparent(echoed); !ok || got != tid {
		t.Fatalf("response traceparent %q does not carry trace %s", echoed, tid)
	}

	// No header: the server mints and reports a valid ID.
	step, echoed, code = getStep(t, stepURL(ts, id, ""), "")
	if code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	if !obs.TraceID(step.TraceID).Valid() {
		t.Fatalf("minted trace_id %q invalid", step.TraceID)
	}
	if got, _, ok := obs.ParseTraceparent(echoed); !ok || string(got) != step.TraceID {
		t.Fatalf("response traceparent %q does not match minted trace %s", echoed, step.TraceID)
	}

	// Malformed header: minted, never echoed back verbatim.
	step, _, code = getStep(t, stepURL(ts, id, ""), "00-zzz-1-01")
	if code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	if !obs.TraceID(step.TraceID).Valid() {
		t.Fatalf("trace_id %q after malformed header", step.TraceID)
	}
}

// TestExplainQuery pins the per-step EXPLAIN contract: no profile
// without ?explain=1, and a populated one — including the cache-hit
// shape on a revisited selection — with it.
func TestExplainQuery(t *testing.T) {
	cfg := lightConfig()
	// Exact scan on miss makes the step's accumulator cacheable, so the
	// second step at the same selection is a deterministic cache hit.
	cfg.Engine.ExactOnCacheMiss = true
	_, ts := testServerWith(t, cfg, Options{})
	id := createSession(t, ts, "ud")

	step, _, code := getStep(t, stepURL(ts, id, "?explain=1"), "")
	if code != http.StatusOK {
		t.Fatalf("explain step: %d", code)
	}
	p := step.Profile
	if p == nil || p.Engine == nil {
		t.Fatalf("explain=1 must populate the profile, got %+v", p)
	}
	if p.TraceID != step.TraceID {
		t.Fatalf("profile trace %q != step trace %q", p.TraceID, step.TraceID)
	}
	if p.Engine.Cache != "miss" {
		t.Fatalf("first step cache %q, want miss", p.Engine.Cache)
	}
	if p.Engine.RecordsScanned == 0 || p.GroupSize == 0 || p.GenMS <= 0 {
		t.Fatalf("first-step profile not populated: %+v", p.Engine)
	}

	step, _, code = getStep(t, stepURL(ts, id, "?explain=1"), "")
	if code != http.StatusOK {
		t.Fatalf("second explain step: %d", code)
	}
	p = step.Profile
	if p == nil || p.Engine == nil || p.Engine.Cache != "hit" {
		t.Fatalf("revisited selection must profile as cache hit, got %+v", p)
	}
	if p.Engine.RecordsScanned != 0 {
		t.Fatalf("cache hit scanned %d records, want 0", p.Engine.RecordsScanned)
	}
	if p.RecordsProcessed == 0 {
		t.Fatal("cache hit must still report the records the result represents")
	}

	// Without ?explain=1 the payload stays profile-free.
	step, _, code = getStep(t, stepURL(ts, id, ""), "")
	if code != http.StatusOK {
		t.Fatalf("step: %d", code)
	}
	if step.Profile != nil {
		t.Fatal("profile returned without ?explain=1")
	}
}

// TestExplainDegradedStep pins the degraded EXPLAIN shape: a step cut by
// the deadline reports degraded=true with a non-empty reason.
func TestExplainDegradedStep(t *testing.T) {
	cfg := lightConfig()
	cfg.StepTimeout = 50 * time.Millisecond
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		if phase > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Second): // bounds the test on regression
			}
		}
	}
	_, ts := testServerWith(t, cfg, Options{})
	id := createSession(t, ts, "ud")

	step, _, code := getStep(t, stepURL(ts, id, "?explain=1"), "")
	if code != http.StatusOK {
		t.Fatalf("step: %d (first phase should finish inside 50ms)", code)
	}
	if !step.Degraded {
		t.Fatal("stalled step must degrade")
	}
	p := step.Profile
	if p == nil || !p.Degraded {
		t.Fatalf("degraded step must profile as degraded, got %+v", p)
	}
	if p.DegradedReason == "" {
		t.Fatal("degraded profile must carry a reason")
	}
	if p.Engine == nil || p.Engine.DegradedReason != p.DegradedReason {
		t.Fatalf("engine reason mismatch: %+v", p)
	}
}

// TestDebugSpansFilters pins the ?trace= and ?limit= filters and the
// 400 contract on a malformed limit.
func TestDebugSpansFilters(t *testing.T) {
	_, ts := testServerWith(t, lightConfig(), Options{})
	id := createSession(t, ts, "ud")

	tids := make([]obs.TraceID, 3)
	for i := range tids {
		tids[i] = obs.DeriveTraceID(9, uint64(i), 1)
		if _, _, code := getStep(t, stepURL(ts, id, ""), obs.Traceparent(tids[i], string(obs.NewSpanID()))); code != http.StatusOK {
			t.Fatalf("step %d: %d", i, code)
		}
	}

	// Limit first: the ring has not yet seen any /debug request (a request
	// span is collected only when it finishes), so the newest roots are
	// the steps, newest first.
	var out struct {
		Spans []*obs.SpanData `json:"spans"`
	}
	resp := getJSON(t, ts.URL+"/debug/spans?limit=2", &out)
	if resp.StatusCode != http.StatusOK || len(out.Spans) != 2 {
		t.Fatalf("limit filter: %d, %d spans (want 2)", resp.StatusCode, len(out.Spans))
	}
	if out.Spans[0].TraceID != tids[2] || out.Spans[1].TraceID != tids[1] {
		t.Fatalf("limit filter order: got %s,%s first, want %s,%s",
			out.Spans[0].TraceID, out.Spans[1].TraceID, tids[2], tids[1])
	}

	out.Spans = nil
	resp = getJSON(t, ts.URL+"/debug/spans?trace="+string(tids[1]), &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace filter: %d", resp.StatusCode)
	}
	if len(out.Spans) != 1 || out.Spans[0].TraceID != tids[1] {
		t.Fatalf("trace filter returned %+v, want exactly the trace-%s root", out.Spans, tids[1])
	}

	for _, bad := range []string{"?limit=-1", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/debug/spans" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: %d, want 400", bad, resp.StatusCode)
		}
	}
}

// TestFlightRecorderEndpointAndDegradedDump drives repeated degraded
// steps against a dump-enabled server: the live ring serves every wide
// event (filterable by trace), but the trigger rate limit admits exactly
// one dump — no profile-dump storms — and the counters account for the
// suppressed rest.
func TestFlightRecorderEndpointAndDegradedDump(t *testing.T) {
	dir := t.TempDir()
	cfg := lightConfig()
	cfg.StepTimeout = 50 * time.Millisecond
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		if phase > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Second):
			}
		}
	}
	_, ts := testServerWith(t, cfg, Options{FlightDir: dir, FlightMinInterval: time.Hour})
	id := createSession(t, ts, "ud")

	const steps = 4
	tids := make([]obs.TraceID, steps)
	for i := range tids {
		tids[i] = obs.DeriveTraceID(13, uint64(i), 1)
		step, _, code := getStep(t, stepURL(ts, id, ""), obs.Traceparent(tids[i], string(obs.NewSpanID())))
		if code != http.StatusOK || !step.Degraded {
			t.Fatalf("step %d: code %d degraded %v", i, code, step.Degraded)
		}
	}

	// Live ring: every step is there; the trace filter isolates one.
	var out struct {
		Events       []map[string]any `json:"events"`
		Dumps        int              `json:"dumps"`
		Suppressed   int              `json:"suppressed"`
		DumpsEnabled bool             `json:"dumps_enabled"`
	}
	resp := getJSON(t, ts.URL+"/debug/flightrecorder", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("flightrecorder: %d", resp.StatusCode)
	}
	if len(out.Events) != steps || !out.DumpsEnabled {
		t.Fatalf("ring holds %d events (want %d), enabled=%v", len(out.Events), steps, out.DumpsEnabled)
	}
	if out.Dumps != 1 || out.Suppressed != steps-1 {
		t.Fatalf("dumps=%d suppressed=%d, want 1 and %d", out.Dumps, out.Suppressed, steps-1)
	}
	out.Events = nil
	getJSON(t, ts.URL+"/debug/flightrecorder?trace="+string(tids[2]), &out)
	if len(out.Events) != 1 {
		t.Fatalf("trace filter returned %d events, want 1", len(out.Events))
	}
	ev := out.Events[0]
	if ev["trace_id"] != string(tids[2]) || ev["degraded"] != true || ev["op"] != "step" {
		t.Fatalf("wide event shape: %+v", ev)
	}

	// Exactly one dump on disk despite four degraded steps.
	dumps, err := filepath.Glob(filepath.Join(dir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(dumps) != 1 {
		t.Fatalf("dump storm: %v, want exactly one dump", dumps)
	}
	if !strings.Contains(filepath.Base(dumps[0]), "degraded_step") {
		t.Fatalf("dump %q not named for its trigger reason", dumps[0])
	}

	text := metricsText(t, ts)
	for _, want := range []string{
		"subdex_flight_dumps_total 1",
		fmt.Sprintf("subdex_flight_dumps_suppressed_total %d", steps-1),
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestBuildInfo pins satellite discoverability: the subdex_build_info
// gauge (value 1, version/commit/go_version labels) and the same fields
// echoed in /healthz.
func TestBuildInfo(t *testing.T) {
	_, ts := testServerWith(t, lightConfig(), Options{})

	var hz map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &hz)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	for _, key := range []string{"version", "commit", "go_version"} {
		if hz[key] == "" {
			t.Errorf("healthz missing %q: %v", key, hz)
		}
	}
	if !strings.HasPrefix(hz["go_version"], "go") {
		t.Errorf("go_version %q does not name a Go release", hz["go_version"])
	}

	text := metricsText(t, ts)
	idx := strings.Index(text, "subdex_build_info{")
	if idx < 0 {
		t.Fatalf("metrics missing subdex_build_info gauge:\n%s", text)
	}
	line := text[idx:]
	if nl := strings.IndexByte(line, '\n'); nl >= 0 {
		line = line[:nl]
	}
	for _, want := range []string{
		`version="` + hz["version"] + `"`,
		`commit="` + hz["commit"] + `"`,
		`go_version="` + hz["go_version"] + `"`,
	} {
		if !strings.Contains(line, want) {
			t.Errorf("build_info line %q missing %q", line, want)
		}
	}
	if !strings.HasSuffix(line, " 1") {
		t.Errorf("build_info gauge must read 1: %q", line)
	}
}
