package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"subdex/internal/core"
	"subdex/internal/gen"
)

// testServerWith builds a server with explicit core config and session
// options, returning both the Server (for direct janitor/metrics access)
// and its httptest wrapper.
func testServerWith(t *testing.T, cfg core.Config, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	db, err := gen.Yelp(gen.Config{Seed: 2, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewWithOptions(db, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// lightConfig keeps steps cheap for handler-level tests.
func lightConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.RecSampleSize = 300
	cfg.Limits.MaxCandidates = 20
	return cfg
}

func metricsText(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestConcurrentStepApplyConflict hammers one session with concurrent
// step and apply requests while the first step is deterministically held
// inside the engine (via the PhaseHook fault-injection seam): exactly one
// request must win the per-session lock (200), every other one must be
// rejected immediately with 409 instead of queueing behind the compute.
// Run under -race this also proves step state is never accessed
// concurrently.
func TestConcurrentStepApplyConflict(t *testing.T) {
	const concurrent = 8 // requests issued while the winner is mid-step

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := lightConfig()
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		once.Do(func() {
			close(entered)
			<-release
		})
	}
	_, ts := testServerWith(t, cfg, Options{})

	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))
	stepURL := fmt.Sprintf("%s/sessions/%d/step", ts.URL, id)
	applyURL := fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id)

	var ok200, busy409, other atomic.Int64
	count := func(code int) {
		switch code {
		case http.StatusOK:
			ok200.Add(1)
		case http.StatusConflict:
			busy409.Add(1)
		default:
			other.Add(1)
		}
	}

	// The winner: blocks inside the engine until released.
	var wgWinner sync.WaitGroup
	wgWinner.Add(1)
	go func() {
		defer wgWinner.Done()
		resp, err := http.Get(stepURL)
		if err != nil {
			t.Error(err)
			return
		}
		resp.Body.Close()
		count(resp.StatusCode)
	}()
	<-entered // the winner now holds the session lock inside the engine

	var wg sync.WaitGroup
	for i := 0; i < concurrent; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var resp *http.Response
			var err error
			if i%2 == 0 {
				resp, err = http.Get(stepURL)
			} else {
				resp, err = http.Post(applyURL, "application/json",
					strings.NewReader(`{"predicate":"reviewers.gender = 'female'"}`))
			}
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			count(resp.StatusCode)
		}(i)
	}
	wg.Wait()
	close(release)
	wgWinner.Wait()

	if got := ok200.Load(); got != 1 {
		t.Errorf("200s = %d, want exactly 1", got)
	}
	if got := busy409.Load(); got != concurrent {
		t.Errorf("409s = %d, want %d", got, concurrent)
	}
	if got := other.Load(); got != 0 {
		t.Errorf("unexpected statuses: %d", got)
	}
	if text := metricsText(t, ts); !strings.Contains(text,
		fmt.Sprintf("subdex_session_busy_rejections_total %d", concurrent)) {
		t.Errorf("busy-rejection counter missing/wrong:\n%s", grepMetric(text, "busy"))
	}
}

// TestStepDeadlineAnytime is the acceptance scenario: with a 1ms step
// deadline against a generated yelp dataset (phase 1 deterministically
// stalled until the deadline via the PhaseHook seam), a step answers 200
// with "degraded": true — or 504 if the deadline beat even the first
// phase — while a concurrent /healthz and a step on a *different* session
// complete in well under 50ms each, proving no global lock is held across
// the computation.
func TestStepDeadlineAnytime(t *testing.T) {
	cfg := lightConfig()
	cfg.StepTimeout = time.Millisecond
	cfg.Engine.MinPhaseRecords = 1
	cfg.Engine.PhaseHook = func(ctx context.Context, phase int) {
		if phase > 0 {
			select {
			case <-ctx.Done():
			case <-time.After(5 * time.Second): // bounds the test on regression
			}
		}
	}
	_, ts := testServerWith(t, cfg, Options{})

	_, createdA := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	idA := int(createdA["id"].(float64))
	_, createdB := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	idB := int(createdB["id"].(float64))

	type outcome struct {
		code    int
		elapsed time.Duration
		body    []byte
	}
	run := func(url string) outcome {
		start := time.Now()
		resp, err := http.Get(url)
		if err != nil {
			t.Error(err)
			return outcome{}
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return outcome{code: resp.StatusCode, elapsed: time.Since(start), body: body}
	}

	var wg sync.WaitGroup
	var stepA, health, stepB outcome
	wg.Add(3)
	go func() { defer wg.Done(); stepA = run(fmt.Sprintf("%s/sessions/%d/step", ts.URL, idA)) }()
	go func() { defer wg.Done(); health = run(ts.URL + "/healthz") }()
	go func() { defer wg.Done(); stepB = run(fmt.Sprintf("%s/sessions/%d/step", ts.URL, idB)) }()
	wg.Wait()

	checkStep := func(name string, o outcome) {
		t.Helper()
		switch o.code {
		case http.StatusOK:
			var step StepJSON
			if err := json.Unmarshal(o.body, &step); err != nil {
				t.Fatalf("%s: bad body: %v", name, err)
			}
			if !step.Degraded {
				t.Errorf("%s: 200 under a 1ms deadline must be degraded: %s", name, o.body)
			}
			if step.RecordsProcessed <= 0 {
				t.Errorf("%s: degraded step must report its scanned prefix", name)
			}
		case http.StatusGatewayTimeout:
			// Deadline beat the first phase boundary: allowed.
		default:
			t.Errorf("%s: status %d, want 200 (degraded) or 504", name, o.code)
		}
	}
	checkStep("step A", stepA)
	checkStep("step B", stepB)
	if health.code != http.StatusOK {
		t.Errorf("healthz: %d", health.code)
	}
	if health.elapsed >= 50*time.Millisecond {
		t.Errorf("healthz took %v, want <50ms (global lock held across compute?)", health.elapsed)
	}
	if stepB.elapsed >= 50*time.Millisecond {
		t.Errorf("other-session step took %v, want <50ms", stepB.elapsed)
	}
}

// TestJanitorEvictionFakeClock drives the idle-TTL janitor with a fake
// clock: only sessions idle past the TTL are evicted, touching a session
// refreshes it, and the gauges/counters follow.
func TestJanitorEvictionFakeClock(t *testing.T) {
	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	var offset atomic.Int64 // nanoseconds past base
	clock := func() time.Time { return base.Add(time.Duration(offset.Load())) }

	s, ts := testServerWith(t, lightConfig(), Options{
		SessionTTL:      time.Minute,
		JanitorInterval: time.Hour, // keep the background sweep out of the way
		Clock:           clock,
	})

	_, c1 := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id1 := int(c1["id"].(float64))
	_, c2 := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id2 := int(c2["id"].(float64))

	// 30s in: touch session 2 only.
	offset.Store(int64(30 * time.Second))
	var sum map[string]any
	if resp := getJSON(t, fmt.Sprintf("%s/sessions/%d/summary", ts.URL, id2), &sum); resp.StatusCode != http.StatusOK {
		t.Fatalf("touch session 2: %d", resp.StatusCode)
	}

	// 61s in: session 1 is 61s idle (> TTL), session 2 only 31s.
	offset.Store(int64(61 * time.Second))
	if n := s.EvictIdle(); n != 1 {
		t.Fatalf("evicted %d sessions, want 1", n)
	}
	resp, err := http.Get(fmt.Sprintf("%s/sessions/%d/step", ts.URL, id1))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted session answered %d, want 404", resp.StatusCode)
	}
	if resp := getJSON(t, fmt.Sprintf("%s/sessions/%d/summary", ts.URL, id2), &sum); resp.StatusCode != http.StatusOK {
		t.Errorf("surviving session answered %d", resp.StatusCode)
	}

	text := metricsText(t, ts)
	if !strings.Contains(text, "subdex_sessions_evicted_total 1") {
		t.Errorf("eviction counter:\n%s", grepMetric(text, "evicted"))
	}
	if !strings.Contains(text, "subdex_sessions_in_flight 1") {
		t.Errorf("in-flight gauge:\n%s", grepMetric(text, "in_flight"))
	}
}

// TestAdmissionControl covers the -max-sessions cap: the breach answers
// 429 with a Retry-After hint, deleting a session frees capacity, and
// rejections are counted.
func TestAdmissionControl(t *testing.T) {
	_, ts := testServerWith(t, lightConfig(), Options{MaxSessions: 2})

	for i := 0; i < 2; i++ {
		if resp, body := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"}); resp.StatusCode != http.StatusCreated {
			t.Fatalf("create %d: %d %v", i, resp.StatusCode, body)
		}
	}
	resp, body := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("create over cap: %d %v", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 must carry Retry-After")
	}
	if !strings.Contains(body["error"].(string), "session limit") {
		t.Errorf("unhelpful 429 body: %v", body)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sessions/1", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", dresp.StatusCode)
	}
	if resp, body := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("create after delete: %d %v", resp.StatusCode, body)
	}

	if text := metricsText(t, ts); !strings.Contains(text, "subdex_admission_rejected_total 1") {
		t.Errorf("admission counter:\n%s", grepMetric(text, "admission"))
	}
}

// TestJSONHardening covers the request-body contract: 413 past 64 KiB,
// a targeted 400 on unknown fields, and the explicit-zero recommendation
// fix (pointer semantics).
func TestJSONHardening(t *testing.T) {
	_, ts := testServerWith(t, lightConfig(), Options{})

	// Unknown field: targeted 400.
	resp, body := postJSON(t, ts.URL+"/sessions", map[string]any{"mode": "ud", "bogus": 1})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body["error"].(string), "unknown field") {
		t.Errorf("unknown field: %d %v", resp.StatusCode, body)
	}

	// Oversize body: 413.
	big := map[string]string{"mode": "ud", "predicate": strings.Repeat("x", 80<<10)}
	buf, _ := json.Marshal(big)
	oresp, err := http.Post(ts.URL+"/sessions", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	oresp.Body.Close()
	if oresp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversize body: %d, want 413", oresp.StatusCode)
	}

	// Explicit {"recommendation": 0} gets the targeted message, not the
	// generic "one of ..." default.
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))
	for _, n := range []int{0, -3} {
		resp, body := postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id),
			map[string]any{"recommendation": n})
		if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body["error"].(string), "recommendation must be") {
			t.Errorf("recommendation %d: %d %v", n, resp.StatusCode, body)
		}
	}
	// Absent recommendation still yields the generic error.
	resp, body = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{})
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(body["error"].(string), "one of") {
		t.Errorf("empty apply: %d %v", resp.StatusCode, body)
	}
}

// grepMetric extracts matching lines for readable failures.
func grepMetric(text, substr string) string {
	var out []string
	for _, line := range strings.Split(text, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
