// Package server exposes the SDE engine over HTTP with JSON payloads — the
// role the paper's web UI backend plays (Figure 4: the UI talks to the SDE
// Engine, which drives the RM-Set Generator and Recommendation Builder).
// A thin REST surface manages exploration sessions:
//
//	POST /sessions                {"mode":"rp"}             -> {"id":...}
//	GET  /sessions/{id}/step                                -> the step display
//	POST /sessions/{id}/apply     {"predicate":"..."}        -> move the session
//	POST /sessions/{id}/apply     {"recommendation":1}       -> follow rec #1
//	POST /sessions/{id}/apply     {"back":true}              -> previous selection
//	GET  /sessions/{id}/summary                              -> path summary
//	GET  /sessions/{id}/maps/{n}/vega                        -> Vega-Lite spec of map n
//	GET  /healthz
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Server owns an explorer and its live sessions.
type Server struct {
	ex *core.Explorer

	mu       sync.Mutex
	sessions map[int]*core.Session
	nextID   int
}

// New builds a server over a frozen database.
func New(db *dataset.DB, cfg core.Config) (*Server, error) {
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		return nil, err
	}
	return &Server{ex: ex, sessions: make(map[int]*core.Session), nextID: 1}, nil
}

// Handler returns the HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok", "database": s.ex.DB.Name})
	})
	mux.HandleFunc("/sessions", s.handleCreateSession)
	mux.HandleFunc("/sessions/", s.handleSession)
	return mux
}

// createSessionRequest selects the exploration mode.
type createSessionRequest struct {
	Mode string `json:"mode"` // "ud" | "rp" | "fa"
	// Predicate optionally starts the session at a selection.
	Predicate string `json:"predicate"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req createSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	var mode core.Mode
	switch strings.ToLower(req.Mode) {
	case "", "rp":
		mode = core.RecommendationPowered
	case "ud":
		mode = core.UserDriven
	case "fa":
		mode = core.FullyAutomated
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q", req.Mode))
		return
	}
	start := query.Description{}
	if req.Predicate != "" {
		d, err := s.ex.ParseDescription(req.Predicate)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		start = d
	}
	sess, err := core.NewSession(s.ex, mode, start)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.sessions[id] = sess
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "mode": mode.String()})
}

func (s *Server) session(id int) (*core.Session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad session id")
		return
	}
	sess, ok := s.session(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	action := ""
	if len(parts) > 1 {
		action = parts[1]
	}
	switch {
	case action == "step" && r.Method == http.MethodGet:
		s.handleStep(w, sess)
	case action == "apply" && r.Method == http.MethodPost:
		s.handleApply(w, r, sess)
	case action == "summary" && r.Method == http.MethodGet:
		writeJSON(w, http.StatusOK, summaryJSON(sess.Summarize()))
	case action == "maps" && len(parts) == 4 && parts[3] == "vega" && r.Method == http.MethodGet:
		s.handleVega(w, sess, parts[2])
	default:
		writeError(w, http.StatusNotFound, "unknown action "+action)
	}
}

// handleVega serves the Vega-Lite specification of one displayed map of the
// session's latest step (1-based index).
func (s *Server) handleVega(w http.ResponseWriter, sess *core.Session, idx string) {
	n, err := strconv.Atoi(idx)
	if err != nil || n < 1 {
		writeError(w, http.StatusBadRequest, "bad map index")
		return
	}
	s.mu.Lock()
	steps := sess.Steps()
	s.mu.Unlock()
	if len(steps) == 0 {
		writeError(w, http.StatusConflict, "no step executed yet")
		return
	}
	last := steps[len(steps)-1]
	if n > len(last.Maps) {
		writeError(w, http.StatusNotFound, "map index out of range")
		return
	}
	rm := last.Maps[n-1]
	spec, err := rm.VegaLiteSpec(s.ex.DictFor(rm))
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(spec)
}

func (s *Server) handleStep(w http.ResponseWriter, sess *core.Session) {
	// One session is single-threaded: the paper's UI issues one step at a
	// time; serialize defensively.
	s.mu.Lock()
	step, err := sess.Step()
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, s.stepJSON(sess, step))
}

// applyRequest moves a session: exactly one of the fields is used.
type applyRequest struct {
	Predicate      string `json:"predicate,omitempty"`
	Recommendation int    `json:"recommendation,omitempty"` // 1-based
	Back           bool   `json:"back,omitempty"`
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request, sess *core.Session) {
	var req applyRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case req.Back:
		if !sess.Back() {
			writeError(w, http.StatusConflict, "history empty")
			return
		}
	case req.Recommendation > 0:
		if err := sess.ApplyRecommendation(req.Recommendation - 1); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	case req.Predicate != "":
		d, err := s.ex.ParseDescription(req.Predicate)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		if err := sess.ApplyDescription(d); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "one of predicate, recommendation, back required")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"selection": sess.Current().String()})
}

// JSON shapes ------------------------------------------------------------

// StepJSON is the display payload of one exploration step.
type StepJSON struct {
	Selection       string               `json:"selection"`
	GroupSize       int                  `json:"group_size"`
	Reviewers       int                  `json:"reviewers"`
	Items           int                  `json:"items"`
	Maps            []MapJSON            `json:"maps"`
	Recommendations []RecommendationJSON `json:"recommendations,omitempty"`
	GenMillis       float64              `json:"generation_ms"`
	RecMillis       float64              `json:"recommendation_ms"`
}

// MapJSON is one rating map.
type MapJSON struct {
	GroupBy   string    `json:"group_by"` // side.attr
	Dimension string    `json:"dimension"`
	Utility   float64   `json:"utility"`
	WonBy     string    `json:"won_by"` // winning interestingness criterion
	Bars      []BarJSON `json:"bars"`
}

// BarJSON is one subgroup bar.
type BarJSON struct {
	Value    string  `json:"value"`
	Records  int     `json:"records"`
	Counts   []int   `json:"distribution"` // index i = rating i+1
	AvgScore float64 `json:"avg_score"`
	Mode     int     `json:"mode_score"`
}

// RecommendationJSON is one ranked next-step operation.
type RecommendationJSON struct {
	Utility   float64 `json:"utility"`
	Operation string  `json:"operation"`
	Target    string  `json:"target"`
}

func (s *Server) stepJSON(sess *core.Session, step *core.StepResult) StepJSON {
	out := StepJSON{
		Selection: step.Desc.String(),
		GroupSize: step.GroupSize,
		Reviewers: step.NumMatched.Reviewers,
		Items:     step.NumMatched.Items,
		GenMillis: float64(step.GenDuration.Microseconds()) / 1000,
		RecMillis: float64(step.RecDuration.Microseconds()) / 1000,
	}
	for i, rm := range step.Maps {
		out.Maps = append(out.Maps, s.mapJSON(sess, rm, step.Utilities[i]))
	}
	for _, rec := range step.Recommendations {
		out.Recommendations = append(out.Recommendations, RecommendationJSON{
			Utility:   rec.Utility,
			Operation: rec.Op.String(),
			Target:    rec.Op.Target.String(),
		})
	}
	return out
}

func (s *Server) mapJSON(sess *core.Session, rm *ratingmap.RatingMap, utility float64) MapJSON {
	_, winner := s.ex.ExplainMap(rm, sess.Seen())
	mj := MapJSON{
		GroupBy:   rm.Side.String() + "." + rm.Attr,
		Dimension: rm.DimName,
		Utility:   utility,
		WonBy:     winner.String(),
	}
	dict := s.ex.DictFor(rm)
	for i := range rm.Subgroups {
		sg := &rm.Subgroups[i]
		mj.Bars = append(mj.Bars, BarJSON{
			Value:    dict.Value(sg.Value),
			Records:  sg.N,
			Counts:   sg.Counts,
			AvgScore: sg.AvgScore(),
			Mode:     sg.ModeScore(),
		})
	}
	return mj
}

func summaryJSON(sum core.PathSummary) map[string]any {
	return map[string]any{
		"steps":               sum.Steps,
		"total_utility":       sum.TotalUtility,
		"distinct_attributes": sum.DistinctAttributes,
		"avg_diversity":       sum.AvgDiversity,
		"maps_per_dimension":  sum.MapsPerDimension,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
