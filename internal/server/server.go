// Package server exposes the SDE engine over HTTP with JSON payloads — the
// role the paper's web UI backend plays (Figure 4: the UI talks to the SDE
// Engine, which drives the RM-Set Generator and Recommendation Builder).
// A thin REST surface manages exploration sessions:
//
//	POST /sessions                {"mode":"rp"}             -> {"id":...}
//	GET  /sessions/{id}/step                                -> the step display
//	POST /sessions/{id}/apply     {"predicate":"..."}        -> move the session
//	POST /sessions/{id}/apply     {"recommendation":1}       -> follow rec #1
//	POST /sessions/{id}/apply     {"back":true}              -> previous selection
//	GET  /sessions/{id}/summary                              -> path summary
//	DELETE /sessions/{id}                                    -> drop the session
//	GET  /sessions/{id}/maps/{n}/vega                        -> Vega-Lite spec of map n
//	GET  /healthz
//	GET  /metrics                                            -> Prometheus text format
//	GET  /debug/spans?limit=N&trace=ID                       -> recent span trees (JSON)
//	GET  /debug/flightrecorder?limit=N&trace=ID              -> recent wide events (JSON)
//
// Every request runs through observability middleware: request latency
// and status are recorded in the obs registry, the request carries a
// span sink so one exploration step yields a full span tree, and
// in-flight requests and live sessions are tracked as gauges. The
// middleware also speaks W3C trace context: an incoming `traceparent`
// header's trace ID is installed in the request context (the root span,
// every engine phase span, the step profile, and the step's flight-
// recorder wide event all carry it), and the response echoes a
// `traceparent` so callers can log the correlation ID they were served
// under.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"subdex/internal/buildinfo"
	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/obs"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
	"subdex/internal/sessionstore"
)

// spanRingSize bounds the /debug/spans buffer.
const spanRingSize = 64

// maxBodyBytes caps JSON request bodies; larger bodies answer 413.
const maxBodyBytes = 64 << 10

// Options configure the server's admission-control and session-lifecycle
// layer. The zero value disables all limits (the library-embedding
// default); subdexd wires its flags here.
type Options struct {
	// MaxSessions caps concurrently live sessions; 0 = unlimited. A POST
	// /sessions on a full server answers 429 with a Retry-After header.
	MaxSessions int
	// SessionTTL evicts sessions idle (no request touching them) for
	// longer than this; 0 disables eviction. Evictions decrement
	// subdex_sessions_in_flight and bump subdex_sessions_evicted_total.
	SessionTTL time.Duration
	// JanitorInterval overrides the eviction sweep cadence. 0 picks
	// SessionTTL/4 clamped to [1s, 1min]. Mostly useful in tests.
	JanitorInterval time.Duration
	// Clock overrides time.Now for the idle-TTL bookkeeping (tests).
	Clock func() time.Time
	// FlightDir enables triggered flight-recorder dumps (on 5xx responses
	// and degraded steps, rate-limited per reason) into the directory.
	// Empty keeps the ring recording and served at /debug/flightrecorder
	// but writes nothing to disk.
	FlightDir string
	// FlightMinInterval overrides the per-reason dump rate limit
	// (default 30s).
	FlightMinInterval time.Duration
	// Registry, when non-nil, receives the server's instruments instead
	// of a private registry — subdexd shares one registry between the
	// server and the cluster coordinator so a single /metrics scrape
	// covers both.
	Registry *obs.Registry
	// Store makes sessions durable: every committed operation is logged
	// to it before the response is sent, idle sessions are shed to it
	// (and transparently restored on their next request) instead of
	// destroyed, and stored sessions are recovered — replayed through
	// the real engine — at construction. Nil keeps the pre-durability
	// behavior: sessions live and die with the process.
	Store sessionstore.Store
}

// routes are the handler paths served by Handler. The per-route HTTP
// instruments are pre-registered over this list at construction, so the
// request hot path never performs a registry lookup (each lookup takes
// the registry mutex — the finding subdexvet's obsmetrics analyzer
// exists to catch).
var routes = []string{
	"/healthz", "/sessions", "/sessions/{id}", "/metrics", "/debug/spans", "/debug/cache",
	"/debug/flightrecorder",
}

// statusCodes are the response codes this server emits; one counter
// series per route×code is pre-registered. Codes outside this set (none
// today) fall back to the route's code="other" series, so the hot path
// stays registration-free no matter what a handler writes.
var statusCodes = []int{200, 201, 400, 404, 405, 409, 413, 429, 500, 504}

// routeInstruments bundles one route's pre-resolved HTTP instruments.
// The zero value is usable and inert: nil obs instruments are no-ops.
type routeInstruments struct {
	latency *obs.Histogram
	byCode  map[int]*obs.Counter
	other   *obs.Counter
}

// newRouteInstruments resolves one route's instruments against the
// registry. All registry lookups for the HTTP surface happen here, at
// construction time.
func newRouteInstruments(reg *obs.Registry, route string) *routeInstruments {
	const (
		latencyName = "subdex_http_request_duration_seconds"
		latencyHelp = "HTTP request latency by route."
		totalName   = "subdex_http_requests_total"
		totalHelp   = "HTTP requests by route and status code."
	)
	ri := &routeInstruments{
		latency: reg.Histogram(latencyName, latencyHelp, nil, obs.L("route", route)),
		byCode:  make(map[int]*obs.Counter, len(statusCodes)),
		other:   reg.Counter(totalName, totalHelp, obs.L("route", route), obs.L("code", "other")),
	}
	for _, code := range statusCodes {
		ri.byCode[code] = reg.Counter(totalName, totalHelp,
			obs.L("route", route), obs.L("code", strconv.Itoa(code)))
	}
	return ri
}

// observe records one finished request: latency plus the status-code
// counter (the pre-registered series, or "other" for a code outside
// statusCodes).
func (ri *routeInstruments) observe(d time.Duration, code int) {
	ri.latency.ObserveDuration(d)
	c, ok := ri.byCode[code]
	if !ok {
		c = ri.other
	}
	c.Inc()
}

// sessionEntry wraps one live session with its own lock: all computation
// on a session (step, apply, summary, vega) serializes on entry.mu, so a
// slow step on one session never blocks the rest of the server. The
// server's global mu guards only the sessions map and lastUsed.
type sessionEntry struct {
	//subdex:lockorder rank=20 per-session compute lock: taken after Server.mu (janitor TryLock), before any store append
	mu   sync.Mutex // serializes computation on this session
	sess *core.Session
	// lastUsed is guarded by Server.mu (not entry.mu): the janitor reads
	// it while deciding evictions without taking the compute lock.
	lastUsed time.Time
}

// Server owns an explorer, its live sessions, and the observability
// surface (metrics registry + recent-span ring).
type Server struct {
	ex     *core.Explorer
	reg    *obs.Registry
	spans  *obs.RingSink
	flight *obs.FlightRecorder
	info   buildinfo.Info
	opts   Options
	now    func() time.Time

	httpInFlight      *obs.Gauge
	sessionsLive      *obs.Gauge
	sessionsEvicted   *obs.Counter
	admissionRejected *obs.Counter
	busyRejected      *obs.Counter
	stepTimeouts      *obs.Counter
	flightDumps       *obs.Counter
	flightSuppressed  *obs.Counter
	sessionsShed      *obs.Counter
	sessionsRestored  *obs.Counter
	sessionsRecovered *obs.Counter
	walFailures       *obs.Counter
	routeIns          map[string]*routeInstruments

	store sessionstore.Store

	//subdex:lockorder rank=10 outermost: guards the session map; held across store.Get during restore, so every store lock ranks above it
	mu       sync.Mutex
	sessions map[int]*sessionEntry
	// deleting holds a refcount of in-flight DELETEs per session id,
	// set in the same critical section that removes the map entry and
	// cleared after the durable delete lands. entryOrRestore refuses to
	// install while it is nonzero, so a concurrent restore can never
	// resurrect a session mid-delete (see handleDelete).
	deleting map[int]int
	nextID   int

	stopOnce sync.Once
	stop     chan struct{}
	// janitorDone is closed by the janitor goroutine on exit; nil when no
	// janitor was started. Close blocks on it so that after Close returns
	// no EvictIdle/Shed can still be running against a store the caller
	// is about to tear down.
	janitorDone chan struct{}
}

// New builds a server over a frozen database with no admission limits.
// The server owns a metrics registry (exposed at /metrics and via
// Registry) and instruments the explorer with it.
func New(db *dataset.DB, cfg core.Config) (*Server, error) {
	return NewWithOptions(db, cfg, Options{})
}

// NewWithOptions is New with the admission-control and session-lifecycle
// knobs. When opts.SessionTTL > 0 a janitor goroutine sweeps idle
// sessions; stop it with Close.
//
// NewWithOptions is an XCtx compatibility shim: a context-free wrapper F
// that delegates to FCtx with context.Background(), keeping the
// pre-context API alive.
func NewWithOptions(db *dataset.DB, cfg core.Config, opts Options) (*Server, error) {
	return NewWithOptionsCtx(context.Background(), db, cfg, opts)
}

// NewWithOptionsCtx is NewWithOptions under a caller-supplied context,
// which bounds the boot-time session recovery a durable Store triggers
// (every stored session is replayed through the engine before the first
// request is served).
func NewWithOptionsCtx(ctx context.Context, db *dataset.DB, cfg core.Config, opts Options) (*Server, error) {
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		return nil, err
	}
	reg := opts.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	ex.Instrument(reg)
	now := opts.Clock
	if now == nil {
		now = time.Now
	}
	info := buildinfo.Get()
	s := &Server{
		ex:    ex,
		reg:   reg,
		spans: obs.NewRingSink(spanRingSize),
		flight: obs.NewFlightRecorder(obs.FlightOptions{
			Dir:         opts.FlightDir,
			Name:        "server",
			MinInterval: opts.FlightMinInterval,
			Clock:       now,
		}),
		info: info,
		opts: opts,
		now:  now,
		httpInFlight: reg.Gauge("subdex_http_in_flight_requests",
			"HTTP requests currently being served."),
		sessionsLive: reg.Gauge("subdex_sessions_in_flight",
			"Exploration sessions currently held by the server."),
		sessionsEvicted: reg.Counter("subdex_sessions_evicted_total",
			"Idle sessions evicted by the TTL janitor."),
		admissionRejected: reg.Counter("subdex_admission_rejected_total",
			"Session creations rejected by the max-sessions admission cap."),
		busyRejected: reg.Counter("subdex_session_busy_rejections_total",
			"Step/apply requests rejected because the session was mid-computation."),
		stepTimeouts: reg.Counter("subdex_step_timeouts_total",
			"Steps aborted by their deadline before any phase boundary (504s)."),
		flightDumps: reg.Counter("subdex_flight_dumps_total",
			"Flight-recorder dumps written to disk."),
		flightSuppressed: reg.Counter("subdex_flight_dumps_suppressed_total",
			"Flight-recorder triggers suppressed by the per-reason rate limit."),
		sessionsShed: reg.Counter("subdex_sessions_shed_total",
			"Idle sessions shed to the durable store by the TTL janitor."),
		sessionsRestored: reg.Counter("subdex_sessions_restored_total",
			"Sessions transparently restored from the durable store on request."),
		sessionsRecovered: reg.Counter("subdex_sessions_recovered_total",
			"Sessions recovered from the durable store at boot."),
		walFailures: reg.Counter("subdex_wal_append_failures_total",
			"Operations that committed in memory but failed to persist (the request answered 500)."),
		store:    opts.Store,
		sessions: make(map[int]*sessionEntry),
		deleting: make(map[int]int),
		routeIns: make(map[string]*routeInstruments, len(routes)),
		nextID:   1,
		stop:     make(chan struct{}),
	}
	for _, route := range routes {
		s.routeIns[route] = newRouteInstruments(reg, route)
	}
	// The standard build-info idiom: a constant-1 gauge whose labels carry
	// the identity, so scrapes and load-test artifacts can say exactly
	// which binary they measured.
	reg.Gauge("subdex_build_info",
		"Build metadata of the running binary (constant 1; identity in the labels).",
		obs.L("version", info.Version),
		obs.L("commit", info.Commit),
		obs.L("go_version", info.GoVersion)).Set(1)
	if s.store != nil {
		s.store.Instrument(sessionstore.Instruments{
			Appends: reg.Counter("subdex_wal_appends_total",
				"Durable records appended to the session write-ahead log."),
			Fsyncs: reg.Counter("subdex_wal_fsyncs_total",
				"fsync calls on the session write-ahead log."),
			ReplayRecords: reg.Counter("subdex_wal_replay_records_total",
				"Write-ahead-log records applied during open-time replay."),
			Truncations: reg.Counter("subdex_wal_truncations_total",
				"Corrupt write-ahead-log tails truncated during open-time replay."),
		})
		if err := s.recoverSessions(ctx); err != nil {
			return nil, err
		}
	}
	if opts.SessionTTL > 0 {
		s.janitorDone = make(chan struct{})
		go s.janitor()
	}
	return s, nil
}

// recoverSessions resumes every stored session at boot: each snapshot is
// replayed through the real engine (rewarming the cross-step cache and
// verifying the recorded digests) and installed in the live map. A
// session that fails to replay is flight-recorded and left in the store
// for forensics, never served. A corrupt WAL tail found by the store's
// own open is likewise flight-recorded here, where a recorder exists.
func (s *Server) recoverSessions(ctx context.Context) error {
	snaps, nextID, err := s.store.All()
	if err != nil {
		return fmt.Errorf("server: reading session store: %w", err)
	}
	recovered := 0
	//subdex:orderinsensitive keyed map iteration: each session restores independently into its own map slot
	for id, snap := range snaps {
		sess, rerr := core.RestoreSession(ctx, s.ex, snap)
		if rerr != nil {
			s.flight.Record(obs.NewWideEvent().
				Set("op", "recover_session").
				Set("session", id).
				Set("status", http.StatusInternalServerError).
				Set("error", rerr.Error()))
			s.flightTrigger("session_recovery_failed")
			continue
		}
		s.mu.Lock()
		s.sessions[id] = &sessionEntry{sess: sess, lastUsed: s.now()}
		s.mu.Unlock()
		s.sessionsLive.Inc()
		recovered++
	}
	s.sessionsRecovered.Add(int64(recovered))
	s.mu.Lock()
	if nextID > s.nextID {
		s.nextID = nextID
	}
	s.mu.Unlock()
	if fs, ok := s.store.(*sessionstore.FileStore); ok {
		if rec := fs.Recovery(); rec.Truncated {
			s.flight.Record(obs.NewWideEvent().
				Set("op", "wal_truncation").
				Set("error", rec.Reason).
				Set("wal_valid_bytes", rec.TruncatedAt).
				Set("wal_records", rec.Records))
			s.flightTrigger("wal_corrupt_tail")
		}
	}
	return nil
}

// Flight exposes the server's flight recorder so embedders (sdeload's
// http mode, tests) can record client-side wide events into the same
// ring and fire their own triggers (e.g. an SLO breach).
func (s *Server) Flight() *obs.FlightRecorder { return s.flight }

// flightTrigger fires a rate-limited flight-recorder dump and keeps the
// dump/suppression counters in step. With no FlightDir configured it is
// free.
func (s *Server) flightTrigger(reason string) {
	if !s.flight.DumpsEnabled() {
		return
	}
	if _, dumped, err := s.flight.Trigger(reason); err == nil && dumped {
		s.flightDumps.Inc()
	} else if err == nil {
		s.flightSuppressed.Inc()
	}
}

// Close stops the TTL janitor (if any) and waits for it to exit, so no
// eviction or shed is still touching the session store once Close
// returns. It does not tear down live sessions; the process owns their
// lifetime from here.
func (s *Server) Close() {
	s.stopOnce.Do(func() { close(s.stop) })
	if s.janitorDone != nil {
		<-s.janitorDone
	}
}

// janitor periodically evicts idle sessions until Close.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	iv := s.opts.JanitorInterval
	if iv <= 0 {
		iv = s.opts.SessionTTL / 4
		if iv < time.Second {
			iv = time.Second
		}
		if iv > time.Minute {
			iv = time.Minute
		}
	}
	t := time.NewTicker(iv)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.EvictIdle()
		}
	}
}

// EvictIdle removes every session idle for longer than the configured
// SessionTTL and returns how many were removed. Sessions mid-computation
// (entry lock held) are skipped — they are in use by definition. With a
// durable store configured the removal is a *shed*: the session's
// snapshot is persisted (outside every lock — Shed does file I/O) and
// the next request for it restores transparently; without one it is the
// old destructive eviction. The janitor calls this on its interval;
// tests call it directly with a fake clock.
//
// The shared engine cache is deliberately untouched here: shedding moves
// one session's private state out of memory, and flushing the cross-
// session TopMapsCache would tax every other session's latency for it
// (a regression test pins cache hits across a shed/restore cycle).
func (s *Server) EvictIdle() int {
	ttl := s.opts.SessionTTL
	if ttl <= 0 {
		return 0
	}
	cutoff := s.now().Add(-ttl)
	type shedItem struct {
		id   int
		snap *core.SessionSnapshot
	}
	var shed []shedItem
	evicted := 0
	s.mu.Lock()
	for id, e := range s.sessions {
		if e.lastUsed.After(cutoff) {
			continue
		}
		if !e.mu.TryLock() {
			continue // a request is computing on it right now
		}
		if s.store != nil {
			shed = append(shed, shedItem{id, e.sess.Snapshot()})
		}
		delete(s.sessions, id)
		e.mu.Unlock()
		evicted++
	}
	s.mu.Unlock()
	for i := 0; i < evicted; i++ {
		s.sessionsLive.Dec()
	}
	if s.store == nil {
		s.sessionsEvicted.Add(int64(evicted))
		return evicted
	}
	for _, it := range shed {
		if err := s.store.Shed(it.id, it.snap); err != nil {
			if errors.Is(err, sessionstore.ErrStaleShed) {
				// The session moved on between the map removal above and
				// this append: a request restored it and durably committed
				// a newer op, or a DELETE removed it. Either way our
				// snapshot is obsolete and the store's refusal preserved
				// the newer state — dropping it is the correct outcome,
				// not a failure.
				continue
			}
			// The session left memory but its full snapshot missed the
			// log. The store's mirror still has it (mirror-ahead-of-log
			// heals at compaction); record the failure loudly.
			s.walFailures.Inc()
			s.flight.Record(obs.NewWideEvent().
				Set("op", "shed_session").
				Set("session", it.id).
				Set("error", err.Error()))
			s.flightTrigger("wal_append_failed")
			continue
		}
		s.sessionsShed.Inc()
	}
	return evicted
}

// Registry exposes the server's metrics registry, e.g. for registering
// process-level gauges next to the engine metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the HTTP handler with observability middleware
// installed on every route.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.instrument("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{
			"status":     "ok",
			"database":   s.ex.DB.Name,
			"version":    s.info.Version,
			"commit":     s.info.Commit,
			"go_version": s.info.GoVersion,
		})
	}))
	mux.HandleFunc("/sessions", s.instrument("/sessions", s.handleCreateSession))
	mux.HandleFunc("/sessions/", s.instrument("/sessions/{id}", s.handleSession))
	mux.HandleFunc("/metrics", s.instrument("/metrics", s.handleMetrics))
	mux.HandleFunc("/debug/spans", s.instrument("/debug/spans", s.handleSpans))
	mux.HandleFunc("/debug/cache", s.instrument("/debug/cache", s.handleCache))
	mux.HandleFunc("/debug/flightrecorder", s.instrument("/debug/flightrecorder", s.handleFlight))
	return mux
}

// statusWriter captures the response status for metrics.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the observability middleware: an
// in-flight gauge, a per-route latency histogram, a per-route/status
// request counter, and a root span (collected into the /debug/spans
// ring) covering the whole request. The histogram and counters are
// resolved once at construction (see newRouteInstruments), so the
// request hot path never takes the registry lock or re-hashes label
// sets — it only observes pre-bound instruments.
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	ri := s.routeIns[route]
	if ri == nil {
		// A route outside the static table (tests wire ad-hoc handlers):
		// resolve its instruments now — instrument() runs at mux
		// construction time, never per request.
		ri = newRouteInstruments(s.reg, route)
	}
	return func(w http.ResponseWriter, r *http.Request) {
		s.httpInFlight.Inc()
		start := time.Now()
		ctx := obs.WithSink(r.Context(), s.spans)
		// W3C trace context: honor a caller-supplied traceparent, mint an
		// ID otherwise. Installing it before StartSpan binds the root span
		// (and every profile downstream) to the caller's correlation ID.
		tid, _, ok := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if !ok {
			tid = obs.NewTraceID()
		}
		ctx = obs.WithTraceID(ctx, tid)
		w.Header().Set("traceparent", obs.Traceparent(tid, obs.NewSpanID()))
		ctx, span := obs.StartSpan(ctx, "http "+r.Method+" "+route)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		// All bookkeeping is deferred so a panicking handler still ends
		// its span and is counted (net/http's recovery then sees the
		// panic as usual; the connection drops, which clients observe as
		// an aborted response).
		defer func() {
			if p := recover(); p != nil {
				sw.status = http.StatusInternalServerError
				span.SetAttr("panic", fmt.Sprint(p))
				defer panic(p)
			}
			s.httpInFlight.Dec()
			span.SetAttr("status", sw.status)
			span.SetAttr("path", r.URL.Path)
			span.End()
			ri.observe(time.Since(start), sw.status)
			if sw.status >= 500 {
				s.flightTrigger("http_5xx")
			}
		}()
		h(sw, r.WithContext(ctx))
	}
}

// handleMetrics serves the registry in the Prometheus text exposition
// format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_ = s.reg.WritePrometheus(w)
}

// handleCache serves a snapshot of the engine's cross-step accumulator
// cache: entry/record occupancy against the budget, hit/miss/eviction
// counters, and the derived hit rate. The same counters are exported as
// subdex_engine_cache_*_total on /metrics; this endpoint adds the
// occupancy view Prometheus counters cannot carry.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	st := s.ex.EngineCacheStats()
	writeJSON(w, http.StatusOK, map[string]any{
		"engine_cache": st,
		"hit_rate":     st.HitRate(),
		"enabled":      st.BudgetRecords > 0,
	})
}

// debugFilters parses the shared ?limit=N and ?trace=<id> query filters
// of the /debug endpoints. It reports ok=false after writing a 400.
func debugFilters(w http.ResponseWriter, r *http.Request) (trace string, limit int, ok bool) {
	q := r.URL.Query()
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return "", 0, false
		}
		limit = n
	}
	return q.Get("trace"), limit, true
}

// handleSpans serves the most recent request span trees, newest first.
// ?trace=<id> keeps only roots collected under that trace ID; ?limit=N
// truncates to the newest N.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	trace, limit, ok := debugFilters(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"spans": s.spans.SnapshotFiltered(obs.TraceID(trace), limit),
	})
}

// handleFlight serves the live flight-recorder ring, newest first, with
// the same ?limit / ?trace filters as /debug/spans, plus the dump and
// rate-limit-suppression counts.
func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	trace, limit, ok := debugFilters(w, r)
	if !ok {
		return
	}
	dumps, suppressed := s.flight.Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"events":        s.flight.Snapshot(trace, limit),
		"dumps":         dumps,
		"suppressed":    suppressed,
		"dumps_enabled": s.flight.DumpsEnabled(),
	})
}

// createSessionRequest selects the exploration mode.
type createSessionRequest struct {
	Mode string `json:"mode"` // "ud" | "rp" | "fa"
	// Predicate optionally starts the session at a selection.
	Predicate string `json:"predicate"`
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	var req createSessionRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	var mode core.Mode
	switch strings.ToLower(req.Mode) {
	case "", "rp":
		mode = core.RecommendationPowered
	case "ud":
		mode = core.UserDriven
	case "fa":
		mode = core.FullyAutomated
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown mode %q", req.Mode))
		return
	}
	start := query.Description{}
	if req.Predicate != "" {
		d, err := s.ex.ParseDescription(req.Predicate)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		start = d
	}
	// Admission control, session creation, map insert and the live-session
	// gauge share one critical section: the cap can never be overshot by
	// concurrent creates, and the gauge can never transiently disagree
	// with the map.
	s.mu.Lock()
	if s.opts.MaxSessions > 0 && len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		s.admissionRejected.Inc()
		w.Header().Set("Retry-After", retryAfterSeconds(s.opts.SessionTTL))
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("session limit reached (%d); retry later or delete a session", s.opts.MaxSessions))
		return
	}
	sess, err := core.NewSession(s.ex, mode, start)
	if err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	id := s.nextID
	s.nextID++
	s.sessions[id] = &sessionEntry{sess: sess, lastUsed: s.now()}
	s.sessionsLive.Inc()
	s.mu.Unlock()
	// Log before respond: the session is durable before the client learns
	// its id. On failure the insert is rolled back — a 500 must not leak
	// a half-created session.
	if s.store != nil {
		if err := s.store.Create(id, sess.BaseSnapshot()); err != nil {
			s.mu.Lock()
			if _, ok := s.sessions[id]; ok {
				delete(s.sessions, id)
				s.sessionsLive.Dec()
			}
			s.mu.Unlock()
			s.walFailures.Inc()
			writeError(w, http.StatusInternalServerError, "failed to persist session: "+err.Error())
			return
		}
	}
	writeJSON(w, http.StatusCreated, map[string]any{"id": id, "mode": mode.String()})
}

// retryAfterSeconds derives a Retry-After hint from the idle TTL: with a
// janitor configured, capacity frees up within a sweep or two; without
// one, only explicit deletes free capacity, so suggest a short poll.
func retryAfterSeconds(ttl time.Duration) string {
	if ttl <= 0 {
		return "1"
	}
	secs := int(ttl / (4 * time.Second))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

// entry looks up a live session and refreshes its idle timestamp.
func (s *Server) entry(id int) (*sessionEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.sessions[id]
	if ok {
		e.lastUsed = s.now()
	}
	return e, ok
}

// entryOrRestore is entry with the durable-store fallback: a session the
// janitor shed (or one created before a restart that boot recovery
// skipped restoring) is replayed through the engine and re-installed
// transparently. It returns the entry, or an HTTP status to answer with
// (404 for a genuinely unknown session, 500 for one that exists in the
// store but failed to replay).
func (s *Server) entryOrRestore(ctx context.Context, id int) (*sessionEntry, int, string) {
	if e, ok := s.entry(id); ok {
		return e, 0, ""
	}
	if s.store == nil {
		return nil, http.StatusNotFound, "no such session"
	}
	snap, ok, err := s.store.Get(id)
	if err != nil {
		return nil, http.StatusInternalServerError, "session store: " + err.Error()
	}
	if !ok {
		return nil, http.StatusNotFound, "no such session"
	}
	// The replay runs outside every server lock: it is real engine work
	// (that is the point — the cache rewarms) and must not stall other
	// sessions.
	sess, err := core.RestoreSession(ctx, s.ex, snap)
	if err != nil {
		s.flight.Record(obs.NewWideEvent().
			Set("op", "restore_session").
			Set("session", id).
			Set("status", http.StatusInternalServerError).
			Set("error", err.Error()))
		s.flightTrigger("session_restore_failed")
		return nil, http.StatusInternalServerError, "session restore failed: " + err.Error()
	}
	s.mu.Lock()
	if e, ok := s.sessions[id]; ok {
		// Lost a concurrent restore race; the winner's copy is as exact
		// as ours (replay is deterministic) — use it and drop ours.
		e.lastUsed = s.now()
		s.mu.Unlock()
		return e, 0, ""
	}
	// A concurrent DELETE may have removed the session while we were
	// replaying it; installing now would resurrect a session the client
	// was told is gone. Both checks run under s.mu: the tombstone covers
	// a delete whose durable removal is still in flight, the store
	// re-read covers one that already finished. Get is a pure mirror
	// read, so no file I/O happens under the lock.
	if s.deleting[id] > 0 {
		s.mu.Unlock()
		return nil, http.StatusNotFound, "no such session"
	}
	if _, still, serr := s.store.Get(id); serr != nil || !still {
		s.mu.Unlock()
		if serr != nil {
			return nil, http.StatusInternalServerError, "session store: " + serr.Error()
		}
		return nil, http.StatusNotFound, "no such session"
	}
	e := &sessionEntry{sess: sess, lastUsed: s.now()}
	s.sessions[id] = e
	s.mu.Unlock()
	s.sessionsLive.Inc()
	s.sessionsRestored.Inc()
	return e, 0, ""
}

// handleDelete removes a session and decrements the in-flight gauge.
// Presence is rechecked under the lock so two concurrent DELETEs of the
// same id cannot double-decrement, and the entry lock is TryLocked
// before removal so a DELETE can never yank a session out from under an
// in-flight step (the same discipline the janitor follows); a busy
// session answers 409 and the client retries. With a durable store the
// delete is persisted too — a deleted session must stay deleted across
// a restart.
func (s *Server) handleDelete(w http.ResponseWriter, id int) {
	s.mu.Lock()
	e, ok := s.sessions[id]
	if ok {
		if !e.mu.TryLock() {
			s.mu.Unlock()
			s.busyRejected.Inc()
			writeError(w, http.StatusConflict, "session busy: a step or apply is already in flight")
			return
		}
		delete(s.sessions, id)
		e.mu.Unlock()
	}
	// Tombstone the id in the same critical section as the removal:
	// until the durable delete below lands, a concurrent entryOrRestore
	// must not re-install a copy it restored from the still-present
	// store record — a 200 here must never leave a live session whose
	// record is gone (it would serve without durability and 500 on its
	// next committed op). Restores that finish after the tombstone
	// clears re-read the store under s.mu and find the record deleted.
	s.deleting[id]++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.deleting[id]--; s.deleting[id] <= 0 {
			delete(s.deleting, id)
		}
		s.mu.Unlock()
	}()
	inStore := false
	if s.store != nil && !ok {
		// A shed session is still deletable: check the store before 404ing.
		// The read error must surface as a 500, not be folded into "absent":
		// answering 404 on a store fault would tell the client the delete is
		// moot while the durable record (and its tombstone obligation) still
		// exists.
		_, found, serr := s.store.Get(id)
		if serr != nil {
			writeError(w, http.StatusInternalServerError, "store read failed: "+serr.Error())
			return
		}
		inStore = found
	}
	if !ok && !inStore {
		writeError(w, http.StatusNotFound, "no such session")
		return
	}
	if ok {
		s.sessionsLive.Dec()
	}
	if s.store != nil {
		if err := s.store.Delete(id); err != nil {
			s.walFailures.Inc()
			writeError(w, http.StatusInternalServerError, "failed to persist delete: "+err.Error())
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
}

func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/sessions/")
	parts := strings.Split(rest, "/")
	id, err := strconv.Atoi(parts[0])
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad session id")
		return
	}
	action := ""
	if len(parts) > 1 {
		action = parts[1]
	}
	if action == "" && r.Method == http.MethodDelete {
		// Deletion never restores: replaying a whole session through the
		// engine just to discard it would be pure waste. handleDelete
		// checks the store itself.
		s.handleDelete(w, id)
		return
	}
	e, status, errMsg := s.entryOrRestore(r.Context(), id)
	if status != 0 {
		writeError(w, status, errMsg)
		return
	}
	// Known actions answer 405 (with Allow) on the wrong method instead
	// of falling through to 404.
	allowed := map[string]string{"": http.MethodDelete, "step": http.MethodGet,
		"apply": http.MethodPost, "summary": http.MethodGet, "maps": http.MethodGet}
	switch {
	case action == "step" && r.Method == http.MethodGet:
		s.handleStep(w, r, id, e)
	case action == "apply" && r.Method == http.MethodPost:
		s.handleApply(w, r, id, e)
	case action == "summary" && r.Method == http.MethodGet:
		e.mu.Lock()
		sum := e.sess.Summarize()
		e.mu.Unlock()
		writeJSON(w, http.StatusOK, summaryJSON(sum))
	case action == "maps" && len(parts) == 4 && parts[3] == "vega" && r.Method == http.MethodGet:
		s.handleVega(w, e, parts[2])
	default:
		if method, known := allowed[action]; known && r.Method != method {
			w.Header().Set("Allow", method)
			writeError(w, http.StatusMethodNotAllowed, method+" only")
			return
		}
		writeError(w, http.StatusNotFound, "unknown action "+action)
	}
}

// handleVega serves the Vega-Lite specification of one displayed map of the
// session's latest step (1-based index). The spec is computed under the
// session's own lock (never the server-global one) in vegaSpec; the
// response is written only after that lock is released, so a slow or
// stalled client can never hold the session hostage.
func (s *Server) handleVega(w http.ResponseWriter, e *sessionEntry, idx string) {
	n, err := strconv.Atoi(idx)
	if err != nil || n < 1 {
		writeError(w, http.StatusBadRequest, "bad map index")
		return
	}
	spec, status, errMsg := s.vegaSpec(e, n)
	if errMsg != "" {
		writeError(w, status, errMsg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(spec)
}

// vegaSpec computes the Vega-Lite spec for the n-th map of the session's
// latest step under the session lock. It performs no network writes while
// holding the lock (the lockblock analyzer enforces this discipline).
func (s *Server) vegaSpec(e *sessionEntry, n int) (spec []byte, status int, errMsg string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	steps := e.sess.Steps()
	if len(steps) == 0 {
		return nil, http.StatusConflict, "no step executed yet"
	}
	last := steps[len(steps)-1]
	if n > len(last.Maps) {
		return nil, http.StatusNotFound, "map index out of range"
	}
	rm := last.Maps[n-1]
	spec, err := rm.VegaLiteSpec(s.ex.DictFor(rm))
	if err != nil {
		return nil, http.StatusInternalServerError, err.Error()
	}
	return spec, http.StatusOK, ""
}

func (s *Server) handleStep(w http.ResponseWriter, r *http.Request, id int, e *sessionEntry) {
	// One session is single-threaded: the paper's UI issues one step at a
	// time. A second concurrent step/apply on the same session is a
	// client bug — reject it immediately with 409 instead of queueing
	// compute. The per-session lock means a slow step here never blocks
	// other sessions or /healthz. The request context carries the span
	// sink installed by the middleware (so the step's span tree hangs off
	// the HTTP root span), the trace ID (so the step profile and wide
	// event correlate with the caller's traceparent), and the request's
	// cancellation, which the engine honors at phase boundaries.
	if !e.mu.TryLock() {
		s.busyRejected.Inc()
		writeError(w, http.StatusConflict, "session busy: a step or apply is already in flight")
		return
	}
	opid := r.URL.Query().Get("opid")
	explain := r.URL.Query().Get("explain") == "1"
	// Idempotent retry: if the client re-sends an op the session already
	// committed (the connection died before the response — e.g. across a
	// crash), re-render the committed step instead of executing a new
	// one. This is the client half of exactly-once step semantics; the
	// log-before-respond below is the server half. The committed op must
	// actually be a step — a client reusing an apply's opid here would
	// otherwise have us index an empty or unrelated step list — so any
	// other kind falls through to normal execution.
	if last, ok := e.sess.LastOp(); opid != "" && ok && last.OpID == opid && last.Kind == core.OpStep {
		if steps := e.sess.Steps(); len(steps) > 0 {
			payload := s.stepJSON(e.sess, steps[len(steps)-1], explain)
			e.mu.Unlock()
			writeJSON(w, http.StatusOK, payload)
			return
		}
	}
	stepStart := time.Now()
	step, err := e.sess.StepCtx(r.Context())
	var payload StepJSON
	var op core.SessionOp
	var seq int
	if err == nil {
		e.sess.TagLastOp(opid)
		op, _ = e.sess.LastOp()
		seq = e.sess.NumOps() - 1
		payload = s.stepJSON(e.sess, step, explain)
	}
	// Everything below — the WAL append, the wide event, dump triggers,
	// the response — happens outside the session lock: the WAL fsync and
	// flight dumps do file I/O and the response write blocks on the
	// client.
	e.mu.Unlock()
	durMS := float64(time.Since(stepStart).Microseconds()) / 1000
	tid := string(obs.TraceIDFrom(r.Context()))
	if err != nil {
		status := http.StatusInternalServerError
		msg := err.Error()
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			// The deadline fired before the engine completed a single
			// phase: there is no prefix to degrade to.
			s.stepTimeouts.Inc()
			status = http.StatusGatewayTimeout
			msg = "step deadline exceeded before any phase boundary; retry or raise -step-timeout"
		}
		s.flight.Record(obs.NewWideEvent().
			Set("op", "step").
			Set("session", id).
			Set("trace_id", tid).
			Set("status", status).
			Set("duration_ms", durMS).
			Set("error", msg))
		// The middleware's 5xx trigger fires the dump once this error is
		// written; recording first puts the failing step in the dumped ring.
		writeError(w, status, msg)
		return
	}
	// Log before respond: the step is durable before the client sees it,
	// so a crash after this point loses nothing a client has acted on.
	if !s.persistOp(w, id, seq, op, "step") {
		return
	}
	s.flight.Record(obs.NewWideEvent().
		Set("op", "step").
		Set("session", id).
		Set("trace_id", tid).
		Set("status", http.StatusOK).
		Set("duration_ms", durMS).
		Set("degraded", step.Degraded).
		Set("selection", payload.Selection).
		Set("gen_ms", payload.GenMillis).
		Set("rec_ms", payload.RecMillis).
		Set("records_processed", step.RecordsProcessed))
	if step.Degraded {
		s.flightTrigger("degraded_step")
	}
	writeJSON(w, http.StatusOK, payload)
}

// persistOp appends one committed op to the durable store, reporting
// whether to proceed with the success response. On failure it answers
// 500: the op is applied in memory (and the store's mirror; the gap
// heals at the next compaction), but the client must not act on a
// response the log never saw.
func (s *Server) persistOp(w http.ResponseWriter, id, seq int, op core.SessionOp, what string) bool {
	if s.store == nil {
		return true
	}
	if err := s.store.AppendOp(id, seq, op); err != nil {
		s.walFailures.Inc()
		s.flight.Record(obs.NewWideEvent().
			Set("op", "wal_append").
			Set("session", id).
			Set("error", err.Error()))
		s.flightTrigger("wal_append_failed")
		writeError(w, http.StatusInternalServerError, "failed to persist "+what+": "+err.Error())
		return false
	}
	return true
}

// applyRequest moves a session: exactly one of the move fields is used.
// Recommendation is a pointer so an explicit {"recommendation": 0} is
// distinguishable from an absent field and gets a targeted error.
type applyRequest struct {
	Predicate      string `json:"predicate,omitempty"`
	Recommendation *int   `json:"recommendation,omitempty"` // 1-based
	Back           bool   `json:"back,omitempty"`
	// OpID is an optional client idempotency tag: re-sending a request
	// whose op the session already committed (a retry after a lost
	// response) answers from state instead of re-applying.
	OpID string `json:"op_id,omitempty"`
}

func (s *Server) handleApply(w http.ResponseWriter, r *http.Request, id int, e *sessionEntry) {
	var req applyRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if !e.mu.TryLock() {
		s.busyRejected.Inc()
		writeError(w, http.StatusConflict, "session busy: a step or apply is already in flight")
		return
	}
	sess := e.sess
	// Idempotent retry, mirroring handleStep: an already-committed op is
	// answered from state, not re-applied. The kind check mirrors
	// handleStep's: an opid that tags a committed *step* is not a
	// committed apply, however the client mislabeled it.
	if last, ok := sess.LastOp(); req.OpID != "" && ok && last.OpID == req.OpID && last.Kind != core.OpStep {
		sel := sess.Current().String()
		e.mu.Unlock()
		writeJSON(w, http.StatusOK, map[string]string{"selection": sel})
		return
	}
	status, msg := s.applyLocked(sess, req)
	var op core.SessionOp
	var seq int
	var sel string
	if status == 0 {
		sess.TagLastOp(req.OpID)
		op, _ = sess.LastOp()
		seq = sess.NumOps() - 1
		sel = sess.Current().String()
	}
	// The WAL append and the response write stay outside the session
	// lock (file I/O and client-paced I/O respectively).
	e.mu.Unlock()
	if status != 0 {
		writeError(w, status, msg)
		return
	}
	if !s.persistOp(w, id, seq, op, "apply") {
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"selection": sel})
}

// applyLocked commits one apply operation on the locked session. It
// returns (0, "") on success or the HTTP status and message to answer.
func (s *Server) applyLocked(sess *core.Session, req applyRequest) (int, string) {
	switch {
	case req.Back:
		if !sess.Back() {
			return http.StatusConflict, "history empty"
		}
	case req.Recommendation != nil:
		if *req.Recommendation < 1 {
			return http.StatusBadRequest, "recommendation must be ≥ 1 (1-based index)"
		}
		if err := sess.ApplyRecommendation(*req.Recommendation - 1); err != nil {
			return http.StatusBadRequest, err.Error()
		}
	case req.Predicate != "":
		d, err := s.ex.ParseDescription(req.Predicate)
		if err != nil {
			return http.StatusBadRequest, err.Error()
		}
		if err := sess.ApplyDescription(d); err != nil {
			return http.StatusBadRequest, err.Error()
		}
	default:
		return http.StatusBadRequest, "one of predicate, recommendation, back required"
	}
	return 0, ""
}

// decodeJSON reads a JSON body with the hardening defaults: a 64 KiB
// size cap (413 on breach) and unknown-field rejection (a targeted 400).
// It reports whether decoding succeeded; on failure the response has
// been written.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	err := dec.Decode(v)
	if err == nil {
		return true
	}
	var maxErr *http.MaxBytesError
	switch {
	case errors.As(err, &maxErr):
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
	case strings.HasPrefix(err.Error(), "json: unknown field"):
		writeError(w, http.StatusBadRequest,
			"unknown field "+strings.TrimPrefix(err.Error(), "json: unknown field "))
	default:
		writeError(w, http.StatusBadRequest, "bad JSON: "+err.Error())
	}
	return false
}

// JSON shapes ------------------------------------------------------------

// StepJSON is the display payload of one exploration step.
type StepJSON struct {
	Selection       string               `json:"selection"`
	GroupSize       int                  `json:"group_size"`
	Reviewers       int                  `json:"reviewers"`
	Items           int                  `json:"items"`
	Maps            []MapJSON            `json:"maps"`
	Recommendations []RecommendationJSON `json:"recommendations,omitempty"`
	GenMillis       float64              `json:"generation_ms"`
	RecMillis       float64              `json:"recommendation_ms"`
	// Degraded marks an anytime result: the step deadline cut the scan
	// short after a phase boundary, so the maps rank candidates over the
	// first RecordsProcessed records of the group (and recommendations
	// may be missing). Clients should render it as a best-effort answer.
	Degraded         bool `json:"degraded"`
	RecordsProcessed int  `json:"records_processed,omitempty"`
	// TraceID is the correlation ID the step ran under — the caller's
	// traceparent trace ID, or a server-minted one. Resolve it against
	// /debug/spans?trace= and /debug/flightrecorder?trace=.
	TraceID string `json:"trace_id,omitempty"`
	// Profile is the step's EXPLAIN record, present only under ?explain=1.
	Profile *core.StepProfile `json:"profile,omitempty"`
}

// MapJSON is one rating map.
type MapJSON struct {
	GroupBy   string    `json:"group_by"` // side.attr
	Dimension string    `json:"dimension"`
	Utility   float64   `json:"utility"`
	WonBy     string    `json:"won_by"` // winning interestingness criterion
	Bars      []BarJSON `json:"bars"`
	// Digest is the canonical byte-stable fingerprint of the rating map
	// (ratingmap.Digest): two maps digest equally iff their accumulated
	// counts are identical. The workload harness uses it to prove that an
	// HTTP-driven session shows byte-identical displays to an in-process
	// one, and golden-trace regression tests pin it across releases.
	Digest string `json:"digest"`
}

// BarJSON is one subgroup bar.
type BarJSON struct {
	Value    string  `json:"value"`
	Records  int     `json:"records"`
	Counts   []int   `json:"distribution"` // index i = rating i+1
	AvgScore float64 `json:"avg_score"`
	Mode     int     `json:"mode_score"`
}

// RecommendationJSON is one ranked next-step operation.
type RecommendationJSON struct {
	Utility   float64 `json:"utility"`
	Operation string  `json:"operation"`
	Target    string  `json:"target"`
}

func (s *Server) stepJSON(sess *core.Session, step *core.StepResult, explain bool) StepJSON {
	out := StepJSON{
		Selection:        step.Desc.String(),
		GroupSize:        step.GroupSize,
		Reviewers:        step.NumMatched.Reviewers,
		Items:            step.NumMatched.Items,
		GenMillis:        float64(step.GenDuration.Microseconds()) / 1000,
		RecMillis:        float64(step.RecDuration.Microseconds()) / 1000,
		Degraded:         step.Degraded,
		RecordsProcessed: step.RecordsProcessed,
		TraceID:          step.TraceID,
	}
	if explain {
		out.Profile = step.Profile
	}
	for i, rm := range step.Maps {
		out.Maps = append(out.Maps, s.mapJSON(sess, rm, step.Utilities[i]))
	}
	for _, rec := range step.Recommendations {
		out.Recommendations = append(out.Recommendations, RecommendationJSON{
			Utility:   rec.Utility,
			Operation: rec.Op.String(),
			Target:    rec.Op.Target.String(),
		})
	}
	return out
}

func (s *Server) mapJSON(sess *core.Session, rm *ratingmap.RatingMap, utility float64) MapJSON {
	_, winner := s.ex.ExplainMap(rm, sess.Seen())
	mj := MapJSON{
		GroupBy:   rm.Side.String() + "." + rm.Attr,
		Dimension: rm.DimName,
		Utility:   utility,
		WonBy:     winner.String(),
		Digest:    rm.Digest(),
	}
	dict := s.ex.DictFor(rm)
	for i := range rm.Subgroups {
		sg := &rm.Subgroups[i]
		mj.Bars = append(mj.Bars, BarJSON{
			Value:    dict.Value(sg.Value),
			Records:  sg.N,
			Counts:   sg.Counts,
			AvgScore: sg.AvgScore(),
			Mode:     sg.ModeScore(),
		})
	}
	return mj
}

func summaryJSON(sum core.PathSummary) map[string]any {
	return map[string]any{
		"steps":               sum.Steps,
		"total_utility":       sum.TotalUtility,
		"distinct_attributes": sum.DistinctAttributes,
		"avg_diversity":       sum.AvgDiversity,
		"maps_per_dimension":  sum.MapsPerDimension,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
