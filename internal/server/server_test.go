package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"subdex/internal/core"
	"subdex/internal/gen"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, err := gen.Yelp(gen.Config{Seed: 2, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.RecSampleSize = 300
	cfg.Limits.MaxCandidates = 20
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	var out map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, out)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := testServer(t)

	resp, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, created)
	}
	id := int(created["id"].(float64))

	var step StepJSON
	resp = getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d", resp.StatusCode)
	}
	if step.Selection != "TRUE" || len(step.Maps) == 0 {
		t.Fatalf("unexpected step payload: %+v", step)
	}
	for _, m := range step.Maps {
		if m.GroupBy == "" || m.Dimension == "" || len(m.Bars) == 0 {
			t.Fatalf("incomplete map payload: %+v", m)
		}
		if m.WonBy == "" {
			t.Fatal("criterion attribution missing")
		}
	}
	if len(step.Recommendations) == 0 {
		t.Fatal("rp session must return recommendations")
	}

	// Follow recommendation 1.
	resp, applied := postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id),
		map[string]any{"recommendation": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply rec: %d %v", resp.StatusCode, applied)
	}
	if applied["selection"] == "TRUE" {
		t.Fatal("apply did not move the session")
	}

	// Jump via predicate.
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id),
		map[string]any{"predicate": "reviewers.gender = 'female'"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply predicate: %d", resp.StatusCode)
	}

	// Back twice: to the recommendation target, then to TRUE.
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{"back": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("back: %d", resp.StatusCode)
	}
	resp, back2 := postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{"back": true})
	if resp.StatusCode != http.StatusOK || back2["selection"] != "TRUE" {
		t.Fatalf("second back: %d %v", resp.StatusCode, back2)
	}

	// Summary reflects the executed step.
	var sum map[string]any
	resp = getJSON(t, fmt.Sprintf("%s/sessions/%d/summary", ts.URL, id), &sum)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: %d", resp.StatusCode)
	}
	if int(sum["steps"].(float64)) < 1 {
		t.Fatalf("summary steps: %v", sum)
	}
}

func TestSessionStartingPredicate(t *testing.T) {
	ts := testServer(t)
	resp, created := postJSON(t, ts.URL+"/sessions",
		map[string]string{"mode": "ud", "predicate": "reviewers.gender = 'female'"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, created)
	}
	id := int(created["id"].(float64))
	var step StepJSON
	getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)
	if step.Selection == "TRUE" {
		t.Fatal("starting predicate ignored")
	}
	if len(step.Recommendations) != 0 {
		t.Fatal("user-driven session must not return recommendations")
	}
}

func TestServerErrors(t *testing.T) {
	ts := testServer(t)

	// Bad mode.
	resp, _ := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "xx"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: %d", resp.StatusCode)
	}
	// Bad predicate at creation.
	resp, _ = postJSON(t, ts.URL+"/sessions", map[string]string{"predicate": "!!"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad predicate: %d", resp.StatusCode)
	}
	// Unknown session.
	r, err := http.Get(ts.URL + "/sessions/999/step")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d", r.StatusCode)
	}
	// GET on /sessions.
	r, err = http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sessions: %d", r.StatusCode)
	}
	// Empty apply.
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty apply: %d", resp.StatusCode)
	}
	// Back with empty history.
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{"back": true})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("back on empty history: %d", resp.StatusCode)
	}
}

// TestMetricsEndpoint drives one exploration step and asserts the
// /metrics payload carries the whole observability surface: step-latency
// histogram, candidate/pruning counters split by strategy, HTTP request
// telemetry, and the in-flight gauges.
func TestMetricsEndpoint(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))
	var step StepJSON
	getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type: %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"subdex_step_duration_seconds_bucket",
		"subdex_step_duration_seconds_count 1",
		"subdex_generation_duration_seconds_bucket",
		"subdex_recommendation_duration_seconds_bucket",
		"subdex_engine_candidates_total",
		`subdex_engine_candidates_pruned_total{strategy="ci"}`,
		`subdex_engine_candidates_pruned_total{strategy="mab"}`,
		"subdex_engine_maps_finalized_total",
		"subdex_engine_topmaps_duration_seconds_bucket",
		"subdex_http_request_duration_seconds_bucket",
		`subdex_http_requests_total{route="/sessions",code="201"}`,
		"subdex_http_in_flight_requests",
		"subdex_sessions_in_flight 1",
		"subdex_sessions_started_total 1",
		"subdex_steps_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The in-flight gauge must include the /metrics request itself.
	if !strings.Contains(text, "subdex_http_in_flight_requests 1") {
		t.Errorf("in-flight gauge should read 1 while serving /metrics")
	}
	// A session step enumerates candidates; the counter must be non-zero.
	if strings.Contains(text, "subdex_engine_candidates_total 0\n") {
		t.Error("candidates counter still zero after a step")
	}
}

// TestDebugSpansEndpoint asserts one HTTP-driven step produces a span
// tree reaching from the request root through the engine.
func TestDebugSpansEndpoint(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))
	var step StepJSON
	getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)

	var out struct {
		Spans []struct {
			Name       string  `json:"name"`
			DurationMS float64 `json:"duration_ms"`
			Children   []struct {
				Name     string `json:"name"`
				Children []struct {
					Name string `json:"name"`
				} `json:"children"`
			} `json:"children"`
		} `json:"spans"`
	}
	resp := getJSON(t, ts.URL+"/debug/spans", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/spans: %d", resp.StatusCode)
	}
	if len(out.Spans) == 0 {
		t.Fatal("no spans recorded")
	}
	// Newest-first: find the step request's root span.
	var found bool
	for _, s := range out.Spans {
		if s.Name != "http GET /sessions/{id}" {
			continue
		}
		for _, c := range s.Children {
			if c.Name != "core.step" {
				continue
			}
			found = true
			if len(c.Children) == 0 || c.Children[0].Name != "core.rmset" {
				t.Fatalf("core.step children wrong: %+v", c.Children)
			}
		}
	}
	if !found {
		t.Fatalf("no step span tree found in %+v", out.Spans)
	}
}

// TestMethodNotAllowed covers the 405-with-Allow contract on /sessions
// and /sessions/{id}/....
func TestMethodNotAllowed(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))

	check := func(method, url, wantAllow string) {
		t.Helper()
		req, err := http.NewRequest(method, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: got %d, want 405", method, url, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); got != wantAllow {
			t.Errorf("%s %s: Allow = %q, want %q", method, url, got, wantAllow)
		}
	}
	check(http.MethodGet, ts.URL+"/sessions", http.MethodPost)
	check(http.MethodDelete, ts.URL+"/sessions", http.MethodPost)
	check(http.MethodPost, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), http.MethodGet)
	check(http.MethodGet, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), http.MethodPost)
	check(http.MethodPost, fmt.Sprintf("%s/sessions/%d/summary", ts.URL, id), http.MethodGet)
	check(http.MethodPost, ts.URL+"/metrics", http.MethodGet)
	check(http.MethodPost, ts.URL+"/debug/spans", http.MethodGet)

	// Unknown actions stay 404.
	resp, err := http.Get(fmt.Sprintf("%s/sessions/%d/nonsense", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown action: got %d, want 404", resp.StatusCode)
	}
}

// TestSessionDelete covers DELETE /sessions/{id}: the session is gone
// afterwards, a second delete is 404, the in-flight gauge returns to 0
// (while the started counter keeps the total), and the wrong method on
// /sessions/{id} answers 405 with Allow: DELETE.
func TestSessionDelete(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))

	do := func(method, url string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(method, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp
	}

	// Wrong method on the bare session resource: 405 + Allow.
	resp := do(http.MethodGet, fmt.Sprintf("%s/sessions/%d", ts.URL, id))
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodDelete {
		t.Fatalf("GET /sessions/{id}: %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}

	if resp = do(http.MethodDelete, fmt.Sprintf("%s/sessions/%d", ts.URL, id)); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: %d", resp.StatusCode)
	}
	// The session is gone: step is 404, second delete is 404.
	if resp = do(http.MethodGet, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("step after delete: %d", resp.StatusCode)
	}
	if resp = do(http.MethodDelete, fmt.Sprintf("%s/sessions/%d", ts.URL, id)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete: %d", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	text := string(body)
	if !strings.Contains(text, "subdex_sessions_in_flight 0") {
		t.Errorf("in-flight gauge should return to 0 after delete:\n%s", text)
	}
	if !strings.Contains(text, "subdex_sessions_started_total 1") {
		t.Errorf("started counter should keep the total:\n%s", text)
	}
}

// TestInstrumentPanicBookkeeping asserts the middleware's deferred
// bookkeeping survives a panicking handler: the in-flight gauge still
// decrements, the request is counted as a 500, and the root span is
// ended (appears in the ring) — then the panic is re-raised for
// net/http to handle.
func TestInstrumentPanicBookkeeping(t *testing.T) {
	db, err := gen.Yelp(gen.Config{Seed: 2, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(db, core.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := s.instrument("/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("middleware must re-raise the handler panic")
			}
		}()
		h(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/boom", nil))
	}()
	if got := s.httpInFlight.Value(); got != 0 {
		t.Errorf("in-flight gauge leaked: %v", got)
	}
	var b strings.Builder
	if err := s.reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `subdex_http_requests_total{route="/boom",code="500"} 1`) {
		t.Errorf("panicking request not counted as 500:\n%s", b.String())
	}
	spans := s.spans.Snapshot()
	if len(spans) == 0 {
		t.Fatal("panicking request must still end its root span")
	}
	if spans[0].Name != "http GET /boom" {
		t.Errorf("unexpected root span %q", spans[0].Name)
	}
}

func TestVegaEndpoint(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))

	// Before any step: conflict.
	r, err := http.Get(fmt.Sprintf("%s/sessions/%d/maps/1/vega", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("pre-step vega: %d", r.StatusCode)
	}

	var step StepJSON
	getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)

	var spec map[string]any
	resp := getJSON(t, fmt.Sprintf("%s/sessions/%d/maps/1/vega", ts.URL, id), &spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vega: %d", resp.StatusCode)
	}
	if spec["$schema"] != "https://vega.github.io/schema/vega-lite/v5.json" {
		t.Fatalf("not a Vega-Lite spec: %v", spec["$schema"])
	}
	// Out-of-range index.
	r, err = http.Get(fmt.Sprintf("%s/sessions/%d/maps/99/vega", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range vega: %d", r.StatusCode)
	}
}

func TestDebugCacheEndpoint(t *testing.T) {
	ts := testServer(t)

	var out struct {
		EngineCache struct {
			Entries       int   `json:"entries"`
			UsedRecords   int   `json:"used_records"`
			BudgetRecords int   `json:"budget_records"`
			Hits          int64 `json:"hits"`
			Misses        int64 `json:"misses"`
		} `json:"engine_cache"`
		HitRate float64 `json:"hit_rate"`
		Enabled bool    `json:"enabled"`
	}
	resp := getJSON(t, ts.URL+"/debug/cache", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache: %d", resp.StatusCode)
	}
	if !out.Enabled || out.EngineCache.BudgetRecords <= 0 {
		t.Fatalf("default server must enable the engine cache: %+v", out)
	}
	if out.EngineCache.Hits != 0 || out.EngineCache.Misses != 0 {
		t.Fatalf("fresh server has cache traffic: %+v", out)
	}

	// One step populates the cache (recommendation evaluation revisits
	// candidate groups, so misses must move; revisited ops may also hit).
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	id := int(created["id"].(float64))
	var step StepJSON
	getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)

	resp = getJSON(t, ts.URL+"/debug/cache", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cache after step: %d", resp.StatusCode)
	}
	if out.EngineCache.Misses == 0 || out.EngineCache.Entries == 0 {
		t.Fatalf("step produced no cache activity: %+v", out)
	}
	if out.EngineCache.UsedRecords > out.EngineCache.BudgetRecords {
		t.Fatalf("budget overrun: %+v", out)
	}

	// Method discipline.
	r, err := http.Post(ts.URL+"/debug/cache", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /debug/cache: %d", r.StatusCode)
	}
}
