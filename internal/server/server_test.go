package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"subdex/internal/core"
	"subdex/internal/gen"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	db, err := gen.Yelp(gen.Config{Seed: 2, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.RecSampleSize = 300
	cfg.Limits.MaxCandidates = 20
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp, out
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestHealthz(t *testing.T) {
	ts := testServer(t)
	var out map[string]string
	resp := getJSON(t, ts.URL+"/healthz", &out)
	if resp.StatusCode != http.StatusOK || out["status"] != "ok" {
		t.Fatalf("healthz: %d %v", resp.StatusCode, out)
	}
}

func TestSessionLifecycle(t *testing.T) {
	ts := testServer(t)

	resp, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "rp"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, created)
	}
	id := int(created["id"].(float64))

	var step StepJSON
	resp = getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("step: %d", resp.StatusCode)
	}
	if step.Selection != "TRUE" || len(step.Maps) == 0 {
		t.Fatalf("unexpected step payload: %+v", step)
	}
	for _, m := range step.Maps {
		if m.GroupBy == "" || m.Dimension == "" || len(m.Bars) == 0 {
			t.Fatalf("incomplete map payload: %+v", m)
		}
		if m.WonBy == "" {
			t.Fatal("criterion attribution missing")
		}
	}
	if len(step.Recommendations) == 0 {
		t.Fatal("rp session must return recommendations")
	}

	// Follow recommendation 1.
	resp, applied := postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id),
		map[string]any{"recommendation": 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply rec: %d %v", resp.StatusCode, applied)
	}
	if applied["selection"] == "TRUE" {
		t.Fatal("apply did not move the session")
	}

	// Jump via predicate.
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id),
		map[string]any{"predicate": "reviewers.gender = 'female'"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("apply predicate: %d", resp.StatusCode)
	}

	// Back twice: to the recommendation target, then to TRUE.
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{"back": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("back: %d", resp.StatusCode)
	}
	resp, back2 := postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{"back": true})
	if resp.StatusCode != http.StatusOK || back2["selection"] != "TRUE" {
		t.Fatalf("second back: %d %v", resp.StatusCode, back2)
	}

	// Summary reflects the executed step.
	var sum map[string]any
	resp = getJSON(t, fmt.Sprintf("%s/sessions/%d/summary", ts.URL, id), &sum)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("summary: %d", resp.StatusCode)
	}
	if int(sum["steps"].(float64)) < 1 {
		t.Fatalf("summary steps: %v", sum)
	}
}

func TestSessionStartingPredicate(t *testing.T) {
	ts := testServer(t)
	resp, created := postJSON(t, ts.URL+"/sessions",
		map[string]string{"mode": "ud", "predicate": "reviewers.gender = 'female'"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %v", resp.StatusCode, created)
	}
	id := int(created["id"].(float64))
	var step StepJSON
	getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)
	if step.Selection == "TRUE" {
		t.Fatal("starting predicate ignored")
	}
	if len(step.Recommendations) != 0 {
		t.Fatal("user-driven session must not return recommendations")
	}
}

func TestServerErrors(t *testing.T) {
	ts := testServer(t)

	// Bad mode.
	resp, _ := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "xx"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: %d", resp.StatusCode)
	}
	// Bad predicate at creation.
	resp, _ = postJSON(t, ts.URL+"/sessions", map[string]string{"predicate": "!!"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad predicate: %d", resp.StatusCode)
	}
	// Unknown session.
	r, err := http.Get(ts.URL + "/sessions/999/step")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: %d", r.StatusCode)
	}
	// GET on /sessions.
	r, err = http.Get(ts.URL + "/sessions")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /sessions: %d", r.StatusCode)
	}
	// Empty apply.
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty apply: %d", resp.StatusCode)
	}
	// Back with empty history.
	resp, _ = postJSON(t, fmt.Sprintf("%s/sessions/%d/apply", ts.URL, id), map[string]any{"back": true})
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("back on empty history: %d", resp.StatusCode)
	}
}

func TestVegaEndpoint(t *testing.T) {
	ts := testServer(t)
	_, created := postJSON(t, ts.URL+"/sessions", map[string]string{"mode": "ud"})
	id := int(created["id"].(float64))

	// Before any step: conflict.
	r, err := http.Get(fmt.Sprintf("%s/sessions/%d/maps/1/vega", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Fatalf("pre-step vega: %d", r.StatusCode)
	}

	var step StepJSON
	getJSON(t, fmt.Sprintf("%s/sessions/%d/step", ts.URL, id), &step)

	var spec map[string]any
	resp := getJSON(t, fmt.Sprintf("%s/sessions/%d/maps/1/vega", ts.URL, id), &spec)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("vega: %d", resp.StatusCode)
	}
	if spec["$schema"] != "https://vega.github.io/schema/vega-lite/v5.json" {
		t.Fatalf("not a Vega-Lite spec: %v", spec["$schema"])
	}
	// Out-of-range index.
	r, err = http.Get(fmt.Sprintf("%s/sessions/%d/maps/99/vega", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("out-of-range vega: %d", r.StatusCode)
	}
}
