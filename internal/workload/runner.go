package workload

import (
	"context"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"subdex/internal/core"
	"subdex/internal/obs"
)

// Config parameterizes a simulated-explorer population.
type Config struct {
	// Users is the population size (default 1).
	Users int
	// Seed drives every user's decision stream; user i derives its own
	// independent streams from Seed and i, so populations are reproducible
	// regardless of goroutine interleaving (default 1).
	Seed int64
	// StepsPerUser bounds each user's walk in executed step displays
	// (default 8). Under a Duration the budget is effectively unlimited
	// unless set explicitly.
	StepsPerUser int
	// Duration bounds the whole run in wall-clock time (soak mode);
	// 0 runs until every user exhausts its step budget.
	Duration time.Duration
	// Ramp staggers user starts uniformly across this interval, the
	// load-generator warm-up (0 starts everyone at once).
	Ramp time.Duration
	// Think is the mean think time between operations (exponentially
	// distributed, capped at 4×); 0 disables pacing entirely — think
	// times come from a separate RNG stream, so enabling them never
	// changes which path a seed produces.
	Think time.Duration
	// Mix weighs the operation repertoire (zero value selects DefaultMix).
	Mix Mix
	// AutoLen is the auto-pilot burst length (default 3).
	AutoLen int
	// Mode is the exploration mode sessions run in (default
	// RecommendationPowered).
	Mode core.Mode
	// Predicate optionally starts every session at a selection.
	Predicate string
	// Record retains per-step golden-trace records on each UserResult.
	// Leave it off for soak runs (it accumulates memory per step).
	Record bool
	// Flight, when non-nil, receives one client-side wide event per
	// step-producing call (the client half of trace correlation).
	Flight *obs.FlightRecorder
	// ExemplarK keeps the K slowest step calls — trace IDs and EXPLAIN
	// profiles included — across the population (0 disables).
	ExemplarK int
}

func (c Config) normalized() Config {
	if c.Users <= 0 {
		c.Users = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.StepsPerUser <= 0 {
		if c.Duration > 0 {
			c.StepsPerUser = 1 << 30 // soak: the clock is the budget
		} else {
			c.StepsPerUser = 8
		}
	}
	if c.Mix == (Mix{}) {
		c.Mix = DefaultMix()
	}
	if c.AutoLen < 2 {
		c.AutoLen = 3
	}
	return c
}

// Result aggregates a finished run.
type Result struct {
	// Users holds each user's outcome, indexed by user id.
	Users []*UserResult
	// Wall is the run's wall-clock duration.
	Wall time.Duration
	// Steps, Degraded, and Errors aggregate across the population.
	Steps    int
	Degraded int
	Errors   ErrorCounts
	// Exemplars are the population's ExemplarK slowest step calls, sorted
	// by descending duration (empty unless Config.ExemplarK > 0).
	Exemplars []Exemplar
}

// Failures lists the terminal per-user errors ("" entries excluded).
func (r *Result) Failures() []string {
	var out []string
	for _, u := range r.Users {
		if u != nil && u.Failure != "" {
			out = append(out, u.Failure)
		}
	}
	return out
}

// ClientFactory mints the client of one virtual user. The factory runs on
// the user's goroutine after its ramp delay, so session creation load is
// staggered like the rest of the traffic.
type ClientFactory func(ctx context.Context, userID int) (Client, error)

// InprocFactory returns a factory minting in-process clients over one
// shared explorer — every user gets its own session, all sessions share
// the explorer's caches (which are proven to return bit-identical results
// to uncached computation, so sharing never perturbs paths).
func InprocFactory(ex *core.Explorer, mode core.Mode, predicate string) ClientFactory {
	return func(_ context.Context, _ int) (Client, error) {
		return NewInprocClient(ex, mode, predicate)
	}
}

// HTTPFactory returns a factory minting HTTP clients against a server
// root URL. A nil http.Client selects http.DefaultClient.
func HTTPFactory(base string, hc *http.Client, mode core.Mode, predicate string) ClientFactory {
	return func(ctx context.Context, _ int) (Client, error) {
		return NewHTTPClient(ctx, base, hc, ModeString(mode), predicate)
	}
}

// HTTPRetryFactory is HTTPFactory with a transport retry policy: clients
// tag mutating requests with deterministic op ids and ride connection
// failures out, so a population survives a server kill-and-restart
// without perturbing any user's seeded path.
func HTTPRetryFactory(base string, hc *http.Client, mode core.Mode, predicate string, retry Retry) ClientFactory {
	return func(ctx context.Context, _ int) (Client, error) {
		return NewHTTPClientRetry(ctx, base, hc, ModeString(mode), predicate, retry)
	}
}

// ModeString renders a core.Mode as the server's wire token.
func ModeString(m core.Mode) string {
	switch m {
	case core.UserDriven:
		return "ud"
	case core.FullyAutomated:
		return "fa"
	default:
		return "rp"
	}
}

// Run drives a population of cfg.Users virtual users against clients
// minted by newClient and returns the aggregated outcome. The context
// bounds the whole run (on top of cfg.Duration); hitting either deadline
// is a clean stop, not an error. Run only fails on configuration-level
// problems; per-user terminal errors are reported in the result.
func Run(ctx context.Context, cfg Config, newClient ClientFactory) (*Result, error) {
	cfg = cfg.normalized()
	if cfg.Duration > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.Duration)
		defer cancel()
	}
	start := time.Now()
	results := make([]*UserResult, cfg.Users)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Users; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			results[id] = runUser(ctx, cfg, id, newClient)
		}(i)
	}
	wg.Wait()
	res := &Result{Users: results, Wall: time.Since(start)}
	lists := make([][]Exemplar, 0, len(results))
	for _, u := range results {
		res.Steps += u.Steps
		res.Degraded += u.Degraded
		res.Errors.add(u.Errors)
		lists = append(lists, u.Exemplars)
	}
	res.Exemplars = mergeExemplars(lists, cfg.ExemplarK)
	return res, nil
}

// runUser executes one user's full lifecycle: ramp delay, client
// creation, the closed loop, teardown.
func runUser(ctx context.Context, cfg Config, id int, newClient ClientFactory) *UserResult {
	if cfg.Ramp > 0 && cfg.Users > 1 {
		delay := time.Duration(int64(cfg.Ramp) * int64(id) / int64(cfg.Users))
		if !sleepCtx(ctx, delay) {
			return &UserResult{ID: id}
		}
	}
	c, err := newClient(ctx, id)
	if err != nil {
		res := &UserResult{ID: id}
		if ctx.Err() == nil {
			switch classify(err) {
			case errAdmission:
				res.Errors.Admission++
			case errBusy:
				res.Errors.Busy++
			case errTimeout:
				res.Errors.Timeout++
			default:
				res.Errors.Other++
				res.Failure = err.Error()
			}
		}
		return res
	}
	u := newUser(cfg, id)
	res := u.run(ctx, c)
	// Teardown must survive an expired soak deadline: DELETE frees the
	// server-side session so admission capacity is returned.
	_ = c.Close(context.WithoutCancel(ctx))
	return res
}

// newUser derives user id's deterministic state from the run config. The
// two RNG streams get well-separated seeds so the ops stream is identical
// whether or not think pacing is enabled.
func newUser(cfg Config, id int) *user {
	base := cfg.Seed + int64(id)<<20
	return &user{
		id:        id,
		steps:     cfg.StepsPerUser,
		mix:       cfg.Mix,
		autoLen:   cfg.AutoLen,
		guided:    cfg.Mode != core.UserDriven,
		think:     cfg.Think,
		record:    cfg.Record,
		ops:       rand.New(rand.NewSource(base*2 + 1)),
		thinkRN:   rand.New(rand.NewSource(base*2 + 2)),
		base:      base,
		flight:    cfg.Flight,
		exemplarK: cfg.ExemplarK,
	}
}
