package workload

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subdex/internal/cluster"
	"subdex/internal/core"
)

// TestGoldenTracesDistributed is the cluster's golden-equivalence lock:
// the exact pinned walks of TestGoldenTraces, rerun through a 3-worker
// coordinator-backed explorer, must serialize byte-identically to the
// same checked-in testdata/golden files. No cluster-specific goldens
// exist on purpose — distribution is a scheduling choice, not a result
// change, and this test is what enforces that.
func TestGoldenTracesDistributed(t *testing.T) {
	const nodes = 3
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			db, err := gc.build(gc.cfg)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			urls := make([]string, nodes)
			for i := 0; i < nodes; i++ {
				wex, err := core.NewExplorer(db, core.Config{})
				if err != nil {
					t.Fatal(err)
				}
				srv := httptest.NewServer(cluster.NewWorker(wex, cluster.WorkerOptions{}).Handler())
				t.Cleanup(srv.Close)
				urls[i] = srv.URL
			}
			coord, err := cluster.NewCoordinator(context.Background(), db, cluster.CoordinatorConfig{
				Workers:        urls,
				HealthInterval: -1,
				LocalThreshold: -1, // every scan takes the distributed path
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(coord.Close)

			ex, err := core.NewExplorer(db, core.Config{Scanner: coord})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), Config{
				Users:  1,
				Seed:   7,
				Record: true,
			}, InprocFactory(ex, core.RecommendationPowered, ""))
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			u := res.Users[0]
			if u.Failure != "" {
				t.Fatalf("user failed: %s", u.Failure)
			}
			got, err := MarshalGolden(u.Records)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			path := filepath.Join("testdata", "golden", gc.name+".jsonl")
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (generate with TestGoldenTraces -update): %v", err)
			}
			if bytes.Equal(want, got) {
				return
			}
			wantRecs, err := ReadGolden(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("distributed trace diverged and the checked-in file is unparseable: %v", err)
			}
			diffs := DiffRecords(wantRecs, u.Records)
			if len(diffs) == 0 {
				diffs = []string{"(byte-level difference only: whitespace or field ordering)"}
			}
			const limit = 24
			if len(diffs) > limit {
				diffs = append(diffs[:limit], fmt.Sprintf("... and %d more", len(diffs)-limit))
			}
			t.Errorf("distributed walk diverged from single-node golden (%s):\n  %s",
				path, strings.Join(diffs, "\n  "))
		})
	}
}
