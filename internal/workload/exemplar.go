// Slow-step exemplars: the client-side half of trace correlation. Each
// virtual user keeps its K slowest step calls — with their trace IDs and
// EXPLAIN profiles — and the runner merges them into a population-wide
// top-K. sdeload persists the merged list in BENCH_serving.json, so a
// "p99 = 63 ms" report ships the exact steps that produced the tail and
// the IDs to look them up with (/debug/spans?trace=<id> for the engine
// phase spans, /debug/flightrecorder?trace=<id> for the wide event).

package workload

import (
	"sort"

	"subdex/internal/core"
)

// Exemplar records one of the slowest observed step calls.
type Exemplar struct {
	// User and Step locate the call in the workload (Step counts the
	// user's executed step displays, 1-based, as of this call).
	User int `json:"user"`
	Step int `json:"step"`
	// Op is the client operation that produced the display: "step" or
	// "auto" (an auto-pilot burst, timed as a whole).
	Op string `json:"op"`
	// DurationMS is the client-observed wall time of the call, including
	// transport in HTTP mode.
	DurationMS float64 `json:"duration_ms"`
	// TraceID resolves the call server-side.
	TraceID string `json:"trace_id"`
	// Degraded marks an anytime result (for "auto": any step of the burst).
	Degraded bool `json:"degraded"`
	// Profile is the step's EXPLAIN record (the burst's last step for
	// "auto"), when the client surfaced one.
	Profile *core.StepProfile `json:"profile,omitempty"`
}

// insertExemplar keeps list as the k slowest exemplars, sorted by
// descending duration (ties keep insertion order stable via user/step).
func insertExemplar(list []Exemplar, e Exemplar, k int) []Exemplar {
	if k <= 0 {
		return list
	}
	list = append(list, e)
	sortExemplars(list)
	if len(list) > k {
		list = list[:k]
	}
	return list
}

// mergeExemplars combines per-user top-K lists into one population-wide
// top-K.
func mergeExemplars(lists [][]Exemplar, k int) []Exemplar {
	if k <= 0 {
		return nil
	}
	var all []Exemplar
	for _, l := range lists {
		all = append(all, l...)
	}
	sortExemplars(all)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// sortExemplars orders by descending duration with a deterministic
// (user, step) tiebreak, so merged reports are stable run to run.
func sortExemplars(list []Exemplar) {
	sort.SliceStable(list, func(i, j int) bool {
		if list[i].DurationMS != list[j].DurationMS {
			return list[i].DurationMS > list[j].DurationMS
		}
		if list[i].User != list[j].User {
			return list[i].User < list[j].User
		}
		return list[i].Step < list[j].Step
	})
}
