package workload

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// Scrape is a parsed snapshot of a Prometheus text exposition — the
// format internal/obs writes and /metrics serves. The load harness
// scrapes instead of re-reading instruments so it works identically
// against an in-process registry, a self-hosted server, and a remote
// -target (and so the workload package itself never registers metrics,
// keeping the obsmetrics registration discipline trivially satisfied).
type Scrape struct {
	// values holds counter and gauge samples keyed by canonical series id.
	values map[string]float64
	// hists holds histogram families keyed by canonical series id
	// (without the le label).
	hists map[string]*HistogramSnapshot
}

// HistogramSnapshot is one scraped histogram series.
type HistogramSnapshot struct {
	// Bounds are the finite bucket upper bounds, ascending.
	Bounds []float64
	// Counts are cumulative observation counts per bound, with the +Inf
	// bucket appended (len = len(Bounds)+1).
	Counts []int64
	// Sum and Count are the series' running totals.
	Sum   float64
	Count int64
}

// ParseMetrics parses a Prometheus text exposition.
func ParseMetrics(r io.Reader) (*Scrape, error) {
	s := &Scrape{values: make(map[string]float64), hists: make(map[string]*HistogramSnapshot)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	type bucket struct {
		le  float64
		cum int64
	}
	buckets := make(map[string][]bucket)
	sums := make(map[string]float64)
	counts := make(map[string]int64)
	for line := 1; sc.Scan(); line++ {
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		name, labels, value, err := parseSample(text)
		if err != nil {
			return nil, fmt.Errorf("workload: metrics line %d: %w", line, err)
		}
		switch {
		case strings.HasSuffix(name, "_bucket"):
			rest, le, ok := takeLabel(labels, "le")
			if !ok {
				return nil, fmt.Errorf("workload: metrics line %d: _bucket sample without le", line)
			}
			bound := parseBound(le)
			id := seriesKey(strings.TrimSuffix(name, "_bucket"), rest)
			buckets[id] = append(buckets[id], bucket{le: bound, cum: int64(value)})
		case strings.HasSuffix(name, "_sum"):
			sums[seriesKey(strings.TrimSuffix(name, "_sum"), labels)] = value
		case strings.HasSuffix(name, "_count"):
			counts[seriesKey(strings.TrimSuffix(name, "_count"), labels)] = value2int(value)
		default:
			s.values[seriesKey(name, labels)] = value
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for id, bs := range buckets {
		sort.Slice(bs, func(i, j int) bool { return bs[i].le < bs[j].le })
		h := &HistogramSnapshot{Sum: sums[id], Count: counts[id]}
		for _, b := range bs {
			if b.le == inf {
				h.Counts = append(h.Counts, b.cum)
				continue
			}
			h.Bounds = append(h.Bounds, b.le)
			h.Counts = append(h.Counts, b.cum)
		}
		if len(h.Counts) == len(h.Bounds) { // exposition without +Inf
			h.Counts = append(h.Counts, h.Count)
		}
		s.hists[id] = h
	}
	// _sum/_count pairs without buckets (untyped summaries) fall back to
	// plain values so they are still reachable.
	for id, v := range sums {
		if _, ok := s.hists[id]; !ok {
			s.values[id+"_sum"] = v
		}
	}
	for id, v := range counts {
		if _, ok := s.hists[id]; !ok {
			s.values[id+"_count"] = float64(v)
		}
	}
	return s, nil
}

// FetchMetrics GETs and parses a /metrics endpoint.
func FetchMetrics(ctx context.Context, hc *http.Client, url string) (*Scrape, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("workload: metrics scrape: status %d", resp.StatusCode)
	}
	return ParseMetrics(io.LimitReader(resp.Body, 64<<20))
}

// Value returns one counter/gauge sample by name and exact label set
// (nil/empty labels select the unlabeled series). Missing series read 0.
func (s *Scrape) Value(name string, labels map[string]string) float64 {
	return s.values[seriesKey(name, labels)]
}

// Sum adds every sample of a counter/gauge family regardless of labels.
func (s *Scrape) Sum(name string) float64 {
	total := 0.0
	prefix := name + "{"
	for id, v := range s.values {
		if id == name || strings.HasPrefix(id, prefix) {
			total += v
		}
	}
	return total
}

// SumMatching adds every sample of a family whose label set includes
// key=value (e.g. all subdex_http_requests_total with code="409").
func (s *Scrape) SumMatching(name, key, value string) float64 {
	total := 0.0
	prefix := name + "{"
	needle := key + "=" + strconv.Quote(value)
	for id, v := range s.values {
		if strings.HasPrefix(id, prefix) && strings.Contains(id, needle) {
			total += v
		}
	}
	return total
}

// Histogram merges every series of a histogram family into one snapshot
// (bucket layouts within a family are identical by construction in obs).
// It returns nil when the family is absent.
func (s *Scrape) Histogram(name string) *HistogramSnapshot {
	var merged *HistogramSnapshot
	prefix := name + "{"
	ids := make([]string, 0, 4)
	for id := range s.hists {
		if id == name || strings.HasPrefix(id, prefix) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	for _, id := range ids {
		h := s.hists[id]
		if merged == nil {
			merged = &HistogramSnapshot{
				Bounds: append([]float64(nil), h.Bounds...),
				Counts: append([]int64(nil), h.Counts...),
				Sum:    h.Sum,
				Count:  h.Count,
			}
			continue
		}
		if len(h.Counts) == len(merged.Counts) {
			for i, c := range h.Counts {
				merged.Counts[i] += c
			}
			merged.Sum += h.Sum
			merged.Count += h.Count
		}
	}
	return merged
}

// Quantile estimates the q-quantile (0 < q ≤ 1) from the cumulative
// buckets with linear interpolation inside the containing bucket — the
// standard Prometheus histogram_quantile estimator. An empty histogram
// returns 0; observations in the +Inf bucket clamp to the largest finite
// bound.
func (h *HistogramSnapshot) Quantile(q float64) float64 {
	if h == nil || h.Count == 0 || len(h.Counts) == 0 {
		return 0
	}
	rank := q * float64(h.Count)
	for i, bound := range h.Bounds {
		cum := float64(h.Counts[i])
		if cum < rank {
			continue
		}
		lower, lowerCum := 0.0, 0.0
		if i > 0 {
			lower = h.Bounds[i-1]
			lowerCum = float64(h.Counts[i-1])
		}
		width := cum - lowerCum
		if width <= 0 {
			return bound
		}
		return lower + (bound-lower)*(rank-lowerCum)/width
	}
	if len(h.Bounds) > 0 {
		return h.Bounds[len(h.Bounds)-1]
	}
	return 0
}

// Delta returns a snapshot with before's monotone samples subtracted:
// *_total families and histogram buckets/sums/counts become the increase
// over the interval, while gauges keep their current value. Use it to
// measure one load run against a server that was already serving.
func (s *Scrape) Delta(before *Scrape) *Scrape {
	out := &Scrape{values: make(map[string]float64, len(s.values)),
		hists: make(map[string]*HistogramSnapshot, len(s.hists))}
	for id, v := range s.values {
		if strings.Contains(id, "_total") {
			if prev, ok := before.values[id]; ok {
				v -= prev
				if v < 0 {
					v = 0
				}
			}
		}
		out.values[id] = v
	}
	for id, h := range s.hists {
		d := &HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
		if prev, ok := before.hists[id]; ok && len(prev.Counts) == len(d.Counts) {
			for i := range d.Counts {
				d.Counts[i] -= prev.Counts[i]
				if d.Counts[i] < 0 {
					d.Counts[i] = 0
				}
			}
			d.Sum -= prev.Sum
			d.Count -= prev.Count
			if d.Count < 0 {
				d.Count = 0
			}
		}
		out.hists[id] = d
	}
	return out
}

// Merge returns a snapshot with other's samples added: counters, gauges,
// and histogram buckets/sums/counts all sum. Use it to account one
// workload across a server restart, where each process lifetime exposes
// its own registry starting from zero (the kill-and-resume soak scrapes
// the dying process just before the kill and the recovered one at the
// end, and SLOs are asserted over the merged totals).
func (s *Scrape) Merge(other *Scrape) *Scrape {
	out := &Scrape{values: make(map[string]float64, len(s.values)),
		hists: make(map[string]*HistogramSnapshot, len(s.hists))}
	for id, v := range s.values {
		out.values[id] = v
	}
	//subdex:orderinsensitive keyed map merge: every write adds into its own key, order cannot change the result
	for id, v := range other.values {
		out.values[id] += v
	}
	copyHist := func(h *HistogramSnapshot) *HistogramSnapshot {
		return &HistogramSnapshot{
			Bounds: append([]float64(nil), h.Bounds...),
			Counts: append([]int64(nil), h.Counts...),
			Sum:    h.Sum,
			Count:  h.Count,
		}
	}
	for id, h := range s.hists {
		out.hists[id] = copyHist(h)
	}
	//subdex:orderinsensitive keyed map merge: per-key accumulation, order cannot change the result
	for id, h := range other.hists {
		d, ok := out.hists[id]
		if !ok {
			out.hists[id] = copyHist(h)
			continue
		}
		if len(d.Counts) != len(h.Counts) {
			continue // differing layouts cannot merge; keep the first
		}
		for i, c := range h.Counts {
			d.Counts[i] += c
		}
		d.Sum += h.Sum
		d.Count += h.Count
	}
	return out
}

// inf marks the +Inf bucket bound.
var inf = math.Inf(1)

// parseBound parses a le label value.
func parseBound(s string) float64 {
	if s == "+Inf" {
		return inf
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return inf
	}
	return v
}

func value2int(v float64) int64 { return int64(v) }

// parseSample splits one exposition line into name, labels, and value.
func parseSample(line string) (string, []string, float64, error) {
	name := line
	var labels []string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return "", nil, 0, fmt.Errorf("unbalanced label braces")
		}
		var err error
		labels, err = parseLabels(line[i+1 : j])
		if err != nil {
			return "", nil, 0, err
		}
		name = line[:i]
		line = name + " " + strings.TrimSpace(line[j+1:])
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return "", nil, 0, fmt.Errorf("sample without value")
	}
	v, err := strconv.ParseFloat(fields[1], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", fields[1])
	}
	return fields[0], labels, v, nil
}

// parseLabels parses `k1="v1",k2="v2"` into "k=v"-normalized pairs,
// handling the exposition escapes (\\, \n, \").
func parseLabels(s string) ([]string, error) {
	var out []string
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '='")
		}
		key := strings.TrimSpace(s[:eq])
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q without quoted value", key)
		}
		s = s[1:]
		var val strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated label value for %q", key)
		}
		s = strings.TrimPrefix(strings.TrimSpace(s[i+1:]), ",")
		s = strings.TrimSpace(s)
		out = append(out, key+"="+strconv.Quote(val.String()))
	}
	return out, nil
}

// takeLabel removes key from the normalized label list, returning the
// filtered list alongside the key's unquoted value. The input slice is
// not mutated — histogram bucket ids must be built from a label set that
// genuinely excludes "le", and aliasing bugs here would silently corrupt
// series keys.
func takeLabel(labels []string, key string) ([]string, string, bool) {
	prefix := key + "="
	for i, l := range labels {
		if strings.HasPrefix(l, prefix) {
			rest := make([]string, 0, len(labels)-1)
			rest = append(rest, labels[:i]...)
			rest = append(rest, labels[i+1:]...)
			v, err := strconv.Unquote(strings.TrimPrefix(l, prefix))
			if err != nil {
				return rest, strings.TrimPrefix(l, prefix), true
			}
			return rest, v, true
		}
	}
	return labels, "", false
}

// seriesKey renders the canonical id of a series: name{sorted labels}.
func seriesKey(name string, labels any) string {
	var pairs []string
	switch ls := labels.(type) {
	case []string:
		pairs = append(pairs, ls...)
	case map[string]string:
		for k, v := range ls {
			pairs = append(pairs, k+"="+strconv.Quote(v))
		}
	}
	if len(pairs) == 0 {
		return name
	}
	sort.Strings(pairs)
	return name + "{" + strings.Join(pairs, ",") + "}"
}
