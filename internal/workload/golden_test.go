package workload

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/gen"
)

// update regenerates the checked-in golden traces instead of comparing
// against them: go test ./internal/workload -run TestGolden -update
var update = flag.Bool("update", false, "rewrite golden trace files")

// goldenCase pins one generator's golden walk. Scale and seed choices
// match internal/gen's digest pin test, so a generator drift fails both
// suites with consistent evidence.
type goldenCase struct {
	name  string
	build func(gen.Config) (*dataset.DB, error)
	cfg   gen.Config
}

func goldenCases() []goldenCase {
	return []goldenCase{
		{"demo", gen.Demo, gen.Config{Seed: 1, Scale: 1}},
		{"movielens", gen.Movielens, gen.Config{Seed: 1, Scale: 0.02}},
		{"yelp", gen.Yelp, gen.Config{Seed: 1, Scale: 0.02}},
		{"hotels", gen.Hotels, gen.Config{Seed: 1, Scale: 0.02}},
	}
}

// goldenWalk runs the pinned recording walk for one case: a single
// simulated user (seed 7, default mix, 8 steps) against a fresh
// in-process explorer.
func goldenWalk(t *testing.T, gc goldenCase) []Record {
	t.Helper()
	db, err := gc.build(gc.cfg)
	if err != nil {
		t.Fatalf("%s: generate: %v", gc.name, err)
	}
	ex, err := core.NewExplorer(db, core.Config{})
	if err != nil {
		t.Fatalf("%s: explorer: %v", gc.name, err)
	}
	res, err := Run(context.Background(), Config{
		Users:  1,
		Seed:   7,
		Record: true,
	}, InprocFactory(ex, core.RecommendationPowered, ""))
	if err != nil {
		t.Fatalf("%s: run: %v", gc.name, err)
	}
	u := res.Users[0]
	if u.Failure != "" {
		t.Fatalf("%s: user failed: %s", gc.name, u.Failure)
	}
	if len(u.Records) == 0 {
		t.Fatalf("%s: walk produced no records", gc.name)
	}
	return u.Records
}

// TestGoldenTraces replays the pinned walk for every generator and
// byte-compares the serialized trace against testdata/golden. Any
// divergence — generator drift, engine ranking change, recommendation
// reordering, digest change, serialization change — fails with a
// field-level diff.
func TestGoldenTraces(t *testing.T) {
	for _, gc := range goldenCases() {
		gc := gc
		t.Run(gc.name, func(t *testing.T) {
			t.Parallel()
			recs := goldenWalk(t, gc)
			path := filepath.Join("testdata", "golden", gc.name+".jsonl")
			got, err := MarshalGolden(recs)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d steps, %d bytes)", path, len(recs), len(got))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if bytes.Equal(want, got) {
				return
			}
			wantRecs, err := ReadGolden(bytes.NewReader(want))
			if err != nil {
				t.Fatalf("golden trace diverged and the checked-in file is unparseable: %v", err)
			}
			diffs := DiffRecords(wantRecs, recs)
			if len(diffs) == 0 {
				diffs = []string{"(byte-level difference only: whitespace or field ordering)"}
			}
			const limit = 24
			if len(diffs) > limit {
				diffs = append(diffs[:limit], fmt.Sprintf("... and %d more", len(diffs)-limit))
			}
			t.Errorf("golden trace diverged (%s):\n  %s", path, strings.Join(diffs, "\n  "))
		})
	}
}

// TestGoldenRoundTrip pins the file format itself: records survive a
// write/read cycle exactly, and the reader tolerates blank lines.
func TestGoldenRoundTrip(t *testing.T) {
	recs := goldenWalk(t, goldenCases()[0])
	data, err := MarshalGolden(recs)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ReadGolden(bytes.NewReader(append([]byte("\n"), data...)))
	if err != nil {
		t.Fatal(err)
	}
	again, err := MarshalGolden(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Fatal("golden records did not survive a write/read round trip")
	}
	if diffs := DiffRecords(recs, back); len(diffs) != 0 {
		t.Fatalf("round-trip diff: %v", diffs)
	}
}

// TestGoldenDeterminism re-runs the demo walk and requires bit-identical
// records — the same-seed-same-path guarantee the whole harness rests on.
func TestGoldenDeterminism(t *testing.T) {
	a, err := MarshalGolden(goldenWalk(t, goldenCases()[0]))
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalGolden(goldenWalk(t, goldenCases()[0]))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different golden traces across runs")
	}
}

// TestDiffRecordsReportsFields exercises the failure renderer.
func TestDiffRecordsReportsFields(t *testing.T) {
	recs := goldenWalk(t, goldenCases()[0])
	mut := make([]Record, len(recs))
	copy(mut, recs)
	mut[0].Event.Selection = "items.bogus='x'"
	if len(mut[0].MapDigests) > 0 {
		digests := append([]string(nil), mut[0].MapDigests...)
		digests[0] = "tampered"
		mut[0].MapDigests = digests
	}
	diffs := DiffRecords(recs, mut)
	if len(diffs) < 2 {
		t.Fatalf("expected at least 2 diffs, got %v", diffs)
	}
	joined := strings.Join(diffs, "\n")
	if !strings.Contains(joined, "selection") || !strings.Contains(joined, "digest") {
		t.Fatalf("diff output missing expected fields:\n%s", joined)
	}
}
