package workload

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"

	"subdex/internal/trace"
)

// Record is one step of a golden exploration trace: the canonical
// trace.Event of the step plus the byte-stable content digests of the
// displayed maps and the rendered recommendation list. Every field is
// deterministic for a pinned seed — wall-clock and telemetry fields are
// zeroed — so a golden file is reproducible byte for byte, and any
// divergence (generator drift, engine ranking change, recommendation
// reordering, serialization change) fails the replay test.
type Record struct {
	// Event carries step number, selection, group size, maps (as
	// "side.attr/dimension"), utilities, and the operation the simulated
	// user chose after the step (in ChosenOp, e.g. "recommend:1",
	// "drill:items.roast='dark'", "back", "auto:3").
	Event trace.Event `json:"event"`
	// MapDigests are the ratingmap.Digest strings of the displayed maps,
	// in display order — the byte-level pin on the histograms themselves.
	MapDigests []string `json:"map_digests,omitempty"`
	// Recommendations render each ranked operation with its exact utility.
	Recommendations []string `json:"recommendations,omitempty"`
}

// NewRecord builds the golden record of one step display. op annotates
// the operation chosen after the step ("" when not yet decided; the user
// loop fills it in once it draws).
func NewRecord(step int, sv *StepView, op string) Record {
	rec := Record{Event: trace.Event{
		Step:      step,
		Selection: sv.Selection,
		GroupSize: sv.GroupSize,
		ChosenOp:  op,
		Degraded:  sv.Degraded,
	}}
	for _, m := range sv.Maps {
		rec.Event.Maps = append(rec.Event.Maps, m.GroupBy+"/"+m.Dimension)
		rec.Event.Utilities = append(rec.Event.Utilities, m.Utility)
		rec.MapDigests = append(rec.MapDigests, m.Digest)
	}
	for _, r := range sv.Recommendations {
		rec.Recommendations = append(rec.Recommendations,
			fmt.Sprintf("%s => %s (u=%s)", r.Operation, r.Target,
				strconv.FormatFloat(r.Utility, 'g', -1, 64)))
	}
	return rec
}

// WriteGolden serializes records as JSON lines, one record per line —
// the golden-trace file format under testdata/golden.
func WriteGolden(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, rec := range recs {
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// MarshalGolden renders records to the exact bytes WriteGolden would
// produce, for byte-level comparison against a checked-in golden file.
func MarshalGolden(recs []Record) ([]byte, error) {
	var buf bytes.Buffer
	if err := WriteGolden(&buf, recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ReadGolden parses a golden-trace file written by WriteGolden.
func ReadGolden(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 8*1024*1024)
	var out []Record
	for line := 1; sc.Scan(); line++ {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("workload: golden line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	return out, sc.Err()
}

// LoadGolden reads a golden-trace file from disk.
func LoadGolden(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGolden(f)
}

// SaveGolden writes a golden-trace file to disk (the -update path of the
// regression tests).
func SaveGolden(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGolden(f, recs); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// DiffRecords renders a readable field-level account of how got diverges
// from want — the error message of a golden-trace failure. It reports at
// most a handful of differences per step so a real regression stays
// legible.
func DiffRecords(want, got []Record) []string {
	var out []string
	if len(want) != len(got) {
		out = append(out, fmt.Sprintf("step count: want %d, got %d", len(want), len(got)))
	}
	n := len(want)
	if len(got) < n {
		n = len(got)
	}
	for i := 0; i < n; i++ {
		w, g := want[i], got[i]
		step := w.Event.Step
		if w.Event.Selection != g.Event.Selection {
			out = append(out, fmt.Sprintf("step %d selection: want %q, got %q", step, w.Event.Selection, g.Event.Selection))
		}
		if w.Event.GroupSize != g.Event.GroupSize {
			out = append(out, fmt.Sprintf("step %d group size: want %d, got %d", step, w.Event.GroupSize, g.Event.GroupSize))
		}
		if w.Event.ChosenOp != g.Event.ChosenOp {
			out = append(out, fmt.Sprintf("step %d chosen op: want %q, got %q", step, w.Event.ChosenOp, g.Event.ChosenOp))
		}
		out = append(out, diffStrings(step, "map", w.Event.Maps, g.Event.Maps)...)
		out = append(out, diffFloats(step, "utility", w.Event.Utilities, g.Event.Utilities)...)
		out = append(out, diffStrings(step, "map digest", w.MapDigests, g.MapDigests)...)
		out = append(out, diffStrings(step, "recommendation", w.Recommendations, g.Recommendations)...)
	}
	return out
}

func diffStrings(step int, what string, want, got []string) []string {
	var out []string
	if len(want) != len(got) {
		return []string{fmt.Sprintf("step %d %s count: want %d, got %d", step, what, len(want), len(got))}
	}
	for i := range want {
		if want[i] != got[i] {
			out = append(out, fmt.Sprintf("step %d %s[%d]: want %q, got %q", step, what, i, truncate(want[i]), truncate(got[i])))
		}
	}
	return out
}

func diffFloats(step int, what string, want, got []float64) []string {
	var out []string
	if len(want) != len(got) {
		return []string{fmt.Sprintf("step %d %s count: want %d, got %d", step, what, len(want), len(got))}
	}
	for i := range want {
		if want[i] != got[i] {
			out = append(out, fmt.Sprintf("step %d %s[%d]: want %v, got %v", step, what, i, want[i], got[i]))
		}
	}
	return out
}

// truncate keeps long digests readable in failure messages.
func truncate(s string) string {
	const limit = 160
	if len(s) <= limit {
		return s
	}
	return s[:limit] + "…"
}
