package workload

import (
	"bytes"
	"context"
	"math"
	"strings"
	"testing"

	"subdex/internal/core"
	"subdex/internal/obs"
	"subdex/internal/server"
)

// scrapeRegistry registers representative instruments, drives them, and
// round-trips through the Prometheus text encoding.
func scrapeRegistry(t *testing.T) *Scrape {
	t.Helper()
	reg := obs.NewRegistry()
	c := reg.Counter("subdex_test_events_total", "Test events.")
	c.Add(7)
	for _, code := range []string{"200", "409"} {
		cc := reg.Counter("subdex_test_requests_total", "Test requests.", obs.L("code", code))
		cc.Add(3)
	}
	g := reg.Gauge("subdex_test_in_flight_requests", "Test gauge.")
	g.Set(2.5)
	h := reg.Histogram("subdex_test_latency_seconds", "Test latency.",
		[]float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.05, 0.5, 2} {
		h.Observe(v)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseMetrics(&buf)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, buf.String())
	}
	return s
}

// TestScrapeRoundTrip pins the scrape layer against the repo's own
// exposition writer: values, labeled sums, and histogram structure all
// survive the text round trip.
func TestScrapeRoundTrip(t *testing.T) {
	s := scrapeRegistry(t)
	if got := s.Value("subdex_test_events_total", nil); got != 7 {
		t.Errorf("counter: want 7, got %v", got)
	}
	if got := s.Sum("subdex_test_requests_total"); got != 6 {
		t.Errorf("labeled sum: want 6, got %v", got)
	}
	if got := s.SumMatching("subdex_test_requests_total", "code", "409"); got != 3 {
		t.Errorf("SumMatching 409: want 3, got %v", got)
	}
	if got := s.SumMatching("subdex_test_requests_total", "code", "504"); got != 0 {
		t.Errorf("SumMatching absent code: want 0, got %v", got)
	}
	if got := s.Value("subdex_test_in_flight_requests", nil); got != 2.5 {
		t.Errorf("gauge: want 2.5, got %v", got)
	}
	h := s.Histogram("subdex_test_latency_seconds")
	if h == nil {
		t.Fatal("histogram family missing")
	}
	if h.Count != 5 {
		t.Errorf("histogram count: want 5, got %d", h.Count)
	}
	if want := 0.005 + 0.05 + 0.05 + 0.5 + 2; math.Abs(h.Sum-want) > 1e-9 {
		t.Errorf("histogram sum: want %v, got %v", want, h.Sum)
	}
	wantBounds := []float64{0.01, 0.1, 1}
	if len(h.Bounds) != len(wantBounds) {
		t.Fatalf("bounds: want %v, got %v", wantBounds, h.Bounds)
	}
	for i, b := range wantBounds {
		if h.Bounds[i] != b {
			t.Fatalf("bounds: want %v, got %v", wantBounds, h.Bounds)
		}
	}
	// Cumulative counts: ≤0.01:1, ≤0.1:3, ≤1:4, +Inf:5.
	wantCounts := []int64{1, 3, 4, 5}
	for i, c := range wantCounts {
		if h.Counts[i] != c {
			t.Fatalf("cumulative counts: want %v, got %v", wantCounts, h.Counts)
		}
	}
}

// TestQuantile pins the interpolation estimator on known buckets.
func TestQuantile(t *testing.T) {
	h := &HistogramSnapshot{
		Bounds: []float64{0.1, 1},
		Counts: []int64{5, 10, 10}, // 5 in (0,0.1], 5 in (0.1,1], none beyond
		Count:  10,
	}
	if got := h.Quantile(0.5); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("p50: want 0.1, got %v", got)
	}
	// p90 = rank 9 → 4/5 into the (0.1,1] bucket: 0.1 + 0.9*0.8 = 0.82.
	if got := h.Quantile(0.9); math.Abs(got-0.82) > 1e-12 {
		t.Errorf("p90: want 0.82, got %v", got)
	}
	// Observations in +Inf clamp to the largest finite bound.
	clamped := &HistogramSnapshot{Bounds: []float64{0.1}, Counts: []int64{0, 4}, Count: 4}
	if got := clamped.Quantile(0.99); got != 0.1 {
		t.Errorf("+Inf clamp: want 0.1, got %v", got)
	}
	var nilH *HistogramSnapshot
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram: want 0, got %v", got)
	}
}

// TestScrapeDelta pins interval subtraction: counters and histograms
// report the increase, gauges report the current value.
func TestScrapeDelta(t *testing.T) {
	reg := obs.NewRegistry()
	c := reg.Counter("subdex_test_ops_total", "Ops.")
	g := reg.Gauge("subdex_test_level", "Level.")
	h := reg.Histogram("subdex_test_dur_seconds", "Durations.", []float64{1})
	c.Add(10)
	g.Set(4)
	h.Observe(0.5)
	snap := func() *Scrape {
		var buf bytes.Buffer
		if err := reg.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		s, err := ParseMetrics(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	before := snap()
	c.Add(5)
	g.Set(1)
	h.Observe(0.25)
	h.Observe(2)
	d := snap().Delta(before)
	if got := d.Value("subdex_test_ops_total", nil); got != 5 {
		t.Errorf("counter delta: want 5, got %v", got)
	}
	if got := d.Value("subdex_test_level", nil); got != 1 {
		t.Errorf("gauge after delta: want current value 1, got %v", got)
	}
	dh := d.Histogram("subdex_test_dur_seconds")
	if dh == nil || dh.Count != 2 {
		t.Fatalf("histogram delta count: want 2, got %+v", dh)
	}
	if want := 2.25; math.Abs(dh.Sum-want) > 1e-9 {
		t.Errorf("histogram delta sum: want %v, got %v", want, dh.Sum)
	}
	if dh.Counts[0] != 1 { // only the 0.25 observation lands ≤1
		t.Errorf("histogram delta bucket: want 1, got %d", dh.Counts[0])
	}
}

// TestScrapeLabelEscapes pins label-value unescaping against text-format
// escape sequences.
func TestScrapeLabelEscapes(t *testing.T) {
	text := `subdex_test_weird_total{path="a\\b",msg="line\nbreak \"q\""} 3` + "\n"
	s, err := ParseMetrics(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	got := s.Value("subdex_test_weird_total",
		map[string]string{"path": `a\b`, "msg": "line\nbreak \"q\""})
	if got != 3 {
		t.Errorf("escaped labels: want 3, got %v", got)
	}
	if got := s.Sum("subdex_test_weird_total"); got != 3 {
		t.Errorf("escaped sum: want 3, got %v", got)
	}
}

// TestFetchMetricsLive scrapes a live server's /metrics after a short
// walk and checks the step-latency histogram is populated — the exact
// signal sdeload's SLO assertions read.
func TestFetchMetricsLive(t *testing.T) {
	ctx := context.Background()
	_, ts := demoServer(t, server.Options{})
	res, err := Run(ctx, Config{Users: 2, Seed: 5, StepsPerUser: 3},
		HTTPFactory(ts.URL, nil, core.RecommendationPowered, ""))
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Fatal("walk executed no steps")
	}
	s, err := FetchMetrics(ctx, nil, ts.URL+"/metrics")
	if err != nil {
		t.Fatal(err)
	}
	h := s.Histogram("subdex_step_duration_seconds")
	if h == nil || h.Count == 0 {
		t.Fatalf("step-latency histogram empty after %d steps", res.Steps)
	}
	if int(h.Count) < res.Steps {
		t.Errorf("histogram count %d < steps %d", h.Count, res.Steps)
	}
	if q := h.Quantile(0.95); q < 0 {
		t.Errorf("p95 negative: %v", q)
	}
	if got := s.Sum("subdex_steps_total"); int(got) < res.Steps {
		t.Errorf("steps_total %v < runner steps %d", got, res.Steps)
	}
}
