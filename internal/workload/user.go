package workload

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"subdex/internal/dataset"
	"subdex/internal/obs"
)

// Mix weighs the operations a virtual user picks from after reading a
// step display. Weights are relative; operations that are unavailable in
// the current state (no recommendations, empty back history, not enough
// step budget for an auto-pilot run) drop out of the draw and the rest
// renormalize. All weights zero (or nothing available) ends the walk.
type Mix struct {
	// Recommend follows a uniformly chosen displayed recommendation.
	Recommend float64
	// Drill filters into a uniformly chosen bar of a displayed map (the
	// user-provided operation path, exercising the predicate parser).
	Drill float64
	// Back returns to the previously visited selection.
	Back float64
	// Auto hands control to the auto-pilot for AutoLen steps.
	Auto float64
}

// DefaultMix mirrors how the paper's interactive demo is driven: mostly
// recommendation-following with occasional manual drills, backs, and
// auto-pilot bursts.
func DefaultMix() Mix {
	return Mix{Recommend: 0.55, Drill: 0.25, Back: 0.15, Auto: 0.05}
}

// ParseMix parses "recommend=0.5,drill=0.3,back=0.2,auto=0" (any subset;
// omitted ops weigh zero). The empty string yields DefaultMix.
func ParseMix(s string) (Mix, error) {
	if strings.TrimSpace(s) == "" {
		return DefaultMix(), nil
	}
	var m Mix
	for _, part := range strings.Split(s, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return Mix{}, fmt.Errorf("workload: bad mix component %q (want op=weight)", part)
		}
		var w float64
		if _, err := fmt.Sscanf(kv[1], "%g", &w); err != nil || w < 0 {
			return Mix{}, fmt.Errorf("workload: bad mix weight %q", kv[1])
		}
		switch strings.ToLower(kv[0]) {
		case "recommend":
			m.Recommend = w
		case "drill":
			m.Drill = w
		case "back":
			m.Back = w
		case "auto":
			m.Auto = w
		default:
			return Mix{}, fmt.Errorf("workload: unknown mix op %q", kv[0])
		}
	}
	if m.Recommend+m.Drill+m.Back+m.Auto <= 0 {
		return Mix{}, errors.New("workload: mix weighs zero everywhere")
	}
	return m, nil
}

// ErrorCounts tallies the recoverable failure classes a closed-loop user
// can observe, matching the server's status-code taxonomy.
type ErrorCounts struct {
	// Busy counts 409 session-busy rejections.
	Busy int
	// Admission counts 429 admission-cap rejections.
	Admission int
	// Timeout counts pre-phase deadline failures (504, or the context
	// deadline in-process).
	Timeout int
	// Other counts everything else (terminal for the user).
	Other int
}

// Total sums every class.
func (e ErrorCounts) Total() int { return e.Busy + e.Admission + e.Timeout + e.Other }

func (e *ErrorCounts) add(o ErrorCounts) {
	e.Busy += o.Busy
	e.Admission += o.Admission
	e.Timeout += o.Timeout
	e.Other += o.Other
}

// errClass buckets a client error into the ErrorCounts taxonomy.
type errClass int

const (
	errBusy errClass = iota
	errAdmission
	errTimeout
	errOther
)

// classify buckets a client error. Context-cancellation classification is
// the caller's job (a soak deadline is a clean stop, not an error).
func classify(err error) errClass {
	var se *StatusError
	if errors.As(err, &se) {
		switch se.Code {
		case 409:
			return errBusy
		case 429:
			return errAdmission
		case 504:
			return errTimeout
		}
		return errOther
	}
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return errTimeout
	}
	return errOther
}

// opKind enumerates the user's operation repertoire.
type opKind int

const (
	opRecommend opKind = iota
	opDrill
	opBack
	opAuto
)

// user is one closed-loop virtual explorer. Its two RNG streams are
// deliberately separate: ops drives every path decision, think only the
// pacing — so changing the think-time configuration can never perturb
// which path a seed produces.
type user struct {
	id      int
	steps   int
	mix     Mix
	autoLen int
	guided  bool
	think   time.Duration
	record  bool
	ops     *rand.Rand
	thinkRN *rand.Rand
	// base is the user's seed base; trace IDs derive from it (see opCtx).
	base int64
	// traceSeq numbers the user's step-producing calls for ID derivation.
	traceSeq uint64
	// flight, when non-nil, receives one client-side wide event per
	// step-producing call.
	flight *obs.FlightRecorder
	// exemplarK keeps the K slowest calls as exemplars (0 disables).
	exemplarK int
}

// opCtx derives the next step-producing call's deterministic trace ID
// from (seed base, user, call sequence) and installs it in the context.
// Derivation consumes no RNG draws, so tracing can never perturb which
// path a seed produces.
func (u *user) opCtx(ctx context.Context) (context.Context, string) {
	u.traceSeq++
	tid := obs.DeriveTraceID(uint64(u.base), uint64(u.id), u.traceSeq)
	return obs.WithTraceID(ctx, tid), string(tid)
}

// telemetry records one completed step-producing call: a wide event into
// the flight recorder (when wired) and a slow-call exemplar.
func (u *user) telemetry(res *UserResult, op, tid string, dur time.Duration, degraded bool, profile *StepView) {
	durMS := float64(dur.Microseconds()) / 1000
	if u.flight != nil {
		u.flight.Record(obs.NewWideEvent().
			Set("op", op).
			Set("user", u.id).
			Set("step", res.Steps).
			Set("trace_id", tid).
			Set("duration_ms", durMS).
			Set("degraded", degraded))
	}
	if u.exemplarK > 0 {
		ex := Exemplar{User: u.id, Step: res.Steps, Op: op,
			DurationMS: durMS, TraceID: tid, Degraded: degraded}
		if profile != nil {
			ex.Profile = profile.Profile
		}
		res.Exemplars = insertExemplar(res.Exemplars, ex, u.exemplarK)
	}
}

// UserResult is what one virtual user's walk produced.
type UserResult struct {
	// ID is the user's index within the population.
	ID int
	// Steps counts executed step displays, including auto-pilot steps.
	Steps int
	// Degraded counts steps returned as anytime (deadline-cut) results.
	Degraded int
	// Errors tallies recoverable failures observed by this user.
	Errors ErrorCounts
	// Failure is the terminal error that ended the walk early ("" for a
	// clean finish or a soak-deadline stop).
	Failure string
	// Records is the golden-trace record sequence (when recording).
	Records []Record
	// Summary is the session's final path summary (nil if the session
	// never became usable).
	Summary *SummaryView
	// Exemplars are the user's slowest step calls (when configured),
	// sorted by descending duration.
	Exemplars []Exemplar
}

// run executes the closed loop until the step budget is exhausted, the
// context ends, or a terminal error occurs.
func (u *user) run(ctx context.Context, c Client) *UserResult {
	res := &UserResult{ID: u.id}
	hist := 0 // Back-history depth, mirrored from the ops we issue.
loop:
	for attempts := 0; res.Steps < u.steps && attempts < 2*u.steps+8; attempts++ {
		if ctx.Err() != nil {
			break
		}
		stepCtx, tid := u.opCtx(ctx)
		stepStart := time.Now()
		sv, err := c.Step(stepCtx)
		if err != nil {
			if ctx.Err() != nil {
				break // soak deadline: clean stop
			}
			if u.fail(res, err) {
				break
			}
			u.pause(ctx)
			continue
		}
		u.note(res, sv, "")
		u.telemetry(res, "step", tid, time.Since(stepStart), sv.Degraded, sv)
		if res.Steps >= u.steps {
			break
		}
		kind, ok := u.choose(sv, hist, u.steps-res.Steps)
		if !ok {
			break // nothing playable: dead-end state
		}
		switch kind {
		case opRecommend:
			i := u.ops.Intn(len(sv.Recommendations))
			u.label(res, fmt.Sprintf("recommend:%d", i))
			if err := c.ApplyRecommendation(ctx, i); err != nil && u.fail(res, err) {
				break loop
			}
			hist++
		case opDrill:
			pairs := drillPairs(sv)
			p := pairs[u.ops.Intn(len(pairs))]
			pred := andPredicate(sv.Selection, p)
			u.label(res, "drill:"+p)
			if err := c.Apply(ctx, pred); err != nil && u.fail(res, err) {
				break loop
			}
			hist++
		case opBack:
			u.label(res, "back")
			moved, err := c.Back(ctx)
			if err != nil && u.fail(res, err) {
				break loop
			}
			if moved {
				hist--
			}
		case opAuto:
			m := u.autoLen
			if rem := u.steps - res.Steps; m > rem {
				m = rem
			}
			u.label(res, fmt.Sprintf("auto:%d", m))
			autoCtx, autoTID := u.opCtx(ctx)
			autoStart := time.Now()
			views, err := c.Auto(autoCtx, m)
			anyDegraded := false
			for i, av := range views {
				op := ""
				if i < len(views)-1 {
					op = "auto:recommend:0"
				}
				u.note(res, av, op)
				anyDegraded = anyDegraded || av.Degraded
			}
			if len(views) > 0 {
				// One exemplar per burst: the burst's wall time under one
				// trace ID, profiled by its last step.
				u.telemetry(res, "auto", autoTID, time.Since(autoStart),
					anyDegraded, views[len(views)-1])
			}
			if len(views) > 1 {
				hist += len(views) - 1
			}
			if err != nil {
				if ctx.Err() != nil {
					break loop // soak deadline mid-walk: clean stop
				}
				if u.fail(res, err) {
					break loop
				}
			}
		}
		u.pause(ctx)
	}
	return u.finish(ctx, c, res)
}

// finish attaches the session summary (best effort under a live context).
func (u *user) finish(ctx context.Context, c Client, res *UserResult) *UserResult {
	if sum, err := c.Summary(ctx); err == nil {
		res.Summary = sum
	}
	return res
}

// note records one executed step display.
func (u *user) note(res *UserResult, sv *StepView, op string) {
	res.Steps++
	if sv.Degraded {
		res.Degraded++
	}
	if u.record {
		res.Records = append(res.Records, NewRecord(res.Steps, sv, op))
	}
}

// label annotates the latest record with the operation chosen after it.
func (u *user) label(res *UserResult, op string) {
	if u.record && len(res.Records) > 0 {
		res.Records[len(res.Records)-1].Event.ChosenOp = op
	}
}

// fail classifies an operation error; it reports true when the error is
// terminal for this user.
func (u *user) fail(res *UserResult, err error) bool {
	switch classify(err) {
	case errBusy:
		res.Errors.Busy++
	case errAdmission:
		res.Errors.Admission++
	case errTimeout:
		res.Errors.Timeout++
	default:
		res.Errors.Other++
		res.Failure = err.Error()
		return true
	}
	return false
}

// choose draws the next operation from the mix, restricted to what the
// current state supports. The draw consumes exactly one Float64 from the
// ops stream (plus the per-op index draws in run), keeping paths
// reproducible across modes.
func (u *user) choose(sv *StepView, hist, remaining int) (opKind, bool) {
	type cand struct {
		k opKind
		w float64
	}
	var cands []cand
	if u.guided && u.mix.Recommend > 0 && len(sv.Recommendations) > 0 {
		cands = append(cands, cand{opRecommend, u.mix.Recommend})
	}
	if u.mix.Drill > 0 && len(drillPairs(sv)) > 0 {
		cands = append(cands, cand{opDrill, u.mix.Drill})
	}
	if u.mix.Back > 0 && hist > 0 {
		cands = append(cands, cand{opBack, u.mix.Back})
	}
	if u.guided && u.mix.Auto > 0 && len(sv.Recommendations) > 0 && remaining >= 2 {
		cands = append(cands, cand{opAuto, u.mix.Auto})
	}
	total := 0.0
	for _, c := range cands {
		total += c.w
	}
	if total <= 0 {
		return 0, false
	}
	r := u.ops.Float64() * total
	for _, c := range cands {
		if r < c.w {
			return c.k, true
		}
		r -= c.w
	}
	return cands[len(cands)-1].k, true
}

// pause sleeps one think-time draw (exponential around the configured
// mean, capped at 4×), honoring context cancellation. With no think time
// configured it neither sleeps nor draws.
func (u *user) pause(ctx context.Context) {
	if u.think <= 0 {
		return
	}
	d := time.Duration(u.thinkRN.ExpFloat64() * float64(u.think))
	if limit := 4 * u.think; d > limit {
		d = limit
	}
	sleepCtx(ctx, d)
}

// sleepCtx sleeps d or until the context ends, reporting whether the full
// duration elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// drillPairs lists the drillable (attribute, value) pairs of a display:
// every bar of every map whose label is a real value. Displayed maps
// always group by attributes unbound in the current selection (that is
// how candidates are enumerated), so each pair yields a valid filter.
func drillPairs(sv *StepView) []string {
	var out []string
	for _, m := range sv.Maps {
		for _, bar := range m.Bars {
			if bar == dataset.MissingLabel {
				continue
			}
			out = append(out, selectorString(m.GroupBy, bar))
		}
	}
	return out
}

// selectorString renders "side.attr='value'" with the same quote
// selection as query.Selector.String, so the predicate re-parses to the
// intended selector.
func selectorString(groupBy, value string) string {
	q := "'"
	if strings.ContainsRune(value, '\'') && !strings.ContainsRune(value, '"') {
		q = `"`
	}
	return groupBy + "=" + q + value + q
}

// andPredicate conjoins a drill selector onto the current selection.
func andPredicate(selection, selector string) string {
	if selection == "" || selection == "TRUE" {
		return selector
	}
	return selection + " AND " + selector
}
