package workload

import (
	"context"
	"fmt"
	"strconv"

	"subdex/internal/core"
)

// InprocClient drives a core.Session directly — the in-process arm of the
// workload harness. It produces the same StepView normal form as the HTTP
// client, which is what makes the two modes byte-comparable.
type InprocClient struct {
	ex   *core.Explorer
	sess *core.Session
}

// NewInprocClient opens a session on the explorer in the given mode,
// optionally starting at a predicate ("" starts from the whole database,
// exactly like an empty predicate on POST /sessions).
func NewInprocClient(ex *core.Explorer, mode core.Mode, predicate string) (*InprocClient, error) {
	desc, err := ex.ParseDescription(orTrue(predicate))
	if err != nil {
		return nil, err
	}
	sess, err := core.NewSession(ex, mode, desc)
	if err != nil {
		return nil, err
	}
	return &InprocClient{ex: ex, sess: sess}, nil
}

// orTrue maps the empty predicate to the parser's whole-database literal.
func orTrue(predicate string) string {
	if predicate == "" {
		return "TRUE"
	}
	return predicate
}

// Session exposes the underlying session, e.g. for trace recording.
func (c *InprocClient) Session() *core.Session { return c.sess }

// Step implements Client.
func (c *InprocClient) Step(ctx context.Context) (*StepView, error) {
	st, err := c.sess.StepCtx(ctx)
	if err != nil {
		return nil, err
	}
	return c.view(st), nil
}

// Apply implements Client.
func (c *InprocClient) Apply(_ context.Context, predicate string) error {
	d, err := c.ex.ParseDescription(predicate)
	if err != nil {
		return err
	}
	return c.sess.ApplyDescription(d)
}

// ApplyRecommendation implements Client.
func (c *InprocClient) ApplyRecommendation(_ context.Context, i int) error {
	return c.sess.ApplyRecommendation(i)
}

// Back implements Client.
func (c *InprocClient) Back(_ context.Context) (bool, error) {
	return c.sess.Back(), nil
}

// Auto implements Client via Session.AutoCtx: on a mid-walk failure the
// completed prefix is returned together with the error, matching the
// anytime semantics the HTTP client emulates.
func (c *InprocClient) Auto(ctx context.Context, m int) ([]*StepView, error) {
	steps, err := c.sess.AutoCtx(ctx, m)
	views := make([]*StepView, 0, len(steps))
	for _, st := range steps {
		views = append(views, c.view(st))
	}
	return views, err
}

// Summary implements Client.
func (c *InprocClient) Summary(_ context.Context) (*SummaryView, error) {
	sum := c.sess.Summarize()
	sv := &SummaryView{
		Steps:              sum.Steps,
		TotalUtility:       sum.TotalUtility,
		DistinctAttributes: sum.DistinctAttributes,
		AvgDiversity:       sum.AvgDiversity,
		MapsPerDimension:   make(map[string]int, len(sum.MapsPerDimension)),
	}
	// Stringify dimension indices the way encoding/json renders the
	// server's map[int]int, so both modes summarize identically.
	for dim, n := range sum.MapsPerDimension {
		sv.MapsPerDimension[strconv.Itoa(dim)] = n
	}
	return sv, nil
}

// Close implements Client. In-process sessions have no server-side state
// to release.
func (c *InprocClient) Close(_ context.Context) error { return nil }

// view normalizes a StepResult into the shared StepView form, mirroring
// the server's stepJSON field by field.
func (c *InprocClient) view(st *core.StepResult) *StepView {
	sv := &StepView{
		Selection:        st.Desc.String(),
		GroupSize:        st.GroupSize,
		Degraded:         st.Degraded,
		RecordsProcessed: st.RecordsProcessed,
		TraceID:          st.TraceID,
		Profile:          st.Profile,
	}
	for i, rm := range st.Maps {
		mv := MapView{
			GroupBy:   fmt.Sprintf("%s.%s", rm.Side, rm.Attr),
			Dimension: rm.DimName,
			Utility:   st.Utilities[i],
			Digest:    rm.Digest(),
		}
		dict := c.ex.DictFor(rm)
		for j := range rm.Subgroups {
			mv.Bars = append(mv.Bars, dict.Value(rm.Subgroups[j].Value))
		}
		sv.Maps = append(sv.Maps, mv)
	}
	for _, rec := range st.Recommendations {
		sv.Recommendations = append(sv.Recommendations, RecView{
			Operation: rec.Op.String(),
			Target:    rec.Op.Target.String(),
			Utility:   rec.Utility,
		})
	}
	return sv
}
