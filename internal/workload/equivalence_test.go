package workload

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"reflect"
	"testing"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/server"
)

// demoDB builds the demo dataset at test scale, fresh per call so the
// two arms of an equivalence test share no state at all.
func demoDB(t *testing.T) *dataset.DB {
	t.Helper()
	db, err := gen.Demo(gen.Config{Seed: 1, Scale: 1})
	if err != nil {
		t.Fatalf("demo dataset: %v", err)
	}
	return db
}

// demoServer starts an httptest server over a fresh demo explorer.
func demoServer(t *testing.T, opts server.Options) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.NewWithOptions(demoDB(t), core.Config{}, opts)
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close)
	return srv, ts
}

// runPopulation executes one recording population and fails on any
// terminal error.
func runPopulation(t *testing.T, cfg Config, factory ClientFactory) *Result {
	t.Helper()
	res, err := Run(context.Background(), cfg, factory)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if fails := res.Failures(); len(fails) != 0 {
		t.Fatalf("population had terminal failures: %v", fails)
	}
	if res.Errors.Total() != 0 {
		t.Fatalf("population observed errors: %+v", res.Errors)
	}
	return res
}

// compareUsers asserts each user's recorded walk is byte-identical
// across the two arms and their summaries are equal.
func compareUsers(t *testing.T, inproc, http *Result) {
	t.Helper()
	if len(inproc.Users) != len(http.Users) {
		t.Fatalf("population size: inproc %d, http %d", len(inproc.Users), len(http.Users))
	}
	for i := range inproc.Users {
		a, b := inproc.Users[i], http.Users[i]
		if a.Steps == 0 {
			t.Errorf("user %d: inproc walk executed no steps", i)
			continue
		}
		ab, err := MarshalGolden(a.Records)
		if err != nil {
			t.Fatalf("user %d: marshal inproc: %v", i, err)
		}
		bb, err := MarshalGolden(b.Records)
		if err != nil {
			t.Fatalf("user %d: marshal http: %v", i, err)
		}
		if !bytes.Equal(ab, bb) {
			diffs := DiffRecords(a.Records, b.Records)
			if len(diffs) > 12 {
				diffs = append(diffs[:12], fmt.Sprintf("... and %d more", len(diffs)-12))
			}
			t.Errorf("user %d: traces diverge between modes:\n  inproc=%d bytes http=%d bytes\n  %s",
				i, len(ab), len(bb), diffs)
			continue
		}
		if a.Summary == nil || b.Summary == nil {
			t.Errorf("user %d: missing summary (inproc=%v http=%v)", i, a.Summary != nil, b.Summary != nil)
			continue
		}
		if !reflect.DeepEqual(a.Summary, b.Summary) {
			t.Errorf("user %d: summaries diverge:\n  inproc=%+v\n  http=%+v", i, a.Summary, b.Summary)
		}
	}
}

// TestEquivalenceSingleUser drives the same seeded walk once in-process
// and once over the HTTP API and requires byte-identical golden records
// (including every per-step map digest) and identical path summaries.
func TestEquivalenceSingleUser(t *testing.T) {
	ex, err := core.NewExplorer(demoDB(t), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Users: 1, Seed: 7, Record: true}
	inproc := runPopulation(t, cfg, InprocFactory(ex, core.RecommendationPowered, ""))
	_, ts := demoServer(t, server.Options{})
	http := runPopulation(t, cfg, HTTPFactory(ts.URL, nil, core.RecommendationPowered, ""))
	compareUsers(t, inproc, http)
}

// TestEquivalenceModesAndPredicates sweeps modes and a starting
// predicate. User-driven sessions have no recommendations, so the walk
// exercises the drill/back arms only — still byte-comparable.
func TestEquivalenceModesAndPredicates(t *testing.T) {
	cases := []struct {
		name      string
		mode      core.Mode
		predicate string
	}{
		{"user_driven", core.UserDriven, ""},
		{"fully_automated", core.FullyAutomated, ""},
		{"predicate_start", core.RecommendationPowered, "items.roast='dark'"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			ex, err := core.NewExplorer(demoDB(t), core.Config{})
			if err != nil {
				t.Fatal(err)
			}
			cfg := Config{Users: 2, Seed: 21, StepsPerUser: 5, Record: true}
			inproc := runPopulation(t, cfg, InprocFactory(ex, tc.mode, tc.predicate))
			_, ts := demoServer(t, server.Options{})
			http := runPopulation(t, cfg, HTTPFactory(ts.URL, nil, tc.mode, tc.predicate))
			compareUsers(t, inproc, http)
		})
	}
}

// TestEquivalenceConcurrent32 runs 32 concurrent simulated users in both
// modes and requires every user's walk to be byte-identical across them.
// All 32 in-process sessions share one explorer (and so its caches);
// the 32 HTTP sessions share the server's explorer — the test therefore
// also re-proves that cache sharing and goroutine interleaving never
// perturb a seeded path. CI runs this package under -race.
func TestEquivalenceConcurrent32(t *testing.T) {
	ex, err := core.NewExplorer(demoDB(t), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Users: 32, Seed: 3, StepsPerUser: 4, Record: true}
	inproc := runPopulation(t, cfg, InprocFactory(ex, core.RecommendationPowered, ""))
	_, ts := demoServer(t, server.Options{})
	http := runPopulation(t, cfg, HTTPFactory(ts.URL, nil, core.RecommendationPowered, ""))
	if got := len(http.Users); got != 32 {
		t.Fatalf("expected 32 users, got %d", got)
	}
	if inproc.Steps == 0 || http.Steps != inproc.Steps {
		t.Fatalf("step totals diverge: inproc %d, http %d", inproc.Steps, http.Steps)
	}
	compareUsers(t, inproc, http)
}

// TestHTTPBackEmptyHistory pins the 409 "history empty" mapping: Back on
// a fresh session reports (false, nil) in both modes rather than an
// error, so mixed walks never terminate on a legal no-op.
func TestHTTPBackEmptyHistory(t *testing.T) {
	ctx := context.Background()
	_, ts := demoServer(t, server.Options{})
	hc, err := NewHTTPClient(ctx, ts.URL, nil, "rp", "")
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close(ctx)
	if _, err := hc.Step(ctx); err != nil {
		t.Fatal(err)
	}
	moved, err := hc.Back(ctx)
	if err != nil {
		t.Fatalf("Back on empty history: %v", err)
	}
	if moved {
		t.Fatal("Back on empty history reported movement")
	}
}

// TestHTTPAdmissionClassified pins the 429 admission path: a population
// larger than the session cap ends with Admission-classified errors,
// never terminal failures.
func TestHTTPAdmissionClassified(t *testing.T) {
	_, ts := demoServer(t, server.Options{MaxSessions: 2})
	res, err := Run(context.Background(),
		Config{Users: 5, Seed: 9, StepsPerUser: 2},
		HTTPFactory(ts.URL, nil, core.RecommendationPowered, ""))
	if err != nil {
		t.Fatal(err)
	}
	if fails := res.Failures(); len(fails) != 0 {
		t.Fatalf("admission rejections must not be terminal: %v", fails)
	}
	if res.Errors.Admission == 0 {
		t.Fatalf("expected 429 admission rejections, got %+v", res.Errors)
	}
}
