// Package workload implements a seeded, fully deterministic simulated-
// explorer population for load, soak, and regression testing of the SDE
// engine. Each virtual user is a closed-loop client: it requests a step
// display, "reads" it for a think time drawn from its private RNG, picks
// the next operation from a configurable mix (follow a recommendation,
// drill into a displayed bar, go back, or hand control to the auto-pilot),
// and repeats.
//
// Users drive the engine through the Client interface, which has two
// implementations: InprocClient wraps a core.Session directly, and
// HTTPClient speaks the internal/server JSON API. A user's decisions
// depend only on its seed and on the content of the step displays it has
// seen — both clients normalize displays into the same StepView — so the
// same seed produces the same session path in both modes, byte for byte.
// That equivalence is what the golden-trace suite (golden.go,
// testdata/golden) and the in-process-vs-HTTP tests pin.
package workload

import (
	"context"
	"fmt"
	"strings"

	"subdex/internal/core"
)

// StepView is the mode-independent normal form of one step display. The
// in-process client derives it from core.StepResult, the HTTP client from
// the server's StepJSON; for the same session state both derivations are
// field-for-field identical.
type StepView struct {
	// Selection is the canonical predicate of the displayed rating group.
	Selection string
	// GroupSize is the number of rating records in the group.
	GroupSize int
	// Maps are the displayed rating maps in display (utility) order.
	Maps []MapView
	// Recommendations are the ranked next-step operations (guided modes).
	Recommendations []RecView
	// Degraded marks an anytime result cut short by a step deadline.
	Degraded bool
	// RecordsProcessed counts the records the engine folded in.
	RecordsProcessed int
	// TraceID is the correlation ID the step ran under. Both clients
	// surface the same ID for the same step (the HTTP client propagates it
	// via traceparent), but it stays out of golden records: goldens
	// compare runs, and different runs legitimately carry different IDs.
	TraceID string
	// Profile is the step's EXPLAIN record (the HTTP client requests it
	// with ?explain=1 on every step).
	Profile *core.StepProfile
}

// MapView is one displayed rating map.
type MapView struct {
	// GroupBy is the grouping attribute as "side.attr".
	GroupBy string
	// Dimension is the aggregated rating dimension's name.
	Dimension string
	// Utility is the map's dimension-weighted utility.
	Utility float64
	// Digest is the canonical byte-stable content fingerprint
	// (ratingmap.Digest): two maps digest equally iff their accumulated
	// counts are identical.
	Digest string
	// Bars lists the subgroup value labels in display order.
	Bars []string
}

// RecView is one ranked next-step recommendation.
type RecView struct {
	// Operation is the human-readable operation delta.
	Operation string
	// Target is the canonical predicate the operation moves to.
	Target string
	// Utility is the operation's Equation 2 utility.
	Utility float64
}

// SummaryView is the mode-independent form of a session's path summary.
type SummaryView struct {
	Steps              int            `json:"steps"`
	TotalUtility       float64        `json:"total_utility"`
	DistinctAttributes int            `json:"distinct_attributes"`
	AvgDiversity       float64        `json:"avg_diversity"`
	MapsPerDimension   map[string]int `json:"maps_per_dimension"`
}

// Digest renders the step's content fingerprint: the per-map digests
// joined exactly as ratingmap.DigestMaps does, so an in-process step and
// its HTTP rendering digest identically iff they display the same maps
// with the same accumulated counts.
func (sv *StepView) Digest() string {
	var b strings.Builder
	for _, m := range sv.Maps {
		b.WriteString(m.Digest)
		b.WriteByte('\n')
	}
	return b.String()
}

// Client is one exploration session as a virtual user drives it. Both
// implementations are single-session and not safe for concurrent use —
// a closed-loop user issues one operation at a time, matching the
// paper's one-step-at-a-time UI.
type Client interface {
	// Step executes one exploration step at the current selection.
	Step(ctx context.Context) (*StepView, error)
	// Apply moves the session to an explicit predicate (the user-provided
	// operation path).
	Apply(ctx context.Context, predicate string) error
	// ApplyRecommendation follows the i-th (0-based) recommendation of
	// the latest step.
	ApplyRecommendation(ctx context.Context, i int) error
	// Back returns to the previously visited selection, reporting false
	// when the history is empty.
	Back(ctx context.Context) (bool, error)
	// Auto runs the auto-pilot for up to m steps (step, follow top-1,
	// repeat), returning the executed steps. On a mid-walk failure it
	// returns the completed prefix together with the error.
	Auto(ctx context.Context, m int) ([]*StepView, error)
	// Summary returns the session's path summary so far.
	Summary(ctx context.Context) (*SummaryView, error)
	// Close releases the session.
	Close(ctx context.Context) error
}

// StatusError is a non-2xx response from the HTTP API, carried with its
// status code so the workload can tell admission rejections (429), busy
// sessions (409), and pre-phase deadline failures (504) apart from real
// errors. The in-process client never returns it.
type StatusError struct {
	Code int
	Msg  string
}

// Error renders the status code and the server's error message.
func (e *StatusError) Error() string {
	return fmt.Sprintf("http %d: %s", e.Code, e.Msg)
}
