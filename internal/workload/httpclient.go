package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"subdex/internal/obs"
	"subdex/internal/server"
)

// Retry configures transport-level retries for an HTTPClient. Retries
// fire only on errors the server never answered (connection refused or
// reset — e.g. across a crash and restart), never on HTTP status errors
// or context cancellation. Every retried mutating request carries the
// same op id, so a server that already committed the op before the
// connection died answers idempotently from state instead of re-applying
// — the client half of exactly-once step semantics.
type Retry struct {
	// Attempts is the number of retries after the first try (0 = off).
	Attempts int
	// Backoff is the wait before the first retry, doubling each retry
	// and capped at 2s (0 with Attempts > 0 selects 100ms).
	Backoff time.Duration
}

// HTTPClient drives one exploration session over the internal/server JSON
// API — the live-wire arm of the workload harness. It normalizes the
// server's StepJSON into the same StepView form the in-process client
// produces, including the per-map content digests the server emits, so an
// HTTP-driven walk is byte-comparable to an in-process one.
type HTTPClient struct {
	base  string
	hc    *http.Client
	id    int
	retry Retry
	// opSeq numbers this client's mutating requests; with the session id
	// it forms the deterministic op id retries are deduplicated by.
	opSeq int
}

// NewHTTPClient creates a session via POST /sessions. base is the server
// root (e.g. an httptest.Server URL), mode one of "ud", "rp", "fa", and
// predicate the optional starting selection. A 429 admission rejection
// surfaces as a *StatusError.
func NewHTTPClient(ctx context.Context, base string, hc *http.Client, mode, predicate string) (*HTTPClient, error) {
	return NewHTTPClientRetry(ctx, base, hc, mode, predicate, Retry{})
}

// NewHTTPClientRetry is NewHTTPClient with a transport retry policy, for
// workloads that must survive a server restart mid-run (the kill-and-
// resume soak). A crashed-and-recovered server resumes the session
// exactly, so a retried walk stays on the deterministic path.
func NewHTTPClientRetry(ctx context.Context, base string, hc *http.Client, mode, predicate string, retry Retry) (*HTTPClient, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	if retry.Attempts > 0 && retry.Backoff <= 0 {
		retry.Backoff = 100 * time.Millisecond
	}
	c := &HTTPClient{base: strings.TrimRight(base, "/"), hc: hc, retry: retry}
	var created struct {
		ID int `json:"id"`
	}
	err := c.do(ctx, http.MethodPost, "/sessions",
		map[string]string{"mode": mode, "predicate": predicate}, &created)
	if err != nil {
		return nil, err
	}
	c.id = created.ID
	return c, nil
}

// nextOpID mints the deterministic idempotency tag of the next mutating
// request. Op ids consume no randomness, so enabling retries never
// perturbs a seeded walk.
func (c *HTTPClient) nextOpID() string {
	c.opSeq++
	return fmt.Sprintf("%d-%d", c.id, c.opSeq)
}

// SessionID returns the server-assigned session id.
func (c *HTTPClient) SessionID() int { return c.id }

// Step implements Client. It always requests the EXPLAIN profile: the
// extra payload is a few hundred bytes, and the workload harness needs it
// to record slow-step exemplars.
func (c *HTTPClient) Step(ctx context.Context) (*StepView, error) {
	var sj server.StepJSON
	path := c.path("step") + "?explain=1"
	if c.retry.Attempts > 0 {
		path += "&opid=" + c.nextOpID()
	}
	if err := c.do(ctx, http.MethodGet, path, nil, &sj); err != nil {
		return nil, err
	}
	return viewFromJSON(&sj), nil
}

// applyBody builds an apply payload, tagged with an op id when retries
// are on.
func (c *HTTPClient) applyBody(kv map[string]any) map[string]any {
	if c.retry.Attempts > 0 {
		kv["op_id"] = c.nextOpID()
	}
	return kv
}

// Apply implements Client.
func (c *HTTPClient) Apply(ctx context.Context, predicate string) error {
	return c.do(ctx, http.MethodPost, c.path("apply"), c.applyBody(map[string]any{"predicate": predicate}), nil)
}

// ApplyRecommendation implements Client. The wire index is 1-based.
func (c *HTTPClient) ApplyRecommendation(ctx context.Context, i int) error {
	return c.do(ctx, http.MethodPost, c.path("apply"), c.applyBody(map[string]any{"recommendation": i + 1}), nil)
}

// Back implements Client. The server answers an empty history with 409;
// that outcome maps to (false, nil), matching Session.Back.
func (c *HTTPClient) Back(ctx context.Context) (bool, error) {
	err := c.do(ctx, http.MethodPost, c.path("apply"), c.applyBody(map[string]any{"back": true}), nil)
	if se, ok := err.(*StatusError); ok && se.Code == http.StatusConflict &&
		strings.Contains(se.Msg, "history empty") {
		return false, nil
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// Auto implements Client by emulating Session.AutoCtx over the wire with
// the exact same loop: step, stop after m steps or when no recommendation
// is available, otherwise follow the top-1 recommendation. On a mid-walk
// failure the completed prefix is returned together with the error.
func (c *HTTPClient) Auto(ctx context.Context, m int) ([]*StepView, error) {
	var out []*StepView
	for i := 0; i < m; i++ {
		sv, err := c.Step(ctx)
		if err != nil {
			return out, err
		}
		out = append(out, sv)
		if i == m-1 {
			break
		}
		if len(sv.Recommendations) == 0 {
			break
		}
		if err := c.ApplyRecommendation(ctx, 0); err != nil {
			return out, err
		}
	}
	return out, nil
}

// Summary implements Client.
func (c *HTTPClient) Summary(ctx context.Context) (*SummaryView, error) {
	var sv SummaryView
	if err := c.do(ctx, http.MethodGet, c.path("summary"), nil, &sv); err != nil {
		return nil, err
	}
	if sv.MapsPerDimension == nil {
		sv.MapsPerDimension = map[string]int{}
	}
	return &sv, nil
}

// Close implements Client by deleting the server-side session.
func (c *HTTPClient) Close(ctx context.Context) error {
	return c.do(ctx, http.MethodDelete, fmt.Sprintf("/sessions/%d", c.id), nil, nil)
}

func (c *HTTPClient) path(action string) string {
	return fmt.Sprintf("/sessions/%d/%s", c.id, action)
}

// do issues one request, retrying transport-level failures per the
// client's Retry policy (HTTP status errors and context expiry never
// retry), and decodes the JSON response into out (when non-nil). Non-2xx
// responses return a *StatusError carrying the server's error message.
func (c *HTTPClient) do(ctx context.Context, method, path string, body, out any) error {
	backoff := c.retry.Backoff
	const maxBackoff = 2 * time.Second
	for attempt := 0; ; attempt++ {
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		var se *StatusError
		if errors.As(err, &se) {
			return err // the server answered; this is not a transport failure
		}
		if ctx.Err() != nil || attempt >= c.retry.Attempts {
			return err
		}
		if !sleepCtx(ctx, backoff) {
			return err
		}
		backoff *= 2
		if backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// doOnce is one attempt of do.
func (c *HTTPClient) doOnce(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// W3C trace-context propagation: a trace ID installed in the context
	// (the workload harness derives one per step) rides the request, so
	// the server's spans, profile, and flight-recorder wide event carry
	// the same ID the client logs.
	if tid := obs.TraceIDFrom(ctx); tid != "" {
		if tp := obs.Traceparent(tid, obs.NewSpanID()); tp != "" {
			req.Header.Set("traceparent", tp)
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.Unmarshal(payload, &e)
		if e.Error == "" {
			e.Error = strings.TrimSpace(string(payload))
		}
		return &StatusError{Code: resp.StatusCode, Msg: e.Error}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(payload, out)
}

// viewFromJSON normalizes the server's step payload into the shared
// StepView form, mirroring InprocClient.view field by field.
func viewFromJSON(sj *server.StepJSON) *StepView {
	sv := &StepView{
		Selection:        sj.Selection,
		GroupSize:        sj.GroupSize,
		Degraded:         sj.Degraded,
		RecordsProcessed: sj.RecordsProcessed,
		TraceID:          sj.TraceID,
		Profile:          sj.Profile,
	}
	for _, m := range sj.Maps {
		mv := MapView{
			GroupBy:   m.GroupBy,
			Dimension: m.Dimension,
			Utility:   m.Utility,
			Digest:    m.Digest,
		}
		for _, b := range m.Bars {
			mv.Bars = append(mv.Bars, b.Value)
		}
		sv.Maps = append(sv.Maps, mv)
	}
	for _, r := range sj.Recommendations {
		sv.Recommendations = append(sv.Recommendations, RecView{
			Operation: r.Operation,
			Target:    r.Target,
			Utility:   r.Utility,
		})
	}
	return sv
}
