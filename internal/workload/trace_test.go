package workload

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"testing"

	"subdex/internal/core"
	"subdex/internal/obs"
	"subdex/internal/server"
)

// TestTraceparentRoundTrip pins the full correlation chain over a real
// HTTP hop: a trace ID installed client-side rides the traceparent
// header, the server binds its request span and EXPLAIN profile to it,
// and both /debug/spans?trace= and the flight-recorder ring resolve the
// same ID back to the step that carried it.
func TestTraceparentRoundTrip(t *testing.T) {
	ctx := context.Background()
	srv, ts := demoServer(t, server.Options{})
	hc, err := NewHTTPClient(ctx, ts.URL, nil, "rp", "")
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close(ctx)

	tid := obs.DeriveTraceID(42, 1, 1)
	sv, err := hc.Step(obs.WithTraceID(ctx, tid))
	if err != nil {
		t.Fatal(err)
	}
	if sv.TraceID != string(tid) {
		t.Fatalf("step trace ID: got %q, want %q", sv.TraceID, tid)
	}
	if sv.Profile == nil {
		t.Fatal("HTTP step returned no EXPLAIN profile")
	}
	if sv.Profile.TraceID != string(tid) {
		t.Fatalf("profile trace ID: got %q, want %q", sv.Profile.TraceID, tid)
	}
	if sv.Profile.Engine == nil {
		t.Fatal("EXPLAIN profile carries no engine profile")
	}

	// The server's span ring must resolve the ID to the request's span
	// tree (root span plus engine phase children).
	resp, err := http.Get(ts.URL + "/debug/spans?trace=" + string(tid))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/spans?trace=: status %d: %s", resp.StatusCode, body)
	}
	var spans struct {
		Spans []*obs.SpanData `json:"spans"`
	}
	if err := json.Unmarshal(body, &spans); err != nil {
		t.Fatalf("decode spans: %v", err)
	}
	if len(spans.Spans) != 1 {
		t.Fatalf("expected exactly the step's root span, got %d", len(spans.Spans))
	}
	if got := spans.Spans[0].TraceID; got != tid {
		t.Fatalf("root span trace ID: got %q, want %q", got, tid)
	}

	// The flight-recorder ring must hold the step's wide event under the
	// same ID (dumps are disabled — no Dir — but the ring always records).
	events := srv.Flight().Snapshot(string(tid), 0)
	if len(events) != 1 {
		t.Fatalf("expected one wide event under trace %s, got %d", tid, len(events))
	}
	if op, _ := events[0].Get("op"); op != "step" {
		t.Fatalf("wide event op: got %v, want step", op)
	}
}

// traceKey identifies one step-producing call independent of timing.
type traceKey struct {
	User  int
	Step  int
	Op    string
	Trace string
}

// traceKeys collapses a population's exemplars (captured with K large
// enough to retain every call) into a sorted, duration-free key set.
func traceKeys(res *Result) []traceKey {
	var keys []traceKey
	for _, u := range res.Users {
		for _, e := range u.Exemplars {
			keys = append(keys, traceKey{User: e.User, Step: e.Step, Op: e.Op, Trace: e.TraceID})
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].User != keys[j].User {
			return keys[i].User < keys[j].User
		}
		return keys[i].Step < keys[j].Step
	})
	return keys
}

// TestEquivalenceTraceIDs re-runs the two-arm equivalence walk and
// requires the derived trace IDs to match call for call: the same seed
// labels the same steps with the same IDs whether the client is
// in-process or behind HTTP, which is what makes sdeload exemplars
// resolvable against a server regardless of mode. It also re-checks the
// golden records stay byte-identical with tracing and exemplars on.
func TestEquivalenceTraceIDs(t *testing.T) {
	ex, err := core.NewExplorer(demoDB(t), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Users: 2, Seed: 11, StepsPerUser: 5, Record: true, ExemplarK: 1 << 20}
	inproc := runPopulation(t, cfg, InprocFactory(ex, core.RecommendationPowered, ""))
	_, ts := demoServer(t, server.Options{})
	httpRes := runPopulation(t, cfg, HTTPFactory(ts.URL, nil, core.RecommendationPowered, ""))
	compareUsers(t, inproc, httpRes)

	ik, hk := traceKeys(inproc), traceKeys(httpRes)
	if len(ik) == 0 {
		t.Fatal("no exemplars captured")
	}
	if fmt.Sprint(ik) != fmt.Sprint(hk) {
		t.Fatalf("trace keys diverge between modes:\n  inproc=%v\n  http=%v", ik, hk)
	}
	for _, k := range ik {
		if !obs.TraceID(k.Trace).Valid() {
			t.Fatalf("derived trace ID %q is not valid", k.Trace)
		}
	}

	// Exemplars must surface EXPLAIN profiles in both modes.
	for name, res := range map[string]*Result{"inproc": inproc, "http": httpRes} {
		for _, u := range res.Users {
			for _, e := range u.Exemplars {
				if e.Profile == nil {
					t.Fatalf("%s: user %d step %d exemplar has no profile", name, e.User, e.Step)
				}
			}
		}
	}
}

// TestClientFlightEvents wires a client-side flight recorder through the
// runner config and requires one wide event per step-producing call,
// carrying the field set the obsmetrics discipline expects.
func TestClientFlightEvents(t *testing.T) {
	ex, err := core.NewExplorer(demoDB(t), core.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fr := obs.NewFlightRecorder(obs.FlightOptions{Ring: 1024})
	cfg := Config{Users: 2, Seed: 5, StepsPerUser: 4, Flight: fr}
	res := runPopulation(t, cfg, InprocFactory(ex, core.RecommendationPowered, ""))
	events := fr.Snapshot("", 0)
	if len(events) == 0 {
		t.Fatal("no client wide events recorded")
	}
	if len(events) > res.Steps {
		t.Fatalf("more wide events (%d) than steps (%d): auto bursts must record once", len(events), res.Steps)
	}
	for _, ev := range events {
		for _, key := range []string{"op", "user", "step", "trace_id", "duration_ms", "degraded", "ts"} {
			if _, ok := ev.Get(key); !ok {
				t.Fatalf("client wide event missing %q", key)
			}
		}
	}
}
