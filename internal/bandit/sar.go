// Package bandit implements the Successive Accepts and Rejects (SAR)
// multi-armed bandit strategy of Bubeck, Wang and Viswanathan [13] for the
// multiple-identifications problem: finding the k' arms with the highest
// mean reward under a fixed budget. SeeDB [54] showed the strategy finds the
// highest-utility visualizations w.h.p., and SubDEx reuses it as its MAB
// pruning scheme (§4.2.1): at the end of each phase, arms (rating maps) are
// ranked by mean DW utility; depending on which gap is larger, the top arm
// is accepted into the answer or the bottom arm is rejected.
package bandit

import (
	"fmt"
	"sort"
)

// Arm is one candidate under selection, tracked by its running mean reward.
type Arm struct {
	ID    int
	mean  float64
	pulls int
	state State
}

// State is an arm's lifecycle position.
type State int

const (
	// Active arms are still played and considered.
	Active State = iota
	// Accepted arms are guaranteed a slot in the top-k'.
	Accepted
	// Rejected arms are pruned.
	Rejected
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Accepted:
		return "accepted"
	case Rejected:
		return "rejected"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Mean returns the arm's running mean reward.
func (a *Arm) Mean() float64 { return a.mean }

// Pulls returns how many reward observations the arm has received.
func (a *Arm) Pulls() int { return a.pulls }

// State returns the arm's lifecycle state.
func (a *Arm) StateOf() State { return a.state }

// SAR runs Successive Accepts and Rejects over a fixed arm set.
type SAR struct {
	arms     []*Arm
	byID     map[int]*Arm
	k        int // slots to fill
	accepted int
}

// NewSAR creates a selector for the top-k arms among the given ids.
func NewSAR(ids []int, k int) (*SAR, error) {
	if k <= 0 {
		return nil, fmt.Errorf("bandit: k must be positive, got %d", k)
	}
	s := &SAR{k: k, byID: make(map[int]*Arm, len(ids))}
	for _, id := range ids {
		if _, dup := s.byID[id]; dup {
			return nil, fmt.Errorf("bandit: duplicate arm id %d", id)
		}
		a := &Arm{ID: id}
		s.arms = append(s.arms, a)
		s.byID[id] = a
	}
	if k >= len(ids) {
		// Degenerate: everything is accepted immediately.
		for _, a := range s.arms {
			a.state = Accepted
		}
		s.accepted = len(ids)
	}
	return s, nil
}

// Observe feeds a reward observation for an arm. Observations on accepted
// or rejected arms are ignored (their fate is sealed).
func (s *SAR) Observe(id int, reward float64) error {
	a, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("bandit: unknown arm %d", id)
	}
	if a.state != Active {
		return nil
	}
	a.pulls++
	a.mean += (reward - a.mean) / float64(a.pulls)
	return nil
}

// SetMean overrides an arm's running mean; the engine uses this because
// rating-map utility means are maintained by the phase accumulator rather
// than per-pull.
func (s *SAR) SetMean(id int, mean float64) error {
	a, ok := s.byID[id]
	if !ok {
		return fmt.Errorf("bandit: unknown arm %d", id)
	}
	if a.state == Active {
		a.mean = mean
		a.pulls++
	}
	return nil
}

// Active returns the ids of arms still in play.
func (s *SAR) Active() []int {
	var out []int
	for _, a := range s.arms {
		if a.state == Active {
			out = append(out, a.ID)
		}
	}
	return out
}

// Accepted returns the ids of arms accepted so far.
func (s *SAR) Accepted() []int {
	var out []int
	for _, a := range s.arms {
		if a.state == Accepted {
			out = append(out, a.ID)
		}
	}
	return out
}

// RemainingSlots returns how many top-k slots are still unfilled.
func (s *SAR) RemainingSlots() int { return s.k - s.accepted }

// Done reports whether the selection is complete: all slots filled or no
// active arms remain.
func (s *SAR) Done() bool {
	return s.accepted >= s.k || len(s.Active()) == 0
}

// Step performs one accept-or-reject decision over the active arms, the
// per-phase move of the paper: rank active arms by mean; let Δ₁ be the gap
// between the highest mean and the (slots+1)-th mean, and Δ₂ the gap between
// the slots-th mean and the lowest mean. If Δ₁ > Δ₂ the top arm is accepted,
// otherwise the bottom arm is rejected. Returns the decided arm id and its
// new state, or ok=false if no decision is possible (fewer than 2 active
// arms or selection already done).
func (s *SAR) Step() (id int, st State, ok bool) {
	if s.Done() {
		return 0, Active, false
	}
	active := make([]*Arm, 0, len(s.arms))
	for _, a := range s.arms {
		if a.state == Active {
			active = append(active, a)
		}
	}
	slots := s.RemainingSlots()
	if len(active) <= slots {
		// Everyone left fits: accept them all (top gap is infinite).
		for _, a := range active {
			a.state = Accepted
			s.accepted++
		}
		return active[0].ID, Accepted, true
	}
	if len(active) < 2 {
		return 0, Active, false
	}
	sort.Slice(active, func(i, j int) bool { return active[i].mean > active[j].mean })
	delta1 := active[0].mean - active[slots].mean
	delta2 := active[slots-1].mean - active[len(active)-1].mean
	if delta1 > delta2 {
		active[0].state = Accepted
		s.accepted++
		return active[0].ID, Accepted, true
	}
	last := active[len(active)-1]
	last.state = Rejected
	return last.ID, Rejected, true
}

// Finish ends the selection by accepting the best remaining active arms into
// the unfilled slots (used after the final phase when exact means are
// known). It returns the full accepted set.
func (s *SAR) Finish() []int {
	var active []*Arm
	for _, a := range s.arms {
		if a.state == Active {
			active = append(active, a)
		}
	}
	sort.Slice(active, func(i, j int) bool { return active[i].mean > active[j].mean })
	for _, a := range active {
		if s.accepted >= s.k {
			a.state = Rejected
			continue
		}
		a.state = Accepted
		s.accepted++
	}
	return s.Accepted()
}
