package bandit

import (
	"math/rand"
	"sort"
	"testing"
)

// TestPropertySARNoiselessTopKPreserved: on noiseless inputs — every arm's
// running mean set to its true value before each decision — the SAR
// accept/reject rule must never eliminate a true top-k arm, and driving
// Step to completion must accept exactly the true top-k set. This is the
// safety property engine pruning relies on: pruning can only be wrong when
// the estimates are, never by construction.
func TestPropertySARNoiselessTopKPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 400; trial++ {
		n := 2 + rng.Intn(30)
		k := 1 + rng.Intn(n)
		ids := make([]int, n)
		means := make(map[int]float64, n)
		used := map[int]bool{}
		for i := range ids {
			// Sparse ids with distinct means: ties make "the" top-k ambiguous
			// and are exercised separately below.
			id := rng.Intn(1000)
			for used[id] {
				id = rng.Intn(1000)
			}
			used[id] = true
			ids[i] = id
			means[id] = float64(i) + rng.Float64()/2
		}
		rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })

		want := append([]int(nil), ids...)
		sort.Slice(want, func(i, j int) bool { return means[want[i]] > means[want[j]] })
		want = want[:k]
		top := make(map[int]bool, k)
		for _, id := range want {
			top[id] = true
		}

		s, err := NewSAR(ids, k)
		if err != nil {
			t.Fatal(err)
		}
		for !s.Done() {
			for _, id := range s.Active() {
				if err := s.SetMean(id, means[id]); err != nil {
					t.Fatal(err)
				}
			}
			id, st, ok := s.Step()
			if !ok {
				break
			}
			if st == Rejected && top[id] {
				t.Fatalf("n=%d k=%d: rejected true top-k arm %d (mean %g)", n, k, id, means[id])
			}
			if st == Accepted && !top[id] {
				// The batch-accept path may seal several arms at once; verify
				// none of the accepted set is outside the true top-k.
				for _, a := range s.Accepted() {
					if !top[a] {
						t.Fatalf("n=%d k=%d: accepted non-top arm %d (mean %g)", n, k, a, means[a])
					}
				}
			}
		}
		got := s.Finish()
		if len(got) != k {
			t.Fatalf("n=%d k=%d: accepted %d arms", n, k, len(got))
		}
		for _, id := range got {
			if !top[id] {
				t.Fatalf("n=%d k=%d: final set contains non-top arm %d", n, k, id)
			}
		}
	}
}

// TestPropertySARTiesStillFillK: with all means identical there is no
// "true" top-k, but the selection must still terminate with exactly k
// accepted arms and never loop.
func TestPropertySARTiesStillFillK(t *testing.T) {
	for _, n := range []int{2, 3, 7, 20} {
		for k := 1; k <= n; k++ {
			ids := make([]int, n)
			for i := range ids {
				ids[i] = i
			}
			s, err := NewSAR(ids, k)
			if err != nil {
				t.Fatal(err)
			}
			for steps := 0; !s.Done(); steps++ {
				if steps > 10*n {
					t.Fatalf("n=%d k=%d: SAR did not terminate", n, k)
				}
				for _, id := range s.Active() {
					if err := s.SetMean(id, 0.5); err != nil {
						t.Fatal(err)
					}
				}
				if _, _, ok := s.Step(); !ok {
					break
				}
			}
			if got := s.Finish(); len(got) != k {
				t.Fatalf("n=%d k=%d: accepted %d", n, k, len(got))
			}
		}
	}
}
