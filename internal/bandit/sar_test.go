package bandit

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSARValidation(t *testing.T) {
	if _, err := NewSAR([]int{1, 2}, 0); err == nil {
		t.Fatal("k=0 must be rejected")
	}
	if _, err := NewSAR([]int{1, 1}, 1); err == nil {
		t.Fatal("duplicate arm ids must be rejected")
	}
}

func TestSARDegenerateAllAccepted(t *testing.T) {
	s, err := NewSAR([]int{1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Done() {
		t.Fatal("k ≥ arms must be immediately done")
	}
	if got := len(s.Accepted()); got != 3 {
		t.Fatalf("accepted = %d, want 3", got)
	}
}

func TestSARObserve(t *testing.T) {
	s, _ := NewSAR([]int{0, 1}, 1)
	if err := s.Observe(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := s.Observe(99, 1); err == nil {
		t.Fatal("unknown arm must error")
	}
	arm := s.byID[0]
	if arm.Pulls() != 2 || arm.Mean() != 0.75 {
		t.Fatalf("pulls=%d mean=%v", arm.Pulls(), arm.Mean())
	}
}

func TestSARAcceptRejectRule(t *testing.T) {
	// Means: 1.0, 0.5, 0.45, 0.4; k=2. Δ1 = 1.0−0.45 = 0.55 (top vs k+1-th);
	// Δ2 = 0.5−0.4 = 0.1 (k-th vs bottom). Δ1 > Δ2 → accept the top arm.
	s, _ := NewSAR([]int{0, 1, 2, 3}, 2)
	for id, m := range map[int]float64{0: 1.0, 1: 0.5, 2: 0.45, 3: 0.4} {
		s.SetMean(id, m)
	}
	id, st, ok := s.Step()
	if !ok || st != Accepted || id != 0 {
		t.Fatalf("got id=%d st=%v ok=%v, want accept arm 0", id, st, ok)
	}
	// Now means 0.5, 0.45, 0.4 with 1 slot: Δ1 = 0.5−0.45 = 0.05;
	// Δ2 = 0.5−0.4 = 0.1 → reject the bottom arm (3).
	id, st, ok = s.Step()
	if !ok || st != Rejected || id != 3 {
		t.Fatalf("got id=%d st=%v ok=%v, want reject arm 3", id, st, ok)
	}
}

func TestSARFindsTopArms(t *testing.T) {
	// With well-separated noisy rewards, SAR must identify the true top-k.
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const n, k = 10, 3
		ids := make([]int, n)
		means := make([]float64, n)
		for i := range ids {
			ids[i] = i
			means[i] = float64(i) / n // arm i has true mean i/10
		}
		s, err := NewSAR(ids, k)
		if err != nil {
			return false
		}
		for !s.Done() {
			for _, id := range s.Active() {
				// Tight noise keeps the ordering observable.
				s.Observe(id, means[id]+r.NormFloat64()*0.001)
			}
			s.Step()
		}
		accepted := s.Finish()
		if len(accepted) != k {
			return false
		}
		want := map[int]bool{7: true, 8: true, 9: true}
		for _, id := range accepted {
			if !want[id] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestSARFinishFillsSlots(t *testing.T) {
	s, _ := NewSAR([]int{0, 1, 2, 3, 4}, 2)
	for id, m := range map[int]float64{0: 0.9, 1: 0.8, 2: 0.3, 3: 0.2, 4: 0.1} {
		s.SetMean(id, m)
	}
	accepted := s.Finish()
	if len(accepted) != 2 {
		t.Fatalf("accepted %v", accepted)
	}
	got := map[int]bool{}
	for _, id := range accepted {
		got[id] = true
	}
	if !got[0] || !got[1] {
		t.Fatalf("Finish must keep the best means, got %v", accepted)
	}
	if !s.Done() {
		t.Fatal("Finish must complete the selection")
	}
	if len(s.Active()) != 0 {
		t.Fatal("no arm may stay active after Finish")
	}
}

func TestSARObserveSealedArmIgnored(t *testing.T) {
	s, _ := NewSAR([]int{0, 1, 2}, 1)
	s.SetMean(0, 0.9)
	s.SetMean(1, 0.2)
	s.SetMean(2, 0.1)
	for !s.Done() {
		if _, _, ok := s.Step(); !ok {
			break
		}
	}
	accepted := s.Accepted()
	if len(accepted) != 1 {
		t.Fatalf("accepted %v", accepted)
	}
	before := s.byID[accepted[0]].Mean()
	s.Observe(accepted[0], 0.0) // must be ignored
	if s.byID[accepted[0]].Mean() != before {
		t.Fatal("observations on sealed arms must be ignored")
	}
}

func TestStateString(t *testing.T) {
	if Active.String() != "active" || Accepted.String() != "accepted" || Rejected.String() != "rejected" {
		t.Error("state strings wrong")
	}
}
