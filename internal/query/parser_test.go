package query

import (
	"math/rand"
	"testing"
)

func parserEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := NewEngine(buildQueryDB(t))
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestParseDescriptionBasic(t *testing.T) {
	e := parserEngine(t)
	d, err := ParseDescription("reviewers.gender = 'F' AND items.city = 'NYC'", e)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
	if v, ok := d.ValueOf(ReviewerSide, "gender"); !ok || v != "F" {
		t.Errorf("gender = %q ok=%v", v, ok)
	}
	if v, ok := d.ValueOf(ItemSide, "city"); !ok || v != "NYC" {
		t.Errorf("city = %q ok=%v", v, ok)
	}
}

func TestParseDescriptionQuoteStyles(t *testing.T) {
	e := parserEngine(t)
	for _, input := range []string{
		`reviewers.gender = 'F'`,
		`reviewers.gender = "F"`,
		`reviewers.gender=F`,
		`  REVIEWERS.gender  =  'F'  `,
		`users.gender = 'F'`, // alias
	} {
		d, err := ParseDescription(input, e)
		if err != nil {
			t.Errorf("%q: %v", input, err)
			continue
		}
		if v, _ := d.ValueOf(ReviewerSide, "gender"); v != "F" {
			t.Errorf("%q parsed to %s", input, d)
		}
	}
}

func TestParseDescriptionUniversal(t *testing.T) {
	e := parserEngine(t)
	for _, input := range []string{"", "   ", "TRUE", "true"} {
		d, err := ParseDescription(input, e)
		if err != nil {
			t.Errorf("%q: %v", input, err)
		}
		if !d.IsEmpty() {
			t.Errorf("%q should parse to the universal description", input)
		}
	}
}

func TestParseDescriptionUnqualified(t *testing.T) {
	e := parserEngine(t)
	// gender exists only on the reviewer side.
	d, err := ParseDescription("gender = 'F'", e)
	if err != nil {
		t.Fatal(err)
	}
	if !d.BindsAttr(ReviewerSide, "gender") {
		t.Error("unqualified gender should resolve to reviewers")
	}
	// city exists only on items in this schema.
	d, err = ParseDescription("city = 'NYC'", e)
	if err != nil {
		t.Fatal(err)
	}
	if !d.BindsAttr(ItemSide, "city") {
		t.Error("unqualified city should resolve to items")
	}
}

func TestParseDescriptionErrors(t *testing.T) {
	e := parserEngine(t)
	cases := []string{
		"reviewers.gender",                                  // missing = value
		"reviewers.gender = ",                               // missing value
		"reviewers.gender = 'F",                             // unterminated quote
		"martians.gender = 'F'",                             // unknown table
		"unknownattr = 'x'",                                 // unresolvable
		"reviewers.gender = 'F' AND",                        // dangling AND
		"reviewers.gender = 'F' OR x = 1",                   // OR unsupported
		"reviewers.gender = 'F' gender, x",                  // junk
		"reviewers.gender = 'F' AND reviewers.gender = 'M'", // conflict
	}
	for _, input := range cases {
		if _, err := ParseDescription(input, e); err == nil {
			t.Errorf("%q: expected parse error", input)
		}
	}
}

func TestParseDescriptionNilResolver(t *testing.T) {
	if _, err := ParseDescription("gender = 'F'", nil); err == nil {
		t.Fatal("unqualified attribute without resolver must fail")
	}
	// Qualified attributes need no resolver.
	d, err := ParseDescription("reviewers.gender = 'F'", nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestParseRoundTripThroughString(t *testing.T) {
	e := parserEngine(t)
	orig := MustDescription(
		sel(ReviewerSide, "gender", "F"),
		sel(ItemSide, "city", "NYC"),
		sel(ReviewerSide, "age_group", "young"),
	)
	parsed, err := ParseDescription(orig.String(), e)
	if err != nil {
		t.Fatal(err)
	}
	if !parsed.Equal(orig) {
		t.Fatalf("round trip: %s vs %s", parsed, orig)
	}
}

func TestParserNeverPanics(t *testing.T) {
	// Robustness: arbitrary input must produce a value or an error, never a
	// panic. Exercised with adversarial fragments and random bytes.
	e := parserEngine(t)
	adversarial := []string{
		"..", "=", "''", "a.b.c.d = 'x'", "reviewers.", ".gender = 'F'",
		"reviewers.gender == 'F'", "AND AND AND", "🦀.🦀 = '🦀'",
		"reviewers.gender = 'F' AND", "\x00\x01\x02", "((((", "a='b' AND c",
		"reviewers.gender='F'AND items.city='NYC'",
	}
	for _, input := range adversarial {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", input, r)
				}
			}()
			_, _ = ParseDescription(input, e)
		}()
	}
	rng := rand.New(rand.NewSource(99))
	chars := []byte("abc._='\" ANDreviewersitems🦀\x00")
	for i := 0; i < 2000; i++ {
		n := rng.Intn(40)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = chars[rng.Intn(len(chars))]
		}
		input := string(buf)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on random input %q: %v", input, r)
				}
			}()
			if d, err := ParseDescription(input, e); err == nil {
				// Successful parses must produce a valid canonical form that
				// re-parses to an equal description.
				again, err2 := ParseDescription(d.String(), e)
				if err2 != nil && d.Len() > 0 {
					t.Fatalf("canonical form %q of %q does not re-parse: %v", d.String(), input, err2)
				}
				if err2 == nil && !again.Equal(d) {
					t.Fatalf("round trip changed %q", d.String())
				}
			}
		}()
	}
}
