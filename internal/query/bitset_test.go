package query

// Direct property tests for Bitset against an obviously-correct map-set
// reference model. Bitsets were previously exercised only indirectly
// through the query-engine tests; the ratingmap fused scan kernel now
// leans on them for touched-value tracking, so AND/OR/iteration semantics
// get their own randomized suite — including word-boundary universes and
// mixed-universe intersect/union, whose trim behavior is easy to break.

import (
	"math/rand"
	"sort"
	"testing"
)

// model is the reference set implementation.
type model map[int]bool

func (m model) elements() []int {
	out := make([]int, 0, len(m))
	for i := range m {
		out = append(out, i)
	}
	sort.Ints(out)
	return out
}

// assertMatches checks every observable accessor of b against m.
func assertMatches(t *testing.T, b *Bitset, m model, n int) {
	t.Helper()
	if b.Universe() != n {
		t.Fatalf("Universe() = %d, want %d", b.Universe(), n)
	}
	if b.Count() != len(m) {
		t.Fatalf("Count() = %d, model has %d", b.Count(), len(m))
	}
	for i := 0; i < n; i++ {
		if b.Has(i) != m[i] {
			t.Fatalf("Has(%d) = %v, model %v", i, b.Has(i), m[i])
		}
	}
	want := m.elements()
	got := b.Elements(nil)
	if len(got) != len(want) {
		t.Fatalf("Elements len %d, model %d", len(got), len(want))
	}
	for i := range got {
		if int(got[i]) != want[i] {
			t.Fatalf("Elements[%d] = %d, model %d", i, got[i], want[i])
		}
	}
	var ranged []int
	b.Range(func(i int) { ranged = append(ranged, i) })
	if len(ranged) != len(want) {
		t.Fatalf("Range visited %d members, model %d", len(ranged), len(want))
	}
	for i := range ranged {
		if ranged[i] != want[i] {
			t.Fatalf("Range[%d] = %d, model %d (must be ascending)", i, ranged[i], want[i])
		}
	}
}

// universes crosses word boundaries: 0, sub-word, exact words, word+1.
var universes = []int{0, 1, 5, 63, 64, 65, 127, 128, 200}

// TestBitsetSetClearHas drives random Set/Clear sequences against the model.
func TestBitsetSetClearHas(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range universes {
		b := NewBitset(n)
		m := model{}
		assertMatches(t, b, m, n)
		for op := 0; op < 30*n+10; op++ {
			if n == 0 {
				break
			}
			i := rng.Intn(n)
			if rng.Intn(3) == 0 {
				b.Clear(i)
				delete(m, i)
			} else {
				b.Set(i)
				m[i] = true
			}
		}
		assertMatches(t, b, m, n)
		b.Reset()
		assertMatches(t, b, model{}, n)
	}
}

// TestBitsetFull: FullBitset must contain exactly {0..n-1} — the trim of
// the final partial word is the classic off-by-one site.
func TestBitsetFull(t *testing.T) {
	for _, n := range universes {
		b := FullBitset(n)
		m := model{}
		for i := 0; i < n; i++ {
			m[i] = true
		}
		assertMatches(t, b, m, n)
	}
}

// randomPair builds a random bitset + model over universe n.
func randomPair(rng *rand.Rand, n int) (*Bitset, model) {
	b := NewBitset(n)
	m := model{}
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 0 {
			b.Set(i)
			m[i] = true
		}
	}
	return b, m
}

// TestBitsetIntersectUnion checks AND/OR against set algebra on the model,
// including mixed universes: elements of the other operand outside b's
// universe must never leak in.
func TestBitsetIntersectUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range universes {
		for _, on := range universes {
			b, bm := randomPair(rng, n)
			o, om := randomPair(rng, on)
			oSnapshot := o.Clone()

			and := b.Clone()
			and.IntersectWith(o)
			andM := model{}
			for i := range bm {
				if om[i] {
					andM[i] = true
				}
			}
			assertMatches(t, and, andM, n)

			or := b.Clone()
			or.UnionWith(o)
			orM := model{}
			for i := range bm {
				orM[i] = true
			}
			for i := range om {
				if i < n {
					orM[i] = true
				}
			}
			assertMatches(t, or, orM, n)

			// Operands must be untouched.
			assertMatches(t, b, bm, n)
			if !o.Equal(oSnapshot) {
				t.Fatalf("n=%d on=%d: operand mutated by IntersectWith/UnionWith", n, on)
			}
		}
	}
}

// TestBitsetCloneEqual: clones are independent and Equal tracks content
// and universe.
func TestBitsetCloneEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b, m := randomPair(rng, 130)
	c := b.Clone()
	if !b.Equal(c) || !c.Equal(b) {
		t.Fatal("clone not Equal to original")
	}
	c.Set(7)
	c.Clear(8)
	assertMatches(t, b, m, 130) // original unchanged
	if m[7] && !m[8] && b.Equal(c) {
		t.Fatal("Equal true after divergence")
	}
	if (&Bitset{words: nil, n: 0}).Equal(NewBitset(64)) {
		t.Fatal("different universes must not be Equal")
	}
}

// TestBitsetUnionIdempotentAndCommutative: A∪A = A; A∪B = B∪A on a shared
// universe; A∩B ⊆ A∪B.
func TestBitsetUnionIdempotentAndCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		n := universes[rng.Intn(len(universes))]
		a, _ := randomPair(rng, n)
		b, _ := randomPair(rng, n)

		self := a.Clone()
		self.UnionWith(a)
		if !self.Equal(a) {
			t.Fatal("A∪A != A")
		}
		ab := a.Clone()
		ab.UnionWith(b)
		ba := b.Clone()
		ba.UnionWith(a)
		if !ab.Equal(ba) {
			t.Fatal("A∪B != B∪A")
		}
		and := a.Clone()
		and.IntersectWith(b)
		sup := and.Clone()
		sup.UnionWith(ab)
		if !sup.Equal(ab) {
			t.Fatal("A∩B not a subset of A∪B")
		}
	}
}
