package query

import (
	"strings"
	"testing"
)

// FuzzParse drives the advanced-screen predicate parser with arbitrary
// input. Two invariants:
//
//  1. Never panic — any byte sequence yields a Description or an error.
//  2. Round trip — a successful parse formats (Description.String) to a
//     canonical predicate that re-parses to an equal Description. The
//     formatter picks its quote character per value, so the only inputs
//     exempted are values containing both quote kinds, which the grammar
//     itself cannot express (a quoted value terminates at the first
//     occurrence of its own delimiter).
//
// Seed corpus: the documented grammar, every quote style, aliases,
// adversarial fragments from past parser bugs, and non-ASCII input.
func FuzzParse(f *testing.F) {
	for _, s := range []string{
		"",
		"   ",
		"TRUE",
		"true",
		"reviewers.gender = 'F'",
		`items.city = "NYC" AND reviewers.age_group = young`,
		"gender = 'F'",
		"users.gender='F'AND items.city='NYC'",
		`reviewers.gender = "a'b"`,
		`reviewers.gender = 'a"b'`,
		"cuisine = sushi",
		"a.b.c = 'x'",
		"AND AND AND",
		"reviewers.",
		".gender = 'F'",
		"reviewers.gender == 'F'",
		"reviewers.gender = 'F' AND",
		"🦀.🦀 = '🦀'",
		"\x00\x01\x02",
		"gender=''",
		"  REVIEWERS.GENDER  =  \"F\"  ",
	} {
		f.Add(s)
	}
	e := parserEngine(f)
	f.Fuzz(func(t *testing.T, input string) {
		d, err := ParseDescription(input, e) // must not panic
		if err != nil {
			return
		}
		canon := d.String()
		again, err := ParseDescription(canon, e)
		if err != nil {
			// The single unrepresentable case: a programmatic value holding
			// both quote kinds. The parser cannot produce one, so reaching
			// this from parsed input is a bug.
			for _, sel := range d.Selectors() {
				if strings.ContainsRune(sel.Value, '\'') && strings.ContainsRune(sel.Value, '"') {
					return
				}
			}
			t.Fatalf("canonical form %q of input %q does not re-parse: %v", canon, input, err)
		}
		if !again.Equal(d) {
			t.Fatalf("round trip changed %q: %q -> %q", input, canon, again.String())
		}
		// Canonical form must be a fixed point of String.
		if again.String() != canon {
			t.Fatalf("String not canonical: %q vs %q", again.String(), canon)
		}
	})
}
