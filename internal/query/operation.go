package query

import (
	"fmt"
	"strings"
)

// OpKind classifies an exploration operation relative to the current
// description (§3.2.1, §4.3).
type OpKind int

const (
	// Filter adds one attribute-value pair (drill-down).
	Filter OpKind = iota
	// Generalize removes one attribute-value pair (roll-up).
	Generalize
	// Change re-binds one attribute to a different value (sideways move).
	Change
	// FilterGeneralize adds one pair and removes another (the paper allows
	// candidates differing in at most 2 attribute-value pairs).
	FilterGeneralize
	// FilterChange adds one pair and changes another.
	FilterChange
)

func (k OpKind) String() string {
	switch k {
	case Filter:
		return "filter"
	case Generalize:
		return "generalize"
	case Change:
		return "change"
	case FilterGeneralize:
		return "filter+generalize"
	case FilterChange:
		return "filter+change"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Operation is a next-step operation q: the target description plus a
// human-readable account of how it differs from the current one.
type Operation struct {
	Kind   OpKind
	Target Description
	// Added/Removed/Changed record the delta for display; Changed holds the
	// old selector and ChangedTo the new value.
	Added     *Selector
	Removed   *Selector
	Changed   *Selector
	ChangedTo string
}

// String renders the operation for the recommendation list.
func (op Operation) String() string {
	var parts []string
	if op.Added != nil {
		parts = append(parts, fmt.Sprintf("FILTER %s", *op.Added))
	}
	if op.Removed != nil {
		parts = append(parts, fmt.Sprintf("GENERALIZE drop %s", *op.Removed))
	}
	if op.Changed != nil {
		parts = append(parts, fmt.Sprintf("CHANGE %s.%s: '%s' -> '%s'",
			op.Changed.Side, op.Changed.Attr, op.Changed.Value, op.ChangedTo))
	}
	if len(parts) == 0 {
		return "NOOP"
	}
	return strings.Join(parts, "; ")
}

// CandidateLimits bounds candidate-operation enumeration so recommendation
// building stays interactive on wide schemas.
type CandidateLimits struct {
	// MaxValuesPerAttribute caps how many values of each unbound attribute
	// are considered for Filter additions (0 = unlimited).
	MaxValuesPerAttribute int
	// MaxCandidates caps the total number of candidates (0 = unlimited).
	MaxCandidates int
	// IncludeCombined enables the two-pair kinds (FilterGeneralize,
	// FilterChange); the paper limits candidates to ≤2 differing pairs.
	IncludeCombined bool
}

// DefaultCandidateLimits mirror the prototype's behaviour: combined
// operations on, all values considered.
func DefaultCandidateLimits() CandidateLimits {
	return CandidateLimits{IncludeCombined: true}
}

// CandidateOperations enumerates the next-step operations q reachable from
// cur per §4.3: q may add a new attribute-value pair, and may additionally
// remove or change one existing pair. Pure removals and pure changes are
// also included (they differ in one pair). Candidates whose target equals
// cur are excluded.
func (e *Engine) CandidateOperations(cur Description, lim CandidateLimits) ([]Operation, error) {
	var ops []Operation
	seen := map[string]bool{cur.Key(): true}

	add := func(op Operation) bool {
		k := op.Target.Key()
		if seen[k] {
			return true
		}
		seen[k] = true
		ops = append(ops, op)
		return lim.MaxCandidates == 0 || len(ops) < lim.MaxCandidates
	}

	additions, err := e.additionSelectors(cur, lim)
	if err != nil {
		return nil, err
	}

	// Pure filters.
	for _, sel := range additions {
		target, err := cur.With(sel)
		if err != nil {
			continue
		}
		s := sel
		if !add(Operation{Kind: Filter, Target: target, Added: &s}) {
			return ops, nil
		}
	}

	// Pure generalizations and changes over existing selectors.
	for _, old := range cur.Selectors() {
		old := old
		target, err := cur.Without(old)
		if err == nil {
			if !add(Operation{Kind: Generalize, Target: target, Removed: &old}) {
				return ops, nil
			}
		}
		values, err := e.AttributeValues(old.Side, old.Attr)
		if err != nil {
			return nil, err
		}
		for _, v := range capValues(values, lim.MaxValuesPerAttribute) {
			if v == old.Value {
				continue
			}
			target, err := cur.WithChanged(old, v)
			if err != nil {
				continue
			}
			if !add(Operation{Kind: Change, Target: target, Changed: &old, ChangedTo: v}) {
				return ops, nil
			}
		}
	}

	if !lim.IncludeCombined {
		return ops, nil
	}

	// Combined: addition plus one removal, or addition plus one change.
	for _, sel := range additions {
		withAdd, err := cur.With(sel)
		if err != nil {
			continue
		}
		sel := sel
		for _, old := range cur.Selectors() {
			old := old
			if old.Side == sel.Side && old.Attr == sel.Attr {
				continue
			}
			if target, err := withAdd.Without(old); err == nil {
				if !add(Operation{Kind: FilterGeneralize, Target: target, Added: &sel, Removed: &old}) {
					return ops, nil
				}
			}
			values, err := e.AttributeValues(old.Side, old.Attr)
			if err != nil {
				return nil, err
			}
			for _, v := range capValues(values, lim.MaxValuesPerAttribute) {
				if v == old.Value {
					continue
				}
				if target, err := withAdd.WithChanged(old, v); err == nil {
					if !add(Operation{Kind: FilterChange, Target: target, Added: &sel, Changed: &old, ChangedTo: v}) {
						return ops, nil
					}
				}
			}
		}
	}
	return ops, nil
}

// additionSelectors lists the selectors that may be added to cur: every
// value of every attribute not already bound.
func (e *Engine) additionSelectors(cur Description, lim CandidateLimits) ([]Selector, error) {
	var out []Selector
	for _, side := range []Side{ReviewerSide, ItemSide} {
		t := e.table(side)
		for a := 0; a < t.Schema.Len(); a++ {
			name := t.Schema.At(a).Name
			if cur.BindsAttr(side, name) {
				continue
			}
			values := t.Dict(a).Values()
			for _, v := range capValues(values, lim.MaxValuesPerAttribute) {
				out = append(out, Selector{Side: side, Attr: name, Value: v})
			}
		}
	}
	return out, nil
}

func capValues(values []string, maxN int) []string {
	if maxN > 0 && len(values) > maxN {
		return values[:maxN]
	}
	return values
}
