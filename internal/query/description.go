// Package query implements group descriptions and exploration operations over
// a subjective database (§3.1-3.2.1): conjunctive attribute-value predicates
// on the reviewer and item tables, the filter/generalize operation algebra
// users step through, a small SQL-style predicate parser for the advanced
// screen, and the machinery that materializes a description into a rating
// group (the record set joining the selected reviewers and items).
package query

import (
	"fmt"
	"sort"
	"strings"
)

// Side identifies which entity table a selector constrains.
type Side int

const (
	// ReviewerSide selectors constrain the reviewers table.
	ReviewerSide Side = iota
	// ItemSide selectors constrain the items table.
	ItemSide
)

func (s Side) String() string {
	switch s {
	case ReviewerSide:
		return "reviewers"
	case ItemSide:
		return "items"
	default:
		return fmt.Sprintf("Side(%d)", int(s))
	}
}

// Selector is one attribute-value pair ⟨a, v⟩ of a group description, e.g.
// ⟨gender, female⟩ on the reviewer side.
type Selector struct {
	Side  Side
	Attr  string
	Value string
}

// String renders the selector as table.attr='value'. The quote character
// adapts to the value: values containing a single quote render with double
// quotes, so every parser-producible selector formats to a string that
// re-parses to itself (a quoted value can contain the other quote kind but
// never its own delimiter). Values containing both quote kinds — only
// constructible programmatically — have no parseable rendering; the
// single-quoted form is used as a best effort.
func (s Selector) String() string {
	q := byte('\'')
	if strings.ContainsRune(s.Value, '\'') && !strings.ContainsRune(s.Value, '"') {
		q = '"'
	}
	return fmt.Sprintf("%s.%s=%c%s%c", s.Side, s.Attr, q, s.Value, q)
}

// Key returns a canonical identity string (used for set semantics).
func (s Selector) Key() string { return fmt.Sprintf("%d\x00%s\x00%s", s.Side, s.Attr, s.Value) }

// AttrKey identifies the attribute (without the value) a selector binds.
func (s Selector) AttrKey() string { return fmt.Sprintf("%d\x00%s", s.Side, s.Attr) }

// Description is a conjunctive set of selectors defining a reviewer group
// and an item group simultaneously (the paper's q). The zero value selects
// everything. Descriptions are immutable; operations return new ones.
type Description struct {
	selectors []Selector
}

// NewDescription builds a description from selectors, deduplicating and
// rejecting two different values for the same attribute (which would select
// the empty group for atomic attributes and is disallowed in the paper's
// operation grammar).
func NewDescription(selectors ...Selector) (Description, error) {
	seen := make(map[string]bool, len(selectors))
	attrs := make(map[string]string, len(selectors))
	var out []Selector
	for _, s := range selectors {
		if s.Attr == "" {
			return Description{}, fmt.Errorf("query: selector with empty attribute")
		}
		k := s.Key()
		if seen[k] {
			continue
		}
		if prev, dup := attrs[s.AttrKey()]; dup {
			return Description{}, fmt.Errorf("query: attribute %s.%s bound to both %q and %q",
				s.Side, s.Attr, prev, s.Value)
		}
		seen[k] = true
		attrs[s.AttrKey()] = s.Value
		out = append(out, s)
	}
	sortSelectors(out)
	return Description{selectors: out}, nil
}

// MustDescription is NewDescription that panics on error.
func MustDescription(selectors ...Selector) Description {
	d, err := NewDescription(selectors...)
	if err != nil {
		panic(err)
	}
	return d
}

func sortSelectors(ss []Selector) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].Side != ss[j].Side {
			return ss[i].Side < ss[j].Side
		}
		if ss[i].Attr != ss[j].Attr {
			return ss[i].Attr < ss[j].Attr
		}
		return ss[i].Value < ss[j].Value
	})
}

// Selectors returns a copy of the selector list in canonical order.
func (d Description) Selectors() []Selector { return append([]Selector(nil), d.selectors...) }

// SideSelectors returns the selectors constraining one table.
func (d Description) SideSelectors(side Side) []Selector {
	var out []Selector
	for _, s := range d.selectors {
		if s.Side == side {
			out = append(out, s)
		}
	}
	return out
}

// Len returns the number of selectors.
func (d Description) Len() int { return len(d.selectors) }

// IsEmpty reports whether the description selects the entire database.
func (d Description) IsEmpty() bool { return len(d.selectors) == 0 }

// Has reports whether the description contains the exact selector.
func (d Description) Has(sel Selector) bool {
	for _, s := range d.selectors {
		if s == sel {
			return true
		}
	}
	return false
}

// BindsAttr reports whether some selector constrains the given attribute.
func (d Description) BindsAttr(side Side, attr string) bool {
	for _, s := range d.selectors {
		if s.Side == side && s.Attr == attr {
			return true
		}
	}
	return false
}

// ValueOf returns the bound value of the attribute, if any.
func (d Description) ValueOf(side Side, attr string) (string, bool) {
	for _, s := range d.selectors {
		if s.Side == side && s.Attr == attr {
			return s.Value, true
		}
	}
	return "", false
}

// Key returns a canonical identity string for the whole description.
func (d Description) Key() string {
	parts := make([]string, len(d.selectors))
	for i, s := range d.selectors {
		parts[i] = s.Key()
	}
	return strings.Join(parts, "\x01")
}

// Equal reports whether two descriptions select the same predicate.
func (d Description) Equal(o Description) bool { return d.Key() == o.Key() }

// String renders the description as a WHERE-style conjunction.
func (d Description) String() string {
	if len(d.selectors) == 0 {
		return "TRUE"
	}
	parts := make([]string, len(d.selectors))
	for i, s := range d.selectors {
		parts[i] = s.String()
	}
	return strings.Join(parts, " AND ")
}

// With returns a new description with sel added (filter / drill-down).
func (d Description) With(sel Selector) (Description, error) {
	return NewDescription(append(d.Selectors(), sel)...)
}

// Without returns a new description with sel removed (generalize / roll-up).
// Removing an absent selector is an error: the paper's operations always act
// on the current selection.
func (d Description) Without(sel Selector) (Description, error) {
	if !d.Has(sel) {
		return Description{}, fmt.Errorf("query: selector %s not in description", sel)
	}
	var out []Selector
	for _, s := range d.selectors {
		if s != sel {
			out = append(out, s)
		}
	}
	return NewDescription(out...)
}

// WithChanged returns a new description where the attribute bound by old is
// re-bound to newValue (a sideways move in the lattice).
func (d Description) WithChanged(old Selector, newValue string) (Description, error) {
	if !d.Has(old) {
		return Description{}, fmt.Errorf("query: selector %s not in description", old)
	}
	out := make([]Selector, 0, len(d.selectors))
	for _, s := range d.selectors {
		if s == old {
			s.Value = newValue
		}
		out = append(out, s)
	}
	return NewDescription(out...)
}

// EditDistance counts the minimum number of selector additions, removals,
// and value changes turning d into o. A change (same attribute, different
// value) counts 1, matching §4.3's "small adjustment" semantics.
func (d Description) EditDistance(o Description) int {
	mine := make(map[string]string)
	for _, s := range d.selectors {
		mine[s.AttrKey()] = s.Value
	}
	theirs := make(map[string]string)
	for _, s := range o.selectors {
		theirs[s.AttrKey()] = s.Value
	}
	dist := 0
	for k, v := range mine {
		tv, ok := theirs[k]
		if !ok || tv != v {
			dist++ // removal or change
		}
	}
	for k := range theirs {
		if _, ok := mine[k]; !ok {
			dist++ // addition
		}
	}
	return dist
}
