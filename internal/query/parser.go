package query

import (
	"fmt"
	"strings"
	"unicode"
)

// ParseDescription parses the SQL-style predicate accepted by the advanced
// screen of the UI (§4, "by providing SQL predicates"):
//
//	reviewers.age_group = 'young' AND items.city = 'NYC'
//
// The grammar is a conjunction of equality predicates:
//
//	predicate  := term { AND term }
//	term       := qualified '=' value
//	qualified  := ("reviewers"|"users"|"items") '.' ident | ident
//	value      := '\'' chars '\'' | '"' chars '"' | bareword
//
// An unqualified attribute is resolved against resolver (typically the
// engine's schemas); it is an error if it exists on both sides. The empty
// string and the keyword TRUE parse to the universal description.
func ParseDescription(input string, resolver AttrResolver) (Description, error) {
	p := &parser{src: input}
	p.skipSpace()
	if p.eof() || p.peekKeyword("TRUE") {
		return Description{}, nil
	}
	var sels []Selector
	for {
		sel, err := p.term(resolver)
		if err != nil {
			return Description{}, err
		}
		sels = append(sels, sel)
		p.skipSpace()
		if p.eof() {
			break
		}
		if !p.keyword("AND") {
			return Description{}, p.errorf("expected AND or end of input")
		}
	}
	return NewDescription(sels...)
}

// AttrResolver resolves unqualified attribute names to a table side.
type AttrResolver interface {
	// ResolveAttr returns the side owning the attribute. ok is false when
	// the attribute exists on neither side; err is non-nil when ambiguous.
	ResolveAttr(attr string) (side Side, ok bool, err error)
}

// ResolveAttr lets the query engine act as an AttrResolver over its
// database's two schemas.
func (e *Engine) ResolveAttr(attr string) (Side, bool, error) {
	onU := e.DB.Reviewers.Schema.Has(attr)
	onI := e.DB.Items.Schema.Has(attr)
	switch {
	case onU && onI:
		return 0, false, fmt.Errorf("query: attribute %q is ambiguous; qualify with reviewers. or items.", attr)
	case onU:
		return ReviewerSide, true, nil
	case onI:
		return ItemSide, true, nil
	default:
		return 0, false, nil
	}
}

type parser struct {
	src string
	pos int
}

func (p *parser) eof() bool { return p.pos >= len(p.src) }

func (p *parser) errorf(format string, args ...any) error {
	return fmt.Errorf("query: parse error at offset %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *parser) skipSpace() {
	for !p.eof() && unicode.IsSpace(rune(p.src[p.pos])) {
		p.pos++
	}
}

// keyword consumes a case-insensitive keyword followed by a word boundary.
func (p *parser) keyword(kw string) bool {
	p.skipSpace()
	if p.peekKeyword(kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *parser) peekKeyword(kw string) bool {
	if p.pos+len(kw) > len(p.src) {
		return false
	}
	if !strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		return false
	}
	end := p.pos + len(kw)
	return end == len(p.src) || !isIdentChar(rune(p.src[end]))
}

func isIdentChar(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-'
}

func (p *parser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for !p.eof() && isIdentChar(rune(p.src[p.pos])) {
		p.pos++
	}
	if p.pos == start {
		return "", p.errorf("expected identifier")
	}
	return p.src[start:p.pos], nil
}

func (p *parser) value() (string, error) {
	p.skipSpace()
	if p.eof() {
		return "", p.errorf("expected value")
	}
	switch q := p.src[p.pos]; q {
	case '\'', '"':
		p.pos++
		start := p.pos
		for !p.eof() && p.src[p.pos] != q {
			p.pos++
		}
		if p.eof() {
			return "", p.errorf("unterminated quoted value")
		}
		v := p.src[start:p.pos]
		p.pos++
		return v, nil
	default:
		return p.ident()
	}
}

func (p *parser) term(resolver AttrResolver) (Selector, error) {
	name, err := p.ident()
	if err != nil {
		return Selector{}, err
	}
	var side Side
	sideGiven := false
	attr := name
	p.skipSpace()
	if !p.eof() && p.src[p.pos] == '.' {
		p.pos++
		switch strings.ToLower(name) {
		case "reviewers", "users", "reviewer", "user":
			side = ReviewerSide
		case "items", "item", "restaurants", "movies", "hotels":
			side = ItemSide
		default:
			return Selector{}, p.errorf("unknown table %q (want reviewers or items)", name)
		}
		sideGiven = true
		attr, err = p.ident()
		if err != nil {
			return Selector{}, err
		}
	}
	p.skipSpace()
	if p.eof() || p.src[p.pos] != '=' {
		return Selector{}, p.errorf("expected '=' after attribute %q", attr)
	}
	p.pos++
	val, err := p.value()
	if err != nil {
		return Selector{}, err
	}
	if !sideGiven {
		if resolver == nil {
			return Selector{}, p.errorf("unqualified attribute %q needs a resolver", attr)
		}
		s, ok, err := resolver.ResolveAttr(attr)
		if err != nil {
			return Selector{}, err
		}
		if !ok {
			return Selector{}, p.errorf("unknown attribute %q", attr)
		}
		side = s
	}
	return Selector{Side: side, Attr: attr, Value: val}, nil
}
