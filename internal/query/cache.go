package query

import "container/list"

// Group-materialization cache. Recommendation building materializes
// hundreds of candidate selections per step, and consecutive steps (and
// consecutive simulated subjects) revisit many of them; caching whole
// rating groups avoids the repeated record scans, in the spirit of the
// statistics-reuse frameworks the paper cites (Data Canopy [57], the
// caching of [18]). The cache is budgeted by total cached record count and
// evicts least-recently-used groups.

// groupCache is an LRU keyed by description with a record-count budget.
type groupCache struct {
	budget  int
	used    int
	order   *list.List // front = most recent; values are *cacheEntry
	entries map[string]*list.Element
}

type cacheEntry struct {
	key   string
	group *RatingGroup
}

func newGroupCache(budget int) *groupCache {
	return &groupCache{budget: budget, order: list.New(), entries: make(map[string]*list.Element)}
}

func (c *groupCache) get(key string) (*RatingGroup, bool) {
	el, ok := c.entries[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).group, true
}

func (c *groupCache) put(key string, g *RatingGroup) {
	if c.budget <= 0 {
		return
	}
	cost := len(g.Records)
	if cost > c.budget {
		return // singleton larger than the whole budget: never cache
	}
	if el, ok := c.entries[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	for c.used+cost > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*cacheEntry)
		c.used -= len(ev.group.Records)
		delete(c.entries, ev.key)
		c.order.Remove(back)
	}
	el := c.order.PushFront(&cacheEntry{key: key, group: g})
	c.entries[key] = el
	c.used += cost
}

// EnableGroupCache turns on materialization caching with the given budget
// (total cached rating-record count; ≤0 disables). Cached groups are shared
// and must be treated as immutable by callers — the engine's own paths
// never mutate a materialized group.
func (e *Engine) EnableGroupCache(budgetRecords int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if budgetRecords <= 0 {
		e.groups = nil
		return
	}
	e.groups = newGroupCache(budgetRecords)
}

// cachedMaterialize consults the cache before materializing.
func (e *Engine) cachedMaterialize(d Description) (*RatingGroup, bool, error) {
	key := d.Key()
	e.mu.Lock()
	if e.groups != nil {
		if g, ok := e.groups.get(key); ok {
			e.mu.Unlock()
			return g, true, nil
		}
	}
	e.mu.Unlock()

	g, err := e.materialize(d)
	if err != nil {
		return nil, false, err
	}
	e.mu.Lock()
	if e.groups != nil {
		e.groups.put(key, g)
	}
	e.mu.Unlock()
	return g, false, nil
}
