package query

import (
	"fmt"
	"sync"

	"subdex/internal/dataset"
)

// RatingGroup is a materialized group g_R: the rating records whose reviewer
// belongs to the reviewer group g_U and whose item belongs to the item group
// g_I defined by a Description (§3.1).
type RatingGroup struct {
	Desc Description
	// Records holds positions into the database's rating table, ascending.
	Records []int32
	// Reviewers and Items are the matching entity row sets.
	Reviewers *Bitset
	Items     *Bitset
}

// Len returns the number of rating records in the group.
func (g *RatingGroup) Len() int { return len(g.Records) }

// Engine materializes descriptions against a database, caching per-selector
// entity bitsets (the dominant cost of repeated candidate evaluation during
// recommendation building). The cache is guarded: the parallel
// Recommendation Builder materializes many descriptions concurrently.
type Engine struct {
	DB *dataset.DB

	mu       sync.RWMutex
	selCache map[string]*Bitset
	groups   *groupCache // optional whole-group cache (EnableGroupCache)
}

// NewEngine wraps a frozen database.
func NewEngine(db *dataset.DB) (*Engine, error) {
	if !db.Frozen() {
		return nil, fmt.Errorf("query: database %q is not frozen", db.Name)
	}
	return &Engine{DB: db, selCache: make(map[string]*Bitset)}, nil
}

// table returns the entity table of a side.
func (e *Engine) table(side Side) *dataset.EntityTable {
	if side == ReviewerSide {
		return e.DB.Reviewers
	}
	return e.DB.Items
}

// Validate checks that every selector references an existing attribute and a
// registered value of that attribute.
func (e *Engine) Validate(d Description) error {
	for _, s := range d.Selectors() {
		t := e.table(s.Side)
		a := t.Schema.Index(s.Attr)
		if a < 0 {
			return fmt.Errorf("query: %s has no attribute %q", s.Side, s.Attr)
		}
		if _, ok := t.Dict(a).Lookup(s.Value); !ok {
			return fmt.Errorf("query: %s.%s has no value %q", s.Side, s.Attr, s.Value)
		}
	}
	return nil
}

// selectorBitset returns the entity rows matching one selector, cached.
func (e *Engine) selectorBitset(s Selector) (*Bitset, error) {
	e.mu.RLock()
	b, ok := e.selCache[s.Key()]
	e.mu.RUnlock()
	if ok {
		return b, nil
	}
	t := e.table(s.Side)
	a := t.Schema.Index(s.Attr)
	if a < 0 {
		return nil, fmt.Errorf("query: %s has no attribute %q", s.Side, s.Attr)
	}
	v, ok := t.Dict(a).Lookup(s.Value)
	if !ok {
		return nil, fmt.Errorf("query: %s.%s has no value %q", s.Side, s.Attr, s.Value)
	}
	b = NewBitset(t.Len())
	for row := 0; row < t.Len(); row++ {
		if t.HasValue(a, row, v) {
			b.Set(row)
		}
	}
	e.mu.Lock()
	e.selCache[s.Key()] = b
	e.mu.Unlock()
	return b, nil
}

// EntityGroup materializes one side of a description as a row bitset.
func (e *Engine) EntityGroup(d Description, side Side) (*Bitset, error) {
	sels := d.SideSelectors(side)
	acc := FullBitset(e.table(side).Len())
	for _, s := range sels {
		b, err := e.selectorBitset(s)
		if err != nil {
			return nil, err
		}
		acc.IntersectWith(b)
	}
	return acc, nil
}

// Materialize evaluates a description into a rating group. The record scan
// iterates the smaller entity side's per-entity record index and filters by
// the other side's bitset, so narrow selections stay cheap. With the group
// cache enabled (EnableGroupCache), repeated selections are served from
// memory; the returned group must then be treated as immutable.
func (e *Engine) Materialize(d Description) (*RatingGroup, error) {
	g, _, err := e.cachedMaterialize(d)
	return g, err
}

func (e *Engine) materialize(d Description) (*RatingGroup, error) {
	ug, err := e.EntityGroup(d, ReviewerSide)
	if err != nil {
		return nil, err
	}
	ig, err := e.EntityGroup(d, ItemSide)
	if err != nil {
		return nil, err
	}
	g := &RatingGroup{Desc: d, Reviewers: ug, Items: ig}

	uCount, iCount := ug.Count(), ig.Count()
	switch {
	case uCount == 0 || iCount == 0:
		// empty group
	case d.IsEmpty():
		g.Records = make([]int32, e.DB.Ratings.Len())
		for r := range g.Records {
			g.Records[r] = int32(r)
		}
	case uCount <= iCount:
		rows := ug.Elements(nil)
		for _, u := range rows {
			for _, r := range e.DB.RecordsOfReviewer(int(u)) {
				if ig.Has(int(e.DB.Ratings.Item[r])) {
					g.Records = append(g.Records, r)
				}
			}
		}
		sortInt32(g.Records)
	default:
		rows := ig.Elements(nil)
		for _, i := range rows {
			for _, r := range e.DB.RecordsOfItem(int(i)) {
				if ug.Has(int(e.DB.Ratings.Reviewer[r])) {
					g.Records = append(g.Records, r)
				}
			}
		}
		sortInt32(g.Records)
	}
	return g, nil
}

func sortInt32(xs []int32) {
	// insertion-friendly sizes dominate; use stdlib sort semantics without
	// the interface allocation.
	if len(xs) < 2 {
		return
	}
	quicksortInt32(xs)
}

func quicksortInt32(xs []int32) {
	for len(xs) > 12 {
		p := partitionInt32(xs)
		if p < len(xs)-p {
			quicksortInt32(xs[:p])
			xs = xs[p:]
		} else {
			quicksortInt32(xs[p:])
			xs = xs[:p]
		}
	}
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func partitionInt32(xs []int32) int {
	mid := len(xs) / 2
	if xs[0] > xs[mid] {
		xs[0], xs[mid] = xs[mid], xs[0]
	}
	if xs[0] > xs[len(xs)-1] {
		xs[0], xs[len(xs)-1] = xs[len(xs)-1], xs[0]
	}
	if xs[mid] > xs[len(xs)-1] {
		xs[mid], xs[len(xs)-1] = xs[len(xs)-1], xs[mid]
	}
	pivot := xs[mid]
	i, j := 0, len(xs)-1
	for {
		for xs[i] < pivot {
			i++
		}
		for xs[j] > pivot {
			j--
		}
		if i >= j {
			return j + 1
		}
		xs[i], xs[j] = xs[j], xs[i]
		i++
		j--
	}
}

// GroupingCandidate describes one way to partition a rating group: by an
// attribute of the reviewer or item table that is not already bound by the
// group's description.
type GroupingCandidate struct {
	Side Side
	Attr string
}

// GroupingCandidates lists the attributes a rating map may group the given
// description by. Attributes already bound to a value are excluded — their
// partition would be a single subgroup.
func (e *Engine) GroupingCandidates(d Description) []GroupingCandidate {
	var out []GroupingCandidate
	for _, side := range []Side{ReviewerSide, ItemSide} {
		t := e.table(side)
		for a := 0; a < t.Schema.Len(); a++ {
			name := t.Schema.At(a).Name
			if d.BindsAttr(side, name) {
				continue
			}
			if t.ValueCardinality(a) < 2 {
				continue
			}
			out = append(out, GroupingCandidate{Side: side, Attr: name})
		}
	}
	return out
}

// AttributeValues returns the registered values of an attribute, sorted.
func (e *Engine) AttributeValues(side Side, attr string) ([]string, error) {
	t := e.table(side)
	a := t.Schema.Index(attr)
	if a < 0 {
		return nil, fmt.Errorf("query: %s has no attribute %q", side, attr)
	}
	return t.Dict(a).Values(), nil
}
