package query

import "math/bits"

// Bitset is a fixed-size set of row ids used to materialize reviewer and
// item groups cheaply. Intersection of per-selector bitsets implements
// conjunctive group descriptions.
type Bitset struct {
	words []uint64
	n     int
}

// NewBitset returns an empty bitset over the universe {0..n-1}.
func NewBitset(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// FullBitset returns a bitset with all n elements set.
func FullBitset(n int) *Bitset {
	b := NewBitset(n)
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	b.trim()
	return b
}

// trim clears bits beyond n-1 in the last word.
func (b *Bitset) trim() {
	if rem := b.n % 64; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (uint64(1) << uint(rem)) - 1
	}
}

// Universe returns the size n of the universe.
func (b *Bitset) Universe() int { return b.n }

// Set adds element i.
func (b *Bitset) Set(i int) { b.words[i/64] |= 1 << uint(i%64) }

// Clear removes element i.
func (b *Bitset) Clear(i int) { b.words[i/64] &^= 1 << uint(i%64) }

// Has reports membership of i.
func (b *Bitset) Has(i int) bool { return b.words[i/64]&(1<<uint(i%64)) != 0 }

// Count returns the number of elements.
func (b *Bitset) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IntersectWith removes from b every element not in o.
func (b *Bitset) IntersectWith(o *Bitset) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] &= o.words[i]
		} else {
			b.words[i] = 0
		}
	}
}

// UnionWith adds to b every element of o.
func (b *Bitset) UnionWith(o *Bitset) {
	for i := range b.words {
		if i < len(o.words) {
			b.words[i] |= o.words[i]
		}
	}
	b.trim()
}

// Clone returns an independent copy.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Equal reports whether two bitsets contain the same elements.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i := range b.words {
		if b.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Reset removes every element, keeping the universe and allocation.
func (b *Bitset) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Range calls f for each member in ascending order. It is the
// allocation-free counterpart of Elements, used by the ratingmap scan
// kernel to fold only the touched rows of its dense counter blocks.
func (b *Bitset) Range(f func(i int)) {
	for wi, w := range b.words {
		base := wi * 64
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			f(base + tz)
			w &= w - 1
		}
	}
}

// Elements appends all members in ascending order to dst and returns it.
func (b *Bitset) Elements(dst []int32) []int32 {
	for wi, w := range b.words {
		base := wi * 64
		for w != 0 {
			tz := bits.TrailingZeros64(w)
			dst = append(dst, int32(base+tz))
			w &= w - 1
		}
	}
	return dst
}
