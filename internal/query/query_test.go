package query

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subdex/internal/dataset"
)

func sel(side Side, attr, value string) Selector {
	return Selector{Side: side, Attr: attr, Value: value}
}

func TestNewDescriptionCanonical(t *testing.T) {
	a := sel(ReviewerSide, "gender", "F")
	b := sel(ItemSide, "city", "NYC")
	d1 := MustDescription(a, b)
	d2 := MustDescription(b, a)
	if !d1.Equal(d2) {
		t.Fatal("selector order must not matter")
	}
	if d1.Len() != 2 {
		t.Fatalf("Len = %d", d1.Len())
	}
	// Duplicates collapse.
	d3 := MustDescription(a, a, b)
	if d3.Len() != 2 {
		t.Fatalf("duplicate selector not collapsed: %d", d3.Len())
	}
}

func TestNewDescriptionRejectsConflicts(t *testing.T) {
	if _, err := NewDescription(sel(ReviewerSide, "gender", "F"), sel(ReviewerSide, "gender", "M")); err == nil {
		t.Fatal("two values for one attribute must be rejected")
	}
	if _, err := NewDescription(Selector{Side: ReviewerSide, Attr: "", Value: "x"}); err == nil {
		t.Fatal("empty attribute must be rejected")
	}
	// Same attribute name on different sides is fine.
	if _, err := NewDescription(sel(ReviewerSide, "city", "a"), sel(ItemSide, "city", "b")); err != nil {
		t.Fatal(err)
	}
}

func TestDescriptionAlgebra(t *testing.T) {
	a := sel(ReviewerSide, "gender", "F")
	b := sel(ItemSide, "city", "NYC")
	d := MustDescription(a)

	d2, err := d.With(b)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Has(a) || !d2.Has(b) {
		t.Fatal("With lost a selector")
	}
	// With then Without round-trips.
	d3, err := d2.Without(b)
	if err != nil {
		t.Fatal(err)
	}
	if !d3.Equal(d) {
		t.Fatalf("With∘Without ≠ identity: %s vs %s", d3, d)
	}
	// Without of an absent selector errors.
	if _, err := d.Without(b); err == nil {
		t.Fatal("removing absent selector must fail")
	}
	// Change rebinds.
	d4, err := d.WithChanged(a, "M")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d4.ValueOf(ReviewerSide, "gender"); v != "M" {
		t.Fatalf("WithChanged: got %q", v)
	}
	if _, err := d.WithChanged(b, "LA"); err == nil {
		t.Fatal("changing absent selector must fail")
	}
}

func TestDescriptionEditDistance(t *testing.T) {
	a := sel(ReviewerSide, "gender", "F")
	b := sel(ItemSide, "city", "NYC")
	c := sel(ReviewerSide, "age", "young")
	d0 := MustDescription()
	d1 := MustDescription(a)
	d2 := MustDescription(a, b)
	dChanged := MustDescription(sel(ReviewerSide, "gender", "M"))

	cases := []struct {
		x, y Description
		want int
	}{
		{d0, d0, 0},
		{d0, d1, 1},
		{d1, d2, 1},
		{d1, dChanged, 1}, // value change counts 1
		{d2, MustDescription(c), 3},
		{d2, d0, 2},
	}
	for _, tc := range cases {
		if got := tc.x.EditDistance(tc.y); got != tc.want {
			t.Errorf("EditDistance(%s, %s) = %d, want %d", tc.x, tc.y, got, tc.want)
		}
		if got := tc.y.EditDistance(tc.x); got != tc.want {
			t.Errorf("EditDistance must be symmetric for %s / %s", tc.x, tc.y)
		}
	}
}

func TestDescriptionString(t *testing.T) {
	if got := MustDescription().String(); got != "TRUE" {
		t.Errorf("empty description = %q", got)
	}
	d := MustDescription(sel(ReviewerSide, "gender", "F"))
	if got := d.String(); got != "reviewers.gender='F'" {
		t.Errorf("String = %q", got)
	}
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(130)
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.Set(i)
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	if !b.Has(64) || b.Has(65) {
		t.Fatal("membership wrong")
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 4 {
		t.Fatal("Clear failed")
	}
	if got := b.Elements(nil); len(got) != 4 || got[0] != 0 || got[3] != 129 {
		t.Fatalf("Elements = %v", got)
	}
}

func TestBitsetFullAndTrim(t *testing.T) {
	b := FullBitset(70)
	if b.Count() != 70 {
		t.Fatalf("FullBitset count = %d, want 70", b.Count())
	}
	if b.Has(70) {
		t.Fatal("bit beyond universe set")
	}
}

func TestBitsetSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(200)
		a, b := NewBitset(n), NewBitset(n)
		ref := make(map[int]int) // 1=a, 2=b, 3=both
		for i := 0; i < n/2+1; i++ {
			x := r.Intn(n)
			a.Set(x)
			ref[x] |= 1
			y := r.Intn(n)
			b.Set(y)
			ref[y] |= 2
		}
		inter := a.Clone()
		inter.IntersectWith(b)
		union := a.Clone()
		union.UnionWith(b)
		for x, m := range ref {
			if inter.Has(x) != (m == 3) {
				return false
			}
			if !union.Has(x) {
				return false
			}
		}
		return a.Equal(a.Clone()) && !((a.Count() != b.Count()) && a.Equal(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

// buildQueryDB builds the Figure 2-style database for engine tests.
func buildQueryDB(t testing.TB) *dataset.DB {
	t.Helper()
	rs, _ := dataset.NewSchema(dataset.Attribute{Name: "gender"}, dataset.Attribute{Name: "age_group"})
	is, _ := dataset.NewSchema(
		dataset.Attribute{Name: "cuisine", Kind: dataset.MultiValued},
		dataset.Attribute{Name: "city"})
	reviewers := dataset.NewEntityTable("reviewers", rs)
	items := dataset.NewEntityTable("items", is)
	users := []struct{ g, a string }{{"F", "middle"}, {"M", "young"}, {"F", "young"}, {"M", "middle"}}
	for i, u := range users {
		reviewers.AppendRow("u"+string(rune('1'+i)), map[string]string{"gender": u.g, "age_group": u.a}, nil)
	}
	its := []struct {
		cs   []string
		city string
	}{
		{[]string{"burgers", "bbq"}, "Charlotte"},
		{[]string{"japanese", "sushi"}, "Austin"},
		{[]string{"mexican"}, "Detroit"},
		{[]string{"pizza", "italian"}, "NYC"},
	}
	for i, it := range its {
		items.AppendRow("r"+string(rune('1'+i)), map[string]string{"city": it.city},
			map[string][]string{"cuisine": it.cs})
	}
	rt, _ := dataset.NewRatingTable(dataset.Dimension{Name: "overall", Scale: 5})
	// (reviewer, item, score)
	recs := [][3]int{{0, 3, 4}, {0, 1, 5}, {1, 0, 4}, {1, 1, 3}, {2, 3, 5}, {3, 2, 2}, {2, 1, 1}}
	for _, r := range recs {
		rt.Append(r[0], r[1], []dataset.Score{dataset.Score(r[2])})
	}
	db := dataset.NewDB("q", reviewers, items, rt)
	if err := db.Freeze(); err != nil {
		t.Fatal(err)
	}
	return db
}

func TestEngineValidate(t *testing.T) {
	e, err := NewEngine(buildQueryDB(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Validate(MustDescription(sel(ReviewerSide, "gender", "F"))); err != nil {
		t.Error(err)
	}
	if err := e.Validate(MustDescription(sel(ReviewerSide, "nope", "F"))); err == nil {
		t.Error("unknown attribute must fail validation")
	}
	if err := e.Validate(MustDescription(sel(ReviewerSide, "gender", "X"))); err == nil {
		t.Error("unknown value must fail validation")
	}
}

func TestEngineRequiresFrozen(t *testing.T) {
	db := buildQueryDB(t)
	raw := dataset.NewDB("unfrozen", db.Reviewers, db.Items, db.Ratings)
	if _, err := NewEngine(raw); err == nil {
		t.Fatal("unfrozen database must be rejected")
	}
}

// naiveMaterialize recomputes a rating group by brute force for comparison.
func naiveMaterialize(db *dataset.DB, d Description) []int32 {
	match := func(t *dataset.EntityTable, side Side, row int) bool {
		for _, s := range d.SideSelectors(side) {
			a := t.Schema.Index(s.Attr)
			v, ok := t.Dict(a).Lookup(s.Value)
			if !ok || !t.HasValue(a, row, v) {
				return false
			}
		}
		return true
	}
	var out []int32
	for r := 0; r < db.Ratings.Len(); r++ {
		if match(db.Reviewers, ReviewerSide, int(db.Ratings.Reviewer[r])) &&
			match(db.Items, ItemSide, int(db.Ratings.Item[r])) {
			out = append(out, int32(r))
		}
	}
	return out
}

func TestMaterializeMatchesNaive(t *testing.T) {
	db := buildQueryDB(t)
	e, _ := NewEngine(db)
	descs := []Description{
		MustDescription(),
		MustDescription(sel(ReviewerSide, "gender", "F")),
		MustDescription(sel(ItemSide, "city", "NYC")),
		MustDescription(sel(ReviewerSide, "gender", "F"), sel(ItemSide, "city", "NYC")),
		MustDescription(sel(ItemSide, "cuisine", "sushi")),
		MustDescription(sel(ReviewerSide, "age_group", "young"), sel(ItemSide, "cuisine", "japanese")),
	}
	for _, d := range descs {
		g, err := e.Materialize(d)
		if err != nil {
			t.Fatalf("%s: %v", d, err)
		}
		want := naiveMaterialize(db, d)
		if len(g.Records) != len(want) {
			t.Fatalf("%s: got %v, want %v", d, g.Records, want)
		}
		for i := range want {
			if g.Records[i] != want[i] {
				t.Fatalf("%s: got %v, want %v", d, g.Records, want)
			}
		}
	}
}

func TestMaterializeEmptyGroup(t *testing.T) {
	db := buildQueryDB(t)
	e, _ := NewEngine(db)
	// F reviewers on Detroit items: no record (only u4/M rated Detroit).
	g, err := e.Materialize(MustDescription(
		sel(ReviewerSide, "gender", "F"), sel(ItemSide, "city", "Detroit")))
	if err != nil {
		t.Fatal(err)
	}
	if g.Len() != 0 {
		t.Fatalf("expected empty group, got %d records", g.Len())
	}
}

func TestGroupingCandidatesExcludeBound(t *testing.T) {
	db := buildQueryDB(t)
	e, _ := NewEngine(db)
	all := e.GroupingCandidates(MustDescription())
	if len(all) != 4 {
		t.Fatalf("expected 4 grouping candidates, got %v", all)
	}
	bound := e.GroupingCandidates(MustDescription(sel(ReviewerSide, "gender", "F")))
	if len(bound) != 3 {
		t.Fatalf("bound attribute must be excluded: got %v", bound)
	}
}

func TestCandidateOperationsRespectEditDistance(t *testing.T) {
	db := buildQueryDB(t)
	e, _ := NewEngine(db)
	cur := MustDescription(sel(ReviewerSide, "gender", "F"), sel(ItemSide, "city", "NYC"))
	ops, err := e.CandidateOperations(cur, DefaultCandidateLimits())
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) == 0 {
		t.Fatal("no candidates")
	}
	seen := map[string]bool{}
	for _, op := range ops {
		if d := cur.EditDistance(op.Target); d > 2 || d == 0 {
			t.Errorf("candidate %s at edit distance %d", op, d)
		}
		k := op.Target.Key()
		if seen[k] {
			t.Errorf("duplicate candidate target %s", op.Target)
		}
		seen[k] = true
	}
}

func TestCandidateOperationsLimits(t *testing.T) {
	db := buildQueryDB(t)
	e, _ := NewEngine(db)
	lim := CandidateLimits{MaxCandidates: 3, IncludeCombined: true}
	ops, err := e.CandidateOperations(MustDescription(), lim)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) > 3 {
		t.Fatalf("MaxCandidates violated: %d", len(ops))
	}
}

func TestAttributeValues(t *testing.T) {
	db := buildQueryDB(t)
	e, _ := NewEngine(db)
	vs, err := e.AttributeValues(ItemSide, "city")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 4 {
		t.Fatalf("cities = %v", vs)
	}
	if _, err := e.AttributeValues(ItemSide, "nope"); err == nil {
		t.Fatal("unknown attribute must error")
	}
}

func TestGroupCache(t *testing.T) {
	db := buildQueryDB(t)
	e, _ := NewEngine(db)
	e.EnableGroupCache(1000)
	d := MustDescription(sel(ReviewerSide, "gender", "F"))
	g1, err := e.Materialize(d)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Materialize(d)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Fatal("second materialization must be served from the cache")
	}
	// Different description: different group.
	g3, _ := e.Materialize(MustDescription(sel(ItemSide, "city", "NYC")))
	if g3 == g1 {
		t.Fatal("cache must key by description")
	}
	// Disabling clears.
	e.EnableGroupCache(0)
	g4, _ := e.Materialize(d)
	if g4 == g1 {
		t.Fatal("disabled cache must re-materialize")
	}
}

func TestGroupCacheEviction(t *testing.T) {
	db := buildQueryDB(t)
	e, _ := NewEngine(db)
	// Budget of 4 records: the root group (7 records) must never cache;
	// small groups evict each other. (Gender F covers 4 records.)
	e.EnableGroupCache(4)
	root, _ := e.Materialize(MustDescription())
	again, _ := e.Materialize(MustDescription())
	if root == again {
		t.Fatal("over-budget group must not be cached")
	}
	dF := MustDescription(sel(ReviewerSide, "gender", "F"))
	a, _ := e.Materialize(dF) // 4 records, fills the budget
	b, _ := e.Materialize(dF)
	if a != b {
		t.Fatal("small group should be cached")
	}
	// A second small group evicts the first.
	dM := MustDescription(sel(ReviewerSide, "gender", "M"))
	e.Materialize(dM)
	c, _ := e.Materialize(dF)
	if c == a {
		t.Fatal("LRU eviction expected after budget overflow")
	}
}

func TestGroupCacheCorrectness(t *testing.T) {
	db := buildQueryDB(t)
	cached, _ := NewEngine(db)
	cached.EnableGroupCache(100000)
	plain, _ := NewEngine(db)
	descs := []Description{
		MustDescription(),
		MustDescription(sel(ReviewerSide, "gender", "F")),
		MustDescription(sel(ItemSide, "cuisine", "sushi")),
		MustDescription(sel(ReviewerSide, "gender", "F")), // repeat
	}
	for _, d := range descs {
		a, err := cached.Materialize(d)
		if err != nil {
			t.Fatal(err)
		}
		b, err := plain.Materialize(d)
		if err != nil {
			t.Fatal(err)
		}
		if len(a.Records) != len(b.Records) {
			t.Fatalf("%s: cached %d vs plain %d records", d, len(a.Records), len(b.Records))
		}
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				t.Fatalf("%s: record divergence", d)
			}
		}
	}
}
