// Package buildinfo identifies the running binary for observability
// surfaces: the subdex_build_info metric, the /healthz JSON, and the
// load-harness BENCH reports all echo the same three fields, so a scrape
// or a benchmark artifact always says which build produced it.
package buildinfo

import (
	"runtime"
	"runtime/debug"
)

// Info describes the running binary.
type Info struct {
	// Version is the main module's version ("(devel)" for a plain
	// `go build`, a pseudo-version or tag when built from a module proxy).
	Version string `json:"version"`
	// Commit is the VCS revision baked in by the toolchain, or "unknown"
	// when built outside a checkout. A "+dirty" suffix marks uncommitted
	// changes.
	Commit string `json:"commit"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the binary's build information. It never fails: fields the
// toolchain did not record degrade to "unknown"/"(devel)".
func Get() Info {
	info := Info{Version: "(devel)", Commit: "unknown", GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	var revision string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			revision = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if dirty {
			revision += "+dirty"
		}
		info.Commit = revision
	}
	return info
}
