package experiments

import (
	"fmt"

	"subdex/internal/core"
	"subdex/internal/study"
)

// Hotels runs the Scenario I guidance study on the Hotel-Reviews-shaped
// dataset. The paper generated this result but omitted it to save space
// ("As the Hotel Review dataset demonstrated similar trends to Yelp, we
// omit it"); this experiment fills the gap so the claim is checkable.
func Hotels(p Params) error {
	header(p.Out, "Extension: Scenario I guidance on Hotel Reviews (omitted from the paper for space)")
	ex, groups, err := buildScenarioI("Hotels", p, studyConfig())
	if err != nil {
		return err
	}
	runner := &study.Runner{Ex: ex, Detector: &study.IrregularDetector{Groups: groups},
		PathLen: scenarioIPathLen}

	tw := newTab(p.Out)
	fmt.Fprintln(tw, "\tHigh Domain Knowledge\tLow Domain Knowledge")
	rows := []struct {
		label string
		cs    study.CSLevel
		modes [2]core.Mode
	}{
		{"High CS Expertise", study.HighCS, [2]core.Mode{core.UserDriven, core.RecommendationPowered}},
		{"Low CS Expertise", study.LowCS, [2]core.Mode{core.RecommendationPowered, core.FullyAutomated}},
	}
	for _, r := range rows {
		cells := make([]string, 2)
		for di, dom := range []study.DomainLevel{study.HighDomain, study.LowDomain} {
			var parts []string
			for _, mode := range r.modes {
				cell, err := runner.RunCell(mode, r.cs, dom, p.subjects(), p.seed()+4000)
				if err != nil {
					return err
				}
				parts = append(parts, fmt.Sprintf("%s: %.1f", modeAbbrev(mode), cell.Mean()))
			}
			cells[di] = parts[0] + ", " + parts[1]
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.label, cells[0], cells[1])
	}
	return tw.Flush()
}
