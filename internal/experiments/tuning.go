package experiments

import (
	"fmt"

	"subdex/internal/core"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
	"subdex/internal/study"
)

// Table5 reproduces the utility/diversity trade-off: Fully-Automated paths
// of 7 steps with k=3 under l ∈ {1 (utility-only), 2, 3, diversity-only},
// reporting the number of distinct grouping attributes shown, the total
// utility, and the average per-step pairwise diversity.
func Table5(p Params) error {
	header(p.Out, "Table 5: Utility and diversity across the pruning-diversity factor l")
	tw := newTab(p.Out)
	fmt.Fprintln(tw, "Variant\tDataset\t#attributes\tutility\tdiversity")
	variants := []struct {
		name          string
		l             int
		diversityOnly bool
	}{
		{"Utility-Only (l=1)", 1, false},
		{"l=2", 2, false},
		{"l=3", 3, false},
		{"Diversity-Only", 3, true},
	}
	type cell struct {
		attrs     int
		utility   float64
		diversity float64
	}
	results := make(map[string]map[string]cell)
	for _, ds := range []string{"Movielens", "Yelp"} {
		// Fix the next-action operations (the paper generates the path with
		// the Fully-Automated mode once), then replay the same selections
		// under each variant so only map selection differs.
		ex, _, err := buildScenarioI(ds, p, core.DefaultConfig())
		if err != nil {
			return err
		}
		descs, err := autoPathDescs(ex, scenarioIPathLen)
		if err != nil {
			return err
		}
		for _, v := range variants {
			cfg := core.DefaultConfig()
			cfg.L = v.l
			cfg.DiversityOnly = v.diversityOnly
			vex, _, err := buildScenarioI(ds, p, cfg)
			if err != nil {
				return err
			}
			sum, err := replayPath(vex, descs)
			if err != nil {
				return err
			}
			if results[v.name] == nil {
				results[v.name] = make(map[string]cell)
			}
			results[v.name][ds] = cell{sum.DistinctAttributes, sum.TotalUtility, sum.AvgDiversity}
		}
	}
	for _, v := range variants {
		for _, ds := range []string{"Movielens", "Yelp"} {
			c := results[v.name][ds]
			fmt.Fprintf(tw, "%s\t%s\t%d\t%.1f\t%.3f\n", v.name, ds, c.attrs, c.utility, c.diversity)
		}
	}
	return tw.Flush()
}

// autoPathDescs generates the description sequence of a Fully-Automated
// path with the given explorer.
func autoPathDescs(ex *core.Explorer, steps int) ([]query.Description, error) {
	sess, err := core.NewSession(ex, core.FullyAutomated, query.Description{})
	if err != nil {
		return nil, err
	}
	var descs []query.Description
	for i := 0; i < steps; i++ {
		res, err := sess.Step()
		if err != nil {
			return nil, err
		}
		descs = append(descs, res.Desc)
		if i == steps-1 || len(res.Recommendations) == 0 {
			break
		}
		if err := sess.Apply(res.Recommendations[0].Op); err != nil {
			return nil, err
		}
	}
	return descs, nil
}

// replayPath walks a fixed description sequence under the explorer's own
// configuration (User-Driven: no recommendations are computed) and returns
// the path summary.
func replayPath(ex *core.Explorer, descs []query.Description) (core.PathSummary, error) {
	sess, err := core.NewSession(ex, core.UserDriven, query.Description{})
	if err != nil {
		return core.PathSummary{}, err
	}
	for _, d := range descs {
		if err := sess.ApplyDescription(d); err != nil {
			return core.PathSummary{}, err
		}
		if _, err := sess.Step(); err != nil {
			return core.PathSummary{}, err
		}
	}
	return sess.Summarize(), nil
}

// Fig9 reproduces the rating-dimension balance experiment on Yelp (4
// dimensions): the number of displayed rating maps per dimension over a
// Fully-Automated path, with and without the dimension-weighted utility of
// Equation 1.
func Fig9(p Params) error {
	header(p.Out, "Figure 9: Rating maps per dimension, with vs without dimension weights (Yelp)")
	tw := newTab(p.Out)
	fmt.Fprintln(tw, "Variant\toverall\tfood\tservice\tambiance")
	// Fix the path once, then replay under both weighting variants.
	base, _, err := buildScenarioI("Yelp", p, core.DefaultConfig())
	if err != nil {
		return err
	}
	descs, err := autoPathDescs(base, scenarioIPathLen)
	if err != nil {
		return err
	}
	for _, weighted := range []bool{true, false} {
		cfg := core.DefaultConfig()
		cfg.Engine.Utility.DisableDimensionWeights = !weighted
		ex, _, err := buildScenarioI("Yelp", p, cfg)
		if err != nil {
			return err
		}
		sum, err := replayPath(ex, descs)
		if err != nil {
			return err
		}
		label := "with DW weights"
		if !weighted {
			label = "without weights"
		}
		fmt.Fprintf(tw, "%s", label)
		for d := 0; d < 4; d++ {
			fmt.Fprintf(tw, "\t%d", sum.MapsPerDimension[d])
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Ablation reproduces the §5.2.3 "Utility criteria" study: Fully-Automated
// paths generated with single-criterion utilities and with the average
// aggregation, scored on the Scenario I task, against the paper's finding
// that every variant is inferior to the max-of-all-criteria utility.
func Ablation(p Params) error {
	header(p.Out, "§5.2.3 ablation: utility-criteria variants (avg # identified irregular groups)")
	tw := newTab(p.Out)
	fmt.Fprintln(tw, "Utility variant\tMovielens\tYelp")
	variants := []struct {
		name string
		mut  func(*core.Config)
	}{
		{"max of all criteria (paper)", func(c *core.Config) {}},
		{"average of all criteria", func(c *core.Config) {
			c.Engine.Utility.Aggregation = ratingmap.AggAvg
		}},
		{"conciseness only", func(c *core.Config) {
			c.Engine.Utility.Aggregation = ratingmap.AggSingle
			c.Engine.Utility.Single = ratingmap.Conciseness
		}},
		{"agreement only", func(c *core.Config) {
			c.Engine.Utility.Aggregation = ratingmap.AggSingle
			c.Engine.Utility.Single = ratingmap.Agreement
		}},
		{"self-peculiarity only", func(c *core.Config) {
			c.Engine.Utility.Aggregation = ratingmap.AggSingle
			c.Engine.Utility.Single = ratingmap.PecSelf
		}},
		{"global-peculiarity only", func(c *core.Config) {
			c.Engine.Utility.Aggregation = ratingmap.AggSingle
			c.Engine.Utility.Single = ratingmap.PecGlobal
		}},
		{"KL peculiarity (§4.1 alternative)", func(c *core.Config) {
			c.Engine.Utility.Peculiarity = ratingmap.PecKL
		}},
	}
	for _, v := range variants {
		var scores [2]float64
		for di, ds := range []string{"Movielens", "Yelp"} {
			cfg := studyConfig()
			v.mut(&cfg)
			ex, groups, err := buildScenarioI(ds, p, cfg)
			if err != nil {
				return err
			}
			det := &study.IrregularDetector{Groups: groups}
			path, err := study.GeneratePath(ex, study.SubdexSource{}, scenarioIPathLen)
			if err != nil {
				return err
			}
			scores[di] = study.ScorePath(ex, det, path, p.subjects(), p.seed()+1500)
		}
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\n", v.name, scores[0], scores[1])
	}
	return tw.Flush()
}
