package experiments

// Fig7YelpOnly runs only the Yelp half of Figure 7 (calibration helper,
// reachable via `sdebench -run fig7yelp`).
func Fig7YelpOnly(p Params) error {
	if err := fig7Scenario(p, "Yelp", 1); err != nil {
		return err
	}
	return fig7Scenario(p, "Yelp", 2)
}
