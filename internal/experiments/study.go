package experiments

import (
	"fmt"

	"subdex/internal/baselines"
	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/gen"
	"subdex/internal/stats"
	"subdex/internal/study"
)

// scenarioIPathLen and scenarioIIPathLen are the Table 3 defaults.
const (
	scenarioIPathLen  = 7
	scenarioIIPathLen = 10
)

// studyConfig is the configuration used for the simulated user study: the
// Table 3 defaults, with the recommendation builder's per-operation record
// sample and per-attribute value cap tightened so a full study (hundreds of
// guided sessions) completes in minutes.
func studyConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.RecSampleSize = 500
	cfg.Limits.MaxValuesPerAttribute = 8
	return cfg
}

// Fig7 reproduces the exploration-guidance study: for each dataset and
// scenario, the mean number of identified irregular groups (scenario I) or
// insights (scenario II) per treatment cell. High-CS subjects run
// User-Driven and Recommendation-Powered; low-CS subjects run
// Recommendation-Powered and Fully-Automated, as in the paper's assignment.
func Fig7(p Params) error {
	header(p.Out, "Figure 7: Exploration guidance (avg identified, n="+fmt.Sprint(p.subjects())+" per cell)")
	for _, ds := range []string{"Movielens", "Yelp"} {
		if err := fig7Scenario(p, ds, 1); err != nil {
			return err
		}
		if err := fig7Scenario(p, ds, 2); err != nil {
			return err
		}
	}
	return nil
}

func fig7Scenario(p Params, ds string, scenario int) error {
	runner, err := scenarioRunner(p, ds, scenario)
	if err != nil {
		return err
	}
	fmt.Fprintf(p.Out, "\nScenario %s — %s\n", roman(scenario), ds)
	tw := newTab(p.Out)
	fmt.Fprintln(tw, "\tHigh Domain Knowledge\tLow Domain Knowledge")
	type pair struct {
		label string
		cs    study.CSLevel
		modes [2]core.Mode
	}
	rows := []pair{
		{"High CS Expertise", study.HighCS, [2]core.Mode{core.UserDriven, core.RecommendationPowered}},
		{"Low CS Expertise", study.LowCS, [2]core.Mode{core.RecommendationPowered, core.FullyAutomated}},
	}
	var anovaGroups [][]float64
	stdSum, stdN := 0.0, 0
	for _, r := range rows {
		cells := make([]string, 2)
		for di, dom := range []study.DomainLevel{study.HighDomain, study.LowDomain} {
			var parts []string
			for _, mode := range r.modes {
				cell, err := runner.RunCell(mode, r.cs, dom, p.subjects(), p.seed()+int64(scenario)*100)
				if err != nil {
					return err
				}
				parts = append(parts, fmt.Sprintf("%s: %.1f", modeAbbrev(mode), cell.Mean()))
				anovaGroups = append(anovaGroups, cell.Results)
				stdSum += cell.StdDev()
				stdN++
			}
			cells[di] = parts[0] + ", " + parts[1]
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\n", r.label, cells[0], cells[1])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// The paper reports the average standard deviation under the figure
	// (0.2 for scenario I, 0.4 for II) and verifies via ANOVA that
	// same-treatment subgroups do not differ significantly.
	a := stats.OneWayANOVA(anovaGroups)
	fmt.Fprintf(p.Out, "avg std across cells: %.2f | one-way ANOVA: F=%.2f p=%.3f\n",
		stdSum/float64(stdN), a.F, a.P)
	return nil
}

func modeAbbrev(m core.Mode) string {
	switch m {
	case core.UserDriven:
		return "UD"
	case core.RecommendationPowered:
		return "RP"
	default:
		return "FA"
	}
}

func roman(n int) string {
	if n == 1 {
		return "I"
	}
	return "II"
}

// scenarioRunner builds the runner for a dataset and scenario.
func scenarioRunner(p Params, ds string, scenario int) (*study.Runner, error) {
	cfg := studyConfig()
	if scenario == 1 {
		ex, groups, err := buildScenarioI(ds, p, cfg)
		if err != nil {
			return nil, err
		}
		return &study.Runner{Ex: ex, Detector: &study.IrregularDetector{Groups: groups},
			PathLen: scenarioIPathLen}, nil
	}
	// Scenario II: regenerate with planted insights.
	var insights []gen.Insight
	var genFn func(gen.Config) (*dataset.DB, error)
	switch ds {
	case "Movielens":
		insights = gen.MovielensInsights()
		genFn = gen.Movielens
	case "Yelp":
		insights = gen.YelpInsights()
		genFn = gen.Yelp
	default:
		return nil, fmt.Errorf("experiments: scenario II undefined for %q", ds)
	}
	db, err := genFn(gen.Config{Seed: p.seed(), Scale: p.scale(),
		ForcedBiases: gen.InsightBiases(insights)})
	if err != nil {
		return nil, err
	}
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		return nil, err
	}
	return &study.Runner{Ex: ex, Detector: &study.InsightDetector{Insights: insights},
		PathLen: scenarioIIPathLen, BreadthTask: true}, nil
}

// Fig8 reproduces the recall-vs-steps curve: for each mode, subjects run
// without a step cap and the cumulative identification fraction per step
// is reported. The paper prints scenario I on Movielens; both scenarios
// are rendered here (the paper reports they trend alike).
func Fig8(p Params) error {
	if err := fig8Scenario(p, 1); err != nil {
		return err
	}
	return fig8Scenario(p, 2)
}

func fig8Scenario(p Params, scenario int) error {
	header(p.Out, fmt.Sprintf("Figure 8: Recall vs exploration steps (Movielens, scenario %s)", roman(scenario)))
	const maxSteps = 14
	runner, err := scenarioRunner(p, "Movielens", scenario)
	if err != nil {
		return err
	}
	runner.PathLen = maxSteps
	tw := newTab(p.Out)
	fmt.Fprint(tw, "steps")
	for s := 1; s <= maxSteps; s++ {
		fmt.Fprintf(tw, "\t%d", s)
	}
	fmt.Fprintln(tw)
	for _, mode := range []core.Mode{core.UserDriven, core.RecommendationPowered, core.FullyAutomated} {
		recall := make([]float64, maxSteps)
		n := p.subjects()
		for i := 0; i < n; i++ {
			cs := study.LowCS
			if i%2 == 0 {
				cs = study.HighCS
			}
			subj := study.NewSubject(i, cs, study.HighDomain, p.seed()+500)
			out, err := runner.Run(subj, mode)
			if err != nil {
				return err
			}
			for s := 0; s < maxSteps; s++ {
				v := 0
				if s < len(out.PerStepIdentified) {
					v = out.PerStepIdentified[s]
				} else if len(out.PerStepIdentified) > 0 {
					v = out.PerStepIdentified[len(out.PerStepIdentified)-1]
				}
				recall[s] += float64(v)
			}
		}
		total := float64(runner.Detector.NumTargets() * n)
		fmt.Fprintf(tw, "%s", modeAbbrev(mode))
		for s := 0; s < maxSteps; s++ {
			fmt.Fprintf(tw, "\t%.2f", recall[s]/total)
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Table4 reproduces the recommendation-quality comparison: Fully-Automated
// paths whose next-action operations come from SubDEx, Smart Drill-Down,
// or Qagview (rating-map sets fixed to SubDEx's), scored by the average
// number of irregular groups subjects identify on the path.
func Table4(p Params) error {
	header(p.Out, "Table 4: Quality of recommendations (avg # identified irregular groups)")
	tw := newTab(p.Out)
	fmt.Fprintln(tw, "Baseline\tMovielens\tYelp\tpaper(ML)\tpaper(Yelp)")
	paper := map[string][2]float64{
		"SubDEx": {0.9, 0.8}, "SDD": {0.6, 0.4}, "Qagview": {0.7, 0.5},
	}
	sources := []study.OpSource{
		study.SubdexSource{},
		&study.SDDSource{SDD: baselines.SmartDrillDown{}},
		&study.QagviewSource{Qagview: baselines.Qagview{}},
	}
	results := make(map[string][2]float64)
	for di, ds := range []string{"Movielens", "Yelp"} {
		ex, groups, err := buildScenarioI(ds, p, studyConfig())
		if err != nil {
			return err
		}
		det := &study.IrregularDetector{Groups: groups}
		for _, src := range sources {
			path, err := study.GeneratePath(ex, src, scenarioIPathLen)
			if err != nil {
				return err
			}
			score := study.ScorePath(ex, det, path, p.subjects(), p.seed()+900)
			r := results[src.Name()]
			r[di] = score
			results[src.Name()] = r
		}
	}
	for _, src := range sources {
		name := src.Name()
		r := results[name]
		pp := paper[name]
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%.1f\n", name, r[0], r[1], pp[0], pp[1])
	}
	return tw.Flush()
}

// Table6 reproduces the utility-only vs diversity-only path comparison for
// Scenario I: Fully-Automated paths generated with l=1 (utility-only) and
// with diversity-only selection, scored by subjects.
func Table6(p Params) error {
	header(p.Out, "Table 6: Avg # identified irregular groups, utility-only vs diversity-only paths")
	tw := newTab(p.Out)
	fmt.Fprintln(tw, "Dataset\tUtility-only\tDiversity-only\tpaper(U)\tpaper(D)")
	paper := map[string][2]float64{"Movielens": {1.4, 0.6}, "Yelp": {1.3, 0.6}}
	// The next-action operations are fixed (the paper generates the path
	// with the Fully-Automated mode and varies only the selected maps,
	// §5.2.3), and a single path is one sample, so average over several
	// planting seeds.
	const pathSamples = 3
	for _, ds := range []string{"Movielens", "Yelp"} {
		var scores [2]float64
		for sample := 0; sample < pathSamples; sample++ {
			sp := p
			sp.Seed = p.seed() + int64(sample)*37
			base, groups, err := buildScenarioI(ds, sp, studyConfig())
			if err != nil {
				return err
			}
			det := &study.IrregularDetector{Groups: groups}
			fixed, err := study.GeneratePath(base, study.SubdexSource{}, scenarioIPathLen)
			if err != nil {
				return err
			}
			for vi, variant := range []string{"utility", "diversity"} {
				cfg := studyConfig()
				if variant == "utility" {
					cfg.L = 1
				} else {
					cfg.DiversityOnly = true
				}
				vex, _, err := buildScenarioI(ds, sp, cfg)
				if err != nil {
					return err
				}
				path, err := study.ReplayPath(vex, fixed)
				if err != nil {
					return err
				}
				scores[vi] += study.ScorePath(vex, det, path, p.subjects(), p.seed()+1200)
			}
		}
		pp := paper[ds]
		fmt.Fprintf(tw, "%s\t%.2f\t%.2f\t%.1f\t%.1f\n",
			ds, scores[0]/pathSamples, scores[1]/pathSamples, pp[0], pp[1])
	}
	return tw.Flush()
}
