// Package experiments reproduces every table and figure of the paper's
// evaluation (§5). Each experiment is a named, self-contained function that
// generates its workload, runs the system, and renders the same rows or
// series the paper reports. The per-experiment index lives in DESIGN.md;
// measured-vs-paper comparisons are recorded in EXPERIMENTS.md.
//
// Scale: experiments accept a Params struct whose Scale field shrinks the
// synthetic datasets; Scale 1.0 reproduces the paper's dataset sizes
// (Table 2). The defaults used by `cmd/sdebench` are chosen so the full
// suite completes in minutes on a laptop while preserving every reported
// shape.
package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/gen"
)

// Params carries the experiment-wide knobs.
type Params struct {
	// Scale shrinks the generated datasets (1.0 = paper size).
	Scale float64
	// Seed drives all generation and simulation.
	Seed int64
	// Subjects is the number of simulated subjects per treatment cell
	// (the paper uses 30 per cell after grouping).
	Subjects int
	// Out receives the rendered tables.
	Out io.Writer
	// BenchOut is where machine-readable bench artifacts are written
	// (benchengine's BENCH_engine.json); empty selects the default name
	// in the current directory.
	BenchOut string
}

// DefaultParams returns bench defaults: scale 0.05, 30 subjects.
func DefaultParams(out io.Writer) Params {
	return Params{Scale: 0.05, Seed: 1, Subjects: 30, Out: out}
}

func (p Params) scale() float64 {
	if p.Scale <= 0 {
		return 0.05
	}
	return p.Scale
}

func (p Params) seed() int64 {
	if p.Seed == 0 {
		return 1
	}
	return p.Seed
}

func (p Params) subjects() int {
	if p.Subjects <= 0 {
		return 30
	}
	return p.Subjects
}

func (p Params) benchOut() string {
	if p.BenchOut == "" {
		return "BENCH_engine.json"
	}
	return p.BenchOut
}

// Experiment is one runnable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Params) error
}

// All returns the experiment registry in paper order.
func All() []Experiment {
	return []Experiment{
		{"table2", "Table 2: dataset statistics", Table2},
		{"fig7", "Figure 7: exploration guidance user study", Fig7},
		{"fig7yelp", "Figure 7 (Yelp half only, calibration helper)", Fig7YelpOnly},
		{"fig8", "Figure 8: recall vs number of steps", Fig8},
		{"table4", "Table 4: quality of next-action recommendations", Table4},
		{"table5", "Table 5: utility vs diversity across l", Table5},
		{"table6", "Table 6: utility-only vs diversity-only paths", Table6},
		{"fig9", "Figure 9: rating maps per dimension with/without DW", Fig9},
		{"ablation", "§5.2.3 ablation: utility criteria variants", Ablation},
		{"fig10a", "Figure 10(a): runtime vs database size", Fig10a},
		{"fig10b", "Figure 10(b): runtime vs number of attributes", Fig10b},
		{"fig10c", "Figure 10(c): runtime vs number of attribute values", Fig10c},
		{"fig11a", "Figure 11(a): runtime vs number of rating maps k", Fig11a},
		{"fig11b", "Figure 11(b): runtime vs number of recommendations o", Fig11b},
		{"fig11c", "Figure 11(c): runtime vs pruning-diversity factor l", Fig11c},
		{"hotels", "Extension: Scenario I guidance on Hotel Reviews", Hotels},
		{"benchengine", "Engine bench: sharded accumulation + cross-step cache (BENCH_engine.json)", BenchEngine},
	}
}

// Lookup finds an experiment by id.
func Lookup(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// header prints a section banner.
func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// newTab builds a tabwriter for aligned table output.
func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// Table2 prints the dataset statistics of Table 2 for the three generated
// databases at the requested scale, next to the paper's full-scale values.
func Table2(p Params) error {
	header(p.Out, "Table 2: Examined Datasets (generated at scale "+fmt.Sprintf("%.3g", p.scale())+")")
	type row struct {
		db    *dataset.DB
		paper [6]int // atts, maxvals, dims, R, U, I
	}
	ml, err := gen.Movielens(gen.Config{Seed: p.seed(), Scale: p.scale()})
	if err != nil {
		return err
	}
	yp, err := gen.Yelp(gen.Config{Seed: p.seed(), Scale: p.scale()})
	if err != nil {
		return err
	}
	ht, err := gen.Hotels(gen.Config{Seed: p.seed(), Scale: p.scale()})
	if err != nil {
		return err
	}
	rows := []row{
		{ml, [6]int{12, 29, 1, 100000, 943, 1682}},
		{yp, [6]int{24, 13, 4, 200500, 150318, 93}},
		{ht, [6]int{8, 62, 4, 35912, 15493, 879}},
	}
	tw := newTab(p.Out)
	fmt.Fprintln(tw, "Dataset\t#Atts\tMax#Vals\t#Dims\t|R|\t|U|\t|I|\tpaper(|R|,|U|,|I|)")
	for _, r := range rows {
		s := r.db.Stats()
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t(%d, %d, %d)\n",
			s.Name, s.NumAttributes, s.MaxNumValues, s.NumDimensions,
			s.NumRatings, s.NumReviewers, s.NumItems,
			r.paper[3], r.paper[4], r.paper[5])
	}
	return tw.Flush()
}

// buildScenarioI prepares a dataset with planted irregular groups and an
// explorer, shared by several experiments.
func buildScenarioI(dsName string, p Params, cfg core.Config) (*core.Explorer, []gen.IrregularGroup, error) {
	var db *dataset.DB
	var err error
	switch dsName {
	case "Movielens":
		db, err = gen.Movielens(gen.Config{Seed: p.seed(), Scale: p.scale()})
	case "Yelp":
		db, err = gen.Yelp(gen.Config{Seed: p.seed(), Scale: p.scale()})
	case "Hotels":
		db, err = gen.Hotels(gen.Config{Seed: p.seed(), Scale: p.scale()})
	default:
		return nil, nil, fmt.Errorf("experiments: unknown dataset %q", dsName)
	}
	if err != nil {
		return nil, nil, err
	}
	groups, err := gen.PlantIrregularGroups(db, p.seed()+11, 1, 5)
	if err != nil {
		return nil, nil, err
	}
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		return nil, nil, err
	}
	return ex, groups, nil
}

// fmtDur renders a duration in milliseconds with 2 decimals.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
}
