package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"subdex/internal/engine"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// BenchEngineReport is the machine-readable artifact of the benchengine
// experiment (written to Params.BenchOut, default BENCH_engine.json). It
// captures the two optimizations this repo layers over Algorithm 1 —
// sharded parallel accumulation and the cross-step accumulator cache —
// as before/after ns-per-step pairs, plus the exactness verdict: the
// rating maps of every variant must be byte-identical (same histogram
// digests) to the sequential uncached reference.
type BenchEngineReport struct {
	GeneratedAt string  `json:"generated_at"`
	Dataset     string  `json:"dataset"`
	Scale       float64 `json:"scale"`
	Records     int     `json:"records"`
	Candidates  int     `json:"candidates"`
	Cores       int     `json:"cores"`
	Workers     int     `json:"workers"`

	// Map-based reference scan vs the fused columnar kernel, both
	// sequential and uncached: the per-step cost of the Accumulator's two
	// Update paths on identical inputs. KernelNsPerStep is the same
	// measurement as SeqNsPerStep (the default builder scans through the
	// kernel); RefNsPerStep disables it via Builder.DisableKernel. The
	// pprof paths hold CPU profiles of each arm for flamegraph inspection.
	RefNsPerStep    int64   `json:"ref_ns_per_step"`
	KernelNsPerStep int64   `json:"kernel_ns_per_step"`
	KernelSpeedup   float64 `json:"kernel_speedup"`
	RefProfile      string  `json:"ref_profile"`
	KernelProfile   string  `json:"kernel_profile"`

	// Sequential (Workers=1, no cache) vs sharded parallel accumulation.
	SeqNsPerStep int64   `json:"seq_ns_per_step"`
	ParNsPerStep int64   `json:"par_ns_per_step"`
	ParSpeedup   float64 `json:"par_speedup"`

	// Cold (miss, scan+populate) vs warm (hit, re-finalize only) steps on
	// a cache-enabled generator.
	ColdNsPerStep int64   `json:"cold_ns_per_step"`
	WarmNsPerStep int64   `json:"warm_ns_per_step"`
	WarmSpeedup   float64 `json:"warm_speedup"`

	Cache        engine.CacheStats `json:"cache"`
	CacheHitRate float64           `json:"cache_hit_rate"`

	// MapsIdentical reports whether the parallel and cached variants
	// reproduced the sequential reference's rating maps bit-for-bit.
	MapsIdentical bool `json:"maps_identical"`
}

// benchIters times fn over enough iterations to smooth scheduler noise
// and returns ns per iteration. One untimed warmup runs first.
func benchIters(iters int, fn func()) int64 {
	fn() // warmup
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start).Nanoseconds() / int64(iters)
}

// profiledIters is benchIters with a CPU profile of the timed loop
// written to path (the warmup stays outside the profile), so each bench
// arm leaves flamegraph evidence next to the JSON report.
func profiledIters(path string, iters int, fn func()) (int64, error) {
	fn() // warmup, unprofiled
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return 0, err
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	elapsed := time.Since(start)
	pprof.StopCPUProfile()
	return elapsed.Nanoseconds() / int64(iters), nil
}

// BenchEngine measures the RM-Generator's hot path on the whole-database
// Yelp group: sequential vs sharded-parallel accumulation, and cold vs
// warm cross-step cache steps. Pruning is disabled so every variant does
// identical logical work and the results are provably exact (the pruned
// paths are covered by the differential suite instead).
func BenchEngine(p Params) error {
	header(p.Out, "Engine bench: sharded accumulation + cross-step cache")
	db, err := gen.Yelp(gen.Config{Seed: p.seed(), Scale: p.scale()})
	if err != nil {
		return err
	}
	qe, err := query.NewEngine(db)
	if err != nil {
		return err
	}
	group, err := qe.Materialize(query.Description{})
	if err != nil {
		return err
	}

	g := engine.NewGenerator(db)
	cands := g.Candidates(qe, query.Description{})
	const kPrime = 9 // Table 3 defaults: k=3, l=3
	cfg := engine.DefaultConfig()
	cfg.Pruning = engine.PruneNone

	workers := runtime.NumCPU()
	if workers > 4 {
		workers = 4 // the paper's evaluation budget; keeps runs comparable
	}
	iters := 3
	if group.Len() < 200_000 {
		iters = 5
	}

	run := func(gen *engine.Generator, w int) *engine.Result {
		c := cfg
		c.Workers = w
		res, err := gen.TopMaps(group, cands, ratingmap.NewSeenSet(), kPrime, c)
		if err != nil {
			panic(err) // deterministic workload; cannot fail after the first run
		}
		return res
	}

	out := p.benchOut()

	// Kernel arm: the default builder scans through the fused columnar
	// kernel. Sequential and uncached, so it doubles as the baseline for
	// the parallel and cache comparisons below.
	seqRes := run(g, 1)
	wantDigest := ratingmap.DigestMaps(seqRes.Maps)
	// The kernel/reference pair gets extra iterations: the arms differ by
	// tens of percent, not multiples, so they need tighter error bars (and
	// enough samples for their CPU profiles) than the parallel/cache arms.
	armIters := 10 * iters
	kernelProfile := out + ".kernel.pprof"
	seqNs, err := profiledIters(kernelProfile, armIters, func() { run(g, 1) })
	if err != nil {
		return err
	}

	// Reference arm: identical logical work through the map-based Update
	// path (Builder.DisableKernel), for the kernel's before/after pair.
	gRef := engine.NewGenerator(db)
	gRef.Builder.DisableKernel = true
	refRes := run(gRef, 1)
	refProfile := out + ".ref.pprof"
	refNs, err := profiledIters(refProfile, armIters, func() { run(gRef, 1) })
	if err != nil {
		return err
	}

	// Sharded parallel accumulation.
	parRes := run(g, workers)
	parNs := benchIters(iters, func() { run(g, workers) })

	// Cross-step cache: cold populates, warm re-finalizes only.
	gc := engine.NewGenerator(db)
	gc.Cache = engine.NewTopMapsCache(2 * group.Len())
	coldStart := time.Now()
	coldRes := run(gc, workers)
	coldNs := time.Since(coldStart).Nanoseconds()
	warmNs := benchIters(5*iters, func() { run(gc, workers) })
	warmRes := run(gc, workers)
	st := gc.Cache.Stats()

	identical := ratingmap.DigestMaps(refRes.Maps) == wantDigest &&
		ratingmap.DigestMaps(parRes.Maps) == wantDigest &&
		ratingmap.DigestMaps(coldRes.Maps) == wantDigest &&
		ratingmap.DigestMaps(warmRes.Maps) == wantDigest

	rep := BenchEngineReport{
		GeneratedAt:     time.Now().UTC().Format(time.RFC3339),
		Dataset:         "yelp",
		Scale:           p.scale(),
		Records:         group.Len(),
		Candidates:      len(cands),
		Cores:           runtime.NumCPU(),
		Workers:         workers,
		RefNsPerStep:    refNs,
		KernelNsPerStep: seqNs,
		KernelSpeedup:   float64(refNs) / float64(seqNs),
		RefProfile:      refProfile,
		KernelProfile:   kernelProfile,
		SeqNsPerStep:    seqNs,
		ParNsPerStep:    parNs,
		ParSpeedup:      float64(seqNs) / float64(parNs),
		ColdNsPerStep:   coldNs,
		WarmNsPerStep:   warmNs,
		WarmSpeedup:     float64(coldNs) / float64(warmNs),
		Cache:           st,
		CacheHitRate:    st.HitRate(),
		MapsIdentical:   identical,
	}

	tw := newTab(p.Out)
	fmt.Fprintf(tw, "records\tcandidates\tcores\tworkers\n")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\n\n", rep.Records, rep.Candidates, rep.Cores, rep.Workers)
	fmt.Fprintf(tw, "variant\tns/step\tspeedup\n")
	fmt.Fprintf(tw, "map-based scan (reference)\t%d\t1.00x\n", rep.RefNsPerStep)
	fmt.Fprintf(tw, "fused kernel scan\t%d\t%.2fx\n", rep.KernelNsPerStep, rep.KernelSpeedup)
	fmt.Fprintf(tw, "sharded parallel (kernel)\t%d\t%.2fx\n", rep.ParNsPerStep, float64(rep.RefNsPerStep)/float64(rep.ParNsPerStep))
	fmt.Fprintf(tw, "cache cold (miss)\t%d\t\n", rep.ColdNsPerStep)
	fmt.Fprintf(tw, "cache warm (hit)\t%d\t%.2fx\n", rep.WarmNsPerStep, rep.WarmSpeedup)
	tw.Flush()
	fmt.Fprintf(p.Out, "cache: %d hits / %d misses (rate %.2f), maps identical: %v\n",
		st.Hits, st.Misses, rep.CacheHitRate, rep.MapsIdentical)
	if !identical {
		return fmt.Errorf("benchengine: optimized variants diverged from the sequential reference")
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(p.Out, "report written to %s\n", out)
	return nil
}
