package experiments

import (
	"fmt"
	"time"

	"subdex/internal/core"
	"subdex/internal/dataset"
	"subdex/internal/engine"
	"subdex/internal/gen"
	"subdex/internal/query"
	"subdex/internal/ratingmap"
)

// Variant is one of the six engine configurations compared in §5.3.
type Variant struct {
	Name string
	// Pruning for the RM generator.
	Pruning engine.Pruning
	// Parallel recommendation building (simulated schedule over measured
	// per-op costs; see stepCost).
	Parallel bool
}

// Variants returns the §5.1 scalability baselines in paper order.
func Variants() []Variant {
	return []Variant{
		{"SubDEx", engine.PruneBoth, true},
		{"No-Pruning", engine.PruneNone, true},
		{"CI Pruning", engine.PruneCI, true},
		{"MAB Pruning", engine.PruneMAB, true},
		{"No Parallelism", engine.PruneBoth, false},
		{"Naive", engine.PruneNone, false},
	}
}

// simCores is the core count used for the simulated parallel schedule; the
// paper sets the worker count to the number of available cores.
const simCores = 8

// stepCost measures one exploration step for a variant: the rating-map
// generation time (real, with the variant's pruning) plus the
// recommendation-building time. Candidate operations are always evaluated
// sequentially for measurement stability; the parallel variants report the
// schedule length over simCores workers (max(longest op, total/cores)),
// the sequential ones the plain sum. On the paper's multi-core server the
// schedule is what wall-clock realizes; on a 1-core CI box real wall-clock
// would serialize either way, so the deterministic schedule keeps the
// figure's shape hardware-independent.
func stepCost(ex *core.Explorer, desc query.Description, seen *ratingmap.SeenSet,
	v Variant, o int) (time.Duration, *core.StepResult, error) {
	start := time.Now()
	res, err := ex.RMSet(desc, seen)
	if err != nil {
		return 0, nil, err
	}
	genTime := time.Since(start)
	for _, rm := range res.Maps {
		seen.Add(rm)
	}
	rb := core.RecommendationBuilder{Ex: ex}
	recs, durs, err := rb.Recommend(desc, res.Maps, seen, o)
	if err != nil {
		return 0, nil, err
	}
	res.Recommendations = recs
	var recTime time.Duration
	if v.Parallel {
		var total, longest time.Duration
		for _, d := range durs {
			total += d
			if d > longest {
				longest = d
			}
		}
		recTime = total / simCores
		if longest > recTime {
			recTime = longest
		}
	} else {
		for _, d := range durs {
			recTime += d
		}
	}
	return genTime + recTime, res, nil
}

// runPath executes a Fully-Automated path under a variant and returns the
// average step cost.
func runPath(db *dataset.DB, v Variant, cfg core.Config, steps int) (time.Duration, error) {
	cfg.Engine.Pruning = v.Pruning
	ex, err := core.NewExplorer(db, cfg)
	if err != nil {
		return 0, err
	}
	seen := ratingmap.NewSeenSet()
	var cur query.Description
	var total time.Duration
	n := 0
	for s := 0; s < steps; s++ {
		cost, res, err := stepCost(ex, cur, seen, v, cfg.O)
		if err != nil {
			return 0, err
		}
		total += cost
		n++
		if len(res.Recommendations) == 0 {
			break
		}
		cur = res.Recommendations[0].Op.Target
	}
	if n == 0 {
		return 0, nil
	}
	return total / time.Duration(n), nil
}

// scalabilitySteps keeps the sweeps affordable; the paper averages across
// the whole 7-step path.
const scalabilitySteps = 2

// sweepCandidateCap bounds the per-step candidate-operation pool during
// timing sweeps so a full figure completes in seconds; all variants share
// the cap, so relative shapes are unaffected.
const sweepCandidateCap = 120

// sweepConfig is the shared configuration of the timing sweeps.
func sweepConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Limits.MaxCandidates = sweepCandidateCap
	cfg.RecSampleSize = 1000
	return cfg
}

// yelpForScale generates the Yelp database with planted irregular groups
// (scenario I, as in §5.3).
func yelpForScale(p Params) (*dataset.DB, error) {
	db, err := gen.Yelp(gen.Config{Seed: p.seed(), Scale: p.scale()})
	if err != nil {
		return nil, err
	}
	if _, err := gen.PlantIrregularGroups(db, p.seed()+11, 1, 5); err != nil {
		return nil, err
	}
	return db, nil
}

// sweep runs all variants over a list of labelled databases and prints the
// average step time per cell.
func sweep(p Params, title, xlabel string, labels []string, dbs []*dataset.DB, cfg core.Config) error {
	header(p.Out, title)
	tw := newTab(p.Out)
	fmt.Fprintf(tw, "%s", xlabel)
	for _, l := range labels {
		fmt.Fprintf(tw, "\t%s", l)
	}
	fmt.Fprintln(tw)
	for _, v := range Variants() {
		fmt.Fprintf(tw, "%s", v.Name)
		for _, db := range dbs {
			avg, err := runPath(db, v, cfg, scalabilitySteps)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", fmtDur(avg))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig10a sweeps the database size by sampling reviewers.
func Fig10a(p Params) error {
	full, err := yelpForScale(p)
	if err != nil {
		return err
	}
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	var labels []string
	var dbs []*dataset.DB
	for _, f := range fractions {
		labels = append(labels, fmt.Sprintf("%d%%", int(f*100)))
		if f == 1.0 {
			dbs = append(dbs, full)
			continue
		}
		db, err := dataset.SampleReviewers(full, f, p.seed()+31)
		if err != nil {
			return err
		}
		dbs = append(dbs, db)
	}
	return sweep(p, "Figure 10(a): avg step time vs database size (Yelp)", "size", labels, dbs, sweepConfig())
}

// Fig10b sweeps the number of attributes.
func Fig10b(p Params) error {
	full, err := yelpForScale(p)
	if err != nil {
		return err
	}
	counts := []int{4, 8, 12, 16, 20, 24}
	var labels []string
	var dbs []*dataset.DB
	for _, c := range counts {
		labels = append(labels, fmt.Sprint(c))
		db, err := dataset.KeepAttributes(full, c, p.seed()+32)
		if err != nil {
			return err
		}
		dbs = append(dbs, db)
	}
	return sweep(p, "Figure 10(b): avg step time vs #attributes (Yelp)", "#attrs", labels, dbs, sweepConfig())
}

// Fig10c sweeps the number of attribute values.
func Fig10c(p Params) error {
	full, err := yelpForScale(p)
	if err != nil {
		return err
	}
	fractions := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	var labels []string
	var dbs []*dataset.DB
	for _, f := range fractions {
		labels = append(labels, fmt.Sprintf("%d%%", int(f*100)))
		if f == 1.0 {
			dbs = append(dbs, full)
			continue
		}
		db, err := dataset.SampleAttributeValues(full, f, p.seed()+33)
		if err != nil {
			return err
		}
		dbs = append(dbs, db)
	}
	return sweep(p, "Figure 10(c): avg step time vs #attribute-values (Yelp)", "values", labels, dbs, sweepConfig())
}

// paramSweep runs all variants over one database with per-column config
// mutations.
func paramSweep(p Params, title, xlabel string, labels []string, mut func(int, *core.Config)) error {
	db, err := yelpForScale(p)
	if err != nil {
		return err
	}
	header(p.Out, title)
	tw := newTab(p.Out)
	fmt.Fprintf(tw, "%s", xlabel)
	for _, l := range labels {
		fmt.Fprintf(tw, "\t%s", l)
	}
	fmt.Fprintln(tw)
	for _, v := range Variants() {
		fmt.Fprintf(tw, "%s", v.Name)
		for i := range labels {
			cfg := sweepConfig()
			mut(i, &cfg)
			avg, err := runPath(db, v, cfg, scalabilitySteps)
			if err != nil {
				return err
			}
			fmt.Fprintf(tw, "\t%s", fmtDur(avg))
		}
		fmt.Fprintln(tw)
	}
	return tw.Flush()
}

// Fig11a sweeps k, the number of displayed rating maps.
func Fig11a(p Params) error {
	ks := []int{1, 3, 5, 7, 10}
	labels := make([]string, len(ks))
	for i, k := range ks {
		labels[i] = fmt.Sprintf("k=%d", k)
	}
	return paramSweep(p, "Figure 11(a): avg step time vs #rating maps k (Yelp)", "k", labels,
		func(i int, c *core.Config) { c.K = ks[i] })
}

// Fig11b sweeps o, the number of recommendations.
func Fig11b(p Params) error {
	os := []int{1, 3, 5, 7, 10}
	labels := make([]string, len(os))
	for i, o := range os {
		labels[i] = fmt.Sprintf("o=%d", o)
	}
	// The builder's evaluated candidate pool is proportional to the number
	// of requested recommendations (the paper's per-map builder produces
	// top-o operations per rating map), which is what makes the sequential
	// variants grow linearly in o.
	return paramSweep(p, "Figure 11(b): avg step time vs #recommendations o (Yelp)", "o", labels,
		func(i int, c *core.Config) {
			c.O = os[i]
			c.Limits.MaxCandidates = 40 * os[i]
		})
}

// Fig11c sweeps l, the pruning-diversity factor.
func Fig11c(p Params) error {
	ls := []int{1, 2, 3, 4, 5, 6}
	labels := make([]string, len(ls))
	for i, l := range ls {
		labels[i] = fmt.Sprintf("l=%d", l)
	}
	return paramSweep(p, "Figure 11(c): avg step time vs pruning-diversity factor l (Yelp)", "l", labels,
		func(i int, c *core.Config) { c.L = ls[i] })
}
