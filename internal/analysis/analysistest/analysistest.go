// Package analysistest runs framework analyzers over GOPATH-style
// fixture trees and checks their findings against `// want` comments —
// the same fixture convention as golang.org/x/tools/go/analysis/analysistest,
// reimplemented on the standard library because x/tools is not vendored.
//
// A fixture lives under testdata/src/<importpath>/ and annotates the
// lines expected to be flagged:
//
//	reg.Counter("http_requests", "...") // want `not of the form subdex_`
//
// The backquoted (or double-quoted) string is a regexp that must match
// the diagnostic message reported on that line; several expectations may
// follow one `// want`. Lines without a want comment must be clean, and
// every want must be matched — both directions are test failures.
//
// Fixture imports resolve first against testdata/src (so a fixture
// package "obs" can stand in for subdex/internal/obs — analyzers match
// package paths by suffix), then against the standard library via the
// source importer.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"subdex/internal/analysis/framework"
)

// Run analyzes the fixture packages (import paths under dir/src) with a,
// in the given order — facts flow from earlier packages to later ones —
// and reports every mismatch between actual diagnostics and // want
// expectations as test errors.
func Run(t *testing.T, dir string, a *framework.Analyzer, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	ld := &fixtureLoader{
		fset:  fset,
		root:  filepath.Join(dir, "src"),
		cache: make(map[string]*loaded),
		std:   importer.ForCompiler(fset, "source", nil),
	}
	store := make(framework.FactStore)
	for _, path := range pkgPaths {
		lp, err := ld.load(path)
		if err != nil {
			t.Fatalf("loading fixture %q: %v", path, err)
		}
		diags, err := framework.Analyze(lp.pkg, []*framework.Analyzer{a}, store)
		if err != nil {
			t.Fatalf("analyzing fixture %q: %v", path, err)
		}
		checkWants(t, fset, lp.pkg.Files, diags)
	}
}

// loaded pairs a framework package with its types package for reuse as
// an import of later fixtures.
type loaded struct {
	pkg   *framework.Package
	types *types.Package
}

// fixtureLoader resolves fixture import paths under root and everything
// else through the stdlib source importer. It implements types.Importer
// so fixtures can import each other.
type fixtureLoader struct {
	fset  *token.FileSet
	root  string
	cache map[string]*loaded
	std   types.Importer
}

func (ld *fixtureLoader) Import(path string) (*types.Package, error) {
	if st, err := os.Stat(filepath.Join(ld.root, path)); err == nil && st.IsDir() {
		lp, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return lp.types, nil
	}
	return ld.std.Import(path)
}

func (ld *fixtureLoader) load(path string) (*loaded, error) {
	if lp, ok := ld.cache[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(ld.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, e.Name()), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := framework.NewTypesInfo()
	conf := types.Config{Importer: ld, Error: func(error) {}}
	tpkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", path, err)
	}
	lp := &loaded{
		pkg: &framework.Package{
			Path: path, Fset: ld.fset, Files: files, Types: tpkg, TypesInfo: info,
		},
		types: tpkg,
	}
	ld.cache[path] = lp
	return lp, nil
}

// expectation is one // want regexp on one line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	text string
	hit  bool
}

// wantRx pulls the quoted regexps off a want comment:
// `// want `re1` "re2" ...`.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []framework.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				i := strings.Index(c.Text, "// want ")
				if i < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRx.FindAllStringSubmatch(c.Text[i+len("// want "):], -1) {
					text := m[1]
					if text == "" {
						text = m[2]
					}
					re, err := regexp.Compile(text)
					if err != nil {
						t.Errorf("%s: bad want regexp %q: %v", pos, text, err)
						continue
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, text: text})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Position.Filename && w.line == d.Position.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s", d.Position, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.text)
		}
	}
}
