package lockorder_test

import (
	"testing"

	"subdex/internal/analysis/analysistest"
	"subdex/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	// Order matters: internal/server composes with internal/sessionstore's
	// fact (ranks + interface may-acquire summaries), and cyc/high closes
	// a cycle against an edge only present in cyc/low's fact.
	analysistest.Run(t, "testdata", lockorder.Analyzer,
		"internal/sessionstore", "internal/server", "cyc/low", "cyc/high", "seeded")
}
