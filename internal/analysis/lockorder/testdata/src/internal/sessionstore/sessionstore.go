// Accepted fixture modeling the real sessionstore: a correctly ordered
// writer/swap/mirror lock stack with declared ranks, plus the Store
// interface whose merged may-acquire summary later fixtures consume
// through facts. No findings expected in this package.
package sessionstore

import "sync"

type memState struct {
	mu       sync.Mutex //subdex:lockorder rank=40 innermost: guards only the in-memory session map
	sessions map[int]int
}

// Store is the dynamic-dispatch surface: callers in internal/server
// hold their own mutexes across these calls, so the analyzer must see
// through the interface to the implementations' lock classes.
type Store interface {
	Get(id int) (int, bool, error)
}

type FileStore struct {
	st *memState

	wmu sync.Mutex //subdex:lockorder rank=10 outermost: serializes mirror+file mutation and compaction

	swapMu sync.RWMutex //subdex:lockorder rank=20 taken shared across an appender's fsync, exclusive around the compaction file swap
}

// Append is the shipped write-path ordering: wmu, mirror, then swapMu
// shared before wmu is released. Every edge here increases in rank.
func (fs *FileStore) Append() error {
	fs.wmu.Lock()
	fs.st.mu.Lock()
	fs.st.sessions[0]++
	fs.st.mu.Unlock()
	fs.swapMu.RLock()
	fs.wmu.Unlock()
	fs.swapMu.RUnlock()
	return nil
}

// Get implements Store.
func (fs *FileStore) Get(id int) (int, bool, error) {
	fs.st.mu.Lock()
	defer fs.st.mu.Unlock()
	v, ok := fs.st.sessions[id]
	return v, ok, nil
}
