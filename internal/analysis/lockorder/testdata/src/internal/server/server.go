// Cross-package fixture: server-side mutexes composed with the
// sessionstore fact. lookup is the accepted shape (map mutex below the
// store's mirror mutex); badAudit acquires a store lock while holding a
// higher-ranked mutex, caught purely through the imported fact; evict
// exercises the TryLock exemption; withReason and withoutReason pin the
// suppression contract.
package server

import (
	"sync"

	"internal/sessionstore"
)

type Server struct {
	mu sync.Mutex //subdex:lockorder rank=30 session-map mutex: held across store reads, below every store-internal mutex

	audit sync.Mutex //subdex:lockorder rank=50 leaf mutex: nothing may be acquired under it

	store sessionstore.Store
}

type entry struct {
	mu sync.Mutex
}

type loose struct {
	//subdex:lockorder
	mu sync.Mutex // want `must be rank=N followed by a reason`
}

func (s *Server) lookup(id int) (int, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.Get(id) // rank 30 -> rank 40 through the Store fact: accepted
}

func (s *Server) badAudit(id int) (int, bool, error) {
	s.audit.Lock()
	defer s.audit.Unlock()
	return s.store.Get(id) // want `acquires internal/sessionstore\.\(memState\)\.mu \(rank 40\) while holding internal/server\.\(Server\)\.audit \(rank 50\)`
}

func (s *Server) evict(e *entry) {
	s.mu.Lock()
	if e.mu.TryLock() { // try-acquire cannot block: no edge, accepted
		e.mu.Unlock()
	}
	s.mu.Unlock()
}

func (s *Server) withReason(id int) {
	s.audit.Lock()
	//subdex:lockorder audit here is a read-only probe taken nowhere inside the store; exemption documented in DESIGN.md
	s.store.Get(id)
	s.audit.Unlock()
}

func (s *Server) withoutReason(id int) {
	s.audit.Lock()
	//subdex:lockorder
	s.store.Get(id) // want `suppression without a reason`
	s.audit.Unlock()
}
