// Upper half of the cross-package cycle fixture: the reverse
// acquisition closes a cycle against the MuA → MuB edge imported from
// cyc/low's fact — neither package sees the deadlock alone.
package high

import "cyc/low"

func Invert() {
	low.MuB.Lock()
	low.MuA.Lock() // want `lock-order cycle: acquiring cyc/low\.MuA while holding cyc/low\.MuB closes the cycle cyc/low\.MuB -> cyc/low\.MuA -> cyc/low\.MuB`
	low.MuA.Unlock()
	low.MuB.Unlock()
}
