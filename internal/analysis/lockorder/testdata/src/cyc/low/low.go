// Lower half of the cross-package cycle fixture: exports the edge
// MuA → MuB in its fact. No findings here — the cycle only exists once
// cyc/high adds the reverse edge.
package low

import "sync"

var (
	MuA sync.Mutex
	MuB sync.Mutex
)

func LockBoth() {
	MuA.Lock()
	MuB.Lock()
	MuB.Unlock()
	MuA.Unlock()
}
