// Seeded-bug fixture reproducing PR 7's race 3: compaction closed the
// WAL file while an appender's fsync was in flight. The fix gave
// FileStore a swap mutex with a strict order — writer mutex first,
// swap mutex second (appenders take it shared before releasing the
// writer mutex; compaction takes it exclusively). compactBroken is the
// pre-fix shape re-expressed as lock acquisitions: it takes the swap
// lock first and then blocks on the writer mutex, inverting the
// hierarchy and closing a cycle against Append's correct ordering.
// lockorder must catch both, proving it would have flagged the
// incident before review did.
package seeded

import "sync"

type FileStore struct {
	wmu sync.Mutex //subdex:lockorder rank=10 writer mutex: serializes mirror+file mutation

	swapMu sync.RWMutex //subdex:lockorder rank=20 pins the WAL file across an appender's fsync
}

// Append is the shipped ordering: wmu, then swapMu shared before wmu
// is released, so no swap can slip between the write and the fsync.
func (fs *FileStore) Append() {
	fs.wmu.Lock()
	fs.swapMu.RLock()
	fs.wmu.Unlock()
	fs.swapMu.RUnlock()
}

// compactBroken inverts the order.
func (fs *FileStore) compactBroken() {
	fs.swapMu.Lock()
	fs.wmu.Lock() // want `acquires seeded\.\(FileStore\)\.wmu \(rank 10\) while holding seeded\.\(FileStore\)\.swapMu \(rank 20\)` `lock-order cycle: acquiring seeded\.\(FileStore\)\.wmu while holding seeded\.\(FileStore\)\.swapMu closes the cycle`
	fs.wmu.Unlock()
	fs.swapMu.Unlock()
}
