// Package lockorder builds the global lock-acquisition graph and
// diagnoses cycles and violations of the declared locking hierarchy —
// the analyzer born from PR 7's races 3 and 4 (a WAL file closed under
// an in-flight fsync, and delete-vs-restore resurrection), both of
// which were ordering bugs between FileStore's writer mutex, its swap
// mutex, and the server's session mutex that review had to catch by
// hand.
//
// The analysis is inter-procedural over framework facts. Within each
// package, every function body is scanned in statement order
// (framework.ScanFlow) recording which mutex *classes* — all instances
// of server.(Server).mu are one class — are held at every blocking
// acquisition and every call. An acquisition of B while A is held is an
// edge A → B; a call made while A is held contributes edges A → C for
// every class C the callee may transitively acquire, resolved through
// the callee's own package fact (closed summaries, so one hop
// suffices; interface methods carry the union of their in-package
// implementations). TryLock joins the held set — a lock held is held —
// but never becomes an edge *target*, because a try-acquire cannot
// block: this is exactly why EvictIdle's s.mu → entry.mu.TryLock is
// legal while a blocking entry.mu.Lock under s.mu would not be.
//
// Two diagnostics:
//
//   - A cycle: some edge closes a loop in the global graph (union of
//     this package's edges and every imported fact's). The edge in the
//     package under analysis is reported with the full cycle path.
//   - A hierarchy violation: mutex fields and package-level mutexes may
//     declare their place in the locking order with
//     `//subdex:lockorder rank=N <reason>` on the declaration; an edge
//     from rank R1 to rank R2 with R1 >= R2 is a finding even before it
//     closes a cycle. Ranks are exported in facts, so
//     server code acquiring a sessionstore mutex is checked against
//     sessionstore's declared ranks.
//
// Escape hatch: `//subdex:lockorder <reason>` on the acquiring line
// suppresses that site's edges; the reason is mandatory (an empty one
// is itself a finding, which is what lets CI fail on undocumented
// suppressions without extra tooling).
package lockorder

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"

	"subdex/internal/analysis/framework"
)

// Analyzer is the lockorder check.
var Analyzer = &framework.Analyzer{
	Name:      "lockorder",
	Doc:       "global lock-acquisition graph: no cycles, and declared //subdex:lockorder rank=N hierarchies must be acquired in strictly increasing rank order",
	Run:       run,
	UsesFacts: true,
}

// pkgFact is the per-package fact: closed may-acquire summaries for
// every declared function (and interface method), the acquisition
// edges observed so far (local ∪ imported, so the reachable graph
// composes transitively under both drivers), and every declared rank.
type pkgFact struct {
	MayAcquire map[string][]string `json:"may_acquire,omitempty"`
	Edges      []factEdge          `json:"edges,omitempty"`
	Ranks      map[string]int      `json:"ranks,omitempty"`
}

type factEdge struct {
	From string `json:"from"`
	To   string `json:"to"`
}

// localEdge is an edge observed in this package, pinned to the source
// position that creates it.
type localEdge struct {
	from, to string
	pos      ast.Node
}

func run(pass *framework.Pass) error {
	// 1. Imported facts: merged ranks, the upstream edge set, and the
	// external may-acquire lookup.
	ranks := make(map[string]int)
	upstreamEdges := make(map[factEdge]bool)
	externalAcquire := make(map[string][]string)
	for _, pf := range pass.ImportedFacts() {
		var fact pkgFact
		if err := json.Unmarshal(pf.Fact, &fact); err != nil {
			continue
		}
		for class, r := range fact.Ranks {
			ranks[class] = r
		}
		for _, e := range fact.Edges {
			upstreamEdges[e] = true
		}
		for key, classes := range fact.MayAcquire {
			externalAcquire[key] = classes
		}
	}

	// 2. Local rank declarations.
	collectRanks(pass, ranks)

	// 3. Scan every body: acquisition edges, may-acquire seeds, calls.
	seeds := make(map[string][]string)
	calls := make(map[string][]string)
	var pending []framework.FlowEvent
	for _, fb := range framework.FuncBodies(pass) {
		key := fb.Key
		if key != "" {
			// Materialize the key even for bodies with no events, so
			// Closure treats it as local.
			seeds[key] = seeds[key]
			calls[key] = calls[key]
		}
		framework.ScanFlow(pass.TypesInfo, fb.Body, func(ev framework.FlowEvent) {
			switch ev.Kind {
			case framework.FlowAcquire:
				if key != "" {
					seeds[key] = append(seeds[key], ev.Class)
				}
				pending = append(pending, ev)
			case framework.FlowTryAcquire:
				// Held-set membership only: cannot block, no edge, and
				// excluded from may-acquire (a caller holding A cannot
				// deadlock on a callee's try-acquire).
			case framework.FlowCall:
				if key != "" && ev.Key != "" {
					calls[key] = append(calls[key], ev.Key)
				}
				if len(ev.Held) > 0 && ev.Key != "" {
					pending = append(pending, ev)
				}
			}
		})
	}

	// 4. Close local summaries over the call graph and imported facts.
	mayAcquire := framework.Closure(seeds, calls, func(key string) []string {
		return externalAcquire[key]
	})
	// Interface methods summarize the union of their in-package
	// implementations, under the key dynamic call sites resolve to.
	for ikey, impls := range framework.InterfaceMethodImpls(pass.Pkg) {
		merged := make(map[string]bool)
		for _, impl := range impls {
			for _, c := range mayAcquire[impl] {
				merged[c] = true
			}
		}
		if len(merged) > 0 {
			classes := make([]string, 0, len(merged))
			for c := range merged {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			mayAcquire[ikey] = classes
		}
	}
	lookup := func(key string) []string {
		if classes, ok := mayAcquire[key]; ok {
			return classes
		}
		return externalAcquire[key]
	}

	// 5. Derive local edges from the pending events, honoring per-site
	// suppressions.
	var edges []localEdge
	seen := make(map[factEdge]bool)
	for _, ev := range pending {
		file := framework.FileOf(pass.Files, ev.Pos)
		if reason, found := framework.Annotation(pass.Fset, file, ev.Call, "lockorder"); found {
			if reason == "" {
				pass.Report(ev.Pos, "//subdex:lockorder suppression without a reason")
			}
			continue
		}
		targets := []string{ev.Class}
		if ev.Kind == framework.FlowCall {
			targets = lookup(ev.Key)
		}
		for _, held := range ev.Held {
			for _, to := range targets {
				e := factEdge{From: held, To: to}
				if !seen[e] {
					seen[e] = true
					edges = append(edges, localEdge{from: held, to: to, pos: ev.Call})
				}
			}
		}
	}

	// 6. Hierarchy violations: both endpoints ranked, not strictly
	// increasing.
	for _, e := range edges {
		rFrom, okFrom := ranks[e.from]
		rTo, okTo := ranks[e.to]
		if okFrom && okTo && rFrom >= rTo {
			pass.Reportf(e.pos.Pos(),
				"acquires %s (rank %d) while holding %s (rank %d): //subdex:lockorder hierarchy requires strictly increasing rank",
				e.to, rTo, e.from, rFrom)
		}
	}

	// 7. Cycles in the composed graph: for each local edge f→t, a path
	// t ⇝ f in (upstream ∪ local) closes a cycle; report the local edge
	// with the full path. Self-edges (f == t) are the degenerate cycle:
	// re-acquiring a held class.
	graph := make(map[string][]string)
	addEdge := func(from, to string) {
		graph[from] = append(graph[from], to)
	}
	for e := range upstreamEdges {
		addEdge(e.From, e.To)
	}
	for _, e := range edges {
		addEdge(e.from, e.to)
	}
	for _, e := range edges {
		if e.from == e.to {
			pass.Reportf(e.pos.Pos(),
				"lock-order cycle: acquires %s while already holding it", e.from)
			continue
		}
		// When declared ranks disambiguate the cycle, only the inverted
		// side is the bug: an edge that follows the hierarchy strictly
		// is the intended order and stays quiet.
		if rFrom, okF := ranks[e.from]; okF {
			if rTo, okT := ranks[e.to]; okT && rFrom < rTo {
				continue
			}
		}
		if path := shortestPath(graph, e.to, e.from); path != nil {
			pass.Reportf(e.pos.Pos(),
				"lock-order cycle: acquiring %s while holding %s closes the cycle %s",
				e.to, e.from, strings.Join(append([]string{e.from}, path...), " -> "))
		}
	}

	// 8. Export: closed summaries, the transitive edge union, merged
	// ranks.
	exported := pkgFact{Ranks: ranks}
	for key, classes := range mayAcquire {
		if len(classes) == 0 {
			continue
		}
		if exported.MayAcquire == nil {
			exported.MayAcquire = make(map[string][]string)
		}
		exported.MayAcquire[key] = classes
	}
	all := make(map[factEdge]bool, len(upstreamEdges)+len(edges))
	for e := range upstreamEdges {
		all[e] = true
	}
	for _, e := range edges {
		all[factEdge{From: e.from, To: e.to}] = true
	}
	for e := range all {
		exported.Edges = append(exported.Edges, e)
	}
	sort.Slice(exported.Edges, func(i, j int) bool {
		if exported.Edges[i].From != exported.Edges[j].From {
			return exported.Edges[i].From < exported.Edges[j].From
		}
		return exported.Edges[i].To < exported.Edges[j].To
	})
	return pass.ExportFact(exported)
}

// collectRanks walks non-test files for `//subdex:lockorder rank=N
// <reason>` annotations on sync.Mutex / sync.RWMutex struct fields and
// package-level vars, recording the class's rank. A lockorder
// annotation on a declaration that fails to parse as rank=N with a
// non-empty reason is a finding: the hierarchy is documentation, and
// undocumented entries are what let it rot.
func collectRanks(pass *framework.Pass, ranks map[string]int) {
	for _, file := range pass.Files {
		if framework.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch d := n.(type) {
			case *ast.TypeSpec:
				st, ok := d.Type.(*ast.StructType)
				if !ok {
					return true
				}
				for _, field := range st.Fields.List {
					if !isMutexType(pass.TypesInfo.TypeOf(field.Type)) {
						continue
					}
					reason, found := framework.Annotation(pass.Fset, file, field, "lockorder")
					if !found {
						continue
					}
					rank, ok := parseRank(reason)
					if !ok {
						pass.Report(field.Pos(), "//subdex:lockorder on a mutex declaration must be rank=N followed by a reason")
						continue
					}
					for _, name := range field.Names {
						class := framework.CanonicalPath(pass.Pkg.Path()) + ".(" + d.Name.Name + ")." + name.Name
						ranks[class] = rank
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || !isMutexType(pass.TypesInfo.TypeOf(vs.Type)) {
						continue
					}
					reason, found := framework.Annotation(pass.Fset, file, vs, "lockorder")
					if !found {
						continue
					}
					rank, ok := parseRank(reason)
					if !ok {
						pass.Report(vs.Pos(), "//subdex:lockorder on a mutex declaration must be rank=N followed by a reason")
						continue
					}
					for _, name := range vs.Names {
						ranks[framework.CanonicalPath(pass.Pkg.Path())+"."+name.Name] = rank
					}
				}
			}
			return true
		})
	}
}

// parseRank parses "rank=N <reason>" returning the rank; ok is false
// when the prefix is missing, N does not parse, or the reason is empty.
func parseRank(text string) (int, bool) {
	fields := strings.Fields(text)
	if len(fields) < 2 || !strings.HasPrefix(fields[0], "rank=") {
		return 0, false
	}
	rank, err := strconv.Atoi(strings.TrimPrefix(fields[0], "rank="))
	if err != nil {
		return 0, false
	}
	return rank, true
}

func isMutexType(t types.Type) bool {
	return framework.NamedTypeIn(t, "sync", "Mutex") || framework.NamedTypeIn(t, "sync", "RWMutex")
}

// shortestPath returns a shortest path from → … → to (inclusive of
// both endpoints), or nil if unreachable. BFS over the composed graph;
// graphs here are a handful of mutex classes, so no cleverness is
// warranted.
func shortestPath(graph map[string][]string, from, to string) []string {
	type hop struct {
		node string
		prev *hop
	}
	visited := map[string]bool{from: true}
	queue := []*hop{{node: from}}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		if h.node == to {
			var rev []string
			for ; h != nil; h = h.prev {
				rev = append(rev, h.node)
			}
			out := make([]string, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				out = append(out, rev[i])
			}
			return out
		}
		next := append([]string(nil), graph[h.node]...)
		sort.Strings(next) // deterministic path choice for stable messages
		for _, n := range next {
			if !visited[n] {
				visited[n] = true
				queue = append(queue, &hop{node: n, prev: h})
			}
		}
	}
	return nil
}
