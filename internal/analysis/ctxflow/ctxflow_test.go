package ctxflow_test

import (
	"testing"

	"subdex/internal/analysis/analysistest"
	"subdex/internal/analysis/ctxflow"
)

func TestCtxFlow(t *testing.T) {
	analysistest.Run(t, "testdata", ctxflow.Analyzer, "lib", "mainpkg")
}
