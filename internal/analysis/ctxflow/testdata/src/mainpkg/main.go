// Command mainpkg is an entry point: it owns its root context, so
// Background is accepted here.
package main

import "context"

func main() {
	run(context.Background()) // no want: main package
}

func run(ctx context.Context) { _ = ctx }
