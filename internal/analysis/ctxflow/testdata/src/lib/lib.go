// Package lib is a library package: ctxflow's signature and
// root-context rules apply in full.
package lib

import (
	"context"
	"time"
)

// StepCtx is the context-aware implementation: accepted shape.
func StepCtx(ctx context.Context, n int) error { return nil }

// Step is an XCtx compatibility shim — it may mint a root context
// because its body delegates to StepCtx.
func Step(n int) error {
	return StepCtx(context.Background(), n)
}

// StartSpan is nil-safe: the nil-ctx normalization guard is the one
// non-shim place a library may call Background.
func StartSpan(ctx context.Context, name string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	return ctx
}

// detached mints a root context with no shim or guard in sight.
func detached() context.Context {
	return context.Background() // want `context.Background\(\) in library code`
}

// todoToo covers the TODO spelling.
func todoToo() context.Context {
	return context.TODO() // want `context.TODO\(\) in library code`
}

// notAShim calls somethingElseCtx, not notAShimCtx: the delegation
// naming must match for the exemption to apply.
func notAShim() error {
	return StepCtx(context.Background(), 1) // want `context.Background\(\) in library code`
}

// ctxSecond has the context in the wrong position.
func ctxSecond(n int, ctx context.Context) error { return nil } // want `context.Context must be the first parameter`

// renamed names the context parameter something else.
func renamed(c context.Context) error { return nil } // want `context.Context parameter must be named ctx, not c`

// blank is fine: callbacks that ignore their context use _.
func blank(_ context.Context) error { return nil }

// literals are checked too.
var handler = func(parent context.Context) { // want `must be named ctx, not parent`
	_ = parent
}

// timer is unrelated to context: no diagnostics.
func timer(d time.Duration) *time.Timer { return time.NewTimer(d) }
