package lib

import "context"

// Test files own their root contexts: exempt.
func testHelper() context.Context {
	return context.Background() // no want: test file
}
