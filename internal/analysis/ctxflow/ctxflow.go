// Package ctxflow enforces SubDEx's context-propagation discipline,
// the plumbing that deadline-aware cancellation (PR 2) relies on: a
// context that is dropped, renamed, or minted mid-library silently
// detaches the engine from the caller's deadline, and the failure mode
// is "step never degrades, request never times out" — invisible until
// production.
//
// Rules:
//
//  1. Any function taking a context.Context takes it as its first
//     parameter, named ctx.
//  2. Library code never calls context.Background() or context.TODO().
//     The permitted exceptions, matching the documented conventions:
//     - main packages (an entry point owns its root context),
//     - test files,
//     - the XCtx compatibility shims: inside a function named F whose
//     body calls F+"Ctx" — the one-line wrappers (engine.TopMaps,
//     core.Session.Step, core.Explorer.RMSet) that keep the pre-context
//     API alive by delegating to the context-aware implementation,
//     - the nil-context normalization guard `if ctx == nil { ctx =
//     context.Background() }` used by nil-safe observability entry
//     points (obs.StartSpan).
package ctxflow

import (
	"go/ast"
	"go/types"

	"subdex/internal/analysis/framework"
)

// Analyzer is the ctxflow check.
var Analyzer = &framework.Analyzer{
	Name: "ctxflow",
	Doc:  "context.Context first and named ctx; no context.Background/TODO outside main, tests, XCtx shims, and nil-ctx guards",
	Run:  run,
}

func run(pass *framework.Pass) error {
	isMain := pass.Pkg.Name() == "main"

	framework.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		if framework.IsTestFile(pass.Fset, n.Pos()) {
			return false
		}
		switch node := n.(type) {
		case *ast.FuncDecl:
			checkSignature(pass, node.Type, node.Recv != nil)
		case *ast.FuncLit:
			checkSignature(pass, node.Type, false)
		case *ast.CallExpr:
			if !isMain {
				checkRootContextCall(pass, node, stack)
			}
		}
		return true
	})
	return nil
}

// checkSignature enforces rule 1 on one function signature.
func checkSignature(pass *framework.Pass, ft *ast.FuncType, isMethod bool) {
	if ft.Params == nil {
		return
	}
	paramIdx := 0
	for _, field := range ft.Params.List {
		names := len(field.Names)
		if names == 0 {
			names = 1 // unnamed parameter
		}
		if isContextType(pass.TypesInfo.Types[field.Type].Type) {
			if paramIdx != 0 {
				pass.Reportf(field.Pos(), "context.Context must be the first parameter")
			}
			for _, name := range field.Names {
				if name.Name != "ctx" && name.Name != "_" {
					pass.Reportf(name.Pos(), "context.Context parameter must be named ctx, not %s", name.Name)
				}
			}
			if len(field.Names) > 1 {
				pass.Reportf(field.Pos(), "a function takes at most one context.Context")
			}
		}
		paramIdx += names
	}
	_ = isMethod // the receiver does not count as a parameter
}

// checkRootContextCall enforces rule 2 on one call expression.
func checkRootContextCall(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node) {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return
	}
	if fn.Name() != "Background" && fn.Name() != "TODO" {
		return
	}
	if inXCtxShim(pass, stack) || inNilCtxGuard(pass, call, stack) {
		return
	}
	pass.Reportf(call.Pos(),
		"context.%s() in library code severs caller cancellation; thread a ctx parameter, or make this an XCtx shim (a function F whose body delegates to FCtx)", fn.Name())
}

// inXCtxShim reports whether the call sits inside a function named F
// whose body calls F+"Ctx" — the compatibility-shim convention.
func inXCtxShim(pass *framework.Pass, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		fd, ok := stack[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		target := fd.Name.Name + "Ctx"
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				found = found || fun.Name == target
			case *ast.SelectorExpr:
				found = found || fun.Sel.Name == target
			}
			return !found
		})
		return found
	}
	return false
}

// inNilCtxGuard recognizes the normalization idiom
//
//	if ctx == nil { ctx = context.Background() }
//
// permitted in nil-safe entry points: the enclosing if's condition
// compares a context variable against nil, and the call's result is
// assigned straight back to that variable.
func inNilCtxGuard(pass *framework.Pass, call *ast.CallExpr, stack []ast.Node) bool {
	// Expect: AssignStmt{lhs = call} directly inside IfStmt{cond: lhs == nil}.
	if len(stack) < 3 {
		return false
	}
	assign, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 || ast.Unparen(assign.Rhs[0]) != call {
		return false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok || !isContextType(pass.TypesInfo.Types[assign.Lhs[0]].Type) {
		return false
	}
	var ifStmt *ast.IfStmt
	for i := len(stack) - 2; i >= 0 && ifStmt == nil; i-- {
		switch s := stack[i].(type) {
		case *ast.BlockStmt:
			continue
		case *ast.IfStmt:
			ifStmt = s
		default:
			return false
		}
	}
	if ifStmt == nil {
		return false
	}
	bin, ok := ast.Unparen(ifStmt.Cond).(*ast.BinaryExpr)
	if !ok || bin.Op.String() != "==" {
		return false
	}
	x, xOK := ast.Unparen(bin.X).(*ast.Ident)
	y, yOK := ast.Unparen(bin.Y).(*ast.Ident)
	switch {
	case xOK && x.Name == lhs.Name && yOK && y.Name == "nil":
		return true
	case yOK && y.Name == lhs.Name && xOK && x.Name == "nil":
		return true
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	return t != nil && framework.NamedTypeIn(t, "context", "Context")
}
