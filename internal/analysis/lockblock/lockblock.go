// Package lockblock enforces the lock discipline PR 2's per-session
// TryLock design depends on: critical sections guarded by sync.Mutex /
// sync.RWMutex must stay short and CPU-bound. A blocking operation —
// channel send/receive, select without default, sync.WaitGroup.Wait,
// sync.Cond.Wait, time.Sleep, or a network/HTTP call — executed while a
// mutex is held turns one slow peer into a server-wide stall (the exact
// class of bug the session layer's "global mu guards only the map"
// redesign removed).
//
// The analysis is a conservative intraprocedural walk: within each
// function body, statements are scanned in order; x.Lock() / x.RLock()
// (and x.TryLock(), whose success branch is the interesting one) mark
// the receiver's lock as held until the matching x.Unlock() / x.RUnlock()
// in the same statement sequence; `defer x.Unlock()` holds until
// function end. Branch bodies inherit the state at their entry; an
// unlock inside a conditional branch does not clear the state after it
// (the fall-through path usually still holds the lock — and branches
// that unlock-and-return never reach the code after the conditional
// anyway). Goroutine bodies (`go func(){…}`) and deferred closures run
// outside the critical section and are scanned with a clean slate.
//
// The network-call list is a heuristic allow/deny set over the net and
// net/http packages: request-issuing functions and methods
// (http.Get/Post/Head/PostForm, Client/Transport methods, net Dial*/
// Listen*/Lookup*, Conn/Listener I/O) plus writes to an
// http.ResponseWriter (Write/WriteHeader), which block on the client's
// receive window.
//
// In the packages listed in fileIOCriticalPkgs the check additionally
// forbids file I/O (os.WriteFile/Create/OpenFile/Rename/Remove/MkdirAll
// and the write-side os.File methods, Sync above all) while a mutex is
// held: an fsync can take tens of milliseconds, and PR 7's durable
// session layer depends on the server never holding the session or
// registry mutex across one. internal/sessionstore is deliberately NOT
// in the list — appending to the WAL under its writer mutex is that
// package's whole job (it moves the Sync itself outside the lock, a
// discipline pinned by its own tests, not by this analyzer).
//
// That exemption is a split of jurisdiction, not a blind spot: what
// lockblock waives for sessionstore (file I/O under wmu), the walcheck
// analyzer covers from the other side — every error those exempted
// writes can return must be checked or propagated, and every caller on
// the log-before-respond path must count the failure before answering.
// The ordering of the locks the WAL write path takes is lockorder's
// jurisdiction. The internal/sessionstore fixture in testdata pins the
// lockblock half (exempt writes unflagged, universal rules still
// enforced); walcheck's own internal/sessionstore fixture pins the
// other half against the same idiom.
package lockblock

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"subdex/internal/analysis/framework"
)

// Analyzer is the lockblock check.
var Analyzer = &framework.Analyzer{
	Name: "lockblock",
	Doc:  "no channel ops, WaitGroup.Wait, time.Sleep, network/HTTP calls, or (in lock-latency-critical packages) file I/O while a sync.Mutex/RWMutex is held",
	Run:  run,
}

// fileIOCriticalPkgs are the package-path suffixes where file I/O under
// a held mutex is also a finding. internal/sessionstore is exempt by
// design — its WAL writes under wmu on purpose, and walcheck owns the
// error-path discipline of exactly those writes: see the package
// comment's jurisdiction note.
var fileIOCriticalPkgs = []string{"internal/server", "internal/obs", "internal/core"}

// fileIOCritical reports whether the package being analyzed is under the
// no-file-I/O-under-lock contract.
func fileIOCritical(path string) bool {
	for _, suffix := range fileIOCriticalPkgs {
		if framework.PathHasSuffix(path, suffix) {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		if framework.IsTestFile(pass.Fset, file.Pos()) {
			continue
		}
		// Every function body — declarations and literals, however nested —
		// is scanned once with a clean lock set; scanStmt/scanExpr never
		// descend into nested literals (a closure generally runs outside
		// the lexical critical section: deferred, spawned, or stored).
		// The known conservative miss is an immediately-invoked literal,
		// which runs inline but is scanned lock-free.
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					scanBody(pass, fn.Body, newLockSet())
				}
			case *ast.FuncLit:
				scanBody(pass, fn.Body, newLockSet())
			}
			return true
		})
	}
	return nil
}

// lockSet is the set of lock expressions (rendered as source paths like
// "s.mu") currently held.
type lockSet map[string]bool

func newLockSet() lockSet { return make(lockSet) }

func (ls lockSet) clone() lockSet {
	out := make(lockSet, len(ls))
	for k, v := range ls {
		out[k] = v
	}
	return out
}

func (ls lockSet) any() (string, bool) {
	for k := range ls {
		return k, true
	}
	return "", false
}

// held returns a deterministic representative lock name for messages.
func (ls lockSet) representative() string {
	best := ""
	for k := range ls {
		if best == "" || k < best {
			best = k
		}
	}
	return best
}

// scanBody walks stmts in order, tracking lock state and reporting
// blocking operations executed while any lock is held.
func scanBody(pass *framework.Pass, body *ast.BlockStmt, locks lockSet) {
	for _, stmt := range body.List {
		scanStmt(pass, stmt, locks)
	}
}

func scanStmt(pass *framework.Pass, stmt ast.Stmt, locks lockSet) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		scanExpr(pass, s.X, locks)
		updateLocks(pass, s.X, locks)
	case *ast.SendStmt:
		if _, heldAny := locks.any(); heldAny {
			pass.Reportf(s.Arrow, "channel send while %s is held: a blocked receiver stalls the critical section", locks.representative())
		}
		scanExpr(pass, s.Value, locks)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			scanExpr(pass, e, locks)
			updateLocks(pass, e, locks) // e.g. ok := mu.TryLock()
		}
	case *ast.DeferStmt:
		// defer x.Unlock() keeps the lock held to function end: no state
		// change. Other deferred calls (and go statements) run outside the
		// critical section; their closure bodies are scanned separately by
		// run's top-level walk.
	case *ast.GoStmt:
		// See DeferStmt.
	case *ast.IfStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, locks)
		}
		scanExpr(pass, s.Cond, locks)
		updateLocks(pass, s.Cond, locks) // if mu.TryLock() { ... }
		scanBody(pass, s.Body, locks.clone())
		if s.Else != nil {
			scanStmt(pass, s.Else, locks.clone())
		}
	case *ast.BlockStmt:
		scanBody(pass, s, locks)
	case *ast.ForStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, locks)
		}
		if s.Cond != nil {
			scanExpr(pass, s.Cond, locks)
		}
		scanBody(pass, s.Body, locks.clone())
	case *ast.RangeStmt:
		scanExpr(pass, s.X, locks)
		scanBody(pass, s.Body, locks.clone())
	case *ast.SelectStmt:
		if _, heldAny := locks.any(); heldAny && !hasDefaultClause(s) {
			pass.Reportf(s.Select, "blocking select while %s is held", locks.representative())
		}
		for _, clause := range s.Body.List {
			if cc, ok := clause.(*ast.CommClause); ok {
				for _, cs := range cc.Body {
					scanStmt(pass, cs, locks.clone())
				}
			}
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			scanStmt(pass, s.Init, locks)
		}
		if s.Tag != nil {
			scanExpr(pass, s.Tag, locks)
		}
		scanCaseBodies(pass, s.Body, locks)
	case *ast.TypeSwitchStmt:
		scanCaseBodies(pass, s.Body, locks)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			scanExpr(pass, e, locks)
		}
	case *ast.LabeledStmt:
		scanStmt(pass, s.Stmt, locks)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						scanExpr(pass, e, locks)
					}
				}
			}
		}
	}
}

func scanCaseBodies(pass *framework.Pass, body *ast.BlockStmt, locks lockSet) {
	for _, clause := range body.List {
		if cc, ok := clause.(*ast.CaseClause); ok {
			for _, cs := range cc.Body {
				scanStmt(pass, cs, locks.clone())
			}
		}
	}
}

func hasDefaultClause(s *ast.SelectStmt) bool {
	for _, clause := range s.Body.List {
		if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// scanExpr reports blocking operations inside expr evaluated under
// locks. Function literals inside expressions are scanned lock-free
// only when they escape (assigned/passed); immediately-invoked literals
// run in the critical section and inherit the lock state.
func scanExpr(pass *framework.Pass, expr ast.Expr, locks lockSet) {
	if _, heldAny := locks.any(); !heldAny {
		return
	}
	rep := locks.representative()
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			// A literal generally escapes the critical section (stored,
			// deferred, spawned); its body is scanned lock-free by run's
			// top-level walk. Immediately-invoked literals are the known
			// conservative miss.
			return false
		case *ast.UnaryExpr:
			if e.Op == token.ARROW {
				pass.Reportf(e.OpPos, "channel receive while %s is held", rep)
			}
		case *ast.CallExpr:
			if msg := blockingCall(pass, e); msg != "" {
				pass.Reportf(e.Pos(), "%s while %s is held", msg, rep)
			}
		}
		return true
	})
}

// updateLocks applies Lock/RLock/TryLock/Unlock/RUnlock calls found in
// expr to the lock set.
func updateLocks(pass *framework.Pass, expr ast.Expr, locks lockSet) {
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		recv, ok := mutexReceiver(pass, sel)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Lock", "RLock", "TryLock", "TryRLock":
			locks[recv] = true
		case "Unlock", "RUnlock":
			delete(locks, recv)
		}
		return true
	})
}

// mutexReceiver reports whether sel selects a method on sync.Mutex /
// sync.RWMutex (directly or via an embedded field) and returns the
// receiver expression rendered as a stable string key.
func mutexReceiver(pass *framework.Pass, sel *ast.SelectorExpr) (string, bool) {
	selection, ok := pass.TypesInfo.Selections[sel]
	if !ok {
		return "", false
	}
	fn, ok := selection.Obj().(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	if name := named.Obj().Name(); name != "Mutex" && name != "RWMutex" {
		return "", false
	}
	return exprKey(sel.X), true
}

// exprKey renders a receiver expression as a comparison key: "s.mu",
// "e.mu", "mu". Unrenderable receivers (map index, call result) get a
// catch-all key so their Lock still arms the analysis.
func exprKey(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprKey(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprKey(x.X) + "[...]"
	default:
		return "<mutex>"
	}
}

// blockingCall classifies call as a forbidden blocking operation under a
// lock, returning a description or "".
func blockingCall(pass *framework.Pass, call *ast.CallExpr) string {
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	pkg, name := fn.Pkg().Path(), fn.Name()
	recvName := receiverTypeName(fn)

	switch pkg {
	case "sync":
		if name == "Wait" && (recvName == "WaitGroup" || recvName == "Cond") {
			return "sync." + recvName + ".Wait"
		}
	case "time":
		if recvName == "" && name == "Sleep" {
			return "time.Sleep"
		}
	case "net/http":
		switch recvName {
		case "":
			switch name {
			case "Get", "Post", "Head", "PostForm", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
				return "net/http." + name + " call"
			}
		case "Client", "Transport", "Server":
			return "net/http " + recvName + "." + name + " call"
		case "ResponseWriter":
			if name == "Write" || name == "WriteHeader" {
				return "http.ResponseWriter." + name + " (blocks on the client connection)"
			}
		}
	case "net":
		switch recvName {
		case "":
			if strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen") || strings.HasPrefix(name, "Lookup") {
				return "net." + name + " call"
			}
		case "Conn", "TCPConn", "UDPConn", "UnixConn", "Listener", "TCPListener", "UnixListener", "Dialer", "Resolver":
			return "net " + recvName + "." + name + " call"
		}
	case "os":
		if !fileIOCritical(pass.Path()) {
			return ""
		}
		switch recvName {
		case "":
			switch name {
			case "WriteFile", "Create", "OpenFile", "Rename", "Remove", "RemoveAll", "MkdirAll", "Mkdir":
				return "os." + name + " file I/O"
			}
		case "File":
			switch name {
			case "Write", "WriteString", "WriteAt", "Sync", "Truncate":
				return "os.File." + name + " file I/O"
			}
		}
	}
	return ""
}

// receiverTypeName returns the name of fn's receiver type ("" for
// package-level functions), unwrapping pointers.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if ptr, okP := t.(*types.Pointer); okP {
		t = ptr.Elem()
	}
	switch tt := t.(type) {
	case *types.Named:
		return tt.Obj().Name()
	case *types.Interface:
		// Interface method sets carry no name here; resolve common ones by
		// the method's qualified position: http.ResponseWriter is the only
		// interface we classify.
		return ""
	}
	return ""
}
