package lockblock_test

import (
	"testing"

	"subdex/internal/analysis/analysistest"
	"subdex/internal/analysis/lockblock"
)

func TestLockBlock(t *testing.T) {
	analysistest.Run(t, "testdata", lockblock.Analyzer, "lb", "internal/server", "internal/sessionstore")
}
