// Package lb exercises lockblock: blocking operations under held
// mutexes are flagged; the same operations outside the critical
// section, in goroutines, or after an early unlock are not.
package lb

import (
	"net/http"
	"sync"
	"time"
)

// Store is a guarded structure.
type Store struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	data map[string]int
}

// Good keeps the critical section CPU-bound and sleeps after Unlock.
func (s *Store) Good() {
	s.mu.Lock()
	s.data["k"]++
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // no want: lock released
}

// SleepUnderLock blocks with the lock held via defer Unlock.
func (s *Store) SleepUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
}

// ChannelOps sends and receives while holding the lock.
func (s *Store) ChannelOps(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ch <- 1   // want `channel send while s.mu is held`
	v := <-ch // want `channel receive while s.mu is held`
	_ = v
}

// WaitUnderRLock parks on a WaitGroup inside an RLock section.
func (s *Store) WaitUnderRLock(wg *sync.WaitGroup) {
	s.rw.RLock()
	defer s.rw.RUnlock()
	wg.Wait() // want `sync.WaitGroup.Wait while s.rw is held`
}

// SelectBlocking has no default clause: it parks.
func (s *Store) SelectBlocking(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while s.mu is held`
	case <-ch:
	}
}

// SelectNonBlocking polls with a default clause: accepted.
func (s *Store) SelectNonBlocking(ch chan int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// HTTPUnderLock issues a network request inside the critical section.
func (s *Store) HTTPUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = http.Get("http://example.invalid/") // want `net/http.Get call while s.mu is held`
}

// WriteUnderLock writes the response while holding the lock — the write
// blocks on the client's receive window.
func (s *Store) WriteUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = w.Write([]byte("ok")) // want `http.ResponseWriter.Write`
}

// EarlyUnlock releases before blocking: accepted.
func (s *Store) EarlyUnlock(ch chan int) {
	s.mu.Lock()
	s.data["k"]++
	s.mu.Unlock()
	ch <- s.data["k"] // no want: lock released above
}

// TryLockBranch: the success branch of TryLock is a critical section.
func (s *Store) TryLockBranch() {
	if s.mu.TryLock() {
		time.Sleep(time.Millisecond) // want `time.Sleep while s.mu is held`
		s.mu.Unlock()
	}
}

// SpawnedGoroutine runs outside the critical section: its body is
// scanned with a clean slate.
func (s *Store) SpawnedGoroutine(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		ch <- 1 // no want: goroutine body runs outside the lock
	}()
}

// LocalMutex covers plain identifiers as lock keys.
func LocalMutex(ch chan int) {
	var mu sync.Mutex
	mu.Lock()
	<-ch // want `channel receive while mu is held`
	mu.Unlock()
}
