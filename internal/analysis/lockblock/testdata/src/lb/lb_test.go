package lb

import (
	"sync"
	"time"
)

// Test files are exempt: tests may sleep under locks to provoke races.
func testOnlySleeper(mu *sync.Mutex) {
	mu.Lock()
	defer mu.Unlock()
	time.Sleep(time.Millisecond) // no want: test file
}
