// Package server stands in for subdex/internal/server: a
// fileIOCritical package where file I/O under a held mutex is a
// finding, in addition to the blocking operations flagged everywhere.
package server

import (
	"os"
	"sync"
)

// Registry is a guarded structure whose critical sections must never
// reach the filesystem.
type Registry struct {
	mu       sync.Mutex
	sessions map[int]string
	log      *os.File
}

// Good persists outside the critical section: mutate under the lock,
// write after releasing it.
func (r *Registry) Good(id int) error {
	r.mu.Lock()
	r.sessions[id] = "x"
	r.mu.Unlock()
	if err := os.WriteFile("state.json", nil, 0o644); err != nil { // no want: lock released
		return err
	}
	return r.log.Sync() // no want: lock released
}

// WriteFileUnderLock persists while holding the registry lock.
func (r *Registry) WriteFileUnderLock(id int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.sessions[id] = "x"
	return os.WriteFile("state.json", nil, 0o644) // want `os.WriteFile file I/O while r.mu is held`
}

// SyncUnderLock fsyncs inside the critical section — the worst case:
// every waiter stalls on disk latency.
func (r *Registry) SyncUnderLock() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.log.Sync() // want `os.File.Sync file I/O while r.mu is held`
}

// AppendUnderLock writes through the held lock.
func (r *Registry) AppendUnderLock(line []byte) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, err := r.log.Write(line) // want `os.File.Write file I/O while r.mu is held`
	return err
}

// RotateUnderLock renames and reopens with the lock held.
func (r *Registry) RotateUnderLock() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := os.Rename("log", "log.old"); err != nil { // want `os.Rename file I/O while r.mu is held`
		return err
	}
	f, err := os.OpenFile("log", os.O_RDWR|os.O_CREATE, 0o644) // want `os.OpenFile file I/O while r.mu is held`
	if err != nil {
		return err
	}
	r.log = f
	return nil
}

// MkdirUnderTryLock covers the TryLock success branch.
func (r *Registry) MkdirUnderTryLock() error {
	if r.mu.TryLock() {
		defer r.mu.Unlock()
		return os.MkdirAll("dumps", 0o755) // want `os.MkdirAll file I/O while r.mu is held`
	}
	return nil
}
