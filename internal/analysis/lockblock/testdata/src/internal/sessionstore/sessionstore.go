// Package sessionstore stands in for subdex/internal/sessionstore: the
// one package exempt from the file-I/O-under-lock rule. Its WAL writes
// under the writer mutex by design (ordering), moving only the fsync
// outside — so none of these may be flagged. The universal rules still
// apply: a time.Sleep under the same lock stays a finding.
//
// This fixture is one half of the lockblock/walcheck jurisdiction
// split: lockblock waives the write-under-wmu idiom here, and
// walcheck's own internal/sessionstore fixture pins the other half —
// the errors these exempted writes return must be checked or
// propagated, and counted on the log-before-respond path.
package sessionstore

import (
	"os"
	"sync"
	"time"
)

// WAL serializes appends under wmu.
type WAL struct {
	wmu sync.Mutex
	f   *os.File
}

// Append writes the record under the lock — the exempted idiom.
func (w *WAL) Append(line []byte) error {
	w.wmu.Lock()
	_, err := w.f.Write(line) // no want: sessionstore is exempt
	w.wmu.Unlock()
	if err != nil {
		return err
	}
	return w.f.Sync()
}

// Compact rewrites the log with the lock held.
func (w *WAL) Compact() error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	if err := os.WriteFile("wal.tmp", nil, 0o644); err != nil { // no want: sessionstore is exempt
		return err
	}
	return os.Rename("wal.tmp", "wal") // no want: sessionstore is exempt
}

// SleepUnderLock is still wrong everywhere.
func (w *WAL) SleepUnderLock() {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	time.Sleep(time.Millisecond) // want `time.Sleep while w.wmu is held`
}
