// Seeded-bug fixture reproducing PR 7's race 1: the step handler
// answered the client before (or without) accounting the WAL append
// failure, so under load the responses and
// subdex_wal_append_failures_total disagreed — a scrape taken between
// the two observed a server claiming durability it did not have. Both
// pre-fix shapes must be caught: respond-then-count, and the branch
// that never counts at all.
package seeded

import (
	"net/http"

	"internal/sessionstore"
	"obs"
)

type Server struct {
	store       sessionstore.Store
	walFailures *obs.Counter
}

func New(store sessionstore.Store, reg *obs.Registry) *Server {
	return &Server{store: store,
		walFailures: reg.Counter("subdex_wal_append_failures_total", "failed WAL appends")}
}

func writeError(w http.ResponseWriter, code int) {
	w.WriteHeader(code)
}

// handleStepRespondFirst is the incident verbatim: the 500 goes out,
// then the counter moves.
func (s *Server) handleStepRespondFirst(w http.ResponseWriter, id, seq int) {
	if err := s.store.AppendOp(id, seq, 1); err != nil {
		writeError(w, http.StatusInternalServerError) // want `responds to the client before incrementing subdex_wal_append_failures_total on a failed AppendOp`
		s.walFailures.Inc()
	}
}

// handleShedUncounted is the second pre-fix shape: the loss is
// handled, logged nowhere, counted never.
func (s *Server) handleShedUncounted(w http.ResponseWriter, id int) {
	if err := s.store.Shed(id, 1); err != nil { // want `error branch for Shed never increments subdex_wal_append_failures_total`
		writeError(w, http.StatusInternalServerError)
	}
}
