// Minimal stand-in for net/http: walcheck only needs the
// ResponseWriter interface identity (framework.NamedTypeIn matches by
// package-path suffix, and "net/http" under testdata/src shadows the
// real package for fixture type-checking only).
package http

// Header is the simplified header map.
type Header map[string][]string

// ResponseWriter is the response surface walcheck treats as "the
// client can observe this".
type ResponseWriter interface {
	Header() Header
	Write([]byte) (int, error)
	WriteHeader(statusCode int)
}

// StatusInternalServerError mirrors the real constant.
const StatusInternalServerError = 500
