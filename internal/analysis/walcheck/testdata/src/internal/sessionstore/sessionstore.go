// Fixture sessionstore: defines the Store roots walcheck exports as
// facts, and pins walcheck's half of the lockblock split. This package
// is exempt from lockblock's file-I/O-under-mutex rule by design
// (Append's write under wmu below is the package's whole job — see
// lockblock's own internal/sessionstore fixture for that half), but it
// is NOT exempt from walcheck: sweepExpired discarding a mutation
// error is flagged here like anywhere else.
package sessionstore

import (
	"errors"
	"os"
	"sync"
)

// ErrStaleShed is the benign race sentinel: the shed lost to a
// concurrent restore.
var ErrStaleShed = errors.New("sessionstore: stale shed")

// Store is the durable session surface.
type Store interface {
	Create(id int, snap int) error
	AppendOp(id, seq int, op int) error
	Shed(id int, snap int) error
	Delete(id int) error
	Get(id int) (int, bool, error)
	All() (map[int]int, int, error)
}

// FileStore is the WAL-backed implementation.
type FileStore struct {
	wmu      sync.Mutex
	f        *os.File
	sessions map[int]int
}

// Create implements Store.
func (fs *FileStore) Create(id int, snap int) error { return fs.logAppend(id, snap) }

// AppendOp implements Store.
func (fs *FileStore) AppendOp(id, seq int, op int) error { return fs.logAppend(id, op) }

// Shed implements Store.
func (fs *FileStore) Shed(id int, snap int) error { return fs.logAppend(id, snap) }

// Delete implements Store.
func (fs *FileStore) Delete(id int) error { return fs.logAppend(id, -1) }

// Get implements Store.
func (fs *FileStore) Get(id int) (int, bool, error) {
	v, ok := fs.sessions[id]
	return v, ok, nil
}

// All implements Store.
func (fs *FileStore) All() (map[int]int, int, error) { return fs.sessions, len(fs.sessions), nil }

// logAppend writes under wmu: lockblock-exempt file I/O (this
// package's whole job), invisible to walcheck, which cares about the
// *error's* journey, not the lock's.
func (fs *FileStore) logAppend(id, v int) error {
	fs.wmu.Lock()
	defer fs.wmu.Unlock()
	fs.sessions[id] = v
	_, err := fs.f.Write([]byte{byte(v)})
	return err
}

// sweepExpired is walcheck's half of the split proof: in-package
// callers of Store mutations are held to the error contract even
// though lockblock exempts this package.
func (fs *FileStore) sweepExpired(ids []int) {
	for _, id := range ids {
		fs.Delete(id) // want `discards the error from Delete`
	}
}

// dropAll propagates correctly: the obligation moves to dropAll's
// callers (and dropAll itself joins the mutation roots in the fact).
func (fs *FileStore) dropAll(ids []int) error {
	for _, id := range ids {
		if err := fs.Delete(id); err != nil {
			return err
		}
	}
	return nil
}
