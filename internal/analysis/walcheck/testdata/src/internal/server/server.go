// Fixture server: the log-before-respond path composed through the
// sessionstore fact. Accepted shapes mirror the shipped PR 7 code
// (check, rollback, count, then respond; the ErrStaleShed benign
// sub-branch; propagation through a helper); flagged shapes cover the
// discard, the unchecked error, the silent branch, and the
// respond-before-count inversion.
package server

import (
	"errors"
	"net/http"
	"sync"

	"internal/sessionstore"
	"obs"
)

// Server owns the session map and the durable store.
type Server struct {
	mu          sync.Mutex
	sessions    map[int]int
	store       sessionstore.Store
	walFailures *obs.Counter
}

// NewServer registers the failure counter walcheck keys on.
func NewServer(store sessionstore.Store, reg *obs.Registry) *Server {
	return &Server{
		sessions:    map[int]int{},
		store:       store,
		walFailures: reg.Counter("subdex_wal_append_failures_total", "WAL appends that failed after the in-memory state applied"),
	}
}

func writeError(w http.ResponseWriter, code int, msg string) {
	w.WriteHeader(code)
	w.Write([]byte(msg))
}

// handleCreate is the shipped shape: rollback, count, then respond.
func (s *Server) handleCreate(w http.ResponseWriter, id int) {
	s.mu.Lock()
	s.sessions[id] = 0
	s.mu.Unlock()
	if err := s.store.Create(id, 0); err != nil {
		s.mu.Lock()
		delete(s.sessions, id)
		s.mu.Unlock()
		s.walFailures.Inc()
		writeError(w, http.StatusInternalServerError, "wal append failed")
		return
	}
	w.WriteHeader(200)
}

// evictIdle is the shipped shed shape: the ErrStaleShed sub-branch is
// benign (the session restored concurrently), every other failure
// counts before anything else happens.
func (s *Server) evictIdle(ids []int) {
	for _, id := range ids {
		if err := s.store.Shed(id, 1); err != nil {
			if errors.Is(err, sessionstore.ErrStaleShed) {
				continue
			}
			s.walFailures.Inc()
		}
	}
}

// createSession propagates: the obligation moves to its callers.
func (s *Server) createSession(id int) error {
	return s.store.Create(id, 0)
}

// handleCreateViaHelper discharges the propagated obligation.
func (s *Server) handleCreateViaHelper(w http.ResponseWriter, id int) {
	if err := s.createSession(id); err != nil {
		s.walFailures.Inc()
		writeError(w, http.StatusInternalServerError, "wal append failed")
	}
}

// handleGet is the accepted read shape.
func (s *Server) handleGet(w http.ResponseWriter, id int) {
	_, ok, err := s.store.Get(id)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "store read failed")
		return
	}
	if !ok {
		writeError(w, 404, "no such session")
	}
}

// handleDeleteBug is the latent-bug shape this analyzer caught in the
// real server: the read error is blanked, so a store fault answers 404
// instead of 500 and the delete path skips its durable tombstone.
func (s *Server) handleDeleteBug(w http.ResponseWriter, id int) {
	_, ok, _ := s.store.Get(id) // want `discards the error from Get`
	if !ok {
		writeError(w, 404, "no such session")
	}
}

// handleStepSilent checks but never counts the loss.
func (s *Server) handleStepSilent(w http.ResponseWriter, id, seq int) {
	if err := s.store.AppendOp(id, seq, 1); err != nil { // want `error branch for AppendOp never increments subdex_wal_append_failures_total`
		writeError(w, http.StatusInternalServerError, "wal append failed")
	}
}

// fireAndForget discards a mutation error outright.
func (s *Server) fireAndForget(id int) {
	s.store.Delete(id) // want `discards the error from Delete`
}

// shedUnchecked binds the error and then ignores it.
func (s *Server) shedUnchecked(id int) {
	err := s.store.Shed(id, 1) // want `error from Shed is neither checked nor propagated`
	_ = err
}

// shedAnnotated documents why the error is intentionally dropped.
func (s *Server) shedAnnotated(id int) {
	//subdex:walcheck best-effort pre-shutdown shed: the WAL replay path re-derives this state, loss here is not observable
	s.store.Shed(id, 1)
}

// shedAnnotatedBadly suppresses without saying why.
func (s *Server) shedAnnotatedBadly(id int) {
	//subdex:walcheck
	s.store.Shed(id, 1) // want `suppression without a reason`
}
