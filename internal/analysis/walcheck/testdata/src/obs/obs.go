// Minimal stand-in for subdex/internal/obs: a registry handing out
// counters, enough for walcheck to recognize the
// subdex_wal_append_failures_total registration and its Inc sites.
package obs

// Counter is an additive metric.
type Counter struct{ n int64 }

// Inc adds one.
func (c *Counter) Inc() { c.n++ }

// Add adds d.
func (c *Counter) Add(d int64) { c.n += d }

// Registry hands out metrics by name.
type Registry struct{}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string) *Counter { return &Counter{} }
