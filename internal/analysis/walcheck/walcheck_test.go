package walcheck_test

import (
	"testing"

	"subdex/internal/analysis/analysistest"
	"subdex/internal/analysis/walcheck"
)

func TestWalCheck(t *testing.T) {
	// Order matters: internal/server and seeded resolve their Store
	// calls against the roots internal/sessionstore's fact exports.
	analysistest.Run(t, "testdata", walcheck.Analyzer,
		"internal/sessionstore", "internal/server", "seeded")
}
