// Package walcheck enforces the durability contract on the
// log-before-respond path — the analyzer born from PR 7's race 1,
// where a WAL append failure could leave the server's answer and the
// durable log disagreeing with nothing counting the loss.
//
// The contract, per mutation of the session log (Create / AppendOp /
// Shed / Delete on sessionstore.Store and its implementations):
//
//  1. The returned error must be consumed: checked in a condition or
//     propagated to the caller. Discarding it (blank identifier, bare
//     expression statement, go/defer) is a finding.
//  2. When handled locally, the error branch must increment the
//     subdex_wal_append_failures_total counter — the metric PR 7's fix
//     introduced so a lost append is never silent — and must do so
//     *before* any byte of an HTTP response is written (a call writing
//     to or receiving an http.ResponseWriter). Respond-then-count
//     reorders the observable world ahead of the accounting, which is
//     exactly the incident's shape.
//  3. Store reads (Get / All) carry the weaker half of the contract:
//     the error must be checked or propagated, never discarded —
//     treating a failed read as "absent" turns an I/O fault into a
//     wrong 404 (and, on the delete path, into silently skipped
//     durable tombstones).
//
// The analysis is inter-procedural over framework facts: the
// sessionstore package (matched by path suffix, so fixtures compose)
// exports the mutation/read roots — including the Store interface's
// method keys, which is what dynamic call sites resolve to — and any
// function that *propagates* a root's error becomes a root itself, in
// its own package's fact, so the obligation follows the error value
// across package boundaries. The benign ErrStaleShed path needs no
// special case: the shipped pattern (errors.Is sub-branch, then count)
// still increments on the non-stale path, which is all rule 2 asks.
//
// Division of labor with lockblock: internal/sessionstore is exempt
// from lockblock's file-I/O-under-mutex rule by design (appending to
// the WAL under its writer mutex is the package's whole job), but it
// is NOT exempt here — walcheck's roots live in that package and
// in-package callers of Store mutations are held to the same error
// contract as everyone else. The two analyzers' fixtures each pin
// their half of that split.
//
// Escape hatch: `//subdex:walcheck <reason>` on the call line; an
// empty reason is itself a finding.
package walcheck

import (
	"encoding/json"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"subdex/internal/analysis/framework"
)

// Analyzer is the walcheck check.
var Analyzer = &framework.Analyzer{
	Name:      "walcheck",
	Doc:       "Store/WAL mutation errors on the log-before-respond path must be checked and counted in subdex_wal_append_failures_total before any HTTP response; store read errors must never be discarded",
	Run:       run,
	UsesFacts: true,
}

// WALFailureMetric is the counter the error branch must increment.
const WALFailureMetric = "subdex_wal_append_failures_total"

// storePkgSuffix identifies the package whose Store surface defines the
// mutation/read roots.
const storePkgSuffix = "internal/sessionstore"

var mutationNames = map[string]bool{"Create": true, "AppendOp": true, "Shed": true, "Delete": true}
var readNames = map[string]bool{"Get": true, "All": true}

// pkgFact exports this package's contribution to the root sets: the
// sessionstore package seeds them, every package adds its propagators.
type pkgFact struct {
	Mutations []string `json:"mutations,omitempty"`
	Reads     []string `json:"reads,omitempty"`
}

func run(pass *framework.Pass) error {
	mutations := make(map[string]bool)
	reads := make(map[string]bool)
	for _, pf := range pass.ImportedFacts() {
		var fact pkgFact
		if err := json.Unmarshal(pf.Fact, &fact); err != nil {
			continue
		}
		for _, k := range fact.Mutations {
			mutations[k] = true
		}
		for _, k := range fact.Reads {
			reads[k] = true
		}
	}
	if framework.PathHasSuffix(pass.Path(), storePkgSuffix) {
		collectRoots(pass.Pkg, mutations, reads)
	}

	// Collect every resolvable call site with its consumption shape,
	// then grow the root sets by propagation until stable: a function
	// returning a root's error is a root for its callers.
	bodies := framework.FuncBodies(pass)
	sites := make([][]site, len(bodies))
	for i, fb := range bodies {
		sites[i] = collectSites(pass, fb)
	}
	for changed := true; changed; {
		changed = false
		for i, fb := range bodies {
			if fb.Key == "" {
				continue
			}
			for _, st := range sites[i] {
				if !st.propagated {
					continue
				}
				if mutations[st.key] && !mutations[fb.Key] {
					mutations[fb.Key] = true
					changed = true
				}
				if reads[st.key] && !reads[fb.Key] && !mutations[fb.Key] {
					reads[fb.Key] = true
					changed = true
				}
			}
		}
	}

	counters := counterClasses(pass)

	for i := range bodies {
		for _, st := range sites[i] {
			isMut, isRead := mutations[st.key], reads[st.key]
			if !isMut && !isRead {
				continue
			}
			file := framework.FileOf(pass.Files, st.call.Pos())
			if reason, found := framework.Annotation(pass.Fset, file, st.call, "walcheck"); found {
				if reason == "" {
					pass.Report(st.call.Pos(), "//subdex:walcheck suppression without a reason")
				}
				continue
			}
			name := st.key[1+lastDot(st.key):]
			switch {
			case st.discarded && isMut:
				pass.Reportf(st.call.Pos(), "discards the error from %s: every Store/WAL mutation must be checked on the log-before-respond path", name)
			case st.discarded:
				pass.Reportf(st.call.Pos(), "discards the error from %s: a failed store read must surface as an error, not as absence", name)
			case st.propagated:
				// The obligation moved to this function's callers.
			case !st.checked && isMut:
				pass.Reportf(st.call.Pos(), "error from %s is neither checked nor propagated", name)
			case !st.checked:
				pass.Reportf(st.call.Pos(), "error from %s is neither checked nor propagated", name)
			case isMut:
				checkErrorBranches(pass, st, counters, name)
			}
		}
	}

	// Export the full (imported ∪ local) sets so the obligation
	// composes transitively under both drivers.
	var fact pkgFact
	for k := range mutations {
		fact.Mutations = append(fact.Mutations, k)
	}
	for k := range reads {
		fact.Reads = append(fact.Reads, k)
	}
	sort.Strings(fact.Mutations)
	sort.Strings(fact.Reads)
	return pass.ExportFact(fact)
}

// checkErrorBranches enforces rule 2 on a locally-handled mutation
// error: some branch conditioned on the error must increment the WAL
// failure counter, and no response write conditioned on the error may
// precede the first increment.
func checkErrorBranches(pass *framework.Pass, st site, counters map[string]bool, name string) {
	var incs, responses []token.Pos
	for _, branch := range st.branches {
		ast.Inspect(branch, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isCounterInc(pass.TypesInfo, call, counters) {
				incs = append(incs, call.Pos())
			}
			if isResponseWrite(pass.TypesInfo, call) {
				responses = append(responses, call.Pos())
			}
			return true
		})
	}
	if len(incs) == 0 {
		pass.Reportf(st.call.Pos(), "error branch for %s never increments %s: a lost append must never be silent", name, WALFailureMetric)
		return
	}
	minInc := incs[0]
	for _, p := range incs[1:] {
		if p < minInc {
			minInc = p
		}
	}
	for _, r := range responses {
		if r < minInc {
			pass.Reportf(r, "responds to the client before incrementing %s on a failed %s: count the loss, then answer", WALFailureMetric, name)
			return
		}
	}
}

// collectRoots adds the Store mutation/read method keys defined in the
// sessionstore package: interface methods (the keys dynamic call sites
// resolve to) and methods on concrete implementations, provided they
// return an error.
func collectRoots(pkg *types.Package, mutations, reads map[string]bool) {
	scope := pkg.Scope()
	for _, tname := range scope.Names() {
		tn, ok := scope.Lookup(tname).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		add := func(fn *types.Func) {
			if !returnsError(fn) {
				return
			}
			key := framework.FuncKeyOf(fn)
			if mutationNames[fn.Name()] {
				mutations[key] = true
			} else if readNames[fn.Name()] {
				reads[key] = true
			}
		}
		if iface, okI := tn.Type().Underlying().(*types.Interface); okI {
			for i := 0; i < iface.NumMethods(); i++ {
				add(iface.Method(i))
			}
			continue
		}
		if named, okN := tn.Type().(*types.Named); okN {
			for i := 0; i < named.NumMethods(); i++ {
				add(named.Method(i))
			}
		}
	}
}

// returnsError reports whether fn's last result is the error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

// A site is one statically resolvable call in one function body, with
// the shape of its error consumption.
type site struct {
	call       *ast.CallExpr
	key        string
	discarded  bool       // blank error slot, bare expression, go/defer
	propagated bool       // the error value reaches a return statement
	checked    bool       // the error value appears in an if condition
	branches   []ast.Node // bodies conditioned on the error value
}

// collectSites walks fb.Body (never descending into nested function
// literals, which are separate FuncBodies) classifying every
// resolvable call whose callee returns an error.
func collectSites(pass *framework.Pass, fb framework.FuncBody) []site {
	info := pass.TypesInfo
	var sites []site
	var walk func(n ast.Node, stack []ast.Node)
	walk = func(root ast.Node, base []ast.Node) {
		stack := base
		ast.Inspect(root, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			if lit, ok := n.(*ast.FuncLit); ok && lit != root {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				fn := framework.CalleeFunc(info, call)
				if fn != nil && returnsError(fn) {
					sites = append(sites, classify(pass, fb, call, fn, stack))
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	walk(fb.Body, nil)
	return sites
}

// classify determines how call's error result is consumed, given the
// ancestor stack (innermost last).
func classify(pass *framework.Pass, fb framework.FuncBody, call *ast.CallExpr, fn *types.Func, stack []ast.Node) site {
	info := pass.TypesInfo
	st := site{call: call, key: framework.FuncKeyOf(fn)}
	// Innermost enclosing statement decides the shape.
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			continue
		case *ast.ExprStmt:
			st.discarded = ast.Unparen(parent.X) == call
			return st
		case *ast.GoStmt:
			st.discarded = parent.Call == call
			return st
		case *ast.DeferStmt:
			st.discarded = parent.Call == call
			return st
		case *ast.ReturnStmt:
			st.propagated = true
			return st
		case *ast.AssignStmt:
			if len(parent.Rhs) != 1 || ast.Unparen(parent.Rhs[0]) != call {
				// Nested inside a larger RHS expression (wrapped in
				// another call): the value was handed off; accept.
				st.checked = true
				return st
			}
			sig := fn.Type().(*types.Signature)
			errIdx := sig.Results().Len() - 1
			if errIdx >= len(parent.Lhs) {
				st.checked = true
				return st
			}
			ident, ok := ast.Unparen(parent.Lhs[errIdx]).(*ast.Ident)
			if !ok {
				st.checked = true // assigned through a selector/index: handed off
				return st
			}
			if ident.Name == "_" {
				st.discarded = true
				return st
			}
			obj := info.Defs[ident]
			if obj == nil {
				obj = info.Uses[ident]
			}
			if obj == nil {
				st.checked = true
				return st
			}
			traceErrObj(info, fb.Body, obj, &st)
			return st
		case *ast.CallExpr:
			if parent != call {
				// Argument to another call: handed off; accept.
				st.checked = true
				return st
			}
		case ast.Stmt:
			// Any other statement form (if-init is an AssignStmt and
			// handled above; select comm etc.): be conservative and
			// accept.
			st.checked = true
			return st
		}
	}
	st.discarded = true
	return st
}

// traceErrObj scans the function body for consumption of the error
// variable: returns (propagation), if conditions (checks), and the
// bodies those conditions guard.
func traceErrObj(info *types.Info, body *ast.BlockStmt, obj types.Object, st *site) {
	mentions := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj) {
				found = true
			}
			return !found
		})
		return found
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			// A closure may check or return the variable, but that is
			// another function's control flow; count only increments
			// found through branches below.
			return false
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				if mentions(res) {
					st.propagated = true
				}
			}
		case *ast.IfStmt:
			if !mentions(s.Cond) {
				return true
			}
			st.checked = true
			// `if err == nil` guards the success path; its else (when
			// present) is the error branch.
			if bin, ok := s.Cond.(*ast.BinaryExpr); ok && bin.Op == token.EQL {
				if s.Else != nil {
					st.branches = append(st.branches, s.Else)
				}
				return true
			}
			st.branches = append(st.branches, s.Body)
			if s.Else != nil {
				st.branches = append(st.branches, s.Else)
			}
		}
		return true
	})
}

// counterClasses finds the object classes registered as the WAL
// failure counter in this package: any call to a method/function named
// Counter whose first argument is the metric name constant, assigned
// to a field (composite literal or assignment) or variable.
func counterClasses(pass *framework.Pass) map[string]bool {
	out := make(map[string]bool)
	info := pass.TypesInfo
	framework.WalkStack(pass.Files, func(n ast.Node, stack []ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := framework.CalleeFunc(info, call)
		if fn == nil || fn.Name() != "Counter" || len(call.Args) == 0 {
			return true
		}
		if name, okC := framework.ConstString(info, call.Args[0]); !okC || name != WALFailureMetric {
			return true
		}
		// What receives the counter?
		for i := len(stack) - 1; i >= 0; i-- {
			switch parent := stack[i].(type) {
			case *ast.KeyValueExpr:
				if i > 0 {
					if lit, okL := stack[i-1].(*ast.CompositeLit); okL {
						if key, okK := parent.Key.(*ast.Ident); okK {
							if class := framework.FieldClassInLiteral(info, lit, key); class != "" {
								out[class] = true
							}
						}
					}
				}
				return true
			case *ast.AssignStmt:
				for j, rhs := range parent.Rhs {
					if ast.Unparen(rhs) == call && j < len(parent.Lhs) {
						if class := framework.ObjClass(info, parent.Lhs[j]); class != "" {
							out[class] = true
						}
					}
				}
				return true
			case *ast.ValueSpec:
				for j, v := range parent.Values {
					if ast.Unparen(v) == call && j < len(parent.Names) {
						if class := framework.ObjClass(info, parent.Names[j]); class != "" {
							out[class] = true
						}
					}
				}
				return true
			case ast.Stmt:
				return true
			}
		}
		return true
	})
	return out
}

// isCounterInc reports whether call increments one of the registered
// failure-counter classes (Inc or Add on the counter object).
func isCounterInc(info *types.Info, call *ast.CallExpr, counters map[string]bool) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if name := sel.Sel.Name; name != "Inc" && name != "Add" {
		return false
	}
	return counters[framework.ObjClass(info, sel.X)]
}

// isResponseWrite reports whether call observable-writes an HTTP
// response: a method on an http.ResponseWriter value, or any call
// receiving one as an argument (writeError-style helpers).
func isResponseWrite(info *types.Info, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if t := info.TypeOf(sel.X); t != nil && framework.NamedTypeIn(t, "net/http", "ResponseWriter") {
			return true
		}
	}
	for _, arg := range call.Args {
		if t := info.TypeOf(arg); t != nil && framework.NamedTypeIn(t, "net/http", "ResponseWriter") {
			return true
		}
	}
	return false
}

func lastDot(s string) int {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == '.' {
			return i
		}
	}
	return -1
}
